module bhive

go 1.22
