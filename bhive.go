// Package bhive is a from-scratch Go reproduction of "BHive: A Benchmark
// Suite and Measurement Framework for Validating x86-64 Basic Block
// Performance Models" (IISWC 2019).
//
// The package is the public facade over the internal subsystems:
//
//   - a basic-block representation with an assembler/disassembler for real
//     x86-64 machine code (internal/x86);
//   - a simulated machine — cycle-level out-of-order cores parameterized as
//     Ivy Bridge, Haswell and Skylake over a virtual-memory and cache
//     substrate (internal/uarch, internal/pipeline, internal/machine);
//   - the BHive measurement framework, which profiles arbitrary basic
//     blocks by mapping every page they touch onto one physical page and
//     deriving steady-state throughput from two unroll factors
//     (internal/profiler);
//   - the benchmark suite generator and dynamic collector
//     (internal/corpus), the LDA block classifier (internal/classify), and
//     the port-mapping inference (internal/portmap);
//   - four throughput predictors in the style of IACA, llvm-mca, OSACA and
//     Ithemal (internal/models), and the experiment harness that
//     regenerates every table and figure of the paper (internal/harness).
//
// Quick start:
//
//	block, _ := bhive.ParseBlock("add rax, rbx", bhive.SyntaxIntel)
//	res, _ := bhive.Profile("haswell", block)
//	fmt.Println(res.Throughput) // cycles per iteration
package bhive

import (
	"bhive/internal/blocklint"
	"bhive/internal/classify"
	"bhive/internal/corpus"
	"bhive/internal/harness"
	"bhive/internal/models"
	"bhive/internal/models/ithemal"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Re-exported core types.
type (
	// Block is a basic block of x86-64 instructions.
	Block = x86.Block
	// Inst is one instruction.
	Inst = x86.Inst
	// Syntax selects the assembly dialect for parsing.
	Syntax = x86.Syntax
	// Result is a profiling outcome.
	Result = profiler.Result
	// Status classifies a profiling attempt.
	Status = profiler.Status
	// Options selects measurement techniques (for ablation studies).
	Options = profiler.Options
	// Predictor is a basic-block throughput model.
	Predictor = models.Predictor
	// Record is a collected corpus block with its execution frequency.
	Record = corpus.Record
	// Category is one of the paper's six block categories.
	Category = classify.Category
	// ExperimentConfig parameterizes the evaluation harness.
	ExperimentConfig = harness.Config
	// Suite owns a corpus and regenerates the paper's tables and figures.
	Suite = harness.Suite
	// LearnedModel is the Ithemal-style LSTM predictor.
	LearnedModel = ithemal.Model
	// TrainSample is one (block, measured throughput) training example.
	TrainSample = ithemal.Sample
	// TrainOptions configures LSTM training.
	TrainOptions = ithemal.TrainConfig
	// LintReport is the static block analyzer's typed result: a predicted
	// measurement status plus machine-readable diagnostics (BL001…).
	LintReport = blocklint.Report
	// LintDiag is one static-analysis finding.
	LintDiag = blocklint.Diag
)

// Syntax constants.
const (
	SyntaxAuto  = x86.SyntaxAuto
	SyntaxIntel = x86.SyntaxIntel
	SyntaxATT   = x86.SyntaxATT
)

// Profiling status constants.
const (
	StatusOK          = profiler.StatusOK
	StatusCrashed     = profiler.StatusCrashed
	StatusUnsupported = profiler.StatusUnsupported
	StatusCacheMiss   = profiler.StatusCacheMiss
	StatusMisaligned  = profiler.StatusMisaligned
	StatusUnstable    = profiler.StatusUnstable
)

// ParseBlock assembles a multi-line Intel- or AT&T-syntax listing.
func ParseBlock(text string, syntax Syntax) (*Block, error) {
	return x86.ParseBlock(text, syntax)
}

// BlockFromHex decodes a block from machine-code hex — the storage format
// of the benchmark suite.
func BlockFromHex(hexStr string) (*Block, error) { return x86.BlockFromHex(hexStr) }

// Microarchitectures lists the validated targets: ivybridge, haswell,
// skylake.
func Microarchitectures() []string {
	var out []string
	for _, c := range uarch.All() {
		out = append(out, c.Name)
	}
	return out
}

// DefaultOptions is the full BHive measurement methodology.
func DefaultOptions() Options { return profiler.DefaultOptions() }

// BaselineOptions is the no-mapping Agner-script baseline.
func BaselineOptions() Options { return profiler.BaselineOptions() }

// Profile measures a block's steady-state cycles-per-iteration on the
// named microarchitecture with the full methodology.
func Profile(arch string, b *Block) (Result, error) {
	return ProfileWith(arch, b, profiler.DefaultOptions())
}

// ProfileWith measures with explicit options.
func ProfileWith(arch string, b *Block, opts Options) (Result, error) {
	cpu, err := uarch.ByName(arch)
	if err != nil {
		return Result{}, err
	}
	return profiler.New(cpu, opts).Profile(b), nil
}

// Lint statically analyzes a block under the given measurement options:
// it predicts the profiling status without running the machine and
// reports per-block diagnostics and facts. A rejected report (non-OK
// prediction) is a guarantee — the dynamic protocol cannot accept the
// block — which is what makes prescreening safe.
func Lint(arch string, b *Block, opts Options) (*LintReport, error) {
	cpu, err := uarch.ByName(arch)
	if err != nil {
		return nil, err
	}
	return blocklint.New(cpu, opts).Analyze(b), nil
}

// Models returns the four analytical predictors (IACA-, llvm-mca- and
// OSACA-like, plus the bound-based Facile model) for the named
// microarchitecture.
func Models(arch string) ([]Predictor, error) {
	cpu, err := uarch.ByName(arch)
	if err != nil {
		return nil, err
	}
	return models.All(cpu), nil
}

// NewLearnedModel builds an untrained Ithemal-style model (embedding size
// d, hidden size h).
func NewLearnedModel(d, h int, seed int64) *LearnedModel { return ithemal.New(d, h, seed) }

// GenerateCorpus builds the benchmark suite at the given scale (1.0 is the
// paper's 358,561 blocks plus OpenSSL).
func GenerateCorpus(scale float64, seed int64) []Record {
	return corpus.GenerateAll(scale, seed)
}

// NewSuite builds the experiment harness.
func NewSuite(cfg ExperimentConfig) *Suite { return harness.New(cfg) }

// DefaultExperimentConfig is sized for interactive runs.
func DefaultExperimentConfig() ExperimentConfig { return harness.DefaultConfig() }

// Experiments lists the runnable table/figure ids.
func Experiments() []string { return harness.Names() }
