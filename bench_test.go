package bhive

// Benchmark harness: one benchmark per table/figure of the paper plus
// ablation and micro benchmarks. Each BenchmarkTableN regenerates the
// corresponding result; custom metrics attach the headline numbers (error
// rates, profiled fractions) to the benchmark output so `go test -bench`
// output doubles as an experiment log.
//
// Scale: benchmarks default to 0.003 of the full suite so the whole run
// finishes in minutes; set BHIVE_BENCH_SCALE to raise it (the paper's full
// scale is 1.0 = 358,561 blocks).

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"bhive/internal/exec"
	"bhive/internal/harness"
	"bhive/internal/machine"
	"bhive/internal/models"
	"bhive/internal/models/ithemal"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

func benchScale() float64 {
	if v := os.Getenv("BHIVE_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.003
}

var (
	suiteOnce sync.Once
	suite     *harness.Suite
)

func benchSuite() *harness.Suite {
	suiteOnce.Do(func() {
		cfg := harness.DefaultConfig()
		cfg.Scale = benchScale()
		suite = harness.New(cfg)
	})
	return suite
}

func parseNum(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("bad number %q", s)
	}
	return v
}

// BenchmarkTable1Ablation regenerates the measurement ablation (Table I).
func BenchmarkTable1Ablation(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab := s.Table1()
		for _, row := range tab.Rows {
			name := map[string]string{
				"None":                       "pctNone",
				"Mapping all accessed pages": "pctMapped",
				"More intelligent unrolling": "pctFull",
			}[row[0]]
			v, err := strconv.ParseFloat(row[1][:len(row[1])-1], 64)
			if err == nil && name != "" {
				b.ReportMetric(v, name)
			}
		}
	}
}

// BenchmarkTable2SampleBlock regenerates the per-block ablation (Table II).
func BenchmarkTable2SampleBlock(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab := s.Table2()
		b.ReportMetric(parseNum(b, tab.Rows[4][1]), "finalTP")
	}
}

// BenchmarkTable3Corpus regenerates the source-application counts.
func BenchmarkTable3Corpus(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab := s.Table3()
		if tab.Rows[len(tab.Rows)-1][2] != "358561" {
			b.Fatal("table III total drifted")
		}
	}
}

// BenchmarkTable4Categories regenerates the LDA category table.
func BenchmarkTable4Categories(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab := s.Table4()
		b.ReportMetric(parseNum(b, tab.Rows[1][2]), "cat2Blocks")
		b.ReportMetric(parseNum(b, tab.Rows[5][2]), "cat6Blocks")
	}
}

// BenchmarkFigAppsVsClusters regenerates the per-application breakdown.
func BenchmarkFigAppsVsClusters(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab := s.FigAppsVsClusters()
		if len(tab.Rows) != 10 {
			b.Fatal("application rows")
		}
	}
}

// BenchmarkTable5Overall regenerates the headline error table (Table V)
// for the three analytical models on all three microarchitectures.
func BenchmarkTable5Overall(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tab.Rows {
			b.ReportMetric(parseNum(b, row[2]), "err_"+row[0]+"_"+row[1])
		}
	}
}

// BenchmarkFigClusterErr regenerates the per-category error breakdown on
// Haswell (the per-cluster figures).
func BenchmarkFigClusterErr(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab, err := s.FigClusterErr(uarch.Haswell())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 6 {
			b.Fatal("category rows")
		}
	}
}

// BenchmarkFigAppErr regenerates the per-application error breakdown on
// Haswell (the per-application figures).
func BenchmarkFigAppErr(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab, err := s.FigAppErr(uarch.Haswell())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 10 {
			b.Fatal("application rows")
		}
	}
}

// BenchmarkCaseStudy regenerates the interesting-blocks table.
func BenchmarkCaseStudy(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab, err := s.CaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseNum(b, tab.Rows[0][1]), "divMeasured")
	}
}

// BenchmarkFigScheduling regenerates the llvm-mca vs IACA schedule figure.
func BenchmarkFigScheduling(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.FigScheduling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Google regenerates the Spanner/Dremel accuracy table.
func BenchmarkTable6Google(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) < 4 {
			b.Fatal("google rows")
		}
		b.ReportMetric(parseNum(b, tab.Rows[0][4]), "spannerTauIACA")
	}
}

// BenchmarkFigGoogleBlocks regenerates the Spanner/Dremel composition.
func BenchmarkFigGoogleBlocks(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		tab, err := s.FigGoogleBlocks()
		if err != nil {
			b.Fatal(err)
		}
		// Category-6 share, weighted by frequency (paper: 40-50%).
		b.ReportMetric(parseNum(b, tab.Rows[0][6]), "spannerCat6Pct")
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationDerivedVsNaive compares acceptance under the two
// unrolling strategies on a large kernel block.
func BenchmarkAblationDerivedVsNaive(b *testing.B) {
	big := harness.SampleTFBlock()
	naive := profiler.New(uarch.Haswell(), profiler.MappingOptions())
	derived := profiler.New(uarch.Haswell(), profiler.DefaultOptions())
	for i := 0; i < b.N; i++ {
		rn := naive.Profile(big)
		rd := derived.Profile(big)
		if rn.Status == profiler.StatusOK {
			b.Fatal("naive unrolling must fail on the big block")
		}
		if rd.Status != profiler.StatusOK {
			b.Fatalf("derived method must succeed: %v", rd.Status)
		}
		b.ReportMetric(rd.Throughput, "derivedTP")
	}
}

// BenchmarkAblationSinglePhysPage compares the single-physical-page trick
// against per-page frames on a page-strided block.
func BenchmarkAblationSinglePhysPage(b *testing.B) {
	block, err := x86.ParseBlock(`mov rax, qword ptr [rbx]
		mov rcx, qword ptr [rbx+0x1000]
		mov rdx, qword ptr [rbx+0x2000]
		mov rsi, qword ptr [rbx+0x3000]
		mov r8, qword ptr [rbx+0x4000]
		mov r9, qword ptr [rbx+0x5000]
		mov r10, qword ptr [rbx+0x6000]
		mov r11, qword ptr [rbx+0x7000]
		mov r12, qword ptr [rbx+0x8000]
		mov r13, qword ptr [rbx+0x9000]
		mov r14, qword ptr [rbx+0xa000]`, x86.SyntaxIntel)
	if err != nil {
		b.Fatal(err)
	}
	multi := profiler.MappingOptions()
	multi.SinglePhysPage = false
	pm := profiler.New(uarch.Haswell(), multi)
	ps := profiler.New(uarch.Haswell(), profiler.MappingOptions())
	for i := 0; i < b.N; i++ {
		if pm.Profile(block).Status != profiler.StatusCacheMiss {
			b.Fatal("distinct frames must miss")
		}
		if ps.Profile(block).Status != profiler.StatusOK {
			b.Fatal("single frame must hit")
		}
	}
}

// BenchmarkAblationFTZ compares measurement with and without the MXCSR
// gradual-underflow protection on a subnormal-heavy block.
func BenchmarkAblationFTZ(b *testing.B) {
	block, err := x86.ParseBlock(`mov eax, 0x00200000
		movd xmm1, eax
		mulss xmm0, xmm1
		addss xmm2, xmm0`, x86.SyntaxIntel)
	if err != nil {
		b.Fatal(err)
	}
	on := profiler.New(uarch.Haswell(), profiler.DefaultOptions())
	offOpts := profiler.DefaultOptions()
	offOpts.DisableSubnormals = false
	off := profiler.New(uarch.Haswell(), offOpts)
	for i := 0; i < b.N; i++ {
		ron, roff := on.Profile(block), off.Profile(block)
		if ron.Status != profiler.StatusOK || roff.Status != profiler.StatusOK {
			b.Fatalf("%v %v", ron.Status, roff.Status)
		}
		b.ReportMetric(roff.Throughput/ron.Throughput, "subnormalSlowdown")
	}
}

// --- Micro benchmarks of the substrates ---

// BenchmarkProfileHotPath is the perf-trajectory benchmark for the
// profiling pipeline: a register-only block and a memory block that needs
// the page-mapping monitor, profiled with the full methodology. ns/op and
// allocs/op divided by blocksPerOp give the per-block cost recorded in
// BENCH_profiler.json.
func BenchmarkProfileHotPath(b *testing.B) {
	small, _ := x86.ParseBlock("add rax, rbx\nmov rcx, qword ptr [rsp+8]", x86.SyntaxIntel)
	crc, _ := x86.ParseBlock(harness.CRCBlockText, x86.SyntaxATT)
	opts := profiler.DefaultOptions()
	opts.FilterMisaligned = false // the CRC table walk occasionally splits lines
	p := profiler.New(uarch.Haswell(), opts)
	blocks := []*x86.Block{small, crc}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, blk := range blocks {
			if p.Profile(blk).Status != profiler.StatusOK {
				b.Fatal("profile failed")
			}
		}
	}
	b.ReportMetric(float64(len(blocks)), "blocksPerOp")
}

func BenchmarkProfileSmallBlock(b *testing.B) {
	block, _ := x86.ParseBlock("add rax, rbx\nmov rcx, qword ptr [rsp+8]", x86.SyntaxIntel)
	p := profiler.New(uarch.Haswell(), profiler.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Profile(block).Status != profiler.StatusOK {
			b.Fatal("profile failed")
		}
	}
}

func BenchmarkPredictIACA(b *testing.B) {
	block, _ := x86.ParseBlock(harness.CRCBlockText, x86.SyntaxATT)
	m := models.NewIACA(uarch.Haswell())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(block); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictIthemal(b *testing.B) {
	block, _ := x86.ParseBlock(harness.CRCBlockText, x86.SyntaxATT)
	m := ithemal.New(32, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(block); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	block, _ := x86.ParseBlock(harness.CRCBlockText, x86.SyntaxATT)
	raw, err := block.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x86.DecodeBlock(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineSimulation(b *testing.B) {
	cpu := uarch.Haswell()
	block, _ := x86.ParseBlock(harness.CRCBlockText, x86.SyntaxATT)
	m := machine.New(cpu, 1)
	var insts []x86.Inst
	for i := 0; i < 16; i++ {
		insts = append(insts, block.Insts...)
	}
	prog, err := m.Prepare(insts)
	if err != nil {
		b.Fatal(err)
	}
	frame := m.AS.NewPhysPage()
	frame.Fill(0x12345600)
	var steps []exec.Step
	for {
		st := &exec.State{FTZ: true, DAZ: true}
		st.InitRegisters(0x12345600)
		var runErr error
		steps, runErr = m.Execute(prog, st)
		if runErr == nil {
			break
		}
		f, ok := runErr.(*vm.Fault)
		if !ok {
			b.Fatal(runErr)
		}
		m.AS.Map(f.Addr, frame)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Time(prog, steps, machine.Config{})
	}
	b.ReportMetric(float64(len(steps)), "dynInsts")
}
