package bhive

import (
	"strings"
	"testing"
)

func TestPublicProfileFlow(t *testing.T) {
	block, err := ParseBlock("add rax, rbx\nmov rcx, qword ptr [rsp+8]", SyntaxIntel)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range Microarchitectures() {
		res, err := Profile(arch, block)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if res.Status != StatusOK || res.Throughput <= 0 {
			t.Fatalf("%s: %v %f", arch, res.Status, res.Throughput)
		}
	}
	if _, err := Profile("pentium4", block); err == nil {
		t.Fatal("unknown microarchitecture must error")
	}
}

func TestPublicHexRoundtrip(t *testing.T) {
	block, err := ParseBlock("xor %edx, %edx\ndiv %ecx", SyntaxATT)
	if err != nil {
		t.Fatal(err)
	}
	h, err := block.Hex()
	if err != nil {
		t.Fatal(err)
	}
	again, err := BlockFromHex(h)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != block.String() {
		t.Fatal("hex roundtrip")
	}
}

func TestPublicModels(t *testing.T) {
	ms, err := Models("haswell")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("four analytical models, got %d", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name()] = true
	}
	for _, want := range []string{"IACA", "llvm-mca", "OSACA", "Facile"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestPublicBaselineVsFull(t *testing.T) {
	// The motivating property, through the public API: a memory block
	// crashes under the baseline and profiles under the full methodology.
	block, err := ParseBlock("mov rax, qword ptr [rdi+0x40]", SyntaxIntel)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ProfileWith("haswell", block, BaselineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != StatusCrashed {
		t.Fatalf("baseline: %v", base.Status)
	}
	full, err := Profile("haswell", block)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != StatusOK {
		t.Fatalf("full: %v", full.Status)
	}
}

func TestPublicCorpusAndLearnedModel(t *testing.T) {
	recs := GenerateCorpus(0.0005, 3)
	if len(recs) < 100 {
		t.Fatalf("corpus too small: %d", len(recs))
	}
	// Train a tiny learned model on a few measured blocks.
	var samples []TrainSample
	for i := range recs {
		if len(samples) == 40 {
			break
		}
		res, err := Profile("haswell", recs[i].Block)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == StatusOK && res.Throughput > 0 {
			samples = append(samples, TrainSample{Block: recs[i].Block, Throughput: res.Throughput})
		}
	}
	m := NewLearnedModel(8, 16, 1)
	m.Train(samples, TrainOptions{Epochs: 2, LR: 1e-3, Seed: 1})
	p, err := m.Predict(samples[0].Block)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatalf("prediction %f", p)
	}
}

func TestExperimentNames(t *testing.T) {
	names := Experiments()
	if len(names) < 10 {
		t.Fatalf("expected the full experiment index, got %v", names)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"table1", "table5", "case-study", "fig-scheduling"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing experiment %s", want)
		}
	}
}
