package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicWrite flags os.Rename calls that are not followed, in the same
// top-level function, by a durability sync: either an (*os.File).Sync
// (the reopened parent directory) or a call to a helper whose name
// contains "syncdir". The repo's atomic-write discipline is temp file +
// fsync + rename + parent-directory fsync — the last step is the one
// that keeps a crash right after the rename from rolling the directory
// entry back, and the one that is easiest to forget because everything
// works without it until the machine loses power.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "os.Rename without a following parent-directory fsync is not crash-durable",
	Run:  runAtomicWrite,
}

func runAtomicWrite(p *Pass) {
	for _, f := range p.Files {
		if ignoredFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAtomicWrite(p, fd)
		}
	}
}

func checkAtomicWrite(p *Pass, fd *ast.FuncDecl) {
	// One lexical sweep collects rename positions and sync positions;
	// a rename is fine iff some sync lies after it. Lexical order is
	// the right notion here: the discipline is straight-line (write,
	// sync, close, rename, syncdir), and a sync reachable only on some
	// other path would be a bug this pass is meant to surface anyway.
	var renames []*ast.CallExpr
	var syncs []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.FullName() == "os.Rename":
			renames = append(renames, call)
		case isDurabilitySync(fn):
			syncs = append(syncs, call.Pos())
		}
		return true
	})
	for _, call := range renames {
		covered := false
		for _, pos := range syncs {
			if pos > call.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			p.Report(call.Pos(), "os.Rename without a following parent-directory fsync: a crash can roll the rename back; fsync the directory (or call a syncDir helper) after renaming")
		}
	}
}

// isDurabilitySync reports whether fn makes a rename durable: the
// directory-handle fsync itself, or a named helper that wraps it.
func isDurabilitySync(fn *types.Func) bool {
	if fn.FullName() == "(*os.File).Sync" {
		return true
	}
	return strings.Contains(strings.ToLower(fn.Name()), "syncdir")
}
