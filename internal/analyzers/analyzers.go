// Package analyzers holds the repo's custom static-analysis passes — the
// invariants that ordinary go vet does not know about — plus a small
// stdlib-only driver harness (load.go) so they run without any external
// analysis framework. cmd/bhive-vet is the command-line front end; the
// tests in this package also run every pass over the repository itself,
// so a violation fails `go test ./...` even before CI runs the driver.
//
// Passes:
//
//   - exitcheck: os.Exit and log.Fatal* terminate the process without
//     running deferred cleanups. The CLIs were refactored to a single
//     exit point (`main` calls `run`, every cleanup is a defer inside
//     `run`), precisely so an error path cannot skip flushing the
//     profile cache or the checkpoint journal. The pass enforces that
//     shape: such calls may appear only in package main, lexically
//     inside the top-level functions `main` or `run`.
//
//   - nanaggr: rejected blocks yield NaN relative errors, and a single
//     NaN poisons any naive `sum += x` aggregate. internal/stats owns
//     the NaN-aware accumulators (stats.Running skips NaN inputs), so
//     outside that package no code may fold a stats-package result into
//     a float64 with `+=`/`-=` directly.
//
//   - atomicwrite: every atomic file write (temp + fsync + rename) must
//     fsync the parent directory after the rename, or a crash can roll
//     the rename back; see AtomicWrite.
//
//   - poolput: every sync.Pool.Get must pair with a deferred Put or
//     hand the object to the caller via return; see PoolPut.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// statsPath is the one package allowed to aggregate its own values and
// whose call results must not be accumulated with bare float64 +=.
const statsPath = "bhive/internal/stats"

// A Pass is one type-checked package handed to an Analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Report records a finding at pos.
	Report func(pos token.Pos, format string, args ...any)
}

// An Analyzer is one invariant check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every registered pass, in a stable order.
func All() []*Analyzer {
	return []*Analyzer{ExitCheck, NaNAggr, AtomicWrite, PoolPut}
}

// ExitCheck flags os.Exit and log.Fatal/Fatalf/Fatalln calls anywhere
// except lexically inside func main or func run of a package main.
var ExitCheck = &Analyzer{
	Name: "exitcheck",
	Doc:  "os.Exit/log.Fatal* skip deferred cleanups; only main.main/main.run may call them",
	Run:  runExitCheck,
}

// terminators maps the full name of a process-terminating function to
// true. Resolved through go/types, so import renames cannot hide them.
var terminators = map[string]bool{
	"os.Exit":     true,
	"log.Fatal":   true,
	"log.Fatalf":  true,
	"log.Fatalln": true,
}

func runExitCheck(p *Pass) {
	isMain := p.Pkg.Name() == "main"
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body == nil {
				continue
			}
			// Calls inside function literals inherit the enclosing
			// top-level declaration: a goroutine spawned by run() is
			// still run()'s responsibility.
			allowed := ok && isMain && fd.Recv == nil &&
				(fd.Name.Name == "main" || fd.Name.Name == "run")
			if allowed {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil || !terminators[fn.FullName()] {
					return true
				}
				p.Report(call.Pos(), "%s terminates the process and skips deferred cleanups; return an error to main.run instead", fn.FullName())
				return true
			})
		}
	}
}

// NaNAggr flags `x += stats.F(...)` (and -=) on float64 outside
// internal/stats: fold error metrics through a stats.Running, which is
// NaN-aware, instead of a bare accumulator that one rejected block can
// poison.
var NaNAggr = &Analyzer{
	Name: "nanaggr",
	Doc:  "float64 += of an internal/stats result is NaN-unsafe; use stats.Running",
	Run:  runNaNAggr,
}

func runNaNAggr(p *Pass) {
	if p.Pkg.Path() == statsPath {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
				return true
			}
			// x += y is always 1:1.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			if !isFloat64(p.Info.TypeOf(as.Lhs[0])) {
				return true
			}
			if fn := findStatsCall(p.Info, as.Rhs[0]); fn != nil {
				p.Report(as.Pos(), "NaN-unsafe aggregation: %s may return NaN and poison a float64 accumulator; use a stats.Running", fn.FullName())
			}
			return true
		})
	}
}

func isFloat64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// findStatsCall returns the first function from internal/stats called
// anywhere inside expr, or nil.
func findStatsCall(info *types.Info, expr ast.Expr) *types.Func {
	var found *types.Func
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == statsPath {
			found = fn
			return false
		}
		return true
	})
	return found
}

// calleeFunc resolves the called function through the type info,
// unwrapping selectors and parens; nil for indirect calls, conversions
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ignoredFile reports whether a parsed file opts out of the build (a
// `//go:build ignore`-style constraint), e.g. testdata generators.
func ignoredFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build") && strings.Contains(text, "ignore") {
				return true
			}
			if strings.HasPrefix(text, "// +build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}
