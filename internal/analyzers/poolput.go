package analyzers

import (
	"go/ast"
	"go/types"
)

// PoolPut flags (*sync.Pool).Get calls whose function neither defers a
// Put nor returns the fetched value. A Get without a guaranteed Put does
// not leak memory — the object is simply collected — but it silently
// defeats the pool: under error returns or panics the hot path degrades
// to allocating every time, which is exactly the regression the pools in
// internal/pipeline exist to prevent. Two shapes are accepted:
//
//   - `defer pool.Put(x)` anywhere in the function (a deferred closure
//     that calls Put also counts), which covers every return path; or
//   - the Get result flowing into a return value — ownership transfer,
//     as in Profiler.getScratch, where the caller holds the matching
//     deferred Put.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc:  "sync.Pool.Get without a deferred Put (or returning the value) degrades to plain allocation on early returns",
	Run:  runPoolPut,
}

func runPoolPut(p *Pass) {
	for _, f := range p.Files {
		if ignoredFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolPut(p, fd)
		}
	}
}

func checkPoolPut(p *Pass, fd *ast.FuncDecl) {
	gets := poolCalls(p.Info, fd, "Get")
	if len(gets) == 0 {
		return
	}
	// A deferred Put anywhere in the function covers its Gets: the repo
	// pairs one pool per function, so per-object matching would add
	// complexity without catching anything the simple form misses.
	deferred := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || deferred {
			return !deferred
		}
		ast.Inspect(ds, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if fn := calleeFunc(p.Info, call); fn != nil && fn.FullName() == "(*sync.Pool).Put" {
					deferred = true
					return false
				}
			}
			return true
		})
		return !deferred
	})
	if deferred {
		return
	}
	for _, call := range gets {
		if escapesViaReturn(p.Info, fd, call) {
			continue
		}
		p.Report(call.Pos(), "sync.Pool.Get without a deferred Put on every return path; defer pool.Put(...) or return the value to transfer ownership")
	}
}

// poolCalls collects calls to the named (*sync.Pool) method inside fd.
func poolCalls(info *types.Info, fd *ast.FuncDecl, name string) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil && fn.FullName() == "(*sync.Pool)."+name {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

// escapesViaReturn reports whether the Get result is (possibly via one
// local variable, a type assertion, or a conversion) part of a return
// statement — ownership transfer to the caller.
func escapesViaReturn(info *types.Info, fd *ast.FuncDecl, get *ast.CallExpr) bool {
	// Track the objects the result is bound to: `v := pool.Get()` or
	// `v := pool.Get().(*T)`.
	owners := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !containsNode(rhs, get) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					owners[obj] = true
				}
			}
		}
		return true
	})
	escaped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || escaped {
			return !escaped
		}
		for _, res := range ret.Results {
			// The returned value must BE the pooled object (modulo
			// parens and type assertions) — merely reading through it
			// in a return expression is use, not ownership transfer.
			e := unwrapValue(res)
			if e == ast.Expr(get) {
				escaped = true
				return false
			}
			if id, ok := e.(*ast.Ident); ok && owners[info.ObjectOf(id)] {
				escaped = true
				return false
			}
		}
		return !escaped
	})
	return escaped
}

// unwrapValue strips parens and type assertions, the wrappers that
// preserve object identity between a pool.Get and a return.
func unwrapValue(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return e
		}
	}
}

// containsNode reports whether target occurs in the subtree rooted at n.
func containsNode(n ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if m == target {
			found = true
		}
		return !found
	})
	return found
}
