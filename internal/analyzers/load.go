// The loader: a minimal, stdlib-only replacement for golang.org/x/tools'
// package loading. It walks the module, parses each package with
// go/parser, and type-checks it with go/types using a recursive importer
// that resolves module-internal import paths ("bhive/...") straight from
// the source tree and delegates the standard library to the compiler's
// source importer. No export data, no go list subprocess, no external
// modules.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Check loads every package under modRoot matched by patterns and runs
// the analyzers over each. Patterns are either "./..." (the whole
// module) or directory paths relative to modRoot. Findings come back
// sorted by position.
func Check(modRoot string, patterns []string, as []*Analyzer) ([]Finding, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	ld := newLoader(modRoot, modPath)
	var findings []Finding
	for _, dir := range dirs {
		pkg, files, err := ld.load(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		pass := &Pass{
			Fset:  ld.fset,
			Files: files,
			Pkg:   pkg,
			Info:  ld.infos[pkg],
		}
		for _, a := range as {
			a := a
			pass.Report = func(pos token.Pos, format string, args ...any) {
				findings = append(findings, Finding{
					Pos:      ld.fset.Position(pos),
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// modulePath reads the module path out of modRoot/go.mod.
func modulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", modRoot)
}

// expandPatterns resolves "./..." to every directory under modRoot that
// holds Go files, skipping testdata, hidden directories, and vendor.
func expandPatterns(modRoot string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if pat != "./..." && pat != "..." {
			add(filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
			continue
		}
		err := filepath.WalkDir(modRoot, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loader type-checks packages on demand and memoizes them, acting as its
// own importer for module-internal paths.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*types.Package // by import path
	files   map[*types.Package][]*ast.File
	infos   map[*types.Package]*types.Info
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
		files:   map[*types.Package][]*ast.File{},
		infos:   map[*types.Package]*types.Info{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer: module-internal paths are resolved
// from the source tree, everything else falls through to the stdlib
// source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
		pkg, _, err := ld.load(filepath.Join(ld.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("import %q: no Go files in %s", path, rel)
		}
		return pkg, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks the package in dir (non-test, buildable
// files only). Returns (nil, nil, nil) when the directory has no
// buildable Go files.
func (ld *loader) load(dir string) (*types.Package, []*ast.File, error) {
	ip := ld.importPath(dir)
	if pkg, ok := ld.pkgs[ip]; ok {
		return pkg, ld.files[pkg], nil
	}
	if ld.loading[ip] {
		return nil, nil, fmt.Errorf("import cycle through %q", ip)
	}
	ld.loading[ip] = true
	defer delete(ld.loading, ip)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if ignoredFile(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(ip, ld.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", ip, err)
	}
	ld.pkgs[ip] = pkg
	ld.files[pkg] = files
	ld.infos[pkg] = info
	return pkg, files, nil
}

// importPath maps a directory under modRoot to its import path.
func (ld *loader) importPath(dir string) string {
	rel, err := filepath.Rel(ld.modRoot, dir)
	if err != nil || rel == "." {
		return ld.modPath
	}
	return ld.modPath + "/" + filepath.ToSlash(rel)
}
