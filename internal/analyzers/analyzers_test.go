package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module rooted at a temp dir. files
// maps module-relative paths to source text.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	all := map[string]string{"go.mod": "module bhive\n\ngo 1.22\n"}
	for k, v := range files {
		all[k] = v
	}
	for rel, src := range all {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// check runs every analyzer over the synthetic module and returns the
// rendered findings.
func check(t *testing.T, files map[string]string) []string {
	t.Helper()
	root := writeModule(t, files)
	fs, err := Check(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

// statsStub stands in for bhive/internal/stats in synthetic modules.
const statsStub = `package stats

func RelError(p, m float64) float64 { return (p - m) / m }

type Running struct{ n int; sum float64 }

func (r *Running) Add(x float64) { r.n++; r.sum += x }
func (r *Running) Mean() float64 { return r.sum / float64(r.n) }
`

func TestExitCheckFlagsHelpers(t *testing.T) {
	got := check(t, map[string]string{
		"cmd/tool/main.go": `package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(); err != nil {
		os.Exit(1) // allowed: inside main
	}
}

func run() error {
	go func() {
		os.Exit(130) // allowed: literal nested in run
	}()
	return nil
}

func fatal(err error) {
	fmt.Println(err)
	os.Exit(1) // flagged: helper outside main/run
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("findings = %v, want exactly the fatal() helper", got)
	}
	if !strings.Contains(got[0], "main.go:23") || !strings.Contains(got[0], "os.Exit") {
		t.Fatalf("finding %q should locate os.Exit in fatal()", got[0])
	}
}

func TestExitCheckFlagsLogFatalAndRenames(t *testing.T) {
	got := check(t, map[string]string{
		// A library package: nothing is allowed, and an import rename
		// must not hide the call (resolution is via go/types).
		"internal/worker/worker.go": `package worker

import (
	l "log"
	goos "os"
)

func Do() {
	l.Fatalf("boom") // flagged
}

func Quit() {
	goos.Exit(2) // flagged
}
`,
	})
	if len(got) != 2 {
		t.Fatalf("findings = %v, want log.Fatalf and os.Exit", got)
	}
	if !strings.Contains(got[0], "log.Fatalf") || !strings.Contains(got[1], "os.Exit") {
		t.Fatalf("findings %v should name the terminators", got)
	}
}

func TestExitCheckIgnoresBuildIgnoredFiles(t *testing.T) {
	got := check(t, map[string]string{
		"tools/gen.go": `//go:build ignore

package main

import "os"

func helper() { os.Exit(1) }

func main() {}
`,
		"tools/doc.go": "package tools\n",
	})
	if len(got) != 0 {
		t.Fatalf("findings = %v, want none for a go:build ignore file", got)
	}
}

func TestNaNAggrFlagsDirectAccumulation(t *testing.T) {
	got := check(t, map[string]string{
		"internal/stats/stats.go": statsStub,
		"internal/agg/agg.go": `package agg

import "bhive/internal/stats"

func Sum(ps, ms []float64) float64 {
	var total float64
	for i := range ps {
		total += stats.RelError(ps[i], ms[i]) // flagged: one NaN poisons total
	}
	return total
}

func Spread(ps, ms []float64) float64 {
	var d float64
	for i := range ps {
		d -= 2 * stats.RelError(ps[i], ms[i]) // flagged: -= and nested expr
	}
	return d
}

func SafeMean(ps, ms []float64) float64 {
	var r stats.Running
	for i := range ps {
		r.Add(stats.RelError(ps[i], ms[i])) // fine: NaN-aware accumulator
	}
	return r.Mean()
}

func Unrelated(ws []int) float64 {
	var total float64
	for _, w := range ws {
		total += float64(w) // fine: not a stats result
	}
	return total
}
`,
	})
	if len(got) != 2 {
		t.Fatalf("findings = %v, want the two direct accumulations", got)
	}
	for _, f := range got {
		if !strings.Contains(f, "nanaggr") || !strings.Contains(f, "stats.RelError") {
			t.Fatalf("finding %q should blame stats.RelError", f)
		}
	}
}

func TestNaNAggrAllowsStatsPackageItself(t *testing.T) {
	got := check(t, map[string]string{
		"internal/stats/stats.go": statsStub + `
func selfSum(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += RelError(x, 1) // stats may aggregate its own values
	}
	return total
}
`,
	})
	if len(got) != 0 {
		t.Fatalf("findings = %v, want none inside internal/stats", got)
	}
}

func TestAtomicWriteRequiresDirSync(t *testing.T) {
	got := check(t, map[string]string{
		"internal/store/store.go": `package store

import (
	"os"
	"path/filepath"
)

func saveBare(path string, raw []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp.Write(raw)
	tmp.Sync() // temp-file sync alone is not enough
	tmp.Close()
	return os.Rename(tmp.Name(), path) // flagged: no directory sync after
}

func saveDurable(path string, raw []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp.Write(raw)
	tmp.Sync()
	tmp.Close()
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync() // fine: directory handle synced after the rename
}

func saveViaHelper(path string, raw []byte) error {
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path)) // fine: named helper wraps the fsync
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("findings = %v, want exactly the bare rename", got)
	}
	if !strings.Contains(got[0], "atomicwrite") || !strings.Contains(got[0], "store.go:16") {
		t.Fatalf("finding %q should locate the rename in saveBare", got[0])
	}
}

func TestPoolPutFlagsLeakyGet(t *testing.T) {
	got := check(t, map[string]string{
		"internal/buf/buf.go": `package buf

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

func Leaky(n int) int {
	b := pool.Get().(*[]byte) // flagged: no Put on any path
	return n + len(*b)
}

func Balanced(n int) int {
	b := pool.Get().(*[]byte)
	defer pool.Put(b) // fine: covers every return path
	if n < 0 {
		return 0
	}
	return len(*b)
}

func ClosureBalanced(n int) int {
	b := pool.Get().(*[]byte)
	defer func() { pool.Put(b) }() // fine: Put inside a deferred closure
	return n
}

func Transfer() *[]byte {
	if v := pool.Get(); v != nil {
		return v.(*[]byte) // fine: ownership moves to the caller
	}
	return new([]byte)
}

func TransferDirect() *[]byte {
	return pool.Get().(*[]byte) // fine: returned without a binding
}
`,
	})
	if len(got) != 1 {
		t.Fatalf("findings = %v, want exactly the leaky Get", got)
	}
	if !strings.Contains(got[0], "poolput") || !strings.Contains(got[0], "buf.go:8") {
		t.Fatalf("finding %q should locate the Get in Leaky", got[0])
	}
}

// TestRepoIsClean runs both passes over the real repository: the
// invariants hold on the tree as committed. This is the same check CI
// runs via cmd/bhive-vet, kept here so `go test ./...` catches a
// violation first.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	fs, err := Check(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
