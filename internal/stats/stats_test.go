package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelError(t *testing.T) {
	if got := RelError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("got %f", got)
	}
	if got := RelError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("got %f", got)
	}
	if RelError(0, 0) != 0 || RelError(5, 0) != 1 {
		t.Fatal("zero-measured conventions")
	}
}

func TestRelErrorProperties(t *testing.T) {
	// Non-negativity and exactness at equality, for arbitrary inputs.
	f := func(p, m float64) bool {
		if math.IsNaN(p) || math.IsNaN(m) || math.IsInf(p, 0) || math.IsInf(m, 0) {
			return true
		}
		e := RelError(p, m)
		if e < 0 {
			return false
		}
		return RelError(m, m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	got := WeightedMean([]float64{1, 3}, []uint64{3, 1})
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("weighted mean %f", got)
	}
	if WeightedMean([]float64{1}, []uint64{0}) != 0 {
		t.Fatal("zero weights")
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(a, a); got != 1 {
		t.Fatalf("identical rankings: %f", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Fatalf("reversed rankings: %f", got)
	}
	if KendallTau(a, a[:3]) != 0 {
		t.Fatal("length mismatch returns 0")
	}
}

func TestKendallTauNoise(t *testing.T) {
	// A noisy monotone relationship keeps tau high; random data stays
	// near zero.
	rng := rand.New(rand.NewSource(3))
	n := 500
	x := make([]float64, n)
	noisy := make([]float64, n)
	random := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		noisy[i] = float64(i) + rng.NormFloat64()*5
		random[i] = rng.Float64()
	}
	if tau := KendallTau(x, noisy); tau < 0.8 {
		t.Fatalf("noisy monotone tau = %f", tau)
	}
	if tau := KendallTau(x, random); math.Abs(tau) > 0.15 {
		t.Fatalf("random tau = %f", tau)
	}
}

func TestKendallTauLargeExact(t *testing.T) {
	n := 200000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i)
	}
	if got := KendallTau(a, b); got != 1 {
		t.Fatalf("exact tau on identical rankings = %f", got)
	}
	// One swapped adjacent pair removes exactly one concordant pair.
	b[0], b[1] = b[1], b[0]
	want := 1 - 2/float64(int64(n)*int64(n-1)/2)
	if got := KendallTau(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tau after one swap = %.15f, want %.15f", got, want)
	}
}

// TestKendallTauMatchesNaive property-tests Knight's O(n log n) algorithm
// against the quadratic reference, including ties.
func TestKendallTauMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(60)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			// Small integer ranges generate plenty of ties.
			a[i] = float64(rng.Intn(8))
			b[i] = float64(rng.Intn(8))
		}
		fast, slow := KendallTau(a, b), kendallTauNaive(a, b)
		if math.Abs(fast-slow) > 1e-12 {
			t.Fatalf("trial %d: fast %.12f != naive %.12f (a=%v b=%v)",
				trial, fast, slow, a, b)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Fatal("extremes")
	}
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median %f", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty")
	}
}

func TestSummarize(t *testing.T) {
	pred := []float64{1, 2, 4}
	meas := []float64{1, 2, 2}
	s := Summarize(pred, meas, []uint64{1, 1, 2})
	if s.N != 3 {
		t.Fatal("n")
	}
	if math.Abs(s.MeanError-1.0/3) > 1e-12 {
		t.Fatalf("mean error %f", s.MeanError)
	}
	if math.Abs(s.WeightedError-0.5) > 1e-12 {
		t.Fatalf("weighted error %f", s.WeightedError)
	}
	if s.Tau < 0.5 {
		t.Fatalf("tau %f", s.Tau)
	}
}
