package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelError(t *testing.T) {
	if got := RelError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("got %f", got)
	}
	if got := RelError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("got %f", got)
	}
	if RelError(0, 0) != 0 || RelError(5, 0) != 1 {
		t.Fatal("zero-measured conventions")
	}
}

func TestRelErrorProperties(t *testing.T) {
	// Non-negativity and exactness at equality, for arbitrary inputs.
	f := func(p, m float64) bool {
		if math.IsNaN(p) || math.IsNaN(m) || math.IsInf(p, 0) || math.IsInf(m, 0) {
			return true
		}
		e := RelError(p, m)
		if e < 0 {
			return false
		}
		return RelError(m, m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	got := WeightedMean([]float64{1, 3}, []uint64{3, 1})
	if math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("weighted mean %f", got)
	}
	if WeightedMean([]float64{1}, []uint64{0}) != 0 {
		t.Fatal("zero weights")
	}
}

func TestMeansNaNPolicy(t *testing.T) {
	// NaN entries are "no data", not poison.
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Fatalf("mean with NaN: %v", got)
	}
	if got := Mean([]float64{math.NaN()}); got != 0 {
		t.Fatalf("all-NaN mean: %v", got)
	}
	// The NaN value's weight must be excluded with it.
	if got := WeightedMean([]float64{1, math.NaN()}, []uint64{1, 1000}); got != 1 {
		t.Fatalf("weighted mean with NaN: %v", got)
	}
	// A length mismatch is misuse, reported as NaN instead of a panic.
	if got := WeightedMean([]float64{1, 2}, []uint64{1}); !math.IsNaN(got) {
		t.Fatalf("length mismatch must yield NaN, got %v", got)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(a, a); got != 1 {
		t.Fatalf("identical rankings: %f", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Fatalf("reversed rankings: %f", got)
	}
	if KendallTau(a, a[:3]) != 0 {
		t.Fatal("length mismatch returns 0")
	}
}

func TestKendallTauNoise(t *testing.T) {
	// A noisy monotone relationship keeps tau high; random data stays
	// near zero.
	rng := rand.New(rand.NewSource(3))
	n := 500
	x := make([]float64, n)
	noisy := make([]float64, n)
	random := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		noisy[i] = float64(i) + rng.NormFloat64()*5
		random[i] = rng.Float64()
	}
	if tau := KendallTau(x, noisy); tau < 0.8 {
		t.Fatalf("noisy monotone tau = %f", tau)
	}
	if tau := KendallTau(x, random); math.Abs(tau) > 0.15 {
		t.Fatalf("random tau = %f", tau)
	}
}

func TestKendallTauNaNAndTies(t *testing.T) {
	// NaN pairs are dropped; ties among the surviving pairs are discounted
	// exactly as if the NaN rows had never been collected. Failed models
	// produce NaN predictions, so this is the harness's everyday case.
	a := []float64{1, 2, 2, 3, 4, 5}
	b := []float64{1, 2, 2, 3, 4, 5}
	an := []float64{1, 2, math.NaN(), 2, 3, 4, math.NaN(), 5}
	bn := []float64{1, 2, 7, 2, 3, 4, math.NaN(), 5}
	if got, want := KendallTau(an, bn), KendallTau(a, b); got != want {
		t.Fatalf("NaN-filtered tau %v != clean tau %v", got, want)
	}
	// The naive reference applies the same policy.
	if got, want := KendallTau(an, bn), kendallTauNaive(an, bn); math.Abs(got-want) > 1e-12 {
		t.Fatalf("fast %v != naive %v on NaN input", got, want)
	}
	// An all-NaN side leaves fewer than two pairs.
	nan2 := []float64{math.NaN(), math.NaN(), 1}
	if got := KendallTau(nan2, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("degenerate tau %v", got)
	}
}

func TestSummarizeNaNPolicy(t *testing.T) {
	pred := []float64{1, math.NaN(), 4}
	meas := []float64{1, 2, 2}
	s := Summarize(pred, meas, []uint64{1, 99, 2})
	if s.N != 2 {
		t.Fatalf("N must count surviving pairs: %d", s.N)
	}
	if s.MeanError != 0.5 {
		t.Fatalf("mean error %v", s.MeanError)
	}
	// The NaN row's weight (99) must not dilute the weighted error.
	want := (0*1 + 1*2) / 3.0
	if math.Abs(s.WeightedError-want) > 1e-12 {
		t.Fatalf("weighted error %v want %v", s.WeightedError, want)
	}
}

func TestKendallTauLargeExact(t *testing.T) {
	n := 200000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i)
	}
	if got := KendallTau(a, b); got != 1 {
		t.Fatalf("exact tau on identical rankings = %f", got)
	}
	// One swapped adjacent pair removes exactly one concordant pair.
	b[0], b[1] = b[1], b[0]
	want := 1 - 2/float64(int64(n)*int64(n-1)/2)
	if got := KendallTau(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tau after one swap = %.15f, want %.15f", got, want)
	}
}

// TestKendallTauMatchesNaive property-tests Knight's O(n log n) algorithm
// against the quadratic reference, including ties.
func TestKendallTauMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(60)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			// Small integer ranges generate plenty of ties.
			a[i] = float64(rng.Intn(8))
			b[i] = float64(rng.Intn(8))
		}
		fast, slow := KendallTau(a, b), kendallTauNaive(a, b)
		if math.Abs(fast-slow) > 1e-12 {
			t.Fatalf("trial %d: fast %.12f != naive %.12f (a=%v b=%v)",
				trial, fast, slow, a, b)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Fatal("extremes")
	}
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median %f", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty")
	}
}

func TestSummarize(t *testing.T) {
	pred := []float64{1, 2, 4}
	meas := []float64{1, 2, 2}
	s := Summarize(pred, meas, []uint64{1, 1, 2})
	if s.N != 3 {
		t.Fatal("n")
	}
	if math.Abs(s.MeanError-1.0/3) > 1e-12 {
		t.Fatalf("mean error %f", s.MeanError)
	}
	if math.Abs(s.WeightedError-0.5) > 1e-12 {
		t.Fatalf("weighted error %f", s.WeightedError)
	}
	if s.Tau < 0.5 {
		t.Fatalf("tau %f", s.Tau)
	}
}
