package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// This file holds the incremental aggregators the sharded evaluation
// pipeline streams into: per-shard results are folded in as they
// complete, so summary tables are produced without re-walking (or even
// retaining) full per-record slices. All aggregators follow the package
// NaN policy (NaN inputs are dropped) and are mergeable, so shards can be
// aggregated independently and combined.
//
// Determinism note: Running/RunningWeighted accumulate with the same
// left-to-right float additions as Mean/WeightedMean, so feeding the same
// values in the same order yields bit-identical results — which is what
// keeps resumed runs byte-identical to uninterrupted ones.

// Running accumulates an unweighted mean incrementally.
type Running struct {
	sum float64
	n   int
}

// Add folds one value in; NaN is ignored.
func (r *Running) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	r.sum += x
	r.n++
}

// Merge folds another accumulator in.
func (r *Running) Merge(o Running) {
	r.sum += o.sum
	r.n += o.n
}

// N returns the number of accumulated values.
func (r *Running) N() int { return r.n }

// Mean returns the accumulated mean (0 if nothing was accumulated,
// matching Mean on an empty slice).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// RunningWeighted accumulates a frequency-weighted mean incrementally.
type RunningWeighted struct {
	sum float64
	w   float64
	n   int
}

// Add folds one (value, weight) pair in; NaN values are ignored.
func (r *RunningWeighted) Add(x float64, weight uint64) {
	if math.IsNaN(x) {
		return
	}
	r.sum += x * float64(weight)
	r.w += float64(weight)
	r.n++
}

// Merge folds another accumulator in.
func (r *RunningWeighted) Merge(o RunningWeighted) {
	r.sum += o.sum
	r.w += o.w
	r.n += o.n
}

// N returns the number of accumulated values.
func (r *RunningWeighted) N() int { return r.n }

// Mean returns the accumulated weighted mean (0 if the accumulated
// weights sum to 0, matching WeightedMean).
func (r *RunningWeighted) Mean() float64 {
	if r.w == 0 {
		return 0
	}
	return r.sum / r.w
}

// TauAcc accumulates (prediction, measurement) pairs for Kendall's tau.
// Exact tau needs every pair at evaluation time, so the accumulator
// retains the values it is fed (O(n) memory — but only two float64 per
// pair, not the full per-record bookkeeping of the harness); what it buys
// is a mergeable, incrementally fed interface: shards Add their pairs as
// they complete and independent accumulators Merge associatively.
type TauAcc struct {
	a, b []float64
}

// Add folds one pair in; pairs with NaN on either side are dropped, as
// KendallTau itself would drop them.
func (t *TauAcc) Add(pred, meas float64) {
	if math.IsNaN(pred) || math.IsNaN(meas) {
		return
	}
	t.a = append(t.a, pred)
	t.b = append(t.b, meas)
}

// Merge folds another accumulator in.
func (t *TauAcc) Merge(o *TauAcc) {
	t.a = append(t.a, o.a...)
	t.b = append(t.b, o.b...)
}

// N returns the number of accumulated pairs.
func (t *TauAcc) N() int { return len(t.a) }

// Value computes Kendall's tau over the accumulated pairs (0 if fewer
// than two pairs were accumulated, matching KendallTau).
func (t *TauAcc) Value() float64 { return KendallTau(t.a, t.b) }

// The aggregators serialize to JSON so per-shard partial results can
// cross process boundaries — a distributed worker computes a shard's
// aggregates locally, ships them over HTTP, and the coordinator Merges
// them. The wire forms expose exactly the internal state, and JSON's
// shortest-round-trip float encoding restores every float64 bit-exactly.
// Note the precision boundary: TauAcc merges are *identical* to direct
// accumulation (pairs concatenate in order), but Running/RunningWeighted
// merges add per-shard partial sums, which rounds differently than one
// left-to-right fold over all values (floating-point addition is not
// associative) — close to machine epsilon, but not bitwise. That is why
// the distributed coordinator derives its byte-identical final tables
// from journal replay and uses merged aggregates only for live partial
// status and cross-checks.

// runningJSON is the wire form of Running.
type runningJSON struct {
	Sum float64 `json:"sum"`
	N   int     `json:"n"`
}

// MarshalJSON serializes the accumulator state.
func (r Running) MarshalJSON() ([]byte, error) {
	return json.Marshal(runningJSON{Sum: r.sum, N: r.n})
}

// UnmarshalJSON restores serialized accumulator state, replacing the
// receiver's contents.
func (r *Running) UnmarshalJSON(raw []byte) error {
	var w runningJSON
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("stats: Running: %w", err)
	}
	if w.N < 0 {
		return fmt.Errorf("stats: Running: negative count %d", w.N)
	}
	r.sum, r.n = w.Sum, w.N
	return nil
}

// runningWeightedJSON is the wire form of RunningWeighted.
type runningWeightedJSON struct {
	Sum float64 `json:"sum"`
	W   float64 `json:"w"`
	N   int     `json:"n"`
}

// MarshalJSON serializes the accumulator state.
func (r RunningWeighted) MarshalJSON() ([]byte, error) {
	return json.Marshal(runningWeightedJSON{Sum: r.sum, W: r.w, N: r.n})
}

// UnmarshalJSON restores serialized accumulator state, replacing the
// receiver's contents.
func (r *RunningWeighted) UnmarshalJSON(raw []byte) error {
	var w runningWeightedJSON
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("stats: RunningWeighted: %w", err)
	}
	if w.N < 0 {
		return fmt.Errorf("stats: RunningWeighted: negative count %d", w.N)
	}
	r.sum, r.w, r.n = w.Sum, w.W, w.N
	return nil
}

// tauJSON is the wire form of TauAcc. The accumulator retains its pairs
// (exact tau needs them all), so the wire form does too; NaN never
// appears — Add drops NaN pairs before they are retained.
type tauJSON struct {
	A []float64 `json:"a"`
	B []float64 `json:"b"`
}

// MarshalJSON serializes the accumulated pairs.
func (t TauAcc) MarshalJSON() ([]byte, error) {
	// Empty slices (not null) keep the round-trip symmetric.
	a, b := t.a, t.b
	if a == nil {
		a = []float64{}
	}
	if b == nil {
		b = []float64{}
	}
	return json.Marshal(tauJSON{A: a, B: b})
}

// UnmarshalJSON restores serialized pairs, replacing the receiver's
// contents.
func (t *TauAcc) UnmarshalJSON(raw []byte) error {
	var w tauJSON
	if err := json.Unmarshal(raw, &w); err != nil {
		return fmt.Errorf("stats: TauAcc: %w", err)
	}
	if len(w.A) != len(w.B) {
		return fmt.Errorf("stats: TauAcc: mismatched pair slices (%d vs %d)", len(w.A), len(w.B))
	}
	t.a, t.b = w.A, w.B
	return nil
}
