package stats

import "math"

// This file holds the incremental aggregators the sharded evaluation
// pipeline streams into: per-shard results are folded in as they
// complete, so summary tables are produced without re-walking (or even
// retaining) full per-record slices. All aggregators follow the package
// NaN policy (NaN inputs are dropped) and are mergeable, so shards can be
// aggregated independently and combined.
//
// Determinism note: Running/RunningWeighted accumulate with the same
// left-to-right float additions as Mean/WeightedMean, so feeding the same
// values in the same order yields bit-identical results — which is what
// keeps resumed runs byte-identical to uninterrupted ones.

// Running accumulates an unweighted mean incrementally.
type Running struct {
	sum float64
	n   int
}

// Add folds one value in; NaN is ignored.
func (r *Running) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	r.sum += x
	r.n++
}

// Merge folds another accumulator in.
func (r *Running) Merge(o Running) {
	r.sum += o.sum
	r.n += o.n
}

// N returns the number of accumulated values.
func (r *Running) N() int { return r.n }

// Mean returns the accumulated mean (0 if nothing was accumulated,
// matching Mean on an empty slice).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// RunningWeighted accumulates a frequency-weighted mean incrementally.
type RunningWeighted struct {
	sum float64
	w   float64
	n   int
}

// Add folds one (value, weight) pair in; NaN values are ignored.
func (r *RunningWeighted) Add(x float64, weight uint64) {
	if math.IsNaN(x) {
		return
	}
	r.sum += x * float64(weight)
	r.w += float64(weight)
	r.n++
}

// Merge folds another accumulator in.
func (r *RunningWeighted) Merge(o RunningWeighted) {
	r.sum += o.sum
	r.w += o.w
	r.n += o.n
}

// N returns the number of accumulated values.
func (r *RunningWeighted) N() int { return r.n }

// Mean returns the accumulated weighted mean (0 if the accumulated
// weights sum to 0, matching WeightedMean).
func (r *RunningWeighted) Mean() float64 {
	if r.w == 0 {
		return 0
	}
	return r.sum / r.w
}

// TauAcc accumulates (prediction, measurement) pairs for Kendall's tau.
// Exact tau needs every pair at evaluation time, so the accumulator
// retains the values it is fed (O(n) memory — but only two float64 per
// pair, not the full per-record bookkeeping of the harness); what it buys
// is a mergeable, incrementally fed interface: shards Add their pairs as
// they complete and independent accumulators Merge associatively.
type TauAcc struct {
	a, b []float64
}

// Add folds one pair in; pairs with NaN on either side are dropped, as
// KendallTau itself would drop them.
func (t *TauAcc) Add(pred, meas float64) {
	if math.IsNaN(pred) || math.IsNaN(meas) {
		return
	}
	t.a = append(t.a, pred)
	t.b = append(t.b, meas)
}

// Merge folds another accumulator in.
func (t *TauAcc) Merge(o *TauAcc) {
	t.a = append(t.a, o.a...)
	t.b = append(t.b, o.b...)
}

// N returns the number of accumulated pairs.
func (t *TauAcc) N() int { return len(t.a) }

// Value computes Kendall's tau over the accumulated pairs (0 if fewer
// than two pairs were accumulated, matching KendallTau).
func (t *TauAcc) Value() float64 { return KendallTau(t.a, t.b) }
