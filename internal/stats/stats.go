// Package stats provides the evaluation metrics of the paper: relative
// error, unweighted and frequency-weighted averages, and Kendall's tau
// (the fraction of pairwise throughput orderings a model preserves).
//
// NaN policy: failed model predictions surface as NaN in the harness, so
// every aggregate here treats NaN as "no data" rather than letting it
// poison the result. Mean, WeightedMean and Percentile skip NaN inputs;
// KendallTau drops pairs with NaN on either side; Summarize filters
// (prediction, measurement, weight) triples with NaN in either value
// before computing anything, and reports the filtered count as N. A
// length mismatch in WeightedMean or KendallTau is caller misuse and is
// reported by returning NaN / 0 respectively instead of panicking deep
// inside a long evaluation run.
package stats

import (
	"math"
	"sort"
)

// RelError is the paper's error metric: |predicted − measured| / measured.
func RelError(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return 1
	}
	d := predicted - measured
	if d < 0 {
		d = -d
	}
	if measured < 0 {
		measured = -measured
	}
	return d / measured
}

// Mean returns the unweighted average of the non-NaN values of xs
// (0 if no values remain).
func Mean(xs []float64) float64 {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.Mean()
}

// WeightedMean returns the weighted average of the non-NaN values of xs
// (0 if the surviving weights sum to 0). A length mismatch between xs and
// ws is misuse and yields NaN.
func WeightedMean(xs []float64, ws []uint64) float64 {
	if len(xs) != len(ws) {
		return math.NaN()
	}
	var r RunningWeighted
	for i, x := range xs {
		r.Add(x, ws[i])
	}
	return r.Mean()
}

// KendallTau computes Kendall's tau-a between two value sequences: the
// difference between concordant and discordant pair fractions. The paper
// reports it as "the fraction of pairwise throughput ordering preserved",
// so values near 1 are good. Knight's O(n log n) algorithm: sort by the
// first sequence and count inversions of the second with a merge sort,
// discounting tied pairs.
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	// Pairs with NaN on either side carry no ordering information and are
	// dropped (see the package NaN policy).
	type pair struct{ a, b float64 }
	ps := make([]pair, 0, len(a))
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		ps = append(ps, pair{a[i], b[i]})
	}
	n := len(ps)
	if n < 2 {
		return 0
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].a != ps[j].a {
			return ps[i].a < ps[j].a
		}
		return ps[i].b < ps[j].b
	})

	tiePairs := func(count int64) int64 { return count * (count - 1) / 2 }

	// Tie counts in a, and joint ties, from the sorted order.
	var n1, n3 int64
	for i := 0; i < n; {
		j := i
		for j < n && ps[j].a == ps[i].a {
			j++
		}
		n1 += tiePairs(int64(j - i))
		for k := i; k < j; {
			m := k
			for m < j && ps[m].b == ps[k].b {
				m++
			}
			n3 += tiePairs(int64(m - k))
			k = m
		}
		i = j
	}

	// Tie counts in b.
	bs := make([]float64, n)
	for i := range ps {
		bs[i] = ps[i].b
	}
	sorted := append([]float64(nil), bs...)
	sort.Float64s(sorted)
	var n2 int64
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		n2 += tiePairs(int64(j - i))
		i = j
	}

	// Count strict inversions of bs with a merge sort.
	inv := countInversions(bs, make([]float64, n))

	n0 := tiePairs(int64(n))
	discordant := inv
	concordant := n0 - n1 - n2 + n3 - inv
	return float64(concordant-discordant) / float64(n0)
}

// countInversions counts pairs i<j with xs[i] > xs[j] (strictly), in
// O(n log n) via merge sort. xs is sorted in place; buf is scratch.
func countInversions(xs, buf []float64) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := countInversions(xs[:mid], buf) + countInversions(xs[mid:], buf)
	// Merge, counting how many elements of the left half exceed each
	// element of the right half.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			inv += int64(mid - i)
			buf[k] = xs[j]
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = xs[i]
		i++
		k++
	}
	for j < n {
		buf[k] = xs[j]
		j++
		k++
	}
	copy(xs, buf[:n])
	return inv
}

// kendallTauNaive is the O(n²) reference implementation, kept for
// property-testing the fast path. It applies the same NaN-pair filtering.
func kendallTauNaive(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var fa, fb []float64
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		fa = append(fa, a[i])
		fb = append(fb, b[i])
	}
	a, b = fa, fb
	n := len(a)
	if n < 2 {
		return 0
	}
	var concordant, discordant int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	pairs := int64(n) * int64(n-1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// Percentile returns the p-th percentile (0..100) of the non-NaN values
// of xs (0 if no values remain). NaN values would break sort.Float64s'
// ordering invariants, so they are filtered before sorting.
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	idx := p / 100 * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary aggregates per-block errors for one (model, slice) cell.
type Summary struct {
	N             int
	MeanError     float64
	WeightedError float64
	Median        float64
	P90           float64
	Tau           float64
}

// Summarize builds a Summary from parallel prediction/measurement/weight
// slices. Triples with NaN in the prediction or measurement are filtered
// out first (see the package NaN policy); N reports the surviving count.
func Summarize(pred, meas []float64, weights []uint64) Summary {
	var fp, fm []float64
	var fw []uint64
	for i := range pred {
		if math.IsNaN(pred[i]) || math.IsNaN(meas[i]) {
			continue
		}
		fp = append(fp, pred[i])
		fm = append(fm, meas[i])
		if weights != nil && i < len(weights) {
			fw = append(fw, weights[i])
		}
	}
	errs := make([]float64, len(fp))
	for i := range fp {
		errs[i] = RelError(fp[i], fm[i])
	}
	s := Summary{
		N:         len(fp),
		MeanError: Mean(errs),
		Median:    Percentile(errs, 50),
		P90:       Percentile(errs, 90),
		Tau:       KendallTau(fp, fm),
	}
	if weights != nil {
		s.WeightedError = WeightedMean(errs, fw)
	}
	return s
}
