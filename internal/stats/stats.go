// Package stats provides the evaluation metrics of the paper: relative
// error, unweighted and frequency-weighted averages, and Kendall's tau
// (the fraction of pairwise throughput orderings a model preserves).
package stats

import "sort"

// RelError is the paper's error metric: |predicted − measured| / measured.
func RelError(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return 1
	}
	d := predicted - measured
	if d < 0 {
		d = -d
	}
	if measured < 0 {
		measured = -measured
	}
	return d / measured
}

// Mean returns the unweighted average of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WeightedMean returns the weighted average of xs (0 if weights sum to 0).
func WeightedMean(xs []float64, ws []uint64) float64 {
	var s, w float64
	for i, x := range xs {
		s += x * float64(ws[i])
		w += float64(ws[i])
	}
	if w == 0 {
		return 0
	}
	return s / w
}

// KendallTau computes Kendall's tau-a between two value sequences: the
// difference between concordant and discordant pair fractions. The paper
// reports it as "the fraction of pairwise throughput ordering preserved",
// so values near 1 are good. Knight's O(n log n) algorithm: sort by the
// first sequence and count inversions of the second with a merge sort,
// discounting tied pairs.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	type pair struct{ a, b float64 }
	ps := make([]pair, n)
	for i := range ps {
		ps[i] = pair{a[i], b[i]}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].a != ps[j].a {
			return ps[i].a < ps[j].a
		}
		return ps[i].b < ps[j].b
	})

	tiePairs := func(count int64) int64 { return count * (count - 1) / 2 }

	// Tie counts in a, and joint ties, from the sorted order.
	var n1, n3 int64
	for i := 0; i < n; {
		j := i
		for j < n && ps[j].a == ps[i].a {
			j++
		}
		n1 += tiePairs(int64(j - i))
		for k := i; k < j; {
			m := k
			for m < j && ps[m].b == ps[k].b {
				m++
			}
			n3 += tiePairs(int64(m - k))
			k = m
		}
		i = j
	}

	// Tie counts in b.
	bs := make([]float64, n)
	for i := range ps {
		bs[i] = ps[i].b
	}
	sorted := append([]float64(nil), bs...)
	sort.Float64s(sorted)
	var n2 int64
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		n2 += tiePairs(int64(j - i))
		i = j
	}

	// Count strict inversions of bs with a merge sort.
	inv := countInversions(bs, make([]float64, n))

	n0 := tiePairs(int64(n))
	discordant := inv
	concordant := n0 - n1 - n2 + n3 - inv
	return float64(concordant-discordant) / float64(n0)
}

// countInversions counts pairs i<j with xs[i] > xs[j] (strictly), in
// O(n log n) via merge sort. xs is sorted in place; buf is scratch.
func countInversions(xs, buf []float64) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := countInversions(xs[:mid], buf) + countInversions(xs[mid:], buf)
	// Merge, counting how many elements of the left half exceed each
	// element of the right half.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			inv += int64(mid - i)
			buf[k] = xs[j]
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = xs[i]
		i++
		k++
	}
	for j < n {
		buf[k] = xs[j]
		j++
		k++
	}
	copy(xs, buf[:n])
	return inv
}

// kendallTauNaive is the O(n²) reference implementation, kept for
// property-testing the fast path.
func kendallTauNaive(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	var concordant, discordant int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	pairs := int64(n) * int64(n-1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// Percentile returns the p-th percentile (0..100) of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := p / 100 * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary aggregates per-block errors for one (model, slice) cell.
type Summary struct {
	N             int
	MeanError     float64
	WeightedError float64
	Median        float64
	P90           float64
	Tau           float64
}

// Summarize builds a Summary from parallel prediction/measurement/weight
// slices.
func Summarize(pred, meas []float64, weights []uint64) Summary {
	errs := make([]float64, len(pred))
	for i := range pred {
		errs[i] = RelError(pred[i], meas[i])
	}
	s := Summary{
		N:         len(pred),
		MeanError: Mean(errs),
		Median:    Percentile(errs, 50),
		P90:       Percentile(errs, 90),
		Tau:       KendallTau(pred, meas),
	}
	if weights != nil {
		s.WeightedError = WeightedMean(errs, weights)
	}
	return s
}
