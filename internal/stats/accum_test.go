package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestRunningMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	// Same addition order ⇒ bit-identical, not just approximately equal.
	if r.Mean() != Mean(xs) {
		t.Fatalf("running mean %v != Mean %v", r.Mean(), Mean(xs))
	}
	if r.N() != len(xs) {
		t.Fatalf("n %d", r.N())
	}
}

func TestRunningSkipsNaNAndMerges(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(math.NaN())
	a.Add(3)
	b.Add(5)
	a.Merge(b)
	if a.N() != 3 {
		t.Fatalf("NaN must be dropped: n=%d", a.N())
	}
	if a.Mean() != 3 {
		t.Fatalf("merged mean %v", a.Mean())
	}
	var empty Running
	if empty.Mean() != 0 {
		t.Fatal("empty running mean")
	}
}

func TestRunningWeightedMatchesWeightedMean(t *testing.T) {
	xs := []float64{1, math.NaN(), 3}
	ws := []uint64{1, 100, 3}
	var r RunningWeighted
	for i := range xs {
		r.Add(xs[i], ws[i])
	}
	want := WeightedMean(xs, ws)
	if r.Mean() != want {
		t.Fatalf("running weighted %v != WeightedMean %v", r.Mean(), want)
	}
	if r.N() != 2 {
		t.Fatalf("NaN must be dropped: n=%d", r.N())
	}
	var x, y RunningWeighted
	x.Add(1, 1)
	y.Add(3, 3)
	x.Merge(y)
	if math.Abs(x.Mean()-2.5) > 1e-12 {
		t.Fatalf("merged %v", x.Mean())
	}
	var empty RunningWeighted
	if empty.Mean() != 0 {
		t.Fatal("zero-weight mean")
	}
}

func TestTauAccMatchesKendallTau(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 300
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		// Small ranges generate ties; sprinkle NaN in too.
		a[i] = float64(rng.Intn(6))
		b[i] = float64(rng.Intn(6))
		if rng.Intn(20) == 0 {
			b[i] = math.NaN()
		}
	}
	var acc TauAcc
	for i := range a {
		acc.Add(a[i], b[i])
	}
	if got, want := acc.Value(), KendallTau(a, b); got != want {
		t.Fatalf("acc tau %v != KendallTau %v", got, want)
	}

	// Merging shard-wise accumulators must agree with one big accumulator.
	var merged TauAcc
	for lo := 0; lo < n; lo += 64 {
		hi := lo + 64
		if hi > n {
			hi = n
		}
		var shard TauAcc
		for i := lo; i < hi; i++ {
			shard.Add(a[i], b[i])
		}
		merged.Merge(&shard)
	}
	if merged.Value() != acc.Value() || merged.N() != acc.N() {
		t.Fatalf("merged tau %v (n=%d) != %v (n=%d)",
			merged.Value(), merged.N(), acc.Value(), acc.N())
	}

	var empty TauAcc
	if empty.Value() != 0 {
		t.Fatal("empty tau")
	}
}

// TestAggregateWireRoundTrip pins the distributed-merge contract: an
// accumulator serialized on a worker, decoded on the coordinator, and
// Merged must agree with one accumulator fed directly — bit-identically
// for TauAcc (pairs concatenate in order), and to within float rounding
// for the running means (merging partial sums re-associates the
// additions, which is why byte-identical distributed results come from
// journal replay, not from these merges).
func TestAggregateWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 500
	vals := make([]float64, n)
	meas := make([]float64, n)
	ws := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
		meas[i] = float64(rng.Intn(9))
		ws[i] = uint64(rng.Intn(100))
		if rng.Intn(25) == 0 {
			vals[i] = math.NaN()
		}
	}

	// Reference: one accumulator fed directly, in order.
	var wantR Running
	var wantW RunningWeighted
	var wantT TauAcc
	for i := range vals {
		wantR.Add(vals[i])
		wantW.Add(vals[i], ws[i])
		wantT.Add(vals[i], meas[i])
	}

	// Distributed: per-shard accumulators round-trip through JSON, then
	// merge in shard order.
	var gotR Running
	var gotW RunningWeighted
	var gotT TauAcc
	for lo := 0; lo < n; lo += 128 {
		hi := lo + 128
		if hi > n {
			hi = n
		}
		var sr Running
		var sw RunningWeighted
		var st TauAcc
		for i := lo; i < hi; i++ {
			sr.Add(vals[i])
			sw.Add(vals[i], ws[i])
			st.Add(vals[i], meas[i])
		}
		raw, err := json.Marshal(struct {
			R Running         `json:"r"`
			W RunningWeighted `json:"w"`
			T TauAcc          `json:"t"`
		}{sr, sw, st})
		if err != nil {
			t.Fatal(err)
		}
		var dec struct {
			R Running         `json:"r"`
			W RunningWeighted `json:"w"`
			T TauAcc          `json:"t"`
		}
		if err := json.Unmarshal(raw, &dec); err != nil {
			t.Fatal(err)
		}
		gotR.Merge(dec.R)
		gotW.Merge(dec.W)
		gotT.Merge(&dec.T)
	}

	relClose := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
	}
	if !relClose(gotR.Mean(), wantR.Mean()) || gotR.N() != wantR.N() {
		t.Fatalf("Running wire merge: %v/%d != %v/%d", gotR.Mean(), gotR.N(), wantR.Mean(), wantR.N())
	}
	if !relClose(gotW.Mean(), wantW.Mean()) || gotW.N() != wantW.N() {
		t.Fatalf("RunningWeighted wire merge: %v/%d != %v/%d", gotW.Mean(), gotW.N(), wantW.Mean(), wantW.N())
	}
	// Tau pairs concatenate in shard order: identical, not just close.
	if gotT.Value() != wantT.Value() || gotT.N() != wantT.N() {
		t.Fatalf("TauAcc wire merge: %v/%d != %v/%d", gotT.Value(), gotT.N(), wantT.Value(), wantT.N())
	}
}

// TestAggregateWireRejectsCorruption: malformed wire payloads must fail
// loudly, not decode into silently-wrong aggregates.
func TestAggregateWireRejectsCorruption(t *testing.T) {
	var r Running
	if err := json.Unmarshal([]byte(`{"sum":1,"n":-2}`), &r); err == nil {
		t.Fatal("negative count accepted")
	}
	var w RunningWeighted
	if err := json.Unmarshal([]byte(`{"sum":1,"w":1,"n":-1}`), &w); err == nil {
		t.Fatal("negative count accepted")
	}
	var acc TauAcc
	if err := json.Unmarshal([]byte(`{"a":[1,2],"b":[1]}`), &acc); err == nil {
		t.Fatal("mismatched pair slices accepted")
	}
	var empty TauAcc
	raw, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"a":[],"b":[]}` {
		t.Fatalf("empty TauAcc wire form %s", raw)
	}
}
