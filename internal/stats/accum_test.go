package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunningMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	// Same addition order ⇒ bit-identical, not just approximately equal.
	if r.Mean() != Mean(xs) {
		t.Fatalf("running mean %v != Mean %v", r.Mean(), Mean(xs))
	}
	if r.N() != len(xs) {
		t.Fatalf("n %d", r.N())
	}
}

func TestRunningSkipsNaNAndMerges(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(math.NaN())
	a.Add(3)
	b.Add(5)
	a.Merge(b)
	if a.N() != 3 {
		t.Fatalf("NaN must be dropped: n=%d", a.N())
	}
	if a.Mean() != 3 {
		t.Fatalf("merged mean %v", a.Mean())
	}
	var empty Running
	if empty.Mean() != 0 {
		t.Fatal("empty running mean")
	}
}

func TestRunningWeightedMatchesWeightedMean(t *testing.T) {
	xs := []float64{1, math.NaN(), 3}
	ws := []uint64{1, 100, 3}
	var r RunningWeighted
	for i := range xs {
		r.Add(xs[i], ws[i])
	}
	want := WeightedMean(xs, ws)
	if r.Mean() != want {
		t.Fatalf("running weighted %v != WeightedMean %v", r.Mean(), want)
	}
	if r.N() != 2 {
		t.Fatalf("NaN must be dropped: n=%d", r.N())
	}
	var x, y RunningWeighted
	x.Add(1, 1)
	y.Add(3, 3)
	x.Merge(y)
	if math.Abs(x.Mean()-2.5) > 1e-12 {
		t.Fatalf("merged %v", x.Mean())
	}
	var empty RunningWeighted
	if empty.Mean() != 0 {
		t.Fatal("zero-weight mean")
	}
}

func TestTauAccMatchesKendallTau(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 300
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		// Small ranges generate ties; sprinkle NaN in too.
		a[i] = float64(rng.Intn(6))
		b[i] = float64(rng.Intn(6))
		if rng.Intn(20) == 0 {
			b[i] = math.NaN()
		}
	}
	var acc TauAcc
	for i := range a {
		acc.Add(a[i], b[i])
	}
	if got, want := acc.Value(), KendallTau(a, b); got != want {
		t.Fatalf("acc tau %v != KendallTau %v", got, want)
	}

	// Merging shard-wise accumulators must agree with one big accumulator.
	var merged TauAcc
	for lo := 0; lo < n; lo += 64 {
		hi := lo + 64
		if hi > n {
			hi = n
		}
		var shard TauAcc
		for i := lo; i < hi; i++ {
			shard.Add(a[i], b[i])
		}
		merged.Merge(&shard)
	}
	if merged.Value() != acc.Value() || merged.N() != acc.N() {
		t.Fatalf("merged tau %v (n=%d) != %v (n=%d)",
			merged.Value(), merged.N(), acc.Value(), acc.N())
	}

	var empty TauAcc
	if empty.Value() != 0 {
		t.Fatal("empty tau")
	}
}
