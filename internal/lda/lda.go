// Package lda implements Latent Dirichlet Allocation with collapsed Gibbs
// sampling — the topic model the paper uses to cluster basic blocks by
// their micro-ops' execution-port combinations (documents are blocks,
// words are port combinations, topics are block categories).
package lda

import "math/rand"

// Model holds a fitted LDA topic model.
type Model struct {
	K, V  int
	Alpha float64
	Beta  float64

	// Assignments[d][i] is the topic of word i in document d.
	Assignments [][]int

	ndk [][]int // documents x topics
	nkw [][]int // topics x vocabulary
	nk  []int   // topic totals
}

// Fit runs collapsed Gibbs sampling on the documents (each a slice of
// word ids in [0, vocab)) for the given number of sweeps.
func Fit(docs [][]int, vocab, topics int, alpha, beta float64, sweeps int, seed int64) *Model {
	return FitSeeded(docs, nil, vocab, topics, alpha, beta, sweeps, seed)
}

// FitSeeded is Fit with optional semi-supervised initialization: hints has
// the shape of docs and assigns an initial topic per word (-1 for random).
// Seeding only breaks the topic-label symmetry of the initial state; the
// sampler is free to move every assignment afterwards.
func FitSeeded(docs, hints [][]int, vocab, topics int, alpha, beta float64, sweeps int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{K: topics, V: vocab, Alpha: alpha, Beta: beta}
	m.ndk = make([][]int, len(docs))
	m.nkw = make([][]int, topics)
	m.nk = make([]int, topics)
	for k := range m.nkw {
		m.nkw[k] = make([]int, vocab)
	}
	m.Assignments = make([][]int, len(docs))

	for d, doc := range docs {
		m.ndk[d] = make([]int, topics)
		m.Assignments[d] = make([]int, len(doc))
		for i, w := range doc {
			k := -1
			if hints != nil && hints[d] != nil {
				k = hints[d][i]
			}
			if k < 0 || k >= topics || rng.Intn(50) == 0 {
				k = rng.Intn(topics)
			}
			m.Assignments[d][i] = k
			m.ndk[d][k]++
			m.nkw[k][w]++
			m.nk[k]++
		}
	}

	probs := make([]float64, topics)
	vb := float64(vocab) * beta
	for sweep := 0; sweep < sweeps; sweep++ {
		for d, doc := range docs {
			for i, w := range doc {
				old := m.Assignments[d][i]
				m.ndk[d][old]--
				m.nkw[old][w]--
				m.nk[old]--

				total := 0.0
				for k := 0; k < topics; k++ {
					p := (float64(m.ndk[d][k]) + alpha) *
						(float64(m.nkw[k][w]) + beta) /
						(float64(m.nk[k]) + vb)
					probs[k] = p
					total += p
				}
				x := rng.Float64() * total
				k := 0
				for ; k < topics-1; k++ {
					x -= probs[k]
					if x < 0 {
						break
					}
				}
				m.Assignments[d][i] = k
				m.ndk[d][k]++
				m.nkw[k][w]++
				m.nk[k]++
			}
		}
	}
	return m
}

// DocTopic returns the dominant topic of document d — the most common
// topic among its words, which is how the paper assigns a block category.
func (m *Model) DocTopic(d int) int {
	best, bestN := 0, -1
	for k, n := range m.ndk[d] {
		if n > bestN {
			best, bestN = k, n
		}
	}
	return best
}

// TopicWordDist returns p(word|topic) for topic k.
func (m *Model) TopicWordDist(k int) []float64 {
	out := make([]float64, m.V)
	denom := float64(m.nk[k]) + float64(m.V)*m.Beta
	for w := 0; w < m.V; w++ {
		out[w] = (float64(m.nkw[k][w]) + m.Beta) / denom
	}
	return out
}

// DocTopicDist returns p(topic|document d).
func (m *Model) DocTopicDist(d int) []float64 {
	out := make([]float64, m.K)
	total := 0.0
	for _, n := range m.ndk[d] {
		total += float64(n)
	}
	denom := total + float64(m.K)*m.Alpha
	for k := 0; k < m.K; k++ {
		out[k] = (float64(m.ndk[d][k]) + m.Alpha) / denom
	}
	return out
}

// Infer folds a new document into the fitted model (topics frozen) and
// returns its dominant topic; used to classify blocks that were not part
// of the fit (e.g. the Google case-study corpora).
func (m *Model) Infer(doc []int, sweeps int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	ndk := make([]int, m.K)
	z := make([]int, len(doc))
	for i := range doc {
		k := rng.Intn(m.K)
		z[i] = k
		ndk[k]++
	}
	probs := make([]float64, m.K)
	vb := float64(m.V) * m.Beta
	for sweep := 0; sweep < sweeps; sweep++ {
		for i, w := range doc {
			old := z[i]
			ndk[old]--
			total := 0.0
			for k := 0; k < m.K; k++ {
				p := (float64(ndk[k]) + m.Alpha) *
					(float64(m.nkw[k][w]) + m.Beta) /
					(float64(m.nk[k]) + vb)
				probs[k] = p
				total += p
			}
			x := rng.Float64() * total
			k := 0
			for ; k < m.K-1; k++ {
				x -= probs[k]
				if x < 0 {
					break
				}
			}
			z[i] = k
			ndk[k]++
		}
	}
	best, bestN := 0, -1
	for k, n := range ndk {
		if n > bestN {
			best, bestN = k, n
		}
	}
	return best
}
