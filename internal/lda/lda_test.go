package lda

import (
	"math/rand"
	"testing"
)

// synthetic corpus: two clearly separated topics.
func twoTopicDocs(n int, seed int64) ([][]int, []int) {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]int, n)
	truth := make([]int, n)
	for d := range docs {
		topic := d % 2
		truth[d] = topic
		ln := 10 + rng.Intn(10)
		for i := 0; i < ln; i++ {
			// topic 0 words: 0..2; topic 1 words: 3..5 (10% noise)
			w := rng.Intn(3)
			if rng.Intn(10) == 0 {
				w = rng.Intn(6)
			} else if topic == 1 {
				w += 3
			}
			docs[d] = append(docs[d], w)
		}
	}
	return docs, truth
}

func TestFitSeparatesTopics(t *testing.T) {
	docs, truth := twoTopicDocs(200, 1)
	m := Fit(docs, 6, 2, 0.5, 0.1, 50, 1)

	// All documents of one true class should share a dominant topic.
	agree := 0
	for d := range docs {
		if m.DocTopic(d) == m.DocTopic(truth[d]) { // compare to a reference doc of that class
			agree++
		}
	}
	if float64(agree)/float64(len(docs)) < 0.9 {
		t.Fatalf("topic separation too weak: %d/%d", agree, len(docs))
	}
}

func TestDeterminism(t *testing.T) {
	docs, _ := twoTopicDocs(50, 2)
	m1 := Fit(docs, 6, 3, 0.3, 0.1, 20, 9)
	m2 := Fit(docs, 6, 3, 0.3, 0.1, 20, 9)
	for d := range docs {
		if m1.DocTopic(d) != m2.DocTopic(d) {
			t.Fatal("same seed must give identical topics")
		}
	}
}

func TestDistributionsNormalized(t *testing.T) {
	docs, _ := twoTopicDocs(30, 3)
	m := Fit(docs, 6, 3, 0.3, 0.1, 10, 1)
	for k := 0; k < 3; k++ {
		var sum float64
		for _, p := range m.TopicWordDist(k) {
			if p < 0 {
				t.Fatal("negative probability")
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("topic %d dist sums to %f", k, sum)
		}
	}
	for d := 0; d < len(docs); d++ {
		var sum float64
		for _, p := range m.DocTopicDist(d) {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("doc %d dist sums to %f", d, sum)
		}
	}
}

func TestInferNewDocument(t *testing.T) {
	docs, _ := twoTopicDocs(200, 4)
	m := Fit(docs, 6, 2, 0.5, 0.1, 50, 1)
	// A pure topic-0 document must infer the same topic as a fitted
	// topic-0 document.
	ref := m.DocTopic(0)
	got := m.Infer([]int{0, 1, 2, 0, 1, 2, 0, 1}, 20, 5)
	if got != ref {
		t.Fatalf("inferred %d, reference %d", got, ref)
	}
}
