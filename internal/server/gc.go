package server

import (
	"fmt"
	"os"
	"time"
)

// gcLoop periodically collects expired finished jobs until Shutdown. The
// sweep period is a fraction of the TTL (bounded below so a tiny TTL
// doesn't busy-loop), so a job outlives its TTL by at most one period.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	period := s.cfg.JobTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.interrupt:
			return
		case <-t.C:
			s.CollectJobs(time.Now())
		}
	}
}

// CollectJobs deletes every job that reached a terminal state (done or
// failed) more than JobTTL before now: registry entry and on-disk
// directory both. Queued and running jobs are never candidates — their
// checkpoint journals are exactly the state a restart resumes from — so
// an in-flight job cannot be collected no matter how old it is. Returns
// how many jobs were collected.
func (s *Server) CollectJobs(now time.Time) int {
	if s.cfg.JobTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.JobTTL)

	// Select under the lock, delete directories outside it: RemoveAll on a
	// large checkpoint journal must not stall submissions. The ids being
	// removed are published in s.collecting so admission of the same id
	// (a resubmission racing its own expiry) is deferred until the
	// directory is actually gone — otherwise the sweep could delete a
	// request.json the admission path just persisted.
	s.mu.Lock()
	var expired []*Job
	for id, j := range s.jobs {
		state, _ := j.State()
		if state != stateDone && state != stateFailed {
			continue
		}
		fin := j.finishedAt()
		if fin.IsZero() || fin.After(cutoff) {
			continue
		}
		delete(s.jobs, id)
		s.collecting[id] = true
		expired = append(expired, j)
	}
	s.mu.Unlock()

	for _, j := range expired {
		if err := os.RemoveAll(j.dir); err != nil {
			// The registry entry is already gone; surface the leak rather
			// than resurrecting the job. The next sweep of a fresh server
			// will retry via scanJobs.
			fmt.Fprintf(os.Stderr, "server: gc: %s: %v\n", j.ID, err)
		}
		s.mu.Lock()
		delete(s.collecting, j.ID)
		s.mu.Unlock()
	}
	return len(expired)
}
