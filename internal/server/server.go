// Package server is the evaluation service behind cmd/bhive-serve: a
// long-running HTTP front end over the same sharded, checkpointed
// pipeline the batch CLI drives. Clients POST a corpus (or a generation
// request) to /v1/evaluate and get a job id; jobs run through
// internal/harness with a per-job fingerprint-bound checkpoint journal
// and the shared profile cache, so a server restart resumes in-flight
// jobs from their last completed shard and produces byte-identical
// results. Progress streams to clients over SSE, mirroring the CLI's
// -progress lines.
//
// Endpoints:
//
//	POST /v1/evaluate          submit a job; returns {"id": …}
//	GET  /v1/jobs/{id}         status + profiler metrics snapshot
//	GET  /v1/jobs/{id}/events  SSE stream of per-shard progress lines
//	GET  /v1/jobs/{id}/result  Table V/VI-shaped JSON (when done)
//
// Job identity is content-derived: the id is a digest of the normalized
// request, so identical submissions — concurrent or repeated — share one
// job and one profiling pass instead of duplicating work.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bhive/internal/backend"
	"bhive/internal/corpus"
	"bhive/internal/dist"
	"bhive/internal/harness"
	"bhive/internal/profcache"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
)

// Config parameterizes a Server.
type Config struct {
	// DataDir roots all persistent job state: DataDir/jobs/<id>/ holds the
	// normalized request, the checkpoint journal, and the final result.
	DataDir string
	// Cache, when non-nil, is the profile cache shared by every job (and
	// flushed after each one). Restarted servers re-open it and skip
	// re-measuring blocks any earlier job already profiled.
	Cache *profcache.Cache
	// Workers bounds per-job profiling parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxJobs bounds concurrently running jobs (default 1; queued jobs
	// wait their turn).
	MaxJobs int
	// StopAfterShards, when positive, is threaded into every job's harness
	// config: the run stops (durably, on a shard boundary) after that many
	// computed shards and the job returns to the queue. It exists for the
	// restart-resume tests and for chunked batch operation.
	StopAfterShards int
	// FsyncEvery is threaded into every job's harness config: the
	// checkpoint journal fsyncs once per N completed shards (group
	// commit) instead of every shard. Graceful drains still flush, so
	// only a hard kill can lose (and then recompute) up to N-1 shards.
	FsyncEvery int
	// JobTTL, when positive, garbage-collects finished (done or failed)
	// job directories that terminated longer than JobTTL ago — at startup
	// and then periodically. Queued and running jobs are never collected:
	// their checkpoints are the resume state. Zero disables GC.
	JobTTL time.Duration
	// Dist enables coordinator mode: the /v1/dist endpoints come up, and
	// eligible jobs lease their missing corpus shards to remote workers
	// instead of profiling everything locally (see dist.go).
	Dist bool
	// DistToken is the bearer token non-loopback workers must present on
	// the /v1/dist endpoints. Empty means those endpoints are
	// loopback-only.
	DistToken string
	// DistLeaseTTL, DistShardsPerLease, and DistMaxInflight tune the
	// lease table; zero values take the dist.ManagerConfig defaults.
	DistLeaseTTL       time.Duration
	DistShardsPerLease int
	DistMaxInflight    int
}

// maxRequestBytes bounds /v1/evaluate bodies (inline corpora included).
const maxRequestBytes = 64 << 20

// queueCap bounds jobs admitted but not yet run.
const queueCap = 4096

// Server owns the job registry and the worker pool. Create with New,
// serve via Handler, stop with Shutdown.
type Server struct {
	cfg       Config
	jobsDir   string
	interrupt chan struct{} // closed by Shutdown: drains jobs at shard boundaries
	queue     chan *Job
	wg        sync.WaitGroup
	dist      *dist.Manager // non-nil iff Config.Dist (coordinator mode)

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
	// collecting marks job ids whose directories a GC sweep is deleting
	// outside the lock; admission for those ids is deferred (503 +
	// Retry-After) so a fresh request.json is never written into (or torn
	// down with) a directory mid-removal.
	collecting map[string]bool
}

// New builds a server over DataDir, re-queueing any job that was left
// unfinished by a previous process (its checkpoint journal makes the
// re-run resume instead of recompute).
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1
	}
	s := &Server{
		cfg:        cfg,
		jobsDir:    filepath.Join(cfg.DataDir, "jobs"),
		interrupt:  make(chan struct{}),
		queue:      make(chan *Job, queueCap),
		jobs:       make(map[string]*Job),
		collecting: make(map[string]bool),
	}
	if cfg.Dist {
		s.dist = dist.NewManager(dist.ManagerConfig{
			LeaseTTL:       cfg.DistLeaseTTL,
			ShardsPerLease: cfg.DistShardsPerLease,
			MaxInflight:    cfg.DistMaxInflight,
		})
	}
	if err := os.MkdirAll(s.jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if err := s.scanJobs(); err != nil {
		return nil, err
	}
	if cfg.JobTTL > 0 {
		s.CollectJobs(time.Now())
		s.wg.Add(1)
		go s.gcLoop()
	}
	for w := 0; w < cfg.MaxJobs; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// scanJobs restores the registry from disk: done and failed jobs become
// queryable again, unfinished ones are re-queued for resumption.
func (s *Server) scanJobs() error {
	entries, err := os.ReadDir(s.jobsDir)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.jobsDir, e.Name())
		raw, err := os.ReadFile(filepath.Join(dir, "request.json"))
		if err != nil {
			// A crash between MkdirAll and the request write leaves an
			// empty job directory; it was never acknowledged to a client,
			// so it is garbage, not a job.
			continue
		}
		var req Request
		if err := json.Unmarshal(raw, &req); err != nil {
			return fmt.Errorf("server: %s: corrupt request.json: %w", e.Name(), err)
		}
		j := newJob(e.Name(), dir, req)
		switch {
		case fileExists(filepath.Join(dir, "result.json")):
			j.setState(stateDone, "")
			backfillFinished(j, filepath.Join(dir, "result.json"))
		case fileExists(filepath.Join(dir, "error.json")):
			msg := "failed"
			if raw, err := os.ReadFile(filepath.Join(dir, "error.json")); err == nil {
				var fe failureFile
				if json.Unmarshal(raw, &fe) == nil && fe.Error != "" {
					msg = fe.Error
				}
			}
			j.setState(stateFailed, msg)
			backfillFinished(j, filepath.Join(dir, "error.json"))
		default:
			s.queue <- j
		}
		s.jobs[j.ID] = j
	}
	return nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// backfillFinished dates a restored terminal job by its terminal file's
// mtime, so job TTLs measure time since completion, not time since the
// last server restart.
func backfillFinished(j *Job, terminalFile string) {
	if fi, err := os.Stat(terminalFile); err == nil {
		j.setFinished(fi.ModTime())
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	if s.dist != nil {
		mux.HandleFunc("POST /v1/dist/lease", s.distAuth(s.handleDistLease))
		mux.HandleFunc("GET /v1/dist/jobs/{id}", s.distAuth(s.handleDistSpec))
		mux.HandleFunc("POST /v1/dist/result", s.distAuth(s.handleDistResult))
		mux.HandleFunc("GET /v1/dist/status", s.distAuth(s.handleDistStatus))
	}
	return mux
}

// Shutdown drains the server: running jobs stop at their next shard
// boundary (the shard in flight is finished and checkpointed first),
// workers exit, and the shared profile cache is flushed. Jobs still
// queued or interrupted stay pending on disk; the next New over the same
// DataDir re-queues and resumes them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.interrupt)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.cfg.Cache != nil {
		return s.cfg.Cache.Save()
	}
	return nil
}

// worker runs queued jobs until Shutdown. The interrupt check comes
// first, non-blocking: a two-case select chooses randomly among ready
// cases, so a draining server with a non-empty queue would otherwise
// start a brand-new job mid-SIGTERM about half the time instead of
// exiting at the boundary.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.interrupt:
			return
		default:
		}
		select {
		case <-s.interrupt:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// handleEvaluate admits one job. Identical normalized requests map to the
// same job id, so a resubmission (or a concurrent duplicate) attaches to
// the existing job instead of profiling twice.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	var req Request
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := req.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := req.id()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		state, detail := j.State()
		writeJSON(w, http.StatusOK, submitResponse{ID: id, State: state, Detail: detail})
		return
	}
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if s.collecting[id] {
		// A GC sweep is deleting this id's previous directory outside the
		// lock; persisting a new request.json now would race the RemoveAll.
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "job directory is being garbage-collected; retry")
		return
	}
	dir := filepath.Join(s.jobsDir, id)
	j := newJob(id, dir, req)
	if err := j.persistRequest(); err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	select {
	case s.queue <- j:
	default:
		// Remove the just-persisted directory before releasing the lock: a
		// concurrent resubmission of the same request could otherwise
		// re-persist into this directory (admission holds the lock) and be
		// torn down by this RemoveAll. The directory holds only
		// request.json at this point, so deleting under the lock is cheap.
		os.RemoveAll(dir)
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "job queue is full")
		return
	}
	s.jobs[id] = j
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: stateQueued})
}

func (s *Server) job(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	state, detail := j.State()
	if state != stateDone {
		writeJSON(w, http.StatusConflict, submitResponse{ID: j.ID, State: state, Detail: detail})
		return
	}
	// Serve the persisted bytes verbatim: the byte-identity guarantee of
	// checkpointed resumption extends all the way to the client.
	raw, err := os.ReadFile(j.resultPath())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// handleEvents streams the job's progress lines as server-sent events:
// one "data:" event per line, every past line replayed first, then live
// lines as shards complete, then a terminal "done" event carrying the
// final state. An interrupted stream (server shutdown) ends with an
// "interrupted" event; reconnecting after restart replays everything the
// resumed run reports.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	n := 0
	for {
		lines, state, changed := j.progressFrom(n)
		for _, ln := range lines {
			// A dead client surfaces as a write error here; without the
			// check the goroutine would keep looping (and buffering) until
			// the job's next state change, long after the peer is gone.
			if _, err := fmt.Fprintf(w, "data: %s\n\n", ln); err != nil {
				return
			}
			n++
		}
		if len(lines) > 0 {
			fl.Flush()
		}
		if state == stateDone || state == stateFailed {
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", state)
			fl.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.interrupt:
			fmt.Fprint(w, "event: interrupted\ndata: server shutting down; job resumes on restart\n\n")
			fl.Flush()
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[string]int{}
	for _, j := range s.jobs {
		state, _ := j.State()
		counts[state]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": counts})
}

type submitResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Detail string `json:"detail,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Request is the /v1/evaluate body. Omitted fields take the documented
// defaults during normalization; the job id digests the normalized form,
// so spelling a default out changes nothing.
type Request struct {
	// Experiments are harness experiment ids (default ["table5"]).
	Experiments []string `json:"experiments,omitempty"`
	// Uarch restricts the per-µarch figures to one microarchitecture
	// (empty = all three, as in the paper).
	Uarch string `json:"uarch,omitempty"`
	// CorpusCSV is an inline corpus in the app,hex,freq interchange
	// format. Empty means generate the paper's corpus at Scale/Seed.
	CorpusCSV string `json:"corpus_csv,omitempty"`
	// Asm is an inline corpus as an assembly listing ('@ app [freq]'
	// headers, one Intel- or AT&T-syntax instruction per line). It is
	// mutually exclusive with CorpusCSV. Normalization round-trips the
	// listing through the encoder into CorpusCSV and clears this field, so
	// a job id depends only on the canonical machine code — submitting the
	// same corpus as hex or as assembly yields the same job.
	Asm string `json:"asm,omitempty"`
	// Scale samples the generated corpus (default 0.02); ignored when
	// CorpusCSV is set.
	Scale float64 `json:"scale,omitempty"`
	// Seed drives corpus generation and every stochastic component
	// (default 7; 0 means the default).
	Seed int64 `json:"seed,omitempty"`
	// TrainIthemal includes the learned model (adds LSTM training time).
	TrainIthemal bool `json:"train_ithemal,omitempty"`
	// IthemalEpochs bounds the training cost (default 12).
	IthemalEpochs int `json:"ithemal_epochs,omitempty"`
	// ShardSize is the checkpointing granularity (default
	// harness.DefaultShardSize).
	ShardSize int `json:"shard_size,omitempty"`
	// Backends are measurement-backend specs ("sim", "perturbed",
	// "recorded:<path>") for the cross-validation experiment. When set and
	// Experiments is omitted, the job defaults to ["xval"]. Trace paths
	// resolve on the server's filesystem.
	Backends []string `json:"backends,omitempty"`
}

// normalize applies defaults and validates. It runs both at submission
// and is implicitly encoded in the persisted request, so a restarted
// server rebuilds the exact same harness configuration.
func (r *Request) normalize() error {
	if len(r.Experiments) == 0 {
		if len(r.Backends) > 0 {
			r.Experiments = []string{harness.XValID}
		} else {
			r.Experiments = []string{"table5"}
		}
	}
	valid := map[string]bool{"all": true}
	for _, n := range harness.AllNames() {
		valid[n] = true
	}
	for _, e := range r.Experiments {
		if !valid[e] {
			return fmt.Errorf("unknown experiment %q (have %s, all)", e, strings.Join(harness.AllNames(), ", "))
		}
	}
	seen := map[string]bool{}
	for _, spec := range r.Backends {
		if err := backend.CheckSpec(spec); err != nil {
			return err
		}
		if seen[spec] {
			return fmt.Errorf("duplicate backend spec %q", spec)
		}
		seen[spec] = true
	}
	if r.Uarch != "" {
		if _, err := uarch.ByName(r.Uarch); err != nil {
			return err
		}
	}
	if r.Asm != "" {
		if r.CorpusCSV != "" {
			return fmt.Errorf("asm and corpus_csv are mutually exclusive")
		}
		recs, err := corpus.ReadAsm(strings.NewReader(r.Asm))
		if err != nil {
			return fmt.Errorf("asm: %w", err)
		}
		var sb strings.Builder
		if err := corpus.WriteCSV(&sb, recs); err != nil {
			return fmt.Errorf("asm: %w", err)
		}
		r.CorpusCSV, r.Asm = sb.String(), ""
	}
	if r.CorpusCSV != "" {
		if _, err := corpus.ReadCSV(strings.NewReader(r.CorpusCSV)); err != nil {
			return fmt.Errorf("corpus_csv: %w", err)
		}
	}
	if r.Scale <= 0 {
		r.Scale = harness.DefaultConfig().Scale
	}
	if r.Seed == 0 {
		r.Seed = harness.DefaultConfig().Seed
	}
	if r.IthemalEpochs <= 0 {
		r.IthemalEpochs = harness.DefaultConfig().IthemalEpochs
	}
	if r.ShardSize <= 0 {
		r.ShardSize = harness.DefaultShardSize
	}
	return nil
}

// id derives the job identity from the normalized request content.
func (r *Request) id() (string, error) {
	raw, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8]), nil
}

// harnessConfig translates a normalized request into the fingerprint-
// relevant half of a harness config — exactly the fields a distributed
// worker must mirror to rebuild the coordinator's suite (see
// WorkerHarnessConfig). Server-scoped execution knobs layer on top in
// Server.harnessConfig.
func (r *Request) harnessConfig() (harness.Config, error) {
	cfg := harness.DefaultConfig()
	cfg.Scale = r.Scale
	cfg.Seed = r.Seed
	cfg.TrainIthemal = r.TrainIthemal
	cfg.IthemalEpochs = r.IthemalEpochs
	cfg.ShardSize = r.ShardSize
	if r.CorpusCSV != "" {
		recs, err := corpus.ReadCSV(strings.NewReader(r.CorpusCSV))
		if err != nil {
			return cfg, fmt.Errorf("corpus_csv: %w", err)
		}
		cfg.Records = recs
	}
	return cfg, nil
}

// harnessConfig translates the request into a job-scoped harness config.
func (s *Server) harnessConfig(j *Job) (harness.Config, error) {
	cfg, err := j.req.harnessConfig()
	if err != nil {
		return cfg, err
	}
	cfg.Workers = s.cfg.Workers
	cfg.CheckpointPath = filepath.Join(j.dir, "checkpoint.jsonl")
	cfg.FsyncEvery = s.cfg.FsyncEvery
	cfg.ProfileCache = s.cfg.Cache
	cfg.Progress = &progressWriter{j: j}
	cfg.Interrupt = s.interrupt
	cfg.Metrics = j.metrics
	cfg.StopAfterShards = s.cfg.StopAfterShards
	return cfg, nil
}

// Result is the /result payload: one structured entry per requested
// experiment, carrying the Table V/VI-shaped tables plus the exact text
// rendering the batch CLI would have printed.
type Result struct {
	ID          string               `json:"id"`
	Experiments []*harness.RunResult `json:"experiments"`
}

type failureFile struct {
	Error string `json:"error"`
}

// runJob executes one job to a terminal state — or back to the queue
// state if it was interrupted by shutdown (its checkpoint makes the
// eventual re-run cheap). The shared profile cache is flushed after every
// job so a crash loses at most one job's worth of profiles.
func (s *Server) runJob(j *Job) {
	j.setState(stateRunning, "")
	raw, err := s.executeJob(j)
	switch {
	case errors.Is(err, harness.ErrInterrupted):
		j.setState(stateQueued, "interrupted on a shard boundary; resumes on restart")
	case err != nil:
		msg := err.Error()
		if ferr := writeFileAtomic(filepath.Join(j.dir, "error.json"), mustJSON(failureFile{Error: msg})); ferr != nil {
			msg = fmt.Sprintf("%s (and persisting the failure failed: %v)", msg, ferr)
		}
		j.setState(stateFailed, msg)
	default:
		if werr := writeFileAtomic(j.resultPath(), raw); werr != nil {
			j.setState(stateFailed, werr.Error())
		} else {
			j.setState(stateDone, "")
		}
	}
	if s.cfg.Cache != nil {
		if serr := s.cfg.Cache.Save(); serr != nil {
			j.appendProgress(fmt.Sprintf("warning: profile cache save failed: %v", serr))
		}
	}
}

// executeJob drives the harness for one job and renders the result bytes.
func (s *Server) executeJob(j *Job) (_ []byte, err error) {
	cfg, err := s.harnessConfig(j)
	if err != nil {
		return nil, err
	}
	if len(j.req.Backends) > 0 {
		bes, berr := backend.ParseList(strings.Join(j.req.Backends, ","),
			backend.Options{Cache: s.cfg.Cache, Metrics: j.metrics})
		if berr != nil {
			return nil, berr
		}
		defer func() {
			for _, be := range bes {
				if cerr := be.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}()
		cfg.Backends = bes
	}
	suite := harness.New(cfg)
	defer suite.Close()
	j.setBlocks(len(suite.Records()))

	if s.distEligible(j) {
		if err := s.distFill(j, suite, cfg); err != nil {
			return nil, err
		}
	}

	res := Result{ID: j.ID}
	for _, exp := range j.req.Experiments {
		rr, err := suite.RunStructured(exp, j.req.Uarch)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exp, err)
		}
		res.Experiments = append(res.Experiments, rr)
	}
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return append(raw, '\n'), nil
}

func mustJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err) // the failure/submit payload types always marshal
	}
	return raw
}

// writeFileAtomic lands bytes under path via temp file + fsync + rename +
// parent-directory fsync, the same crash discipline profcache.Save uses: a
// parallel reader (or a crash mid-write) sees either nothing or the
// complete file. The final directory sync matters: rename only updates the
// directory entry in memory, so without it a crash shortly after "commit"
// can roll the rename back — a result.json or error.json terminal marker
// would vanish while the job's checkpoint journal says the work finished.
func writeFileAtomic(path string, raw []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	_, werr := tmp.Write(raw)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: writing %s: %v/%v/%v", path, werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: %w", err)
	}
	return syncDir(dir)
}

// syncDir makes a just-renamed directory entry durable. Split out (and
// recorded) so the atomic-write test can assert the rename is actually
// followed by a directory sync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("server: syncing %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("server: %w", cerr)
	}
	dirSyncs.Add(1)
	return nil
}

// dirSyncs counts completed directory syncs (observed by tests to pin the
// durability behavior of writeFileAtomic).
var dirSyncs atomic.Uint64

// MetricsStatus is the job-status view of profiler.Metrics.
type MetricsStatus struct {
	CacheHits          uint64            `json:"cache_hits"`
	Profiled           uint64            `json:"profiled"`
	Prescreened        uint64            `json:"prescreened,omitempty"`
	CrosscheckMismatch uint64            `json:"crosscheck_mismatch,omitempty"`
	ByStatus           map[string]uint64 `json:"by_status,omitempty"`
	// BlocksPerSec is the job's overall processing rate since its first
	// block outcome (cache hits included); MeasuredPerSec is the rate of
	// actually-measured blocks only. EtaSeconds estimates the time left
	// for the work the run has planned so far, derived from the measured
	// rate so a warm-cache resume doesn't report a hit-speed ETA for cold
	// work. All are omitted until a block completes.
	BlocksPerSec   float64 `json:"blocks_per_sec,omitempty"`
	MeasuredPerSec float64 `json:"measured_per_sec,omitempty"`
	EtaSeconds     float64 `json:"eta_seconds,omitempty"`
}

func metricsStatus(m *profiler.Metrics) *MetricsStatus {
	snap := m.Snapshot()
	ms := &MetricsStatus{
		CacheHits:          snap.CacheHits,
		Profiled:           snap.Profiled,
		Prescreened:        snap.Prescreened,
		CrosscheckMismatch: snap.CrosscheckMismatch,
	}
	if r, ok := m.Throughput(); ok {
		ms.BlocksPerSec = r.BlocksPerSec
		ms.MeasuredPerSec = r.MeasuredPerSec
		ms.EtaSeconds = r.Eta.Seconds()
	}
	for i, n := range snap.ByStatus {
		if n == 0 {
			continue
		}
		if ms.ByStatus == nil {
			ms.ByStatus = make(map[string]uint64)
		}
		ms.ByStatus[profiler.Status(i).String()] = n
	}
	return ms
}
