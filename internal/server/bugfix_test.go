package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestWriteFileAtomicDirSync pins the durability discipline of the
// terminal-marker writes: after the rename lands, the parent directory
// must be fsynced, or a crash can roll the rename back and lose a
// "committed" result.json while the checkpoint journal says the job
// finished.
func TestWriteFileAtomicDirSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")

	before := dirSyncs.Load()
	if err := writeFileAtomic(path, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if got := dirSyncs.Load(); got != before+1 {
		t.Fatalf("dir syncs %d -> %d, want exactly one directory sync after the rename", before, got)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"ok":true}` {
		t.Fatalf("content %q", raw)
	}

	// No temp files may survive the commit.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}

	// Overwrite follows the same path (rename over an existing file).
	if err := writeFileAtomic(path, []byte(`{"ok":false}`)); err != nil {
		t.Fatal(err)
	}
	if got := dirSyncs.Load(); got != before+2 {
		t.Fatalf("overwrite did not sync the directory (syncs %d, want %d)", got, before+2)
	}
}

// testServer builds a Server without New's worker pool or disk scan, for
// tests that need to drive the internals deterministically.
func testServer(t *testing.T, queueCap int) *Server {
	t.Helper()
	dir := t.TempDir()
	s := &Server{
		cfg:        Config{DataDir: dir},
		jobsDir:    filepath.Join(dir, "jobs"),
		interrupt:  make(chan struct{}),
		queue:      make(chan *Job, queueCap),
		jobs:       make(map[string]*Job),
		collecting: make(map[string]bool),
	}
	if err := os.MkdirAll(s.jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWorkerInterruptPriority pins the shutdown-drain ordering: a worker
// waking up with both the interrupt closed and the queue non-empty must
// exit, never start the queued job. (A plain two-case select chooses
// randomly between ready cases, so the old code started a fresh job
// mid-SIGTERM about half the time; 60 iterations make a regression
// essentially certain to trip.)
func TestWorkerInterruptPriority(t *testing.T) {
	for i := 0; i < 60; i++ {
		s := testServer(t, 4)
		j := newJob("drain-test", filepath.Join(s.jobsDir, "drain-test"), Request{})
		s.queue <- j
		close(s.interrupt)

		s.wg.Add(1)
		done := make(chan struct{})
		go func() {
			s.worker()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not exit on a closed interrupt")
		}
		if state, _ := j.State(); state != stateQueued {
			t.Fatalf("iteration %d: draining worker started a queued job (state %s)", i, state)
		}
	}
}

// deadClientWriter is an SSE client that disconnects after the first
// successful write: every later write fails, as it does on a closed TCP
// connection.
type deadClientWriter struct {
	header http.Header
	writes int
}

func (w *deadClientWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *deadClientWriter) WriteHeader(int) {}

func (w *deadClientWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("write on closed connection")
	}
	return len(p), nil
}

func (w *deadClientWriter) Flush() {}

// TestEventsDeadClient pins the SSE write-error fix: when the client is
// gone, the events handler must return instead of parking on the job's
// change channel until the next state transition (which for a long job
// may be minutes away — a goroutine and its buffers leaked per dead
// client).
func TestEventsDeadClient(t *testing.T) {
	s := testServer(t, 4)
	j := newJob("sse-dead", filepath.Join(s.jobsDir, "sse-dead"), Request{})
	j.setState(stateRunning, "")
	for i := 0; i < 5; i++ {
		j.appendProgress(fmt.Sprintf("shard %d", i))
	}
	s.jobs[j.ID] = j

	done := make(chan struct{})
	go func() {
		w := &deadClientWriter{}
		req := httptest.NewRequest("GET", "/v1/jobs/"+j.ID+"/events", nil)
		s.Handler().ServeHTTP(w, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("events handler kept running after the client write failed")
	}
}

// TestQueueFullAdmission pins the queue-full path: the 503 must carry
// Retry-After, and the just-persisted job directory must be cleaned up
// under the admission lock (so a concurrent resubmission can never have
// its fresh request.json torn down by this removal).
func TestQueueFullAdmission(t *testing.T) {
	s := testServer(t, 0) // zero-capacity queue: every admission overflows
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
		strings.NewReader(`{"experiments":["table5"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 503 without Retry-After")
	}
	entries, err := os.ReadDir(s.jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("rejected job left %d entries in the jobs dir", len(entries))
	}
}

// TestAdmissionDefersDuringGC pins the admission/GC race fix: while a GC
// sweep is removing a job directory outside the lock, a resubmission of
// the same request must be deferred (503 + Retry-After), not allowed to
// persist a request.json into the directory being deleted.
func TestAdmissionDefersDuringGC(t *testing.T) {
	s := testServer(t, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var req Request
	if err := req.normalize(); err != nil {
		t.Fatal(err)
	}
	id, err := req.id()
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.collecting[id] = true
	s.mu.Unlock()

	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("admission during GC: status %d retry-after %q, want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Once the sweep finishes the same submission is admitted normally.
	s.mu.Lock()
	delete(s.collecting, id)
	s.mu.Unlock()
	sr := postJob(t, ts, `{}`)
	if sr.ID != id || sr.State != stateQueued {
		t.Fatalf("post-GC submission = %+v, want queued job %s", sr, id)
	}
}
