package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"bhive/internal/dist"
	"bhive/internal/harness"
)

// distTestBody is a table5 job over the deterministic test corpus, with
// a small shard size so the distributed run has plenty of leases.
func distTestBody(t *testing.T) string {
	t.Helper()
	return fmt.Sprintf(`{"experiments":["table5"],"corpus_csv":%s,"shard_size":32}`,
		strconv.Quote(testCorpusCSV(t)))
}

func distWorkerConfig(ts *httptest.Server, name string) dist.WorkerConfig {
	return dist.WorkerConfig{
		Coordinator:  ts.URL,
		Name:         name,
		PollInterval: 10 * time.Millisecond,
		BackoffBase:  5 * time.Millisecond,
		BuildSuite: func(request []byte, shardSize int) (*harness.Suite, error) {
			cfg, err := WorkerHarnessConfig(request, shardSize)
			if err != nil {
				return nil, err
			}
			return harness.New(cfg), nil
		},
	}
}

// TestDistributedGoldenByteIdentical is the tentpole end-to-end
// property: a coordinator plus two workers — one killed mid-lease —
// must produce result bytes identical to a single-node run, with every
// measurement done remotely and the dead worker's undelivered shards
// re-issued to the survivor rather than recomputed from scratch.
func TestDistributedGoldenByteIdentical(t *testing.T) {
	body := distTestBody(t)

	// Reference: single-node server, no distribution.
	refSrv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refSrv.Handler())
	refID := postJob(t, refTS, body).ID
	waitFor(t, refTS, refID, "single-node done", func(st JobStatus) bool { return st.State == stateDone })
	ref := getResult(t, refTS, refID)
	refTS.Close()
	if err := refSrv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Distributed: coordinator with a short lease TTL (the killed
	// worker's lease must re-issue within the test) and two shards per
	// lease (so the kill strands a half-delivered lease).
	srv, err := New(Config{
		DataDir:            t.TempDir(),
		Dist:               true,
		DistLeaseTTL:       1500 * time.Millisecond,
		DistShardsPerLease: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := postJob(t, ts, body).ID
	if id != refID {
		t.Fatalf("content-derived ids diverged: %s vs %s", id, refID)
	}

	// Worker A delivers one shard, then dies mid-lease.
	wa, err := dist.NewWorker(distWorkerConfig(ts, "wa"))
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan struct{})
	go func() { defer close(aDone); wa.Run(ctxA) }()
	for deadline := time.Now().Add(2 * time.Minute); wa.ShardsDone() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker A never delivered a shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelA()
	<-aDone

	// Worker B finishes the job, including A's re-issued shards.
	wb, err := dist.NewWorker(distWorkerConfig(ts, "wb"))
	if err != nil {
		t.Fatal(err)
	}
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelB()
	go wb.Run(ctxB)

	st := waitFor(t, ts, id, "distributed done", func(st JobStatus) bool { return st.State == stateDone })
	got := getResult(t, ts, id)
	if !bytes.Equal(got, ref) {
		t.Fatalf("distributed result diverged from single-node run.\n--- distributed ---\n%s\n--- single-node ---\n%s", got, ref)
	}

	// Every measurement happened on the workers: the coordinator only
	// journaled payloads and replayed them.
	if st.Metrics != nil && st.Metrics.Profiled != 0 {
		t.Fatalf("coordinator profiled %d blocks locally, want 0", st.Metrics.Profiled)
	}
	// The journal-backed resume did real work on both sides: A's
	// delivered shards were not recomputed by B.
	if wa.ShardsDone() == 0 || wb.ShardsDone() == 0 {
		t.Fatalf("work split wa=%d wb=%d", wa.ShardsDone(), wb.ShardsDone())
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDistFillResumesAcrossRestart: a coordinator interrupted mid-fill
// requeues the job; the restarted server re-leases only the shards the
// journal is still missing.
func TestDistFillInterruptRequeues(t *testing.T) {
	dataDir := t.TempDir()
	srv, err := New(Config{DataDir: dataDir, Dist: true, DistShardsPerLease: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	id := postJob(t, ts, distTestBody(t)).ID

	// One worker delivers a few shards, then the server drains while the
	// fill is still incomplete.
	w, err := dist.NewWorker(distWorkerConfig(ts, "w1"))
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	go w.Run(wctx)
	for deadline := time.Now().Add(2 * time.Minute); w.ShardsDone() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("no shards delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wcancel()
	ts.Close()

	st := jobStatus2(t, srv, id)
	if st.State != stateQueued {
		t.Fatalf("interrupted distributed job state %q, want queued", st.State)
	}

	// Restart over the same data dir: the fill resumes from the journal
	// and a fresh worker completes it.
	srv2, err := New(Config{DataDir: dataDir, Dist: true, DistShardsPerLease: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	w2, err := dist.NewWorker(distWorkerConfig(ts2, "w2"))
	if err != nil {
		t.Fatal(err)
	}
	w2ctx, w2cancel := context.WithCancel(context.Background())
	defer w2cancel()
	go w2.Run(w2ctx)
	waitFor(t, ts2, id, "resumed distributed done", func(st JobStatus) bool { return st.State == stateDone })
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// jobStatus2 reads status straight off the server (no HTTP listener).
func jobStatus2(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	return j.Status()
}

// TestDistAuth pins the bearer-token gate: loopback is always admitted,
// non-loopback needs the exact token, and a token-less coordinator is
// loopback-only.
func TestDistAuth(t *testing.T) {
	called := false
	handler := func(w http.ResponseWriter, r *http.Request) { called = true }
	run := func(s *Server, remote, auth string) (int, bool) {
		called = false
		r := httptest.NewRequest("POST", "/v1/dist/lease", nil)
		r.RemoteAddr = remote
		if auth != "" {
			r.Header.Set("Authorization", auth)
		}
		rw := httptest.NewRecorder()
		s.distAuth(handler)(rw, r)
		return rw.Code, called
	}

	noToken := &Server{cfg: Config{}}
	if code, ok := run(noToken, "127.0.0.1:9999", ""); !ok || code != http.StatusOK {
		t.Fatalf("loopback without token: %d, called=%v", code, ok)
	}
	if code, ok := run(noToken, "[::1]:9999", ""); !ok || code != http.StatusOK {
		t.Fatalf("v6 loopback without token: %d, called=%v", code, ok)
	}
	if code, ok := run(noToken, "10.1.2.3:9999", ""); ok || code != http.StatusForbidden {
		t.Fatalf("remote on token-less coordinator: %d, called=%v", code, ok)
	}

	withToken := &Server{cfg: Config{DistToken: "sekrit"}}
	if code, ok := run(withToken, "10.1.2.3:9999", "Bearer sekrit"); !ok || code != http.StatusOK {
		t.Fatalf("remote with good token: %d, called=%v", code, ok)
	}
	if code, ok := run(withToken, "10.1.2.3:9999", "Bearer wrong"); ok || code != http.StatusUnauthorized {
		t.Fatalf("remote with bad token: %d, called=%v", code, ok)
	}
	if code, ok := run(withToken, "10.1.2.3:9999", ""); ok || code != http.StatusUnauthorized {
		t.Fatalf("remote without token: %d, called=%v", code, ok)
	}
	if code, ok := run(withToken, "127.0.0.1:9999", ""); !ok || code != http.StatusOK {
		t.Fatalf("loopback bypasses token: %d, called=%v", code, ok)
	}
}

// TestDistEndpointsAbsentWhenDisabled: a non-coordinator server must not
// expose the worker protocol.
func TestDistEndpointsAbsentWhenDisabled(t *testing.T) {
	srv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/dist/lease", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dist endpoint on non-coordinator: %d", resp.StatusCode)
	}
}

// TestDistStatusEndpoint: the lease-table snapshot is served while a
// fill is waiting for workers.
func TestDistStatusEndpoint(t *testing.T) {
	srv, err := New(Config{DataDir: t.TempDir(), Dist: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := postJob(t, ts, distTestBody(t)).ID

	// The job reaches the fill and parks waiting for leases.
	var snap dist.Status
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/dist/status")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Jobs == 1 && snap.Pending > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fill never registered: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Shutdown withdraws the waiting fill and requeues the job.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := jobStatus2(t, srv, id); st.State != stateQueued {
		t.Fatalf("state after shutdown %q, want queued", st.State)
	}
}
