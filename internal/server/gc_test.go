package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// registerJob fabricates a job directly in the registry (bypassing the
// queue, so no worker touches it) with a real on-disk directory.
func registerJob(t *testing.T, s *Server, id, state string, finished time.Time) *Job {
	t.Helper()
	dir := filepath.Join(s.jobsDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "marker"), []byte(id), 0o644); err != nil {
		t.Fatal(err)
	}
	j := newJob(id, dir, Request{})
	j.mu.Lock()
	j.state = state
	j.finished = finished
	j.mu.Unlock()
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	return j
}

func hasJob(s *Server, id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.jobs[id]
	return ok
}

// TestCollectJobs pins the collection policy: only terminal jobs whose
// completion predates the TTL are collected — registry entry and job
// directory both — and a job that is still queued or running is never a
// candidate, no matter what timestamps it carries.
func TestCollectJobs(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), JobTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	now := time.Now()
	old := now.Add(-2 * time.Hour)
	cases := []struct {
		id, state string
		finished  time.Time
		collected bool
	}{
		{"done-expired", stateDone, old, true},
		{"failed-expired", stateFailed, old, true},
		{"done-fresh", stateDone, now, false},
		{"done-unfinished", stateDone, time.Time{}, false}, // no timestamp: never expires
		{"queued-ancient", stateQueued, old, false},        // in-flight, whatever the clock says
		{"running-ancient", stateRunning, old, false},      // in-flight, whatever the clock says
	}
	for _, c := range cases {
		registerJob(t, s, c.id, c.state, c.finished)
	}

	if n := s.CollectJobs(now); n != 2 {
		t.Fatalf("CollectJobs = %d, want 2", n)
	}
	for _, c := range cases {
		gone := !hasJob(s, c.id)
		if gone != c.collected {
			t.Errorf("%s (%s): collected = %v, want %v", c.id, c.state, gone, c.collected)
		}
		_, err := os.Stat(filepath.Join(s.jobsDir, c.id))
		if dirGone := os.IsNotExist(err); dirGone != c.collected {
			t.Errorf("%s: directory removed = %v, want %v", c.id, dirGone, c.collected)
		}
	}

	// A second sweep finds nothing left to do.
	if n := s.CollectJobs(now); n != 0 {
		t.Fatalf("second sweep collected %d jobs", n)
	}
}

// TestCollectJobsDisabled: TTL zero means keep forever.
func TestCollectJobsDisabled(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	registerJob(t, s, "done-ancient", stateDone, time.Now().Add(-1000*time.Hour))
	if n := s.CollectJobs(time.Now()); n != 0 {
		t.Fatalf("TTL-disabled server collected %d jobs", n)
	}
	if !hasJob(s, "done-ancient") {
		t.Fatal("TTL-disabled server dropped a job")
	}
}

// seedJobDir writes a restorable job directory (request.json plus an
// optional terminal file) and backdates every mtime, simulating a job
// that finished long before this server process started.
func seedJobDir(t *testing.T, dataDir, id, terminalFile string, mtime time.Time) {
	t.Helper()
	req := Request{CorpusCSV: "app,hex,freq\n" + id + ",4889c8,1\n"}
	if err := req.normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(dataDir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "request.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{terminalFile} {
		if name == "" {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(dir, name), mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGCAtStartup: a restarted server must apply the TTL to jobs that
// finished under a previous process — expiry is dated by the terminal
// file's mtime (the backfill), not by when this process first saw the
// job. Unfinished jobs survive startup collection: their checkpoints are
// the state a resume needs.
func TestGCAtStartup(t *testing.T) {
	dataDir := t.TempDir()
	old := time.Now().Add(-2 * time.Hour)
	seedJobDir(t, dataDir, "expired-done", "result.json", old)
	seedJobDir(t, dataDir, "expired-failed", "error.json", old)
	seedJobDir(t, dataDir, "fresh-done", "result.json", time.Now())
	seedJobDir(t, dataDir, "interrupted", "", old) // no terminal file: still pending

	s, err := New(Config{DataDir: dataDir, JobTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"expired-done", "expired-failed"} {
		if hasJob(s, id) {
			t.Errorf("%s survived startup collection", id)
		}
		if _, err := os.Stat(filepath.Join(dataDir, "jobs", id)); !os.IsNotExist(err) {
			t.Errorf("%s directory survived startup collection", id)
		}
	}
	if !hasJob(s, "fresh-done") {
		t.Error("fresh-done was collected before its TTL")
	}
	// The pending job was re-queued (and may be running, or even finished
	// — its one-block corpus is tiny — by the time we look); collection
	// must not have touched it, and its directory must survive shutdown.
	if !hasJob(s, "interrupted") {
		t.Error("pending job was collected at startup")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "jobs", "interrupted")); err != nil {
		t.Errorf("pending job directory: %v", err)
	}
}

// TestGCTimer: with a tiny TTL the background sweep (period is clamped
// to one second) collects an expired job without any further API calls.
func TestGCTimer(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out a one-second GC sweep")
	}
	s, err := New(Config{DataDir: t.TempDir(), JobTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	registerJob(t, s, "expired", stateDone, time.Now().Add(-time.Minute))
	registerJob(t, s, "running", stateRunning, time.Now().Add(-time.Minute))

	deadline := time.Now().Add(5 * time.Second)
	for hasJob(s, "expired") {
		if time.Now().After(deadline) {
			t.Fatal("timer sweep never collected the expired job")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !hasJob(s, "running") {
		t.Fatal("timer sweep collected an in-flight job")
	}
}
