package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bhive/internal/corpus"
	"bhive/internal/harness"
	"bhive/internal/profcache"
)

// testCorpusCSV renders a small deterministic corpus in the interchange
// format (same generator, scale and seed as the harness resume tests).
func testCorpusCSV(t *testing.T) string {
	t.Helper()
	recs := corpus.GenerateAll(0.002, 7)
	var buf bytes.Buffer
	if err := corpus.WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJob(t *testing.T, ts *httptest.Server, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var sr submitResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("submit response %q: %v", raw, err)
	}
	return sr
}

func jobStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitFor polls the job status until pred holds (the server works in the
// background; HTTP only observes it).
func waitFor(t *testing.T, ts *httptest.Server, id string, what string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		st := jobStatus(t, ts, id)
		if pred(st) {
			return st
		}
		if st.State == stateFailed {
			t.Fatalf("job failed while waiting for %s: %s", what, st.Detail)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
	return JobStatus{}
}

func getResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, raw)
	}
	return raw
}

// readSSE collects "data:" lines from the events stream until n lines
// arrived or the stream ended; it returns the lines and whether a
// terminal "done" event was seen.
func readSSE(t *testing.T, ts *httptest.Server, id string, n int) (lines []string, done bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	sawDone := false
	for sc.Scan() {
		line := sc.Text()
		if line == "event: done" {
			sawDone = true
			continue
		}
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			if sawDone {
				return lines, true
			}
			lines = append(lines, after)
			if len(lines) >= n {
				return lines, false
			}
		}
	}
	return lines, false
}

// TestServerLifecycleGolden is the acceptance check from the issue:
// submit a job, watch progress over SSE, kill the server mid-job
// (graceful drain on a shard boundary — the crash-torn-journal case is
// covered by the checkpoint unit tests), restart it over the same data
// directory, and require /result bytes identical to an uninterrupted run
// of the same request on a pristine server.
func TestServerLifecycleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs table5 at scale 0.002 twice (tens of seconds)")
	}
	body := fmt.Sprintf(`{"experiments":["table5"],"shard_size":64,"corpus_csv":%q}`, testCorpusCSV(t))

	// Reference: pristine server, uninterrupted run.
	refDir := t.TempDir()
	refSrv, err := New(Config{DataDir: refDir})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refSrv.Handler())
	refID := postJob(t, refTS, body).ID
	waitFor(t, refTS, refID, "reference job", func(st JobStatus) bool { return st.State == stateDone })
	want := getResult(t, refTS, refID)
	refTS.Close()
	if err := refSrv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Interrupted: the first server stops the job after three computed
	// shards (a durable boundary — exactly what the SIGTERM drain does).
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "profiles.json")
	pc, err := profcache.Open(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{DataDir: dir, Cache: pc, StopAfterShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	sub := postJob(t, ts1, body)
	if sub.ID != refID {
		t.Fatalf("content-derived job id differs across servers: %s vs %s", sub.ID, refID)
	}

	// Progress must be observable over SSE while the job runs.
	lines, _ := readSSE(t, ts1, sub.ID, 2)
	if len(lines) < 2 {
		t.Fatalf("SSE delivered %d progress lines, want >= 2: %q", len(lines), lines)
	}
	for _, ln := range lines {
		if !strings.Contains(ln, "shard") {
			t.Fatalf("unexpected progress line %q", ln)
		}
	}

	// The shard budget sends the job back to the queue (state it would
	// also be in after a SIGTERM drain), with its shards checkpointed.
	st := waitFor(t, ts1, sub.ID, "interruption", func(st JobStatus) bool {
		return st.State == stateQueued && st.ProgressLines >= 3
	})
	if st.Metrics == nil || st.Metrics.Profiled == 0 {
		t.Fatalf("no profiling metrics before interruption: %+v", st.Metrics)
	}
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart over the same data directory: the job is re-queued, resumes
	// from the checkpoint, and completes.
	pc2, err := profcache.Open(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{DataDir: dir, Cache: pc2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Shutdown(context.Background())

	waitFor(t, ts2, sub.ID, "resumed completion", func(st JobStatus) bool { return st.State == stateDone })
	got := getResult(t, ts2, sub.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result diverged from the uninterrupted run.\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}

	// The resumed run's replayed event stream must show checkpointed
	// shards being reused, and must terminate with a done event.
	all, done := readSSE(t, ts2, sub.ID, 1<<30)
	if !done {
		t.Fatal("events stream of a done job did not end with a done event")
	}
	resumed := false
	for _, ln := range all {
		if strings.Contains(ln, "resumed from checkpoint") {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Fatalf("no shard was resumed from the checkpoint; progress: %q", all)
	}

	// Resubmitting the finished request attaches to the done job.
	again := postJob(t, ts2, body)
	if again.ID != sub.ID || again.State != stateDone {
		t.Fatalf("resubmission = %+v, want done job %s", again, sub.ID)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body, wantInError string
	}{
		{"bad json", `{`, "bad request body"},
		{"unknown experiment", `{"experiments":["table99"]}`, "unknown experiment"},
		{"unknown uarch", `{"uarch":"zen4"}`, "zen4"},
		{"bad corpus row", `{"corpus_csv":"app,hex,freq\nfoo,90,1\nfoo,zz,1\n"}`, "line 3"},
		{"duplicate corpus row", `{"corpus_csv":"app,hex,freq\nfoo,90,1\nfoo,90,2\n"}`, "duplicate block row"},
		{"bad asm", `{"asm":"@ foo\nnot_an_instruction\n"}`, "asm:"},
		{"asm and csv", `{"asm":"@ foo\nnop\n","corpus_csv":"app,hex,freq\nfoo,90,1\n"}`, "mutually exclusive"},
		{"unknown backend", `{"backends":["hardware"]}`, "unknown spec"},
		{"bare recorded backend", `{"backends":["recorded"]}`, "recorded needs a trace path"},
		{"duplicate backend", `{"backends":["sim","sim"]}`, "duplicate backend spec"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, raw)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || !strings.Contains(er.Error, tc.wantInError) {
			t.Errorf("%s: error %q does not mention %q", tc.name, raw, tc.wantInError)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestRequestIDNormalization: spelling out a default must produce the
// same job id as omitting it — the id digests the normalized request.
func TestRequestIDNormalization(t *testing.T) {
	a := Request{}
	b := Request{Experiments: []string{"table5"}, Scale: 0.02, Seed: 7, IthemalEpochs: 12, ShardSize: 512}
	if err := a.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.normalize(); err != nil {
		t.Fatal(err)
	}
	ida, err := a.id()
	if err != nil {
		t.Fatal(err)
	}
	idb, err := b.id()
	if err != nil {
		t.Fatal(err)
	}
	if ida != idb {
		t.Fatalf("normalized ids differ: %s vs %s", ida, idb)
	}
	c := Request{Seed: 8}
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	idc, err := c.id()
	if err != nil {
		t.Fatal(err)
	}
	if idc == ida {
		t.Fatal("different seeds share a job id")
	}
}

// TestAsmCorpusIdentity: the same corpus submitted as an assembly listing
// or as canonical hex must land on the same job id — normalization folds
// the listing into CorpusCSV through the encoder before the id digests it.
func TestAsmCorpusIdentity(t *testing.T) {
	asm := Request{Asm: "@ foo 3\nxor ecx, ecx   # intel\ndivl %ecx       ; at&t\n@ bar\nnop\n"}
	hex := Request{CorpusCSV: "app,hex,freq\nfoo,31c9f7f1,3\nbar,90,1\n"}
	if err := asm.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := hex.normalize(); err != nil {
		t.Fatal(err)
	}
	if asm.Asm != "" {
		t.Fatalf("normalize left Asm populated: %q", asm.Asm)
	}
	if asm.CorpusCSV != hex.CorpusCSV {
		t.Fatalf("asm corpus normalized to:\n%q\nwant:\n%q", asm.CorpusCSV, hex.CorpusCSV)
	}
	ida, err := asm.id()
	if err != nil {
		t.Fatal(err)
	}
	idh, err := hex.id()
	if err != nil {
		t.Fatal(err)
	}
	if ida != idh {
		t.Fatalf("asm job id %s != hex job id %s for the same corpus", ida, idh)
	}
}

// TestBackendsDefaultExperiment: submitting backends without naming an
// experiment means cross-validation — that's what backends are for.
func TestBackendsDefaultExperiment(t *testing.T) {
	r := Request{Backends: []string{"sim", "perturbed"}}
	if err := r.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(r.Experiments) != 1 || r.Experiments[0] != harness.XValID {
		t.Fatalf("experiments = %v, want [%s]", r.Experiments, harness.XValID)
	}
}
