package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"bhive/internal/profiler"
)

// Job states. A job interrupted by shutdown returns to stateQueued: its
// checkpoint journal is durable, and the next server over the same
// DataDir re-queues and resumes it.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// Job is one submitted evaluation: a normalized request bound to a job
// directory holding its checkpoint journal and (eventually) its result.
type Job struct {
	ID  string
	dir string
	req Request

	// metrics aggregates every profiling outcome of the job; the status
	// endpoint snapshots it concurrently with the run.
	metrics *profiler.Metrics

	mu       sync.Mutex
	state    string
	detail   string
	blocks   int
	progress []string
	// changed is closed (and replaced) on every progress append and state
	// transition; SSE streams block on it between events.
	changed  chan struct{}
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id, dir string, req Request) *Job {
	return &Job{
		ID:      id,
		dir:     dir,
		req:     req,
		metrics: new(profiler.Metrics),
		state:   stateQueued,
		changed: make(chan struct{}),
		created: time.Now(),
	}
}

func (j *Job) resultPath() string { return filepath.Join(j.dir, "result.json") }

// persistRequest writes the normalized request as the job's durable
// identity; a restarted server rebuilds the job from exactly these bytes.
func (j *Job) persistRequest() error {
	raw, err := json.MarshalIndent(j.req, "", "  ")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return writeFileAtomic(filepath.Join(j.dir, "request.json"), append(raw, '\n'))
}

// signal wakes every waiter. Callers must hold j.mu.
func (j *Job) signal() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *Job) setState(state, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.detail = detail
	switch state {
	case stateRunning:
		j.started = time.Now()
	case stateDone, stateFailed:
		j.finished = time.Now()
	}
	j.signal()
}

func (j *Job) setBlocks(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.blocks = n
}

// finishedAt returns when the job reached a terminal state (zero if it
// hasn't). For jobs restored by scanJobs the restore path backfills it
// from the result/error file mtime, so TTL expiry survives restarts
// instead of resetting on each one.
func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

func (j *Job) setFinished(t time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = t
}

// State returns the current state and its human-readable detail.
func (j *Job) State() (state, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.detail
}

// appendProgress records one progress line and wakes the SSE streams.
func (j *Job) appendProgress(line string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = append(j.progress, line)
	j.signal()
}

// progressFrom returns the progress lines at index n and beyond, the
// current state, and a channel that is closed on the next change — the
// SSE poll/wait primitive.
func (j *Job) progressFrom(n int) (lines []string, state string, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < len(j.progress) {
		lines = append(lines, j.progress[n:]...)
	}
	return lines, j.state, j.changed
}

// JobStatus is the /v1/jobs/{id} payload.
type JobStatus struct {
	ID            string         `json:"id"`
	State         string         `json:"state"`
	Detail        string         `json:"detail,omitempty"`
	Experiments   []string       `json:"experiments"`
	Blocks        int            `json:"blocks,omitempty"`
	ProgressLines int            `json:"progress_lines"`
	Created       string         `json:"created"`
	Started       string         `json:"started,omitempty"`
	Finished      string         `json:"finished,omitempty"`
	Metrics       *MetricsStatus `json:"metrics,omitempty"`
}

// Status snapshots the job for the status endpoint. Safe to call while
// the job is running: counters come from the atomic metrics, everything
// else from under the job lock.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:            j.ID,
		State:         j.state,
		Detail:        j.detail,
		Experiments:   j.req.Experiments,
		Blocks:        j.blocks,
		ProgressLines: len(j.progress),
		Created:       j.created.UTC().Format(time.RFC3339),
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339)
	}
	j.mu.Unlock()
	st.Metrics = metricsStatus(j.metrics)
	return st
}

// progressWriter adapts a Job to the harness's io.Writer progress sink,
// splitting the stream into lines. Crosscheck-mismatch lines arrive from
// concurrent profiling workers, so writes are locked.
type progressWriter struct {
	j *Job

	mu  sync.Mutex
	buf []byte
}

func (w *progressWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		w.j.appendProgress(string(w.buf[:i]))
		w.buf = w.buf[i+1:]
	}
}
