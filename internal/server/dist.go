package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"bhive/internal/dist"
	"bhive/internal/harness"
	"bhive/internal/stats"
	"bhive/internal/uarch"
)

// This file is the coordinator half of distributed evaluation: the
// /v1/dist endpoints workers poll, and the fill step that runs inside a
// job before its experiments — missing shards are leased out, worker
// payloads land in the job's checkpoint journal, and the normal replay
// path then produces a result byte-identical to a single-node run. A job
// with no reachable workers still completes: the fill only engages when
// coordinator mode is on, and shards the journal already holds are never
// re-leased (so a coordinator restart — or a partially distributed
// earlier attempt — resumes instead of recomputing).

// handleDistLease grants work: 200 + lease, 204 when nothing is pending,
// 503 + Retry-After under backpressure.
func (s *Server) handleDistLease(w http.ResponseWriter, r *http.Request) {
	var req dist.LeaseRequest
	if err := readJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Worker == "" {
		req.Worker = r.RemoteAddr
	}
	l, err := s.dist.Lease(req.Worker)
	switch {
	case errors.Is(err, dist.ErrNoWork):
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, dist.ErrSaturated):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "lease table saturated; retry")
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, l)
	}
}

// handleDistSpec serves the normalized request a worker rebuilds the
// suite from.
func (s *Server) handleDistSpec(w http.ResponseWriter, r *http.Request) {
	spec, err := s.dist.Spec(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "no such distributed job")
		return
	}
	writeJSON(w, http.StatusOK, spec)
}

// handleDistResult accepts one computed shard. 409 tells the worker the
// job is gone (finished, failed, or withdrawn) — drop the lease and move
// on.
func (s *Server) handleDistResult(w http.ResponseWriter, r *http.Request) {
	var res dist.ShardResult
	if err := readJSON(r, &res); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ack, err := s.dist.Complete(&res)
	switch {
	case errors.Is(err, dist.ErrUnknownJob):
		httpError(w, http.StatusConflict, "job is not being distributed")
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, ack)
	}
}

// handleDistStatus reports lease-table totals (smoke tests poll it).
func (s *Server) handleDistStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.dist.Snapshot())
}

func readJSON(r *http.Request, v any) error {
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBytes)).Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

// distAuth gates the worker endpoints: loopback peers are always
// admitted (single-machine setups need no secret); anything else must
// present the configured bearer token, and is refused outright when no
// token is configured — an un-tokened coordinator is loopback-only.
func (s *Server) distAuth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !isLoopback(r.RemoteAddr) {
			if s.cfg.DistToken == "" {
				httpError(w, http.StatusForbidden, "distributed endpoints are loopback-only (no worker token configured)")
				return
			}
			if r.Header.Get("Authorization") != "Bearer "+s.cfg.DistToken {
				httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		next(w, r)
	}
}

func isLoopback(remoteAddr string) bool {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// distEligible reports whether a job's corpus passes can be leased out.
// Learned-model training needs the whole measured corpus on one node,
// and backend cross-validation measures through job-scoped backends a
// remote worker doesn't have; both run locally.
func (s *Server) distEligible(j *Job) bool {
	if s.dist == nil || j.req.TrainIthemal || len(j.req.Backends) > 0 {
		return false
	}
	for _, exp := range j.req.Experiments {
		if harness.NeedsCorpusData(exp) {
			return true
		}
	}
	return false
}

// distFill journals the job's missing shards from worker results, then
// returns so the caller's RunStructured replays them. Interrupt (server
// drain) withdraws the job and surfaces harness.ErrInterrupted — the
// shards already journaled are durable, so the resumed job re-leases
// only what is still missing.
func (s *Server) distFill(j *Job, suite *harness.Suite, cfg harness.Config) error {
	fp := suite.Fingerprint()
	ck, err := harness.OpenCheckpoint(cfg.CheckpointPath, fp, suite.ShardSize())
	if err != nil {
		return err
	}
	ck.SetGroupCommit(s.cfg.FsyncEvery)

	// Scope: the requested microarchitecture, or all of them.
	var cpus []string
	if j.req.Uarch != "" {
		cpu, err := uarch.ByName(j.req.Uarch)
		if err != nil {
			ck.Close()
			return err
		}
		cpus = []string{cpu.Name}
	} else {
		for _, cpu := range uarch.All() {
			cpus = append(cpus, cpu.Name)
		}
	}

	// Missing = not journaled complete; everything else replays locally.
	names := map[string][]string{}
	var missing []dist.ShardRef
	for _, arch := range cpus {
		ns, err := suite.ModelNames(arch)
		if err != nil {
			ck.Close()
			return err
		}
		names[arch] = ns
		for si := 0; si < suite.NumCorpusShards(); si++ {
			lo, hi := suite.ShardRange(si)
			if e, ok := ck.Shard(arch, si); ok && harness.ShardComplete(e, ns, hi-lo) {
				continue
			}
			missing = append(missing, dist.ShardRef{Arch: arch, Shard: si})
		}
	}
	if len(missing) == 0 {
		return ck.Close()
	}

	reqRaw, err := json.Marshal(j.req)
	if err != nil {
		ck.Close()
		return fmt.Errorf("server: %w", err)
	}

	fill := &fillState{
		ck:      ck,
		suite:   suite,
		names:   names,
		total:   len(missing),
		j:       j,
		overall: map[string]stats.Running{},
		tau:     map[string]*stats.TauAcc{},
	}
	done, err := s.dist.AddJob(dist.JobSpec{
		ID:          j.ID,
		Fingerprint: fp,
		ShardSize:   suite.ShardSize(),
		Request:     reqRaw,
	}, missing, fill.sink)
	if err != nil {
		ck.Close()
		return err
	}
	j.appendProgress(fmt.Sprintf("dist: leasing %d missing shards across %d microarchitecture(s)", len(missing), len(cpus)))

	select {
	case <-done:
		if err := s.dist.Err(j.ID); err != nil {
			fill.close()
			return err
		}
		j.appendProgress("dist: fill complete; " + fill.summary())
		return fill.close()
	case <-s.interrupt:
		s.dist.RemoveJob(j.ID)
		s.dist.Err(j.ID) // consume the withdrawal error
		fill.close()
		return harness.ErrInterrupted
	}
}

// fillState is one distributed fill in flight: the journal handle, the
// validation context, and the merged live aggregates. The mutex
// serializes sink calls (the manager may deliver results concurrently)
// and fences Close against late writers.
type fillState struct {
	mu      sync.Mutex
	ck      *harness.Checkpoint
	suite   *harness.Suite
	names   map[string][]string
	filled  int
	total   int
	j       *Job
	closed  bool
	overall map[string]stats.Running
	tau     map[string]*stats.TauAcc
}

// sink validates and journals one worker shard.
func (f *fillState) sink(res *dist.ShardResult) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("server: fill already closed")
	}
	arch, si := res.Ref.Arch, res.Ref.Shard
	lo, hi := f.suite.ShardRange(si)
	n := hi - lo
	if len(res.Tp) != n || len(res.Status) != n {
		return fmt.Errorf("server: shard %s/%d payload covers %d records, want %d", arch, si, len(res.Tp), n)
	}
	preds := dist.FromNaNFloats(res.Preds)
	for _, name := range f.names[arch] {
		if len(preds[name]) != n {
			return fmt.Errorf("server: shard %s/%d payload missing model %q", arch, si, name)
		}
	}
	if err := f.ck.PutMeas(arch, si, res.Tp, res.Status); err != nil {
		return err
	}
	if err := f.ck.PutPreds(arch, si, preds); err != nil {
		return err
	}
	for name, agg := range res.Overall {
		cur := f.overall[name]
		cur.Merge(agg)
		f.overall[name] = cur
		if res.Tau[name] != nil {
			if f.tau[name] == nil {
				f.tau[name] = new(stats.TauAcc)
			}
			f.tau[name].Merge(res.Tau[name])
		}
	}
	f.filled++
	f.j.appendProgress(fmt.Sprintf("dist: shard %s/%d from %s (%d/%d)", arch, si, res.Worker, f.filled, f.total))
	return nil
}

// summary renders the merged live aggregates (approximate — the final
// tables come from journal replay, not from these merges).
func (f *fillState) summary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.overall))
	for name := range f.overall {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		agg := f.overall[name]
		parts = append(parts, fmt.Sprintf("%s err≈%.4f tau≈%.3f (n=%d)", name, agg.Mean(), f.tau[name].Value(), agg.N()))
	}
	if len(parts) == 0 {
		return "no accepted records"
	}
	return "merged worker aggregates: " + strings.Join(parts, ", ")
}

// close flushes and closes the journal exactly once, fencing out any
// sink call still in flight.
func (f *fillState) close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	return f.ck.Close()
}

// WorkerHarnessConfig rebuilds, from a coordinator job spec's normalized
// request, the harness configuration a distributed worker must evaluate
// under. The fields that feed the run fingerprint (seed, scale, corpus,
// model options) come straight from the request, so the worker's suite
// fingerprints identically to the coordinator's; execution-only knobs
// (parallelism, a local profile cache) are the caller's to set on the
// returned config.
func WorkerHarnessConfig(raw []byte, shardSize int) (harness.Config, error) {
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return harness.Config{}, fmt.Errorf("server: job spec request: %w", err)
	}
	if err := req.normalize(); err != nil {
		return harness.Config{}, fmt.Errorf("server: job spec request: %w", err)
	}
	cfg, err := req.harnessConfig()
	if err != nil {
		return harness.Config{}, err
	}
	if shardSize > 0 {
		cfg.ShardSize = shardSize
	}
	return cfg, nil
}
