package memo

import (
	"reflect"
	"sync"
	"testing"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func parse(t *testing.T, text string) *x86.Block {
	t.Helper()
	b, err := x86.ParseBlock(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDescribeMatchesDirect checks that memoized descriptions are
// indistinguishable from direct cpu.Describe calls across a varied block,
// repeated so both the miss and hit paths are exercised.
func TestDescribeMatchesDirect(t *testing.T) {
	b := parse(t, `add rax, rbx
		xor ecx, ecx
		mov rdx, qword ptr [rsp+8]
		mov qword ptr [rsp+16], rdx
		imul rax, rbx
		mulss xmm0, xmm1
		vxorps ymm2, ymm2, ymm2
		vfmadd231ps ymm0, ymm1, ymm2`)
	for _, cpu := range []*uarch.CPU{uarch.IvyBridge(), uarch.Haswell(), uarch.Skylake()} {
		for round := 0; round < 2; round++ {
			for i := range b.Insts {
				in := &b.Insts[i]
				want, wantErr := cpu.Describe(in)
				got, gotErr := Describe(cpu, in)
				if (wantErr == nil) != (gotErr == nil) || !reflect.DeepEqual(want, got) {
					t.Fatalf("%s/%s: memoized desc diverged", cpu.Name, in)
				}
				wantR, wantRErr := cpu.DescribeRaw(in)
				gotR, gotRErr := DescribeRaw(cpu, in)
				if (wantRErr == nil) != (gotRErr == nil) || !reflect.DeepEqual(wantR, gotR) {
					t.Fatalf("%s/%s: memoized raw desc diverged", cpu.Name, in)
				}
			}
		}
	}
}

// TestUnsupportedMemoized checks that UnsupportedError results are cached
// and still reported as such.
func TestUnsupportedMemoized(t *testing.T) {
	b := parse(t, "vfmadd231ps %ymm1, %ymm2, %ymm3")
	cpu := uarch.IvyBridge()
	for round := 0; round < 2; round++ {
		_, err := Describe(cpu, &b.Insts[0])
		if _, ok := err.(*uarch.UnsupportedError); !ok {
			t.Fatalf("round %d: want UnsupportedError, got %v", round, err)
		}
	}
	// The same instruction must stay supported on Haswell: the µarch is
	// part of the key.
	if _, err := Describe(uarch.Haswell(), &b.Insts[0]); err != nil {
		t.Fatalf("haswell fma: %v", err)
	}
}

// TestEncodeMatchesDirect checks byte-exact memoized encodings.
func TestEncodeMatchesDirect(t *testing.T) {
	b := parse(t, "add rax, rbx\nmov rcx, qword ptr [rsp+8]\nnop")
	for round := 0; round < 2; round++ {
		for i := range b.Insts {
			want, wantErr := x86.Encode(b.Insts[i])
			got, gotErr := Encode(&b.Insts[i])
			if (wantErr == nil) != (gotErr == nil) || string(want) != string(got) {
				t.Fatalf("%s: memoized encoding diverged", &b.Insts[i])
			}
		}
	}
}

// TestRegSetsStable checks memoized register sets repeat exactly.
func TestRegSetsStable(t *testing.T) {
	b := parse(t, "add rax, rbx\nmov rcx, qword ptr [rsp+8]\nadc r8b, r9b")
	for i := range b.Insts {
		a1, d1, w1 := RegSets(&b.Insts[i])
		a2, d2, w2 := RegSets(&b.Insts[i])
		if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(w1, w2) {
			t.Fatalf("%s: unstable reg sets", &b.Insts[i])
		}
	}
}

// TestConcurrentAccess hammers the memo maps from many goroutines; run
// under -race this is the regression test for the shared tables.
func TestConcurrentAccess(t *testing.T) {
	b := parse(t, `add rax, rbx
		mov rcx, qword ptr [rsp+8]
		mulss xmm0, xmm1
		vxorps ymm2, ymm2, ymm2`)
	cpus := []*uarch.CPU{uarch.IvyBridge(), uarch.Haswell(), uarch.Skylake()}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				for i := range b.Insts {
					in := &b.Insts[i]
					cpu := cpus[(round+i)%len(cpus)]
					if _, err := Describe(cpu, in); err != nil {
						t.Error(err)
					}
					if _, err := DescribeRaw(cpu, in); err != nil {
						t.Error(err)
					}
					if _, err := Encode(in); err != nil {
						t.Error(err)
					}
					RegSets(in)
				}
			}
		}()
	}
	wg.Wait()
}
