// Package memo is the process-wide memoization layer for per-instruction
// derivations that the profiler, the analytical models and the classifier
// otherwise re-compute for every dynamic instruction: machine-code
// encoding, the microarchitecture-specific µop decomposition / port-table
// lookup, and the pipeline register-use sets.
//
// All tables are keyed by instruction value (opcode + operands) — and, for
// the µop descriptions, by microarchitecture name — so results are shared
// across goroutines, profilers, models and unroll factors. Entries are
// immutable once published: callers must treat returned slices as
// read-only, which every consumer in this repository does (the pipeline
// copies µop specs before mutating latencies).
package memo

import (
	"sync"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// maxArgs is the operand-count ceiling for memoizable instructions; x86
// instructions in this subset carry at most three operands, so the
// fallback (direct computation, no caching) is effectively never taken.
const maxArgs = 4

// instKey is a comparable identity for an instruction value.
type instKey struct {
	op   x86.Op
	n    uint8
	args [maxArgs]x86.Operand
}

// keyOf builds the memo key; ok is false for instructions with too many
// operands to be representable (these fall back to direct computation).
func keyOf(in *x86.Inst) (instKey, bool) {
	if len(in.Args) > maxArgs {
		return instKey{}, false
	}
	k := instKey{op: in.Op, n: uint8(len(in.Args))}
	copy(k.args[:], in.Args)
	return k, true
}

// descKey extends instKey with the microarchitecture and the raw/renamed
// view (Describe vs DescribeRaw).
type descKey struct {
	cpu string
	raw bool
	ik  instKey
}

type descEntry struct {
	d   uarch.Desc
	err error
}

type encEntry struct {
	raw []byte
	err error
}

type regEntry struct {
	addr, data, writes []uint8
}

var (
	descs sync.Map // descKey -> descEntry
	encs  sync.Map // instKey -> encEntry
	regs  sync.Map // instKey -> regEntry
	preps sync.Map // descKey -> *PreparedInst
)

// PreparedInst bundles every per-instruction derivation program
// preparation needs — encoding, µop description and register-use sets —
// resolved together so the hot path pays one memo lookup (one key hash)
// per instruction instead of three. Entries are immutable and shared:
// callers must not mutate any field.
type PreparedInst struct {
	Raw                []byte
	Desc               uarch.Desc
	Addr, Data, Writes []uint8
	// LCP marks encodings with a length-changing prefix (0x66 shrinking an
	// immediate), which stall the modeled predecoder.
	LCP bool
	// Err is the first error of encoding then description; the successful
	// derivations are still populated.
	Err error
}

// Prepared returns the combined memo entry for (instruction, µarch).
func Prepared(cpu *uarch.CPU, in *x86.Inst) *PreparedInst {
	ik, ok := keyOf(in)
	if !ok {
		return preparedDirect(cpu, in)
	}
	k := descKey{cpu: cpu.Name, ik: ik}
	if v, hit := preps.Load(k); hit {
		return v.(*PreparedInst)
	}
	p := preparedDirect(cpu, in)
	preps.Store(k, p)
	return p
}

func preparedDirect(cpu *uarch.CPU, in *x86.Inst) *PreparedInst {
	p := new(PreparedInst)
	p.Raw, p.Err = Encode(in)
	p.LCP = x86.LengthChangingPrefix(p.Raw)
	if d, err := Describe(cpu, in); p.Err == nil {
		p.Desc, p.Err = d, err
	} else {
		p.Desc = d
	}
	p.Addr, p.Data, p.Writes = RegSets(in)
	return p
}

// Describe is cpu.Describe memoized by (instruction, µarch).
func Describe(cpu *uarch.CPU, in *x86.Inst) (uarch.Desc, error) {
	return describe(cpu, in, false)
}

// DescribeRaw is cpu.DescribeRaw memoized by (instruction, µarch).
func DescribeRaw(cpu *uarch.CPU, in *x86.Inst) (uarch.Desc, error) {
	return describe(cpu, in, true)
}

func describe(cpu *uarch.CPU, in *x86.Inst, raw bool) (uarch.Desc, error) {
	ik, ok := keyOf(in)
	if !ok {
		return describeDirect(cpu, in, raw)
	}
	k := descKey{cpu: cpu.Name, raw: raw, ik: ik}
	if v, hit := descs.Load(k); hit {
		e := v.(descEntry)
		return e.d, e.err
	}
	d, err := describeDirect(cpu, in, raw)
	descs.Store(k, descEntry{d: d, err: err})
	return d, err
}

func describeDirect(cpu *uarch.CPU, in *x86.Inst, raw bool) (uarch.Desc, error) {
	if raw {
		return cpu.DescribeRaw(in)
	}
	return cpu.Describe(in)
}

// Encode is x86.Encode memoized by instruction. The returned byte slice is
// shared: callers must not mutate it.
func Encode(in *x86.Inst) ([]byte, error) {
	k, ok := keyOf(in)
	if !ok {
		return x86.Encode(*in)
	}
	if v, hit := encs.Load(k); hit {
		e := v.(encEntry)
		return e.raw, e.err
	}
	raw, err := x86.Encode(*in)
	encs.Store(k, encEntry{raw: raw, err: err})
	return raw, err
}

// RegFlags is the pipeline's status-flags register id (kept in sync with
// pipeline.RegFlags by a test in internal/machine).
const RegFlags = 32

// RegSets maps an instruction's register usage onto the pipeline register
// ids (0–15 GPRs by 64-bit base, 16–31 vector registers by YMM base, 32
// the flags), memoized by instruction. The returned slices are shared:
// callers must not mutate them.
func RegSets(in *x86.Inst) (addr, data, writes []uint8) {
	k, ok := keyOf(in)
	if !ok {
		return regSets(in)
	}
	if v, hit := regs.Load(k); hit {
		e := v.(regEntry)
		return e.addr, e.data, e.writes
	}
	a, d, w := regSets(in)
	regs.Store(k, regEntry{addr: a, data: d, writes: w})
	return a, d, w
}

// regSets computes the register-use sets (previously machine.RegSets).
func regSets(in *x86.Inst) (addr, data, writes []uint8) {
	id := func(r x86.Reg) (uint8, bool) {
		switch b := r.Base64(); b.Class() {
		case x86.ClassGP64:
			return uint8(b.Num()), true
		case x86.ClassYMM:
			return uint8(16 + b.Num()), true
		}
		return 0, false
	}
	for k, a := range in.Args {
		switch a.Kind {
		case x86.KindReg:
			r, w := in.ArgIO(k)
			// Sub-register writes merge, hence also read (RegReads models
			// this); replicate that rule here.
			merge := w && (a.Reg.Class() == x86.ClassGP8 || a.Reg.Class() == x86.ClassGP16)
			if r || merge {
				if n, ok := id(a.Reg); ok {
					data = append(data, n)
				}
			}
			if w {
				if n, ok := id(a.Reg); ok {
					writes = append(writes, n)
				}
			}
		case x86.KindMem:
			if n, ok := id(a.Mem.Base); ok {
				addr = append(addr, n)
			}
			if n, ok := id(a.Mem.Index); ok {
				addr = append(addr, n)
			}
		}
	}
	for _, r := range in.Op.ImplicitReads() {
		if n, ok := id(r); ok {
			data = append(data, n)
		}
	}
	for _, r := range in.Op.ImplicitWrites() {
		if n, ok := id(r); ok {
			writes = append(writes, n)
		}
	}
	if in.Op.ReadsFlags() {
		data = append(data, RegFlags)
	}
	if in.Op.WritesFlags() {
		writes = append(writes, RegFlags)
	}
	return addr, data, writes
}
