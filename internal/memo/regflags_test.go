package memo

import (
	"testing"

	"bhive/internal/pipeline"
)

// memo duplicates the flags register id to avoid importing pipeline; this
// pins the two constants together.
func TestRegFlagsMatchesPipeline(t *testing.T) {
	if RegFlags != pipeline.RegFlags {
		t.Fatalf("memo.RegFlags = %d, pipeline.RegFlags = %d", RegFlags, pipeline.RegFlags)
	}
}
