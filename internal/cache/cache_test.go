package cache

import "testing"

func TestHitMiss(t *testing.T) {
	c := New(32<<10, 8, 64)
	if c.Access(0x1000) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0x1000) || !c.Access(0x1038) {
		t.Fatal("same line must hit")
	}
	if c.Access(0x1040) {
		t.Fatal("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestSetConflictEviction(t *testing.T) {
	// 32KB, 8-way, 64B lines → 64 sets. Nine lines mapping to the same
	// set overflow the ways.
	c := New(32<<10, 8, 64)
	setStride := uint64(64 * 64) // lines with the same set index
	for i := uint64(0); i < 9; i++ {
		c.Access(i * setStride)
	}
	if c.Access(0) { // way 0 was evicted by LRU
		t.Fatal("expected conflict eviction of the oldest line")
	}
}

func TestSamePhysicalPageNeverConflicts(t *testing.T) {
	// The VIPT property behind the single-physical-page trick: a 4KB page
	// covers 64 lines = one line per set, so repeated traversal of one
	// page fits trivially.
	c := New(32<<10, 8, 64)
	for pass := 0; pass < 4; pass++ {
		for off := uint64(0); off < 4096; off += 64 {
			c.Access(0x7000 + off)
		}
	}
	if c.Misses != 64 {
		t.Fatalf("only compulsory misses expected, got %d", c.Misses)
	}
}

func TestAccessRangeSplit(t *testing.T) {
	c := New(32<<10, 8, 64)
	misses, split := c.AccessRange(60, 8) // crosses the line at 64
	if !split || misses != 2 {
		t.Fatalf("split=%v misses=%d", split, misses)
	}
	_, split = c.AccessRange(64, 8)
	if split {
		t.Fatal("aligned access must not split")
	}
}

func TestFlushAndCounters(t *testing.T) {
	c := New(32<<10, 8, 64)
	c.Access(0x100)
	c.Flush()
	if c.Access(0x100) {
		t.Fatal("flush must invalidate")
	}
	c.ResetCounters()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("counters reset")
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(2*64*2, 2, 64) // 2 sets, 2 ways
	// Fill set 0 with lines A and B, touch A, then add C: B is evicted.
	a, b, d := uint64(0), uint64(2*64), uint64(4*64)
	c.Access(a)
	c.Access(b)
	c.Access(a)
	c.Access(d)
	if !c.Access(a) {
		t.Fatal("A should have survived")
	}
	if c.Access(b) {
		t.Fatal("B should have been evicted")
	}
}
