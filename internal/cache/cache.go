// Package cache implements the set-associative L1 cache model shared by the
// instruction and data caches of the simulated cores. The data cache is
// virtually indexed and physically tagged (VIPT), which is what makes the
// single-physical-page mapping trick deliver guaranteed hits: every virtual
// page aliases the same 64 physical lines.
package cache

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	sets     int
	assoc    int
	lineSize int

	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	clock uint64

	Hits   uint64
	Misses uint64
}

// New builds a cache of the given total size, associativity and line size.
func New(size, assoc, lineSize int) *Cache {
	sets := size / (assoc * lineSize)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{sets: sets, assoc: assoc, lineSize: lineSize}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, assoc)
		c.valid[i] = make([]bool, assoc)
		c.lru[i] = make([]uint64, assoc)
	}
	return c
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Access touches the line containing physAddr and reports whether it hit.
// Misses fill the line.
func (c *Cache) Access(physAddr uint64) bool {
	c.clock++
	line := physAddr / uint64(c.lineSize)
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	ways := c.tags[set]
	for w := range ways {
		if c.valid[set][w] && ways[w] == tag {
			c.lru[set][w] = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Fill, evicting the LRU way.
	victim := 0
	for w := range ways {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.clock
	return false
}

// AccessRange touches every line overlapped by [physAddr, physAddr+size)
// and returns the number of misses. Splits reports whether the access
// crossed a line boundary (the MISALIGNED_MEM_REFERENCE condition).
func (c *Cache) AccessRange(physAddr uint64, size int) (misses int, split bool) {
	first := physAddr / uint64(c.lineSize)
	last := (physAddr + uint64(size) - 1) / uint64(c.lineSize)
	for line := first; line <= last; line++ {
		if !c.Access(line * uint64(c.lineSize)) {
			misses++
		}
	}
	return misses, last != first
}

// Flush invalidates the whole cache (used to model the pollution caused by
// a context switch).
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}

// ResetCounters clears the hit/miss statistics without touching contents.
func (c *Cache) ResetCounters() { c.Hits, c.Misses = 0, 0 }

// Reset cold-resets the cache to its just-constructed state — contents,
// LRU clock and counters — so a cache allocation can be reused across
// measurements without behavioral difference from a fresh New.
func (c *Cache) Reset() {
	c.Flush()
	c.clock = 0
	c.Hits, c.Misses = 0, 0
}
