package pipeline

import (
	"testing"

	"bhive/internal/uarch"
)

// TestSimulateAllocs guards the scratch-arena design: once the pooled
// scratch has grown to the working-set size, steady-state Simulate calls
// must not allocate. The budget of 1 absorbs rare pool-miss refills under
// concurrent GC; the pre-arena implementation allocated ~10 slices per
// call and trips this immediately.
func TestSimulateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cpu := uarch.Haswell()
	var items []Item
	for i := 0; i < 64; i++ {
		items = append(items, aluItem(cpu, []uint8{0, 1}, []uint8{0}, 1))
	}
	l1i, l1d := caches(cpu)
	// Grow the pooled scratch and warm the caches.
	Simulate(cpu, items, l1i, l1d, Config{})

	avg := testing.AllocsPerRun(200, func() {
		Simulate(cpu, items, l1i, l1d, Config{})
	})
	if avg > 1 {
		t.Fatalf("Simulate allocates %.1f times per run in steady state; want <= 1", avg)
	}
}
