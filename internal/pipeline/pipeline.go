// Package pipeline is the cycle-level out-of-order core model — the
// "silicon" of this reproduction. It models the front end (16-byte fetch
// through an L1 instruction cache), rename-time optimizations (zero-idiom
// elimination, move elimination), allocation constrained by ROB /
// reservation-station / load- and store-buffer capacity, per-port
// oldest-first issue, a non-pipelined divider, load/store execution against
// an L1 data cache with store-to-load forwarding, split-access and
// subnormal penalties, in-order retirement, and timer-interrupt context
// switches. Its performance counters are what the measurement framework
// reads.
package pipeline

import (
	"math"
	"math/rand"
	"sync"

	"bhive/internal/cache"
	"bhive/internal/exec"
	"bhive/internal/uarch"
)

// Register identifiers used for dependence tracking: 0–15 GPRs (by 64-bit
// base), 16–31 vector registers (by YMM base), 32 the status flags.
const (
	RegFlags = 32
	NumRegs  = 33
)

// Item is one dynamic instruction prepared for timing.
type Item struct {
	Desc uarch.Desc

	// AddrReads are registers consumed by address generation; DataReads by
	// the computation itself (including RMW destinations and flags).
	AddrReads []uint8
	DataReads []uint8
	Writes    []uint8

	Load  *exec.MemAccess
	Store *exec.MemAccess

	// Subnormal marks FP work that hit the gradual-underflow slow path.
	Subnormal bool

	// CodePhys/CodeLen locate the instruction bytes for I-cache modelling.
	CodePhys uint64
	CodeLen  int

	// LCP marks a length-changing-prefix encoding, which stalls the
	// modeled predecoder (ignored by the legacy front end).
	LCP bool
}

// Config carries per-run knobs beyond the CPU parameter file.
type Config struct {
	// SwitchRate is the per-cycle probability of a timer interrupt /
	// context switch (0 disables). The OS quantum is huge relative to a
	// measurement, so realistic values are tiny (~1e-7..1e-6).
	SwitchRate float64
	// SwitchCost is the cycle cost of one context switch.
	SwitchCost uint64
	// Rand drives context-switch arrival times; nil disables switches.
	Rand *rand.Rand
	// Reference selects the retained cycle-by-cycle scheduler instead of
	// the default event-driven one. The two are bit-identical — same
	// Counters, same RNG draw sequence (see FuzzSimulateEquivalence); the
	// reference loop is the oracle the fast path is checked against.
	Reference bool
	// ModeledFrontEnd replaces the 16-bytes-per-cycle fetch approximation
	// with the uiCA-style decoded front end (predecode with LCP stalls,
	// MITE decode-group assignment, DSB residency and delivery, LSD
	// lock-down, and DSB↔MITE switch penalties), parameterized by the
	// CPU's FrontEnd fields. Off (the default) keeps the simulator
	// bit-identical to the legacy model.
	ModeledFrontEnd bool
	// LoopBody is the iteration length in instructions for the modeled
	// front end: the item sequence is treated as ceil(n/LoopBody)
	// iterations of the first LoopBody items (an unrolled basic block).
	// 0 means the whole sequence is one iteration (MITE-only delivery).
	LoopBody int
}

// Counters are the hardware performance counters the profiler reads.
type Counters struct {
	Cycles           uint64
	Instructions     uint64
	Uops             uint64
	L1DReadMisses    uint64
	L1DWriteMisses   uint64
	L1IMisses        uint64
	MisalignedLoads  uint64
	MisalignedStores uint64
	ContextSwitches  uint64
	// PortUops counts micro-ops issued per execution port — the per-port
	// counters Abel and Reineke's methodology relies on.
	PortUops [16]uint64
}

// storeRec tracks an in-flight store for forwarding and commit.
type storeRec struct {
	item    int
	addr    uint64
	size    int
	dataUop int32
	retired bool
}

// uop is a micro-op in flight. Dependence edges live in the SimScratch
// deps arena at [depLo, depHi).
type uop struct {
	item int
	spec uarch.Uop

	depLo, depHi int32 // producer µop ids in scratch.deps

	allocated bool
	issued    bool
	done      bool
	issueAt   uint64
	doneAt    uint64
}

const maxCycles = 50_000_000

// SimScratch holds every transient buffer one Simulate call needs, so the
// steady-state simulation path performs no heap allocation. Scratches are
// recycled through a sync.Pool; a zero SimScratch is ready to use.
type SimScratch struct {
	fetchReady   []uint64
	uops         []uop
	itemFirstUop []int32 // µop-id range starts per item, +1 sentinel
	deps         []int32 // dependence-edge arena indexed by uop.depLo/depHi
	itemStore    []int32 // index into stores, -1 if none
	stores       []storeRec
	rs           []int32  // allocated, unissued µop ids (age order)
	portBusy     []uint64 // busy-until for non-pipelined units
	portUse      []bool
	itemAlloc    []bool
}

var scratchPool = sync.Pool{New: func() any { return new(SimScratch) }}

// grow returns s[:n], reallocating when the capacity is short. The
// returned slice contents are unspecified; callers fully overwrite them.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Simulate times the item sequence on the CPU and returns the counters.
// l1i and l1d carry cache state across calls (warmup vs. timed runs).
// Scratch memory is drawn from an internal pool, making the steady-state
// path allocation-free (see TestSimulateAllocs).
func Simulate(cpu *uarch.CPU, items []Item, l1i, l1d *cache.Cache, cfg Config) Counters {
	if cfg.Reference {
		s := scratchPool.Get().(*SimScratch)
		// Deferred so a panic mid-simulation cannot leak the arena.
		defer scratchPool.Put(s)
		return s.simulate(cpu, items, l1i, l1d, cfg)
	}
	g := graphPool.Get().(*Graph)
	defer graphPool.Put(g)
	g.Build(cpu, items)
	return SimulateGraph(cpu, g, l1i, l1d, cfg)
}

var graphPool = sync.Pool{New: func() any { return new(Graph) }}

func (s *SimScratch) simulate(cpu *uarch.CPU, items []Item, l1i, l1d *cache.Cache, cfg Config) Counters {
	var ctr Counters
	ctr.Instructions = uint64(len(items))
	if len(items) == 0 {
		return ctr
	}

	s.fetchReady = grow(s.fetchReady, len(items))
	fetchReady := s.fetchReady
	if cfg.ModeledFrontEnd {
		modeledFetch(cpu, feItems(items), cfg.LoopBody, l1i, &ctr, fetchReady)
	} else {
		simulateFetch(cpu, items, l1i, &ctr, fetchReady)
	}

	// Build the µop list with dependence edges. Each item's µops are
	// contiguous, so itemFirstUop with a sentinel entry replaces the
	// per-item id slices.
	s.uops = s.uops[:0]
	s.deps = s.deps[:0]
	s.stores = s.stores[:0]
	s.itemFirstUop = grow(s.itemFirstUop, len(items)+1)
	s.itemStore = grow(s.itemStore, len(items))
	itemFirstUop := s.itemFirstUop
	itemStore := s.itemStore
	var lastWriter [NumRegs]int32
	for i := range lastWriter {
		lastWriter[i] = -1
	}

	for i := range items {
		it := &items[i]
		itemStore[i] = -1
		itemFirstUop[i] = int32(len(s.uops))

		if it.Desc.ZeroIdiom {
			for _, w := range it.Writes {
				lastWriter[w] = -1 // dependency-breaking
			}
			continue
		}
		if it.Desc.EliminatedMove {
			// Alias the destination to the source's producer.
			src := int32(-1)
			if len(it.DataReads) > 0 {
				src = lastWriter[it.DataReads[0]]
			}
			for _, w := range it.Writes {
				lastWriter[w] = src
			}
			continue
		}

		addrDeps := func() {
			for _, r := range it.AddrReads {
				if p := lastWriter[r]; p >= 0 {
					s.deps = append(s.deps, p)
				}
			}
		}
		dataDeps := func() {
			for _, r := range it.DataReads {
				if p := lastWriter[r]; p >= 0 {
					s.deps = append(s.deps, p)
				}
			}
		}

		var loadUop, lastCompute int32 = -1, -1
		for k := range it.Desc.Uops {
			spec := it.Desc.Uops[k]
			u := uop{item: i, spec: spec, depLo: int32(len(s.deps))}
			id := int32(len(s.uops))
			switch spec.Class {
			case uarch.ClassLoad:
				addrDeps()
				loadUop = id
			case uarch.ClassStoreAddr:
				addrDeps()
			case uarch.ClassStoreData:
				if lastCompute >= 0 {
					s.deps = append(s.deps, lastCompute)
				} else {
					dataDeps()
					if loadUop >= 0 {
						s.deps = append(s.deps, loadUop)
					}
				}
			default: // computation
				dataDeps()
				if loadUop >= 0 {
					s.deps = append(s.deps, loadUop)
				}
				if lastCompute >= 0 {
					// Multi-µop instructions chain internally.
					s.deps = append(s.deps, lastCompute)
				}
				if it.Subnormal && it.Desc.FP {
					// Gradual underflow takes a microcode assist: it not
					// only lengthens the op but blocks the port, so
					// independent FP work cannot hide it.
					pen := uint8(min(250, cpu.SubnormalPenalty))
					u.spec.Lat += pen
					if u.spec.Occupancy < pen {
						u.spec.Occupancy = pen
					}
				}
				lastCompute = id
			}
			u.depHi = int32(len(s.deps))
			s.uops = append(s.uops, u)
		}

		// Register writes come from the last computation µop, or the load
		// for pure loads.
		producer := lastCompute
		if producer < 0 {
			producer = loadUop
		}
		for _, w := range it.Writes {
			lastWriter[w] = producer
		}

		if it.Store != nil {
			var dataUop int32 = -1
			for k := range it.Desc.Uops {
				if it.Desc.Uops[k].Class == uarch.ClassStoreData {
					dataUop = itemFirstUop[i] + int32(k)
				}
			}
			itemStore[i] = int32(len(s.stores))
			s.stores = append(s.stores, storeRec{
				item: i, addr: it.Store.Addr, size: int(it.Store.Size), dataUop: dataUop,
			})
		}
	}
	itemFirstUop[len(items)] = int32(len(s.uops))
	uops := s.uops
	stores := s.stores
	deps := s.deps
	ctr.Uops = uint64(len(uops))

	// Context-switch schedule.
	nextSwitch := uint64(math.MaxUint64)
	drawSwitch := func(now uint64) uint64 {
		if cfg.SwitchRate <= 0 || cfg.Rand == nil {
			return math.MaxUint64
		}
		gap := cfg.Rand.ExpFloat64() / cfg.SwitchRate
		if gap > 1e12 {
			return math.MaxUint64
		}
		return now + uint64(gap) + 1
	}
	nextSwitch = drawSwitch(0)

	// Main cycle loop.
	var (
		cycle        uint64
		nextAlloc    int // next item to allocate
		retired      int // items fully retired
		robUsed      int
		rsUsed       int
		loadBufUsed  int
		storeBufUsed int
	)
	s.rs = s.rs[:0]
	rs := s.rs
	s.portBusy = grow(s.portBusy, cpu.NumPorts)
	portBusy := s.portBusy
	for p := range portBusy {
		portBusy[p] = 0
	}
	s.portUse = grow(s.portUse, cpu.NumPorts)
	portUse := s.portUse

	s.itemAlloc = grow(s.itemAlloc, len(items))
	itemAllocated := s.itemAlloc
	for i := range itemAllocated {
		itemAllocated[i] = false
	}

	itemDone := func(i int) bool {
		for id := itemFirstUop[i]; id < itemFirstUop[i+1]; id++ {
			if !uops[id].done || uops[id].doneAt > cycle {
				return false
			}
		}
		return true
	}

	for retired < len(items) && cycle < maxCycles {
		// Context switch: jump the clock, flush caches.
		if cycle >= nextSwitch {
			ctr.ContextSwitches++
			cycle += cfg.SwitchCost
			l1i.Flush()
			l1d.Flush()
			nextSwitch = drawSwitch(cycle)
			continue
		}

		// Retire (in order, RetireWidth fused µops per cycle).
		retireBudget := cpu.RetireWidth
		for retired < len(items) && retireBudget > 0 {
			i := retired
			if !itemAllocated[i] || !itemDone(i) {
				break
			}
			if items[i].Desc.FusedUops > retireBudget && retireBudget < cpu.RetireWidth {
				break // finish next cycle
			}
			retireBudget -= items[i].Desc.FusedUops
			robUsed -= items[i].Desc.FusedUops
			if items[i].Load != nil {
				loadBufUsed--
			}
			if si := itemStore[i]; si >= 0 {
				// Commit the store to the cache.
				st := &stores[si]
				misses, split := l1d.AccessRange(items[i].Store.Phys, st.size)
				ctr.L1DWriteMisses += uint64(misses)
				if split {
					ctr.MisalignedStores++
				}
				st.retired = true
				storeBufUsed--
			}
			retired++
		}

		// Allocate (in order, IssueWidth fused µops per cycle).
		allocBudget := cpu.IssueWidth
		for nextAlloc < len(items) && allocBudget > 0 {
			it := &items[nextAlloc]
			if fetchReady[nextAlloc] > cycle {
				break
			}
			f := it.Desc.FusedUops
			if f > allocBudget {
				break
			}
			nExec := int(itemFirstUop[nextAlloc+1] - itemFirstUop[nextAlloc])
			if robUsed+f > cpu.ROBSize || rsUsed+nExec > cpu.RSSize {
				break
			}
			if it.Load != nil && loadBufUsed+1 > cpu.LoadBufs {
				break
			}
			if it.Store != nil && storeBufUsed+1 > cpu.StoreBufs {
				break
			}
			allocBudget -= f
			robUsed += f
			rsUsed += nExec
			if it.Load != nil {
				loadBufUsed++
			}
			if it.Store != nil {
				storeBufUsed++
			}
			itemAllocated[nextAlloc] = true
			for id := itemFirstUop[nextAlloc]; id < itemFirstUop[nextAlloc+1]; id++ {
				uops[id].allocated = true
				rs = append(rs, id)
			}
			nextAlloc++
		}

		// Issue (oldest first, one µop per port per cycle).
		for p := range portUse {
			portUse[p] = false
		}
		w := 0
		for _, id := range rs {
			u := &uops[id]
			// Dependences satisfied?
			ready := true
			for _, d := range deps[u.depLo:u.depHi] {
				if !uops[d].done || uops[d].doneAt > cycle {
					ready = false
					break
				}
			}
			if ready && u.spec.Class == uarch.ClassLoad {
				// Check for an older overlapping un-committed store.
				if loadBlocked(items, stores, uops, id, cycle) {
					ready = false
				}
			}
			if !ready {
				rs[w] = id
				w++
				continue
			}
			// Find a free allowed port (least-loaded heuristic: first free).
			port := -1
			for p := 0; p < cpu.NumPorts; p++ {
				if u.spec.Ports.Has(p) && !portUse[p] && portBusy[p] <= cycle {
					port = p
					break
				}
			}
			if port < 0 {
				rs[w] = id
				w++
				continue
			}
			portUse[port] = true
			ctr.PortUops[port]++
			if u.spec.Occupancy > 0 {
				portBusy[port] = cycle + uint64(u.spec.Occupancy)
			}
			u.issued = true
			u.issueAt = cycle
			lat := uint64(u.spec.Lat)

			if u.spec.Class == uarch.ClassLoad {
				extra, _ := loadExecute(items, stores, uops, id, l1d, &ctr, cpu)
				lat += extra
			}

			u.done = true
			u.doneAt = cycle + lat
			rsUsed--
		}
		rs = rs[:w]

		cycle++
	}
	s.rs = rs[:0] // keep the grown reservation-station buffer

	ctr.Cycles = cycle
	return ctr
}

// loadBlocked reports whether a ready load must stall because an older
// store to an overlapping address has not produced its data (or only
// partially overlaps and must drain to the cache first).
func loadBlocked(items []Item, stores []storeRec, uops []uop, loadID int32, cycle uint64) bool {
	u := &uops[loadID]
	ld := items[u.item].Load
	for si := len(stores) - 1; si >= 0; si-- {
		st := &stores[si]
		if st.item >= u.item {
			continue
		}
		if st.retired {
			break // all older stores at or before this one are committed
		}
		if !overlaps(ld.Addr, int(ld.Size), st.addr, st.size) {
			continue
		}
		if contains(st.addr, st.size, ld.Addr, int(ld.Size)) {
			// Forwardable once the store data is ready.
			if st.dataUop >= 0 && (!uops[st.dataUop].done || uops[st.dataUop].doneAt > cycle) {
				return true
			}
			return false
		}
		// Partial overlap: wait for commit.
		return true
	}
	return false
}

// loadExecute performs the cache access for an issuing load and returns
// extra latency beyond the base load-to-use latency.
func loadExecute(items []Item, stores []storeRec, uops []uop, loadID int32, l1d *cache.Cache, ctr *Counters, cpu *uarch.CPU) (extra uint64, forwarded bool) {
	u := &uops[loadID]
	ld := items[u.item].Load

	// Store-to-load forwarding?
	for si := len(stores) - 1; si >= 0; si-- {
		st := &stores[si]
		if st.item >= u.item {
			continue
		}
		if st.retired {
			break
		}
		if contains(st.addr, st.size, ld.Addr, int(ld.Size)) {
			return uint64(cpu.FwdLatency - cpu.L1DLatency + 1), true
		}
		if overlaps(ld.Addr, int(ld.Size), st.addr, st.size) {
			break
		}
	}

	misses, split := l1d.AccessRange(ld.Phys, int(ld.Size))
	if misses > 0 {
		ctr.L1DReadMisses += uint64(misses)
		extra += uint64(cpu.MissPenalty)
	}
	if split {
		ctr.MisalignedLoads++
		extra += uint64(cpu.SplitPenalty)
	}
	return extra, false
}

func overlaps(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

func contains(outer uint64, on int, inner uint64, in int) bool {
	return outer <= inner && inner+uint64(in) <= outer+uint64(on)
}

// simulateFetch models the 16-byte-per-cycle front end walking the code
// bytes through the L1 instruction cache, filling ready (len(items)) with
// the cycle each instruction's bytes are available for decode.
func simulateFetch(cpu *uarch.CPU, items []Item, l1i *cache.Cache, ctr *Counters, ready []uint64) {
	var bytes uint64  // total code bytes fetched
	var stalls uint64 // accumulated I-cache miss cycles
	lastLine := uint64(math.MaxUint64)
	for i := range items {
		it := &items[i]
		first := it.CodePhys / uint64(cpu.LineSize)
		last := (it.CodePhys + uint64(it.CodeLen) - 1) / uint64(cpu.LineSize)
		for line := first; line <= last; line++ {
			if line == lastLine {
				continue
			}
			lastLine = line
			if !l1i.Access(line * uint64(cpu.LineSize)) {
				ctr.L1IMisses++
				stalls += uint64(cpu.MissPenalty)
			}
		}
		bytes += uint64(it.CodeLen)
		ready[i] = bytes/16 + stalls
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
