package pipeline

import (
	"testing"

	"bhive/internal/cache"
	"bhive/internal/uarch"
)

// feTestItems builds a synthetic item slice for driving modeledFetch
// directly: each spec is (code length, fused µops, has-LCP), laid out
// contiguously from physical address 0.
func feTestItems(specs ...[3]int) []Item {
	items := make([]Item, len(specs))
	phys := uint64(0)
	for i, s := range specs {
		items[i].CodePhys = phys
		items[i].CodeLen = s[0]
		items[i].Desc.FusedUops = s[1]
		items[i].LCP = s[2] != 0
		phys += uint64(s[0])
	}
	return items
}

// repeatItems unrolls a body u times, advancing the physical addresses the
// way machine.PrepareUnrolled lays out an unrolled program.
func repeatItems(body []Item, u int) []Item {
	var out []Item
	phys := uint64(0)
	for it := 0; it < u; it++ {
		for _, b := range body {
			b.CodePhys = phys
			phys += uint64(b.CodeLen)
			out = append(out, b)
		}
	}
	return out
}

func runModeledFetch(cpu *uarch.CPU, items []Item, body int) ([]uint64, Counters) {
	var ctr Counters
	ready := make([]uint64, len(items))
	l1i := cache.New(cpu.L1ISize, cpu.L1Assoc, cpu.LineSize)
	modeledFetch(cpu, feItems(items), body, l1i, &ctr, ready)
	return ready, ctr
}

// TestDecoderAssign pins the legacy-decode group rules: decodeWidth
// instructions per cycle, complex (multi-µop) instructions only in the
// leading slot, and a predecode lag restarting the group.
func TestDecoderAssign(t *testing.T) {
	fe := frontEnd{decodeWidth: 4}
	d := decoder{fe: &fe}

	// Four simple instructions share cycle 0; the fifth spills to cycle 1.
	d.reset(0)
	for i, want := range []uint64{0, 0, 0, 0, 1} {
		if got := d.assign(0, false); got != want {
			t.Fatalf("simple inst %d decodes at %d, want %d", i, got, want)
		}
	}

	// A complex instruction must lead its group: simple, complex, simple
	// splits into cycle 0 / cycle 1 / cycle 1.
	d.reset(0)
	if got := d.assign(0, false); got != 0 {
		t.Fatalf("leading simple at %d, want 0", got)
	}
	if got := d.assign(0, true); got != 1 {
		t.Fatalf("complex after simple at %d, want 1", got)
	}
	if got := d.assign(0, false); got != 1 {
		t.Fatalf("simple after complex at %d, want 1", got)
	}
	// A complex instruction already at the head of a group does not stall.
	d.reset(5)
	if got := d.assign(5, true); got != 5 {
		t.Fatalf("leading complex at %d, want 5", got)
	}

	// Predecode lag: an instruction whose bytes arrive later restarts the
	// group at the arrival cycle with all slots free.
	d.reset(0)
	d.assign(0, false)
	if got := d.assign(3, false); got != 3 {
		t.Fatalf("lagged inst decodes at %d, want 3", got)
	}
	if got := d.assign(3, false); got != 3 {
		t.Fatalf("inst after lag decodes at %d, want 3 (fresh group)", got)
	}
}

// TestDSBResident pins the µop-cache capacity model: per-32-byte-window
// way limits and per-set way limits.
func TestDSBResident(t *testing.T) {
	fe := frontEnd{dsbSets: 32, dsbWays: 8, dsbLineUops: 6}

	// 4 instructions × 4 bytes × 1 µop in one window: 1 way — resident.
	if !fe.dsbResident([]int{0, 4, 8, 12, 16}, []int{1, 1, 1, 1}) {
		t.Error("small body should be DSB-resident")
	}

	// One 32-byte window holding 19 µops needs ceil(19/6) = 4 > 3 ways:
	// the window is MITE-only, so the body is not resident.
	if fe.dsbResident([]int{0, 8, 16, 24, 32}, []int{5, 5, 5, 4}) {
		t.Error("19 µops in one window should overflow the 3-way window limit")
	}
	// 18 µops is exactly 3 ways — still resident.
	if !fe.dsbResident([]int{0, 8, 16, 24, 32}, []int{5, 5, 5, 3}) {
		t.Error("18 µops in one window should fit exactly 3 ways")
	}

	// Set-conflict overflow: windows 32 apart in units of 32 bytes map to
	// the same set with dsbSets=1; 3 windows × 3 ways = 9 > 8 ways.
	one := frontEnd{dsbSets: 1, dsbWays: 8, dsbLineUops: 6}
	offs := []int{0, 32, 64, 96}
	if one.dsbResident(offs, []int{18, 18, 18}) {
		t.Error("9 ways into one set should overflow dsbWays=8")
	}
	if !one.dsbResident(offs, []int{18, 18, 12}) {
		t.Error("8 ways into one set should fit dsbWays=8")
	}

	// The empty body is never resident.
	if fe.dsbResident([]int{0}, nil) {
		t.Error("empty body should not be DSB-resident")
	}
}

// TestPredecodeWindows: iteration 0 retires one 16-byte predecode window
// per cycle — an instruction is not decodable before the window holding
// its last byte.
func TestPredecodeWindows(t *testing.T) {
	cpu := uarch.Skylake()
	// Eight 8-byte single-µop instructions: bytes 0..63, so windows 0..3.
	items := feTestItems(
		[3]int{8, 1, 0}, [3]int{8, 1, 0}, [3]int{8, 1, 0}, [3]int{8, 1, 0},
		[3]int{8, 1, 0}, [3]int{8, 1, 0}, [3]int{8, 1, 0}, [3]int{8, 1, 0},
	)
	ready, _ := runModeledFetch(cpu, items, len(items))
	// Instruction k spans bytes [8k, 8k+8): its last byte sits in window
	// (8k+7)/16, which lower-bounds its decode cycle; the 4-wide decode
	// group never binds here because the window cap admits only 2/cycle.
	// All 64 body bytes share one I-cache line, whose cold miss stalls
	// every instruction by MissPenalty.
	for k := range items {
		want := uint64((8*k+7)/16) + uint64(cpu.MissPenalty)
		if ready[k] != want {
			t.Errorf("inst %d ready at %d, want %d (predecode window)", k, ready[k], want)
		}
	}
}

// TestLCPStall: a length-changing prefix restarts the predecoder, pushing
// the carrying instruction and everything after it by LCPStall cycles,
// cumulatively per LCP.
func TestLCPStall(t *testing.T) {
	cpu := uarch.Skylake()
	plain := feTestItems([3]int{4, 1, 0}, [3]int{4, 1, 0}, [3]int{4, 1, 0})
	pref := feTestItems([3]int{4, 1, 0}, [3]int{4, 1, 1}, [3]int{4, 1, 0})
	base, _ := runModeledFetch(cpu, plain, 3)
	got, _ := runModeledFetch(cpu, pref, 3)
	stall := uint64(cpu.FE.LCPStall)
	if got[0] != base[0] {
		t.Errorf("inst before the LCP moved: %d -> %d", base[0], got[0])
	}
	for k := 1; k < 3; k++ {
		if got[k] != base[k]+stall {
			t.Errorf("inst %d ready at %d, want %d+%d", k, got[k], base[k], stall)
		}
	}

	// Two LCPs accumulate.
	two := feTestItems([3]int{4, 1, 1}, [3]int{4, 1, 1}, [3]int{4, 1, 0})
	got2, _ := runModeledFetch(cpu, two, 3)
	if got2[2] != base[2]+2*stall {
		t.Errorf("after two LCPs inst 2 ready at %d, want %d", got2[2], base[2]+2*stall)
	}
}

// TestLSDLockdown: a body whose fused µops fit the LSD streams iterations
// ≥ 1 from the µop queue — every instruction of every later iteration is
// ready at the lock cycle, with no I-cache traffic after iteration 0.
func TestLSDLockdown(t *testing.T) {
	cpu := uarch.Haswell() // LSDSize 56
	body := feTestItems([3]int{4, 1, 0}, [3]int{4, 1, 0}, [3]int{4, 1, 0})
	items := repeatItems(body, 4)
	ready, _ := runModeledFetch(cpu, items, 3)
	lock := ready[2] // last instruction of iteration 0 sets the lock cycle
	for i := 3; i < len(items); i++ {
		if ready[i] != lock {
			t.Errorf("LSD iteration inst %d ready at %d, want lock cycle %d", i, ready[i], lock)
		}
	}

	// Skylake ships with the LSD fused off (SKL150 erratum): the same body
	// is DSB-resident instead, so later iterations advance with the
	// delivery rate rather than pinning to one cycle.
	skl := uarch.Skylake()
	if skl.FE.LSDSize != 0 {
		t.Fatalf("skylake LSDSize = %d, want 0 (erratum)", skl.FE.LSDSize)
	}

	// A body over the LSD µop budget on Haswell falls back to DSB/MITE:
	// later-iteration ready cycles keep increasing.
	big := make([][3]int, 60)
	for i := range big {
		big[i] = [3]int{4, 1, 0}
	}
	bigItems := repeatItems(feTestItems(big...), 2)
	bready, _ := runModeledFetch(cpu, bigItems, 60)
	if bready[len(bready)-1] == bready[60] {
		t.Error("60-µop body must not lock into the 56-µop LSD")
	}
}

// TestDSBPathAndSwitchPenalty: a DSB-resident (non-LSD) body pays one
// MITE→DSB switch penalty entering iteration 1, then streams at DSBWidth
// fused µops per cycle with no L1I accesses.
func TestDSBPathAndSwitchPenalty(t *testing.T) {
	cpu := uarch.Skylake() // LSD off, DSBWidth 6
	body := feTestItems(
		[3]int{4, 1, 0}, [3]int{4, 1, 0}, [3]int{4, 1, 0},
		[3]int{4, 1, 0}, [3]int{4, 1, 0}, [3]int{4, 1, 0},
	)
	const iters = 4
	items := repeatItems(body, iters)
	ready, ctr := runModeledFetch(cpu, items, len(body))

	// Iteration 0 decoded through MITE; its last instruction's stall-free
	// cycle plus the switch penalty starts iteration 1.
	iterStart := ready[5] + uint64(cpu.FE.SwitchPenalty)
	for it := 1; it < iters; it++ {
		cum := 0
		for k := 0; k < 6; k++ {
			cum += 1
			want := iterStart + uint64((cum-1)/cpu.FE.DSBWidth)
			if got := ready[6*it+k]; got != want {
				t.Errorf("iter %d inst %d ready at %d, want %d", it, k, got, want)
			}
		}
		// 6 fused µops at width 6 deliver in one cycle; the next iteration
		// starts where this one's last instruction left off.
		iterStart = ready[6*it+5]
	}

	// The body spans 24 bytes = one L1I line: exactly one cold miss, on
	// iteration 0 — DSB iterations never touch the I-cache.
	if ctr.L1IMisses != 1 {
		t.Errorf("L1I misses = %d, want 1 (DSB iterations bypass the I-cache)", ctr.L1IMisses)
	}
}

// TestModeledFetchMonotone: ready cycles never decrease in program order,
// whatever mix of paths the iterations take.
func TestModeledFetchMonotone(t *testing.T) {
	for _, cpu := range uarch.Extended() {
		body := feTestItems(
			[3]int{7, 2, 1}, [3]int{3, 1, 0}, [3]int{11, 4, 0},
			[3]int{2, 1, 1}, [3]int{9, 1, 0},
		)
		items := repeatItems(body, 8)
		ready, _ := runModeledFetch(cpu, items, len(body))
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[i-1] {
				t.Fatalf("%s: ready[%d]=%d < ready[%d]=%d", cpu.Name, i, ready[i], i-1, ready[i-1])
			}
		}
	}
}
