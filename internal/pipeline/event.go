package pipeline

import (
	"math"
	"sync"

	"bhive/internal/cache"
	"bhive/internal/uarch"
)

// This file is the event-driven scheduler: the default simulation core.
// It computes bit-identical Counters to the reference cycle-by-cycle loop
// in pipeline.go (selected with Config.Reference and cross-checked by
// FuzzSimulateEquivalence) but replaces the two per-cycle O(state) scans —
// the reservation-station walk and the retire-readiness walk — with a
// completion heap plus per-µop dependence counters, and skips runs of
// cycles in which nothing can happen.
//
// The determinism argument: every per-cycle decision in the reference loop
// compares a precomputed threshold against the current cycle — µop
// completion times (doneAt), fetch availability (fetchReady), port
// busy-until times (portBusy), and the context-switch arrival
// (nextSwitch). If a cycle makes no progress (nothing retires, allocates,
// or issues), no state changes, so every following cycle is identical
// until the earliest of those thresholds; jumping the clock straight
// there is unobservable. Cycles in which progress *does* happen advance
// by exactly one, because the per-cycle budgets (retire width, issue
// width, one µop per port) reset on cycle boundaries. RNG draw order is
// preserved because draws happen only when a switch fires, and the skip
// target never jumps past nextSwitch.

// Completion-heap entries pack (doneAt << heapIDBits) | µop id, so the
// min-heap orders by completion time, ties by age. doneAt stays below
// maxCycles plus a few hundred cycles of latency (< 2^38) and µop ids are
// bounded by exec's step cap times a handful of µops each (< 2^26), so
// the packing is exact.
const (
	heapIDBits = 26
	heapIDMask = 1<<heapIDBits - 1
)

// eventState holds the per-simulation mutable state of the event-driven
// scheduler; the immutable structure lives in the Graph. Pooled, so the
// steady-state path performs no heap allocation.
type eventState struct {
	fetchReady   []uint64
	doneAt       []uint64 // per µop; MaxUint64 until issued
	pending      []int32  // per µop: producers not yet completed
	itemRemain   []int32  // per item: µops not yet completed
	itemAlloc    []bool
	storeRetired []bool
	ready        []int32  // allocated µops with pending == 0, sorted by id
	newReady     []int32  // became ready during a completion drain
	mergeBuf     []int32
	heap         []uint64 // completion min-heap (packed)
	portBusy     []uint64
	portUse      []bool
}

var eventPool = sync.Pool{New: func() any { return new(eventState) }}

// SimulateGraph times a prebuilt µop graph on the CPU and returns the
// counters. It is the graph-accepting form of Simulate: the caller builds
// the Graph once per prepared program and reuses it across warm-up, both
// unroll factors (via Graph.Slice), and every acceptance sample. l1i and
// l1d carry cache state across calls exactly as in Simulate.
func SimulateGraph(cpu *uarch.CPU, g *Graph, l1i, l1d *cache.Cache, cfg Config) Counters {
	st := eventPool.Get().(*eventState)
	defer eventPool.Put(st)
	return st.run(cpu, g, l1i, l1d, cfg)
}

func (s *eventState) run(cpu *uarch.CPU, g *Graph, l1i, l1d *cache.Cache, cfg Config) Counters {
	var ctr Counters
	n := g.numItems
	ctr.Instructions = uint64(n)
	if n == 0 {
		return ctr
	}
	nu := g.numUops
	ctr.Uops = uint64(nu)

	s.fetchReady = grow(s.fetchReady, n)
	fetchReady := s.fetchReady
	if cfg.ModeledFrontEnd {
		modeledFetch(cpu, feGraph{g}, cfg.LoopBody, l1i, &ctr, fetchReady)
	} else {
		simulateFetchGraph(cpu, g, l1i, &ctr, fetchReady)
	}

	s.doneAt = grow(s.doneAt, nu)
	s.pending = grow(s.pending, nu)
	doneAt, pending := s.doneAt, s.pending
	for id := 0; id < nu; id++ {
		doneAt[id] = math.MaxUint64
		pending[id] = g.depHi[id] - g.depLo[id]
	}
	s.itemRemain = grow(s.itemRemain, n)
	s.itemAlloc = grow(s.itemAlloc, n)
	itemRemain, itemAlloc := s.itemRemain, s.itemAlloc
	for i := 0; i < n; i++ {
		itemRemain[i] = g.itemFirstUop[i+1] - g.itemFirstUop[i]
		itemAlloc[i] = false
	}
	s.storeRetired = grow(s.storeRetired, g.numStores)
	storeRetired := s.storeRetired
	for i := range storeRetired {
		storeRetired[i] = false
	}
	s.ready = s.ready[:0]
	s.newReady = s.newReady[:0]
	s.heap = s.heap[:0]
	s.portBusy = grow(s.portBusy, cpu.NumPorts)
	s.portUse = grow(s.portUse, cpu.NumPorts)
	portBusy, portUse := s.portBusy, s.portUse
	for p := range portBusy {
		portBusy[p] = 0
	}

	// Context-switch schedule — same draw as the reference loop.
	drawSwitch := func(now uint64) uint64 {
		if cfg.SwitchRate <= 0 || cfg.Rand == nil {
			return math.MaxUint64
		}
		gap := cfg.Rand.ExpFloat64() / cfg.SwitchRate
		if gap > 1e12 {
			return math.MaxUint64
		}
		return now + uint64(gap) + 1
	}
	nextSwitch := drawSwitch(0)

	var (
		cycle        uint64
		nextAlloc    int
		retired      int
		robUsed      int
		rsUsed       int
		loadBufUsed  int
		storeBufUsed int
	)

	for retired < n && cycle < maxCycles {
		// Context switch: jump the clock, flush caches.
		if cycle >= nextSwitch {
			ctr.ContextSwitches++
			cycle += cfg.SwitchCost
			l1i.Flush()
			l1d.Flush()
			nextSwitch = drawSwitch(cycle)
			continue
		}

		// Process completions whose time has come, before retire/issue
		// look at them — matching the reference's "doneAt <= cycle" tests.
		for len(s.heap) > 0 && s.heap[0]>>heapIDBits <= cycle {
			s.complete(g, int32(heapPop(&s.heap)&heapIDMask))
		}
		if len(s.newReady) > 0 {
			s.mergeReady()
		}

		progress := false

		// Retire (in order, RetireWidth fused µops per cycle).
		retireBudget := cpu.RetireWidth
		for retired < n && retireBudget > 0 {
			i := retired
			if !itemAlloc[i] || itemRemain[i] > 0 {
				break
			}
			f := int(g.itemFused[i])
			if f > retireBudget && retireBudget < cpu.RetireWidth {
				break // finish next cycle
			}
			retireBudget -= f
			robUsed -= f
			if g.itemLoad[i] >= 0 {
				loadBufUsed--
			}
			if si := g.itemStore[i]; si >= 0 {
				// Commit the store to the cache.
				st := &g.stores[si]
				misses, split := l1d.AccessRange(st.phys, int(st.size))
				ctr.L1DWriteMisses += uint64(misses)
				if split {
					ctr.MisalignedStores++
				}
				storeRetired[si] = true
				storeBufUsed--
			}
			retired++
			progress = true
		}

		// Allocate (in order, IssueWidth fused µops per cycle).
		allocBudget := cpu.IssueWidth
		for nextAlloc < n && allocBudget > 0 {
			if fetchReady[nextAlloc] > cycle {
				break
			}
			f := int(g.itemFused[nextAlloc])
			if f > allocBudget {
				break
			}
			first, next := g.itemFirstUop[nextAlloc], g.itemFirstUop[nextAlloc+1]
			nExec := int(next - first)
			if robUsed+f > cpu.ROBSize || rsUsed+nExec > cpu.RSSize {
				break
			}
			hasLoad := g.itemLoad[nextAlloc] >= 0
			hasStore := g.itemStore[nextAlloc] >= 0
			if hasLoad && loadBufUsed+1 > cpu.LoadBufs {
				break
			}
			if hasStore && storeBufUsed+1 > cpu.StoreBufs {
				break
			}
			allocBudget -= f
			robUsed += f
			rsUsed += nExec
			if hasLoad {
				loadBufUsed++
			}
			if hasStore {
				storeBufUsed++
			}
			itemAlloc[nextAlloc] = true
			for id := first; id < next; id++ {
				if pending[id] == 0 {
					// Allocation is in µop-id order, so appending keeps
					// the ready list sorted.
					s.ready = append(s.ready, id)
				}
			}
			nextAlloc++
			progress = true
		}

		// Issue (oldest first, one µop per port per cycle). The ready list
		// holds exactly the allocated µops whose producers have completed,
		// in age order — the subset of the reference's reservation-station
		// scan that can possibly issue.
		for p := range portUse {
			portUse[p] = false
		}
		ready := s.ready
		w := 0
		for idx := 0; idx < len(ready); idx++ {
			id := ready[idx]
			spec := &g.uopSpec[id]
			if spec.Class == uarch.ClassLoad && s.loadBlockedG(g, id, cycle) {
				ready[w] = id
				w++
				continue
			}
			// Find a free allowed port (least-loaded heuristic: first free).
			port := -1
			for p := 0; p < cpu.NumPorts; p++ {
				if spec.Ports.Has(p) && !portUse[p] && portBusy[p] <= cycle {
					port = p
					break
				}
			}
			if port < 0 {
				ready[w] = id
				w++
				continue
			}
			portUse[port] = true
			ctr.PortUops[port]++
			if spec.Occupancy > 0 {
				portBusy[port] = cycle + uint64(spec.Occupancy)
			}
			lat := uint64(spec.Lat)
			if spec.Class == uarch.ClassLoad {
				lat += s.loadExecuteG(g, id, l1d, &ctr, cpu)
			}
			rsUsed--
			doneAt[id] = cycle + lat
			if lat == 0 {
				// Zero-latency µop (none exist in the shipped parameter
				// files, but keep the reference semantics): the reference
				// scan lets its same-cycle consumers — always younger —
				// issue later in this very pass, so complete it now and
				// splice newly-ready consumers into the unvisited tail.
				s.completeInline(g, id, idx, &ready)
			} else {
				heapPush(&s.heap, doneAt[id]<<heapIDBits|uint64(id))
			}
			progress = true
		}
		s.ready = ready[:w]

		if progress {
			cycle++
			continue
		}

		// Nothing happened: jump to the earliest cycle at which anything
		// can. Candidates are the thresholds the per-cycle checks compare
		// against; nextSwitch bounds the jump so the RNG draw sequence is
		// untouched.
		next := nextSwitch
		if len(s.heap) > 0 {
			if at := s.heap[0] >> heapIDBits; at < next {
				next = at
			}
		}
		if nextAlloc < n {
			if fr := fetchReady[nextAlloc]; fr > cycle && fr < next {
				next = fr
			}
		}
		for p := 0; p < cpu.NumPorts; p++ {
			if b := portBusy[p]; b > cycle && b < next {
				next = b
			}
		}
		if next > maxCycles {
			// Deadlock or far-future event: the reference spins to the
			// cycle cap one cycle at a time; land exactly there.
			next = maxCycles
		}
		cycle = next
	}

	ctr.Cycles = cycle
	return ctr
}

// complete processes one µop completion: its item is one µop closer to
// retirement, and consumers with no remaining producers become ready.
// Consumer edges can point past a prefix slice's scope and are skipped.
func (s *eventState) complete(g *Graph, id int32) {
	s.itemRemain[g.uopItem[id]]--
	for _, c := range g.cons[g.consLo[id]:g.consHi[id]] {
		if int(c) >= g.numUops {
			continue
		}
		if s.pending[c]--; s.pending[c] == 0 && s.itemAlloc[g.uopItem[c]] {
			s.newReady = append(s.newReady, c)
		}
	}
}

// completeInline is complete for a µop that finished in its own issue
// cycle (lat 0): newly-ready consumers are spliced directly into the
// unvisited tail of the ready list so the current issue pass still visits
// them, exactly as the reference reservation-station scan would.
func (s *eventState) completeInline(g *Graph, id int32, idx int, ready *[]int32) {
	s.itemRemain[g.uopItem[id]]--
	for _, c := range g.cons[g.consLo[id]:g.consHi[id]] {
		if int(c) >= g.numUops {
			continue
		}
		if s.pending[c]--; s.pending[c] == 0 && s.itemAlloc[g.uopItem[c]] {
			r := *ready
			pos := idx + 1
			for pos < len(r) && r[pos] < c {
				pos++
			}
			r = append(r, 0)
			copy(r[pos+1:], r[pos:])
			r[pos] = c
			*ready = r
		}
	}
}

// mergeReady folds the (unsorted) completion-drain arrivals into the
// sorted ready list.
func (s *eventState) mergeReady() {
	nr := s.newReady
	// Insertion sort: completions pop in (time, id) order, so arrivals are
	// short and nearly sorted.
	for i := 1; i < len(nr); i++ {
		for j := i; j > 0 && nr[j-1] > nr[j]; j-- {
			nr[j-1], nr[j] = nr[j], nr[j-1]
		}
	}
	r := s.ready
	buf := s.mergeBuf[:0]
	i, j := 0, 0
	for i < len(r) && j < len(nr) {
		if r[i] < nr[j] {
			buf = append(buf, r[i])
			i++
		} else {
			buf = append(buf, nr[j])
			j++
		}
	}
	buf = append(buf, r[i:]...)
	buf = append(buf, nr[j:]...)
	s.ready, s.mergeBuf = buf, r[:0]
	s.newReady = nr[:0]
}

// loadBlockedG mirrors loadBlocked on the graph representation.
func (s *eventState) loadBlockedG(g *Graph, loadID int32, cycle uint64) bool {
	item := g.uopItem[loadID]
	ld := &g.loads[g.itemLoad[item]]
	for si := len(g.stores) - 1; si >= 0; si-- {
		st := &g.stores[si]
		if st.item >= item {
			continue
		}
		if s.storeRetired[si] {
			break // all older stores at or before this one are committed
		}
		if !overlaps(ld.addr, int(ld.size), st.addr, int(st.size)) {
			continue
		}
		if contains(st.addr, int(st.size), ld.addr, int(ld.size)) {
			// Forwardable once the store data is ready.
			if st.dataUop >= 0 && s.doneAt[st.dataUop] > cycle {
				return true
			}
			return false
		}
		// Partial overlap: wait for commit.
		return true
	}
	return false
}

// loadExecuteG mirrors loadExecute on the graph representation.
func (s *eventState) loadExecuteG(g *Graph, loadID int32, l1d *cache.Cache, ctr *Counters, cpu *uarch.CPU) (extra uint64) {
	item := g.uopItem[loadID]
	ld := &g.loads[g.itemLoad[item]]

	// Store-to-load forwarding?
	for si := len(g.stores) - 1; si >= 0; si-- {
		st := &g.stores[si]
		if st.item >= item {
			continue
		}
		if s.storeRetired[si] {
			break
		}
		if contains(st.addr, int(st.size), ld.addr, int(ld.size)) {
			return uint64(cpu.FwdLatency - cpu.L1DLatency + 1)
		}
		if overlaps(ld.addr, int(ld.size), st.addr, int(st.size)) {
			break
		}
	}

	misses, split := l1d.AccessRange(ld.phys, int(ld.size))
	if misses > 0 {
		ctr.L1DReadMisses += uint64(misses)
		extra += uint64(cpu.MissPenalty)
	}
	if split {
		ctr.MisalignedLoads++
		extra += uint64(cpu.SplitPenalty)
	}
	return extra
}

// simulateFetchGraph mirrors simulateFetch on the graph representation.
func simulateFetchGraph(cpu *uarch.CPU, g *Graph, l1i *cache.Cache, ctr *Counters, ready []uint64) {
	var bytes uint64  // total code bytes fetched
	var stalls uint64 // accumulated I-cache miss cycles
	lastLine := uint64(math.MaxUint64)
	for i := 0; i < g.numItems; i++ {
		first := g.codePhys[i] / uint64(cpu.LineSize)
		last := (g.codePhys[i] + uint64(g.codeLen[i]) - 1) / uint64(cpu.LineSize)
		for line := first; line <= last; line++ {
			if line == lastLine {
				continue
			}
			lastLine = line
			if !l1i.Access(line * uint64(cpu.LineSize)) {
				ctr.L1IMisses++
				stalls += uint64(cpu.MissPenalty)
			}
		}
		bytes += uint64(g.codeLen[i])
		ready[i] = bytes/16 + stalls
	}
}

// heapPush adds a packed entry to the completion min-heap.
func heapPush(h *[]uint64, v uint64) {
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

// heapPop removes and returns the minimum packed entry.
func heapPop(h *[]uint64) uint64 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && s[r] < s[l] {
			m = r
		}
		if s[i] <= s[m] {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
