//go:build race

package pipeline

// The race detector instruments allocations and makes sync.Pool drop
// items at random, so allocation-count guards are meaningless under it.
const raceEnabled = true
