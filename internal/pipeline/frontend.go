package pipeline

import (
	"math"

	"bhive/internal/cache"
	"bhive/internal/uarch"
)

// This file is the modeled decode front end (Config.ModeledFrontEnd): a
// uiCA-style replacement for the 16-bytes-per-cycle fetch approximation in
// simulateFetch. It fills the same fetchReady array — the cycle each
// instruction becomes available for allocation — so the back end of both
// schedulers is untouched, and it is shared by the reference and
// event-driven paths (one implementation over a small item source), which
// makes their equivalence in modeled mode hold by construction. The legacy
// fetch functions are deliberately left duplicated and untouched so the
// default mode stays bit-identical to the pre-front-end simulator.
//
// The model treats the item sequence as iterations of a basic block of
// Config.LoopBody instructions (the profiler's unrolled program) and picks
// a delivery path per iteration:
//
//   - Iteration 0 always decodes through the legacy pipeline (MITE):
//     the predecoder retires one 16-byte window per cycle and restarts on
//     length-changing prefixes; decode groups are DecodeWidth wide with
//     multi-µop instructions restricted to the leading (complex) decoder.
//   - If the body's fused µops fit the loop stream detector, iterations
//     ≥ 1 stream from the µop queue: no front-end constraint at all.
//   - Otherwise, if every 32-byte window of the body fits the DSB
//     capacity model, iterations ≥ 1 stream from the µop cache at
//     DSBWidth fused µops per cycle, after one MITE→DSB switch penalty.
//   - Otherwise every iteration pays the MITE path again.
//
// Instruction-cache misses are modeled exactly as in the legacy front end
// (counted, and each adding MissPenalty stall cycles), but only on
// MITE iterations — a DSB or LSD hit does not fetch from the L1I.

// feSource abstracts the per-item fields the front end needs, so one
// implementation serves the reference scheduler (items) and the
// event-driven one (graph arenas).
type feSource interface {
	feLen() int
	// feAt returns the instruction's physical code address and length,
	// its fused-domain µop count, and whether it carries a
	// length-changing prefix.
	feAt(i int) (phys uint64, clen int, fused int, lcp bool)
}

// feItems adapts a prepared item slice.
type feItems []Item

func (s feItems) feLen() int { return len(s) }
func (s feItems) feAt(i int) (uint64, int, int, bool) {
	it := &s[i]
	return it.CodePhys, it.CodeLen, it.Desc.FusedUops, it.LCP
}

// feGraph adapts a built µop graph.
type feGraph struct{ g *Graph }

func (s feGraph) feLen() int { return s.g.numItems }
func (s feGraph) feAt(i int) (uint64, int, int, bool) {
	g := s.g
	return g.codePhys[i], int(g.codeLen[i]), int(g.itemFused[i]), g.lcp[i]
}

// frontEnd is the resolved parameter set, with defensive defaults for a
// CPU whose FrontEnd block was left zero.
type frontEnd struct {
	decodeWidth   int
	lcpStall      uint64
	dsbWidth      int
	dsbSets       int
	dsbWays       int
	dsbLineUops   int
	lsdSize       int
	switchPenalty uint64
}

func feParams(cpu *uarch.CPU) frontEnd {
	fe := frontEnd{
		decodeWidth:   cpu.FE.DecodeWidth,
		lcpStall:      uint64(cpu.FE.LCPStall),
		dsbWidth:      cpu.FE.DSBWidth,
		dsbSets:       cpu.FE.DSBSets,
		dsbWays:       cpu.FE.DSBWays,
		dsbLineUops:   cpu.FE.DSBLineUops,
		lsdSize:       cpu.FE.LSDSize,
		switchPenalty: uint64(cpu.FE.SwitchPenalty),
	}
	if fe.decodeWidth <= 0 {
		fe.decodeWidth = 4
	}
	if fe.dsbWidth <= 0 {
		fe.dsbWidth = cpu.IssueWidth
	}
	if fe.dsbLineUops <= 0 {
		fe.dsbLineUops = 6
	}
	if fe.dsbSets <= 0 {
		fe.dsbSets = 32
	}
	if fe.dsbWays <= 0 {
		fe.dsbWays = 8
	}
	return fe
}

// dsbWindowWays is the maximum number of µop-cache ways one 32-byte code
// window may occupy; a window needing more is MITE-only, which in this
// whole-block residency model demotes the whole body.
const dsbWindowWays = 3

// dsbResident reports whether a body whose instruction k starts at byte
// offset offs[k] (offs has a final end-offset sentinel) and decodes to
// fused[k] fused µops fits the DSB capacity model: per 32-byte window at
// most dsbWindowWays lines of dsbLineUops µops, and per cache set at most
// dsbWays lines across the windows that map to it.
func (fe *frontEnd) dsbResident(offs []int, fused []int) bool {
	if len(fused) == 0 {
		return false
	}
	nWin := (offs[len(offs)-1]-1)/32 + 1
	winUops := make([]int, nWin)
	for k, f := range fused {
		winUops[offs[k]/32] += f
	}
	setWays := make(map[int]int, nWin)
	for w, u := range winUops {
		ways := (u + fe.dsbLineUops - 1) / fe.dsbLineUops
		if ways > dsbWindowWays {
			return false
		}
		set := w % fe.dsbSets
		if setWays[set] += ways; setWays[set] > fe.dsbWays {
			return false
		}
	}
	return true
}

// decoder assigns instructions to legacy decode groups: decodeWidth
// instructions per cycle, with multi-µop (complex) instructions only in
// the leading slot. assign returns the stall-free cycle the instruction
// decodes in, given the cycle its bytes leave the predecoder.
type decoder struct {
	fe    *frontEnd
	cycle uint64 // group currently being filled
	slots int
}

func (d *decoder) reset(start uint64) { d.cycle, d.slots = start, 0 }

func (d *decoder) assign(pre uint64, cplx bool) uint64 {
	if d.slots >= d.fe.decodeWidth || (cplx && d.slots > 0) {
		d.cycle++
		d.slots = 0
	}
	if pre > d.cycle {
		d.cycle = pre
		d.slots = 0
	}
	d.slots++
	return d.cycle
}

// modeledFetch fills ready (len n) with allocation-availability cycles
// under the modeled front end. body is Config.LoopBody clamped to [1, n].
func modeledFetch(cpu *uarch.CPU, src feSource, body int, l1i *cache.Cache, ctr *Counters, ready []uint64) {
	n := src.feLen()
	if n == 0 {
		return
	}
	if body <= 0 || body > n {
		body = n
	}
	fe := feParams(cpu)

	// Static body metadata, from iteration 0's instructions. Offsets are
	// cumulative code bytes from the body start — the layout every
	// iteration repeats.
	offs := make([]int, body+1)
	fused := make([]int, body)
	lcp := make([]bool, body)
	bodyFused := 0
	for k := 0; k < body; k++ {
		_, clen, f, lc := src.feAt(k)
		offs[k+1] = offs[k] + clen
		fused[k] = f
		lcp[k] = lc
		bodyFused += f
	}
	lsd := fe.lsdSize > 0 && bodyFused <= fe.lsdSize
	resident := fe.dsbResident(offs, fused)

	var (
		stalls   uint64 // accumulated I-cache miss penalty cycles
		lastLine = uint64(math.MaxUint64)
		lastSF   uint64 // stall-free delivery cycle of the previous inst
		lock     uint64 // LSD lock-down cycle (set after iteration 0)
		dec      = decoder{fe: &fe}
	)

	i := 0
	for iter := 0; i < n; iter++ {
		end := min(i+body, n)
		if iter >= 1 && lsd {
			// LSD lock-down: the body streams from the µop queue; the
			// only remaining limit is allocation width, which the back
			// end applies itself.
			for ; i < end; i++ {
				ready[i] = lock
			}
			continue
		}
		iterStart := lastSF
		mite := iter == 0 || !resident
		if iter == 1 && resident {
			iterStart += fe.switchPenalty // MITE→DSB delivery switch
		}
		if mite {
			dec.reset(iterStart)
			var lcpCum uint64
			for k := 0; i < end; i, k = i+1, k+1 {
				phys, clen, f, _ := src.feAt(i)
				// The MITE path fetches from the L1I, exactly as the
				// legacy front end models it.
				first := phys / uint64(cpu.LineSize)
				last := (phys + uint64(clen) - 1) / uint64(cpu.LineSize)
				for line := first; line <= last; line++ {
					if line == lastLine {
						continue
					}
					lastLine = line
					if !l1i.Access(line * uint64(cpu.LineSize)) {
						ctr.L1IMisses++
						stalls += uint64(cpu.MissPenalty)
					}
				}
				if lcp[k] {
					lcpCum += fe.lcpStall
				}
				// Predecode: one 16-byte window per cycle; the
				// instruction is available once the window holding its
				// last byte retires, delayed by LCP restarts so far.
				pre := iterStart + uint64((offs[k]+clen-1)/16) + lcpCum
				d := dec.assign(pre, f > 1)
				if d < lastSF {
					d = lastSF
				}
				lastSF = d
				ready[i] = d + stalls
			}
		} else {
			// DSB hit: deliver the body's fused µops at dsbWidth per
			// cycle, no L1I fetch.
			cum := 0
			for k := 0; i < end; i, k = i+1, k+1 {
				cum += fused[k]
				d := iterStart
				if cum > 0 {
					d += uint64((cum - 1) / fe.dsbWidth)
				}
				if d < lastSF {
					d = lastSF
				}
				lastSF = d
				ready[i] = d + stalls
			}
		}
		if iter == 0 {
			lock = lastSF + stalls
		}
	}
}
