package pipeline

import (
	"bhive/internal/uarch"
)

// loadSpec is the immutable description of one item's load access.
type loadSpec struct {
	addr uint64
	phys uint64
	size int32
}

// storeSpec is the immutable description of one item's store: its address
// for forwarding checks, its physical address for retirement commit, and
// the µop that produces the store data (-1 if none).
type storeSpec struct {
	item    int32
	addr    uint64
	phys    uint64
	size    int32
	dataUop int32
}

// Graph is the prepare-once µop dependence graph of an item sequence: the
// rename-time analysis (zero idioms, move elimination, register dependence
// edges, store/load records, subnormal penalties) performed once and
// shared by every Simulate call over the same prepared program. It is
// immutable after Build; all per-simulation state lives in the scheduler's
// scratch. A Graph obtained from Slice shares the arenas of its parent —
// neither may be mutated while the other is in use.
//
// The graph mirrors the dependence construction of the reference
// cycle-by-cycle loop ((*SimScratch).simulate) exactly; the two builds are
// deliberately independent so FuzzSimulateEquivalence cross-checks them.
type Graph struct {
	numItems  int
	numUops   int // µops in scope (a prefix slice trims this)
	numStores int // stores in scope

	// Per-µop arrays. deps is the forward dependence-edge arena indexed by
	// depLo/depHi; cons is the reverse (consumer) arena indexed by
	// consLo/consHi. Consumer edges may point past numUops on a prefix
	// slice and must be ignored there.
	uopItem []int32
	uopSpec []uarch.Uop
	depLo   []int32
	depHi   []int32
	deps    []int32
	consLo  []int32
	consHi  []int32
	cons    []int32

	// Per-item arrays (itemFirstUop and storePrefix carry one sentinel).
	itemFirstUop []int32
	itemFused    []int32
	itemLoad     []int32 // index into loads, -1 if none
	itemStore    []int32 // index into stores, -1 if none
	storePrefix  []int32 // stores among items [0, i)
	codePhys     []uint64
	codeLen      []int32
	lcp          []bool // length-changing prefix (modeled front end)

	loads  []loadSpec
	stores []storeSpec
}

// NumItems returns the number of items in scope.
func (g *Graph) NumItems() int { return g.numItems }

// Slice returns a prefix view of the first n items, sharing every arena
// with g. The profiler uses this to derive the low-unroll graph from the
// high-unroll one: the low-factor program is a prefix of the same prepared
// code, so its dependence graph is a prefix of the same prepared graph.
func (g *Graph) Slice(n int) *Graph {
	if n < 0 || n > g.numItems {
		n = g.numItems
	}
	out := *g
	out.numItems = n
	out.numUops = int(g.itemFirstUop[n])
	out.numStores = int(g.storePrefix[n])
	return out.shrink()
}

// shrink returns g with the per-item and per-µop slice headers trimmed to
// the in-scope lengths, so range loops stay in bounds without per-element
// scope checks. The consumer arena is left full-length: reverse edges are
// indexed per-µop and filtered against numUops at use.
func (g *Graph) shrink() *Graph {
	n, u := g.numItems, g.numUops
	out := *g
	out.uopItem = g.uopItem[:u]
	out.uopSpec = g.uopSpec[:u]
	out.depLo = g.depLo[:u]
	out.depHi = g.depHi[:u]
	out.consLo = g.consLo[:u]
	out.consHi = g.consHi[:u]
	out.itemFirstUop = g.itemFirstUop[:n+1]
	out.itemFused = g.itemFused[:n]
	out.itemLoad = g.itemLoad[:n]
	out.itemStore = g.itemStore[:n]
	out.storePrefix = g.storePrefix[:n+1]
	out.codePhys = g.codePhys[:n]
	out.codeLen = g.codeLen[:n]
	out.lcp = g.lcp[:n]
	out.stores = g.stores[:g.numStores]
	return &out
}

// Build populates g from the item sequence, reusing g's arenas. The
// dependence construction is the same rename-time pass the reference
// scheduler performs inline: zero idioms break dependences and issue no
// µops, eliminated moves alias the destination to the source's producer,
// loads feed address generation into computation, stores split into
// address and data µops, and subnormal FP work takes the microcode-assist
// penalty on both latency and port occupancy.
func (g *Graph) Build(cpu *uarch.CPU, items []Item) {
	n := len(items)
	g.numItems = n
	g.uopItem = g.uopItem[:0]
	g.uopSpec = g.uopSpec[:0]
	g.depLo = g.depLo[:0]
	g.depHi = g.depHi[:0]
	g.deps = g.deps[:0]
	g.loads = g.loads[:0]
	g.stores = g.stores[:0]
	g.itemFirstUop = grow(g.itemFirstUop, n+1)
	g.itemFused = grow(g.itemFused, n)
	g.itemLoad = grow(g.itemLoad, n)
	g.itemStore = grow(g.itemStore, n)
	g.storePrefix = grow(g.storePrefix, n+1)
	g.codePhys = grow(g.codePhys, n)
	g.codeLen = grow(g.codeLen, n)
	g.lcp = grow(g.lcp, n)

	var lastWriter [NumRegs]int32
	for i := range lastWriter {
		lastWriter[i] = -1
	}

	for i := range items {
		it := &items[i]
		g.itemFirstUop[i] = int32(len(g.uopSpec))
		g.storePrefix[i] = int32(len(g.stores))
		g.itemFused[i] = int32(it.Desc.FusedUops)
		g.codePhys[i] = it.CodePhys
		g.codeLen[i] = int32(it.CodeLen)
		g.lcp[i] = it.LCP
		g.itemLoad[i] = -1
		g.itemStore[i] = -1
		if it.Load != nil {
			g.itemLoad[i] = int32(len(g.loads))
			g.loads = append(g.loads, loadSpec{
				addr: it.Load.Addr, phys: it.Load.Phys, size: int32(it.Load.Size),
			})
		}

		if it.Desc.ZeroIdiom {
			for _, w := range it.Writes {
				lastWriter[w] = -1 // dependency-breaking
			}
			continue
		}
		if it.Desc.EliminatedMove {
			src := int32(-1)
			if len(it.DataReads) > 0 {
				src = lastWriter[it.DataReads[0]]
			}
			for _, w := range it.Writes {
				lastWriter[w] = src
			}
			continue
		}

		addrDeps := func() {
			for _, r := range it.AddrReads {
				if p := lastWriter[r]; p >= 0 {
					g.deps = append(g.deps, p)
				}
			}
		}
		dataDeps := func() {
			for _, r := range it.DataReads {
				if p := lastWriter[r]; p >= 0 {
					g.deps = append(g.deps, p)
				}
			}
		}

		var loadUop, lastCompute int32 = -1, -1
		for k := range it.Desc.Uops {
			spec := it.Desc.Uops[k]
			id := int32(len(g.uopSpec))
			depLo := int32(len(g.deps))
			switch spec.Class {
			case uarch.ClassLoad:
				addrDeps()
				loadUop = id
			case uarch.ClassStoreAddr:
				addrDeps()
			case uarch.ClassStoreData:
				if lastCompute >= 0 {
					g.deps = append(g.deps, lastCompute)
				} else {
					dataDeps()
					if loadUop >= 0 {
						g.deps = append(g.deps, loadUop)
					}
				}
			default: // computation
				dataDeps()
				if loadUop >= 0 {
					g.deps = append(g.deps, loadUop)
				}
				if lastCompute >= 0 {
					// Multi-µop instructions chain internally.
					g.deps = append(g.deps, lastCompute)
				}
				if it.Subnormal && it.Desc.FP {
					pen := uint8(min(250, cpu.SubnormalPenalty))
					spec.Lat += pen
					if spec.Occupancy < pen {
						spec.Occupancy = pen
					}
				}
				lastCompute = id
			}
			g.uopItem = append(g.uopItem, int32(i))
			g.uopSpec = append(g.uopSpec, spec)
			g.depLo = append(g.depLo, depLo)
			g.depHi = append(g.depHi, int32(len(g.deps)))
		}

		producer := lastCompute
		if producer < 0 {
			producer = loadUop
		}
		for _, w := range it.Writes {
			lastWriter[w] = producer
		}

		if it.Store != nil {
			var dataUop int32 = -1
			for k := range it.Desc.Uops {
				if it.Desc.Uops[k].Class == uarch.ClassStoreData {
					dataUop = g.itemFirstUop[i] + int32(k)
				}
			}
			g.itemStore[i] = int32(len(g.stores))
			g.stores = append(g.stores, storeSpec{
				item: int32(i), addr: it.Store.Addr, phys: it.Store.Phys,
				size: int32(it.Store.Size), dataUop: dataUop,
			})
		}
	}
	g.itemFirstUop[n] = int32(len(g.uopSpec))
	g.storePrefix[n] = int32(len(g.stores))
	g.numUops = len(g.uopSpec)
	g.numStores = len(g.stores)

	g.buildConsumers()
}

// buildConsumers derives the reverse (producer → consumers) adjacency from
// the forward edges with a counting sort over the deps arena.
func (g *Graph) buildConsumers() {
	nu := g.numUops
	g.consLo = grow(g.consLo, nu)
	g.consHi = grow(g.consHi, nu)
	g.cons = grow(g.cons, len(g.deps))
	for u := 0; u < nu; u++ {
		g.consHi[u] = 0
	}
	for _, d := range g.deps {
		g.consHi[d]++
	}
	off := int32(0)
	for u := 0; u < nu; u++ {
		g.consLo[u] = off
		off += g.consHi[u]
		g.consHi[u] = g.consLo[u]
	}
	for u := 0; u < nu; u++ {
		for _, d := range g.deps[g.depLo[u]:g.depHi[u]] {
			g.cons[g.consHi[d]] = int32(u)
			g.consHi[d]++
		}
	}
}
