package pipeline

import (
	"math/rand"
	"testing"

	"bhive/internal/exec"
	"bhive/internal/uarch"
)

// equivWorkload builds an unrolled mixed workload — dependent and
// independent ALU work, a store/load forwarding pair, a divider, a zero
// idiom, and an LCP-marked encoding — laid out contiguously in code like
// machine.PrepareUnrolled would, so both front ends (legacy and modeled)
// and both back-end memory paths have something to do.
func equivWorkload(cpu *uarch.CPU, unroll int) (items []Item, body int) {
	storeIt := Item{
		Desc: uarch.Desc{
			Uops: []uarch.Uop{
				{Class: uarch.ClassStoreAddr, Ports: cpu.StoreAddrPorts, Lat: 1},
				{Class: uarch.ClassStoreData, Ports: cpu.StoreDataPorts, Lat: 1},
			},
			FusedUops: 1,
		},
		Store:   &exec.MemAccess{Addr: 0x1000, Phys: 0x1000, Size: 8, Write: true},
		CodeLen: 4,
	}
	loadIt := Item{
		Desc: uarch.Desc{
			Uops:      []uarch.Uop{{Class: uarch.ClassLoad, Ports: cpu.LoadPorts, Lat: uint8(cpu.L1DLatency)}},
			FusedUops: 1,
		},
		Load:    &exec.MemAccess{Addr: 0x1000, Phys: 0x1000, Size: 8},
		Writes:  []uint8{1},
		CodeLen: 4,
	}
	loadFar := loadIt
	loadFar.Load = &exec.MemAccess{Addr: 0x2004, Phys: 0x2004, Size: 8}
	loadFar.Writes = []uint8{2}
	divIt := Item{
		Desc: uarch.Desc{
			Uops: []uarch.Uop{{Class: uarch.ClassIntDiv, Ports: uarch.Ports(0),
				Lat: 21, Occupancy: 21}},
			FusedUops: 1,
		},
		DataReads: []uint8{1},
		Writes:    []uint8{3},
		CodeLen:   3,
	}
	idiom := Item{
		Desc:    uarch.Desc{FusedUops: 1, ZeroIdiom: true},
		Writes:  []uint8{0},
		CodeLen: 2,
	}
	lcpIt := aluItem(cpu, []uint8{0}, []uint8{0}, 1)
	lcpIt.LCP = true

	base := []Item{
		aluItem(cpu, []uint8{0}, []uint8{0}, 1),
		aluItem(cpu, nil, []uint8{4}, 3),
		storeIt, loadIt, loadFar, divIt, idiom, lcpIt,
	}
	phys := uint64(0)
	for u := 0; u < unroll; u++ {
		for _, it := range base {
			it.CodePhys = phys
			phys += uint64(it.CodeLen)
			items = append(items, it)
		}
	}
	return items, len(base)
}

// TestSchedulerEquivalenceInPackage is the in-package twin of
// machine.FuzzSimulateEquivalence: on a mixed workload, the reference
// cycle-by-cycle scheduler and the event-driven one must return identical
// counters under every front-end and context-switch configuration. The
// machine-level fuzzer covers real decoded blocks; this one pins the
// invariant at the pipeline API with hand-built items.
func TestSchedulerEquivalenceInPackage(t *testing.T) {
	for _, cpu := range []*uarch.CPU{uarch.Haswell(), uarch.IceLake()} {
		items, body := equivWorkload(cpu, 12)
		configs := []struct {
			name string
			cfg  Config
		}{
			{"legacy", Config{}},
			{"modeled", Config{ModeledFrontEnd: true, LoopBody: body}},
			{"modeled whole-seq", Config{ModeledFrontEnd: true}},
			{"switches", Config{SwitchRate: 0.01, SwitchCost: 200}},
		}
		for _, tc := range configs {
			run := func(reference bool) (Counters, Counters) {
				cfg := tc.cfg
				cfg.Reference = reference
				if cfg.SwitchRate > 0 {
					cfg.Rand = rand.New(rand.NewSource(42))
				}
				l1i, l1d := caches(cpu)
				cold := Simulate(cpu, items, l1i, l1d, cfg)
				if cfg.SwitchRate > 0 {
					cfg.Rand = rand.New(rand.NewSource(42))
				}
				warm := Simulate(cpu, items, l1i, l1d, cfg)
				return cold, warm
			}
			evCold, evWarm := run(false)
			refCold, refWarm := run(true)
			if evCold != refCold {
				t.Errorf("%s/%s cold: event %+v != reference %+v", cpu.Name, tc.name, evCold, refCold)
			}
			if evWarm != refWarm {
				t.Errorf("%s/%s warm: event %+v != reference %+v", cpu.Name, tc.name, evWarm, refWarm)
			}
			if evWarm.Cycles == 0 {
				t.Errorf("%s/%s: zero warm cycles", cpu.Name, tc.name)
			}
		}
	}
}

// TestGraphSliceEquivalence pins the profiler's low-unroll derivation: a
// prefix Slice of the high-unroll graph must time identically to a graph
// built from the prefix items directly, in both front-end modes.
func TestGraphSliceEquivalence(t *testing.T) {
	cpu := uarch.Skylake()
	items, body := equivWorkload(cpu, 12)
	var g Graph
	g.Build(cpu, items)
	if g.NumItems() != len(items) {
		t.Fatalf("NumItems = %d, want %d", g.NumItems(), len(items))
	}
	half := body * 6
	for _, cfg := range []Config{{}, {ModeledFrontEnd: true, LoopBody: body}} {
		sl := g.Slice(half)
		if sl.NumItems() != half {
			t.Fatalf("Slice(%d).NumItems = %d", half, sl.NumItems())
		}
		l1i, l1d := caches(cpu)
		got := SimulateGraph(cpu, sl, l1i, l1d, cfg)
		l1i2, l1d2 := caches(cpu)
		want := Simulate(cpu, items[:half], l1i2, l1d2, cfg)
		if got != want {
			t.Fatalf("modeled=%v: sliced graph %+v != direct %+v",
				cfg.ModeledFrontEnd, got, want)
		}
		// Out-of-range slice clamps to the whole graph.
		if g.Slice(-1).NumItems() != len(items) || g.Slice(len(items)+5).NumItems() != len(items) {
			t.Fatal("Slice must clamp out-of-range n to the full graph")
		}
	}
}
