package pipeline

import (
	"math/rand"
	"testing"

	"bhive/internal/cache"
	"bhive/internal/exec"
	"bhive/internal/uarch"
)

func caches(cpu *uarch.CPU) (*cache.Cache, *cache.Cache) {
	return cache.New(cpu.L1ISize, cpu.L1Assoc, cpu.LineSize),
		cache.New(cpu.L1DSize, cpu.L1Assoc, cpu.LineSize)
}

// aluItem builds a single-µop ALU instruction with the given reg reads and
// writes.
func aluItem(cpu *uarch.CPU, reads, writes []uint8, lat uint8) Item {
	return Item{
		Desc: uarch.Desc{
			Uops:      []uarch.Uop{{Class: uarch.ClassIntALU, Ports: uarch.Ports(0, 1, 5, 6), Lat: lat}},
			FusedUops: 1,
		},
		DataReads: reads,
		Writes:    writes,
		CodeLen:   4,
	}
}

func run(cpu *uarch.CPU, items []Item) Counters {
	l1i, l1d := caches(cpu)
	// Warm-up, then the measured pass, like the profiler does.
	Simulate(cpu, items, l1i, l1d, Config{})
	return Simulate(cpu, items, l1i, l1d, Config{})
}

func TestDependentChainLatency(t *testing.T) {
	cpu := uarch.Haswell()
	var items []Item
	for i := 0; i < 100; i++ {
		items = append(items, aluItem(cpu, []uint8{0}, []uint8{0}, 1))
	}
	ctr := run(cpu, items)
	// 100 chained 1-cycle ops take ~100 cycles (+ small pipeline fill).
	if ctr.Cycles < 100 || ctr.Cycles > 115 {
		t.Fatalf("chain of 100: %d cycles", ctr.Cycles)
	}
}

func TestIndependentThroughput(t *testing.T) {
	cpu := uarch.Haswell()
	var items []Item
	for i := 0; i < 100; i++ {
		items = append(items, aluItem(cpu, nil, []uint8{uint8(i % 12)}, 1))
	}
	ctr := run(cpu, items)
	// 4-wide: ~25 cycles.
	if ctr.Cycles > 40 {
		t.Fatalf("independent 100: %d cycles", ctr.Cycles)
	}
}

func TestPortContention(t *testing.T) {
	cpu := uarch.Haswell()
	single := uarch.Ports(1)
	var items []Item
	for i := 0; i < 60; i++ {
		items = append(items, Item{
			Desc: uarch.Desc{
				Uops:      []uarch.Uop{{Class: uarch.ClassIntMul, Ports: single, Lat: 3}},
				FusedUops: 1,
			},
			Writes:  []uint8{uint8(i % 12)},
			CodeLen: 4,
		})
	}
	ctr := run(cpu, items)
	// One port, one µop per cycle: at least 60 cycles.
	if ctr.Cycles < 60 {
		t.Fatalf("port-bound 60 µops finished in %d cycles", ctr.Cycles)
	}
}

func TestDividerOccupancyBlocksPort(t *testing.T) {
	cpu := uarch.Haswell()
	var items []Item
	for i := 0; i < 8; i++ {
		items = append(items, Item{
			Desc: uarch.Desc{
				Uops: []uarch.Uop{{Class: uarch.ClassIntDiv, Ports: uarch.Ports(0),
					Lat: 21, Occupancy: 21}},
				FusedUops: 1,
			},
			Writes:  []uint8{uint8(i % 12)},
			CodeLen: 3,
		})
	}
	ctr := run(cpu, items)
	// Independent divides still serialize on the non-pipelined unit.
	if ctr.Cycles < 8*21 {
		t.Fatalf("8 divides in %d cycles, want >= %d", ctr.Cycles, 8*21)
	}
}

func TestZeroIdiomConsumesOnlyRenameSlot(t *testing.T) {
	cpu := uarch.Haswell()
	var items []Item
	for i := 0; i < 400; i++ {
		items = append(items, Item{
			Desc:    uarch.Desc{FusedUops: 1, ZeroIdiom: true},
			Writes:  []uint8{0},
			CodeLen: 2,
		})
	}
	ctr := run(cpu, items)
	// 4 per cycle through rename.
	if ctr.Cycles > 120 {
		t.Fatalf("400 idioms in %d cycles", ctr.Cycles)
	}
	if ctr.Uops != 0 {
		t.Fatalf("idioms must not issue µops, got %d", ctr.Uops)
	}
}

func TestZeroIdiomBreaksDependency(t *testing.T) {
	cpu := uarch.Haswell()
	var items []Item
	// Long-latency producer of reg 0, an idiom that overwrites reg 0,
	// then a chain of consumers: the consumers must not wait.
	items = append(items, aluItem(cpu, nil, []uint8{0}, 20))
	items = append(items, Item{Desc: uarch.Desc{FusedUops: 1, ZeroIdiom: true},
		Writes: []uint8{0}, CodeLen: 2})
	for i := 0; i < 10; i++ {
		items = append(items, aluItem(cpu, []uint8{0}, []uint8{0}, 1))
	}
	ctr := run(cpu, items)
	// Without the break, ~30+; with it, the consumers run concurrently
	// with the producer. Retirement is in order, so the producer's 20
	// cycles still bound the total — but barely more than that.
	if ctr.Cycles > 27 {
		t.Fatalf("dependency not broken: %d cycles", ctr.Cycles)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	cpu := uarch.Haswell()
	addr := uint64(0x1000)
	store := Item{
		Desc: uarch.Desc{
			Uops: []uarch.Uop{
				{Class: uarch.ClassStoreAddr, Ports: cpu.StoreAddrPorts, Lat: 1},
				{Class: uarch.ClassStoreData, Ports: cpu.StoreDataPorts, Lat: 1},
			},
			FusedUops: 1,
		},
		Store:   &exec.MemAccess{Addr: addr, Phys: addr, Size: 8, Write: true},
		CodeLen: 4,
	}
	load := Item{
		Desc: uarch.Desc{
			Uops:      []uarch.Uop{{Class: uarch.ClassLoad, Ports: cpu.LoadPorts, Lat: uint8(cpu.L1DLatency)}},
			FusedUops: 1,
		},
		Load:    &exec.MemAccess{Addr: addr, Phys: addr, Size: 8},
		Writes:  []uint8{1},
		CodeLen: 4,
	}
	var items []Item
	for i := 0; i < 20; i++ {
		items = append(items, store, load)
	}
	ctr := run(cpu, items)
	if ctr.Cycles == 0 || ctr.Cycles > 400 {
		t.Fatalf("forwarding run took %d cycles", ctr.Cycles)
	}
	// All loads forwarded: no cache read misses even on a cold D-cache.
	l1i, l1d := caches(cpu)
	cold := Simulate(cpu, items, l1i, l1d, Config{})
	if cold.L1DReadMisses != 0 {
		t.Fatalf("forwarded loads must not touch the cache: %d misses", cold.L1DReadMisses)
	}
}

func TestPartialOverlapStallsLoad(t *testing.T) {
	cpu := uarch.Haswell()
	store := Item{
		Desc: uarch.Desc{
			Uops: []uarch.Uop{
				{Class: uarch.ClassStoreAddr, Ports: cpu.StoreAddrPorts, Lat: 1},
				{Class: uarch.ClassStoreData, Ports: cpu.StoreDataPorts, Lat: 1},
			},
			FusedUops: 1,
		},
		Store:   &exec.MemAccess{Addr: 0x1004, Phys: 0x1004, Size: 4, Write: true},
		CodeLen: 4,
	}
	// 8-byte load overlapping only half of the store.
	load := Item{
		Desc: uarch.Desc{
			Uops:      []uarch.Uop{{Class: uarch.ClassLoad, Ports: cpu.LoadPorts, Lat: uint8(cpu.L1DLatency)}},
			FusedUops: 1,
		},
		Load:    &exec.MemAccess{Addr: 0x1000, Phys: 0x1000, Size: 8},
		Writes:  []uint8{1},
		CodeLen: 4,
	}
	fast := run(cpu, []Item{store, load})
	// Compare against a disjoint load.
	loadFar := load
	loadFar.Load = &exec.MemAccess{Addr: 0x2000, Phys: 0x2000, Size: 8}
	far := run(cpu, []Item{store, loadFar})
	if fast.Cycles <= far.Cycles {
		t.Fatalf("partial overlap must stall: %d vs %d", fast.Cycles, far.Cycles)
	}
}

func TestContextSwitchFlushesCaches(t *testing.T) {
	cpu := uarch.Haswell()
	var items []Item
	for i := 0; i < 2000; i++ {
		items = append(items, aluItem(cpu, []uint8{0}, []uint8{0}, 1))
	}
	l1i, l1d := caches(cpu)
	ctr := Simulate(cpu, items, l1i, l1d, Config{
		SwitchRate: 0.01, SwitchCost: 500, Rand: rand.New(rand.NewSource(1)),
	})
	if ctr.ContextSwitches == 0 {
		t.Fatal("expected context switches at rate 0.01 over 2000 cycles")
	}
	if ctr.Cycles < 2000+500 {
		t.Fatalf("switch cost must inflate cycles: %d", ctr.Cycles)
	}
}

func TestFetchStallsOnColdICache(t *testing.T) {
	cpu := uarch.Haswell()
	var items []Item
	for i := 0; i < 64; i++ {
		it := aluItem(cpu, nil, []uint8{uint8(i % 12)}, 1)
		it.CodePhys = uint64(i * 4)
		items = append(items, it)
	}
	l1i, l1d := caches(cpu)
	cold := Simulate(cpu, items, l1i, l1d, Config{})
	if cold.L1IMisses == 0 {
		t.Fatal("cold I-cache must miss")
	}
	warm := Simulate(cpu, items, l1i, l1d, Config{})
	if warm.L1IMisses != 0 {
		t.Fatalf("warm I-cache must hit: %d misses", warm.L1IMisses)
	}
	if warm.Cycles >= cold.Cycles {
		t.Fatal("warm run must be faster")
	}
}

func TestEmptyAndCounters(t *testing.T) {
	cpu := uarch.Haswell()
	l1i, l1d := caches(cpu)
	ctr := Simulate(cpu, nil, l1i, l1d, Config{})
	if ctr.Cycles != 0 || ctr.Instructions != 0 {
		t.Fatal("empty input")
	}
	items := []Item{aluItem(cpu, nil, []uint8{0}, 1)}
	ctr = Simulate(cpu, items, l1i, l1d, Config{})
	if ctr.Instructions != 1 || ctr.Uops != 1 {
		t.Fatalf("counters: %+v", ctr)
	}
	if ctr.PortUops[0]+ctr.PortUops[1]+ctr.PortUops[5]+ctr.PortUops[6] != 1 {
		t.Fatal("per-port counters must account for the µop")
	}
}

// TestMoreUnrollNeverFaster: simulating k+j copies never takes fewer
// cycles than k copies — a basic monotonicity invariant behind the
// derived-throughput method.
func TestMoreUnrollNeverFaster(t *testing.T) {
	cpu := uarch.Haswell()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		var block []Item
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			block = append(block, aluItem(cpu,
				[]uint8{uint8(rng.Intn(8))}, []uint8{uint8(rng.Intn(8))}, uint8(1+rng.Intn(5))))
		}
		mk := func(k int) []Item {
			var out []Item
			for i := 0; i < k; i++ {
				out = append(out, block...)
			}
			return out
		}
		k := 2 + rng.Intn(6)
		c1 := run(cpu, mk(k))
		c2 := run(cpu, mk(k+1+rng.Intn(4)))
		if c2.Cycles < c1.Cycles {
			t.Fatalf("trial %d: more work finished faster (%d < %d)", trial, c2.Cycles, c1.Cycles)
		}
	}
}
