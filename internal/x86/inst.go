package x86

import (
	"fmt"
	"strings"
)

// Inst is one decoded or assembled instruction. Args are in Intel order
// (destination first).
type Inst struct {
	Op   Op
	Args []Operand
}

// NewInst builds an instruction from an op and operands.
func NewInst(op Op, args ...Operand) Inst { return Inst{Op: op, Args: args} }

// Form resolves the encoding form for the instruction's operand shapes.
func (in *Inst) Form() (*Form, error) {
	for _, idx := range FormsOf(in.Op) {
		f := &Forms[idx]
		if f.Match(in.Args) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("x86: no encoding for %s", in)
}

// MemArg returns the index of the memory operand, or -1 if none. x86
// instructions have at most one memory operand.
func (in *Inst) MemArg() int {
	for i, a := range in.Args {
		if a.Kind == KindMem {
			return i
		}
	}
	return -1
}

// ArgIO reports whether explicit operand k is read and/or written,
// based on the opcode's semantic class.
func (in *Inst) ArgIO(k int) (read, write bool) {
	info := in.Op.info()
	cls := info.class
	// Two-operand VEX forms (pure moves/broadcasts) behave like clsMov.
	if cls == clsVex3 && len(in.Args) < 3 {
		cls = clsMov
	}
	switch cls {
	case clsMov:
		if k == 0 {
			return false, true
		}
		return true, false
	case clsRMW:
		if in.Op == XCHG {
			return true, true
		}
		if in.Op == IMUL && len(in.Args) == 3 {
			// Three-operand imul writes (not reads) its destination.
			if k == 0 {
				return false, true
			}
			return true, false
		}
		if k == 0 {
			return true, true
		}
		return true, false
	case clsCmp, clsSrc, clsBranch:
		return true, false
	case clsUnary:
		return true, true
	case clsVex3:
		if k == 0 {
			return false, true
		}
		return true, false
	case clsFMA:
		if k == 0 {
			return true, true
		}
		return true, false
	}
	return false, false
}

// IsLoad reports whether the instruction reads memory.
func (in *Inst) IsLoad() bool {
	if m := in.MemArg(); m >= 0 {
		if in.Op == LEA {
			return false
		}
		r, _ := in.ArgIO(m)
		return r
	}
	return false
}

// IsStore reports whether the instruction writes memory.
func (in *Inst) IsStore() bool {
	if m := in.MemArg(); m >= 0 {
		if in.Op == LEA {
			return false
		}
		_, w := in.ArgIO(m)
		return w
	}
	return false
}

// RegReads returns the architectural registers read by the instruction:
// explicit read operands, addressing registers of any memory operand, and
// implicit reads. High-level consumers dedupe as needed.
func (in *Inst) RegReads() []Reg {
	var out []Reg
	for k, a := range in.Args {
		switch a.Kind {
		case KindReg:
			r, w := in.ArgIO(k)
			// Writes to 8/16-bit sub-registers merge into the old value, so
			// they also read; 32-bit writes zero-extend and do not.
			if r || (w && (a.Reg.Class() == ClassGP8 || a.Reg.Class() == ClassGP16)) {
				out = append(out, a.Reg)
			}
		case KindMem:
			if a.Mem.Base != RegNone && a.Mem.Base != RIP {
				out = append(out, a.Mem.Base)
			}
			if a.Mem.Index != RegNone {
				out = append(out, a.Mem.Index)
			}
		}
	}
	out = append(out, in.Op.ImplicitReads()...)
	if in.hasCLCount() {
		out = append(out, RCX)
	}
	return out
}

// RegWrites returns the architectural registers written by the instruction.
func (in *Inst) RegWrites() []Reg {
	var out []Reg
	for k, a := range in.Args {
		if a.Kind != KindReg {
			continue
		}
		if _, w := in.ArgIO(k); w {
			out = append(out, a.Reg)
		}
	}
	out = append(out, in.Op.ImplicitWrites()...)
	return out
}

// hasCLCount reports whether the instruction is a shift/rotate whose count
// operand is the CL register.
func (in *Inst) hasCLCount() bool {
	switch in.Op {
	case SHL, SHR, SAR, ROL, ROR:
		return len(in.Args) == 2 && in.Args[1].IsReg(CL)
	}
	return false
}

// String renders the instruction in Intel syntax.
func (in Inst) String() string {
	if len(in.Args) == 0 {
		return in.Op.String()
	}
	parts := make([]string, len(in.Args))
	for i, a := range in.Args {
		parts[i] = a.String()
	}
	return in.Op.String() + " " + strings.Join(parts, ", ")
}
