package x86

import (
	"fmt"
	"strconv"
	"strings"
)

// ArgPat is an operand pattern in an encoding form.
type ArgPat uint8

const (
	PatNone ArgPat = iota
	PatR8
	PatR16
	PatR32
	PatR64
	PatRM8
	PatRM16
	PatRM32
	PatRM64
	PatM // any memory operand, no fixed size (LEA)
	PatM32
	PatM64
	PatM128
	PatM256
	PatImm8
	PatImm16
	PatImm32
	PatImm64
	PatXMM
	PatYMM
	PatXM32 // xmm or m32
	PatXM64
	PatXM128
	PatYM256
	PatCL    // the CL register
	PatRel32 // branch displacement
)

var patByName = map[string]ArgPat{
	"r8": PatR8, "r16": PatR16, "r32": PatR32, "r64": PatR64,
	"rm8": PatRM8, "rm16": PatRM16, "rm32": PatRM32, "rm64": PatRM64,
	"m": PatM, "m32": PatM32, "m64": PatM64, "m128": PatM128, "m256": PatM256,
	"i8": PatImm8, "i16": PatImm16, "i32": PatImm32, "i64": PatImm64,
	"xmm": PatXMM, "ymm": PatYMM,
	"xm32": PatXM32, "xm64": PatXM64, "xm128": PatXM128, "ym256": PatYM256,
	"cl": PatCL, "rel32": PatRel32,
}

// MemSize returns the memory access width in bytes implied by the pattern,
// or 0 when the pattern carries no size (PatM) or cannot be memory.
func (p ArgPat) MemSize() int {
	switch p {
	case PatRM8:
		return 1
	case PatRM16:
		return 2
	case PatRM32, PatM32, PatXM32:
		return 4
	case PatRM64, PatM64, PatXM64:
		return 8
	case PatM128, PatXM128:
		return 16
	case PatM256, PatYM256:
		return 32
	}
	return 0
}

// AllowsMem reports whether the pattern can bind a memory operand.
func (p ArgPat) AllowsMem() bool {
	switch p {
	case PatRM8, PatRM16, PatRM32, PatRM64, PatM, PatM32, PatM64, PatM128,
		PatM256, PatXM32, PatXM64, PatXM128, PatYM256:
		return true
	}
	return false
}

// AllowsReg reports whether the pattern can bind a register operand.
func (p ArgPat) AllowsReg() bool {
	switch p {
	case PatR8, PatR16, PatR32, PatR64, PatRM8, PatRM16, PatRM32, PatRM64,
		PatXMM, PatYMM, PatXM32, PatXM64, PatXM128, PatYM256, PatCL:
		return true
	}
	return false
}

// regClassOf returns the register class the pattern accepts, ClassNone if
// the pattern does not accept registers.
func (p ArgPat) regClass() RegClass {
	switch p {
	case PatR8, PatRM8, PatCL:
		return ClassGP8
	case PatR16, PatRM16:
		return ClassGP16
	case PatR32, PatRM32:
		return ClassGP32
	case PatR64, PatRM64:
		return ClassGP64
	case PatXMM, PatXM32, PatXM64, PatXM128:
		return ClassXMM
	case PatYMM, PatYM256:
		return ClassYMM
	}
	return ClassNone
}

// Match reports whether operand o can be encoded with this pattern.
func (p ArgPat) Match(o Operand) bool {
	switch o.Kind {
	case KindReg:
		if p == PatCL {
			return o.Reg == CL
		}
		return p.AllowsReg() && o.Reg.Class() == p.regClass()
	case KindMem:
		if !p.AllowsMem() {
			return false
		}
		return p == PatM || o.Mem.Size == 0 || int(o.Mem.Size) == p.MemSize()
	case KindImm:
		switch p {
		case PatImm8:
			return o.Imm >= -128 && o.Imm <= 127
		case PatImm16:
			return o.Imm >= -32768 && o.Imm <= 32767
		case PatImm32, PatRel32:
			return o.Imm >= -(1<<31) && o.Imm < 1<<31
		case PatImm64:
			return true
		}
	}
	return false
}

// argRole says how an operand is encoded.
type argRole uint8

const (
	roleNone    argRole = iota
	roleReg             // ModRM.reg field
	roleRM              // ModRM.rm field (+ SIB/disp)
	roleVvvv            // VEX.vvvv field
	roleImm             // immediate bytes
	rolePlusR           // low 3 bits of the opcode byte (+REX.B)
	roleImplied         // not encoded (e.g. CL shift count)
)

var roleByName = map[string]argRole{
	"r": roleReg, "m": roleRM, "v": roleVvvv, "i": roleImm, "o": rolePlusR, "-": roleImplied,
}

// encSpec is a parsed encoding specification.
type encSpec struct {
	prefix   byte // mandatory legacy prefix: 0, 0x66, 0xF2 or 0xF3
	rexW     bool
	opcode   []byte // full opcode bytes including 0F escapes (legacy only)
	hasModRM bool
	digit    int8 // ModRM.reg constant for /0../7 forms; -1 for /r
	immBytes uint8
	plusR    bool
	vex      bool
	vexL     bool  // 256-bit
	vexPP    uint8 // 0: none, 1: 66, 2: F3, 3: F2
	vexMap   uint8 // 1: 0F, 2: 0F38, 3: 0F3A
	vexW     uint8 // 0, 1; 2 = WIG
}

// parseEnc parses an Intel-manual-style encoding spec, e.g.
// "REX.W 0F AF /r", "81 /0 id", "VEX.NDS.128.66.0F38.W0 40 /r ib".
func parseEnc(spec string) encSpec {
	e := encSpec{digit: -1, vexW: 2}
	for _, tok := range strings.Fields(spec) {
		switch {
		case tok == "REX.W":
			e.rexW = true
		case strings.HasPrefix(tok, "VEX."):
			e.vex = true
			for _, part := range strings.Split(tok[4:], ".") {
				switch part {
				case "", "NDS", "NDD", "DDS": // operand-role hints, handled by roles string
				case "128", "LIG", "LZ":
					e.vexL = false
				case "256":
					e.vexL = true
				case "66":
					e.vexPP = 1
				case "F3":
					e.vexPP = 2
				case "F2":
					e.vexPP = 3
				case "0F":
					e.vexMap = 1
				case "0F38":
					e.vexMap = 2
				case "0F3A":
					e.vexMap = 3
				case "W0":
					e.vexW = 0
				case "W1":
					e.vexW = 1
				case "WIG":
					e.vexW = 2
				default:
					panic("x86: bad VEX part " + part + " in " + spec)
				}
			}
		case tok == "/r":
			e.hasModRM = true
			e.digit = -1
		case len(tok) == 2 && tok[0] == '/' && tok[1] >= '0' && tok[1] <= '7':
			e.hasModRM = true
			e.digit = int8(tok[1] - '0')
		case tok == "ib":
			e.immBytes = 1
		case tok == "iw":
			e.immBytes = 2
		case tok == "id" || tok == "cd":
			e.immBytes = 4
		case tok == "io":
			e.immBytes = 8
		case tok == "+r":
			e.plusR = true
		case len(tok) == 2:
			b, err := strconv.ParseUint(tok, 16, 8)
			if err != nil {
				panic("x86: bad spec token " + tok + " in " + spec)
			}
			// 66/F2/F3 before any opcode byte are mandatory prefixes for
			// legacy encodings.
			if !e.vex && len(e.opcode) == 0 && (b == 0x66 || b == 0xF2 || b == 0xF3) {
				e.prefix = byte(b)
			} else {
				e.opcode = append(e.opcode, byte(b))
			}
		default:
			panic("x86: bad spec token " + tok + " in " + spec)
		}
	}
	if len(e.opcode) == 0 {
		panic("x86: spec has no opcode: " + spec)
	}
	if e.vex && e.vexMap == 0 {
		e.vexMap = 1
	}
	return e
}

// Form is one encodable shape of an instruction.
type Form struct {
	Op    Op
	Args  []ArgPat
	Roles []argRole
	Enc   encSpec
}

// MemSize returns the access width in bytes of the form's memory operand
// slot (whether or not a given instance actually uses memory), or 0.
func (f *Form) MemSize() int {
	for i, p := range f.Args {
		if f.Roles[i] == roleRM && p.AllowsMem() {
			return p.MemSize()
		}
	}
	return 0
}

// Match reports whether the operand list can be encoded by this form.
func (f *Form) Match(args []Operand) bool {
	if len(args) != len(f.Args) {
		return false
	}
	for i, p := range f.Args {
		if !p.Match(args[i]) {
			return false
		}
	}
	return true
}

// Forms is the complete encoding table, indexed by insertion order.
// FormsOf returns the forms for one op.
var Forms []Form

var formsByOp [NumOps][]int

// FormsOf returns the encoding forms available for op.
func FormsOf(op Op) []int {
	if int(op) < len(formsByOp) {
		return formsByOp[op]
	}
	return nil
}

func addForm(op Op, args, roles, spec string) {
	var f Form
	f.Op = op
	if args != "" {
		for _, a := range strings.Split(args, ",") {
			a = strings.TrimSpace(a)
			p, ok := patByName[a]
			if !ok {
				panic("x86: bad arg pattern " + a)
			}
			f.Args = append(f.Args, p)
		}
	}
	if roles != "" {
		for _, r := range strings.Split(roles, ",") {
			r = strings.TrimSpace(r)
			role, ok := roleByName[r]
			if !ok {
				panic("x86: bad role " + r)
			}
			f.Roles = append(f.Roles, role)
		}
	}
	if len(f.Roles) != len(f.Args) {
		panic(fmt.Sprintf("x86: %s: %d args but %d roles", op, len(f.Args), len(f.Roles)))
	}
	f.Enc = parseEnc(spec)
	formsByOp[op] = append(formsByOp[op], len(Forms))
	Forms = append(Forms, f)
}

// aluForms registers the 8086 ALU-group forms for one op given its base
// opcode (the rm8,r8 one) and its /digit in the 80/81/83 immediate group.
func aluForms(op Op, base byte, digit int) {
	b := func(delta byte) string { return fmt.Sprintf("%02X", base+delta) }
	d := fmt.Sprintf("/%d", digit)
	addForm(op, "rm8, r8", "m,r", b(0)+" /r")
	addForm(op, "rm16, r16", "m,r", "66 "+b(1)+" /r")
	addForm(op, "rm32, r32", "m,r", b(1)+" /r")
	addForm(op, "rm64, r64", "m,r", "REX.W "+b(1)+" /r")
	addForm(op, "r8, rm8", "r,m", b(2)+" /r")
	addForm(op, "r16, rm16", "r,m", "66 "+b(3)+" /r")
	addForm(op, "r32, rm32", "r,m", b(3)+" /r")
	addForm(op, "r64, rm64", "r,m", "REX.W "+b(3)+" /r")
	addForm(op, "rm8, i8", "m,i", "80 "+d+" ib")
	addForm(op, "rm16, i8", "m,i", "66 83 "+d+" ib")
	addForm(op, "rm32, i8", "m,i", "83 "+d+" ib")
	addForm(op, "rm64, i8", "m,i", "REX.W 83 "+d+" ib")
	addForm(op, "rm16, i16", "m,i", "66 81 "+d+" iw")
	addForm(op, "rm32, i32", "m,i", "81 "+d+" id")
	addForm(op, "rm64, i32", "m,i", "REX.W 81 "+d+" id")
}

// shiftForms registers shift/rotate forms given the group /digit.
func shiftForms(op Op, digit int) {
	d := fmt.Sprintf("/%d", digit)
	addForm(op, "rm8, i8", "m,i", "C0 "+d+" ib")
	addForm(op, "rm16, i8", "m,i", "66 C1 "+d+" ib")
	addForm(op, "rm32, i8", "m,i", "C1 "+d+" ib")
	addForm(op, "rm64, i8", "m,i", "REX.W C1 "+d+" ib")
	addForm(op, "rm8, cl", "m,-", "D2 "+d)
	addForm(op, "rm16, cl", "m,-", "66 D3 "+d)
	addForm(op, "rm32, cl", "m,-", "D3 "+d)
	addForm(op, "rm64, cl", "m,-", "REX.W D3 "+d)
}

// sseArith registers the four-variant SSE arithmetic family
// (ps / pd / ss / sd share an opcode byte under different prefixes),
// passing BAD for absent family members.
func sseArith(ps, pd, ss, sd Op, opc string) {
	if ps != BAD {
		addForm(ps, "xmm, xm128", "r,m", "0F "+opc+" /r")
	}
	if pd != BAD {
		addForm(pd, "xmm, xm128", "r,m", "66 0F "+opc+" /r")
	}
	if ss != BAD {
		addForm(ss, "xmm, xm32", "r,m", "F3 0F "+opc+" /r")
	}
	if sd != BAD {
		addForm(sd, "xmm, xm64", "r,m", "F2 0F "+opc+" /r")
	}
}

// sseIntALU registers a 66 0F <opc> /r packed-integer form.
func sseIntALU(op Op, opc string) {
	addForm(op, "xmm, xm128", "r,m", "66 0F "+opc+" /r")
}

// vexArith registers 128- and 256-bit three-operand VEX forms.
func vexArith(op Op, pp string, mapName string, opc string, w string) {
	p := "VEX.NDS.128." + pp + mapName + "." + w + " " + opc + " /r"
	q := "VEX.NDS.256." + pp + mapName + "." + w + " " + opc + " /r"
	addForm(op, "xmm, xmm, xm128", "r,v,m", p)
	addForm(op, "ymm, ymm, ym256", "r,v,m", q)
}

// vexScalar registers a scalar three-operand VEX form.
func vexScalar(op Op, pp string, opc string, memPat string) {
	addForm(op, "xmm, xmm, "+memPat, "r,v,m", "VEX.NDS.LIG."+pp+"0F.WIG "+opc+" /r")
}

// fma registers 128/256 packed FMA forms (W0 = ps, W1 = pd).
func fmaPacked(op Op, opc string, w string) {
	addForm(op, "xmm, xmm, xm128", "r,v,m", "VEX.DDS.128.66.0F38."+w+" "+opc+" /r")
	addForm(op, "ymm, ymm, ym256", "r,v,m", "VEX.DDS.256.66.0F38."+w+" "+opc+" /r")
}

func fmaScalar(op Op, opc string, w string, memPat string) {
	addForm(op, "xmm, xmm, "+memPat, "r,v,m", "VEX.DDS.LIG.66.0F38."+w+" "+opc+" /r")
}

func buildForms() {
	// --- Data movement ---
	addForm(MOV, "rm8, r8", "m,r", "88 /r")
	addForm(MOV, "rm16, r16", "m,r", "66 89 /r")
	addForm(MOV, "rm32, r32", "m,r", "89 /r")
	addForm(MOV, "rm64, r64", "m,r", "REX.W 89 /r")
	addForm(MOV, "r8, rm8", "r,m", "8A /r")
	addForm(MOV, "r16, rm16", "r,m", "66 8B /r")
	addForm(MOV, "r32, rm32", "r,m", "8B /r")
	addForm(MOV, "r64, rm64", "r,m", "REX.W 8B /r")
	addForm(MOV, "r32, i32", "o,i", "B8 +r id")
	addForm(MOV, "rm8, i8", "m,i", "C6 /0 ib")
	addForm(MOV, "rm16, i16", "m,i", "66 C7 /0 iw")
	addForm(MOV, "rm32, i32", "m,i", "C7 /0 id")
	addForm(MOV, "rm64, i32", "m,i", "REX.W C7 /0 id")
	addForm(MOV, "r64, i64", "o,i", "REX.W B8 +r io")

	addForm(MOVZX, "r32, rm8", "r,m", "0F B6 /r")
	addForm(MOVZX, "r64, rm8", "r,m", "REX.W 0F B6 /r")
	addForm(MOVZX, "r32, rm16", "r,m", "0F B7 /r")
	addForm(MOVZX, "r64, rm16", "r,m", "REX.W 0F B7 /r")
	addForm(MOVSX, "r32, rm8", "r,m", "0F BE /r")
	addForm(MOVSX, "r64, rm8", "r,m", "REX.W 0F BE /r")
	addForm(MOVSX, "r32, rm16", "r,m", "0F BF /r")
	addForm(MOVSX, "r64, rm16", "r,m", "REX.W 0F BF /r")
	addForm(MOVSXD, "r64, rm32", "r,m", "REX.W 63 /r")

	addForm(LEA, "r32, m", "r,m", "8D /r")
	addForm(LEA, "r64, m", "r,m", "REX.W 8D /r")

	addForm(PUSH, "r64", "o", "50 +r")
	addForm(PUSH, "i32", "i", "68 id")
	addForm(PUSH, "rm64", "m", "FF /6")
	addForm(POP, "r64", "o", "58 +r")
	addForm(POP, "rm64", "m", "8F /0")

	addForm(XCHG, "rm32, r32", "m,r", "87 /r")
	addForm(XCHG, "rm64, r64", "m,r", "REX.W 87 /r")

	// --- Integer ALU ---
	aluForms(ADD, 0x00, 0)
	aluForms(OR, 0x08, 1)
	aluForms(ADC, 0x10, 2)
	aluForms(SBB, 0x18, 3)
	aluForms(AND, 0x20, 4)
	aluForms(SUB, 0x28, 5)
	aluForms(XOR, 0x30, 6)
	aluForms(CMP, 0x38, 7)

	addForm(TEST, "rm8, r8", "m,r", "84 /r")
	addForm(TEST, "rm16, r16", "m,r", "66 85 /r")
	addForm(TEST, "rm32, r32", "m,r", "85 /r")
	addForm(TEST, "rm64, r64", "m,r", "REX.W 85 /r")
	addForm(TEST, "rm8, i8", "m,i", "F6 /0 ib")
	addForm(TEST, "rm32, i32", "m,i", "F7 /0 id")
	addForm(TEST, "rm64, i32", "m,i", "REX.W F7 /0 id")

	addForm(INC, "rm8", "m", "FE /0")
	addForm(INC, "rm32", "m", "FF /0")
	addForm(INC, "rm64", "m", "REX.W FF /0")
	addForm(DEC, "rm8", "m", "FE /1")
	addForm(DEC, "rm32", "m", "FF /1")
	addForm(DEC, "rm64", "m", "REX.W FF /1")
	addForm(NOT, "rm8", "m", "F6 /2")
	addForm(NOT, "rm32", "m", "F7 /2")
	addForm(NOT, "rm64", "m", "REX.W F7 /2")
	addForm(NEG, "rm8", "m", "F6 /3")
	addForm(NEG, "rm32", "m", "F7 /3")
	addForm(NEG, "rm64", "m", "REX.W F7 /3")
	addForm(BSWAP, "r32", "o", "0F C8 +r")
	addForm(BSWAP, "r64", "o", "REX.W 0F C8 +r")

	addForm(IMUL, "r32, rm32", "r,m", "0F AF /r")
	addForm(IMUL, "r64, rm64", "r,m", "REX.W 0F AF /r")
	addForm(IMUL, "r32, rm32, i8", "r,m,i", "6B /r ib")
	addForm(IMUL, "r64, rm64, i8", "r,m,i", "REX.W 6B /r ib")
	addForm(IMUL, "r32, rm32, i32", "r,m,i", "69 /r id")
	addForm(IMUL, "r64, rm64, i32", "r,m,i", "REX.W 69 /r id")
	addForm(MUL, "rm32", "m", "F7 /4")
	addForm(MUL, "rm64", "m", "REX.W F7 /4")
	addForm(DIV, "rm8", "m", "F6 /6")
	addForm(DIV, "rm32", "m", "F7 /6")
	addForm(DIV, "rm64", "m", "REX.W F7 /6")
	addForm(IDIV, "rm32", "m", "F7 /7")
	addForm(IDIV, "rm64", "m", "REX.W F7 /7")
	addForm(CDQ, "", "", "99")
	addForm(CQO, "", "", "REX.W 99")

	shiftForms(ROL, 0)
	shiftForms(ROR, 1)
	shiftForms(SHL, 4)
	shiftForms(SHR, 5)
	shiftForms(SAR, 7)

	addForm(POPCNT, "r32, rm32", "r,m", "F3 0F B8 /r")
	addForm(POPCNT, "r64, rm64", "r,m", "F3 REX.W 0F B8 /r")
	addForm(LZCNT, "r32, rm32", "r,m", "F3 0F BD /r")
	addForm(LZCNT, "r64, rm64", "r,m", "F3 REX.W 0F BD /r")
	addForm(TZCNT, "r32, rm32", "r,m", "F3 0F BC /r")
	addForm(TZCNT, "r64, rm64", "r,m", "F3 REX.W 0F BC /r")
	addForm(BSF, "r32, rm32", "r,m", "0F BC /r")
	addForm(BSF, "r64, rm64", "r,m", "REX.W 0F BC /r")
	addForm(BSR, "r32, rm32", "r,m", "0F BD /r")
	addForm(BSR, "r64, rm64", "r,m", "REX.W 0F BD /r")
	addForm(BT, "rm32, r32", "m,r", "0F A3 /r")
	addForm(BT, "rm64, r64", "m,r", "REX.W 0F A3 /r")
	addForm(BT, "rm32, i8", "m,i", "0F BA /4 ib")
	addForm(BT, "rm64, i8", "m,i", "REX.W 0F BA /4 ib")

	// CMOVcc / SETcc / Jcc use the condition-code nibble.
	ccNibble := map[Op]byte{
		CMOVB: 0x2, CMOVAE: 0x3, CMOVE: 0x4, CMOVNE: 0x5, CMOVBE: 0x6,
		CMOVA: 0x7, CMOVS: 0x8, CMOVNS: 0x9, CMOVL: 0xC, CMOVGE: 0xD,
		CMOVLE: 0xE, CMOVG: 0xF,
	}
	for op, nib := range ccNibble {
		spec := fmt.Sprintf("0F %02X /r", 0x40+nib)
		addForm(op, "r32, rm32", "r,m", spec)
		addForm(op, "r64, rm64", "r,m", "REX.W "+spec)
	}
	setNibble := map[Op]byte{
		SETB: 0x2, SETAE: 0x3, SETE: 0x4, SETNE: 0x5, SETBE: 0x6,
		SETA: 0x7, SETS: 0x8, SETNS: 0x9, SETL: 0xC, SETGE: 0xD,
		SETLE: 0xE, SETG: 0xF,
	}
	for op, nib := range setNibble {
		addForm(op, "rm8", "m", fmt.Sprintf("0F %02X /0", 0x90+nib))
	}
	jccNibble := map[Op]byte{
		JB: 0x2, JAE: 0x3, JE: 0x4, JNE: 0x5, JBE: 0x6,
		JA: 0x7, JS: 0x8, JNS: 0x9, JL: 0xC, JGE: 0xD,
		JLE: 0xE, JG: 0xF,
	}
	for op, nib := range jccNibble {
		addForm(op, "rel32", "i", fmt.Sprintf("0F %02X cd", 0x80+nib))
	}
	addForm(JMP, "rel32", "i", "E9 cd")
	addForm(CALL, "rel32", "i", "E8 cd")
	addForm(RET, "", "", "C3")

	addForm(NOP, "", "", "90")
	addForm(NOP, "rm32", "m", "0F 1F /0")

	// --- SSE scalar and packed float ---
	addForm(MOVSS, "xmm, xm32", "r,m", "F3 0F 10 /r")
	addForm(MOVSS, "xm32, xmm", "m,r", "F3 0F 11 /r")
	addForm(MOVSD, "xmm, xm64", "r,m", "F2 0F 10 /r")
	addForm(MOVSD, "xm64, xmm", "m,r", "F2 0F 11 /r")
	sseArith(ADDPS, ADDPD, ADDSS, ADDSD, "58")
	sseArith(MULPS, MULPD, MULSS, MULSD, "59")
	sseArith(SUBPS, SUBPD, SUBSS, SUBSD, "5C")
	sseArith(MINPS, BAD, MINSS, MINSD, "5D")
	sseArith(DIVPS, DIVPD, DIVSS, DIVSD, "5E")
	sseArith(MAXPS, BAD, MAXSS, MAXSD, "5F")
	sseArith(SQRTPS, SQRTPD, SQRTSS, SQRTSD, "51")
	addForm(UCOMISS, "xmm, xm32", "r,m", "0F 2E /r")
	addForm(UCOMISD, "xmm, xm64", "r,m", "66 0F 2E /r")
	addForm(CVTSI2SS, "xmm, rm32", "r,m", "F3 0F 2A /r")
	addForm(CVTSI2SS, "xmm, rm64", "r,m", "F3 REX.W 0F 2A /r")
	addForm(CVTSI2SD, "xmm, rm32", "r,m", "F2 0F 2A /r")
	addForm(CVTSI2SD, "xmm, rm64", "r,m", "F2 REX.W 0F 2A /r")
	addForm(CVTTSS2SI, "r32, xm32", "r,m", "F3 0F 2C /r")
	addForm(CVTTSS2SI, "r64, xm32", "r,m", "F3 REX.W 0F 2C /r")
	addForm(CVTTSD2SI, "r32, xm64", "r,m", "F2 0F 2C /r")
	addForm(CVTTSD2SI, "r64, xm64", "r,m", "F2 REX.W 0F 2C /r")
	addForm(CVTSS2SD, "xmm, xm32", "r,m", "F3 0F 5A /r")
	addForm(CVTSD2SS, "xmm, xm64", "r,m", "F2 0F 5A /r")
	addForm(CVTDQ2PS, "xmm, xm128", "r,m", "0F 5B /r")
	addForm(CVTPS2DQ, "xmm, xm128", "r,m", "66 0F 5B /r")

	addForm(MOVD, "xmm, rm32", "r,m", "66 0F 6E /r")
	addForm(MOVD, "rm32, xmm", "m,r", "66 0F 7E /r")
	addForm(MOVQ, "xmm, rm64", "r,m", "66 REX.W 0F 6E /r")
	addForm(MOVQ, "rm64, xmm", "m,r", "66 REX.W 0F 7E /r")
	addForm(MOVQ, "xmm, xm64", "r,m", "F3 0F 7E /r")
	addForm(MOVQ, "xm64, xmm", "m,r", "66 0F D6 /r")

	addForm(MOVAPS, "xmm, xm128", "r,m", "0F 28 /r")
	addForm(MOVAPS, "xm128, xmm", "m,r", "0F 29 /r")
	addForm(MOVUPS, "xmm, xm128", "r,m", "0F 10 /r")
	addForm(MOVUPS, "xm128, xmm", "m,r", "0F 11 /r")
	addForm(MOVAPD, "xmm, xm128", "r,m", "66 0F 28 /r")
	addForm(MOVAPD, "xm128, xmm", "m,r", "66 0F 29 /r")
	addForm(MOVUPD, "xmm, xm128", "r,m", "66 0F 10 /r")
	addForm(MOVUPD, "xm128, xmm", "m,r", "66 0F 11 /r")
	addForm(MOVDQA, "xmm, xm128", "r,m", "66 0F 6F /r")
	addForm(MOVDQA, "xm128, xmm", "m,r", "66 0F 7F /r")
	addForm(MOVDQU, "xmm, xm128", "r,m", "F3 0F 6F /r")
	addForm(MOVDQU, "xm128, xmm", "m,r", "F3 0F 7F /r")

	addForm(XORPS, "xmm, xm128", "r,m", "0F 57 /r")
	addForm(XORPD, "xmm, xm128", "r,m", "66 0F 57 /r")
	addForm(ANDPS, "xmm, xm128", "r,m", "0F 54 /r")
	addForm(ANDPD, "xmm, xm128", "r,m", "66 0F 54 /r")
	addForm(ORPS, "xmm, xm128", "r,m", "0F 56 /r")
	addForm(ORPD, "xmm, xm128", "r,m", "66 0F 56 /r")
	addForm(SHUFPS, "xmm, xm128, i8", "r,m,i", "0F C6 /r ib")
	addForm(UNPCKLPS, "xmm, xm128", "r,m", "0F 14 /r")
	addForm(MOVMSKPS, "r32, xmm", "r,m", "0F 50 /r")

	// --- SSE packed integer ---
	sseIntALU(PXOR, "EF")
	sseIntALU(PAND, "DB")
	sseIntALU(PANDN, "DF")
	sseIntALU(POR, "EB")
	sseIntALU(PADDB, "FC")
	sseIntALU(PADDW, "FD")
	sseIntALU(PADDD, "FE")
	sseIntALU(PADDQ, "D4")
	sseIntALU(PSUBB, "F8")
	sseIntALU(PSUBW, "F9")
	sseIntALU(PSUBD, "FA")
	sseIntALU(PSUBQ, "FB")
	sseIntALU(PMULLW, "D5")
	sseIntALU(PMULUDQ, "F4")
	addForm(PMULLD, "xmm, xm128", "r,m", "66 0F 38 40 /r")
	sseIntALU(PCMPEQB, "74")
	sseIntALU(PCMPEQD, "76")
	sseIntALU(PCMPGTB, "64")
	sseIntALU(PCMPGTD, "66")
	sseIntALU(PSLLW, "F1")
	sseIntALU(PSLLD, "F2")
	sseIntALU(PSLLQ, "F3")
	sseIntALU(PSRLW, "D1")
	sseIntALU(PSRLD, "D2")
	sseIntALU(PSRLQ, "D3")
	sseIntALU(PSRAW, "E1")
	sseIntALU(PSRAD, "E2")
	addForm(PSLLW, "xmm, i8", "m,i", "66 0F 71 /6 ib")
	addForm(PSLLD, "xmm, i8", "m,i", "66 0F 72 /6 ib")
	addForm(PSLLQ, "xmm, i8", "m,i", "66 0F 73 /6 ib")
	addForm(PSRLW, "xmm, i8", "m,i", "66 0F 71 /2 ib")
	addForm(PSRLD, "xmm, i8", "m,i", "66 0F 72 /2 ib")
	addForm(PSRLQ, "xmm, i8", "m,i", "66 0F 73 /2 ib")
	addForm(PSRAW, "xmm, i8", "m,i", "66 0F 71 /4 ib")
	addForm(PSRAD, "xmm, i8", "m,i", "66 0F 72 /4 ib")
	sseIntALU(PUNPCKLBW, "60")
	sseIntALU(PUNPCKLWD, "61")
	sseIntALU(PUNPCKLDQ, "62")
	sseIntALU(PUNPCKHDQ, "6A")
	addForm(PSHUFD, "xmm, xm128, i8", "r,m,i", "66 0F 70 /r ib")
	addForm(PMOVMSKB, "r32, xmm", "r,m", "66 0F D7 /r")

	// --- AVX / AVX2 ---
	addForm(VMOVSS, "xmm, m32", "r,m", "VEX.LIG.F3.0F.WIG 10 /r")
	addForm(VMOVSS, "m32, xmm", "m,r", "VEX.LIG.F3.0F.WIG 11 /r")
	addForm(VMOVSS, "xmm, xmm, xmm", "r,v,m", "VEX.NDS.LIG.F3.0F.WIG 10 /r")
	addForm(VMOVSD, "xmm, m64", "r,m", "VEX.LIG.F2.0F.WIG 10 /r")
	addForm(VMOVSD, "m64, xmm", "m,r", "VEX.LIG.F2.0F.WIG 11 /r")
	addForm(VMOVSD, "xmm, xmm, xmm", "r,v,m", "VEX.NDS.LIG.F2.0F.WIG 10 /r")

	vexMove := func(op Op, pp string, load, store string) {
		addForm(op, "xmm, xm128", "r,m", "VEX.128."+pp+"0F.WIG "+load+" /r")
		addForm(op, "xm128, xmm", "m,r", "VEX.128."+pp+"0F.WIG "+store+" /r")
		addForm(op, "ymm, ym256", "r,m", "VEX.256."+pp+"0F.WIG "+load+" /r")
		addForm(op, "ym256, ymm", "m,r", "VEX.256."+pp+"0F.WIG "+store+" /r")
	}
	vexMove(VMOVAPS, "", "28", "29")
	vexMove(VMOVUPS, "", "10", "11")
	vexMove(VMOVAPD, "66.", "28", "29")
	vexMove(VMOVUPD, "66.", "10", "11")
	vexMove(VMOVDQA, "66.", "6F", "7F")
	vexMove(VMOVDQU, "F3.", "6F", "7F")

	vexScalar(VADDSS, "F3.", "58", "xm32")
	vexScalar(VADDSD, "F2.", "58", "xm64")
	vexScalar(VSUBSS, "F3.", "5C", "xm32")
	vexScalar(VSUBSD, "F2.", "5C", "xm64")
	vexScalar(VMULSS, "F3.", "59", "xm32")
	vexScalar(VMULSD, "F2.", "59", "xm64")
	vexScalar(VDIVSS, "F3.", "5E", "xm32")
	vexScalar(VDIVSD, "F2.", "5E", "xm64")

	vexArith(VADDPS, "", ".0F", "58", "WIG")
	vexArith(VADDPD, "66", ".0F", "58", "WIG")
	vexArith(VSUBPS, "", ".0F", "5C", "WIG")
	vexArith(VSUBPD, "66", ".0F", "5C", "WIG")
	vexArith(VMULPS, "", ".0F", "59", "WIG")
	vexArith(VMULPD, "66", ".0F", "59", "WIG")
	vexArith(VDIVPS, "", ".0F", "5E", "WIG")
	vexArith(VDIVPD, "66", ".0F", "5E", "WIG")
	vexArith(VMINPS, "", ".0F", "5D", "WIG")
	vexArith(VMAXPS, "", ".0F", "5F", "WIG")
	vexArith(VXORPS, "", ".0F", "57", "WIG")
	vexArith(VXORPD, "66", ".0F", "57", "WIG")
	vexArith(VANDPS, "", ".0F", "54", "WIG")
	vexArith(VANDPD, "66", ".0F", "54", "WIG")
	vexArith(VORPS, "", ".0F", "56", "WIG")
	vexArith(VORPD, "66", ".0F", "56", "WIG")
	addForm(VSQRTPS, "xmm, xm128", "r,m", "VEX.128.0F.WIG 51 /r")
	addForm(VSQRTPS, "ymm, ym256", "r,m", "VEX.256.0F.WIG 51 /r")
	addForm(VSQRTPD, "xmm, xm128", "r,m", "VEX.128.66.0F.WIG 51 /r")
	addForm(VSQRTPD, "ymm, ym256", "r,m", "VEX.256.66.0F.WIG 51 /r")
	addForm(VUCOMISS, "xmm, xm32", "r,m", "VEX.LIG.0F.WIG 2E /r")
	addForm(VUCOMISD, "xmm, xm64", "r,m", "VEX.LIG.66.0F.WIG 2E /r")
	addForm(VSHUFPS, "xmm, xmm, xm128, i8", "r,v,m,i", "VEX.NDS.128.0F.WIG C6 /r ib")
	addForm(VSHUFPS, "ymm, ymm, ym256, i8", "r,v,m,i", "VEX.NDS.256.0F.WIG C6 /r ib")
	addForm(VCVTDQ2PS, "xmm, xm128", "r,m", "VEX.128.0F.WIG 5B /r")
	addForm(VCVTDQ2PS, "ymm, ym256", "r,m", "VEX.256.0F.WIG 5B /r")
	addForm(VCVTPS2DQ, "xmm, xm128", "r,m", "VEX.128.66.0F.WIG 5B /r")
	addForm(VCVTPS2DQ, "ymm, ym256", "r,m", "VEX.256.66.0F.WIG 5B /r")

	addForm(VBROADCASTSS, "xmm, m32", "r,m", "VEX.128.66.0F38.W0 18 /r")
	addForm(VBROADCASTSS, "ymm, m32", "r,m", "VEX.256.66.0F38.W0 18 /r")
	addForm(VBROADCASTSS, "xmm, xmm", "r,m", "VEX.128.66.0F38.W0 18 /r")
	addForm(VBROADCASTSS, "ymm, xmm", "r,m", "VEX.256.66.0F38.W0 18 /r")
	addForm(VBROADCASTSD, "ymm, m64", "r,m", "VEX.256.66.0F38.W0 19 /r")
	addForm(VBROADCASTSD, "ymm, xmm", "r,m", "VEX.256.66.0F38.W0 19 /r")
	addForm(VEXTRACTF128, "xm128, ymm, i8", "m,r,i", "VEX.256.66.0F3A.W0 19 /r ib")
	addForm(VINSERTF128, "ymm, ymm, xm128, i8", "r,v,m,i", "VEX.NDS.256.66.0F3A.W0 18 /r ib")
	addForm(VZEROUPPER, "", "", "VEX.128.0F.WIG 77")

	vexInt := func(op Op, opc string) { vexArith(op, "66", ".0F", opc, "WIG") }
	vexInt(VPXOR, "EF")
	vexInt(VPAND, "DB")
	vexInt(VPANDN, "DF")
	vexInt(VPOR, "EB")
	vexInt(VPADDB, "FC")
	vexInt(VPADDW, "FD")
	vexInt(VPADDD, "FE")
	vexInt(VPADDQ, "D4")
	vexInt(VPSUBB, "F8")
	vexInt(VPSUBW, "F9")
	vexInt(VPSUBD, "FA")
	vexInt(VPSUBQ, "FB")
	vexInt(VPMULLW, "D5")
	vexArith(VPMULLD, "66", ".0F38", "40", "WIG")
	vexInt(VPCMPEQB, "74")
	vexInt(VPCMPEQD, "76")
	vexInt(VPCMPGTD, "66")
	vexInt(VPSLLD, "F2")
	vexInt(VPSLLQ, "F3")
	vexInt(VPSRLD, "D2")
	vexInt(VPSRLQ, "D3")
	addForm(VPSLLD, "xmm, xmm, i8", "v,m,i", "VEX.NDD.128.66.0F.WIG 72 /6 ib")
	addForm(VPSLLD, "ymm, ymm, i8", "v,m,i", "VEX.NDD.256.66.0F.WIG 72 /6 ib")
	addForm(VPSRLD, "xmm, xmm, i8", "v,m,i", "VEX.NDD.128.66.0F.WIG 72 /2 ib")
	addForm(VPSRLD, "ymm, ymm, i8", "v,m,i", "VEX.NDD.256.66.0F.WIG 72 /2 ib")
	addForm(VPSHUFD, "xmm, xm128, i8", "r,m,i", "VEX.128.66.0F.WIG 70 /r ib")
	addForm(VPSHUFD, "ymm, ym256, i8", "r,m,i", "VEX.256.66.0F.WIG 70 /r ib")
	addForm(VPMOVMSKB, "r32, xmm", "r,m", "VEX.128.66.0F.WIG D7 /r")
	addForm(VPMOVMSKB, "r32, ymm", "r,m", "VEX.256.66.0F.WIG D7 /r")
	addForm(VPBROADCASTB, "xmm, xmm", "r,m", "VEX.128.66.0F38.W0 78 /r")
	addForm(VPBROADCASTD, "xmm, xm32", "r,m", "VEX.128.66.0F38.W0 58 /r")
	addForm(VPBROADCASTD, "ymm, xm32", "r,m", "VEX.256.66.0F38.W0 58 /r")
	addForm(VPBROADCASTQ, "xmm, xm64", "r,m", "VEX.128.66.0F38.W0 59 /r")
	addForm(VPBROADCASTQ, "ymm, xm64", "r,m", "VEX.256.66.0F38.W0 59 /r")
	addForm(VEXTRACTI128, "xm128, ymm, i8", "m,r,i", "VEX.256.66.0F3A.W0 39 /r ib")
	addForm(VINSERTI128, "ymm, ymm, xm128, i8", "r,v,m,i", "VEX.NDS.256.66.0F3A.W0 38 /r ib")

	fmaPacked(VFMADD132PS, "98", "W0")
	fmaPacked(VFMADD213PS, "A8", "W0")
	fmaPacked(VFMADD231PS, "B8", "W0")
	fmaPacked(VFMADD132PD, "98", "W1")
	fmaPacked(VFMADD213PD, "A8", "W1")
	fmaPacked(VFMADD231PD, "B8", "W1")
	fmaScalar(VFMADD132SS, "99", "W0", "xm32")
	fmaScalar(VFMADD213SS, "A9", "W0", "xm32")
	fmaScalar(VFMADD231SS, "B9", "W0", "xm32")
	fmaScalar(VFMADD132SD, "99", "W1", "xm64")
	fmaScalar(VFMADD213SD, "A9", "W1", "xm64")
	fmaScalar(VFMADD231SD, "B9", "W1", "xm64")
	fmaPacked(VFNMADD231PS, "BC", "W0")
	fmaPacked(VFNMADD231PD, "BC", "W1")
}

func init() {
	buildForms()
	buildDecodeIndex()
}
