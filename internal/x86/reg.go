// Package x86 models the subset of the x86-64 instruction set used by the
// BHive benchmark suite: general-purpose and SSE/AVX vector instructions as
// they appear in basic blocks extracted from application binaries.
//
// The package provides the instruction representation shared by the rest of
// the system, an assembler and disassembler for real x86-64 machine code
// (REX/ModRM/SIB/VEX), and parsers/printers for both Intel and AT&T syntax.
package x86

import "fmt"

// Reg identifies a machine register. The zero value RegNone means "no
// register" (e.g. a memory operand without an index).
type Reg uint8

// RegClass partitions registers by width and bank.
type RegClass uint8

const (
	ClassNone RegClass = iota
	ClassGP8
	ClassGP16
	ClassGP32
	ClassGP64
	ClassXMM
	ClassYMM
	ClassIP
)

// Register constants. Within each class, registers appear in x86 encoding
// order, so Reg.Num can be computed by subtraction.
const (
	RegNone Reg = iota

	// 64-bit general purpose.
	RAX
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// 32-bit general purpose.
	EAX
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	R8D
	R9D
	R10D
	R11D
	R12D
	R13D
	R14D
	R15D

	// 16-bit general purpose.
	AX
	CX
	DX
	BX
	SP
	BP
	SI
	DI
	R8W
	R9W
	R10W
	R11W
	R12W
	R13W
	R14W
	R15W

	// 8-bit general purpose (low bytes; SPL..DIL require a REX prefix).
	AL
	CL
	DL
	BL
	SPL
	BPL
	SIL
	DIL
	R8B
	R9B
	R10B
	R11B
	R12B
	R13B
	R14B
	R15B

	// 8-bit high-byte legacy registers (unencodable alongside REX).
	AH
	CH
	DH
	BH

	// 128-bit SSE.
	X0
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15

	// 256-bit AVX.
	Y0
	Y1
	Y2
	Y3
	Y4
	Y5
	Y6
	Y7
	Y8
	Y9
	Y10
	Y11
	Y12
	Y13
	Y14
	Y15

	// Instruction pointer, valid only as a memory base (RIP-relative).
	RIP

	regMax
)

// NumRegs is the number of distinct register names (excluding RegNone).
const NumRegs = int(regMax) - 1

// Class reports the register's class.
func (r Reg) Class() RegClass {
	switch {
	case r == RegNone:
		return ClassNone
	case r >= RAX && r <= R15:
		return ClassGP64
	case r >= EAX && r <= R15D:
		return ClassGP32
	case r >= AX && r <= R15W:
		return ClassGP16
	case r >= AL && r <= BH:
		return ClassGP8
	case r >= X0 && r <= X15:
		return ClassXMM
	case r >= Y0 && r <= Y15:
		return ClassYMM
	case r == RIP:
		return ClassIP
	}
	return ClassNone
}

// Num returns the 0–15 hardware encoding number of the register.
// AH..BH encode as 4..7 (sharing numbers with SPL..DIL, distinguished by the
// absence of a REX prefix).
func (r Reg) Num() int {
	switch {
	case r >= RAX && r <= R15:
		return int(r - RAX)
	case r >= EAX && r <= R15D:
		return int(r - EAX)
	case r >= AX && r <= R15W:
		return int(r - AX)
	case r >= AL && r <= R15B:
		return int(r - AL)
	case r >= AH && r <= BH:
		return int(r-AH) + 4
	case r >= X0 && r <= X15:
		return int(r - X0)
	case r >= Y0 && r <= Y15:
		return int(r - Y0)
	}
	return 0
}

// Size returns the register width in bytes.
func (r Reg) Size() int {
	switch r.Class() {
	case ClassGP8:
		return 1
	case ClassGP16:
		return 2
	case ClassGP32:
		return 4
	case ClassGP64, ClassIP:
		return 8
	case ClassXMM:
		return 16
	case ClassYMM:
		return 32
	}
	return 0
}

// Base64 returns the canonical full-width register aliased by r: the
// containing 64-bit GPR for general-purpose registers, and the YMM register
// for XMM registers (an XMM register is the low half of the same-numbered
// YMM register). Used for dependence tracking.
func (r Reg) Base64() Reg {
	switch r.Class() {
	case ClassGP64:
		return r
	case ClassGP32:
		return RAX + (r - EAX)
	case ClassGP16:
		return RAX + (r - AX)
	case ClassGP8:
		if r >= AH && r <= BH {
			return RAX + (r - AH)
		}
		return RAX + (r - AL)
	case ClassXMM:
		return Y0 + (r - X0)
	case ClassYMM:
		return r
	case ClassIP:
		return RIP
	}
	return RegNone
}

// IsGP reports whether r is a general-purpose register of any width.
func (r Reg) IsGP() bool {
	c := r.Class()
	return c == ClassGP8 || c == ClassGP16 || c == ClassGP32 || c == ClassGP64
}

// IsVec reports whether r is an XMM or YMM register.
func (r Reg) IsVec() bool {
	c := r.Class()
	return c == ClassXMM || c == ClassYMM
}

// IsHighByte reports whether r is one of the legacy AH/CH/DH/BH registers.
func (r Reg) IsHighByte() bool { return r >= AH && r <= BH }

// GPReg returns the general-purpose register with hardware number num
// (0–15) and the given width in bytes.
func GPReg(num, size int) Reg {
	if num < 0 || num > 15 {
		return RegNone
	}
	switch size {
	case 1:
		return AL + Reg(num)
	case 2:
		return AX + Reg(num)
	case 4:
		return EAX + Reg(num)
	case 8:
		return RAX + Reg(num)
	}
	return RegNone
}

// VecReg returns the vector register with hardware number num: XMM when
// size is 16, YMM when size is 32.
func VecReg(num, size int) Reg {
	if num < 0 || num > 15 {
		return RegNone
	}
	switch size {
	case 16:
		return X0 + Reg(num)
	case 32:
		return Y0 + Reg(num)
	}
	return RegNone
}

var gp64Names = [16]string{"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"}
var gp32Names = [16]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"}
var gp16Names = [16]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
	"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"}
var gp8Names = [16]string{"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"}
var gp8HighNames = [4]string{"ah", "ch", "dh", "bh"}

// String returns the Intel-syntax lowercase name of the register.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "<none>"
	case r >= RAX && r <= R15:
		return gp64Names[r-RAX]
	case r >= EAX && r <= R15D:
		return gp32Names[r-EAX]
	case r >= AX && r <= R15W:
		return gp16Names[r-AX]
	case r >= AL && r <= R15B:
		return gp8Names[r-AL]
	case r >= AH && r <= BH:
		return gp8HighNames[r-AH]
	case r >= X0 && r <= X15:
		return fmt.Sprintf("xmm%d", r-X0)
	case r >= Y0 && r <= Y15:
		return fmt.Sprintf("ymm%d", r-Y0)
	case r == RIP:
		return "rip"
	}
	return fmt.Sprintf("Reg(%d)", uint8(r))
}

// regByName maps every register name (Intel spelling, lowercase) to its Reg.
var regByName = func() map[string]Reg {
	m := make(map[string]Reg, NumRegs)
	for r := RegNone + 1; r < regMax; r++ {
		m[r.String()] = r
	}
	return m
}()

// RegByName looks up a register by its Intel-syntax name (case-insensitive
// lookups should lowercase first). It returns RegNone if the name is unknown.
func RegByName(name string) Reg { return regByName[name] }
