package x86

// Op identifies an instruction mnemonic. Condition-code variants (CMOVcc,
// SETcc, Jcc) are distinct Ops.
type Op uint16

// Opcode constants, grouped by functional class.
const (
	BAD Op = iota

	// Data movement.
	MOV
	MOVZX
	MOVSX
	MOVSXD
	LEA
	PUSH
	POP
	XCHG

	// Integer arithmetic / logic (two-operand read-modify-write).
	ADD
	ADC
	SUB
	SBB
	AND
	OR
	XOR
	CMP
	TEST

	// Unary read-modify-write.
	INC
	DEC
	NEG
	NOT
	BSWAP

	// Multiply / divide (implicit RAX/RDX forms and 2/3-operand imul).
	IMUL
	MUL
	DIV
	IDIV
	CDQ
	CQO

	// Shifts and rotates.
	SHL
	SHR
	SAR
	ROL
	ROR

	// Bit manipulation.
	POPCNT
	LZCNT
	TZCNT
	BSF
	BSR
	BT

	// Conditional moves.
	CMOVE
	CMOVNE
	CMOVL
	CMOVLE
	CMOVG
	CMOVGE
	CMOVB
	CMOVBE
	CMOVA
	CMOVAE
	CMOVS
	CMOVNS

	// Conditional sets.
	SETE
	SETNE
	SETL
	SETLE
	SETG
	SETGE
	SETB
	SETBE
	SETA
	SETAE
	SETS
	SETNS

	NOP

	// Control flow (terminates basic blocks; never appears inside them).
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	JS
	JNS
	CALL
	RET

	// SSE scalar float.
	MOVSS
	MOVSD
	ADDSS
	ADDSD
	SUBSS
	SUBSD
	MULSS
	MULSD
	DIVSS
	DIVSD
	SQRTSS
	SQRTSD
	MINSS
	MINSD
	MAXSS
	MAXSD
	UCOMISS
	UCOMISD
	CVTSI2SS
	CVTSI2SD
	CVTTSS2SI
	CVTTSD2SI
	CVTSS2SD
	CVTSD2SS

	// SSE data movement.
	MOVD
	MOVQ
	MOVAPS
	MOVUPS
	MOVAPD
	MOVUPD
	MOVDQA
	MOVDQU

	// SSE packed float.
	ADDPS
	ADDPD
	SUBPS
	SUBPD
	MULPS
	MULPD
	DIVPS
	DIVPD
	SQRTPS
	SQRTPD
	MINPS
	MAXPS
	XORPS
	XORPD
	ANDPS
	ANDPD
	ORPS
	ORPD
	SHUFPS
	UNPCKLPS
	CVTDQ2PS
	CVTPS2DQ
	MOVMSKPS

	// SSE packed integer.
	PXOR
	PAND
	PANDN
	POR
	PADDB
	PADDW
	PADDD
	PADDQ
	PSUBB
	PSUBW
	PSUBD
	PSUBQ
	PMULLW
	PMULLD
	PMULUDQ
	PCMPEQB
	PCMPEQD
	PCMPGTB
	PCMPGTD
	PSLLW
	PSLLD
	PSLLQ
	PSRLW
	PSRLD
	PSRLQ
	PSRAW
	PSRAD
	PUNPCKLBW
	PUNPCKLWD
	PUNPCKLDQ
	PUNPCKHDQ
	PSHUFD
	PMOVMSKB

	// AVX (VEX-encoded) moves and float math; 128- and 256-bit forms.
	VMOVSS
	VMOVSD
	VMOVAPS
	VMOVUPS
	VMOVAPD
	VMOVUPD
	VMOVDQA
	VMOVDQU
	VADDSS
	VADDSD
	VSUBSS
	VSUBSD
	VMULSS
	VMULSD
	VDIVSS
	VDIVSD
	VADDPS
	VADDPD
	VSUBPS
	VSUBPD
	VMULPS
	VMULPD
	VDIVPS
	VDIVPD
	VSQRTPS
	VSQRTPD
	VMINPS
	VMAXPS
	VXORPS
	VXORPD
	VANDPS
	VANDPD
	VORPS
	VORPD
	VUCOMISS
	VUCOMISD
	VSHUFPS
	VCVTDQ2PS
	VCVTPS2DQ
	VBROADCASTSS
	VBROADCASTSD
	VEXTRACTF128
	VINSERTF128
	VZEROUPPER

	// AVX2 packed integer (256-bit) and AVX integer (128-bit) forms.
	VPXOR
	VPAND
	VPANDN
	VPOR
	VPADDB
	VPADDW
	VPADDD
	VPADDQ
	VPSUBB
	VPSUBW
	VPSUBD
	VPSUBQ
	VPMULLW
	VPMULLD
	VPCMPEQB
	VPCMPEQD
	VPCMPGTD
	VPSLLD
	VPSLLQ
	VPSRLD
	VPSRLQ
	VPSHUFD
	VPMOVMSKB
	VPBROADCASTB
	VPBROADCASTD
	VPBROADCASTQ
	VEXTRACTI128
	VINSERTI128

	// FMA (Haswell+).
	VFMADD132PS
	VFMADD213PS
	VFMADD231PS
	VFMADD132PD
	VFMADD213PD
	VFMADD231PD
	VFMADD132SS
	VFMADD213SS
	VFMADD231SS
	VFMADD132SD
	VFMADD213SD
	VFMADD231SD
	VFNMADD231PS
	VFNMADD231PD

	NumOps // sentinel
)

// opClass determines the default read/write behaviour of an instruction's
// explicit operands.
type opClass uint8

const (
	clsNone   opClass = iota
	clsMov            // arg0 written, remaining args read (mov, lea, cvt, setcc targets...)
	clsRMW            // arg0 read+written, remaining args read (add, shl, ...)
	clsCmp            // all args read (cmp, test, ucomiss)
	clsUnary          // arg0 read+written (inc, neg, bswap)
	clsSrc            // all args read, results in implicit regs (push, mul, div)
	clsVex3           // arg0 written, args 1..n read (AVX non-destructive 3-op)
	clsFMA            // arg0 read+written, args 1..2 read
	clsBranch         // control flow
)

// flagEffect describes interaction with RFLAGS.
type flagEffect uint8

const (
	flagsNone flagEffect = 0
	flagsW    flagEffect = 1 << iota // writes status flags
	flagsR                           // reads status flags
)

// opInfo is per-mnemonic metadata shared by all encoding forms.
type opInfo struct {
	name  string
	class opClass
	flags flagEffect
	// implicitR/implicitW list architectural registers read/written beyond
	// the explicit operands (e.g. DIV reads and writes RAX and RDX).
	implicitR []Reg
	implicitW []Reg
	// cond is the condition code for CMOVcc/SETcc/Jcc, else condNone.
	cond cond
}

// cond enumerates x86 condition codes used by this subset. The exported
// alias Cond and CondXX constants let other packages evaluate conditions.
type cond uint8

// Cond is the exported name for condition codes.
type Cond = cond

// Exported condition-code constants.
const (
	CondNone = condNone
	CondE    = condE
	CondNE   = condNE
	CondL    = condL
	CondLE   = condLE
	CondG    = condG
	CondGE   = condGE
	CondB    = condB
	CondBE   = condBE
	CondA    = condA
	CondAE   = condAE
	CondS    = condS
	CondNS   = condNS
)

// Cond returns the condition code of CMOVcc/SETcc/Jcc ops, CondNone
// otherwise.
func (op Op) Cond() Cond { return opInfos[op].cond }

const (
	condNone cond = iota
	condE
	condNE
	condL
	condLE
	condG
	condGE
	condB
	condBE
	condA
	condAE
	condS
	condNS
)

var opInfos = [NumOps]opInfo{
	BAD: {name: "(bad)"},

	MOV:    {name: "mov", class: clsMov},
	MOVZX:  {name: "movzx", class: clsMov},
	MOVSX:  {name: "movsx", class: clsMov},
	MOVSXD: {name: "movsxd", class: clsMov},
	LEA:    {name: "lea", class: clsMov},
	PUSH:   {name: "push", class: clsSrc, implicitR: []Reg{RSP}, implicitW: []Reg{RSP}},
	POP:    {name: "pop", class: clsMov, implicitR: []Reg{RSP}, implicitW: []Reg{RSP}},
	XCHG:   {name: "xchg", class: clsRMW},

	ADD:  {name: "add", class: clsRMW, flags: flagsW},
	ADC:  {name: "adc", class: clsRMW, flags: flagsW | flagsR},
	SUB:  {name: "sub", class: clsRMW, flags: flagsW},
	SBB:  {name: "sbb", class: clsRMW, flags: flagsW | flagsR},
	AND:  {name: "and", class: clsRMW, flags: flagsW},
	OR:   {name: "or", class: clsRMW, flags: flagsW},
	XOR:  {name: "xor", class: clsRMW, flags: flagsW},
	CMP:  {name: "cmp", class: clsCmp, flags: flagsW},
	TEST: {name: "test", class: clsCmp, flags: flagsW},

	INC:   {name: "inc", class: clsUnary, flags: flagsW},
	DEC:   {name: "dec", class: clsUnary, flags: flagsW},
	NEG:   {name: "neg", class: clsUnary, flags: flagsW},
	NOT:   {name: "not", class: clsUnary},
	BSWAP: {name: "bswap", class: clsUnary},

	IMUL: {name: "imul", class: clsRMW, flags: flagsW},
	MUL:  {name: "mul", class: clsSrc, flags: flagsW, implicitR: []Reg{RAX}, implicitW: []Reg{RAX, RDX}},
	DIV:  {name: "div", class: clsSrc, flags: flagsW, implicitR: []Reg{RAX, RDX}, implicitW: []Reg{RAX, RDX}},
	IDIV: {name: "idiv", class: clsSrc, flags: flagsW, implicitR: []Reg{RAX, RDX}, implicitW: []Reg{RAX, RDX}},
	CDQ:  {name: "cdq", class: clsNone, implicitR: []Reg{RAX}, implicitW: []Reg{RDX}},
	CQO:  {name: "cqo", class: clsNone, implicitR: []Reg{RAX}, implicitW: []Reg{RDX}},

	SHL: {name: "shl", class: clsRMW, flags: flagsW},
	SHR: {name: "shr", class: clsRMW, flags: flagsW},
	SAR: {name: "sar", class: clsRMW, flags: flagsW},
	ROL: {name: "rol", class: clsRMW, flags: flagsW},
	ROR: {name: "ror", class: clsRMW, flags: flagsW},

	POPCNT: {name: "popcnt", class: clsMov, flags: flagsW},
	LZCNT:  {name: "lzcnt", class: clsMov, flags: flagsW},
	TZCNT:  {name: "tzcnt", class: clsMov, flags: flagsW},
	BSF:    {name: "bsf", class: clsMov, flags: flagsW},
	BSR:    {name: "bsr", class: clsMov, flags: flagsW},
	BT:     {name: "bt", class: clsCmp, flags: flagsW},

	CMOVE:  {name: "cmove", class: clsRMW, flags: flagsR, cond: condE},
	CMOVNE: {name: "cmovne", class: clsRMW, flags: flagsR, cond: condNE},
	CMOVL:  {name: "cmovl", class: clsRMW, flags: flagsR, cond: condL},
	CMOVLE: {name: "cmovle", class: clsRMW, flags: flagsR, cond: condLE},
	CMOVG:  {name: "cmovg", class: clsRMW, flags: flagsR, cond: condG},
	CMOVGE: {name: "cmovge", class: clsRMW, flags: flagsR, cond: condGE},
	CMOVB:  {name: "cmovb", class: clsRMW, flags: flagsR, cond: condB},
	CMOVBE: {name: "cmovbe", class: clsRMW, flags: flagsR, cond: condBE},
	CMOVA:  {name: "cmova", class: clsRMW, flags: flagsR, cond: condA},
	CMOVAE: {name: "cmovae", class: clsRMW, flags: flagsR, cond: condAE},
	CMOVS:  {name: "cmovs", class: clsRMW, flags: flagsR, cond: condS},
	CMOVNS: {name: "cmovns", class: clsRMW, flags: flagsR, cond: condNS},

	SETE:  {name: "sete", class: clsMov, flags: flagsR, cond: condE},
	SETNE: {name: "setne", class: clsMov, flags: flagsR, cond: condNE},
	SETL:  {name: "setl", class: clsMov, flags: flagsR, cond: condL},
	SETLE: {name: "setle", class: clsMov, flags: flagsR, cond: condLE},
	SETG:  {name: "setg", class: clsMov, flags: flagsR, cond: condG},
	SETGE: {name: "setge", class: clsMov, flags: flagsR, cond: condGE},
	SETB:  {name: "setb", class: clsMov, flags: flagsR, cond: condB},
	SETBE: {name: "setbe", class: clsMov, flags: flagsR, cond: condBE},
	SETA:  {name: "seta", class: clsMov, flags: flagsR, cond: condA},
	SETAE: {name: "setae", class: clsMov, flags: flagsR, cond: condAE},
	SETS:  {name: "sets", class: clsMov, flags: flagsR, cond: condS},
	SETNS: {name: "setns", class: clsMov, flags: flagsR, cond: condNS},

	NOP: {name: "nop", class: clsNone},

	JMP:  {name: "jmp", class: clsBranch},
	JE:   {name: "je", class: clsBranch, flags: flagsR, cond: condE},
	JNE:  {name: "jne", class: clsBranch, flags: flagsR, cond: condNE},
	JL:   {name: "jl", class: clsBranch, flags: flagsR, cond: condL},
	JLE:  {name: "jle", class: clsBranch, flags: flagsR, cond: condLE},
	JG:   {name: "jg", class: clsBranch, flags: flagsR, cond: condG},
	JGE:  {name: "jge", class: clsBranch, flags: flagsR, cond: condGE},
	JB:   {name: "jb", class: clsBranch, flags: flagsR, cond: condB},
	JBE:  {name: "jbe", class: clsBranch, flags: flagsR, cond: condBE},
	JA:   {name: "ja", class: clsBranch, flags: flagsR, cond: condA},
	JAE:  {name: "jae", class: clsBranch, flags: flagsR, cond: condAE},
	JS:   {name: "js", class: clsBranch, flags: flagsR, cond: condS},
	JNS:  {name: "jns", class: clsBranch, flags: flagsR, cond: condNS},
	CALL: {name: "call", class: clsBranch, implicitR: []Reg{RSP}, implicitW: []Reg{RSP}},
	RET:  {name: "ret", class: clsBranch, implicitR: []Reg{RSP}, implicitW: []Reg{RSP}},

	MOVSS:     {name: "movss", class: clsMov},
	MOVSD:     {name: "movsd", class: clsMov},
	ADDSS:     {name: "addss", class: clsRMW},
	ADDSD:     {name: "addsd", class: clsRMW},
	SUBSS:     {name: "subss", class: clsRMW},
	SUBSD:     {name: "subsd", class: clsRMW},
	MULSS:     {name: "mulss", class: clsRMW},
	MULSD:     {name: "mulsd", class: clsRMW},
	DIVSS:     {name: "divss", class: clsRMW},
	DIVSD:     {name: "divsd", class: clsRMW},
	SQRTSS:    {name: "sqrtss", class: clsMov},
	SQRTSD:    {name: "sqrtsd", class: clsMov},
	MINSS:     {name: "minss", class: clsRMW},
	MINSD:     {name: "minsd", class: clsRMW},
	MAXSS:     {name: "maxss", class: clsRMW},
	MAXSD:     {name: "maxsd", class: clsRMW},
	UCOMISS:   {name: "ucomiss", class: clsCmp, flags: flagsW},
	UCOMISD:   {name: "ucomisd", class: clsCmp, flags: flagsW},
	CVTSI2SS:  {name: "cvtsi2ss", class: clsMov},
	CVTSI2SD:  {name: "cvtsi2sd", class: clsMov},
	CVTTSS2SI: {name: "cvttss2si", class: clsMov},
	CVTTSD2SI: {name: "cvttsd2si", class: clsMov},
	CVTSS2SD:  {name: "cvtss2sd", class: clsMov},
	CVTSD2SS:  {name: "cvtsd2ss", class: clsMov},

	MOVD:   {name: "movd", class: clsMov},
	MOVQ:   {name: "movq", class: clsMov},
	MOVAPS: {name: "movaps", class: clsMov},
	MOVUPS: {name: "movups", class: clsMov},
	MOVAPD: {name: "movapd", class: clsMov},
	MOVUPD: {name: "movupd", class: clsMov},
	MOVDQA: {name: "movdqa", class: clsMov},
	MOVDQU: {name: "movdqu", class: clsMov},

	ADDPS:    {name: "addps", class: clsRMW},
	ADDPD:    {name: "addpd", class: clsRMW},
	SUBPS:    {name: "subps", class: clsRMW},
	SUBPD:    {name: "subpd", class: clsRMW},
	MULPS:    {name: "mulps", class: clsRMW},
	MULPD:    {name: "mulpd", class: clsRMW},
	DIVPS:    {name: "divps", class: clsRMW},
	DIVPD:    {name: "divpd", class: clsRMW},
	SQRTPS:   {name: "sqrtps", class: clsMov},
	SQRTPD:   {name: "sqrtpd", class: clsMov},
	MINPS:    {name: "minps", class: clsRMW},
	MAXPS:    {name: "maxps", class: clsRMW},
	XORPS:    {name: "xorps", class: clsRMW},
	XORPD:    {name: "xorpd", class: clsRMW},
	ANDPS:    {name: "andps", class: clsRMW},
	ANDPD:    {name: "andpd", class: clsRMW},
	ORPS:     {name: "orps", class: clsRMW},
	ORPD:     {name: "orpd", class: clsRMW},
	SHUFPS:   {name: "shufps", class: clsRMW},
	UNPCKLPS: {name: "unpcklps", class: clsRMW},
	CVTDQ2PS: {name: "cvtdq2ps", class: clsMov},
	CVTPS2DQ: {name: "cvtps2dq", class: clsMov},
	MOVMSKPS: {name: "movmskps", class: clsMov},

	PXOR:      {name: "pxor", class: clsRMW},
	PAND:      {name: "pand", class: clsRMW},
	PANDN:     {name: "pandn", class: clsRMW},
	POR:       {name: "por", class: clsRMW},
	PADDB:     {name: "paddb", class: clsRMW},
	PADDW:     {name: "paddw", class: clsRMW},
	PADDD:     {name: "paddd", class: clsRMW},
	PADDQ:     {name: "paddq", class: clsRMW},
	PSUBB:     {name: "psubb", class: clsRMW},
	PSUBW:     {name: "psubw", class: clsRMW},
	PSUBD:     {name: "psubd", class: clsRMW},
	PSUBQ:     {name: "psubq", class: clsRMW},
	PMULLW:    {name: "pmullw", class: clsRMW},
	PMULLD:    {name: "pmulld", class: clsRMW},
	PMULUDQ:   {name: "pmuludq", class: clsRMW},
	PCMPEQB:   {name: "pcmpeqb", class: clsRMW},
	PCMPEQD:   {name: "pcmpeqd", class: clsRMW},
	PCMPGTB:   {name: "pcmpgtb", class: clsRMW},
	PCMPGTD:   {name: "pcmpgtd", class: clsRMW},
	PSLLW:     {name: "psllw", class: clsRMW},
	PSLLD:     {name: "pslld", class: clsRMW},
	PSLLQ:     {name: "psllq", class: clsRMW},
	PSRLW:     {name: "psrlw", class: clsRMW},
	PSRLD:     {name: "psrld", class: clsRMW},
	PSRLQ:     {name: "psrlq", class: clsRMW},
	PSRAW:     {name: "psraw", class: clsRMW},
	PSRAD:     {name: "psrad", class: clsRMW},
	PUNPCKLBW: {name: "punpcklbw", class: clsRMW},
	PUNPCKLWD: {name: "punpcklwd", class: clsRMW},
	PUNPCKLDQ: {name: "punpckldq", class: clsRMW},
	PUNPCKHDQ: {name: "punpckhdq", class: clsRMW},
	PSHUFD:    {name: "pshufd", class: clsMov},
	PMOVMSKB:  {name: "pmovmskb", class: clsMov},

	VMOVSS:       {name: "vmovss", class: clsVex3},
	VMOVSD:       {name: "vmovsd", class: clsVex3},
	VMOVAPS:      {name: "vmovaps", class: clsMov},
	VMOVUPS:      {name: "vmovups", class: clsMov},
	VMOVAPD:      {name: "vmovapd", class: clsMov},
	VMOVUPD:      {name: "vmovupd", class: clsMov},
	VMOVDQA:      {name: "vmovdqa", class: clsMov},
	VMOVDQU:      {name: "vmovdqu", class: clsMov},
	VADDSS:       {name: "vaddss", class: clsVex3},
	VADDSD:       {name: "vaddsd", class: clsVex3},
	VSUBSS:       {name: "vsubss", class: clsVex3},
	VSUBSD:       {name: "vsubsd", class: clsVex3},
	VMULSS:       {name: "vmulss", class: clsVex3},
	VMULSD:       {name: "vmulsd", class: clsVex3},
	VDIVSS:       {name: "vdivss", class: clsVex3},
	VDIVSD:       {name: "vdivsd", class: clsVex3},
	VADDPS:       {name: "vaddps", class: clsVex3},
	VADDPD:       {name: "vaddpd", class: clsVex3},
	VSUBPS:       {name: "vsubps", class: clsVex3},
	VSUBPD:       {name: "vsubpd", class: clsVex3},
	VMULPS:       {name: "vmulps", class: clsVex3},
	VMULPD:       {name: "vmulpd", class: clsVex3},
	VDIVPS:       {name: "vdivps", class: clsVex3},
	VDIVPD:       {name: "vdivpd", class: clsVex3},
	VSQRTPS:      {name: "vsqrtps", class: clsMov},
	VSQRTPD:      {name: "vsqrtpd", class: clsMov},
	VMINPS:       {name: "vminps", class: clsVex3},
	VMAXPS:       {name: "vmaxps", class: clsVex3},
	VXORPS:       {name: "vxorps", class: clsVex3},
	VXORPD:       {name: "vxorpd", class: clsVex3},
	VANDPS:       {name: "vandps", class: clsVex3},
	VANDPD:       {name: "vandpd", class: clsVex3},
	VORPS:        {name: "vorps", class: clsVex3},
	VORPD:        {name: "vorpd", class: clsVex3},
	VUCOMISS:     {name: "vucomiss", class: clsCmp, flags: flagsW},
	VUCOMISD:     {name: "vucomisd", class: clsCmp, flags: flagsW},
	VSHUFPS:      {name: "vshufps", class: clsVex3},
	VCVTDQ2PS:    {name: "vcvtdq2ps", class: clsMov},
	VCVTPS2DQ:    {name: "vcvtps2dq", class: clsMov},
	VBROADCASTSS: {name: "vbroadcastss", class: clsMov},
	VBROADCASTSD: {name: "vbroadcastsd", class: clsMov},
	VEXTRACTF128: {name: "vextractf128", class: clsMov},
	VINSERTF128:  {name: "vinsertf128", class: clsVex3},
	VZEROUPPER:   {name: "vzeroupper", class: clsNone},

	VPXOR:        {name: "vpxor", class: clsVex3},
	VPAND:        {name: "vpand", class: clsVex3},
	VPANDN:       {name: "vpandn", class: clsVex3},
	VPOR:         {name: "vpor", class: clsVex3},
	VPADDB:       {name: "vpaddb", class: clsVex3},
	VPADDW:       {name: "vpaddw", class: clsVex3},
	VPADDD:       {name: "vpaddd", class: clsVex3},
	VPADDQ:       {name: "vpaddq", class: clsVex3},
	VPSUBB:       {name: "vpsubb", class: clsVex3},
	VPSUBW:       {name: "vpsubw", class: clsVex3},
	VPSUBD:       {name: "vpsubd", class: clsVex3},
	VPSUBQ:       {name: "vpsubq", class: clsVex3},
	VPMULLW:      {name: "vpmullw", class: clsVex3},
	VPMULLD:      {name: "vpmulld", class: clsVex3},
	VPCMPEQB:     {name: "vpcmpeqb", class: clsVex3},
	VPCMPEQD:     {name: "vpcmpeqd", class: clsVex3},
	VPCMPGTD:     {name: "vpcmpgtd", class: clsVex3},
	VPSLLD:       {name: "vpslld", class: clsVex3},
	VPSLLQ:       {name: "vpsllq", class: clsVex3},
	VPSRLD:       {name: "vpsrld", class: clsVex3},
	VPSRLQ:       {name: "vpsrlq", class: clsVex3},
	VPSHUFD:      {name: "vpshufd", class: clsMov},
	VPMOVMSKB:    {name: "vpmovmskb", class: clsMov},
	VPBROADCASTB: {name: "vpbroadcastb", class: clsMov},
	VPBROADCASTD: {name: "vpbroadcastd", class: clsMov},
	VPBROADCASTQ: {name: "vpbroadcastq", class: clsMov},
	VEXTRACTI128: {name: "vextracti128", class: clsMov},
	VINSERTI128:  {name: "vinserti128", class: clsVex3},

	VFMADD132PS:  {name: "vfmadd132ps", class: clsFMA},
	VFMADD213PS:  {name: "vfmadd213ps", class: clsFMA},
	VFMADD231PS:  {name: "vfmadd231ps", class: clsFMA},
	VFMADD132PD:  {name: "vfmadd132pd", class: clsFMA},
	VFMADD213PD:  {name: "vfmadd213pd", class: clsFMA},
	VFMADD231PD:  {name: "vfmadd231pd", class: clsFMA},
	VFMADD132SS:  {name: "vfmadd132ss", class: clsFMA},
	VFMADD213SS:  {name: "vfmadd213ss", class: clsFMA},
	VFMADD231SS:  {name: "vfmadd231ss", class: clsFMA},
	VFMADD132SD:  {name: "vfmadd132sd", class: clsFMA},
	VFMADD213SD:  {name: "vfmadd213sd", class: clsFMA},
	VFMADD231SD:  {name: "vfmadd231sd", class: clsFMA},
	VFNMADD231PS: {name: "vfnmadd231ps", class: clsFMA},
	VFNMADD231PD: {name: "vfnmadd231pd", class: clsFMA},
}

// String returns the lowercase mnemonic.
func (op Op) String() string {
	if op < NumOps && opInfos[op].name != "" {
		return opInfos[op].name
	}
	return "op?"
}

// Info accessors used by other packages.

// Cond returns the condition code of a conditional op, or condNone.
func (op Op) info() *opInfo { return &opInfos[op] }

// WritesFlags reports whether the instruction writes the status flags.
func (op Op) WritesFlags() bool { return op < NumOps && opInfos[op].flags&flagsW != 0 }

// ReadsFlags reports whether the instruction reads the status flags.
func (op Op) ReadsFlags() bool { return op < NumOps && opInfos[op].flags&flagsR != 0 }

// ImplicitReads returns implicitly-read architectural registers.
func (op Op) ImplicitReads() []Reg { return opInfos[op].implicitR }

// ImplicitWrites returns implicitly-written architectural registers.
func (op Op) ImplicitWrites() []Reg { return opInfos[op].implicitW }

// IsBranch reports whether the op is a control-flow instruction (which
// terminates a basic block and never appears inside one).
func (op Op) IsBranch() bool { return op < NumOps && opInfos[op].class == clsBranch }

// IsVex reports whether the op is VEX-encoded (AVX/AVX2/FMA).
func (op Op) IsVex() bool { return op >= VMOVSS && op <= VFNMADD231PD }

// opByName maps mnemonics to Ops.
var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); op < NumOps; op++ {
		if opInfos[op].name != "" {
			m[opInfos[op].name] = op
		}
	}
	// Common aliases.
	m["cmovz"] = CMOVE
	m["cmovnz"] = CMOVNE
	m["cmovnae"] = CMOVB
	m["cmovnb"] = CMOVAE
	m["setz"] = SETE
	m["setnz"] = SETNE
	m["jz"] = JE
	m["jnz"] = JNE
	m["sal"] = SHL
	return m
}()

// OpByName looks up a mnemonic (lowercase); BAD if unknown.
func OpByName(name string) Op { return opByName[name] }
