package x86

import (
	"encoding/hex"
	"os"
	"reflect"
	"strings"
	"testing"
)

// lintFixtureSeeds loads the machine-code column of the blocklint fixture
// corpus — realistic blocks from the paper's applications — as fuzz seeds.
// Read directly (this package cannot import the corpus reader back).
func lintFixtureSeeds(tb testing.TB) [][]byte {
	raw, err := os.ReadFile("../blocklint/testdata/example_corpus.csv")
	if err != nil {
		tb.Fatal(err)
	}
	var seeds [][]byte
	for _, line := range strings.Split(string(raw), "\n")[1:] {
		fields := strings.Split(strings.TrimSpace(line), ",")
		if len(fields) != 3 {
			continue
		}
		b, err := hex.DecodeString(fields[1])
		if err != nil {
			continue // pathological fixture rows are out of scope
		}
		seeds = append(seeds, b)
	}
	if len(seeds) == 0 {
		tb.Fatal("no seeds in the lint fixture corpus")
	}
	return seeds
}

// parsePrintTrip renders decoded instructions in both dialects and
// requires each listing to parse back to the identical instruction
// sequence — the invariant behind the assembly front door: submitting a
// block as text is indistinguishable from submitting its hex.
func parsePrintTrip(t *testing.T, raw []byte) {
	t.Helper()
	insts, err := DecodeBlock(raw)
	if err != nil {
		return // undecodable input is out of scope here
	}
	canon, err := EncodeBlock(insts)
	if err != nil {
		t.Fatalf("decoded % x but cannot encode: %v", raw, err)
	}
	for _, syn := range []Syntax{SyntaxIntel, SyntaxATT} {
		var sb strings.Builder
		for i := range insts {
			if syn == SyntaxIntel {
				sb.WriteString(insts[i].String())
			} else {
				sb.WriteString(ATTString(insts[i]))
			}
			sb.WriteByte('\n')
		}
		got, err := Parse(sb.String(), syn)
		if err != nil {
			t.Fatalf("printed listing of % x does not parse (syntax %d):\n%s%v", raw, syn, sb.String(), err)
		}
		if !reflect.DeepEqual(got, insts) {
			t.Fatalf("parse(print) drifts (syntax %d):\n%s got %v, want %v", syn, sb.String(), got, insts)
		}
		enc, err := EncodeBlock(got)
		if err != nil || !reflect.DeepEqual(enc, canon) {
			t.Fatalf("parsed listing re-encodes to % x, want % x (err %v)", enc, canon, err)
		}
	}
}

// TestParsePrintFixtureCorpus pins the parse(print) identity on every
// block of the lint fixture corpus deterministically.
func TestParsePrintFixtureCorpus(t *testing.T) {
	for _, seed := range lintFixtureSeeds(t) {
		parsePrintTrip(t, seed)
	}
}

// FuzzParseEncodeDecode is the native-fuzzing entry for the text front
// door: go test -fuzz=FuzzParseEncodeDecode ./internal/x86.
func FuzzParseEncodeDecode(f *testing.F) {
	for _, seed := range lintFixtureSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		parsePrintTrip(t, data)
	})
}
