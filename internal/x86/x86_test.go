package x86

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRegProperties(t *testing.T) {
	if RAX.Num() != 0 || R15.Num() != 15 || ESP.Num() != 4 {
		t.Fatal("register numbering broken")
	}
	if AH.Num() != 4 || BH.Num() != 7 {
		t.Fatalf("high-byte numbering: ah=%d bh=%d", AH.Num(), BH.Num())
	}
	if EAX.Base64() != RAX || DIL.Base64() != RDI || X3.Base64() != Y3 {
		t.Fatal("Base64 aliasing broken")
	}
	if got := GPReg(3, 4); got != EBX {
		t.Fatalf("GPReg(3,4)=%v", got)
	}
	for r := RegNone + 1; r < regMax; r++ {
		if RegByName(r.String()) != r {
			t.Fatalf("name roundtrip failed for %v", r)
		}
	}
}

func TestRegSizes(t *testing.T) {
	cases := map[Reg]int{AL: 1, AX: 2, EAX: 4, RAX: 8, X0: 16, Y0: 32, AH: 1}
	for r, want := range cases {
		if r.Size() != want {
			t.Errorf("%v.Size()=%d want %d", r, r.Size(), want)
		}
	}
}

// knownEncodings pins byte-exact encodings verified against an external
// assembler.
func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{NewInst(ADD, RegOp(RAX), RegOp(RBX)), "4801d8"},
		{NewInst(ADD, RegOp(EAX), RegOp(EBX)), "01d8"},
		{NewInst(ADD, RegOp(RDI), ImmOp(1)), "4883c701"},
		{NewInst(MOV, RegOp(EAX), RegOp(EDX)), "89d0"},
		{NewInst(SHR, RegOp(RDX), ImmOp(8)), "48c1ea08"},
		{NewInst(XOR, RegOp(AL), MemOp(Mem{Base: RDI, Disp: -1, Size: 1})), "3247ff"},
		{NewInst(MOVZX, RegOp(EAX), RegOp(AL)), "0fb6c0"},
		{NewInst(XOR, RegOp(RDX), MemOp(Mem{Index: RAX, Scale: 8, Disp: 0x4110a, Size: 8})), "483314c50a110400"},
		{NewInst(CMP, RegOp(RDI), RegOp(RCX)), "4839cf"},
		{NewInst(XOR, RegOp(EDX), RegOp(EDX)), "31d2"},
		{NewInst(DIV, RegOp(ECX)), "f7f1"},
		{NewInst(TEST, RegOp(EDX), RegOp(EDX)), "85d2"},
		{NewInst(VXORPS, RegOp(X2), RegOp(X2), RegOp(X2)), "c5e857d2"},
		{NewInst(MOV, RegOp(RAX), MemOp(Mem{Base: RSP, Disp: 8, Size: 8})), "488b442408"},
		{NewInst(MOV, RegOp(EAX), MemOp(Mem{Base: R13, Size: 4})), "418b4500"},
		{NewInst(LEA, RegOp(RAX), MemOp(Mem{Base: RIP, Disp: 0x100})), "488d0500010000"},
		{NewInst(NOP), "90"},
		{NewInst(MOVSS, RegOp(X1), MemOp(Mem{Base: RAX, Size: 4})), "f30f1008"},
		{NewInst(VADDPS, RegOp(Y1), RegOp(Y2), RegOp(Y3)), "c5ec58cb"},
		{NewInst(VFMADD231PS, RegOp(Y1), RegOp(Y2), RegOp(Y3)), "c4e26db8cb"},
		{NewInst(PUSH, RegOp(RBP)), "55"},
		{NewInst(POP, RegOp(R12)), "415c"},
		{NewInst(IMUL, RegOp(RAX), RegOp(RBX), ImmOp(100)), "486bc364"},
		{NewInst(MOVAPS, MemOp(Mem{Base: RSP, Size: 16}), RegOp(X0)), "0f290424"},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("%v: %v", c.in, err)
			continue
		}
		if hexStr(got) != c.want {
			t.Errorf("%v: got %s want %s", c.in, hexStr(got), c.want)
		}
	}
}

func hexStr(b []byte) string {
	const digits = "0123456789abcdef"
	var sb strings.Builder
	for _, x := range b {
		sb.WriteByte(digits[x>>4])
		sb.WriteByte(digits[x&0xF])
	}
	return sb.String()
}

func TestDecodeRoundtripKnown(t *testing.T) {
	blocks := []string{
		// The Gzip CRC block from the paper.
		`add $1, %rdi
		 mov %edx, %eax
		 shr $8, %rdx
		 xorb -1(%rdi), %al
		 movzbl %al, %eax
		 xor 0x4110a(, %rax, 8), %rdx
		 cmp %rcx, %rdi`,
		// The unsigned-division case-study block.
		`xor %edx, %edx
		 div %ecx
		 test %edx, %edx`,
		// The zero-idiom case-study block.
		`vxorps %xmm2, %xmm2, %xmm2`,
	}
	for _, text := range blocks {
		b, err := ParseBlock(text, SyntaxATT)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		raw, err := b.Bytes()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		insts, err := DecodeBlock(raw)
		if err != nil {
			t.Fatalf("decode %x: %v", raw, err)
		}
		if len(insts) != len(b.Insts) {
			t.Fatalf("decoded %d instructions, want %d", len(insts), len(b.Insts))
		}
		for i := range insts {
			if insts[i].String() != b.Insts[i].String() {
				t.Errorf("roundtrip mismatch: %v != %v", insts[i], b.Insts[i])
			}
		}
	}
}

func TestParseIntel(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"add rax, rbx", "add rax, rbx"},
		{"mov eax, dword ptr [rbp-0x10]", "mov eax, dword ptr [rbp-0x10]"},
		{"add qword ptr [rax], 1", "add qword ptr [rax], 0x1"},
		{"lea rcx, [rax+rbx*4+8]", "lea rcx, [rax+rbx*4+0x8]"},
		{"vaddps ymm0, ymm1, ymmword ptr [rdi]", "vaddps ymm0, ymm1, ymmword ptr [rdi]"},
		{"xor edx, edx", "xor edx, edx"},
		{"movss xmm0, dword ptr [rsp+0x20]", "movss xmm0, dword ptr [rsp+0x20]"},
		{"imul rax, rbx, 100", "imul rax, rbx, 0x64"},
	}
	for _, c := range cases {
		in, err := ParseInst(c.text, SyntaxIntel)
		if err != nil {
			t.Errorf("%q: %v", c.text, err)
			continue
		}
		if in.String() != c.want {
			t.Errorf("%q: got %q want %q", c.text, in.String(), c.want)
		}
	}
}

func TestParseAmbiguousMemSize(t *testing.T) {
	if _, err := ParseInst("add [rax], 1", SyntaxIntel); err == nil {
		t.Fatal("expected ambiguity error for unsized memory + immediate")
	}
	// With a register operand the width is implied.
	if _, err := ParseInst("add [rax], ebx", SyntaxIntel); err != nil {
		t.Fatalf("register should disambiguate: %v", err)
	}
}

func TestATTPrinting(t *testing.T) {
	in := NewInst(XOR, RegOp(RDX), MemOp(Mem{Index: RAX, Scale: 8, Disp: 0x4110a, Size: 8}))
	got := ATTString(in)
	want := "xor 0x4110a(, %rax, 8), %rdx"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	reparsed, err := ParseInst(got, SyntaxATT)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if reparsed.String() != in.String() {
		t.Fatalf("ATT print/parse roundtrip: %v != %v", reparsed, in)
	}
}

func TestInstIO(t *testing.T) {
	crc, err := ParseInst("xorb -1(%rdi), %al", SyntaxATT)
	if err != nil {
		t.Fatal(err)
	}
	if !crc.IsLoad() || crc.IsStore() {
		t.Fatalf("xor al, [mem] should be a load, not a store")
	}
	st, _ := ParseInst("mov qword ptr [rax], rbx", SyntaxIntel)
	if !st.IsStore() || st.IsLoad() {
		t.Fatal("mov [mem], reg should be a store")
	}
	rmw, _ := ParseInst("add qword ptr [rax], rbx", SyntaxIntel)
	if !rmw.IsStore() || !rmw.IsLoad() {
		t.Fatal("add [mem], reg should load and store")
	}
	lea, _ := ParseInst("lea rax, [rbx+8]", SyntaxIntel)
	if lea.IsLoad() || lea.IsStore() {
		t.Fatal("lea must not access memory")
	}
	div, _ := ParseInst("div ecx", SyntaxIntel)
	reads := div.RegReads()
	var hasRAX, hasRDX bool
	for _, r := range reads {
		hasRAX = hasRAX || r == RAX
		hasRDX = hasRDX || r == RDX
	}
	if !hasRAX || !hasRDX {
		t.Fatalf("div implicit reads missing: %v", reads)
	}
}

func TestSubRegisterWriteReadsOld(t *testing.T) {
	// mov al, 5 merges into rax: the write must count as a read of rax.
	in := NewInst(MOV, RegOp(AL), ImmOp(5))
	found := false
	for _, r := range in.RegReads() {
		if r == AL {
			found = true
		}
	}
	if !found {
		t.Fatal("8-bit destination write must read the old register value")
	}
	// 32-bit writes zero-extend: no read.
	in32 := NewInst(MOV, RegOp(EAX), ImmOp(5))
	for _, r := range in32.RegReads() {
		if r == EAX {
			t.Fatal("32-bit destination write must not read the old value")
		}
	}
}

// randomInst generates a random encodable instruction by picking a form and
// materializing matching operands.
func randomInst(rng *rand.Rand) Inst {
	for {
		f := &Forms[rng.Intn(len(Forms))]
		if f.Op.IsBranch() {
			continue
		}
		in := Inst{Op: f.Op}
		ok := true
		for i, p := range f.Args {
			o, good := randomOperand(rng, p, f.Roles[i])
			if !good {
				ok = false
				break
			}
			in.Args = append(in.Args, o)
		}
		if !ok {
			continue
		}
		// The form table may match an earlier form; that is fine, the
		// roundtrip only requires semantic equality.
		if _, err := Encode(in); err != nil {
			continue
		}
		return in
	}
}

func randomOperand(rng *rand.Rand, p ArgPat, role argRole) (Operand, bool) {
	gp := func(size int) Reg {
		for {
			n := rng.Intn(16)
			if size == 8 && (n == 4) { // avoid rsp bases for simplicity
				continue
			}
			return GPReg(n, size)
		}
	}
	mem := func(size int) Operand {
		m := Mem{Size: uint8(size)}
		if rng.Intn(4) > 0 {
			m.Base = gp(8)
		}
		if rng.Intn(2) == 0 {
			for {
				idx := gp(8)
				if idx != RSP {
					m.Index = idx
					break
				}
			}
			m.Scale = []uint8{1, 2, 4, 8}[rng.Intn(4)]
		}
		m.Disp = int32(rng.Intn(1<<12) - 1<<11)
		if m.Base == RegNone && m.Index == RegNone {
			m.Disp = int32(rng.Intn(1 << 20))
		}
		return MemOp(m)
	}
	switch p {
	case PatR8:
		// Skip high-byte registers: mixing them with REX operands is
		// rejected by the encoder, which the retry loop handles, but
		// avoiding them entirely keeps generation fast.
		return RegOp(GPReg(rng.Intn(16), 1)), true
	case PatR16:
		return RegOp(gp(2)), true
	case PatR32:
		return RegOp(gp(4)), true
	case PatR64:
		return RegOp(gp(8)), true
	case PatRM8:
		if rng.Intn(2) == 0 {
			return RegOp(GPReg(rng.Intn(16), 1)), true
		}
		return mem(1), true
	case PatRM16:
		if rng.Intn(2) == 0 {
			return RegOp(gp(2)), true
		}
		return mem(2), true
	case PatRM32:
		if rng.Intn(2) == 0 {
			return RegOp(gp(4)), true
		}
		return mem(4), true
	case PatRM64:
		if rng.Intn(2) == 0 {
			return RegOp(gp(8)), true
		}
		return mem(8), true
	case PatM:
		return mem(0), true
	case PatM32:
		return mem(4), true
	case PatM64:
		return mem(8), true
	case PatM128:
		return mem(16), true
	case PatM256:
		return mem(32), true
	case PatImm8:
		return ImmOp(int64(rng.Intn(256) - 128)), true
	case PatImm16:
		return ImmOp(int64(rng.Intn(1<<16) - 1<<15)), true
	case PatImm32:
		return ImmOp(int64(int32(rng.Uint32()))), true
	case PatImm64:
		return ImmOp(int64(rng.Uint64())), true
	case PatXMM:
		return RegOp(VecReg(rng.Intn(16), 16)), true
	case PatYMM:
		return RegOp(VecReg(rng.Intn(16), 32)), true
	case PatXM32:
		if rng.Intn(2) == 0 {
			return RegOp(VecReg(rng.Intn(16), 16)), true
		}
		return mem(4), true
	case PatXM64:
		if rng.Intn(2) == 0 {
			return RegOp(VecReg(rng.Intn(16), 16)), true
		}
		return mem(8), true
	case PatXM128:
		if rng.Intn(2) == 0 {
			return RegOp(VecReg(rng.Intn(16), 16)), true
		}
		return mem(16), true
	case PatYM256:
		if rng.Intn(2) == 0 {
			return RegOp(VecReg(rng.Intn(16), 32)), true
		}
		return mem(32), true
	case PatCL:
		return RegOp(CL), true
	}
	return Operand{}, false
}

// TestEncodeDecodeRoundtripProperty is the core property test: any
// encodable instruction decodes back to a semantically identical one.
func TestEncodeDecodeRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := randomInst(rng)
		raw, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, n, err := Decode(raw)
		if err != nil {
			t.Fatalf("decode %v (%x): %v", in, raw, err)
		}
		if n != len(raw) {
			t.Fatalf("decode %v: consumed %d of %d bytes", in, n, len(raw))
		}
		if got.String() != in.String() {
			t.Fatalf("roundtrip: %x: got %q want %q", raw, got.String(), in.String())
		}
	}
}

// TestIntelPrintParseRoundtripProperty checks the printer and parser agree.
func TestIntelPrintParseRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		in := randomInst(rng)
		text := in.String()
		got, err := ParseInst(text, SyntaxIntel)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		// Parsing may resolve to a different-but-equivalent form; compare
		// the printed result.
		if got.String() != text {
			t.Fatalf("print/parse: got %q want %q", got.String(), text)
		}
	}
}

func TestBlockHexRoundtrip(t *testing.T) {
	b, err := ParseBlock("add rax, rbx\nmov rcx, qword ptr [rax]\nvxorps xmm1, xmm1, xmm1", SyntaxIntel)
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.Hex()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BlockFromHex(h)
	if err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Fatalf("hex roundtrip mismatch:\n%s\nvs\n%s", b2, b)
	}
}

func TestBlockStats(t *testing.T) {
	b, _ := ParseBlock(`mov rax, qword ptr [rdi]
		mov qword ptr [rsi], rax
		add rbx, rcx
		vaddps ymm0, ymm0, ymm1`, SyntaxIntel)
	if b.NumLoads() != 1 || b.NumStores() != 1 {
		t.Fatalf("loads=%d stores=%d", b.NumLoads(), b.NumStores())
	}
	if !b.HasVector() {
		t.Fatal("block has vector instructions")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode([]byte{0x06}); err == nil { // invalid in 64-bit mode
		t.Fatal("expected decode error")
	}
	if _, _, err := Decode([]byte{0x48}); err == nil { // lone REX prefix
		t.Fatal("expected truncation error")
	}
}

// TestATTPrintParseRoundtripProperty: AT&T printing and parsing agree for
// random encodable instructions.
func TestATTPrintParseRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		in := randomInst(rng)
		text := ATTString(in)
		got, err := ParseInst(text, SyntaxATT)
		if err != nil {
			t.Fatalf("parse %q (from %v): %v", text, in, err)
		}
		if got.String() != in.String() {
			t.Fatalf("ATT roundtrip: %q -> %q (via %q)", in.String(), got.String(), text)
		}
	}
}
