package x86

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics throws random byte soup at the decoder: it must
// return an error or an instruction, never panic, and never consume zero
// bytes on success.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	buf := make([]byte, 16)
	for i := 0; i < 200000; i++ {
		n := 1 + rng.Intn(15)
		for j := 0; j < n; j++ {
			buf[j] = byte(rng.Intn(256))
		}
		in, used, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		if used <= 0 || used > n {
			t.Fatalf("decode consumed %d of %d bytes (% x)", used, n, buf[:n])
		}
		// A successfully decoded instruction must re-encode (possibly to a
		// different but equivalent byte pattern).
		if _, err := Encode(in); err != nil {
			t.Fatalf("decoded %q from % x but cannot re-encode: %v", in.String(), buf[:used], err)
		}
	}
}

// TestDecodeTruncationsOfValidCode truncates valid encodings at every
// length: the decoder must fail cleanly, not read out of bounds.
func TestDecodeTruncationsOfValidCode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		in := randomInst(rng)
		raw, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(raw); cut++ {
			_, _, _ = Decode(raw[:cut]) // must not panic
		}
	}
}

// TestMutatedValidCode flips bytes in valid encodings; decoding must stay
// panic-free and any successful decode must still re-encode.
func TestMutatedValidCode(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20000; i++ {
		in := randomInst(rng)
		raw, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		pos := rng.Intn(len(raw))
		raw[pos] ^= byte(1 << rng.Intn(8))
		got, used, err := Decode(raw)
		if err != nil {
			continue
		}
		if used <= 0 {
			t.Fatalf("zero-length decode of % x", raw)
		}
		if _, err := Encode(got); err != nil {
			t.Fatalf("mutated decode %q does not re-encode: %v", got.String(), err)
		}
	}
}
