package x86

import (
	"fmt"
	"strings"
)

// ATTString renders the instruction in AT&T syntax (source operand first,
// '%' register sigils, '$' immediates).
func ATTString(in Inst) string {
	if len(in.Args) == 0 {
		return in.Op.String()
	}
	parts := make([]string, len(in.Args))
	for i := range in.Args {
		// AT&T reverses operand order.
		parts[len(in.Args)-1-i] = attOperand(in.Args[i])
	}
	mn := attMnemonic(in)
	if mn == in.Op.String() {
		mn += attSuffix(in)
	}
	return mn + " " + strings.Join(parts, ", ")
}

// attMnemonic returns the GAS mnemonic: movzx/movsx become the two-suffix
// forms (movzbl, movswq, ...) since the register operand alone cannot
// disambiguate the source width.
func attMnemonic(in Inst) string {
	sizeChar := func(n int) byte {
		switch n {
		case 1:
			return 'b'
		case 2:
			return 'w'
		case 4:
			return 'l'
		}
		return 'q'
	}
	switch in.Op {
	case MOVZX, MOVSX:
		if len(in.Args) != 2 {
			break
		}
		src := 0
		switch in.Args[1].Kind {
		case KindReg:
			src = in.Args[1].Reg.Size()
		case KindMem:
			src = int(in.Args[1].Mem.Size)
		}
		if src == 0 || in.Args[0].Kind != KindReg {
			break
		}
		base := "movz"
		if in.Op == MOVSX {
			base = "movs"
		}
		return base + string(sizeChar(src)) + string(sizeChar(in.Args[0].Reg.Size()))
	case MOVSXD:
		return "movslq"
	}
	return in.Op.String()
}

// attSuffix appends a size suffix exactly when the operand shapes leave
// the memory width ambiguous: it erases the size and checks whether more
// than one encoding form still matches (the same rule the parser enforces
// in reverse).
func attSuffix(in Inst) string {
	mi := in.MemArg()
	if mi < 0 || in.Op == LEA {
		return ""
	}
	probe := Inst{Op: in.Op, Args: append([]Operand(nil), in.Args...)}
	probe.Args[mi].Mem.Size = 0
	sizes := map[int]bool{}
	for _, idx := range FormsOf(in.Op) {
		f := &Forms[idx]
		if f.Match(probe.Args) {
			sizes[f.MemSize()] = true
		}
	}
	if len(sizes) <= 1 {
		return ""
	}
	switch in.Args[mi].Mem.Size {
	case 1:
		return "b"
	case 2:
		return "w"
	case 4:
		return "l"
	case 8:
		return "q"
	}
	return ""
}

func attOperand(o Operand) string {
	switch o.Kind {
	case KindReg:
		return "%" + o.Reg.String()
	case KindImm:
		if o.Imm < 0 {
			return fmt.Sprintf("$-0x%x", uint64(-o.Imm))
		}
		return fmt.Sprintf("$0x%x", uint64(o.Imm))
	case KindMem:
		m := o.Mem
		var b strings.Builder
		if m.Disp != 0 || (m.Base == RegNone && m.Index == RegNone) {
			if m.Disp < 0 {
				fmt.Fprintf(&b, "-0x%x", uint64(-int64(m.Disp)))
			} else {
				fmt.Fprintf(&b, "0x%x", uint64(m.Disp))
			}
		}
		if m.Base != RegNone || m.Index != RegNone {
			b.WriteByte('(')
			if m.Base != RegNone {
				b.WriteString("%" + m.Base.String())
			}
			if m.Index != RegNone {
				fmt.Fprintf(&b, ", %%%s, %d", m.Index, m.Scale)
			}
			b.WriteByte(')')
		}
		return b.String()
	}
	return "?"
}
