package x86

import (
	"fmt"
	"strconv"
	"strings"
)

// Syntax selects an assembly dialect.
type Syntax uint8

const (
	// SyntaxAuto detects AT&T by the presence of '%' register sigils.
	SyntaxAuto Syntax = iota
	SyntaxIntel
	SyntaxATT
)

// Parse assembles a multi-line listing into instructions. Lines may carry
// '#' or ';' comments; blank lines are skipped.
func Parse(text string, syntax Syntax) ([]Inst, error) {
	var out []Inst
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := ParseInst(line, syntax)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, in)
	}
	return out, nil
}

// ParseInst assembles a single instruction.
func ParseInst(line string, syntax Syntax) (Inst, error) {
	if syntax == SyntaxAuto {
		if strings.Contains(line, "%") {
			syntax = SyntaxATT
		} else {
			syntax = SyntaxIntel
		}
	}
	mnemonic, rest := splitMnemonic(line)
	mnemonic = strings.ToLower(mnemonic)

	// Candidate interpretations of the mnemonic, in priority order. AT&T
	// size suffixes can collide with real mnemonics (movq is both "64-bit
	// mov" and the SSE data move), so a literal match that fails to
	// resolve falls back to the stripped form.
	type cand struct {
		op   Op
		hint int
	}
	var cands []cand
	if op := OpByName(mnemonic); op != BAD {
		cands = append(cands, cand{op, 0})
	}
	if syntax == SyntaxATT {
		if op, hint := attStrip(mnemonic); op != BAD {
			cands = append(cands, cand{op, hint})
		}
	}
	if alias, ok := attAliases[mnemonic]; ok {
		cands = append(cands, cand{alias.op, alias.srcSize})
	}
	if len(cands) == 0 {
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}

	var args []Operand
	for _, f := range splitOperands(rest) {
		var (
			o   Operand
			err error
		)
		if syntax == SyntaxATT {
			o, err = parseATTOperand(f)
		} else {
			o, err = parseIntelOperand(f)
		}
		if err != nil {
			return Inst{}, fmt.Errorf("%s: %w", mnemonic, err)
		}
		args = append(args, o)
	}
	if syntax == SyntaxATT {
		// AT&T lists source first; flip to Intel order.
		for i, j := 0, len(args)-1; i < j; i, j = i+1, j-1 {
			args[i], args[j] = args[j], args[i]
		}
	}

	var firstErr error
	for _, c := range cands {
		in := Inst{Op: c.op, Args: append([]Operand(nil), args...)}
		if err := resolveMemSize(&in, c.hint); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return in, nil
	}
	return Inst{}, firstErr
}

// resolveMemSize stamps the access width on an unsized memory operand by
// finding the form(s) that match the instruction shape.
func resolveMemSize(in *Inst, hint int) error {
	mi := in.MemArg()
	if mi < 0 {
		return nil
	}
	if hint > 0 && in.Args[mi].Mem.Size == 0 {
		in.Args[mi].Mem.Size = uint8(hint)
	}
	if in.Args[mi].Mem.Size != 0 || in.Op == LEA {
		if _, err := in.Form(); err != nil {
			return err
		}
		return nil
	}
	sizes := map[int]bool{}
	var first int
	for _, idx := range FormsOf(in.Op) {
		f := &Forms[idx]
		if !f.Match(in.Args) {
			continue
		}
		s := f.MemSize()
		if len(sizes) == 0 {
			first = s
		}
		sizes[s] = true
	}
	switch len(sizes) {
	case 0:
		return fmt.Errorf("no encoding for %s", in)
	case 1:
		in.Args[mi].Mem.Size = uint8(first)
		return nil
	}
	return fmt.Errorf("ambiguous memory operand size for %s (use a size prefix)", in)
}

// attStrip removes an AT&T size suffix (b/w/l/q) and returns the operand
// size it implies.
func attStrip(mn string) (Op, int) {
	if len(mn) < 2 {
		return BAD, 0
	}
	size := 0
	switch mn[len(mn)-1] {
	case 'b':
		size = 1
	case 'w':
		size = 2
	case 'l':
		size = 4
	case 'q':
		size = 8
	default:
		return BAD, 0
	}
	return OpByName(mn[:len(mn)-1]), size
}

// attAliases maps AT&T two-suffix mnemonics to ops; srcSize is the width of
// a memory source operand.
var attAliases = map[string]struct {
	op      Op
	srcSize int
}{
	"movzbl": {MOVZX, 1}, "movzbw": {MOVZX, 1}, "movzbq": {MOVZX, 1},
	"movzwl": {MOVZX, 2}, "movzwq": {MOVZX, 2},
	"movsbl": {MOVSX, 1}, "movsbw": {MOVSX, 1}, "movsbq": {MOVSX, 1},
	"movswl": {MOVSX, 2}, "movswq": {MOVSX, 2},
	"movslq": {MOVSXD, 4},
	"cltd":   {CDQ, 0}, "cqto": {CQO, 0},
}

func splitMnemonic(line string) (string, string) {
	for i, r := range line {
		if r == ' ' || r == '\t' {
			return line[:i], strings.TrimSpace(line[i:])
		}
	}
	return line, ""
}

// splitOperands splits at top-level commas (commas inside (...) or [...]
// belong to memory operands).
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func parseInt(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// --- AT&T operands ---

func parseATTOperand(s string) (Operand, error) {
	switch {
	case strings.HasPrefix(s, "%"):
		r := RegByName(strings.ToLower(s[1:]))
		if r == RegNone {
			return Operand{}, fmt.Errorf("unknown register %q", s)
		}
		return RegOp(r), nil
	case strings.HasPrefix(s, "$"):
		v, err := parseInt(s[1:])
		if err != nil {
			return Operand{}, err
		}
		return ImmOp(v), nil
	}
	// Memory: disp(base, index, scale) — every component optional.
	open := strings.IndexByte(s, '(')
	var m Mem
	dispStr := s
	if open >= 0 {
		dispStr = strings.TrimSpace(s[:open])
		closeIdx := strings.LastIndexByte(s, ')')
		if closeIdx < open {
			return Operand{}, fmt.Errorf("bad memory operand %q", s)
		}
		parts := strings.Split(s[open+1:closeIdx], ",")
		reg := func(t string) (Reg, error) {
			t = strings.TrimSpace(t)
			if t == "" {
				return RegNone, nil
			}
			if !strings.HasPrefix(t, "%") {
				return RegNone, fmt.Errorf("bad register %q in %q", t, s)
			}
			r := RegByName(strings.ToLower(t[1:]))
			if r == RegNone {
				return RegNone, fmt.Errorf("unknown register %q", t)
			}
			return r, nil
		}
		var err error
		if m.Base, err = reg(parts[0]); err != nil {
			return Operand{}, err
		}
		if len(parts) > 1 {
			if m.Index, err = reg(parts[1]); err != nil {
				return Operand{}, err
			}
			m.Scale = 1
		}
		if len(parts) > 2 {
			sc, err := parseInt(strings.TrimSpace(parts[2]))
			if err != nil {
				return Operand{}, err
			}
			m.Scale = uint8(sc)
		}
	}
	if dispStr != "" {
		d, err := parseInt(dispStr)
		if err != nil {
			return Operand{}, err
		}
		m.Disp = int32(d)
	}
	if open < 0 && dispStr == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	return MemOp(m), nil
}

// --- Intel operands ---

var intelSizes = map[string]uint8{
	"byte": 1, "word": 2, "dword": 4, "qword": 8, "xmmword": 16, "ymmword": 32,
}

func parseIntelOperand(s string) (Operand, error) {
	lower := strings.ToLower(s)
	if r := RegByName(lower); r != RegNone {
		return RegOp(r), nil
	}

	var size uint8
	for word, sz := range intelSizes {
		for _, form := range []string{word + " ptr ", word + " "} {
			if strings.HasPrefix(lower, form) {
				size = sz
				lower = strings.TrimSpace(lower[len(form):])
				break
			}
		}
		if size != 0 {
			break
		}
	}

	if strings.HasPrefix(lower, "[") {
		if !strings.HasSuffix(lower, "]") {
			return Operand{}, fmt.Errorf("bad memory operand %q", s)
		}
		m, err := parseIntelMem(lower[1 : len(lower)-1])
		if err != nil {
			return Operand{}, err
		}
		m.Size = size
		return MemOp(m), nil
	}
	if size != 0 {
		return Operand{}, fmt.Errorf("size prefix on non-memory operand %q", s)
	}
	v, err := parseInt(lower)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return ImmOp(v), nil
}

// parseIntelMem parses the inside of [...]: terms joined by +/- where each
// term is reg, reg*scale, scale*reg, or a displacement.
func parseIntelMem(s string) (Mem, error) {
	var m Mem
	s = strings.ReplaceAll(s, " ", "")
	// Tokenize on +/- keeping signs with displacements.
	terms := []string{}
	start := 0
	for i := 0; i < len(s); i++ {
		if (s[i] == '+' || s[i] == '-') && i > start {
			terms = append(terms, s[start:i])
			if s[i] == '-' {
				start = i
			} else {
				start = i + 1
			}
		}
	}
	terms = append(terms, s[start:])

	for _, t := range terms {
		if t == "" {
			continue
		}
		if star := strings.IndexByte(t, '*'); star >= 0 {
			a, b := t[:star], t[star+1:]
			var regPart, scalePart string
			if RegByName(a) != RegNone {
				regPart, scalePart = a, b
			} else {
				regPart, scalePart = b, a
			}
			r := RegByName(regPart)
			if r == RegNone {
				return m, fmt.Errorf("bad index term %q", t)
			}
			sc, err := parseInt(scalePart)
			if err != nil {
				return m, err
			}
			if m.Index != RegNone {
				return m, fmt.Errorf("two index registers in %q", s)
			}
			m.Index, m.Scale = r, uint8(sc)
			continue
		}
		if r := RegByName(strings.TrimPrefix(t, "-")); r != RegNone && !strings.HasPrefix(t, "-") {
			switch {
			case m.Base == RegNone:
				m.Base = r
			case m.Index == RegNone:
				m.Index, m.Scale = r, 1
			default:
				return m, fmt.Errorf("too many registers in %q", s)
			}
			continue
		}
		v, err := parseInt(t)
		if err != nil {
			return m, err
		}
		m.Disp += int32(v)
	}
	return m, nil
}
