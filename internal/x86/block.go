package x86

import (
	"encoding/hex"
	"strings"
)

// Block is a basic block: a straight-line instruction sequence with no
// internal control flow, as extracted from an application binary. This is
// the unit the BHive suite profiles and models predict.
type Block struct {
	Insts []Inst
}

// BlockFromHex decodes a basic block from its machine-code hex string — the
// storage format of the benchmark suite.
func BlockFromHex(s string) (*Block, error) {
	raw, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return nil, err
	}
	insts, err := DecodeBlock(raw)
	if err != nil {
		return nil, err
	}
	return &Block{Insts: insts}, nil
}

// ParseBlock assembles a multi-line listing (Intel or AT&T) into a block.
func ParseBlock(text string, syntax Syntax) (*Block, error) {
	insts, err := Parse(text, syntax)
	if err != nil {
		return nil, err
	}
	return &Block{Insts: insts}, nil
}

// Bytes encodes the block to machine code.
func (b *Block) Bytes() ([]byte, error) { return EncodeBlock(b.Insts) }

// Hex encodes the block to its hex storage form.
func (b *Block) Hex() (string, error) {
	raw, err := b.Bytes()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(raw), nil
}

// String renders the block as one Intel-syntax instruction per line.
func (b *Block) String() string {
	var sb strings.Builder
	for i := range b.Insts {
		sb.WriteString(b.Insts[i].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// NumLoads counts memory-reading instructions.
func (b *Block) NumLoads() int {
	n := 0
	for i := range b.Insts {
		if b.Insts[i].IsLoad() {
			n++
		}
	}
	return n
}

// NumStores counts memory-writing instructions.
func (b *Block) NumStores() int {
	n := 0
	for i := range b.Insts {
		if b.Insts[i].IsStore() {
			n++
		}
	}
	return n
}

// HasVector reports whether the block contains any XMM/YMM instruction.
func (b *Block) HasVector() bool {
	for i := range b.Insts {
		for _, a := range b.Insts[i].Args {
			if a.Kind == KindReg && a.Reg.IsVec() {
				return true
			}
		}
	}
	return false
}

// HasAVX2 reports whether the block needs post-Ivy-Bridge vector extensions:
// 256-bit integer operations, VEX broadcasts/inserts from the AVX2 group, or
// FMA. Such blocks are excluded from Ivy Bridge validation, as in the paper.
func (b *Block) HasAVX2() bool {
	for i := range b.Insts {
		in := &b.Insts[i]
		switch {
		case in.Op >= VFMADD132PS && in.Op <= VFNMADD231PD:
			return true
		case in.Op >= VPBROADCASTB && in.Op <= VINSERTI128:
			return true
		case in.Op >= VPXOR && in.Op <= VPMOVMSKB:
			// 128-bit VEX integer ops are AVX1; 256-bit ones are AVX2.
			for _, a := range in.Args {
				if a.Kind == KindReg && a.Reg.Class() == ClassYMM {
					return true
				}
			}
		}
	}
	return false
}
