package x86

import (
	"encoding/hex"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// corpusSeeds are machine-code blocks from the generated benchmark suite
// (hardcoded: the corpus package imports x86, so this package cannot
// import it back). They seed the round-trip fuzzer and pin the
// deterministic round-trip test to realistic encodings.
var corpusSeeds = []string{
	"31d2f7f74c29d9",
	"888c1bbf010000450f5ce949c1fb0e",
	"4c0fafda66450fefc94d8b5550b86b020000488b00",
	"4809c84d8bbdb00000004985d34d0f44db48b9000000000080ffff4c8b01",
	"4d8d44245a4809ca4c8b7b304c8b84f398000000",
	"4985c14d0f44c14983c771498d86b5000000498b4424204d01c94d8985c0010000",
	"4983f0454d39f9f3480fb8c849c785b8010000200000004157415a488b86d801000085c0490f42c34983f031",
	"4983cb494c8d46774183c72a4153415af3440f58c049c1fb054c85d84c0f42d2488b93a0010000f3450f105e68c442edb8ee",
	"4931c84d29d1490fc84983ea27448b843bf0000000410f5bca4983c16b483b5768410f9cc0",
	"4528cfc4e205bce04129d74d8bbe980100004501db448b96ac01000066410f62f24d31d9c4621db8e14c8b7b10",
	"4d85f94129cb4d8bbee0010000",
	"660fefd24c85d2490f4dd74d39fa488b442428",
	"c5fdfec0c5f877", // vpaddd ymm; vzeroupper
	"488b442408",     // rsp-relative load
	"50415b",         // push rax; pop r11
}

// roundTrip decodes a block, re-encodes every instruction, decodes the
// canonical bytes again, and requires the two instruction sequences to be
// identical. The first decode→encode hop may change bytes — the encoder
// picks one canonical member per equivalence class of encodings (the exact
// classes are pinned in TestCanonicalEncoding) — but after that hop the
// bytes are a fixed point: re-encoding the canonical decode must reproduce
// them exactly. Semantic drift is never allowed.
func roundTrip(t *testing.T, raw []byte) {
	t.Helper()
	insts, err := DecodeBlock(raw)
	if err != nil {
		return // undecodable input is out of scope here
	}
	var code []byte
	for i := range insts {
		enc, err := Encode(insts[i])
		if err != nil {
			t.Fatalf("decoded %q from % x but cannot encode: %v", insts[i].String(), raw, err)
		}
		code = append(code, enc...)
	}
	again, err := DecodeBlock(code)
	if err != nil {
		t.Fatalf("canonical re-encoding % x of % x does not decode: %v", code, raw, err)
	}
	if len(again) != len(insts) {
		t.Fatalf("round trip of % x yields %d instructions, want %d", raw, len(again), len(insts))
	}
	for i := range insts {
		if !reflect.DeepEqual(insts[i], again[i]) {
			t.Fatalf("round trip of % x changes inst %d: %q -> %q", raw, i, insts[i].String(), again[i].String())
		}
	}
	code2, err := EncodeBlock(again)
	if err != nil {
		t.Fatalf("canonical % x of % x does not re-encode: %v", code, raw, err)
	}
	if !reflect.DeepEqual(code, code2) {
		t.Fatalf("canonical form of % x is not a fixed point: % x re-encodes to % x", raw, code, code2)
	}
}

// TestCanonicalEncoding pins the exact canonical member of every known
// equivalence class of encodings — the cases the round-trip invariant used
// to wave through as "known-lossy byte differences". Each entry lists
// equivalent encodings of one instruction; all must decode to the same
// instruction and re-encode to precisely the canonical (first) member,
// which must itself be a decode→encode fixed point.
func TestCanonicalEncoding(t *testing.T) {
	classes := []struct {
		name string
		encs []string // hex; encs[0] is the canonical form
	}{
		// Direction-bit duals: reg-reg ALU/mov ops encode via either the
		// rm,reg opcode or the reg,rm opcode; the form table lists the
		// rm,reg (store-direction) opcode first, so it is canonical.
		{"mov r8 direction", []string{"88c8", "8ac1"}},
		{"mov r32 direction", []string{"89c8", "8bc1"}},
		{"mov r64 direction", []string{"4889c8", "488bc1"}},
		{"xor r32 direction", []string{"31c8", "33c1"}},
		{"add r64 direction", []string{"4801c8", "48 03c1"}},
		// SSE moves dual-direction opcodes: the load direction (0F 28/10/6F)
		// is listed first, so it is canonical for reg-reg moves.
		{"movaps direction", []string{"0f28c8", "0f29c1"}},
		{"movdqa direction", []string{"660f6fc8", "660f7fc1"}},
		// VEX prefix length: a 3-byte VEX with map 1, W=0 and no X/B
		// extension is redundant — the 2-byte C5 form encodes the same
		// instruction and is canonical.
		{"vex 2-byte vpaddd", []string{"c5fdfec0", "c4e17dfec0"}},
		{"vex 2-byte vpxor", []string{"c5f1efc2", "c4e171efc2"}},
		// VEX direction duals compose with the prefix-length class.
		{"vmovaps direction", []string{"c5fc28c8", "c5fc29c1", "c4e17c28c8", "c4e17c29c1"}},
	}
	for _, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			canon, err := hex.DecodeString(strings.ReplaceAll(tc.encs[0], " ", ""))
			if err != nil {
				t.Fatal(err)
			}
			want, err := DecodeBlock(canon)
			if err != nil || len(want) != 1 {
				t.Fatalf("canonical %s does not decode to one instruction: %v", tc.encs[0], err)
			}
			for _, e := range tc.encs {
				raw, err := hex.DecodeString(strings.ReplaceAll(e, " ", ""))
				if err != nil {
					t.Fatal(err)
				}
				insts, err := DecodeBlock(raw)
				if err != nil {
					t.Fatalf("%s does not decode: %v", e, err)
				}
				if len(insts) != 1 || !reflect.DeepEqual(insts[0], want[0]) {
					t.Fatalf("%s decodes to %v, want %q", e, insts, want[0].String())
				}
				code, err := EncodeBlock(insts)
				if err != nil {
					t.Fatalf("%s (%q) does not encode: %v", e, insts[0].String(), err)
				}
				if !reflect.DeepEqual(code, canon) {
					t.Fatalf("%s re-encodes to % x, want canonical % x", e, code, canon)
				}
			}
		})
	}

	// Near misses: encodings one bit away from a class member that are NOT
	// redundant must keep their 3-byte VEX form (B extension in use).
	for _, e := range []string{"c4c17dfec0", "450f28c1"} {
		raw, _ := hex.DecodeString(e)
		insts, err := DecodeBlock(raw)
		if err != nil {
			t.Fatalf("%s does not decode: %v", e, err)
		}
		code, err := EncodeBlock(insts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(code, raw) {
			t.Fatalf("%s is already canonical but re-encodes to % x", e, code)
		}
	}
}

// TestCorpusRoundTrip pins decode→encode→decode stability on realistic
// corpus blocks.
func TestCorpusRoundTrip(t *testing.T) {
	for _, seed := range corpusSeeds {
		raw, err := hex.DecodeString(seed)
		if err != nil {
			t.Fatal(err)
		}
		insts, err := DecodeBlock(raw)
		if err != nil {
			t.Fatalf("corpus seed %s does not decode: %v", seed, err)
		}
		if len(insts) == 0 {
			t.Fatalf("corpus seed %s decodes to nothing", seed)
		}
		roundTrip(t, raw)
	}
}

// TestRandomRoundTrip extends the byte-soup fuzzing to the block-level
// round-trip invariant.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 24)
	for i := 0; i < 50000; i++ {
		n := 1 + rng.Intn(23)
		for j := 0; j < n; j++ {
			buf[j] = byte(rng.Intn(256))
		}
		roundTrip(t, buf[:n])
	}
}

// FuzzDecodeEncodeDecode is the native-fuzzing entry for the round-trip
// invariant: go test -fuzz=FuzzDecodeEncodeDecode ./internal/x86.
func FuzzDecodeEncodeDecode(f *testing.F) {
	for _, seed := range corpusSeeds {
		raw, err := hex.DecodeString(seed)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		roundTrip(t, data)
	})
}

// TestDecodeErrIndex checks the block-level decode error: it must locate
// the failure by both byte offset and instruction index.
func TestDecodeErrIndex(t *testing.T) {
	// Two valid movs followed by a truncated instruction.
	raw, _ := hex.DecodeString("4889c84889d9ff")
	_, err := DecodeBlock(raw)
	if err == nil {
		t.Fatal("want decode error")
	}
	de, ok := err.(*DecodeErr)
	if !ok {
		t.Fatalf("want *DecodeErr, got %T", err)
	}
	if de.Index != 2 {
		t.Errorf("index %d, want 2", de.Index)
	}
	if de.Offset < 6 {
		t.Errorf("offset %d, want >= 6 (failure inside the third instruction)", de.Offset)
	}
	if s := de.Error(); s == "" || !containsAll(s, "offset", "instruction 2") {
		t.Errorf("error text %q should carry offset and instruction index", s)
	}

	// A single-instruction decode failure keeps the terse format: no
	// instruction clause when nothing decoded before it.
	_, _, err = Decode([]byte{0xff})
	if err == nil {
		t.Fatal("want decode error")
	}
	if de, ok := err.(*DecodeErr); ok && de.Index != 0 {
		t.Errorf("single-inst failure index %d, want 0", de.Index)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
