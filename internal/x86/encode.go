package x86

import (
	"encoding/binary"
	"fmt"
)

// Encode assembles the instruction into x86-64 machine code.
func Encode(in Inst) ([]byte, error) {
	f, err := in.Form()
	if err != nil {
		return nil, err
	}
	return encodeForm(&in, f)
}

// EncodeBlock assembles a sequence of instructions.
func EncodeBlock(insts []Inst) ([]byte, error) {
	var out []byte
	for i := range insts {
		b, err := Encode(insts[i])
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		out = append(out, b...)
	}
	return out, nil
}

func encodeForm(in *Inst, f *Form) ([]byte, error) {
	var (
		regOp                                    Operand // roleReg
		rmOp                                     Operand // roleRM
		vvvvOp                                   Operand // roleVvvv
		immOp                                    Operand // roleImm
		plusROp                                  Operand // rolePlusR
		hasReg, hasRM, hasVvvv, hasImm, hasPlusR bool
	)
	for i, role := range f.Roles {
		switch role {
		case roleReg:
			regOp, hasReg = in.Args[i], true
		case roleRM:
			rmOp, hasRM = in.Args[i], true
		case roleVvvv:
			vvvvOp, hasVvvv = in.Args[i], true
		case roleImm:
			immOp, hasImm = in.Args[i], true
		case rolePlusR:
			plusROp, hasPlusR = in.Args[i], true
		}
	}

	e := &f.Enc
	var out []byte

	// High-byte registers (AH..BH) are unencodable alongside REX, and
	// SPL/BPL/SIL/DIL (or any extended register) require REX.
	needRex := e.rexW
	rexR, rexX, rexB := false, false, false
	checkReg := func(o Operand, setB, setR bool) error {
		if o.Kind != KindReg {
			return nil
		}
		r := o.Reg
		if r.Class() == ClassGP8 && r >= SPL && r <= DIL {
			needRex = true
		}
		if r.Num() >= 8 {
			if setR {
				rexR = true
			}
			if setB {
				rexB = true
			}
			needRex = true
		}
		return nil
	}
	if hasReg {
		if err := checkReg(regOp, false, true); err != nil {
			return nil, err
		}
	}
	if hasPlusR {
		if err := checkReg(plusROp, true, false); err != nil {
			return nil, err
		}
	}
	if hasRM {
		if rmOp.Kind == KindReg {
			if err := checkReg(rmOp, true, false); err != nil {
				return nil, err
			}
		} else if rmOp.Kind == KindMem {
			if b := rmOp.Mem.Base; b != RegNone && b != RIP && b.Num() >= 8 {
				rexB = true
				needRex = true
			}
			if ix := rmOp.Mem.Index; ix != RegNone && ix.Num() >= 8 {
				rexX = true
				needRex = true
			}
		}
	}
	for _, a := range in.Args {
		if a.Kind == KindReg && a.Reg.IsHighByte() && needRex {
			return nil, fmt.Errorf("x86: cannot encode %s with REX prefix", a.Reg)
		}
	}

	if e.vex {
		out = appendVEX(out, e, rexR, rexX, rexB, vvvvNum(hasVvvv, vvvvOp))
	} else {
		if e.prefix != 0 {
			out = append(out, e.prefix)
		}
		if needRex {
			rex := byte(0x40)
			if e.rexW {
				rex |= 8
			}
			if rexR {
				rex |= 4
			}
			if rexX {
				rex |= 2
			}
			if rexB {
				rex |= 1
			}
			out = append(out, rex)
		}
	}

	// Opcode bytes (VEX encodings carry the map in the VEX prefix, so only
	// the final opcode byte is emitted).
	opc := e.opcode
	if e.vex {
		opc = opc[len(opc)-1:]
	}
	out = append(out, opc...)
	if hasPlusR {
		out[len(out)-1] += byte(plusROp.Reg.Num() & 7)
	}

	if e.hasModRM {
		regField := byte(0)
		if e.digit >= 0 {
			regField = byte(e.digit)
		} else if hasReg {
			regField = byte(regOp.Reg.Num() & 7)
		}
		var err error
		out, err = appendModRM(out, regField, rmOp, hasRM)
		if err != nil {
			return nil, err
		}
	}

	if e.immBytes > 0 {
		if !hasImm {
			return nil, fmt.Errorf("x86: form for %s wants immediate", in.Op)
		}
		out = appendImm(out, immOp.Imm, int(e.immBytes))
	}
	return out, nil
}

func vvvvNum(has bool, o Operand) byte {
	if !has {
		return 0
	}
	return byte(o.Reg.Num())
}

// appendVEX emits a 2- or 3-byte VEX prefix.
func appendVEX(out []byte, e *encSpec, r, x, b bool, vvvv byte) []byte {
	w := byte(0)
	if e.vexW == 1 {
		w = 1
	}
	l := byte(0)
	if e.vexL {
		l = 1
	}
	inv := func(v bool) byte {
		if v {
			return 0
		}
		return 1
	}
	if !x && !b && e.vexMap == 1 && w == 0 {
		// 2-byte form: C5 [R vvvv L pp]
		out = append(out, 0xC5,
			inv(r)<<7|(^vvvv&0xF)<<3|l<<2|e.vexPP)
		return out
	}
	// 3-byte form: C4 [R X B mmmmm] [W vvvv L pp]
	out = append(out, 0xC4,
		inv(r)<<7|inv(x)<<6|inv(b)<<5|e.vexMap,
		w<<7|(^vvvv&0xF)<<3|l<<2|e.vexPP)
	return out
}

// appendModRM emits the ModRM byte and, for memory operands, the SIB byte
// and displacement.
func appendModRM(out []byte, regField byte, rm Operand, hasRM bool) ([]byte, error) {
	if !hasRM {
		// Forms like "0F 71 /6 ib" put the single register operand in rm.
		return nil, fmt.Errorf("x86: modrm form missing rm operand")
	}
	if rm.Kind == KindReg {
		out = append(out, 0xC0|regField<<3|byte(rm.Reg.Num()&7))
		return out, nil
	}
	if rm.Kind != KindMem {
		return nil, fmt.Errorf("x86: bad rm operand kind %d", rm.Kind)
	}
	m := rm.Mem
	if m.Index == RSP {
		return nil, fmt.Errorf("x86: rsp cannot be an index register")
	}

	// RIP-relative: mod=00 rm=101 disp32.
	if m.Base == RIP {
		if m.Index != RegNone {
			return nil, fmt.Errorf("x86: rip-relative with index")
		}
		out = append(out, regField<<3|0x05)
		return appendImm(out, int64(m.Disp), 4), nil
	}

	// Absolute or index-only: mod=00 rm=100, SIB base=101, disp32.
	if m.Base == RegNone {
		out = append(out, regField<<3|0x04)
		scaleBits := scaleLog(m.Scale)
		idx := byte(4) // none
		if m.Index != RegNone {
			idx = byte(m.Index.Num() & 7)
		}
		out = append(out, scaleBits<<6|idx<<3|0x05)
		return appendImm(out, int64(m.Disp), 4), nil
	}

	baseNum := byte(m.Base.Num() & 7)
	needSIB := m.Index != RegNone || baseNum == 4 // rsp/r12 base requires SIB
	// rbp/r13 base cannot use mod=00 (that slot means disp32).
	mod := byte(0)
	dispBytes := 0
	switch {
	case m.Disp == 0 && baseNum != 5:
		mod, dispBytes = 0, 0
	case m.Disp >= -128 && m.Disp <= 127:
		mod, dispBytes = 1, 1
	default:
		mod, dispBytes = 2, 4
	}

	if needSIB {
		out = append(out, mod<<6|regField<<3|0x04)
		scaleBits := scaleLog(m.Scale)
		idx := byte(4)
		if m.Index != RegNone {
			idx = byte(m.Index.Num() & 7)
		}
		out = append(out, scaleBits<<6|idx<<3|baseNum)
	} else {
		out = append(out, mod<<6|regField<<3|baseNum)
	}
	if dispBytes > 0 {
		out = appendImm(out, int64(m.Disp), dispBytes)
	}
	return out, nil
}

func scaleLog(s uint8) byte {
	switch s {
	case 0, 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return 0
}

func appendImm(out []byte, v int64, n int) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return append(out, buf[:n]...)
}
