package x86

// LengthChangingPrefix reports whether the encoded instruction carries a
// length-changing prefix: a 0x66 operand-size prefix on an opcode whose
// immediate shrinks from 4 to 2 bytes because of it. The predecoder
// determines instruction lengths speculatively assuming the default
// operand size, so such instructions force a predecoder restart — a stall
// of FrontEnd.LCPStall cycles in the modeled front end.
//
// The classification is by raw bytes so it matches what the hardware
// predecoder sees; instructions our decoder cannot handle simply report
// false (they never reach the simulator anyway).
func LengthChangingPrefix(raw []byte) bool {
	has66 := false
	i := 0
scan:
	for i < len(raw) {
		switch raw[i] {
		case 0x66:
			has66 = true
			i++
		case 0x67, 0xF0, 0xF2, 0xF3, 0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65:
			i++
		default:
			break scan
		}
	}
	if !has66 || i >= len(raw) {
		return false
	}
	if raw[i]&0xF0 == 0x40 { // REX
		i++
		if i >= len(raw) {
			return false
		}
	}
	op := raw[i]
	switch {
	case op == 0x05 || op == 0x0D || op == 0x15 || op == 0x1D ||
		op == 0x25 || op == 0x2D || op == 0x35 || op == 0x3D:
		return true // ALU ax, imm16
	case op == 0x68 || op == 0x69:
		return true // push imm16; imul r, rm, imm16
	case op == 0x81:
		return true // group-1 ALU rm, imm16
	case op == 0xA9:
		return true // test ax, imm16
	case op >= 0xB8 && op <= 0xBF:
		return true // mov r16, imm16
	case op == 0xC7:
		return true // mov rm16, imm16
	case op == 0xF7:
		// test rm16, imm16 is /0 (and the aliased /1); the other group-3
		// forms carry no immediate.
		return i+1 < len(raw) && (raw[i+1]>>3)&7 <= 1
	}
	return false
}
