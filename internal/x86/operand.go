package x86

import (
	"fmt"
	"strings"
)

// OperandKind discriminates the Operand union.
type OperandKind uint8

const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// Mem is a memory reference: [base + index*scale + disp].
// Size is the access width in bytes; it is derived from the instruction form
// during parsing/decoding and is 0 while unresolved (e.g. LEA).
type Mem struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4 or 8; 0 means no index
	Disp  int32
	Size  uint8
}

// Operand is one instruction operand: a register, an immediate, or a memory
// reference.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  Mem
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp returns a memory operand.
func MemOp(m Mem) Operand { return Operand{Kind: KindMem, Mem: m} }

// IsReg reports whether the operand is the given register.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KindReg && o.Reg == r }

// String renders the operand in Intel syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", uint64(-o.Imm))
		}
		return fmt.Sprintf("0x%x", uint64(o.Imm))
	case KindMem:
		return o.Mem.String()
	}
	return "<none>"
}

// String renders the memory reference in Intel syntax, e.g.
// "qword ptr [rax+rbx*8+0x10]".
func (m Mem) String() string {
	var b strings.Builder
	switch m.Size {
	case 1:
		b.WriteString("byte ptr ")
	case 2:
		b.WriteString("word ptr ")
	case 4:
		b.WriteString("dword ptr ")
	case 8:
		b.WriteString("qword ptr ")
	case 16:
		b.WriteString("xmmword ptr ")
	case 32:
		b.WriteString("ymmword ptr ")
	}
	b.WriteByte('[')
	wrote := false
	if m.Base != RegNone {
		b.WriteString(m.Base.String())
		wrote = true
	}
	if m.Index != RegNone {
		if wrote {
			b.WriteByte('+')
		}
		b.WriteString(m.Index.String())
		// The scale is spelled out even when 1 if there is no base: plain
		// "[rsi+disp]" would read back as a base register, losing the
		// index-only (SIB, no base) encoding.
		if m.Scale > 1 || m.Base == RegNone {
			fmt.Fprintf(&b, "*%d", m.Scale)
		}
		wrote = true
	}
	if m.Disp != 0 || !wrote {
		d := int64(m.Disp)
		switch {
		case !wrote:
			fmt.Fprintf(&b, "0x%x", uint64(uint32(m.Disp)))
		case d < 0:
			fmt.Fprintf(&b, "-0x%x", uint64(-d))
		default:
			fmt.Fprintf(&b, "+0x%x", uint64(d))
		}
	}
	b.WriteByte(']')
	return b.String()
}
