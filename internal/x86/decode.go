package x86

import (
	"encoding/binary"
	"fmt"
)

// decKey identifies a decode-table bucket.
type decKey struct {
	vex    bool
	prefix byte  // legacy mandatory prefix: 0, 0x66, 0xF2 or 0xF3
	vexPP  uint8 // VEX pp field
	vexMap uint8 // VEX mmmmm field
	opcode string
}

var decIndex map[decKey][]int

func buildDecodeIndex() {
	decIndex = make(map[decKey][]int, len(Forms))
	for i := range Forms {
		e := &Forms[i].Enc
		if e.vex {
			k := decKey{vex: true, vexPP: e.vexPP, vexMap: e.vexMap,
				opcode: string(e.opcode[len(e.opcode)-1])}
			decIndex[k] = append(decIndex[k], i)
			continue
		}
		if e.plusR {
			base := e.opcode[len(e.opcode)-1]
			for r := byte(0); r < 8; r++ {
				opc := append(append([]byte{}, e.opcode[:len(e.opcode)-1]...), base+r)
				k := decKey{prefix: e.prefix, opcode: string(opc)}
				decIndex[k] = append(decIndex[k], i)
			}
			continue
		}
		k := decKey{prefix: e.prefix, opcode: string(e.opcode)}
		decIndex[k] = append(decIndex[k], i)
	}
}

// DecodeErr describes a byte sequence that is not a valid instruction in the
// supported subset. For block-level decoding, Offset is the byte position of
// the failing instruction within the whole block and Index is how many
// instructions decoded successfully before it (so the failure is "instruction
// #Index at byte Offset"). Single-instruction Decode always reports Index 0.
type DecodeErr struct {
	Offset int
	Index  int
	Msg    string
}

func (e *DecodeErr) Error() string {
	if e.Index > 0 {
		return fmt.Sprintf("x86: decode error at offset %d (instruction %d): %s", e.Offset, e.Index, e.Msg)
	}
	return fmt.Sprintf("x86: decode error at offset %d: %s", e.Offset, e.Msg)
}

// Decode decodes the first instruction in code, returning the instruction
// and its encoded length.
func Decode(code []byte) (Inst, int, error) {
	d := decoder{code: code}
	in, err := d.decode()
	if err != nil {
		return Inst{}, 0, err
	}
	return in, d.pos, nil
}

// DecodeBlock decodes an entire basic block of machine code.
func DecodeBlock(code []byte) ([]Inst, error) {
	var out []Inst
	off := 0
	for off < len(code) {
		in, n, err := Decode(code[off:])
		if err != nil {
			if de, ok := err.(*DecodeErr); ok {
				de.Offset += off
				de.Index = len(out)
			}
			return nil, err
		}
		out = append(out, in)
		off += n
	}
	return out, nil
}

type decoder struct {
	code []byte
	pos  int

	// prefix state
	pfx66, pfxF2, pfxF3 bool
	rex                 byte
	hasRex              bool
	vex                 bool
	vexR, vexX, vexB    bool
	vexW                bool
	vexL                bool
	vexPP               uint8
	vexMap              uint8
	vexVvvv             byte
	opcodeEnd           int // position just past the opcode bytes
}

func (d *decoder) errf(format string, args ...any) error {
	return &DecodeErr{Offset: d.pos, Msg: fmt.Sprintf(format, args...)}
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, d.errf("truncated instruction")
	}
	b := d.code[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) decode() (Inst, error) {
	// Legacy prefixes.
	for {
		b, err := d.byte()
		if err != nil {
			return Inst{}, err
		}
		switch b {
		case 0x66:
			d.pfx66 = true
			continue
		case 0xF2:
			d.pfxF2 = true
			continue
		case 0xF3:
			d.pfxF3 = true
			continue
		}
		if b&0xF0 == 0x40 { // REX
			d.rex, d.hasRex = b, true
			b2, err := d.byte()
			if err != nil {
				return Inst{}, err
			}
			b = b2
			return d.decodeOpcode(b)
		}
		if b == 0xC4 || b == 0xC5 {
			if err := d.decodeVEX(b); err != nil {
				return Inst{}, err
			}
			op, err := d.byte()
			if err != nil {
				return Inst{}, err
			}
			return d.decodeOpcode(op)
		}
		return d.decodeOpcode(b)
	}
}

func (d *decoder) decodeVEX(first byte) error {
	d.vex = true
	b1, err := d.byte()
	if err != nil {
		return err
	}
	if first == 0xC5 {
		d.vexR = b1&0x80 == 0
		d.vexMap = 1
		d.vexVvvv = ^(b1 >> 3) & 0xF
		d.vexL = b1&0x04 != 0
		d.vexPP = b1 & 3
		return nil
	}
	b2, err := d.byte()
	if err != nil {
		return err
	}
	d.vexR = b1&0x80 == 0
	d.vexX = b1&0x40 == 0
	d.vexB = b1&0x20 == 0
	d.vexMap = b1 & 0x1F
	d.vexW = b2&0x80 != 0
	d.vexVvvv = ^(b2 >> 3) & 0xF
	d.vexL = b2&0x04 != 0
	d.vexPP = b2 & 3
	return nil
}

func (d *decoder) decodeOpcode(b byte) (Inst, error) {
	var key decKey
	if d.vex {
		key = decKey{vex: true, vexPP: d.vexPP, vexMap: d.vexMap, opcode: string(b)}
	} else {
		opc := []byte{b}
		if b == 0x0F {
			b1, err := d.byte()
			if err != nil {
				return Inst{}, err
			}
			opc = append(opc, b1)
			if b1 == 0x38 || b1 == 0x3A {
				b2, err := d.byte()
				if err != nil {
					return Inst{}, err
				}
				opc = append(opc, b2)
			}
		}
		prefix := byte(0)
		switch {
		case d.pfxF3:
			prefix = 0xF3
		case d.pfxF2:
			prefix = 0xF2
		case d.pfx66:
			prefix = 0x66
		}
		key = decKey{prefix: prefix, opcode: string(opc)}
	}

	cands := decIndex[key]
	if len(cands) == 0 {
		return Inst{}, d.errf("unknown opcode % x (prefix %x, vex %v)", key.opcode, key.prefix, d.vex)
	}

	// Peek at the ModRM byte, which several candidates may need for
	// disambiguation (/digit forms, reg-vs-mem rm).
	var modrm byte
	hasModRMByte := false
	if d.pos < len(d.code) {
		modrm = d.code[d.pos]
		hasModRMByte = true
	}

	rexW := d.hasRex && d.rex&8 != 0
	for _, idx := range cands {
		f := &Forms[idx]
		e := &f.Enc
		if !d.vex && e.rexW != rexW {
			continue
		}
		if d.vex {
			if e.vexL != d.vexL {
				continue
			}
			if e.vexW != 2 && (e.vexW == 1) != d.vexW {
				continue
			}
			if !hasVvvvRole(f) && d.vexVvvv != 0 {
				continue
			}
		}
		if e.hasModRM {
			if !hasModRMByte {
				continue
			}
			if e.digit >= 0 && (modrm>>3)&7 != byte(e.digit) {
				continue
			}
			// Check rm kind against the pattern.
			rmIsMem := modrm>>6 != 3
			if p, ok := rmPattern(f); ok {
				if rmIsMem && !p.AllowsMem() {
					continue
				}
				if !rmIsMem && !p.AllowsReg() {
					continue
				}
			}
		}
		d.opcodeEnd = d.pos
		return d.decodeOperands(f)
	}
	return Inst{}, d.errf("no matching form for opcode % x", key.opcode)
}

func hasVvvvRole(f *Form) bool {
	for _, r := range f.Roles {
		if r == roleVvvv {
			return true
		}
	}
	return false
}

func rmPattern(f *Form) (ArgPat, bool) {
	for i, r := range f.Roles {
		if r == roleRM {
			return f.Args[i], true
		}
	}
	return PatNone, false
}

// decodeOperands consumes ModRM/SIB/disp/imm and materializes operands.
func (d *decoder) decodeOperands(f *Form) (Inst, error) {
	e := &f.Enc
	in := Inst{Op: f.Op}
	if len(f.Args) == 0 {
		return in, nil
	}
	in.Args = make([]Operand, len(f.Args))

	var regField, rmField byte
	var mod byte
	var memOp Operand
	rmIsMem := false
	if e.hasModRM {
		b, err := d.byte()
		if err != nil {
			return Inst{}, err
		}
		mod = b >> 6
		regField = (b >> 3) & 7
		rmField = b & 7
		if mod != 3 {
			rmIsMem = true
			m, err := d.decodeMem(mod, rmField)
			if err != nil {
				return Inst{}, err
			}
			memOp = MemOp(m)
		}
	}

	var imm int64
	if e.immBytes > 0 {
		if d.pos+int(e.immBytes) > len(d.code) {
			return Inst{}, d.errf("truncated immediate")
		}
		raw := d.code[d.pos : d.pos+int(e.immBytes)]
		d.pos += int(e.immBytes)
		switch e.immBytes {
		case 1:
			imm = int64(int8(raw[0]))
		case 2:
			imm = int64(int16(binary.LittleEndian.Uint16(raw)))
		case 4:
			imm = int64(int32(binary.LittleEndian.Uint32(raw)))
		case 8:
			imm = int64(binary.LittleEndian.Uint64(raw))
		}
	}

	extR, extB := 0, 0
	if d.hasRex {
		if d.rex&4 != 0 {
			extR = 8
		}
		if d.rex&1 != 0 {
			extB = 8
		}
	}
	if d.vex {
		if d.vexR {
			extR = 8
		}
		if d.vexB {
			extB = 8
		}
	}

	for i, role := range f.Roles {
		p := f.Args[i]
		switch role {
		case roleReg:
			in.Args[i] = RegOp(d.regFor(p, int(regField)+extR))
		case roleRM:
			if rmIsMem {
				m := memOp
				m.Mem.Size = uint8(p.MemSize())
				in.Args[i] = m
			} else {
				in.Args[i] = RegOp(d.regFor(p, int(rmField)+extB))
			}
		case roleVvvv:
			in.Args[i] = RegOp(d.regFor(p, int(d.vexVvvv)))
		case roleImm:
			in.Args[i] = ImmOp(imm)
		case rolePlusR:
			base := e.opcode[len(e.opcode)-1]
			num := int(d.lastOpcodeByte()-base) + extB
			in.Args[i] = RegOp(d.regFor(p, num))
		case roleImplied:
			if p == PatCL {
				in.Args[i] = RegOp(CL)
			}
		}
	}
	return in, nil
}

// lastOpcodeByte returns the final opcode byte of the current instruction;
// for +r forms it carries the register number in its low three bits.
func (d *decoder) lastOpcodeByte() byte { return d.code[d.opcodeEnd-1] }

// regFor materializes a register operand of the class demanded by the
// pattern from a hardware register number. 8-bit numbers 4–7 name the
// legacy high-byte registers when no REX prefix is present.
func (d *decoder) regFor(p ArgPat, num int) Reg {
	switch p.regClass() {
	case ClassGP8:
		if !d.hasRex && !d.vex && num >= 4 && num <= 7 {
			return AH + Reg(num-4)
		}
		return GPReg(num, 1)
	case ClassGP16:
		return GPReg(num, 2)
	case ClassGP32:
		return GPReg(num, 4)
	case ClassGP64:
		return GPReg(num, 8)
	case ClassXMM:
		return VecReg(num, 16)
	case ClassYMM:
		return VecReg(num, 32)
	}
	return RegNone
}

func (d *decoder) decodeMem(mod, rmField byte) (Mem, error) {
	var m Mem
	extB, extX := 0, 0
	if d.hasRex {
		if d.rex&1 != 0 {
			extB = 8
		}
		if d.rex&2 != 0 {
			extX = 8
		}
	}
	if d.vex {
		if d.vexB {
			extB = 8
		}
		if d.vexX {
			extX = 8
		}
	}

	dispSize := 0
	switch mod {
	case 1:
		dispSize = 1
	case 2:
		dispSize = 4
	}

	if rmField == 4 { // SIB
		sib, err := d.byte()
		if err != nil {
			return m, err
		}
		scale := sib >> 6
		idx := int((sib>>3)&7) + extX
		base := int(sib&7) + extB
		if idx != 4 { // index=100 with REX.X=0 means none; r12 (12) is valid
			m.Index = GPReg(idx, 8)
			m.Scale = 1 << scale
		}
		if sib&7 == 5 && mod == 0 {
			dispSize = 4 // no base
		} else {
			m.Base = GPReg(base, 8)
		}
	} else if rmField == 5 && mod == 0 {
		m.Base = RIP
		dispSize = 4
	} else {
		m.Base = GPReg(int(rmField)+extB, 8)
	}

	if dispSize > 0 {
		if d.pos+dispSize > len(d.code) {
			return m, d.errf("truncated displacement")
		}
		raw := d.code[d.pos : d.pos+dispSize]
		d.pos += dispSize
		if dispSize == 1 {
			m.Disp = int32(int8(raw[0]))
		} else {
			m.Disp = int32(binary.LittleEndian.Uint32(raw))
		}
	}
	return m, nil
}
