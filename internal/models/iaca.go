package models

import (
	"hash/fnv"

	"bhive/internal/machine"
	"bhive/internal/memo"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// tableOpts configures how a simulator-backed model's instruction tables
// deviate from the silicon ground truth.
type tableOpts struct {
	salt            string
	perturbProb     float64 // fraction of scalar table entries that drifted
	perturbStrength float64
	vecProb         float64 // vector entries are less well documented
	vecStrength     float64

	divBug     bool // model the 32-bit divide as the 64-bit one
	zeroIdioms bool // model knows dependency-breaking idioms
	moveElim   bool // model knows move elimination
	fuseLoads  bool // a load+op is one scheduling unit (cannot hoist loads)
	loadLat    int

	// vecPortDrop is the probability that a vector µop's port table entry
	// is wrong and binds it to a single port. Port-pressure mistakes — not
	// latency — are what make throughput-bound vectorized kernels hard
	// for every model (>30% error in the paper's per-cluster figures).
	vecPortDrop float64
	// vecSlowProb is the probability the table half-pumps a vector µop
	// (issue every other cycle) — the classic ymm-as-2x-xmm mistake.
	vecSlowProb float64
}

func isVecClass(c uarch.UopClass) bool {
	switch c {
	case uarch.ClassVecALU, uarch.ClassVecLogic, uarch.ClassVecMul,
		uarch.ClassVecShift, uarch.ClassFPAdd, uarch.ClassFPMul,
		uarch.ClassFMA, uarch.ClassFPDiv, uarch.ClassShuffle:
		return true
	}
	return false
}

// buildSimInsts converts a block into the model's view of it.
func buildSimInsts(cpu *uarch.CPU, b *x86.Block, o tableOpts) ([]simInst, error) {
	div64 := divReference(cpu)
	out := make([]simInst, 0, len(b.Insts))
	for i := range b.Insts {
		in := &b.Insts[i]
		var (
			d   uarch.Desc
			err error
		)
		if o.zeroIdioms && o.moveElim {
			d, err = memo.Describe(cpu, in)
		} else {
			d, err = memo.DescribeRaw(cpu, in)
			if err == nil && o.zeroIdioms {
				if full, e2 := memo.Describe(cpu, in); e2 == nil && full.ZeroIdiom {
					d = full
				}
			}
		}
		if err != nil {
			return nil, err
		}

		si := simInst{
			fused:     d.FusedUops,
			zeroIdiom: d.ZeroIdiom,
			elimMove:  d.EliminatedMove,
			text:      in.String(),
		}
		si.addr, si.data, si.writes = machine.RegSets(in)

		for _, u := range d.Uops {
			su := simUop{
				ports: u.Ports,
				lat:   int(u.Lat),
				occ:   int(u.Occupancy),
				name:  u.Class.String(),
			}
			switch u.Class {
			case uarch.ClassLoad:
				su.isLoad = true
				if o.loadLat > 0 {
					su.lat = o.loadLat
				}
			case uarch.ClassStoreAddr, uarch.ClassStoreData:
				// store timing is rarely the modelling problem
			case uarch.ClassIntDiv:
				if o.divBug && argSizeBelow64(in) {
					// The model's table only has the 64-bit entry.
					su.lat, su.occ = div64, div64
				}
				su.lat = int(perturb(uint8(su.lat), in.Op, o.salt, o.perturbProb/2, o.perturbStrength/2))
				if su.occ > su.lat {
					su.occ = su.lat
				}
			default:
				prob, strength := o.perturbProb, o.perturbStrength
				if isVecClass(u.Class) {
					prob, strength = o.vecProb, o.vecStrength
					if portDropped(in.Op, o.salt, o.vecPortDrop) {
						su.ports = lowestPort(su.ports)
					}
					if portDropped(in.Op, o.salt+"/occ", o.vecSlowProb) && su.occ < 2 {
						su.occ = 2
					}
				}
				su.lat = int(perturb(uint8(su.lat), in.Op, o.salt, prob, strength))
			}
			si.uops = append(si.uops, su)
		}

		if o.fuseLoads {
			si.uops = fuseLoadUops(si.uops)
		}
		out = append(out, si)
	}
	if len(out) == 0 {
		return nil, errEmptyBlock
	}
	return out, nil
}

// fuseLoadUops merges a load µop into the first computation µop: the fused
// unit inherits the sum of latencies and, because it is no longer a load,
// waits for every input register — the scheduling mistake the paper's last
// case study exposes in llvm-mca.
func fuseLoadUops(uops []simUop) []simUop {
	loadIdx := -1
	for i, u := range uops {
		if u.isLoad {
			loadIdx = i
			break
		}
	}
	if loadIdx < 0 {
		return uops
	}
	computeIdx := -1
	for i, u := range uops {
		if !u.isLoad && u.name != "store-addr" && u.name != "store-data" {
			computeIdx = i
			break
		}
	}
	if computeIdx < 0 {
		return uops // pure load: nothing to fuse with
	}
	fused := uops[computeIdx]
	fused.lat += uops[loadIdx].lat
	fused.name = "load+" + fused.name
	out := make([]simUop, 0, len(uops)-1)
	for i, u := range uops {
		switch i {
		case loadIdx:
		case computeIdx:
			out = append(out, fused)
		default:
			out = append(out, u)
		}
	}
	return out
}

// divReference returns the 64-bit divide latency in the CPU's tables.
func divReference(cpu *uarch.CPU) int {
	in := x86.NewInst(x86.DIV, x86.RegOp(x86.RCX))
	d, err := memo.Describe(cpu, &in)
	if err != nil || len(d.Uops) == 0 {
		return 90
	}
	return int(d.Uops[0].Lat)
}

// portDropped decides deterministically whether a model's table binds the
// op to a single port.
func portDropped(op x86.Op, salt string, prob float64) bool {
	if prob <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(salt))
	h.Write([]byte{0x7E, byte(op), byte(op >> 8)})
	return float64(h.Sum64()%1000)/1000 < prob
}

// lowestPort reduces a port set to its lowest member.
func lowestPort(p uarch.PortSet) uarch.PortSet {
	for i := 0; i < 16; i++ {
		if p.Has(i) {
			return uarch.Ports(i)
		}
	}
	return p
}

func argSizeBelow64(in *x86.Inst) bool {
	if len(in.Args) == 0 {
		return false
	}
	a := in.Args[0]
	switch a.Kind {
	case x86.KindReg:
		return a.Reg.Size() < 8
	case x86.KindMem:
		return int(a.Mem.Size) < 8
	}
	return false
}

// IACA is the vendor-built analyzer: a port-binding simulator that knows
// the proprietary fast paths (zero idioms, move elimination, micro-fusion)
// and dispatches loads as soon as their addresses are ready. Its documented
// weakness is the divider table: a 32-bit divide is costed like the 64-bit
// form (the paper's first case study, where IACA predicts 98 cycles against
// a measured 21.62).
type IACA struct {
	cpu  *uarch.CPU
	opts tableOpts
}

// NewIACA builds the IACA-like model for a CPU.
func NewIACA(cpu *uarch.CPU) *IACA {
	return &IACA{
		cpu: cpu,
		opts: tableOpts{
			salt:            "iaca/" + cpu.Name,
			perturbProb:     0.12,
			perturbStrength: 0.25,
			vecProb:         0.90,
			vecStrength:     0.60,
			divBug:          true,
			zeroIdioms:      true,
			moveElim:        true,
			fuseLoads:       false,
			vecPortDrop:     0.45,
			vecSlowProb:     0.55,
		},
	}
}

// Name implements Predictor.
func (m *IACA) Name() string { return "IACA" }

// Predict implements Predictor.
func (m *IACA) Predict(b *x86.Block) (float64, error) {
	insts, err := buildSimInsts(m.cpu, b, m.opts)
	if err != nil {
		return 0, err
	}
	return derivedPrediction(insts, m.cpu.IssueWidth, m.cpu.NumPorts, len(b.Insts)), nil
}

// Schedule implements ScheduleTracer.
func (m *IACA) Schedule(b *x86.Block, iterations int) ([]ScheduleEntry, error) {
	insts, err := buildSimInsts(m.cpu, b, m.opts)
	if err != nil {
		return nil, err
	}
	var trace []ScheduleEntry
	simulate(insts, m.cpu.IssueWidth, m.cpu.NumPorts, iterations, &trace)
	return trace, nil
}
