package models

import (
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// IACAPure is a calibration-only variant with no table perturbation; it
// exposes the structural gap between the model simulator and the machine.
type IACAPure struct{ IACA }

// NewIACAPure builds the unperturbed variant (used by calibration tests).
func NewIACAPure(cpu *uarch.CPU) *IACAPure {
	m := NewIACA(cpu)
	m.opts.perturbProb = 0
	m.opts.vecProb = 0
	m.opts.divBug = false
	return &IACAPure{IACA: *m}
}

// Name implements Predictor.
func (m *IACAPure) Name() string { return "IACA-pure" }

var _ Predictor = (*IACAPure)(nil)
var _ = x86.BAD
