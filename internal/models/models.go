// Package models implements the four basic-block throughput predictors the
// paper validates against the measurement framework: an IACA-like port
// simulator with vendor knowledge, an llvm-mca-like simulator driven by a
// compiler scheduling model, an OSACA-like analytical port-pressure model
// behind a fragile parser, and (in the ithemal subpackage) a learned LSTM
// regressor.
//
// Each model carries deliberately injected, documented inaccuracies that
// reproduce the error profiles the paper reports — confusing the 32-bit
// divide with the 64-bit one, missing zero idioms, fusing a load with its
// consumer so independent loads cannot be hoisted, treating
// memory-destination immediates as NOPs, and so on.
package models

import (
	"hash/fnv"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Predictor predicts the steady-state inverse throughput (cycles per
// iteration) of a basic block — IACA's definition, as used by the paper.
type Predictor interface {
	Name() string
	Predict(b *x86.Block) (float64, error)
}

// ScheduleEntry is one row of a predicted execution trace (for the paper's
// scheduling-comparison figure).
type ScheduleEntry struct {
	Iteration int
	Inst      string
	Uop       string
	Dispatch  int64
	Complete  int64
}

// ScheduleTracer is implemented by simulator-backed models that can report
// the schedule they predict.
type ScheduleTracer interface {
	Schedule(b *x86.Block, iterations int) ([]ScheduleEntry, error)
}

// perturb deterministically scales a latency the way a hand-maintained,
// partially wrong latency table would: a salted hash of the opcode decides
// whether and how far this entry drifted from silicon.
func perturb(lat uint8, op x86.Op, salt string, prob float64, strength float64) uint8 {
	if lat == 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(salt))
	h.Write([]byte{byte(op), byte(op >> 8)})
	v := h.Sum64()
	if float64(v%1000)/1000 >= prob {
		return lat
	}
	// Drift by ±strength in four steps.
	factors := []float64{1 - strength, 1 - strength/2, 1 + strength/2, 1 + strength}
	f := factors[(v>>10)%4]
	out := int(float64(lat)*f + 0.5)
	if out < 1 {
		out = 1
	}
	if out > 250 {
		out = 250
	}
	return uint8(out)
}

// All returns the analytical predictors for a CPU in paper order — the
// three reimplemented third-party models plus the bound-based Facile
// predictor (the learned model lives in the ithemal subpackage and needs
// training).
func All(cpu *uarch.CPU) []Predictor {
	return []Predictor{NewIACA(cpu), NewLLVMMCA(cpu), NewOSACA(cpu), NewFacile(cpu)}
}
