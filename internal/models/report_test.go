package models

import (
	"strings"
	"testing"

	"bhive/internal/uarch"
)

func TestReportRendersAnalysis(t *testing.T) {
	hsw := uarch.Haswell()
	text, err := Report(hsw, parse(t, crcBlock))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Block throughput:",
		"p0", "p7",
		"move eliminated",
		"front-end bound:",
		"bound:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// The CRC block is latency-bound.
	if !strings.Contains(text, "dependency chains") {
		t.Errorf("CRC block should report a latency bound:\n%s", text)
	}
}

func TestReportZeroIdiom(t *testing.T) {
	hsw := uarch.Haswell()
	text, err := Report(hsw, parse(t, "vxorps %xmm1, %xmm1, %xmm1"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "zero idiom") {
		t.Errorf("report must flag the idiom:\n%s", text)
	}
}

func TestReportPortBound(t *testing.T) {
	hsw := uarch.Haswell()
	// Ten independent FMAs on two ports: clearly backend-port bound.
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("vfmadd231ps %ymm10, %ymm11, %ymm")
		sb.WriteByte(byte('0' + i))
		sb.WriteString("\n")
	}
	text, err := Report(hsw, parse(t, sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "backend port") {
		t.Errorf("FMA stream should be port bound:\n%s", text)
	}
	if _, err := Report(hsw, parse(t, "nop")); err != nil {
		t.Fatalf("nop block: %v", err)
	}
}
