package models

import (
	"fmt"

	"bhive/internal/memo"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// OSACA models the open-source analyzer: an analytical port-pressure model
// (each micro-op spreads its reciprocal throughput evenly over its ports;
// the block's throughput is the busiest port) refined with a loop-carried
// dependency bound, fed by measured instruction tables, behind a fragile
// instruction parser. The paper reports two parser-driven failure modes we
// reproduce exactly:
//
//   - "any instruction that reads an immediate operand and writes to
//     memory (e.g. add [rbx], 1)" is treated as a NOP, under-reporting
//     many blocks;
//   - several other forms are not recognized at all, in which case the
//     tool cannot time the block (the '-' entries of the case study —
//     8-bit memory accesses, as in the Gzip CRC block's xorb).
type OSACA struct {
	cpu *uarch.CPU

	// lcdWeight discounts the loop-carried dependency bound: OSACA's
	// latency table is optimistic.
	lcdWeight float64
	opts      tableOpts
}

// ErrUnsupportedForm is returned when OSACA's parser rejects a block.
type ErrUnsupportedForm struct {
	Inst string
}

func (e *ErrUnsupportedForm) Error() string {
	return fmt.Sprintf("osaca: unrecognized instruction form %q", e.Inst)
}

// NewOSACA builds the OSACA-like model for a CPU.
func NewOSACA(cpu *uarch.CPU) *OSACA {
	return &OSACA{
		cpu:       cpu,
		lcdWeight: 0.60,
		opts: tableOpts{
			salt:            "osaca/" + cpu.Name,
			perturbProb:     0.50,
			perturbStrength: 0.65,
			vecProb:         0.70,
			vecStrength:     0.75,
			zeroIdioms:      false,
			moveElim:        false,
		},
	}
}

// Name implements Predictor.
func (m *OSACA) Name() string { return "OSACA" }

// parseCheck reproduces the parser bugs: it returns skip=true for
// memory-destination-with-immediate forms (treated as NOPs) and an error
// for forms the parser does not recognize.
func parseCheck(in *x86.Inst) (skip bool, err error) {
	// 8-bit memory operands and high-byte registers trip the parser.
	for _, a := range in.Args {
		if a.Kind == x86.KindMem && a.Mem.Size == 1 {
			return false, &ErrUnsupportedForm{Inst: in.String()}
		}
		if a.Kind == x86.KindReg && a.Reg.IsHighByte() {
			return false, &ErrUnsupportedForm{Inst: in.String()}
		}
	}
	// Memory destination + immediate source => parsed as a NOP.
	if len(in.Args) >= 2 && in.Args[0].Kind == x86.KindMem &&
		in.Args[len(in.Args)-1].Kind == x86.KindImm && in.IsStore() {
		return true, nil
	}
	return false, nil
}

// Predict implements Predictor.
func (m *OSACA) Predict(b *x86.Block) (float64, error) {
	if len(b.Insts) == 0 {
		return 0, errEmptyBlock
	}
	pressure := make([]float64, m.cpu.NumPorts)
	// Per-register dependency chains. The block is swept several times and
	// the LCD bound is the steady-state chain *growth* per sweep: latency
	// that does not feed the next iteration (a load whose destination is
	// rewritten every time) must not count.
	const nregs = 33
	var chain [nregs]float64
	frontEnd := 0.0

	const sweeps = 4
	var peak [sweeps + 1]float64
	for sweep := 1; sweep <= sweeps; sweep++ {
		for i := range b.Insts {
			in := &b.Insts[i]
			skip, err := parseCheck(in)
			if err != nil {
				return 0, err
			}
			if skip {
				continue
			}
			d, err := memo.DescribeRaw(m.cpu, in)
			if err != nil {
				return 0, err
			}

			instLat := 0.0
			for _, u := range d.Uops {
				if u.Class != uarch.ClassStoreAddr && u.Class != uarch.ClassStoreData {
					lat := perturb(u.Lat, in.Op, m.opts.salt, m.effProb(u.Class), m.effStrength(u.Class))
					instLat += float64(lat)
				}
				if sweep > 1 {
					continue
				}
				// Port pressure: spread each µop over its ports. The
				// reciprocal-throughput table is itself hand-measured and
				// drifts like the latency table does.
				cost := float64(perturb(16, in.Op, m.opts.salt+"/tp",
					m.effProb(u.Class), m.effStrength(u.Class))) / 16
				if u.Occupancy > 0 {
					// Fixed reciprocal-throughput table entry for the
					// divider: OSACA's table is not width-aware (the
					// case-study underprediction: 12.25 vs 21.62 measured).
					cost = 12
					if u.Class == uarch.ClassFPDiv {
						cost = float64(u.Occupancy)
					}
				}
				if isVecClass(u.Class) {
					// OSACA's community port tables bind each vector µop to
					// a single port (vxorps costed as a full
					// 1.00-throughput XOR in the case study); which port
					// the table picked is a per-opcode accident.
					allowed := make([]int, 0, 4)
					for p := 0; p < m.cpu.NumPorts; p++ {
						if u.Ports.Has(p) {
							allowed = append(allowed, p)
						}
					}
					if len(allowed) > 0 {
						pressure[allowed[int(in.Op)%len(allowed)]] += cost
					}
				} else {
					n := u.Ports.Count()
					for p := 0; p < m.cpu.NumPorts; p++ {
						if u.Ports.Has(p) {
							pressure[p] += cost / float64(n)
						}
					}
				}
			}
			if sweep == 1 {
				frontEnd += float64(d.FusedUops)
			}

			// Propagate latency along register chains. Status flags
			// (id 32) are excluded: renamed flags do not serialize
			// ordinary ALU sequences.
			addr, data, writes := regUse(in)
			start := 0.0
			for _, r := range data {
				if r != 32 && chain[r] > start {
					start = chain[r]
				}
			}
			for _, r := range addr {
				if chain[r] > start {
					start = chain[r]
				}
			}
			for _, r := range writes {
				if r != 32 {
					chain[r] = start + instLat
				}
			}
		}
		for _, c := range chain {
			if c > peak[sweep] {
				peak[sweep] = c
			}
		}
	}
	lcd := (peak[sweeps] - peak[sweeps/2]) / float64(sweeps-sweeps/2)

	tp := frontEnd / float64(m.cpu.IssueWidth)
	for _, p := range pressure {
		if p > tp {
			tp = p
		}
	}
	if w := m.lcdWeight * lcd; w > tp {
		tp = w
	}
	return tp, nil
}

func (m *OSACA) effProb(c uarch.UopClass) float64 {
	if isVecClass(c) {
		return m.opts.vecProb
	}
	return m.opts.perturbProb
}

func (m *OSACA) effStrength(c uarch.UopClass) float64 {
	if isVecClass(c) {
		return m.opts.vecStrength
	}
	return m.opts.perturbStrength
}

// regUse mirrors machine.RegSets with the 33-register id space, kept local
// so OSACA's view stays self-contained.
func regUse(in *x86.Inst) (addr, data, writes []uint8) {
	id := func(r x86.Reg) (uint8, bool) {
		switch b := r.Base64(); b.Class() {
		case x86.ClassGP64:
			return uint8(b.Num()), true
		case x86.ClassYMM:
			return uint8(16 + b.Num()), true
		}
		return 0, false
	}
	for k, a := range in.Args {
		switch a.Kind {
		case x86.KindReg:
			r, w := in.ArgIO(k)
			if r {
				if n, ok := id(a.Reg); ok {
					data = append(data, n)
				}
			}
			if w {
				if n, ok := id(a.Reg); ok {
					writes = append(writes, n)
				}
			}
		case x86.KindMem:
			if n, ok := id(a.Mem.Base); ok {
				addr = append(addr, n)
			}
			if n, ok := id(a.Mem.Index); ok {
				addr = append(addr, n)
			}
		}
	}
	for _, r := range in.Op.ImplicitReads() {
		if n, ok := id(r); ok {
			data = append(data, n)
		}
	}
	for _, r := range in.Op.ImplicitWrites() {
		if n, ok := id(r); ok {
			writes = append(writes, n)
		}
	}
	if in.Op.ReadsFlags() {
		data = append(data, 32)
	}
	if in.Op.WritesFlags() {
		writes = append(writes, 32)
	}
	return addr, data, writes
}
