package ithemal

import (
	"math"
	"math/rand"

	"bhive/internal/x86"
)

// Sample is one training example: a block and its measured throughput.
type Sample struct {
	Block      *x86.Block
	Throughput float64
}

// TrainConfig controls training.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   int64
	// Progress, when non-nil, receives the mean training loss per epoch.
	Progress func(epoch int, loss float64)
}

// DefaultTrainConfig mirrors the scale of the paper's training runs,
// adapted to the simulated corpus.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 14, LR: 1e-3, Seed: 1}
}

// Train fits the model to the samples with per-example Adam steps on the
// squared error of log-throughput. The heavy skew of the corpus toward
// non-vectorized blocks is left as-is — this is exactly the training-set
// imbalance the Ithemal authors blamed for the model's weakness on
// vectorized (category-2) blocks.
func (m *Model) Train(samples []Sample, cfg TrainConfig) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 6
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}

	lr := cfg.LR
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if epoch > 0 && epoch%4 == 0 {
			lr *= 0.5 // step decay
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var loss float64
		n := 0
		for _, i := range idx {
			s := samples[i]
			if s.Throughput <= 0 || len(s.Block.Insts) == 0 {
				continue
			}
			target := math.Log(s.Throughput)
			fc := m.forward(s.Block)
			diff := fc.y - target
			loss += diff * diff
			n++
			m.backward(fc, 2*diff)
			m.clipGrads(5)
			m.applyAdam(lr)
		}
		if cfg.Progress != nil && n > 0 {
			cfg.Progress(epoch, loss/float64(n))
		}
	}
}
