// Package ithemal implements the learned throughput predictor of the
// paper's evaluation: a hierarchical LSTM in the style of Ithemal. A
// token-level LSTM folds each instruction's canonicalized token stream
// into an instruction embedding; an instruction-level LSTM folds those
// into a block embedding; a linear head regresses the block's
// cycles-per-iteration. The network, backpropagation-through-time and the
// Adam optimizer are implemented from scratch on float64 slices.
package ithemal

import "bhive/internal/x86"

// Token space: opcode tokens, register-identity tokens (by full-width
// alias), and structural markers.
const (
	tokPad = iota
	tokInstStart
	tokMemOpen
	tokMemClose
	tokImm
	tokOpBase  // + op number
	tokRegBase = tokOpBase + int(x86.NumOps)
	numRegTok  = 33 // 16 GPR + 16 vector + flags (unused but reserved)
	// VocabSize is the number of distinct tokens.
	VocabSize = tokRegBase + numRegTok
)

func regToken(r x86.Reg) (int, bool) {
	switch b := r.Base64(); b.Class() {
	case x86.ClassGP64:
		return tokRegBase + b.Num(), true
	case x86.ClassYMM:
		return tokRegBase + 16 + b.Num(), true
	}
	return 0, false
}

// Tokenize canonicalizes a basic block into per-instruction token
// sequences (the hierarchy the two LSTMs consume).
func Tokenize(b *x86.Block) [][]int {
	out := make([][]int, 0, len(b.Insts))
	for i := range b.Insts {
		in := &b.Insts[i]
		toks := []int{tokInstStart, tokOpBase + int(in.Op)}
		for _, a := range in.Args {
			switch a.Kind {
			case x86.KindReg:
				if t, ok := regToken(a.Reg); ok {
					toks = append(toks, t)
				}
			case x86.KindImm:
				toks = append(toks, tokImm)
			case x86.KindMem:
				toks = append(toks, tokMemOpen)
				if t, ok := regToken(a.Mem.Base); ok {
					toks = append(toks, t)
				}
				if t, ok := regToken(a.Mem.Index); ok {
					toks = append(toks, t)
				}
				toks = append(toks, tokMemClose)
			}
		}
		out = append(out, toks)
	}
	return out
}
