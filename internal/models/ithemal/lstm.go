package ithemal

import (
	"math"
	"math/rand"
)

// param is one tensor with its gradient and Adam moments.
type param struct {
	w, g, m, v []float64
}

func newParam(n int, scale float64, rng *rand.Rand) *param {
	p := &param{
		w: make([]float64, n),
		g: make([]float64, n),
		m: make([]float64, n),
		v: make([]float64, n),
	}
	for i := range p.w {
		p.w[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

// adamStep applies one Adam update with the given step count.
func (p *param) adamStep(lr float64, t int) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(beta1, float64(t))
	bc2 := 1 - math.Pow(beta2, float64(t))
	for i := range p.w {
		g := p.g[i]
		p.m[i] = beta1*p.m[i] + (1-beta1)*g
		p.v[i] = beta2*p.v[i] + (1-beta2)*g*g
		p.w[i] -= lr * (p.m[i] / bc1) / (math.Sqrt(p.v[i]/bc2) + eps)
		p.g[i] = 0
	}
}

// lstm is a single-layer LSTM with input size in and hidden size hid.
// Weights are stored as wx [4*hid x in], wh [4*hid x hid], b [4*hid] with
// gate order (input, forget, cell, output).
type lstm struct {
	in, hid   int
	wx, wh, b *param
}

func newLSTM(in, hid int, rng *rand.Rand) *lstm {
	scale := 1 / math.Sqrt(float64(in+hid))
	l := &lstm{in: in, hid: hid}
	l.wx = newParam(4*hid*in, scale, rng)
	l.wh = newParam(4*hid*hid, scale, rng)
	l.b = newParam(4*hid, 0, rng)
	// Forget-gate bias starts positive so early training remembers.
	for i := hid; i < 2*hid; i++ {
		l.b.w[i] = 1
	}
	return l
}

// lstmStep caches one timestep's activations for backprop.
type lstmStep struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64
	c, tanhC, h     []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// forward computes one step and returns the cache.
func (l *lstm) forward(x, hPrev, cPrev []float64) *lstmStep {
	H := l.hid
	s := &lstmStep{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: make([]float64, H), f: make([]float64, H),
		g: make([]float64, H), o: make([]float64, H),
		c: make([]float64, H), tanhC: make([]float64, H), h: make([]float64, H),
	}
	for gate := 0; gate < 4; gate++ {
		for j := 0; j < H; j++ {
			row := gate*H + j
			z := l.b.w[row]
			wx := l.wx.w[row*l.in:]
			for k, xv := range x {
				z += wx[k] * xv
			}
			wh := l.wh.w[row*H:]
			for k, hv := range hPrev {
				z += wh[k] * hv
			}
			switch gate {
			case 0:
				s.i[j] = sigmoid(z)
			case 1:
				s.f[j] = sigmoid(z)
			case 2:
				s.g[j] = math.Tanh(z)
			case 3:
				s.o[j] = sigmoid(z)
			}
		}
	}
	for j := 0; j < H; j++ {
		s.c[j] = s.f[j]*cPrev[j] + s.i[j]*s.g[j]
		s.tanhC[j] = math.Tanh(s.c[j])
		s.h[j] = s.o[j] * s.tanhC[j]
	}
	return s
}

// backward accumulates gradients for one step given dh/dc flowing from
// above, returning dx, dhPrev, dcPrev.
func (l *lstm) backward(s *lstmStep, dh, dc []float64) (dx, dhPrev, dcPrev []float64) {
	H := l.hid
	dx = make([]float64, l.in)
	dhPrev = make([]float64, H)
	dcPrev = make([]float64, H)

	dz := make([]float64, 4*H)
	for j := 0; j < H; j++ {
		do := dh[j] * s.tanhC[j]
		dcj := dc[j] + dh[j]*s.o[j]*(1-s.tanhC[j]*s.tanhC[j])
		di := dcj * s.g[j]
		df := dcj * s.cPrev[j]
		dg := dcj * s.i[j]
		dcPrev[j] = dcj * s.f[j]

		dz[0*H+j] = di * s.i[j] * (1 - s.i[j])
		dz[1*H+j] = df * s.f[j] * (1 - s.f[j])
		dz[2*H+j] = dg * (1 - s.g[j]*s.g[j])
		dz[3*H+j] = do * s.o[j] * (1 - s.o[j])
	}

	for row := 0; row < 4*H; row++ {
		d := dz[row]
		if d == 0 {
			continue
		}
		l.b.g[row] += d
		wx := l.wx.w[row*l.in:]
		gx := l.wx.g[row*l.in:]
		for k, xv := range s.x {
			gx[k] += d * xv
			dx[k] += d * wx[k]
		}
		wh := l.wh.w[row*H:]
		gh := l.wh.g[row*H:]
		for k, hv := range s.hPrev {
			gh[k] += d * hv
			dhPrev[k] += d * wh[k]
		}
	}
	return dx, dhPrev, dcPrev
}

func (l *lstm) params() []*param { return []*param{l.wx, l.wh, l.b} }
