package ithemal

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"bhive/internal/x86"
)

// Model is the hierarchical LSTM throughput predictor.
type Model struct {
	D, H int // embedding and hidden sizes

	emb      *param // VocabSize x D
	tokLSTM  *lstm  // D -> H
	instLSTM *lstm  // H -> H
	outW     *param // H
	outB     *param // 1

	step int // Adam step counter
}

// New builds an untrained model with the given embedding and hidden sizes.
func New(d, h int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{D: d, H: h}
	m.emb = newParam(VocabSize*d, 0.1, rng)
	m.tokLSTM = newLSTM(d, h, rng)
	m.instLSTM = newLSTM(h, h, rng)
	m.outW = newParam(h, 1/math.Sqrt(float64(h)), rng)
	m.outB = newParam(1, 0, rng)
	return m
}

// Name implements the models.Predictor interface.
func (m *Model) Name() string { return "Ithemal" }

// forwardCache keeps everything needed for one block's backward pass.
type forwardCache struct {
	toks      [][]int
	tokSteps  [][]*lstmStep
	instSteps []*lstmStep
	blockVec  []float64
	y         float64 // predicted log-throughput
}

func (m *Model) forward(b *x86.Block) *forwardCache {
	fc := &forwardCache{toks: Tokenize(b)}
	zerosH := make([]float64, m.H)

	for _, toks := range fc.toks {
		h, c := zerosH, zerosH
		steps := make([]*lstmStep, 0, len(toks))
		for _, t := range toks {
			x := m.emb.w[t*m.D : (t+1)*m.D]
			s := m.tokLSTM.forward(x, h, c)
			steps = append(steps, s)
			h, c = s.h, s.c
		}
		fc.tokSteps = append(fc.tokSteps, steps)
	}

	h, c := zerosH, zerosH
	for _, steps := range fc.tokSteps {
		instVec := steps[len(steps)-1].h
		s := m.instLSTM.forward(instVec, h, c)
		fc.instSteps = append(fc.instSteps, s)
		h, c = s.h, s.c
	}
	fc.blockVec = h

	y := m.outB.w[0]
	for j, v := range h {
		y += m.outW.w[j] * v
	}
	fc.y = y
	return fc
}

// Predict implements the models.Predictor interface: it returns the
// predicted cycles per iteration.
func (m *Model) Predict(b *x86.Block) (float64, error) {
	if len(b.Insts) == 0 {
		return 0, fmt.Errorf("ithemal: empty block")
	}
	fc := m.forward(b)
	return math.Exp(fc.y), nil
}

// backward backpropagates the loss dL/dy through the whole hierarchy.
func (m *Model) backward(fc *forwardCache, dy float64) {
	dBlock := make([]float64, m.H)
	for j := range dBlock {
		m.outW.g[j] += dy * fc.blockVec[j]
		dBlock[j] = dy * m.outW.w[j]
	}
	m.outB.g[0] += dy

	// Instruction-level LSTM, backward through time.
	dh := dBlock
	dc := make([]float64, m.H)
	dInst := make([][]float64, len(fc.instSteps))
	for t := len(fc.instSteps) - 1; t >= 0; t-- {
		dx, dhPrev, dcPrev := m.instLSTM.backward(fc.instSteps[t], dh, dc)
		dInst[t] = dx
		dh, dc = dhPrev, dcPrev
	}

	// Token-level LSTMs (one run per instruction).
	for ti, steps := range fc.tokSteps {
		dhTok := dInst[ti]
		dcTok := make([]float64, m.H)
		for t := len(steps) - 1; t >= 0; t-- {
			dx, dhPrev, dcPrev := m.tokLSTM.backward(steps[t], dhTok, dcTok)
			tok := fc.toks[ti][t]
			ge := m.emb.g[tok*m.D : (tok+1)*m.D]
			for k := range dx {
				ge[k] += dx[k]
			}
			dhTok, dcTok = dhPrev, dcPrev
		}
	}
}

func (m *Model) params() []*param {
	ps := []*param{m.emb, m.outW, m.outB}
	ps = append(ps, m.tokLSTM.params()...)
	ps = append(ps, m.instLSTM.params()...)
	return ps
}

// clipGrads rescales gradients to a global norm bound.
func (m *Model) clipGrads(maxNorm float64) {
	var norm float64
	for _, p := range m.params() {
		for _, g := range p.g {
			norm += g * g
		}
	}
	norm = math.Sqrt(norm)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range m.params() {
		for i := range p.g {
			p.g[i] *= scale
		}
	}
}

// applyAdam steps every parameter.
func (m *Model) applyAdam(lr float64) {
	m.step++
	for _, p := range m.params() {
		p.adamStep(lr, m.step)
	}
}

// --- serialization ---

type modelGob struct {
	D, H int
	Ws   [][]float64
	Step int
}

// Save writes the model weights.
func (m *Model) Save(w io.Writer) error {
	g := modelGob{D: m.D, H: m.H, Step: m.step}
	for _, p := range m.params() {
		g.Ws = append(g.Ws, p.w)
	}
	return gob.NewEncoder(w).Encode(&g)
}

// Load reads model weights written by Save.
func Load(r io.Reader) (*Model, error) {
	var g modelGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	m := New(g.D, g.H, 0)
	ps := m.params()
	if len(ps) != len(g.Ws) {
		return nil, fmt.Errorf("ithemal: weight count mismatch")
	}
	for i, p := range ps {
		if len(p.w) != len(g.Ws[i]) {
			return nil, fmt.Errorf("ithemal: weight shape mismatch at tensor %d", i)
		}
		copy(p.w, g.Ws[i])
	}
	m.step = g.Step
	return m, nil
}
