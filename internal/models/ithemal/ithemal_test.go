package ithemal

import (
	"bytes"
	"math"
	"testing"

	"bhive/internal/corpus"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func parse(t *testing.T, text string) *x86.Block {
	t.Helper()
	b, err := x86.ParseBlock(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTokenize(t *testing.T) {
	b := parse(t, "add rax, qword ptr [rbx+rcx*8]\nvxorps %xmm2, %xmm2, %xmm2")
	toks := Tokenize(b)
	if len(toks) != 2 {
		t.Fatal("one token stream per instruction")
	}
	// add: start, opcode, reg, memopen, base, index, memclose = 7
	if len(toks[0]) != 7 {
		t.Fatalf("add tokens: %v", toks[0])
	}
	for _, seq := range toks {
		for _, tok := range seq {
			if tok < 0 || tok >= VocabSize {
				t.Fatalf("token %d out of vocabulary", tok)
			}
		}
	}
}

func TestGradientsDescend(t *testing.T) {
	// A tiny model must fit a tiny synthetic dataset: blocks of k
	// dependent adds have throughput k.
	var samples []Sample
	for k := 1; k <= 6; k++ {
		text := ""
		for i := 0; i < k; i++ {
			text += "add rax, rbx\n"
		}
		samples = append(samples, Sample{Block: parse(t, text), Throughput: float64(k)})
	}
	m := New(8, 16, 3)
	var first, last float64
	cfg := TrainConfig{Epochs: 60, LR: 5e-3, Seed: 1, Progress: func(e int, loss float64) {
		if e == 0 {
			first = loss
		}
		last = loss
	}}
	m.Train(samples, cfg)
	if last >= first/4 {
		t.Fatalf("loss must drop: %f -> %f", first, last)
	}
	// Ordering must be learned.
	p1, _ := m.Predict(samples[0].Block)
	p6, _ := m.Predict(samples[5].Block)
	if p1 >= p6 {
		t.Fatalf("longer chain must predict slower: %f vs %f", p1, p6)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	m := New(8, 16, 5)
	b := parse(t, "add rax, rbx\nmov rcx, qword ptr [rsp]")
	before, err := m.Predict(b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m2.Predict(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("weights must roundtrip: %f vs %f", before, after)
	}
}

func TestPredictEmptyBlockErrors(t *testing.T) {
	m := New(8, 16, 1)
	if _, err := m.Predict(&x86.Block{}); err == nil {
		t.Fatal("empty block must error")
	}
}

func TestTrainOnMeasuredCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	// End-to-end: train on a small measured corpus and beat a naive
	// constant predictor by a wide margin.
	recs := corpus.GenerateAll(0.0008, 11)
	prof := profiler.New(uarch.Haswell(), profiler.DefaultOptions())
	var samples []Sample
	var meanTP float64
	for i := range recs {
		r := prof.Profile(recs[i].Block)
		if r.Status == profiler.StatusOK && r.Throughput > 0 {
			samples = append(samples, Sample{Block: recs[i].Block, Throughput: r.Throughput})
			meanTP += r.Throughput
		}
	}
	meanTP /= float64(len(samples))
	m := New(16, 32, 1)
	m.Train(samples, TrainConfig{Epochs: 8, LR: 1e-3, Seed: 1})

	var modelErr, constErr float64
	for _, s := range samples {
		p, err := m.Predict(s.Block)
		if err != nil {
			t.Fatal(err)
		}
		modelErr += math.Abs(p-s.Throughput) / s.Throughput
		constErr += math.Abs(meanTP-s.Throughput) / s.Throughput
	}
	modelErr /= float64(len(samples))
	constErr /= float64(len(samples))
	t.Logf("model err %.3f vs constant %.3f over %d samples", modelErr, constErr, len(samples))
	if modelErr > constErr/2 {
		t.Fatalf("LSTM (%.3f) must beat the constant baseline (%.3f)", modelErr, constErr)
	}
}

func TestDeterministicTraining(t *testing.T) {
	samples := []Sample{
		{Block: parse(t, "add rax, rbx"), Throughput: 1},
		{Block: parse(t, "imul rax, rbx"), Throughput: 3},
	}
	m1 := New(8, 16, 2)
	m1.Train(samples, TrainConfig{Epochs: 5, LR: 1e-3, Seed: 3})
	m2 := New(8, 16, 2)
	m2.Train(samples, TrainConfig{Epochs: 5, LR: 1e-3, Seed: 3})
	p1, _ := m1.Predict(samples[0].Block)
	p2, _ := m2.Predict(samples[0].Block)
	if p1 != p2 {
		t.Fatal("training must be deterministic under a fixed seed")
	}
}
