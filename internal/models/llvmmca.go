package models

import (
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// LLVMMCA models llvm-mca: an out-of-order simulator whose parameters come
// from the compiler's backend scheduling model rather than from silicon.
// Three deliberate differences from the hardware reproduce its error
// profile in the paper:
//
//   - A load micro-fuses with its consumer into one *scheduling* unit, so
//     an independent load cannot be hoisted ahead of the dependent ALU op
//     (the mis-scheduling case study: 13.04 predicted vs 8.25 measured on
//     the Gzip CRC block).
//   - The scheduling model knows nothing about zero idioms or move
//     elimination (vxorps xmm2,xmm2,xmm2 costed as a real 1.00-throughput
//     XOR against a measured 0.25).
//   - The divider entry only covers the 64-bit form, like IACA's.
//
// The Skylake scheduling model is younger and noisier than the Haswell and
// Ivy Bridge ones — "a result of LLVM developers having less time updating
// the cost models for the relatively new microarchitecture".
type LLVMMCA struct {
	cpu  *uarch.CPU
	opts tableOpts
}

// NewLLVMMCA builds the llvm-mca-like model for a CPU.
func NewLLVMMCA(cpu *uarch.CPU) *LLVMMCA {
	o := tableOpts{
		salt:            "llvm-mca/" + cpu.Name,
		perturbProb:     0.10,
		perturbStrength: 0.22,
		vecProb:         0.85,
		vecStrength:     0.60,
		divBug:          true,
		zeroIdioms:      false,
		moveElim:        false,
		fuseLoads:       true,
		vecPortDrop:     0.35,
		vecSlowProb:     0.40,
	}
	if cpu.Name == "skylake" {
		// The stale SKL scheduling model drifted further from silicon.
		o.perturbProb = 0.62
		o.perturbStrength = 0.60
		o.vecProb = 0.95
		o.vecStrength = 0.70
		o.vecPortDrop = 0.50
		o.vecSlowProb = 0.55
	}
	return &LLVMMCA{cpu: cpu, opts: o}
}

// Name implements Predictor.
func (m *LLVMMCA) Name() string { return "llvm-mca" }

// Predict implements Predictor.
func (m *LLVMMCA) Predict(b *x86.Block) (float64, error) {
	insts, err := buildSimInsts(m.cpu, b, m.opts)
	if err != nil {
		return 0, err
	}
	return derivedPrediction(insts, m.cpu.IssueWidth, m.cpu.NumPorts, len(b.Insts)), nil
}

// Schedule implements ScheduleTracer.
func (m *LLVMMCA) Schedule(b *x86.Block, iterations int) ([]ScheduleEntry, error) {
	insts, err := buildSimInsts(m.cpu, b, m.opts)
	if err != nil {
		return nil, err
	}
	var trace []ScheduleEntry
	simulate(insts, m.cpu.IssueWidth, m.cpu.NumPorts, iterations, &trace)
	return trace, nil
}
