package models

import (
	"bhive/internal/bound"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Facile is the interpretable bound-based predictor: it predicts the
// static lower bound from internal/bound — the maximum of the
// loop-carried dependence height, execution-port pressure and front-end
// width — as the block's inverse throughput. Unlike the other models it
// carries no deliberately injected inaccuracies; its error against the
// simulator is exactly the cost of ignoring second-order resource
// interactions (window stalls, store queues, partial overlap), which is
// what makes it a Facile-class decomposition: every prediction comes with
// a bottleneck verdict explaining itself, and by construction it only
// ever under-predicts the simulator's steady-state throughput.
type Facile struct {
	cpu *uarch.CPU
}

// NewFacile builds the bound-based predictor for one microarchitecture.
func NewFacile(cpu *uarch.CPU) *Facile { return &Facile{cpu: cpu} }

// Name implements Predictor.
func (f *Facile) Name() string { return "Facile" }

// Predict implements Predictor: the static lower bound in cycles per
// iteration.
func (f *Facile) Predict(b *x86.Block) (float64, error) {
	bs, err := bound.Analyze(f.cpu, b)
	if err != nil {
		return 0, err
	}
	return bs.Lower, nil
}

// Explain returns the full bound analysis behind a prediction (the
// bottleneck verdict and the individual terms).
func (f *Facile) Explain(b *x86.Block) (*bound.Bounds, error) {
	return bound.Analyze(f.cpu, b)
}
