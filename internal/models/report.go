package models

import (
	"fmt"
	"strings"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Report renders an IACA-style throughput analysis of a basic block: the
// per-instruction micro-op/port table, the per-port pressure summary, the
// predicted steady-state throughput, and the bound (what limits it). It
// uses the unperturbed microarchitectural tables — this is the report a
// perfect analyzer would print.
func Report(cpu *uarch.CPU, b *x86.Block) (string, error) {
	if len(b.Insts) == 0 {
		return "", errEmptyBlock
	}
	pure := tableOpts{salt: "report", zeroIdioms: true, moveElim: true}
	insts, err := buildSimInsts(cpu, b, pure)
	if err != nil {
		return "", err
	}
	tp := derivedPrediction(insts, cpu.IssueWidth, cpu.NumPorts, len(b.Insts))

	var sb strings.Builder
	fmt.Fprintf(&sb, "Throughput analysis report (%s)\n", cpu.Name)
	fmt.Fprintf(&sb, "Block throughput: %.2f cycles/iteration\n\n", tp)

	// Per-instruction table.
	fmt.Fprintf(&sb, "| fused | %s | lat | instruction\n", portHeaders(cpu.NumPorts))
	pressure := make([]float64, cpu.NumPorts)
	fusedTotal := 0
	for i := range insts {
		si := &insts[i]
		cells := make([]float64, cpu.NumPorts)
		lat := 0
		for _, u := range si.uops {
			n := u.ports.Count()
			if n == 0 {
				continue
			}
			for p := 0; p < cpu.NumPorts; p++ {
				if u.ports.Has(p) {
					cells[p] += 1 / float64(n)
					pressure[p] += 1 / float64(n)
				}
			}
			lat += u.lat
		}
		fusedTotal += si.fused
		note := ""
		if si.zeroIdiom {
			note = "  (zero idiom: eliminated)"
		} else if si.elimMove {
			note = "  (move eliminated)"
		}
		fmt.Fprintf(&sb, "| %5d | %s | %3d | %s%s\n",
			si.fused, portCells(cells), lat, si.text, note)
	}

	fmt.Fprintf(&sb, "|-------+%s\n", strings.Repeat("-", 6*cpu.NumPorts))
	fmt.Fprintf(&sb, "| total | %s |\n\n", portCells(pressure))

	// Bound analysis.
	frontEnd := float64(fusedTotal) / float64(cpu.IssueWidth)
	maxPort, maxP := 0, 0.0
	for p, v := range pressure {
		if v > maxP {
			maxP, maxPort = v, p
		}
	}
	fmt.Fprintf(&sb, "front-end bound: %.2f cycles (%d fused µops / width %d)\n",
		frontEnd, fusedTotal, cpu.IssueWidth)
	fmt.Fprintf(&sb, "port bound:      %.2f cycles (port %d)\n", maxP, maxPort)
	switch {
	case tp > maxP+0.5 && tp > frontEnd+0.5:
		sb.WriteString("bound:           dependency chains (latency)\n")
	case maxP >= frontEnd:
		fmt.Fprintf(&sb, "bound:           backend port %d\n", maxPort)
	default:
		sb.WriteString("bound:           front end\n")
	}
	return sb.String(), nil
}

func portHeaders(n int) string {
	parts := make([]string, n)
	for p := 0; p < n; p++ {
		parts[p] = fmt.Sprintf(" p%d  ", p)
	}
	return strings.Join(parts, "")
}

func portCells(cells []float64) string {
	parts := make([]string, len(cells))
	for p, v := range cells {
		if v == 0 {
			parts[p] = "  -  "
		} else {
			parts[p] = fmt.Sprintf("%4.1f ", v)
		}
	}
	return strings.Join(parts, "")
}
