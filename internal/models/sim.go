package models

import (
	"fmt"

	"bhive/internal/uarch"
)

// simUop is a micro-op in the model's view of the machine.
type simUop struct {
	ports  uarch.PortSet
	lat    int
	occ    int  // non-pipelined unit occupancy
	isLoad bool // load µops depend only on address registers
	name   string
}

// simInst is a model's description of one instruction.
type simInst struct {
	uops  []simUop
	fused int

	addr, data, writes []uint8

	zeroIdiom bool
	elimMove  bool
	text      string
}

const simRegs = 33

// simulate schedules iters copies of the block on a width-wide machine
// with the given port count, returning total cycles (and optionally a
// schedule trace).
func simulate(insts []simInst, width, nports, iters int, trace *[]ScheduleEntry) int64 {
	type flight struct {
		inst, iter int
		uop        int
		deps       []int32
		issued     bool
		done       bool
		doneAt     int64
	}

	var all []flight
	var lastWriter [simRegs]int32
	for i := range lastWriter {
		lastWriter[i] = -1
	}

	// Unroll and build dependence edges.
	total := len(insts) * iters
	uopIdx := make([][]int32, total)
	for k := 0; k < total; k++ {
		in := &insts[k%len(insts)]
		iter := k / len(insts)
		if in.zeroIdiom {
			for _, w := range in.writes {
				lastWriter[w] = -1
			}
			continue
		}
		if in.elimMove {
			src := int32(-1)
			if len(in.data) > 0 {
				src = lastWriter[in.data[0]]
			}
			for _, w := range in.writes {
				lastWriter[w] = src
			}
			continue
		}
		var last, loadID int32 = -1, -1
		hasLoad := false
		for u := range in.uops {
			if in.uops[u].isLoad {
				hasLoad = true
			}
		}
		for u := range in.uops {
			f := flight{inst: k % len(insts), iter: iter, uop: u}
			if in.uops[u].isLoad {
				// Loads wait only on address registers — this is what lets
				// hardware (and IACA) hoist an independent load ahead of
				// the dependent computation that consumes it.
				for _, r := range in.addr {
					if p := lastWriter[r]; p >= 0 {
						f.deps = append(f.deps, p)
					}
				}
			} else {
				for _, r := range in.data {
					if p := lastWriter[r]; p >= 0 {
						f.deps = append(f.deps, p)
					}
				}
				if !hasLoad {
					// Store-address computation and fused load+op shapes
					// consume the addressing registers directly.
					for _, r := range in.addr {
						if p := lastWriter[r]; p >= 0 {
							f.deps = append(f.deps, p)
						}
					}
				}
				if loadID >= 0 {
					f.deps = append(f.deps, loadID)
				}
				if last >= 0 {
					f.deps = append(f.deps, last)
				}
			}
			id := int32(len(all))
			all = append(all, f)
			uopIdx[k] = append(uopIdx[k], id)
			if in.uops[u].isLoad {
				loadID = id
			} else {
				last = id
			}
		}
		if len(uopIdx[k]) > 0 {
			producer := uopIdx[k][len(uopIdx[k])-1]
			for _, w := range in.writes {
				lastWriter[w] = producer
			}
		}
	}

	if len(all) == 0 {
		// Pure zero-idiom/eliminated blocks retire at the rename width.
		fusedTotal := 0
		for k := 0; k < total; k++ {
			fusedTotal += insts[k%len(insts)].fused
		}
		return int64((fusedTotal + width - 1) / width)
	}

	// Cycle loop: allocate (width fused µops/cycle), issue oldest-first.
	var (
		cycle     int64
		nextInst  int // next unrolled instruction to allocate
		allocated int // µops allocated so far
		completed int
		rs        []int32
		portBusy  = make([]int64, nports)
		portUsed  = make([]bool, nports)
	)
	fusedOf := func(k int) int { return insts[k%len(insts)].fused }

	const window = 192 // ROB-ish bound on in-flight µops
	inFlight := 0

	for completed < len(all) {
		// Allocate.
		budget := width
		for nextInst < total && budget > 0 {
			f := fusedOf(nextInst)
			if f > budget || inFlight+len(uopIdx[nextInst]) > window {
				break
			}
			budget -= f
			for _, id := range uopIdx[nextInst] {
				rs = append(rs, id)
				inFlight++
			}
			nextInst++
		}

		// Issue.
		for p := range portUsed {
			portUsed[p] = false
		}
		w := 0
		for _, id := range rs {
			u := &all[id]
			spec := &insts[u.inst].uops[u.uop]
			ready := true
			for _, d := range u.deps {
				if !all[d].done || all[d].doneAt > cycle {
					ready = false
					break
				}
			}
			if !ready {
				rs[w] = id
				w++
				continue
			}
			port := -1
			for p := 0; p < nports; p++ {
				if spec.ports.Has(p) && !portUsed[p] && portBusy[p] <= cycle {
					port = p
					break
				}
			}
			if port < 0 {
				rs[w] = id
				w++
				continue
			}
			portUsed[port] = true
			if spec.occ > 0 {
				portBusy[port] = cycle + int64(spec.occ)
			}
			u.issued = true
			u.done = true
			u.doneAt = cycle + int64(spec.lat)
			if trace != nil {
				*trace = append(*trace, ScheduleEntry{
					Iteration: u.iter,
					Inst:      insts[u.inst].text,
					Uop:       spec.name,
					Dispatch:  cycle,
					Complete:  u.doneAt,
				})
			}
			completed++
			inFlight--
		}
		rs = rs[:w]
		cycle++

		if cycle > 10_000_000 {
			break // runaway guard
		}
	}

	// Drain: account for the last completions.
	var last int64
	for i := range all {
		if all[i].doneAt > last {
			last = all[i].doneAt
		}
	}
	if last+1 > cycle {
		cycle = last + 1
	}
	_ = allocated
	return cycle
}

// derivedPrediction runs the simulator at two iteration counts and returns
// the marginal cost per iteration — the same steady-state definition the
// measurement framework uses.
func derivedPrediction(insts []simInst, width, nports, blockLen int) float64 {
	k := 12
	if blockLen > 0 && 100/blockLen > k {
		k = 100 / blockLen
	}
	if k > 60 {
		k = 60
	}
	c1 := simulate(insts, width, nports, k, nil)
	c2 := simulate(insts, width, nports, 2*k, nil)
	tp := float64(c2-c1) / float64(k)
	if tp < 0 {
		tp = float64(c2) / float64(2*k)
	}
	return tp
}

var errEmptyBlock = fmt.Errorf("models: empty basic block")
