package models

import (
	"math"
	"testing"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func parse(t *testing.T, text string) *x86.Block {
	t.Helper()
	b, err := x86.ParseBlock(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const divBlock = "xor %edx, %edx\ndiv %ecx\ntest %edx, %edx"
const crcBlock = `add $1, %rdi
mov %edx, %eax
shr $8, %rdx
xorb -1(%rdi), %al
movzbl %al, %eax
xor 0x4110a(, %rax, 8), %rdx
cmp %rcx, %rdi`

func TestDivBugSharedByIACAAndMCA(t *testing.T) {
	hsw := uarch.Haswell()
	b := parse(t, divBlock)
	for _, m := range []Predictor{NewIACA(hsw), NewLLVMMCA(hsw)} {
		p, err := m.Predict(b)
		if err != nil {
			t.Fatal(err)
		}
		if p < 80 || p > 120 {
			t.Errorf("%s: div prediction %.1f (paper ~98)", m.Name(), p)
		}
	}
	// The bug disappears for the true 64-bit form: predictions match its
	// actual high cost.
	b64 := parse(t, "xor %edx, %edx\ndiv %rcx\ntest %edx, %edx")
	p64, err := NewIACA(hsw).Predict(b64)
	if err != nil {
		t.Fatal(err)
	}
	if p64 < 80 {
		t.Errorf("64-bit div predicted %.1f", p64)
	}
}

func TestZeroIdiomKnowledge(t *testing.T) {
	hsw := uarch.Haswell()
	b := parse(t, "vxorps %xmm2, %xmm2, %xmm2")
	iaca, _ := NewIACA(hsw).Predict(b)
	mca, _ := NewLLVMMCA(hsw).Predict(b)
	osaca, _ := NewOSACA(hsw).Predict(b)
	if iaca > 0.35 {
		t.Errorf("IACA knows the zero idiom: %.2f", iaca)
	}
	if mca < 0.9 {
		t.Errorf("llvm-mca must cost it as a real XOR: %.2f", mca)
	}
	if osaca < 0.9 {
		t.Errorf("OSACA must cost it as a real XOR: %.2f", osaca)
	}
}

func TestMCAOverpredictsCRC(t *testing.T) {
	hsw := uarch.Haswell()
	b := parse(t, crcBlock)
	iaca, err := NewIACA(hsw).Predict(b)
	if err != nil {
		t.Fatal(err)
	}
	mca, err := NewLLVMMCA(hsw).Predict(b)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: measured 8.25, IACA 8.00, llvm-mca 13.04.
	if iaca < 6 || iaca > 10 {
		t.Errorf("IACA CRC prediction %.2f (paper 8.00)", iaca)
	}
	if mca < iaca+3 {
		t.Errorf("llvm-mca must overpredict due to load fusion: %.2f vs %.2f", mca, iaca)
	}
}

func TestOSACAFailsOnCRC(t *testing.T) {
	hsw := uarch.Haswell()
	_, err := NewOSACA(hsw).Predict(parse(t, crcBlock))
	if _, ok := err.(*ErrUnsupportedForm); !ok {
		t.Fatalf("expected parser failure, got %v", err)
	}
}

func TestOSACANopBug(t *testing.T) {
	hsw := uarch.Haswell()
	// A block of only memory-destination immediates is parsed as NOPs:
	// OSACA's prediction collapses to the front-end bound.
	withBug, err := NewOSACA(hsw).Predict(parse(t, "add qword ptr [rbx], 1\nadd qword ptr [rbx+8], 1"))
	if err != nil {
		t.Fatal(err)
	}
	noBug, err := NewOSACA(hsw).Predict(parse(t, "add qword ptr [rbx], rax\nadd qword ptr [rbx+8], rax"))
	if err != nil {
		t.Fatal(err)
	}
	if withBug >= noBug {
		t.Fatalf("NOP-parsing must under-report: %.2f vs %.2f", withBug, noBug)
	}
}

func TestScheduleTraces(t *testing.T) {
	hsw := uarch.Haswell()
	b := parse(t, crcBlock)
	for _, m := range []ScheduleTracer{NewIACA(hsw), NewLLVMMCA(hsw)} {
		trace, err := m.Schedule(b, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) == 0 {
			t.Fatal("empty schedule")
		}
		// Dispatch cycles are non-decreasing per iteration start.
		for _, e := range trace {
			if e.Complete < e.Dispatch {
				t.Fatalf("negative duration: %+v", e)
			}
		}
	}
	// IACA dispatches the CRC table load earlier than llvm-mca (which has
	// no separate load µop at all for the fused xor).
	mcaTrace, _ := NewLLVMMCA(hsw).Schedule(b, 3)
	for _, e := range mcaTrace {
		if e.Uop == "load+int-alu" {
			return // fused unit present: the bug is in effect
		}
	}
	t.Fatal("llvm-mca schedule must show the fused load+ALU unit")
}

func TestPredictorsDeterministic(t *testing.T) {
	hsw := uarch.Haswell()
	b := parse(t, crcBlock)
	for _, m := range []Predictor{NewIACA(hsw), NewLLVMMCA(hsw)} {
		p1, _ := m.Predict(b)
		p2, _ := m.Predict(b)
		if p1 != p2 {
			t.Fatalf("%s not deterministic", m.Name())
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	hsw := uarch.Haswell()
	for _, m := range All(hsw) {
		if _, err := m.Predict(&x86.Block{}); err == nil {
			t.Errorf("%s accepted an empty block", m.Name())
		}
	}
}

func TestUnsupportedISAPropagates(t *testing.T) {
	ivb := uarch.IvyBridge()
	b := parse(t, "vfmadd231ps %ymm1, %ymm2, %ymm3")
	for _, m := range All(ivb) {
		if _, err := m.Predict(b); err == nil {
			t.Errorf("%s should reject FMA on Ivy Bridge", m.Name())
		}
	}
}

func TestPerturbDeterministicAndBounded(t *testing.T) {
	for op := x86.Op(1); op < x86.NumOps; op++ {
		a := perturb(10, op, "salt", 0.5, 0.5)
		b := perturb(10, op, "salt", 0.5, 0.5)
		if a != b {
			t.Fatal("perturb must be deterministic")
		}
		if a < 1 || a > 20 {
			t.Fatalf("perturb out of bounds: %d", a)
		}
	}
	if perturb(0, x86.ADD, "s", 1, 1) != 0 {
		t.Fatal("zero latency stays zero")
	}
	// Different salts disagree somewhere.
	diff := false
	for op := x86.Op(1); op < x86.NumOps; op++ {
		if perturb(10, op, "a", 0.8, 0.5) != perturb(10, op, "b", 0.8, 0.5) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("salts must differentiate tables")
	}
}

func TestSimulateHandlesPureIdiomBlocks(t *testing.T) {
	hsw := uarch.Haswell()
	b := parse(t, "xor eax, eax\nxor ebx, ebx\nxor ecx, ecx\nxor edx, edx")
	p, err := NewIACA(hsw).Predict(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || p <= 0 || p > 2 {
		t.Fatalf("idiom-only block prediction %.2f", p)
	}
}
