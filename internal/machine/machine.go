// Package machine composes the substrates — virtual memory, caches, the
// functional executor and the cycle-level pipeline — into a Machine: the
// simulated silicon that the BHive measurement framework profiles.
package machine

import (
	"math/rand"

	"bhive/internal/cache"
	"bhive/internal/exec"
	"bhive/internal/pipeline"
	"bhive/internal/uarch"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

// CodeBase is the virtual address where benchmark code is mapped.
const CodeBase = 0x400000

// Machine is one simulated core with its memory system.
type Machine struct {
	CPU *uarch.CPU
	AS  *vm.AddressSpace
	L1I *cache.Cache
	L1D *cache.Cache

	// Rand drives context-switch arrivals in noisy timing mode.
	Rand *rand.Rand

	codeFrames []*vm.PhysPage // frames backing the code mapping
	codeLen    int
}

// New builds a machine for the given microarchitecture.
func New(cpu *uarch.CPU, seed int64) *Machine {
	m := &Machine{CPU: cpu, Rand: rand.New(rand.NewSource(seed))}
	m.ResetMemory()
	return m
}

// ResetMemory discards the address space and cold-resets both caches.
func (m *Machine) ResetMemory() {
	m.AS = vm.New()
	m.L1I = cache.New(m.CPU.L1ISize, m.CPU.L1Assoc, m.CPU.LineSize)
	m.L1D = cache.New(m.CPU.L1DSize, m.CPU.L1Assoc, m.CPU.LineSize)
	m.codeFrames = nil
	m.codeLen = 0
}

// Program is a prepared (encoded, described, address-assigned) instruction
// sequence ready for execution and timing.
type Program struct {
	Insts []x86.Inst
	// Addrs has len(Insts)+1 entries: each instruction's virtual address
	// and the end address.
	Addrs []uint64
	Lens  []int
	Descs []uarch.Desc
}

// CodeSize returns the program's encoded size in bytes — what determines
// whether an unrolled block still fits in the instruction cache.
func (p *Program) CodeSize() int {
	return int(p.Addrs[len(p.Addrs)-1] - p.Addrs[0])
}

// Prepare encodes insts, maps the code pages (each to its own physical
// frame), and resolves each instruction's micro-op description. It returns
// uarch.UnsupportedError if the CPU cannot execute an instruction.
func (m *Machine) Prepare(insts []x86.Inst) (*Program, error) {
	p := &Program{Insts: insts}
	p.Addrs = make([]uint64, 0, len(insts)+1)
	p.Lens = make([]int, 0, len(insts))
	p.Descs = make([]uarch.Desc, 0, len(insts))

	addr := uint64(CodeBase)
	var code []byte
	for i := range insts {
		raw, err := x86.Encode(insts[i])
		if err != nil {
			return nil, err
		}
		d, err := m.CPU.Describe(&insts[i])
		if err != nil {
			return nil, err
		}
		p.Addrs = append(p.Addrs, addr)
		p.Lens = append(p.Lens, len(raw))
		p.Descs = append(p.Descs, d)
		addr += uint64(len(raw))
		code = append(code, raw...)
	}
	p.Addrs = append(p.Addrs, addr)

	m.mapCode(code)
	return p, nil
}

// mapCode installs the code bytes at CodeBase on dedicated frames.
func (m *Machine) mapCode(code []byte) {
	m.codeFrames = nil
	m.codeLen = len(code)
	for off := 0; off < len(code) || off == 0; off += vm.PageSize {
		frame := m.AS.NewPhysPage()
		copy(frame.Data[:], code[off:])
		m.AS.Map(CodeBase+uint64(off), frame)
		m.codeFrames = append(m.codeFrames, frame)
	}
}

// RemapCode restores the code mapping after UnmapAll.
func (m *Machine) RemapCode() {
	for i, frame := range m.codeFrames {
		m.AS.Map(CodeBase+uint64(i*vm.PageSize), frame)
	}
}

// Execute runs the program functionally on the given state, returning the
// dynamic trace. Page faults, divide errors and alignment faults surface
// as errors exactly as signals would.
func (m *Machine) Execute(p *Program, st *exec.State) ([]exec.Step, error) {
	r := &exec.Runner{State: st, AS: m.AS, Record: true}
	r.Trace = make([]exec.Step, 0, len(p.Insts))
	if err := r.Run(p.Insts, p.Addrs); err != nil {
		return r.Trace, err
	}
	return r.Trace, nil
}

// Config controls a timing run.
type Config struct {
	// SwitchRate is the per-cycle context-switch probability; 0 = quiet.
	SwitchRate float64
	// SwitchCost is the cycle cost of one context switch.
	SwitchCost uint64
}

// Time runs the cycle-level model over a completed trace and returns the
// performance counters. Cache state persists across calls; use warm-up
// runs deliberately, as the measurement protocol does.
func (m *Machine) Time(p *Program, steps []exec.Step, cfg Config) pipeline.Counters {
	items := m.buildItems(p, steps)
	pcfg := pipeline.Config{SwitchRate: cfg.SwitchRate, SwitchCost: cfg.SwitchCost}
	if cfg.SwitchRate > 0 {
		pcfg.Rand = m.Rand
	}
	return pipeline.Simulate(m.CPU, items, m.L1I, m.L1D, pcfg)
}

// buildItems converts the functional trace into timed pipeline items.
func (m *Machine) buildItems(p *Program, steps []exec.Step) []pipeline.Item {
	items := make([]pipeline.Item, len(steps))
	for i := range steps {
		st := &steps[i]
		idx := i % len(p.Insts) // traces are the program in order
		it := &items[i]
		it.Desc = p.Descs[idx]
		it.Load = st.Load
		it.Store = st.Store
		it.Subnormal = st.Subnormal
		it.CodeLen = p.Lens[idx]
		if _, phys, ok := m.AS.Translate(p.Addrs[idx]); ok {
			it.CodePhys = phys
		}
		it.AddrReads, it.DataReads, it.Writes = RegSets(st.Inst)
	}
	return items
}

// RegSets maps an instruction's register usage onto pipeline register ids:
// 0–15 GPRs, 16–31 vector registers, 32 the flags.
func RegSets(in *x86.Inst) (addr, data, writes []uint8) {
	id := func(r x86.Reg) (uint8, bool) {
		switch b := r.Base64(); b.Class() {
		case x86.ClassGP64:
			return uint8(b.Num()), true
		case x86.ClassYMM:
			return uint8(16 + b.Num()), true
		}
		return 0, false
	}
	for k, a := range in.Args {
		switch a.Kind {
		case x86.KindReg:
			r, w := in.ArgIO(k)
			// Sub-register writes merge, hence also read (RegReads models
			// this); replicate that rule here.
			merge := w && (a.Reg.Class() == x86.ClassGP8 || a.Reg.Class() == x86.ClassGP16)
			if r || merge {
				if n, ok := id(a.Reg); ok {
					data = append(data, n)
				}
			}
			if w {
				if n, ok := id(a.Reg); ok {
					writes = append(writes, n)
				}
			}
		case x86.KindMem:
			if n, ok := id(a.Mem.Base); ok {
				addr = append(addr, n)
			}
			if n, ok := id(a.Mem.Index); ok {
				addr = append(addr, n)
			}
		}
	}
	for _, r := range in.Op.ImplicitReads() {
		if n, ok := id(r); ok {
			data = append(data, n)
		}
	}
	for _, r := range in.Op.ImplicitWrites() {
		if n, ok := id(r); ok {
			writes = append(writes, n)
		}
	}
	if in.Op.ReadsFlags() {
		data = append(data, RegFlags)
	}
	if in.Op.WritesFlags() {
		writes = append(writes, RegFlags)
	}
	return addr, data, writes
}

// RegFlags re-exports the pipeline flags id for convenience.
const RegFlags = pipeline.RegFlags
