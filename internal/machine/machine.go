// Package machine composes the substrates — virtual memory, caches, the
// functional executor and the cycle-level pipeline — into a Machine: the
// simulated silicon that the BHive measurement framework profiles.
package machine

import (
	"math/rand"

	"bhive/internal/cache"
	"bhive/internal/exec"
	"bhive/internal/memo"
	"bhive/internal/pipeline"
	"bhive/internal/uarch"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

// CodeBase is the virtual address where benchmark code is mapped.
const CodeBase = 0x400000

// Machine is one simulated core with its memory system.
type Machine struct {
	CPU *uarch.CPU
	AS  *vm.AddressSpace
	L1I *cache.Cache
	L1D *cache.Cache

	// Rand drives context-switch arrivals in noisy timing mode.
	Rand *rand.Rand

	codeFrames []*vm.PhysPage // frames backing the code mapping
	codeLen    int

	// Scratch buffers recycled across Prepare/Execute/Time calls.
	trace []exec.Step
	acc   []exec.MemAccess
	items []pipeline.Item
	code  []byte
	graph pipeline.Graph
	prog  Program
	pis   []*memo.PreparedInst
}

// New builds a machine for the given microarchitecture.
func New(cpu *uarch.CPU, seed int64) *Machine {
	m := &Machine{CPU: cpu, Rand: rand.New(rand.NewSource(seed))}
	m.ResetMemory()
	return m
}

// ResetMemory discards the address space and cold-resets both caches.
func (m *Machine) ResetMemory() {
	if m.AS == nil {
		m.AS = vm.New()
		m.L1I = cache.New(m.CPU.L1ISize, m.CPU.L1Assoc, m.CPU.LineSize)
		m.L1D = cache.New(m.CPU.L1DSize, m.CPU.L1Assoc, m.CPU.LineSize)
	} else {
		m.AS.Reset()
		m.L1I.Reset()
		m.L1D.Reset()
	}
	m.codeFrames = m.codeFrames[:0]
	m.codeLen = 0
}

// Reset returns the machine to the state a fresh New would produce,
// recycling every allocation. A reset machine is measurement-identical to
// a fresh one: the address space restarts frame numbering and both caches
// cold-reset including their LRU clocks. The RNG is deliberately left
// untouched — deterministic timing never consumes it, and reseeding
// math/rand's 607-word state costs more than the rest of Reset combined.
// Callers using the noisy timing mode must reseed Rand themselves.
func (m *Machine) Reset() {
	m.ResetMemory()
}

// WarmCaches touches every instruction and data cache line the trace
// touches, in trace order, without paying for pipeline simulation. It
// establishes the same resident set as a full timing run: the measurement
// protocol only cares whether the subsequent timed run misses at all, and
// a timed run has zero misses exactly when each cache set sees at most
// associativity-many distinct lines — a property of the access set, not of
// the LRU ordering a particular warm-up leaves behind.
func (m *Machine) WarmCaches(p *Program, steps []exec.Step) {
	var (
		havePage bool
		pageBase uint64
		pagePhys uint64
	)
	for i := range steps {
		st := &steps[i]
		idx := i % len(p.Insts)
		va := p.Addrs[idx]
		if base := va & vm.PageMask; havePage && base == pageBase {
			m.L1I.AccessRange(pagePhys+(va-base), p.Lens[idx])
		} else if _, phys, ok := m.AS.Translate(va); ok {
			m.L1I.AccessRange(phys, p.Lens[idx])
			havePage, pageBase, pagePhys = true, base, phys-(va-base)
		}
		if st.Load != nil {
			m.L1D.AccessRange(st.Load.Phys, int(st.Load.Size))
		}
		if st.Store != nil {
			m.L1D.AccessRange(st.Store.Phys, int(st.Store.Size))
		}
	}
}

// Program is a prepared (encoded, described, address-assigned) instruction
// sequence ready for execution and timing.
type Program struct {
	Insts []x86.Inst
	// Addrs has len(Insts)+1 entries: each instruction's virtual address
	// and the end address.
	Addrs []uint64
	Lens  []int
	Descs []uarch.Desc
	// LCPs marks instructions whose encoding carries a length-changing
	// prefix (x86.LengthChangingPrefix), for the modeled front end.
	LCPs []bool

	// Register-use sets per instruction, precomputed at Prepare time so
	// timing runs do not re-derive them per dynamic instruction. The
	// slices are shared memo entries — read-only.
	AddrReads [][]uint8
	DataReads [][]uint8
	Writes    [][]uint8
}

// CodeSize returns the program's encoded size in bytes — what determines
// whether an unrolled block still fits in the instruction cache.
func (p *Program) CodeSize() int {
	return int(p.Addrs[len(p.Addrs)-1] - p.Addrs[0])
}

// Slice returns a program consisting of the first n instructions, sharing
// the prepared metadata. The profiler uses this to derive the low-unroll
// program from the high-unroll one instead of re-encoding and re-mapping:
// the underlying code mapping stays valid because the prefix occupies the
// same addresses.
func (p *Program) Slice(n int) *Program {
	return &Program{
		Insts:     p.Insts[:n],
		Addrs:     p.Addrs[:n+1],
		Lens:      p.Lens[:n],
		Descs:     p.Descs[:n],
		LCPs:      p.LCPs[:n],
		AddrReads: p.AddrReads[:n],
		DataReads: p.DataReads[:n],
		Writes:    p.Writes[:n],
	}
}

// Prepare encodes insts, maps the code pages (each to its own physical
// frame), and resolves each instruction's micro-op description. It returns
// uarch.UnsupportedError if the CPU cannot execute an instruction.
// Encoding and description lookups are memoized process-wide.
func (m *Machine) Prepare(insts []x86.Inst) (*Program, error) {
	return m.PrepareUnrolled(insts, len(insts))
}

// PrepareUnrolled is Prepare for a program that repeats its first n
// instructions (an unrolled basic block): encoding, description and
// register-set lookups run once per distinct instruction — a single
// combined memo hit each — and the results are replicated across the
// copies, so preparing a 50× unroll costs the same lookups as preparing
// the block itself.
//
// The returned Program and its arrays are owned by the machine and remain
// valid until the next Prepare/PrepareUnrolled call on it (prefix views
// from Program.Slice share the same lifetime). Every caller in this
// repository prepares and consumes one program at a time.
func (m *Machine) PrepareUnrolled(insts []x86.Inst, n int) (*Program, error) {
	total := len(insts)
	if n <= 0 || n > total {
		n = total
	}

	// Resolve the n distinct instructions once.
	pis := m.pis[:0]
	for i := 0; i < n; i++ {
		pi := memo.Prepared(m.CPU, &insts[i])
		if pi.Err != nil {
			m.pis = pis
			return nil, pi.Err
		}
		pis = append(pis, pi)
	}
	m.pis = pis

	p := &m.prog
	p.Insts = insts
	p.Addrs = p.Addrs[:0]
	p.Lens = p.Lens[:0]
	p.Descs = p.Descs[:0]
	p.LCPs = p.LCPs[:0]
	p.AddrReads = p.AddrReads[:0]
	p.DataReads = p.DataReads[:0]
	p.Writes = p.Writes[:0]

	addr := uint64(CodeBase)
	code := m.code[:0]
	for i := 0; i < total; i++ {
		pi := pis[i%n]
		p.Addrs = append(p.Addrs, addr)
		p.Lens = append(p.Lens, len(pi.Raw))
		p.Descs = append(p.Descs, pi.Desc)
		p.LCPs = append(p.LCPs, pi.LCP)
		p.AddrReads = append(p.AddrReads, pi.Addr)
		p.DataReads = append(p.DataReads, pi.Data)
		p.Writes = append(p.Writes, pi.Writes)
		addr += uint64(len(pi.Raw))
		code = append(code, pi.Raw...)
	}
	p.Addrs = append(p.Addrs, addr)
	m.code = code

	m.mapCode(code)
	return p, nil
}

// mapCode installs the code bytes at CodeBase on dedicated frames.
func (m *Machine) mapCode(code []byte) {
	m.codeFrames = m.codeFrames[:0]
	m.codeLen = len(code)
	for off := 0; off < len(code) || off == 0; off += vm.PageSize {
		frame := m.AS.NewPhysPage()
		copy(frame.Data[:], code[off:])
		m.AS.Map(CodeBase+uint64(off), frame)
		m.codeFrames = append(m.codeFrames, frame)
	}
}

// RemapCode restores the code mapping after UnmapAll.
func (m *Machine) RemapCode() {
	for i, frame := range m.codeFrames {
		m.AS.Map(CodeBase+uint64(i*vm.PageSize), frame)
	}
}

// Execute runs the program functionally on the given state, returning the
// dynamic trace. Page faults, divide errors and alignment faults surface
// as errors exactly as signals would.
//
// The returned trace aliases a buffer owned by the machine: it is valid
// until the next Execute call on this machine.
func (m *Machine) Execute(p *Program, st *exec.State) ([]exec.Step, error) {
	return m.ExecuteMonitored(p, st, nil)
}

// ExecuteMonitored is Execute with a page-fault monitor attached: onFault
// is called for every fault, and returning true (after repairing the
// mapping) resumes execution in place. This is the batched form of the
// paper's monitor protocol — one functional pass discovers and maps every
// page the block touches.
func (m *Machine) ExecuteMonitored(p *Program, st *exec.State, onFault func(f *vm.Fault) bool) ([]exec.Step, error) {
	if m.trace == nil {
		m.trace = make([]exec.Step, 0, len(p.Insts))
	}
	r := &exec.Runner{State: st, AS: m.AS, Record: true, Trace: m.trace[:0], Acc: m.acc[:0], OnFault: onFault}
	err := r.Run(p.Insts, p.Addrs)
	m.trace = r.Trace[:0] // keep the (possibly grown) buffers
	m.acc = r.Acc
	if err != nil {
		return r.Trace, err
	}
	return r.Trace, nil
}

// Config controls a timing run.
type Config struct {
	// SwitchRate is the per-cycle context-switch probability; 0 = quiet.
	SwitchRate float64
	// SwitchCost is the cycle cost of one context switch.
	SwitchCost uint64
	// Reference selects the pipeline's retained cycle-by-cycle scheduler
	// instead of the event-driven one (differential testing only).
	Reference bool
	// ModeledFrontEnd selects the uiCA-style decoded front end
	// (pipeline.Config.ModeledFrontEnd); LoopBody is its iteration length
	// in instructions (the basic-block size of an unrolled program).
	ModeledFrontEnd bool
	LoopBody        int
}

func (m *Machine) pipelineConfig(cfg Config) pipeline.Config {
	pcfg := pipeline.Config{
		SwitchRate:      cfg.SwitchRate,
		SwitchCost:      cfg.SwitchCost,
		Reference:       cfg.Reference,
		ModeledFrontEnd: cfg.ModeledFrontEnd,
		LoopBody:        cfg.LoopBody,
	}
	if cfg.SwitchRate > 0 {
		pcfg.Rand = m.Rand
	}
	return pcfg
}

// Time runs the cycle-level model over a completed trace and returns the
// performance counters. Cache state persists across calls; use warm-up
// runs deliberately, as the measurement protocol does.
func (m *Machine) Time(p *Program, steps []exec.Step, cfg Config) pipeline.Counters {
	items := m.buildItems(p, steps)
	return pipeline.Simulate(m.CPU, items, m.L1I, m.L1D, m.pipelineConfig(cfg))
}

// PrepareGraph builds the µop dependence graph for a completed trace once,
// for reuse across many TimeGraph calls. The graph is owned by the machine
// and valid until the next PrepareGraph call; prefix views for sliced
// programs come from Graph.Slice. The trace itself may be released after
// this returns — the graph copies what timing needs.
func (m *Machine) PrepareGraph(p *Program, steps []exec.Step) *pipeline.Graph {
	items := m.buildItems(p, steps)
	m.graph.Build(m.CPU, items)
	return &m.graph
}

// TimeGraph is Time over a prebuilt dependence graph: the per-run cost is
// the scheduling loop alone. Cache state persists across calls exactly as
// with Time. Reference is not honored here — the reference scheduler
// consumes items, not graphs; differential tests go through Time.
func (m *Machine) TimeGraph(g *pipeline.Graph, cfg Config) pipeline.Counters {
	return pipeline.SimulateGraph(m.CPU, g, m.L1I, m.L1D, m.pipelineConfig(cfg))
}

// buildItems converts the functional trace into timed pipeline items. The
// returned slice aliases a machine-owned scratch buffer reused across Time
// calls.
func (m *Machine) buildItems(p *Program, steps []exec.Step) []pipeline.Item {
	if cap(m.items) < len(steps) {
		m.items = make([]pipeline.Item, len(steps))
	}
	items := m.items[:len(steps)]
	// Code-page translation cache: instruction addresses walk forward
	// through a handful of pages, so remember the last page translated.
	var (
		havePage bool
		pageBase uint64
		pagePhys uint64
	)
	for i := range steps {
		st := &steps[i]
		idx := i % len(p.Insts) // traces are the program in order
		it := &items[i]
		it.Desc = p.Descs[idx]
		it.Load = st.Load
		it.Store = st.Store
		it.Subnormal = st.Subnormal
		it.CodeLen = p.Lens[idx]
		it.LCP = p.LCPs[idx]
		it.CodePhys = 0
		va := p.Addrs[idx]
		if base := va & vm.PageMask; havePage && base == pageBase {
			it.CodePhys = pagePhys + (va - base)
		} else if _, phys, ok := m.AS.Translate(va); ok {
			it.CodePhys = phys
			havePage, pageBase, pagePhys = true, base, phys-(va-base)
		}
		it.AddrReads = p.AddrReads[idx]
		it.DataReads = p.DataReads[idx]
		it.Writes = p.Writes[idx]
	}
	return items
}

// RegSets maps an instruction's register usage onto pipeline register ids:
// 0–15 GPRs, 16–31 vector registers, 32 the flags. Results are memoized
// process-wide; the returned slices are shared and read-only.
func RegSets(in *x86.Inst) (addr, data, writes []uint8) {
	return memo.RegSets(in)
}

// RegFlags re-exports the pipeline flags id for convenience.
const RegFlags = pipeline.RegFlags
