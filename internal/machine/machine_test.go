package machine

import (
	"testing"

	"bhive/internal/exec"
	"bhive/internal/uarch"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

// measureTP measures steady-state cycles-per-iteration of a block using the
// two-unroll-factor method, pre-mapping every page the block touches onto a
// single physical frame (the profiler does this automatically; tests do it
// by hand to exercise the machine directly).
func measureTP(t *testing.T, cpu *uarch.CPU, text string, u1, u2 int) float64 {
	t.Helper()
	block, err := x86.Parse(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	run := func(unroll int) uint64 {
		m := New(cpu, 7)
		insts := make([]x86.Inst, 0, len(block)*unroll)
		for i := 0; i < unroll; i++ {
			insts = append(insts, block...)
		}
		p, err := m.Prepare(insts)
		if err != nil {
			t.Fatalf("prepare: %v", err)
		}
		frame := m.AS.NewPhysPage()
		frame.Fill(0x12345600)

		const pattern = 0x12345600
		newState := func() *exec.State {
			st := &exec.State{FTZ: true, DAZ: true}
			st.InitRegisters(pattern)
			return st
		}

		// Mapping loop: intercept faults, map the page, restart.
		for tries := 0; tries < 64; tries++ {
			steps, err := m.Execute(p, newState())
			if err == nil {
				_ = steps
				break
			}
			f, ok := err.(*vm.Fault)
			if !ok {
				t.Fatalf("execute: %v", err)
			}
			m.AS.Map(f.Addr, frame)
		}

		// Warm-up run, then the timed run.
		steps, err := m.Execute(p, newState())
		if err != nil {
			t.Fatalf("post-mapping execute: %v", err)
		}
		m.Time(p, steps, Config{})
		steps, err = m.Execute(p, newState())
		if err != nil {
			t.Fatal(err)
		}
		ctr := m.Time(p, steps, Config{})
		if ctr.L1DReadMisses+ctr.L1DWriteMisses != 0 {
			t.Fatalf("unexpected D-cache misses: %+v", ctr)
		}
		return ctr.Cycles
	}

	c1, c2 := run(u1), run(u2)
	return float64(c2-c1) / float64(u2-u1)
}

func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s: throughput %.2f outside [%v, %v]", name, got, lo, hi)
	}
}

func TestDependentAddChain(t *testing.T) {
	tp := measureTP(t, uarch.Haswell(), "add rax, rbx", 32, 64)
	within(t, "dependent add", tp, 0.95, 1.1)
}

func TestIndependentAdds(t *testing.T) {
	// Four independent single-cycle adds: limited by the 4-wide front end
	// (and 4 ALU ports on Haswell) to ~1 cycle per iteration.
	tp := measureTP(t, uarch.Haswell(), `add rax, 1
		add rbx, 1
		add rcx, 1
		add rdx, 1`, 32, 64)
	within(t, "independent adds", tp, 0.95, 1.4)
}

func TestZeroIdiomThroughput(t *testing.T) {
	// vxorps zero idiom: eliminated at rename, 4 per cycle → 0.25.
	tp := measureTP(t, uarch.Haswell(), "vxorps %xmm2, %xmm2, %xmm2", 64, 128)
	within(t, "vxorps idiom", tp, 0.2, 0.35)
}

func TestDiv32Throughput(t *testing.T) {
	// The paper's case-study block: measured 21.62 on Haswell.
	tp := measureTP(t, uarch.Haswell(), `xor %edx, %edx
		div %ecx
		test %edx, %edx`, 8, 16)
	within(t, "div32 block", tp, 18, 26)
}

func TestDiv64MuchSlower(t *testing.T) {
	tp32 := measureTP(t, uarch.Haswell(), "xor %edx, %edx\ndiv %ecx", 8, 16)
	tp64 := measureTP(t, uarch.Haswell(), "xor %edx, %edx\ndiv %rcx", 8, 16)
	if tp64 < tp32*3 {
		t.Fatalf("64-bit divide (%f) should dwarf 32-bit (%f)", tp64, tp32)
	}
}

func TestLoadLatencyChain(t *testing.T) {
	// Pointer chase: mov rax, [rax] — bound by the 4-cycle load-to-use
	// latency (the loaded value equals the page fill pattern, so the chase
	// stays on one page).
	tp := measureTP(t, uarch.Haswell(), "mov rax, qword ptr [rax]", 16, 32)
	within(t, "pointer chase", tp, 3.8, 5.2)
}

func TestCRCBlockThroughput(t *testing.T) {
	// The paper's Gzip CRC block: measured 8.25 on Haswell. The loop-carried
	// dependence through rdx (xor-al → movzx → table load → xor-rdx)
	// dominates at ~7 cycles, plus occasional line-split table loads.
	tp := measureTP(t, uarch.Haswell(), `add $1, %rdi
		mov %edx, %eax
		shr $8, %rdx
		xorb -1(%rdi), %al
		movzbl %al, %eax
		xor 0x4110a(, %rax, 8), %rdx
		cmp %rcx, %rdi`, 16, 32)
	within(t, "crc block", tp, 6.5, 10.5)
}

func TestFPAddChain(t *testing.T) {
	// addss dependent chain: 3-cycle latency on Haswell, 4 on Skylake.
	hsw := measureTP(t, uarch.Haswell(), "addss xmm0, xmm1", 32, 64)
	within(t, "hsw fp add chain", hsw, 2.8, 3.4)
	skl := measureTP(t, uarch.Skylake(), "addss xmm0, xmm1", 32, 64)
	within(t, "skl fp add chain", skl, 3.8, 4.4)
}

func TestStoreLoadForwarding(t *testing.T) {
	// Store + reload of the same location: bound by forwarding latency,
	// not by a cache round trip.
	tp := measureTP(t, uarch.Haswell(), `mov qword ptr [rsp+0x10], rax
		mov rax, qword ptr [rsp+0x10]`, 16, 32)
	within(t, "store-forward", tp, 4, 9)
}

func TestVectorFPThroughput(t *testing.T) {
	// Two dependent FMA accumulator streams: each advances one 5-cycle FMA
	// per iteration, so the pair is latency-bound at ~5 cycles/iteration.
	tp := measureTP(t, uarch.Haswell(), `vfmadd231ps %ymm2, %ymm3, %ymm0
		vfmadd231ps %ymm2, %ymm3, %ymm1`, 32, 64)
	within(t, "dual fma accumulators", tp, 4.5, 5.5)

	// Ten independent accumulators saturate the two FMA ports instead:
	// 10 FMAs / 2 ports ≈ 5 cycles, and the chains no longer serialize.
	var text string
	for i := 0; i < 10; i++ {
		text += "vfmadd231ps %ymm10, %ymm11, %ymm" + string(rune('0'+i)) + "\n"
	}
	tp10 := measureTP(t, uarch.Haswell(), text, 16, 32)
	within(t, "ten fma accumulators", tp10, 4.5, 6.5)
	perFMA := tp10 / 10
	if perFMA > 0.7 {
		t.Errorf("port-bound FMA throughput %.2f/op, want ≈0.5", perFMA)
	}
}

func TestSubnormalPenalty(t *testing.T) {
	// With FTZ/DAZ off and a subnormal input, FP ops take the microcode
	// path and get dramatically slower.
	block, err := x86.Parse("mulss xmm0, xmm1", x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ftz bool) uint64 {
		m := New(uarch.Haswell(), 3)
		var insts []x86.Inst
		for i := 0; i < 16; i++ {
			insts = append(insts, block...)
		}
		p, err := m.Prepare(insts)
		if err != nil {
			t.Fatal(err)
		}
		st := &exec.State{FTZ: ftz, DAZ: ftz}
		st.InitRegisters(0x12345600)
		// xmm1 lane 0 = smallest subnormal float.
		st.Vec[1] = [32]byte{1}
		st.Vec[0] = [32]byte{0, 0, 0x80, 0x3F} // 1.0f
		steps, err := m.Execute(p, st)
		if err != nil {
			t.Fatal(err)
		}
		m.Time(p, steps, Config{})
		st2 := &exec.State{FTZ: ftz, DAZ: ftz}
		st2.InitRegisters(0x12345600)
		st2.Vec[1] = [32]byte{1}
		st2.Vec[0] = [32]byte{0, 0, 0x80, 0x3F}
		steps, err = m.Execute(p, st2)
		if err != nil {
			t.Fatal(err)
		}
		return m.Time(p, steps, Config{}).Cycles
	}
	slow, fast := run(false), run(true)
	if slow < 5*fast {
		t.Fatalf("subnormal path (%d cycles) should dwarf FTZ path (%d)", slow, fast)
	}
}

func TestICacheOverflowOnLargeUnroll(t *testing.T) {
	// A ~420-byte vectorized block unrolled 100x exceeds the 32KB L1I:
	// steady-state instruction-cache misses appear, as in the paper's
	// motivation for derived-throughput measurement.
	var text string
	for i := 0; i < 30; i++ {
		text += "vfmadd231ps %ymm2, %ymm3, %ymm0\nvaddps %ymm4, %ymm5, %ymm6\nadd rax, 1\n"
	}
	block, err := x86.Parse(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	m := New(uarch.Haswell(), 5)
	var insts []x86.Inst
	for i := 0; i < 100; i++ {
		insts = append(insts, block...)
	}
	p, err := m.Prepare(insts)
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeSize() < 36<<10 {
		t.Fatalf("test block too small: %d bytes", p.CodeSize())
	}
	st := &exec.State{FTZ: true, DAZ: true}
	st.InitRegisters(0x12345600)
	steps, err := m.Execute(p, st)
	if err != nil {
		t.Fatal(err)
	}
	m.Time(p, steps, Config{}) // warm-up
	st2 := &exec.State{FTZ: true, DAZ: true}
	st2.InitRegisters(0x12345600)
	steps, _ = m.Execute(p, st2)
	ctr := m.Time(p, steps, Config{})
	if ctr.L1IMisses == 0 {
		t.Fatal("expected steady-state I-cache misses for a 40KB unroll")
	}
}

func TestContextSwitchInjection(t *testing.T) {
	m := New(uarch.Haswell(), 11)
	block, _ := x86.Parse("add rax, rbx", x86.SyntaxAuto)
	var insts []x86.Inst
	for i := 0; i < 200; i++ {
		insts = append(insts, block...)
	}
	p, err := m.Prepare(insts)
	if err != nil {
		t.Fatal(err)
	}
	st := &exec.State{}
	st.InitRegisters(0x12345600)
	steps, err := m.Execute(p, st)
	if err != nil {
		t.Fatal(err)
	}
	// A huge switch rate guarantees at least one interrupt.
	ctr := m.Time(p, steps, Config{SwitchRate: 0.05, SwitchCost: 1000})
	if ctr.ContextSwitches == 0 {
		t.Fatal("expected injected context switches")
	}
	quiet := m.Time(p, steps, Config{})
	if quiet.Cycles >= ctr.Cycles {
		t.Fatal("context switches must inflate the cycle count")
	}
}

func TestMisalignedAccessCounter(t *testing.T) {
	m := New(uarch.Haswell(), 13)
	// Load crossing a 64-byte line boundary.
	block, _ := x86.Parse("mov rax, qword ptr [rbx+0x3c]", x86.SyntaxIntel)
	p, err := m.Prepare(block)
	if err != nil {
		t.Fatal(err)
	}
	frame := m.AS.NewPhysPage()
	base := uint64(0x30000)
	m.AS.Map(base, frame)
	st := &exec.State{}
	st.InitRegisters(base)
	steps, err := m.Execute(p, st)
	if err != nil {
		t.Fatal(err)
	}
	ctr := m.Time(p, steps, Config{})
	if ctr.MisalignedLoads == 0 {
		t.Fatal("line-crossing load must bump the misaligned counter")
	}
}

func TestUnsupportedInstructionOnIVB(t *testing.T) {
	m := New(uarch.IvyBridge(), 1)
	block, _ := x86.Parse("vfmadd231ps %ymm1, %ymm2, %ymm3", x86.SyntaxATT)
	if _, err := m.Prepare(block); err == nil {
		t.Fatal("Ivy Bridge must reject FMA")
	}
}

func TestResetAndRemap(t *testing.T) {
	m := New(uarch.Haswell(), 1)
	block, _ := x86.Parse("mov rax, qword ptr [rip+0x10]", x86.SyntaxIntel)
	p, err := m.Prepare(block)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	if m.AS.NumMappings() == 0 {
		t.Fatal("Prepare must map the code")
	}
	m.AS.UnmapAll()
	m.RemapCode()
	if m.AS.NumMappings() == 0 {
		t.Fatal("RemapCode must restore the code pages")
	}
	m.ResetMemory()
	if m.AS.NumMappings() != 0 {
		t.Fatal("ResetMemory must clear the address space")
	}
}

func TestRegSetsFlagsAndImplicits(t *testing.T) {
	in, _ := x86.ParseInst("adc rax, rbx", x86.SyntaxIntel)
	_, data, writes := RegSets(&in)
	hasFlagRead, hasFlagWrite := false, false
	for _, r := range data {
		if r == RegFlags {
			hasFlagRead = true
		}
	}
	for _, r := range writes {
		if r == RegFlags {
			hasFlagWrite = true
		}
	}
	if !hasFlagRead || !hasFlagWrite {
		t.Fatal("adc reads and writes flags")
	}

	div, _ := x86.ParseInst("div ecx", x86.SyntaxIntel)
	_, data, writes = RegSets(&div)
	found := map[uint8]bool{}
	for _, r := range data {
		found[r] = true
	}
	if !found[0] || !found[2] { // rax, rdx
		t.Fatalf("div implicit reads: %v", data)
	}
	foundW := map[uint8]bool{}
	for _, r := range writes {
		foundW[r] = true
	}
	if !foundW[0] || !foundW[2] {
		t.Fatalf("div implicit writes: %v", writes)
	}

	mem, _ := x86.ParseInst("mov rax, qword ptr [rbx+rcx*2]", x86.SyntaxIntel)
	addr, _, _ := RegSets(&mem)
	if len(addr) != 2 {
		t.Fatalf("addressing registers: %v", addr)
	}
}
