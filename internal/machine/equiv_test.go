package machine

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"bhive/internal/exec"
	"bhive/internal/pipeline"
	"bhive/internal/uarch"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

// The differential harness for the two pipeline schedulers: the retained
// cycle-by-cycle reference loop (Config.Reference) and the default
// event-driven one. They are required to be bit-identical — same Counters
// on every run, including cache-state evolution across runs and the
// context-switch RNG draw sequence. The deterministic tests sweep curated
// scenarios; FuzzSimulateEquivalence explores random block compositions.

// equivPool is the instruction vocabulary fuzz inputs select from. It is
// chosen to reach every scheduler feature: dependence chains, zero idioms,
// eliminated moves, loads, stores (full and partial overlap for
// forwarding/commit stalls), line splits, pointer chases, the non-pipelined
// divider, FP and FMA work, and multi-µop RMW memory ops.
var equivPool = []string{
	"add rax, rbx",
	"add rbx, 1",
	"imul rcx, rdx",
	"xor edx, edx",  // zero idiom
	"mov rax, rbx",  // eliminated move
	"mov rcx, qword ptr [rsp+8]",
	"mov qword ptr [rsp+8], rcx",
	"mov qword ptr [rsp+12], rax", // partially overlaps the qword at +8
	"mov rdx, qword ptr [rsp+12]",
	"mov al, byte ptr [rsp+8]", // contained in the store above: forwardable
	"mov rax, qword ptr [rax]", // pointer chase
	"xor rdx, qword ptr [rax+0x3c]",
	"movzx eax, al",
	"addss xmm0, xmm1",
	"mulsd xmm2, xmm3",
	"vfmadd231ps ymm0, ymm1, ymm2", // unsupported on Ivy Bridge
	"div ecx",
	"nop",
	"cmp rcx, rdi",
	"shr rdx, 8",
	"lea rax, [rbx+rcx*2]",
}

var equivCPUs = []func() *uarch.CPU{uarch.Haswell, uarch.Skylake, uarch.IvyBridge, uarch.IceLake}

// equivCounters runs the full measurement motion — prepare, fault-driven
// page mapping, functional execution, then three timing runs (cold, warm,
// and a third that advances any switch RNG) — on a fresh machine with the
// chosen scheduler, and returns the counters of every run. The base config
// carries everything but the scheduler selection (switch injection, the
// modeled front end). ok is false if the input cannot be prepared or
// executed; that decision is taken before any timing happens, so it cannot
// differ between schedulers.
func equivCounters(cpu *uarch.CPU, insts []x86.Inst, base Config, reference bool) (out [3]pipeline.Counters, ok bool) {
	m := New(cpu, 42)
	p, err := m.Prepare(insts)
	if err != nil {
		return out, false
	}
	frame := m.AS.NewPhysPage()
	frame.Fill(0x12345600)
	newState := func() *exec.State {
		st := &exec.State{FTZ: true, DAZ: true}
		st.InitRegisters(0x12345600)
		return st
	}
	mapped := false
	for tries := 0; tries < 64; tries++ {
		if _, err := m.Execute(p, newState()); err == nil {
			mapped = true
			break
		} else if f, isFault := err.(*vm.Fault); isFault {
			m.AS.Map(f.Addr, frame)
		} else {
			return out, false
		}
	}
	if !mapped {
		return out, false
	}
	steps, err := m.Execute(p, newState())
	if err != nil {
		return out, false
	}
	cfg := base
	cfg.Reference = reference
	for i := range out {
		out[i] = m.Time(p, steps, cfg)
	}
	return out, true
}

// checkEquivalence drives one block through both schedulers and fails the
// test on any counter divergence.
func checkEquivalence(t *testing.T, label string, cpu *uarch.CPU, insts []x86.Inst, base Config) {
	t.Helper()
	ref, okRef := equivCounters(cpu, insts, base, true)
	evt, okEvt := equivCounters(cpu, insts, base, false)
	if okRef != okEvt {
		t.Fatalf("%s: schedulers disagree on runnability: reference=%v event=%v", label, okRef, okEvt)
	}
	if !okRef {
		return
	}
	for i := range ref {
		if ref[i] != evt[i] {
			t.Errorf("%s: run %d diverges:\n  reference %+v\n  event     %+v", label, i, ref[i], evt[i])
		}
	}
}

func unrollInsts(block []x86.Inst, unroll int) []x86.Inst {
	insts := make([]x86.Inst, 0, len(block)*unroll)
	for i := 0; i < unroll; i++ {
		insts = append(insts, block...)
	}
	return insts
}

// TestSimulateEquivalenceCorpus pins the scheduler equivalence on curated
// scenarios so plain `go test` (no fuzzing) still exercises the
// differential check: every pool instruction alone, classic interaction
// pairs, an I-cache-overflowing unroll, and context-switch injection.
func TestSimulateEquivalenceCorpus(t *testing.T) {
	for ci, mk := range equivCPUs {
		cpu := mk()
		for pi, text := range equivPool {
			block, err := x86.Parse(text, x86.SyntaxAuto)
			if err != nil {
				t.Fatalf("parse %q: %v", text, err)
			}
			checkEquivalence(t, cpu.Name+"/"+text, cpu, unrollInsts(block, 24), Config{})
			if ci == 0 && pi%3 == 0 {
				checkEquivalence(t, cpu.Name+"/"+text+"/switchy", cpu,
					unrollInsts(block, 24), Config{SwitchRate: 0.02, SwitchCost: 700})
			}
			if pi%4 == 0 {
				checkEquivalence(t, cpu.Name+"/"+text+"/modeled-fe", cpu,
					unrollInsts(block, 24), Config{ModeledFrontEnd: true, LoopBody: len(block)})
			}
		}
	}

	cpu := uarch.Haswell()
	scenarios := []string{
		// Store→load forwarding and partial-overlap commit stalls.
		"mov qword ptr [rsp+8], rcx\nmov al, byte ptr [rsp+8]\nmov rdx, qword ptr [rsp+12]",
		// Divider occupancy against independent ALU work.
		"xor edx, edx\ndiv ecx\nadd rbx, 1\nadd rdi, 1",
		// The paper's CRC case study shape: chain through a table load.
		"add rdi, 1\nmov eax, edx\nshr rdx, 8\nmovzx eax, al\nxor rdx, qword ptr [rax*8+0x4110a]\ncmp rcx, rdi",
		// Zero idiom + eliminated move breaking a chain.
		"imul rcx, rdx\nxor edx, edx\nmov rdx, rcx\nadd rdx, 1",
	}
	for _, text := range scenarios {
		block, err := x86.Parse(text, x86.SyntaxAuto)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		for _, unroll := range []int{1, 7, 40} {
			checkEquivalence(t, text, cpu, unrollInsts(block, unroll), Config{})
		}
		checkEquivalence(t, text+"/switchy", cpu, unrollInsts(block, 40), Config{SwitchRate: 0.005, SwitchCost: 2000})
		checkEquivalence(t, text+"/modeled-fe", cpu, unrollInsts(block, 40),
			Config{ModeledFrontEnd: true, LoopBody: len(block)})
	}

	// Large unroll overflowing the L1I: fetch stalls and steady-state
	// I-cache misses under both schedulers.
	var big string
	for i := 0; i < 30; i++ {
		big += "vfmadd231ps ymm0, ymm1, ymm2\nvaddps ymm6, ymm4, ymm5\nadd rax, 1\n"
	}
	block, err := x86.Parse(big, x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "icache-overflow", cpu, unrollInsts(block, 100), Config{})
	checkEquivalence(t, "icache-overflow/modeled-fe", cpu, unrollInsts(block, 100),
		Config{ModeledFrontEnd: true, LoopBody: len(block)})
}

// TestTimeGraphMatchesTime pins the prepare-once graph path: timing through
// PrepareGraph/TimeGraph — including prefix slices, as the profiler's
// hi→lo derivation uses them — must equal the item-based Time path.
func TestTimeGraphMatchesTime(t *testing.T) {
	cpu := uarch.Haswell()
	text := "add rdi, 1\nmov eax, edx\nshr rdx, 8\nmovzx eax, al\nxor rdx, qword ptr [rax*8+0x4110a]\ncmp rcx, rdi"
	block, err := x86.Parse(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatal(err)
	}
	n := len(block)

	setup := func() (*Machine, *Program, []exec.Step) {
		m := New(cpu, 17)
		p, err := m.Prepare(unrollInsts(block, 16))
		if err != nil {
			t.Fatal(err)
		}
		frame := m.AS.NewPhysPage()
		frame.Fill(0x12345600)
		newState := func() *exec.State {
			st := &exec.State{FTZ: true, DAZ: true}
			st.InitRegisters(0x12345600)
			return st
		}
		for tries := 0; tries < 64; tries++ {
			_, err := m.Execute(p, newState())
			if err == nil {
				break
			}
			f, isFault := err.(*vm.Fault)
			if !isFault {
				t.Fatal(err)
			}
			m.AS.Map(f.Addr, frame)
		}
		steps, err := m.Execute(p, newState())
		if err != nil {
			t.Fatal(err)
		}
		return m, p, steps
	}

	for _, slice := range []int{16 * n, 5 * n} {
		mA, pA, stepsA := setup()
		want := [2]pipeline.Counters{
			mA.Time(pA.Slice(slice), stepsA[:slice], Config{}),
			mA.Time(pA.Slice(slice), stepsA[:slice], Config{}),
		}
		mB, pB, stepsB := setup()
		g := mB.PrepareGraph(pB, stepsB).Slice(slice)
		got := [2]pipeline.Counters{
			mB.TimeGraph(g, Config{}),
			mB.TimeGraph(g, Config{}),
		}
		if got != want {
			t.Errorf("slice %d: TimeGraph %+v != Time %+v", slice, got, want)
		}
	}
}

var updateGolden = flag.Bool("update-golden", false, "rewrite the legacy-counters golden file")

// TestLegacyCountersGolden pins the exact warm-run counters of the legacy
// (default) front end on every pool block for every µarch against a
// committed golden file: any change to default-mode simulation — however
// indirect, e.g. through front-end refactoring — shows up as a byte diff
// here, not just as drift in aggregated harness tables. Regenerate with
// `go test ./internal/machine -run LegacyCountersGolden -update-golden`
// only when a simulator change is intentional.
func TestLegacyCountersGolden(t *testing.T) {
	var sb strings.Builder
	for _, mk := range equivCPUs {
		cpu := mk()
		for pi, text := range equivPool {
			block, err := x86.Parse(text, x86.SyntaxAuto)
			if err != nil {
				t.Fatalf("parse %q: %v", text, err)
			}
			out, ok := equivCounters(cpu, unrollInsts(block, 16), Config{}, false)
			if !ok {
				fmt.Fprintf(&sb, "%s %2d unsupported  # %s\n", cpu.Name, pi, text)
				continue
			}
			fmt.Fprintf(&sb, "%s %2d %+v  # %s\n", cpu.Name, pi, out[1], text)
		}
	}
	const path = "testdata/legacy_counters.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if string(want) != sb.String() {
		t.Errorf("legacy counters drifted from %s:\n--- want ---\n%s--- got ---\n%s", path, want, sb.String())
	}
}

// FuzzSimulateEquivalence drives randomly composed, corpus-flavored blocks
// through the reference and event-driven schedulers and requires identical
// Counters on every run. Zero divergences is a merge requirement for any
// scheduler change.
func FuzzSimulateEquivalence(f *testing.F) {
	f.Add([]byte{0, 5, 6, 9}, uint8(16), uint8(0))
	f.Add([]byte{16, 3, 1, 1}, uint8(8), uint8(4))
	f.Add([]byte{6, 7, 8, 9, 10}, uint8(24), uint8(2))
	f.Add([]byte{13, 14, 15, 2}, uint8(12), uint8(7))
	f.Add([]byte{10, 10, 11}, uint8(30), uint8(5))
	f.Add([]byte{0, 5, 6, 9}, uint8(16), uint8(12))  // modeled FE, haswell
	f.Add([]byte{13, 14, 15, 2}, uint8(12), uint8(15)) // modeled FE, icelake
	f.Add([]byte{16, 3, 1, 1}, uint8(8), uint8(19))  // modeled FE + switches
	f.Fuzz(func(t *testing.T, sel []byte, unrollByte, mode uint8) {
		if len(sel) == 0 || len(sel) > 12 {
			return
		}
		cpu := equivCPUs[int(mode)%len(equivCPUs)]()
		var cfg Config
		switch (int(mode) / len(equivCPUs)) % 3 {
		case 1:
			cfg.SwitchRate, cfg.SwitchCost = 0.01, 500
		case 2:
			cfg.SwitchRate, cfg.SwitchCost = 0.0004, 12000
		}
		var block []x86.Inst
		for _, b := range sel {
			insts, err := x86.Parse(equivPool[int(b)%len(equivPool)], x86.SyntaxAuto)
			if err != nil {
				t.Fatalf("pool parse: %v", err)
			}
			block = append(block, insts...)
		}
		if (int(mode)/(len(equivCPUs)*3))%2 == 1 {
			cfg.ModeledFrontEnd, cfg.LoopBody = true, len(block)
		}
		unroll := 1 + int(unrollByte)%32
		insts := unrollInsts(block, unroll)
		if len(insts) > 384 {
			insts = insts[:384]
		}
		checkEquivalence(t, "fuzz", cpu, insts, cfg)
	})
}
