package uarch

import "sort"

// PortCombinations returns the distinct execution-port combinations that
// micro-ops can use on this CPU, sorted by their notation. This is the
// vocabulary of the basic-block topic model: on Haswell there are exactly
// 13 combinations, matching the count reported in the paper (which takes
// its mapping from Abel and Reineke).
func (c *CPU) PortCombinations() []PortSet {
	all := []PortSet{
		c.intALUPorts, c.shiftPorts, c.shiftCLPorts, c.leaPorts, c.mulPorts,
		c.divPorts, c.vecALUPorts, c.vecLogPorts, c.vecMulPorts,
		c.vecShiftPort, c.vecCmpPorts, c.fpAddPorts, c.fpMulPorts,
		c.shufflePorts, c.transferPort, c.branchPorts,
		c.LoadPorts, c.StoreAddrPorts, c.StoreDataPorts,
	}
	seen := make(map[PortSet]bool, len(all))
	var out []PortSet
	for _, p := range all {
		if p != 0 && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ComboIndex returns a map from port combination to its index in
// PortCombinations, for building topic-model documents.
func (c *CPU) ComboIndex() map[PortSet]int {
	m := make(map[PortSet]int)
	for i, p := range c.PortCombinations() {
		m[p] = i
	}
	return m
}
