package uarch

import (
	"testing"

	"bhive/internal/x86"
)

func parse(t *testing.T, text string) *x86.Inst {
	t.Helper()
	in, err := x86.ParseInst(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return &in
}

func TestHaswellPortCombinationCount(t *testing.T) {
	combos := Haswell().PortCombinations()
	if len(combos) != 13 {
		names := make([]string, len(combos))
		for i, c := range combos {
			names[i] = c.String()
		}
		t.Fatalf("Haswell must expose exactly 13 port combinations (paper); got %d: %v",
			len(combos), names)
	}
}

func TestPortSetString(t *testing.T) {
	if got := Ports(0, 1, 5, 6).String(); got != "p0156" {
		t.Fatalf("got %s", got)
	}
	if got := Ports(2, 3, 7).String(); got != "p237" {
		t.Fatalf("got %s", got)
	}
	if Ports(0, 1).Count() != 2 {
		t.Fatal("count")
	}
	if !Ports(4).Has(4) || Ports(4).Has(3) {
		t.Fatal("has")
	}
}

func TestZeroIdioms(t *testing.T) {
	hsw := Haswell()
	for _, text := range []string{
		"xor eax, eax",
		"sub rbx, rbx",
		"pxor xmm1, xmm1",
		"xorps xmm0, xmm0",
		"vxorps %xmm2, %xmm2, %xmm2",
		"vpxor %ymm1, %ymm1, %ymm1",
	} {
		d, err := hsw.Describe(parse(t, text))
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if !d.ZeroIdiom || len(d.Uops) != 0 || d.FusedUops != 1 {
			t.Errorf("%s: expected zero idiom, got %+v", text, d)
		}
	}
	// Not idioms: different registers.
	d, _ := hsw.Describe(parse(t, "xor eax, ebx"))
	if d.ZeroIdiom {
		t.Error("xor eax, ebx is not a zero idiom")
	}
	d, _ = hsw.Describe(parse(t, "vxorps %xmm1, %xmm2, %xmm3"))
	if d.ZeroIdiom {
		t.Error("vxorps with distinct sources is not a zero idiom")
	}
	// pcmpeq is a ones idiom, not a zero idiom: it must still execute.
	d, _ = hsw.Describe(parse(t, "pcmpeqb xmm1, xmm1"))
	if d.ZeroIdiom {
		t.Error("pcmpeqb is not a zero idiom")
	}
}

func TestMoveElimination(t *testing.T) {
	hsw := Haswell()
	d, err := hsw.Describe(parse(t, "mov rax, rbx"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.EliminatedMove || len(d.Uops) != 0 {
		t.Fatalf("mov reg,reg should be eliminated: %+v", d)
	}
	// 8-bit moves merge and cannot be eliminated.
	d, _ = hsw.Describe(parse(t, "mov al, bl"))
	if d.EliminatedMove {
		t.Fatal("8-bit mov must not be eliminated")
	}
	// Memory moves are not eliminated.
	d, _ = hsw.Describe(parse(t, "mov rax, qword ptr [rbx]"))
	if d.EliminatedMove {
		t.Fatal("load must not be eliminated")
	}
}

func TestDescribeMemoryDecoration(t *testing.T) {
	hsw := Haswell()
	cases := []struct {
		text     string
		uops     int
		fused    int
		hasLoad  bool
		hasStore bool
	}{
		{"mov rax, qword ptr [rbx]", 1, 1, true, false},
		{"mov qword ptr [rbx], rax", 2, 1, false, true},
		{"add rax, qword ptr [rbx]", 2, 1, true, false},
		{"add qword ptr [rbx], rax", 4, 2, true, true},
		{"add rax, rbx", 1, 1, false, false},
		{"lea rax, [rbx+8]", 1, 1, false, false},
	}
	for _, c := range cases {
		d, err := hsw.Describe(parse(t, c.text))
		if err != nil {
			t.Fatalf("%s: %v", c.text, err)
		}
		if len(d.Uops) != c.uops || d.FusedUops != c.fused {
			t.Errorf("%s: got %d uops (%d fused), want %d (%d)",
				c.text, len(d.Uops), d.FusedUops, c.uops, c.fused)
		}
		gotLoad, gotStore := false, false
		for _, u := range d.Uops {
			gotLoad = gotLoad || u.Class == ClassLoad
			gotStore = gotStore || u.Class == ClassStoreData
		}
		if gotLoad != c.hasLoad || gotStore != c.hasStore {
			t.Errorf("%s: load=%v store=%v want %v %v",
				c.text, gotLoad, gotStore, c.hasLoad, c.hasStore)
		}
	}
}

func TestDivLatencies(t *testing.T) {
	hsw := Haswell()
	d32, _ := hsw.Describe(parse(t, "div ecx"))
	d64, _ := hsw.Describe(parse(t, "div rcx"))
	if d32.Uops[0].Lat >= d64.Uops[0].Lat {
		t.Fatalf("32-bit divide (%d) must be much faster than 64-bit (%d)",
			d32.Uops[0].Lat, d64.Uops[0].Lat)
	}
	if d32.Uops[0].Occupancy == 0 {
		t.Fatal("divider must be non-pipelined")
	}
}

func TestIvyBridgeRejectsAVX2(t *testing.T) {
	ivb := IvyBridge()
	for _, text := range []string{
		"vfmadd231ps %ymm1, %ymm2, %ymm3",
		"vpaddd %ymm0, %ymm1, %ymm2",
		"vpbroadcastd %xmm0, %xmm1",
	} {
		if _, err := ivb.Describe(parse(t, text)); err == nil {
			t.Errorf("%s: Ivy Bridge should reject this", text)
		}
	}
	// 256-bit float AVX is fine on Ivy Bridge; 128-bit VEX integer too.
	for _, text := range []string{
		"vaddps %ymm1, %ymm2, %ymm3",
		"vpaddd %xmm0, %xmm1, %xmm2",
	} {
		if _, err := ivb.Describe(parse(t, text)); err != nil {
			t.Errorf("%s: Ivy Bridge should accept this: %v", text, err)
		}
	}
	hsw := Haswell()
	if _, err := hsw.Describe(parse(t, "vfmadd231ps %ymm1, %ymm2, %ymm3")); err != nil {
		t.Errorf("Haswell supports FMA: %v", err)
	}
}

func TestSkylakeDiffersFromHaswell(t *testing.T) {
	hsw, skl := Haswell(), Skylake()
	if hsw.fpAddLat == skl.fpAddLat && hsw.fpAddPorts == skl.fpAddPorts {
		t.Fatal("Skylake FP add should differ from Haswell")
	}
	if skl.ROBSize <= hsw.ROBSize {
		t.Fatal("Skylake has a larger ROB")
	}
	addSKL, _ := skl.Describe(parse(t, "addps xmm0, xmm1"))
	addHSW, _ := hsw.Describe(parse(t, "addps xmm0, xmm1"))
	if addSKL.Uops[0].Lat == addHSW.Uops[0].Lat {
		t.Fatal("FP add latency differs between SKL (4) and HSW (3)")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"haswell", "hsw", "ivybridge", "ivb", "skylake", "skl"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("cannonlake"); err == nil {
		t.Error("unknown microarchitecture must error")
	}
	if len(All()) != 3 {
		t.Error("three validated microarchitectures")
	}
}

func TestFPFlagPropagates(t *testing.T) {
	hsw := Haswell()
	d, _ := hsw.Describe(parse(t, "mulsd xmm0, xmm1"))
	if !d.FP {
		t.Fatal("mulsd is an FP op")
	}
	d, _ = hsw.Describe(parse(t, "paddd xmm0, xmm1"))
	if d.FP {
		t.Fatal("paddd is integer")
	}
}

func TestDescribeEveryOpcode(t *testing.T) {
	// Every form in the encoding table must be describable on Haswell
	// (no panics, sane µop counts).
	hsw := Haswell()
	for i := range x86.Forms {
		f := &x86.Forms[i]
		if f.Op.IsBranch() {
			continue
		}
		in := instForForm(f)
		if in == nil {
			continue
		}
		d, err := hsw.Describe(in)
		if err != nil {
			t.Errorf("%v: %v", in, err)
			continue
		}
		if !d.ZeroIdiom && !d.EliminatedMove && d.FusedUops == 0 {
			t.Errorf("%v: zero fused µops", in)
		}
		if len(d.Uops) > 6 {
			t.Errorf("%v: implausible µop count %d", in, len(d.Uops))
		}
		for _, u := range d.Uops {
			if u.Ports == 0 {
				t.Errorf("%v: µop with empty port set", in)
			}
		}
	}
}

// instForForm builds a canonical instruction for an encoding form.
func instForForm(f *x86.Form) *x86.Inst {
	in := &x86.Inst{Op: f.Op}
	for _, p := range f.Args {
		o, ok := canonicalOperand(p)
		if !ok {
			return nil
		}
		in.Args = append(in.Args, o)
	}
	return in
}

func canonicalOperand(p x86.ArgPat) (x86.Operand, bool) {
	mem := func(size uint8) x86.Operand {
		return x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 8, Size: size})
	}
	switch p {
	case x86.PatR8:
		return x86.RegOp(x86.CL), true
	case x86.PatR16:
		return x86.RegOp(x86.CX), true
	case x86.PatR32:
		return x86.RegOp(x86.ECX), true
	case x86.PatR64:
		return x86.RegOp(x86.RCX), true
	case x86.PatRM8:
		return mem(1), true
	case x86.PatRM16:
		return mem(2), true
	case x86.PatRM32:
		return mem(4), true
	case x86.PatRM64:
		return mem(8), true
	case x86.PatM:
		return mem(0), true
	case x86.PatM32, x86.PatXM32:
		return mem(4), true
	case x86.PatM64, x86.PatXM64:
		return mem(8), true
	case x86.PatM128, x86.PatXM128:
		return mem(16), true
	case x86.PatM256, x86.PatYM256:
		return mem(32), true
	case x86.PatImm8, x86.PatImm16, x86.PatImm32, x86.PatImm64:
		return x86.ImmOp(7), true
	case x86.PatXMM:
		return x86.RegOp(x86.X1), true
	case x86.PatYMM:
		return x86.RegOp(x86.Y1), true
	case x86.PatCL:
		return x86.RegOp(x86.CL), true
	}
	return x86.Operand{}, false
}

// TestLatencyGoldens pins key latencies against the published values the
// tables are calibrated to (Agner Fog / uops.info, approximately).
func TestLatencyGoldens(t *testing.T) {
	type golden struct {
		text string
		lat  map[string]uint8 // per-µarch expected compute latency
	}
	cases := []golden{
		{"add rax, rbx", map[string]uint8{"ivybridge": 1, "haswell": 1, "skylake": 1}},
		{"imul rax, rbx", map[string]uint8{"ivybridge": 3, "haswell": 3, "skylake": 3}},
		{"addss xmm0, xmm1", map[string]uint8{"ivybridge": 3, "haswell": 3, "skylake": 4}},
		{"mulps xmm0, xmm1", map[string]uint8{"ivybridge": 5, "haswell": 5, "skylake": 4}},
		{"vfmadd231ps %ymm0, %ymm1, %ymm2", map[string]uint8{"haswell": 5, "skylake": 4}},
		{"div ecx", map[string]uint8{"ivybridge": 22, "haswell": 21, "skylake": 23}},
	}
	for _, c := range cases {
		for _, cpu := range All() {
			want, ok := c.lat[cpu.Name]
			if !ok {
				continue
			}
			d, err := cpu.Describe(parse(t, c.text))
			if err != nil {
				t.Fatalf("%s on %s: %v", c.text, cpu.Name, err)
			}
			got := uint8(0)
			for _, u := range d.Uops {
				if u.Class != ClassLoad && u.Class != ClassStoreAddr && u.Class != ClassStoreData {
					got = u.Lat
				}
			}
			if got != want {
				t.Errorf("%s on %s: latency %d, want %d", c.text, cpu.Name, got, want)
			}
		}
	}
}

// TestLoadToUseLatency pins the L1 load-to-use latency at 4 cycles on all
// three cores.
func TestLoadToUseLatency(t *testing.T) {
	for _, cpu := range All() {
		d, err := cpu.Describe(parse(t, "mov rax, qword ptr [rbx]"))
		if err != nil {
			t.Fatal(err)
		}
		if d.Uops[0].Class != ClassLoad || d.Uops[0].Lat != 4 {
			t.Errorf("%s: load µop %+v", cpu.Name, d.Uops[0])
		}
	}
}

// TestStorePortsDiffer: Haswell/Skylake add the dedicated port-7 store AGU
// that Ivy Bridge lacks.
func TestStorePortsDiffer(t *testing.T) {
	if IvyBridge().StoreAddrPorts.Has(7) {
		t.Error("Ivy Bridge has no port 7")
	}
	if !Haswell().StoreAddrPorts.Has(7) || !Skylake().StoreAddrPorts.Has(7) {
		t.Error("Haswell/Skylake store AGU on port 7")
	}
}
