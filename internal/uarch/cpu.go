// Package uarch defines the microarchitectural parameter files for the
// three Intel cores the BHive paper validates against — Ivy Bridge, Haswell
// and Skylake — and the mapping from instructions to micro-ops with their
// execution-port combinations and latencies (in the style of Abel and
// Reineke's reverse-engineered tables that the paper uses for basic-block
// classification).
package uarch

import (
	"fmt"
	"strings"
)

// PortSet is a bitmask of execution ports (bit i = port i).
type PortSet uint16

// Ports builds a PortSet from port numbers.
func Ports(ns ...int) PortSet {
	var p PortSet
	for _, n := range ns {
		p |= 1 << n
	}
	return p
}

// Has reports whether port n is in the set.
func (p PortSet) Has(n int) bool { return p&(1<<n) != 0 }

// Count returns the number of ports in the set.
func (p PortSet) Count() int {
	n := 0
	for q := p; q != 0; q &= q - 1 {
		n++
	}
	return n
}

// String renders the set in Abel-and-Reineke notation, e.g. "p0156".
func (p PortSet) String() string {
	if p == 0 {
		return "none"
	}
	var b strings.Builder
	b.WriteByte('p')
	for i := 0; i < 16; i++ {
		if p.Has(i) {
			fmt.Fprintf(&b, "%d", i)
		}
	}
	return b.String()
}

// UopClass is the functional class of a micro-op.
type UopClass uint8

const (
	ClassNop UopClass = iota
	ClassLoad
	ClassStoreAddr
	ClassStoreData
	ClassIntALU
	ClassIntShift
	ClassIntMul
	ClassIntDiv
	ClassLEA
	ClassVecALU   // packed integer arithmetic
	ClassVecLogic // bitwise vector ops and register moves
	ClassVecMul
	ClassVecShift
	ClassFPAdd
	ClassFPMul
	ClassFMA
	ClassFPDiv
	ClassShuffle
	ClassTransfer // GPR <-> XMM moves
	ClassBranch
)

var uopClassNames = [...]string{
	"nop", "load", "store-addr", "store-data", "int-alu", "int-shift",
	"int-mul", "int-div", "lea", "vec-alu", "vec-logic", "vec-mul",
	"vec-shift", "fp-add", "fp-mul", "fma", "fp-div", "shuffle",
	"transfer", "branch",
}

func (c UopClass) String() string {
	if int(c) < len(uopClassNames) {
		return uopClassNames[c]
	}
	return "uop?"
}

// Uop is one micro-op of a decoded instruction.
type Uop struct {
	Class UopClass
	Ports PortSet
	// Lat is the latency in cycles from issue to when dependents may issue.
	Lat uint8
	// Occupancy is the number of cycles the (non-pipelined) functional unit
	// stays busy; 0 means fully pipelined.
	Occupancy uint8
}

// Desc is the microarchitectural description of one instruction.
type Desc struct {
	// Uops in program order: loads first, then computation, then
	// store-address and store-data.
	Uops []Uop
	// FusedUops is the micro-op count in the fused domain (what the
	// front-end and renamer see; micro-fusion combines a load with its
	// consuming ALU op, and a store's address and data µops).
	FusedUops int
	// ZeroIdiom marks dependency-breaking idioms (xor reg,reg and friends)
	// that the renamer eliminates: no execution µop, zero latency.
	ZeroIdiom bool
	// EliminatedMove marks register-register moves removed at rename.
	EliminatedMove bool
	// FP marks floating-point data ops, which are subject to the
	// subnormal-operand penalty when MXCSR FTZ/DAZ is off.
	FP bool
	// Generic marks descriptors whose opcode is missing from the µop
	// table and fell back to the conservative single-cycle ALU default.
	// The simulator still runs them, but any static cycle bound derived
	// from this descriptor is vacuous (the real latency/ports are
	// unknown); bhive-lint surfaces these as BL015.
	Generic bool
}

// FrontEnd is the decoded-front-end parameter file consumed by the
// modeled front end (pipeline.Config.ModeledFrontEnd): the legacy decode
// pipeline (MITE), the decoded-µop cache (DSB), the loop stream detector
// (LSD), and the penalties for switching between delivery paths. The
// numbers follow Abel and Reineke's uiCA characterization. A zero-valued
// FrontEnd disables the modeled stage (the simulator falls back to the
// 16-bytes-per-cycle fetch approximation).
type FrontEnd struct {
	// DecodeWidth is the number of instructions the legacy decoders accept
	// per cycle. One decoder is complex (multi-µop instructions must lead
	// a decode group); the remaining DecodeWidth-1 are simple.
	DecodeWidth int
	// LCPStall is the predecoder stall, in cycles, per instruction whose
	// 0x66 operand-size prefix changes the immediate length.
	LCPStall int
	// DSBWidth is the fused-domain µop delivery rate of the µop cache.
	DSBWidth int
	// DSBSets × DSBWays × DSBLineUops describe the µop-cache geometry: a
	// 32-byte code window maps to one set and may occupy at most three
	// ways; each way holds up to DSBLineUops µops.
	DSBSets     int
	DSBWays     int
	DSBLineUops int
	// LSDSize is the loop-stream-detector capacity in fused µops; bodies
	// that fit stream from the µop queue with no front-end constraint.
	// 0 = LSD disabled (Skylake: the SKL150 erratum fix disables it).
	LSDSize int
	// SwitchPenalty is the cycle cost of a DSB↔MITE delivery switch.
	SwitchPenalty int
}

// CPU is a microarchitecture parameter file. It is both the configuration
// of the ground-truth pipeline simulator and the source of the
// port-mapping tables used for classification.
type CPU struct {
	Name string

	// Core structure.
	IssueWidth  int // fused-domain µops renamed/allocated per cycle
	RetireWidth int
	ROBSize     int
	RSSize      int
	LoadBufs    int
	StoreBufs   int
	NumPorts    int

	// Memory system.
	L1DLatency  int // load-to-use latency, cycles
	L1DSize     int
	L1ISize     int
	LineSize    int
	L1Assoc     int
	MissPenalty int // additional cycles on an L1 miss
	FwdLatency  int // store-to-load forwarding latency

	// Penalties.
	SubnormalPenalty int // extra cycles for an FP op touching subnormals
	SplitPenalty     int // extra cycles for a cache-line-crossing access

	// Port roles.
	LoadPorts      PortSet
	StoreAddrPorts PortSet
	StoreDataPorts PortSet

	// Capabilities.
	HasAVX2         bool
	HasFMA          bool
	MoveElimination bool

	// FE parameterizes the modeled decode front end (opt-in; see
	// pipeline.Config.ModeledFrontEnd).
	FE FrontEnd

	// FPAddLat/FPMulLat etc. select per-µarch latencies inside the shared
	// describe table.
	intALUPorts  PortSet
	shiftPorts   PortSet
	shiftCLPorts PortSet
	leaPorts     PortSet
	mulPorts     PortSet
	divPorts     PortSet
	vecALUPorts  PortSet
	vecLogPorts  PortSet
	vecMulPorts  PortSet
	vecShiftPort PortSet
	vecCmpPorts  PortSet
	fpAddPorts   PortSet
	fpMulPorts   PortSet
	shufflePorts PortSet
	transferPort PortSet
	branchPorts  PortSet

	fpAddLat  uint8
	fpMulLat  uint8
	fmaLat    uint8
	mulLat    uint8
	div32Lat  uint8 // 32-bit divide latency ≈ occupancy
	div64Lat  uint8
	divSSLat  uint8
	divSSOcc  uint8
	divPSLat  uint8
	sqrtLat   uint8
	sqrtOcc   uint8
	pmulldLat uint8
}

// IvyBridge returns the Ivy Bridge parameter file (6 execution ports,
// AVX but no AVX2/FMA).
func IvyBridge() *CPU {
	return &CPU{
		Name:        "ivybridge",
		IssueWidth:  4,
		RetireWidth: 4,
		ROBSize:     168,
		RSSize:      54,
		LoadBufs:    64,
		StoreBufs:   36,
		NumPorts:    6,

		L1DLatency:  4,
		L1DSize:     32 << 10,
		L1ISize:     32 << 10,
		LineSize:    64,
		L1Assoc:     8,
		MissPenalty: 12,
		FwdLatency:  5,

		SubnormalPenalty: 124,
		SplitPenalty:     10,

		LoadPorts:      Ports(2, 3),
		StoreAddrPorts: Ports(2, 3),
		StoreDataPorts: Ports(4),

		HasAVX2:         false,
		HasFMA:          false,
		MoveElimination: true,

		FE: FrontEnd{
			DecodeWidth:   4,
			LCPStall:      3,
			DSBWidth:      4,
			DSBSets:       32,
			DSBWays:       8,
			DSBLineUops:   6,
			LSDSize:       28,
			SwitchPenalty: 2,
		},

		intALUPorts:  Ports(0, 1, 5),
		shiftPorts:   Ports(0, 5),
		shiftCLPorts: Ports(0, 5),
		leaPorts:     Ports(0, 1),
		mulPorts:     Ports(1),
		divPorts:     Ports(0),
		vecALUPorts:  Ports(1, 5),
		vecLogPorts:  Ports(0, 1, 5),
		vecMulPorts:  Ports(0),
		vecShiftPort: Ports(0),
		vecCmpPorts:  Ports(1, 5),
		fpAddPorts:   Ports(1),
		fpMulPorts:   Ports(0),
		shufflePorts: Ports(5),
		transferPort: Ports(0),
		branchPorts:  Ports(5),

		fpAddLat:  3,
		fpMulLat:  5,
		fmaLat:    0,
		mulLat:    3,
		div32Lat:  22,
		div64Lat:  92,
		divSSLat:  13,
		divSSOcc:  7,
		divPSLat:  13,
		sqrtLat:   14,
		sqrtOcc:   7,
		pmulldLat: 5,
	}
}

// Haswell returns the Haswell parameter file (8 execution ports, AVX2+FMA).
func Haswell() *CPU {
	return &CPU{
		Name:        "haswell",
		IssueWidth:  4,
		RetireWidth: 4,
		ROBSize:     192,
		RSSize:      60,
		LoadBufs:    72,
		StoreBufs:   42,
		NumPorts:    8,

		L1DLatency:  4,
		L1DSize:     32 << 10,
		L1ISize:     32 << 10,
		LineSize:    64,
		L1Assoc:     8,
		MissPenalty: 12,
		FwdLatency:  5,

		SubnormalPenalty: 124,
		SplitPenalty:     10,

		LoadPorts:      Ports(2, 3),
		StoreAddrPorts: Ports(2, 3, 7),
		StoreDataPorts: Ports(4),

		HasAVX2:         true,
		HasFMA:          true,
		MoveElimination: true,

		FE: FrontEnd{
			DecodeWidth:   4,
			LCPStall:      3,
			DSBWidth:      4,
			DSBSets:       32,
			DSBWays:       8,
			DSBLineUops:   6,
			LSDSize:       56,
			SwitchPenalty: 2,
		},

		intALUPorts:  Ports(0, 1, 5, 6),
		shiftPorts:   Ports(0, 6),
		shiftCLPorts: Ports(6),
		leaPorts:     Ports(1, 5),
		mulPorts:     Ports(1),
		divPorts:     Ports(0),
		vecALUPorts:  Ports(1, 5),
		vecLogPorts:  Ports(0, 1, 5),
		vecMulPorts:  Ports(0, 1),
		vecShiftPort: Ports(0),
		vecCmpPorts:  Ports(0, 5),
		fpAddPorts:   Ports(1),
		fpMulPorts:   Ports(0, 1),
		shufflePorts: Ports(5),
		transferPort: Ports(0),
		branchPorts:  Ports(6),

		fpAddLat:  3,
		fpMulLat:  5,
		fmaLat:    5,
		mulLat:    3,
		div32Lat:  21,
		div64Lat:  95,
		divSSLat:  13,
		divSSOcc:  7,
		divPSLat:  13,
		sqrtLat:   15,
		sqrtOcc:   8,
		pmulldLat: 10,
	}
}

// Skylake returns the Skylake parameter file: Haswell-like port layout
// with symmetric 4-cycle FP add/mul on ports 0 and 1, a faster radix-1024
// divider, and larger out-of-order windows.
func Skylake() *CPU {
	c := Haswell()
	c.Name = "skylake"
	c.ROBSize = 224
	c.RSSize = 97
	c.LoadBufs = 72
	c.StoreBufs = 56
	// Skylake doubles the DSB delivery rate over Haswell; the LSD is
	// disabled by the SKL150 erratum microcode fix.
	c.FE.DSBWidth = 6
	c.FE.LSDSize = 0
	c.vecALUPorts = Ports(0, 1, 5)
	c.fpAddPorts = Ports(0, 1)
	c.fpMulPorts = Ports(0, 1)
	c.fpAddLat = 4
	c.fpMulLat = 4
	c.fmaLat = 4
	c.div32Lat = 23
	c.div64Lat = 42
	c.divSSLat = 11
	c.divSSOcc = 3
	c.divPSLat = 11
	c.sqrtLat = 12
	c.sqrtOcc = 4
	c.pmulldLat = 10
	return c
}

// IceLake returns the Ice Lake (Sunny Cove) parameter file: the
// post-Skylake core with a 5-wide issue/decode front end, a larger DSB
// with a restored (and enlarged) LSD, deeper out-of-order windows, a 48 KB
// 5-cycle L1D, and a fast radix-64 divider. The execution-port layout is
// carried over from Skylake — the extra store-data and AGU ports of the
// real core are not modeled — so Ice Lake numbers exercise the front-end
// and window parameters, not a re-derived port table.
func IceLake() *CPU {
	c := Skylake()
	c.Name = "icelake"
	c.IssueWidth = 5
	c.RetireWidth = 5
	c.ROBSize = 352
	c.RSSize = 160
	c.LoadBufs = 128
	c.StoreBufs = 72
	c.L1DLatency = 5
	c.L1DSize = 48 << 10
	c.L1Assoc = 12
	c.div32Lat = 12
	c.div64Lat = 18
	c.FE.DecodeWidth = 5
	c.FE.DSBSets = 48
	c.FE.LSDSize = 70
	return c
}

// ByName returns the CPU model with the given name.
func ByName(name string) (*CPU, error) {
	switch strings.ToLower(name) {
	case "ivybridge", "ivb":
		return IvyBridge(), nil
	case "haswell", "hsw":
		return Haswell(), nil
	case "skylake", "skl":
		return Skylake(), nil
	case "icelake", "icl":
		return IceLake(), nil
	}
	return nil, fmt.Errorf("uarch: unknown microarchitecture %q", name)
}

// All returns the three validated microarchitectures in paper order.
// Ice Lake is deliberately excluded: the paper's tables cover exactly
// these three, and every golden-pinned experiment iterates All.
func All() []*CPU {
	return []*CPU{IvyBridge(), Haswell(), Skylake()}
}

// Extended returns every parameterized microarchitecture: the paper's
// three plus Ice Lake. Crosschecks that are proofs rather than paper
// reproductions (boundcheck) run over this list.
func Extended() []*CPU {
	return append(All(), IceLake())
}
