package uarch

import "testing"

// TestPerturbedIdentity: the perturbation must rename the CPU (µop-
// description memoization and the profile cache are keyed by name, so a
// shared name would alias the two parameterizations) and must not touch
// the original.
func TestPerturbedIdentity(t *testing.T) {
	for _, cpu := range All() {
		orig := *cpu
		p := cpu.Perturbed()
		if p.Name == cpu.Name {
			t.Errorf("%s: perturbed CPU kept the original name", cpu.Name)
		}
		if *cpu != orig {
			t.Errorf("%s: Perturbed mutated the receiver", cpu.Name)
		}
		if p.L1DLatency != cpu.L1DLatency+1 {
			t.Errorf("%s: L1DLatency = %d, want %d", cpu.Name, p.L1DLatency, cpu.L1DLatency+1)
		}
		if p.IssueWidth != cpu.IssueWidth {
			t.Errorf("%s: perturbation changed IssueWidth (%d -> %d); it must stay a recalibration",
				cpu.Name, cpu.IssueWidth, p.IssueWidth)
		}
		if p.LoadPorts != cpu.LoadPorts || p.StoreAddrPorts != cpu.StoreAddrPorts {
			t.Errorf("%s: perturbation changed load/store ports", cpu.Name)
		}
		if got := p.intALUPorts.Count(); got != cpu.intALUPorts.Count()-1 {
			t.Errorf("%s: intALUPorts count = %d, want %d", cpu.Name, got, cpu.intALUPorts.Count()-1)
		}
		// Deterministic: perturbing twice gives identical parameter files.
		if q := cpu.Perturbed(); *q != *p {
			t.Errorf("%s: Perturbed is not deterministic", cpu.Name)
		}
	}
}

// TestPerturbedChangesDescriptions: an ADD µop must come out slower or
// differently ported on the perturbed file — otherwise the perturbation
// is a no-op and cross-validation against it is vacuous.
func TestPerturbedChangesDescriptions(t *testing.T) {
	cpu := Haswell()
	p := cpu.Perturbed()
	if p.fpAddLat == cpu.fpAddLat && p.intALUPorts == cpu.intALUPorts {
		t.Fatal("perturbation left both FP latency and ALU ports unchanged")
	}
	if p.div64Lat <= cpu.div64Lat {
		t.Errorf("div64Lat = %d, want > %d", p.div64Lat, cpu.div64Lat)
	}
}

func TestDropHighestPort(t *testing.T) {
	cases := []struct {
		in, want PortSet
	}{
		{Ports(0, 1, 5), Ports(0, 1)},
		{Ports(0, 1), Ports(0)},
		{Ports(3), Ports(3)}, // never emptied
		{0, 0},
	}
	for _, c := range cases {
		if got := dropHighestPort(c.in); got != c.want {
			t.Errorf("dropHighestPort(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}
