package uarch

// Perturbed returns a second parameterization of this microarchitecture:
// the same core structure with deterministically scaled latencies and a
// thinned port map, standing in for a differently-calibrated machine (a
// sibling stepping, or the same silicon measured by a harness with
// different counter calibration). Cross-validating measurements between a
// CPU and its perturbation bounds how sensitive a ground truth is to the
// parameter file, the way the paper cross-validates models against one
// hardware truth per microarchitecture.
//
// The perturbed CPU carries a distinct Name. That is load-bearing, not
// cosmetic: µop descriptions (internal/memo) and persistent profiles
// (internal/profcache) are keyed by CPU name, so a shared name would let
// one parameterization's cached results leak into the other's.
func (c *CPU) Perturbed() *CPU {
	p := *c
	p.Name = c.Name + "-perturbed"

	// Memory system: one extra load-to-use cycle and a deeper miss path.
	p.L1DLatency++
	p.MissPenalty += 4
	p.FwdLatency++

	// Scalar and FP latencies: one cycle slower across the board, with the
	// dividers scaled by 5/4 (their latencies dominate the div case study,
	// so a multiplicative bump keeps the perturbation proportionate).
	p.fpAddLat++
	p.fpMulLat++
	if p.fmaLat > 0 {
		p.fmaLat++
	}
	p.mulLat++
	p.pmulldLat++
	p.div32Lat += p.div32Lat / 4
	p.div64Lat += p.div64Lat / 4
	p.divSSLat += p.divSSLat / 4
	p.divPSLat += p.divPSLat / 4
	p.sqrtLat += p.sqrtLat / 4

	// Port map: thin the integer-ALU and vector-logic sets by their highest
	// port, so port-bound blocks schedule differently. Load/store ports and
	// the issue width are untouched — the perturbation is a recalibration,
	// not a different machine class.
	p.intALUPorts = dropHighestPort(p.intALUPorts)
	p.vecLogPorts = dropHighestPort(p.vecLogPorts)

	return &p
}

// dropHighestPort removes the highest-numbered port from a set, never
// emptying it (a one-port set is returned unchanged: every µop class must
// stay executable).
func dropHighestPort(s PortSet) PortSet {
	if s.Count() <= 1 {
		return s
	}
	for i := 15; i >= 0; i-- {
		if s.Has(i) {
			return s &^ (1 << i)
		}
	}
	return s
}
