package uarch

import (
	"fmt"

	"bhive/internal/x86"
)

// UnsupportedError reports an instruction the microarchitecture cannot
// execute (e.g. AVX2 on Ivy Bridge). Blocks containing such instructions
// are excluded from that microarchitecture's validation, as in the paper.
type UnsupportedError struct {
	CPU string
	Op  x86.Op
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("uarch: %s does not support %s", e.CPU, e.Op)
}

// Describe maps an instruction to its micro-ops on this CPU.
func (c *CPU) Describe(in *x86.Inst) (Desc, error) {
	return c.describe(in, true)
}

// DescribeRaw is Describe without the rename-time optimizations (zero-idiom
// elimination and move elimination). Models that do not know about those
// proprietary fast paths — llvm-mca and OSACA in the paper's evaluation —
// see instructions this way.
func (c *CPU) DescribeRaw(in *x86.Inst) (Desc, error) {
	return c.describe(in, false)
}

func (c *CPU) describe(in *x86.Inst, renameTricks bool) (Desc, error) {
	if err := c.checkSupported(in); err != nil {
		return Desc{}, err
	}

	if renameTricks && isZeroIdiom(in) {
		return Desc{FusedUops: 1, ZeroIdiom: true}, nil
	}
	if renameTricks && c.MoveElimination && isEliminableMove(in) {
		return Desc{FusedUops: 1, EliminatedMove: true}, nil
	}

	compute, fp, generic := c.computeUops(in)
	var uops []Uop
	if in.IsLoad() {
		uops = append(uops, Uop{Class: ClassLoad, Ports: c.LoadPorts, Lat: uint8(c.L1DLatency)})
	}
	uops = append(uops, compute...)
	if in.IsStore() {
		uops = append(uops,
			Uop{Class: ClassStoreAddr, Ports: c.StoreAddrPorts, Lat: 1},
			Uop{Class: ClassStoreData, Ports: c.StoreDataPorts, Lat: 1})
	}

	fused := len(compute)
	if in.IsLoad() && fused == 0 {
		fused = 1 // pure load
	}
	if in.IsStore() {
		fused++ // store-address and store-data micro-fuse
	}
	if fused == 0 {
		fused = 1 // nop-like: occupies a rename slot only
	}
	return Desc{Uops: uops, FusedUops: fused, FP: fp, Generic: generic}, nil
}

// checkSupported rejects vector extensions the core lacks.
func (c *CPU) checkSupported(in *x86.Inst) error {
	op := in.Op
	if !c.HasFMA && op >= x86.VFMADD132PS && op <= x86.VFNMADD231PD {
		return &UnsupportedError{CPU: c.Name, Op: op}
	}
	if !c.HasAVX2 {
		if op >= x86.VPBROADCASTB && op <= x86.VINSERTI128 {
			return &UnsupportedError{CPU: c.Name, Op: op}
		}
		if op >= x86.VPXOR && op <= x86.VPMOVMSKB && is256(in) {
			return &UnsupportedError{CPU: c.Name, Op: op}
		}
	}
	return nil
}

func is256(in *x86.Inst) bool {
	for _, a := range in.Args {
		if a.Kind == x86.KindReg && a.Reg.Class() == x86.ClassYMM {
			return true
		}
		if a.Kind == x86.KindMem && a.Mem.Size == 32 {
			return true
		}
	}
	return false
}

// isZeroIdiom recognizes the dependency-breaking zeroing idioms that the
// renamer executes without any micro-op: xor/sub of a register with itself
// and the vector equivalents.
func isZeroIdiom(in *x86.Inst) bool {
	sameRegs := func(a, b x86.Operand) bool {
		return a.Kind == x86.KindReg && b.Kind == x86.KindReg && a.Reg == b.Reg
	}
	switch in.Op {
	case x86.XOR, x86.SUB:
		return len(in.Args) == 2 && sameRegs(in.Args[0], in.Args[1])
	case x86.PXOR, x86.XORPS, x86.XORPD, x86.PSUBB, x86.PSUBW, x86.PSUBD,
		x86.PSUBQ, x86.PCMPGTB, x86.PCMPGTD:
		return len(in.Args) == 2 && sameRegs(in.Args[0], in.Args[1])
	case x86.VXORPS, x86.VXORPD, x86.VPXOR, x86.VPSUBB, x86.VPSUBW,
		x86.VPSUBD, x86.VPSUBQ, x86.VPCMPGTD:
		return len(in.Args) == 3 && sameRegs(in.Args[1], in.Args[2])
	}
	return false
}

// isEliminableMove recognizes register-register moves handled at rename.
func isEliminableMove(in *x86.Inst) bool {
	if len(in.Args) != 2 ||
		in.Args[0].Kind != x86.KindReg || in.Args[1].Kind != x86.KindReg {
		return false
	}
	switch in.Op {
	case x86.MOV:
		c := in.Args[0].Reg.Class()
		return c == x86.ClassGP32 || c == x86.ClassGP64
	case x86.MOVAPS, x86.MOVUPS, x86.MOVAPD, x86.MOVUPD, x86.MOVDQA,
		x86.MOVDQU, x86.VMOVAPS, x86.VMOVUPS, x86.VMOVAPD, x86.VMOVUPD,
		x86.VMOVDQA, x86.VMOVDQU:
		return true
	}
	return false
}

// computeUops returns the computation micro-ops (excluding load/store
// decoration), whether the op handles FP data, and whether the opcode is
// missing from the table (the conservative generic fallback was used).
func (c *CPU) computeUops(in *x86.Inst) ([]Uop, bool, bool) {
	op := in.Op
	one := func(class UopClass, ports PortSet, lat uint8) []Uop {
		return []Uop{{Class: class, Ports: ports, Lat: lat}}
	}
	alu := func(lat uint8) []Uop { return one(ClassIntALU, c.intALUPorts, lat) }

	switch op {
	case x86.MOV, x86.MOVZX, x86.MOVSX, x86.MOVSXD:
		if in.MemArg() >= 0 {
			return nil, false, false // pure load or store
		}
		return alu(1), false, false
	case x86.LEA:
		m := in.Args[1].Mem
		if m.Base != x86.RegNone && m.Index != x86.RegNone && m.Disp != 0 {
			// Three-component LEA is slow and restricted to one port.
			return one(ClassLEA, c.mulPorts, 3), false, false
		}
		return one(ClassLEA, c.leaPorts, 1), false, false
	case x86.PUSH, x86.POP:
		return nil, false, false // stack engine handles the pointer update
	case x86.XCHG:
		return []Uop{
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
		}, false, false

	case x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST,
		x86.INC, x86.DEC, x86.NEG, x86.NOT, x86.CDQ, x86.CQO:
		return alu(1), false, false
	case x86.ADC, x86.SBB:
		return []Uop{
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
		}, false, false
	case x86.BSWAP:
		return one(ClassIntShift, c.shiftPorts, 2), false, false

	case x86.IMUL:
		return one(ClassIntMul, c.mulPorts, c.mulLat), false, false
	case x86.MUL:
		// Widening multiply: the high-half result needs a second µop.
		return []Uop{
			{Class: ClassIntMul, Ports: c.mulPorts, Lat: c.mulLat + 1},
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
		}, false, false
	case x86.DIV, x86.IDIV:
		lat := c.div32Lat
		if argSize(in, 0) == 8 {
			lat = c.div64Lat
		}
		return []Uop{{Class: ClassIntDiv, Ports: c.divPorts, Lat: lat, Occupancy: lat}}, false, false

	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		if len(in.Args) == 2 && in.Args[1].IsReg(x86.CL) {
			return one(ClassIntShift, c.shiftCLPorts, 2), false, false
		}
		return one(ClassIntShift, c.shiftPorts, 1), false, false

	case x86.POPCNT, x86.LZCNT, x86.TZCNT, x86.BSF, x86.BSR:
		return one(ClassIntALU, c.mulPorts, 3), false, false
	case x86.BT:
		return one(ClassIntShift, c.shiftPorts, 1), false, false

	case x86.CMOVE, x86.CMOVNE, x86.CMOVL, x86.CMOVLE, x86.CMOVG,
		x86.CMOVGE, x86.CMOVB, x86.CMOVBE, x86.CMOVA, x86.CMOVAE,
		x86.CMOVS, x86.CMOVNS:
		return []Uop{
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
			{Class: ClassIntALU, Ports: c.intALUPorts, Lat: 1},
		}, false, false
	case x86.SETE, x86.SETNE, x86.SETL, x86.SETLE, x86.SETG, x86.SETGE,
		x86.SETB, x86.SETBE, x86.SETA, x86.SETAE, x86.SETS, x86.SETNS:
		return one(ClassIntALU, c.shiftPorts, 1), false, false

	case x86.NOP, x86.VZEROUPPER:
		return nil, false, false

	case x86.JMP, x86.JE, x86.JNE, x86.JL, x86.JLE, x86.JG, x86.JGE,
		x86.JB, x86.JBE, x86.JA, x86.JAE, x86.JS, x86.JNS, x86.CALL, x86.RET:
		return one(ClassBranch, c.branchPorts, 1), false, false

	// Scalar/packed FP moves.
	case x86.MOVSS, x86.MOVSD, x86.VMOVSS, x86.VMOVSD:
		if in.MemArg() >= 0 {
			return nil, false, false
		}
		return one(ClassShuffle, c.shufflePorts, 1), false, false
	case x86.MOVAPS, x86.MOVUPS, x86.MOVAPD, x86.MOVUPD, x86.MOVDQA,
		x86.MOVDQU, x86.VMOVAPS, x86.VMOVUPS, x86.VMOVAPD, x86.VMOVUPD,
		x86.VMOVDQA, x86.VMOVDQU:
		if in.MemArg() >= 0 {
			return nil, false, false
		}
		return one(ClassVecLogic, c.vecLogPorts, 1), false, false
	case x86.MOVD, x86.MOVQ:
		if in.MemArg() >= 0 {
			return nil, false, false
		}
		if in.Args[0].Reg.IsGP() || in.Args[1].Reg.IsGP() {
			return one(ClassTransfer, c.transferPort, 2), false, false
		}
		return one(ClassVecLogic, c.vecLogPorts, 1), false, false

	// FP arithmetic.
	case x86.ADDSS, x86.ADDSD, x86.SUBSS, x86.SUBSD, x86.ADDPS, x86.ADDPD,
		x86.SUBPS, x86.SUBPD, x86.MINSS, x86.MINSD, x86.MAXSS, x86.MAXSD,
		x86.MINPS, x86.MAXPS, x86.VADDSS, x86.VADDSD, x86.VSUBSS,
		x86.VSUBSD, x86.VADDPS, x86.VADDPD, x86.VSUBPS, x86.VSUBPD,
		x86.VMINPS, x86.VMAXPS:
		return one(ClassFPAdd, c.fpAddPorts, c.fpAddLat), true, false
	case x86.MULSS, x86.MULSD, x86.MULPS, x86.MULPD, x86.VMULSS,
		x86.VMULSD, x86.VMULPS, x86.VMULPD:
		return one(ClassFPMul, c.fpMulPorts, c.fpMulLat), true, false
	case x86.DIVSS, x86.DIVSD, x86.VDIVSS, x86.VDIVSD:
		return []Uop{{Class: ClassFPDiv, Ports: c.divPorts, Lat: c.divSSLat, Occupancy: c.divSSOcc}}, true, false
	case x86.DIVPS, x86.DIVPD, x86.VDIVPS, x86.VDIVPD:
		occ := c.divSSOcc
		if is256(in) {
			occ *= 2
		}
		return []Uop{{Class: ClassFPDiv, Ports: c.divPorts, Lat: c.divPSLat, Occupancy: occ}}, true, false
	case x86.SQRTSS, x86.SQRTSD, x86.SQRTPS, x86.SQRTPD, x86.VSQRTPS, x86.VSQRTPD:
		occ := c.sqrtOcc
		if is256(in) {
			occ *= 2
		}
		return []Uop{{Class: ClassFPDiv, Ports: c.divPorts, Lat: c.sqrtLat, Occupancy: occ}}, true, false
	case x86.UCOMISS, x86.UCOMISD, x86.VUCOMISS, x86.VUCOMISD:
		return one(ClassFPAdd, c.fpAddPorts, 2), true, false
	case x86.CVTSI2SS, x86.CVTSI2SD:
		return []Uop{
			{Class: ClassTransfer, Ports: c.transferPort, Lat: 2},
			{Class: ClassFPAdd, Ports: c.fpAddPorts, Lat: c.fpAddLat},
		}, true, false
	case x86.CVTTSS2SI, x86.CVTTSD2SI:
		return []Uop{
			{Class: ClassFPAdd, Ports: c.fpAddPorts, Lat: c.fpAddLat},
			{Class: ClassTransfer, Ports: c.transferPort, Lat: 2},
		}, true, false
	case x86.CVTSS2SD, x86.CVTSD2SS, x86.CVTDQ2PS, x86.CVTPS2DQ,
		x86.VCVTDQ2PS, x86.VCVTPS2DQ:
		return one(ClassFPAdd, c.fpAddPorts, c.fpAddLat), true, false

	// FMA.
	case x86.VFMADD132PS, x86.VFMADD213PS, x86.VFMADD231PS,
		x86.VFMADD132PD, x86.VFMADD213PD, x86.VFMADD231PD,
		x86.VFMADD132SS, x86.VFMADD213SS, x86.VFMADD231SS,
		x86.VFMADD132SD, x86.VFMADD213SD, x86.VFMADD231SD,
		x86.VFNMADD231PS, x86.VFNMADD231PD:
		return one(ClassFMA, c.fpMulPorts, c.fmaLat), true, false

	// Vector logic / integer.
	case x86.XORPS, x86.XORPD, x86.ANDPS, x86.ANDPD, x86.ORPS, x86.ORPD,
		x86.PXOR, x86.PAND, x86.PANDN, x86.POR, x86.VXORPS, x86.VXORPD,
		x86.VANDPS, x86.VANDPD, x86.VORPS, x86.VORPD, x86.VPXOR,
		x86.VPAND, x86.VPANDN, x86.VPOR:
		return one(ClassVecLogic, c.vecLogPorts, 1), false, false
	case x86.PADDB, x86.PADDW, x86.PADDD, x86.PADDQ, x86.PSUBB, x86.PSUBW,
		x86.PSUBD, x86.PSUBQ, x86.VPADDB, x86.VPADDW, x86.VPADDD,
		x86.VPADDQ, x86.VPSUBB, x86.VPSUBW, x86.VPSUBD, x86.VPSUBQ:
		return one(ClassVecALU, c.vecALUPorts, 1), false, false
	case x86.PCMPEQB, x86.PCMPEQD, x86.PCMPGTB, x86.PCMPGTD,
		x86.VPCMPEQB, x86.VPCMPEQD, x86.VPCMPGTD:
		return one(ClassVecALU, c.vecCmpPorts, 1), false, false
	case x86.PMULLW, x86.PMULUDQ, x86.VPMULLW:
		return one(ClassVecMul, c.vecMulPorts, 5), false, false
	case x86.PMULLD, x86.VPMULLD:
		return one(ClassVecMul, c.vecMulPorts, c.pmulldLat), false, false
	case x86.PSLLW, x86.PSLLD, x86.PSLLQ, x86.PSRLW, x86.PSRLD, x86.PSRLQ,
		x86.PSRAW, x86.PSRAD, x86.VPSLLD, x86.VPSLLQ, x86.VPSRLD, x86.VPSRLQ:
		return one(ClassVecShift, c.vecShiftPort, 1), false, false
	case x86.PUNPCKLBW, x86.PUNPCKLWD, x86.PUNPCKLDQ, x86.PUNPCKHDQ,
		x86.PSHUFD, x86.SHUFPS, x86.UNPCKLPS, x86.VSHUFPS, x86.VPSHUFD:
		return one(ClassShuffle, c.shufflePorts, 1), false, false
	case x86.PMOVMSKB, x86.MOVMSKPS, x86.VPMOVMSKB:
		return one(ClassTransfer, c.transferPort, 3), false, false
	case x86.VBROADCASTSS, x86.VBROADCASTSD, x86.VPBROADCASTB,
		x86.VPBROADCASTD, x86.VPBROADCASTQ:
		if in.MemArg() >= 0 {
			return nil, false, false // broadcast folded into the load
		}
		return one(ClassShuffle, c.shufflePorts, 3), false, false
	case x86.VEXTRACTF128, x86.VINSERTF128, x86.VEXTRACTI128, x86.VINSERTI128:
		if in.MemArg() >= 0 {
			return nil, false, false
		}
		return one(ClassShuffle, c.shufflePorts, 3), false, false
	}

	// Conservative default: a single-cycle ALU op. The generic flag marks
	// the descriptor so downstream analyses (static cycle bounds, BL015)
	// know the latency and port assignment are guesses, not table entries.
	return alu(1), false, true
}

// argSize returns the byte width of operand k.
func argSize(in *x86.Inst, k int) int {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		return a.Reg.Size()
	case x86.KindMem:
		return int(a.Mem.Size)
	}
	return 0
}
