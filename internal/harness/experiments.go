package harness

import (
	"fmt"
	"math"
	"strings"

	"bhive/internal/classify"
	"bhive/internal/corpus"
	"bhive/internal/models"
	"bhive/internal/profiler"
	"bhive/internal/stats"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Table1 reproduces the measurement-technique ablation (Table I): the
// fraction of the suite successfully profiled as each technique is added.
func (s *Suite) Table1() *Table {
	hsw := uarch.Haswell()
	rows := []struct {
		name string
		opts profiler.Options
	}{
		{"None", profiler.BaselineOptions()},
		{"Mapping all accessed pages", profiler.MappingOptions()},
		{"More intelligent unrolling", profiler.DefaultOptions()},
	}
	t := &Table{
		ID:     "table1",
		Title:  "Ablation: percent of basic blocks profiled (paper: 16.65 / 91.28 / 94.24)",
		Header: []string{"(Additional) Technique", "Percent of Basic Blocks Profiled"},
	}
	for _, r := range rows {
		meas := s.profileAll(hsw, r.opts, s.recs)
		ok := 0
		for i := range meas {
			if meas[i].status == profiler.StatusOK {
				ok++
			}
		}
		t.Rows = append(t.Rows, []string{
			r.name, fmt.Sprintf("%.2f%%", 100*float64(ok)/float64(len(meas))),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("suite scale %.3f (%d blocks)", s.cfg.Scale, len(s.recs)))
	return t
}

// Table2 reproduces the per-block ablation (Table II): the sample
// TensorFlow-style block measured as each optimization is applied.
func (s *Suite) Table2() *Table {
	hsw := uarch.Haswell()
	block := SampleTFBlock()

	t := &Table{
		ID:    "table2",
		Title: "Measured throughput of the sample block per optimization (paper: Crashed / 6377.0 / 2273.7 / 65.0 / 59.0)",
		Header: []string{"(Additional) Optimizations", "Measured Throughput",
			"L1 D-Cache Misses", "L1 I-Cache Misses"},
	}

	type cfg struct {
		name    string
		opts    profiler.Options
		derived bool
	}
	base := profiler.BaselineOptions()

	mapped := base
	mapped.InitRegisters = true
	mapped.MapPages = true

	single := mapped
	single.SinglePhysPage = true

	ftz := single
	ftz.DisableSubnormals = true

	rows := []cfg{
		{"None", base, false},
		{"Page mapping", mapped, false},
		{"Single physical page", single, false},
		{"Disabling gradual underflow", ftz, false},
		{"Using smaller unroll factor", ftz, true},
	}

	for _, r := range rows {
		p := profiler.New(hsw, r.opts)
		if r.derived {
			u1, u2 := 4, 8
			c1, err1 := p.MeasureRaw(block, u1)
			c2, err2 := p.MeasureRaw(block, u2)
			if err1 != nil || err2 != nil {
				t.Rows = append(t.Rows, []string{r.name, "Crashed", "N/A", "N/A"})
				continue
			}
			tp := float64(c2.Cycles-c1.Cycles) / float64(u2-u1)
			t.Rows = append(t.Rows, []string{r.name,
				fmt.Sprintf("%.1f", tp),
				fmt.Sprintf("%d", c2.L1DReadMisses+c2.L1DWriteMisses),
				fmt.Sprintf("%d", c2.L1IMisses)})
			continue
		}
		ctr, err := p.MeasureRaw(block, r.opts.NaiveUnroll)
		if err != nil {
			t.Rows = append(t.Rows, []string{r.name, "Crashed", "N/A", "N/A"})
			continue
		}
		t.Rows = append(t.Rows, []string{r.name,
			fmt.Sprintf("%.1f", float64(ctr.Cycles)/float64(r.opts.NaiveUnroll)),
			fmt.Sprintf("%d", ctr.L1DReadMisses+ctr.L1DWriteMisses),
			fmt.Sprintf("%d", ctr.L1IMisses)})
	}
	return t
}

// Table3 reproduces the source-application table (Table III).
func (s *Suite) Table3() *Table {
	t := &Table{
		ID:     "table3",
		Title:  "Source applications of basic blocks",
		Header: []string{"Application", "Domain", "# Basic Blocks (full scale)", "# Generated"},
	}
	generated := map[string]int{}
	for i := range s.recs {
		generated[s.recs[i].App]++
	}
	total := 0
	for _, a := range corpus.Apps() {
		if !a.InTable3 {
			continue
		}
		total += a.Blocks
		t.Rows = append(t.Rows, []string{a.Name, a.Domain,
			fmt.Sprintf("%d", a.Blocks), fmt.Sprintf("%d", generated[a.Name])})
	}
	t.Rows = append(t.Rows, []string{"Total", "", fmt.Sprintf("%d", total), ""})
	t.Notes = append(t.Notes,
		"OpenSSL appears in the paper's text and figures but not its Table III; it is generated too")
	return t
}

// Table4 reproduces the category table (Table IV).
func (s *Suite) Table4() *Table {
	cls := s.classifier()
	counts := cls.Counts()
	t := &Table{
		ID:     "table4",
		Title:  "Basic block categories (LDA, K=6, alpha=1/6, beta=1/13)",
		Header: []string{"Category", "Description", "# Basic Blocks", "Extrapolated (full scale)"},
	}
	for cat := classify.Category(1); cat <= classify.NumCategories; cat++ {
		t.Rows = append(t.Rows, []string{
			cat.String(), cat.Description(),
			fmt.Sprintf("%d", counts[cat]),
			fmt.Sprintf("%.0f", float64(counts[cat])/s.cfg.Scale),
		})
	}
	t.Notes = append(t.Notes,
		"paper counts: 7710 / 1267 / 58540 / 55879 / 85208 / 121412")
	return t
}

// FigExamples renders one representative block per category (the paper's
// examples figure).
func (s *Suite) FigExamples() string {
	cls := s.classifier()
	var sb strings.Builder
	sb.WriteString("== fig-examples: example basic blocks per category ==\n")
	for cat := classify.Category(1); cat <= classify.NumCategories; cat++ {
		idx := cls.Example(cat)
		fmt.Fprintf(&sb, "--- %s (%s)\n", cat, cat.Description())
		if idx < 0 {
			sb.WriteString("(no block in this category at this scale)\n")
			continue
		}
		b := s.recs[idx].Block
		for i, in := range b.Insts {
			if i == 8 {
				fmt.Fprintf(&sb, "    ... (%d more instructions)\n", len(b.Insts)-8)
				break
			}
			fmt.Fprintf(&sb, "    %s\n", in)
		}
	}
	return sb.String()
}

// FigAppsVsClusters reproduces the per-application category breakdown.
func (s *Suite) FigAppsVsClusters() *Table {
	cls := s.classifier()
	cats := cls.Categories()

	t := &Table{
		ID:     "fig-apps-clusters",
		Title:  "Breakdown of applications by basic block categories (% of blocks)",
		Header: []string{"Application", "Cat-1", "Cat-2", "Cat-3", "Cat-4", "Cat-5", "Cat-6"},
	}
	perApp := map[string][classify.NumCategories + 1]int{}
	totals := map[string]int{}
	for i := range s.recs {
		row := perApp[s.recs[i].App]
		row[int(cats[i])]++
		perApp[s.recs[i].App] = row
		totals[s.recs[i].App]++
	}
	for _, app := range s.appNames() {
		row := []string{app}
		for cat := 1; cat <= classify.NumCategories; cat++ {
			row = append(row, fmt.Sprintf("%.1f", 100*float64(perApp[app][cat])/float64(totals[app])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table5 reproduces the overall model-error table (Table V). Its cells
// come straight from the streaming aggregates the shard pipeline fed, so
// building the table never re-walks the per-record slices.
func (s *Suite) Table5() (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Overall error of evaluated models (unweighted mean relative error)",
		Header: []string{"Microarchitecture", "Model", "Average Error"},
	}
	for _, cpu := range uarch.All() {
		d, err := s.data(cpu)
		if err != nil {
			return nil, err
		}
		for _, name := range d.names {
			t.Rows = append(t.Rows, []string{cpu.Name, name, overallCell(d, name)})
		}
	}
	t.Notes = append(t.Notes,
		"paper: IVB .1693/.1885/.1180/.3277, HSW .1798/.1832/.1253/.3916, SKL .1578/.2278/.1191/.3768 (IACA/llvm-mca/Ithemal/OSACA)")
	return t, nil
}

// FigAppErr reproduces the per-application error figure for one CPU
// (errors weighted by sampling frequency, as in the paper's figures).
func (s *Suite) FigAppErr(cpu *uarch.CPU) (*Table, error) {
	d, err := s.data(cpu)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-app-err-" + cpu.Name,
		Title:  fmt.Sprintf("Per-application error on %s (frequency weighted)", cpu.Name),
		Header: append([]string{"Application"}, d.names...),
	}
	for _, app := range s.appNames() {
		row := []string{app}
		for _, name := range d.names {
			row = append(row, s.errorCell(d, name,
				func(i int) bool { return s.recs[i].App == app }, true))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// FigClusterErr reproduces the per-category error figure for one CPU.
func (s *Suite) FigClusterErr(cpu *uarch.CPU) (*Table, error) {
	d, err := s.data(cpu)
	if err != nil {
		return nil, err
	}
	cats := s.classifier().Categories()
	t := &Table{
		ID:     "fig-cluster-err-" + cpu.Name,
		Title:  fmt.Sprintf("Per-category error on %s", cpu.Name),
		Header: append([]string{"Category"}, d.names...),
	}
	for cat := classify.Category(1); cat <= classify.NumCategories; cat++ {
		row := []string{cat.String()}
		for _, name := range d.names {
			row = append(row, s.errorCell(d, name,
				func(i int) bool { return cats[i] == cat }, false))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// FigLenErr is an extension experiment the paper's source carries as a
// TODO ("compare error to basic block length"): per-model error bucketed
// by block size in instructions.
func (s *Suite) FigLenErr(cpu *uarch.CPU) (*Table, error) {
	d, err := s.data(cpu)
	if err != nil {
		return nil, err
	}
	buckets := []struct {
		name   string
		lo, hi int
	}{
		{"1-2", 1, 2}, {"3-5", 3, 5}, {"6-10", 6, 10},
		{"11-20", 11, 20}, {"21-50", 21, 50}, {"51+", 51, 1 << 30},
	}
	t := &Table{
		ID:     "fig-length-err-" + cpu.Name,
		Title:  fmt.Sprintf("Error by basic-block length on %s (extension experiment)", cpu.Name),
		Header: append([]string{"Instructions", "Blocks"}, d.names...),
	}
	for _, b := range buckets {
		keep := func(i int) bool {
			n := len(s.recs[i].Block.Insts)
			return n >= b.lo && n <= b.hi
		}
		count := 0
		for i := range s.recs {
			if keep(i) && d.meas[i].status == profiler.StatusOK {
				count++
			}
		}
		row := []string{b.name, fmt.Sprintf("%d", count)}
		for _, name := range d.names {
			row = append(row, s.errorCell(d, name, keep, false))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// CaseStudy reproduces the interesting-blocks table: measured vs predicted
// inverse throughput for the three Haswell case-study blocks.
func (s *Suite) CaseStudy() (*Table, error) {
	hsw := uarch.Haswell()
	blocks, names, err := CaseStudyBlocks()
	if err != nil {
		return nil, err
	}

	preds := models.All(hsw)
	header := []string{"Basic Block", "Measured"}
	for _, m := range preds {
		header = append(header, m.Name())
	}
	if s.cfg.TrainIthemal {
		header = append(header, "Ithemal")
	}
	t := &Table{
		ID:     "case-study",
		Title:  "Interesting basic blocks (paper: div 21.62/98.00/99.04/14.49/12.25; vxorps 0.25/0.24/1.00/0.328/1.00; crc 8.25/8.00/13.04/2.13/-)",
		Header: header,
	}

	opts := profiler.DefaultOptions()
	opts.FilterMisaligned = false // the CRC table walk occasionally splits
	prof := profiler.New(hsw, opts)

	for i, b := range blocks {
		r := prof.Profile(b)
		row := []string{names[i]}
		if r.Status == profiler.StatusOK {
			row = append(row, fmt.Sprintf("%.2f", r.Throughput))
		} else {
			row = append(row, r.Status.String())
		}
		for _, m := range preds {
			p, err := m.Predict(b)
			if err != nil {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f", p))
			}
		}
		if s.cfg.TrainIthemal {
			if _, err := s.data(hsw); err != nil { // ensures the model is trained
				return nil, err
			}
			m := s.ithemalModel(hsw.Name)
			p, err := m.Predict(b)
			if err != nil {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f", p))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// FigScheduling renders the schedules llvm-mca and IACA predict for the
// CRC block, showing the early vs late dispatch of the xorb load.
func (s *Suite) FigScheduling() (string, error) {
	hsw := uarch.Haswell()
	block, err := x86.ParseBlock(CRCBlockText, x86.SyntaxATT)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("== fig-scheduling: predicted schedules for the Gzip CRC block ==\n")
	for _, m := range []models.ScheduleTracer{models.NewLLVMMCA(hsw), models.NewIACA(hsw)} {
		name := m.(models.Predictor).Name()
		trace, err := m.Schedule(block, 4)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "--- %s\n", name)
		var minDispatch, maxComplete int64 = math.MaxInt64, 0
		for _, e := range trace {
			if e.Iteration != 2 { // a steady-state iteration
				continue
			}
			if e.Dispatch < minDispatch {
				minDispatch = e.Dispatch
			}
			if e.Complete > maxComplete {
				maxComplete = e.Complete
			}
		}
		for _, e := range trace {
			if e.Iteration != 2 {
				continue
			}
			bar := strings.Repeat(" ", int(e.Dispatch-minDispatch)) +
				strings.Repeat("=", int(e.Complete-e.Dispatch))
			fmt.Fprintf(&sb, "%-42s [cycle %2d] %s\n", e.Inst+" ("+e.Uop+")", e.Dispatch-minDispatch, bar)
		}
		fmt.Fprintf(&sb, "iteration span: %d cycles\n", maxComplete-minDispatch)
	}
	sb.WriteString("note: llvm-mca dispatches the xorb load late (fused with the ALU op); IACA hoists it.\n")
	return sb.String(), nil
}

// googleData profiles and predicts one Google workload on Haswell.
type googleResult struct {
	name     string
	measured []float64
	weights  []uint64
	preds    map[string][]float64
	names    []string
	cats     []classify.Category
}

func (s *Suite) googleData() ([]*googleResult, error) {
	hsw := uarch.Haswell()

	// Classify the case-study blocks with an LDA fit over the union of
	// the open-source corpus and the Google blocks — one classification
	// pipeline over all collected blocks, as in the paper.
	apps := corpus.GoogleApps()
	appRecs := make([][]corpus.Record, len(apps))
	blocks := make([]*x86.Block, 0, len(s.recs))
	for i := range s.recs {
		blocks = append(blocks, s.recs[i].Block)
	}
	offsets := make([]int, len(apps))
	for ai, app := range apps {
		recs := app.Generate(s.cfg.Scale, s.cfg.Seed)
		// "the 100,000 most frequently executed basic blocks"
		recs = corpus.TopByFreq(recs, len(recs))
		appRecs[ai] = recs
		offsets[ai] = len(blocks)
		for i := range recs {
			blocks = append(blocks, recs[i].Block)
		}
	}
	opts := classify.DefaultOptions()
	opts.Seed = s.cfg.Seed
	cls := classify.Fit(hsw, blocks, opts)

	var out []*googleResult
	for ai, app := range apps {
		recs := appRecs[ai]
		meas := s.profileAll(hsw, profiler.DefaultOptions(), recs)

		preds := []models.Predictor{models.NewIACA(hsw), models.NewLLVMMCA(hsw), models.NewFacile(hsw)}
		if s.cfg.TrainIthemal {
			if _, err := s.data(hsw); err != nil {
				return nil, err
			}
			preds = append(preds, s.ithemalModel(hsw.Name))
		}

		g := &googleResult{name: app.Name, preds: make(map[string][]float64)}
		for _, m := range preds {
			g.names = append(g.names, m.Name())
		}
		for i := range recs {
			if meas[i].status != profiler.StatusOK || meas[i].tp <= 0 {
				continue
			}
			keep := true
			vals := map[string]float64{}
			for _, m := range preds {
				p, err := m.Predict(recs[i].Block)
				if err != nil {
					keep = false
					break
				}
				vals[m.Name()] = p
			}
			if !keep {
				continue
			}
			g.measured = append(g.measured, meas[i].tp)
			g.weights = append(g.weights, recs[i].Freq)
			g.cats = append(g.cats, cls.Category(offsets[ai]+i))
			for name, p := range vals {
				g.preds[name] = append(g.preds[name], p)
			}
		}
		out = append(out, g)
	}
	return out, nil
}

// Table6 reproduces the Spanner/Dremel accuracy table (Table VI).
func (s *Suite) Table6() (*Table, error) {
	t := &Table{
		ID:    "table6",
		Title: "Accuracy on Spanner and Dremel (Haswell; OSACA excluded as in the paper)",
		Header: []string{"Application", "Model", "Average Error", "Weighted Error",
			"Kendall's Tau"},
	}
	gs, err := s.googleData()
	if err != nil {
		return nil, err
	}
	for _, g := range gs {
		for _, name := range g.names {
			errs := make([]float64, len(g.measured))
			for i := range g.measured {
				errs[i] = stats.RelError(g.preds[name][i], g.measured[i])
			}
			t.Rows = append(t.Rows, []string{
				g.name, name,
				fmt.Sprintf("%.4f", stats.Mean(errs)),
				fmt.Sprintf("%.4f", stats.WeightedMean(errs, g.weights)),
				fmt.Sprintf("%.4f", stats.KendallTau(g.preds[name], g.measured)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper (Spanner): IACA .1892/.1659/.7786, llvm-mca .1764/.1519/.7623, Ithemal .1629/.1414/.7799")
	return t, nil
}

// FigGoogleBlocks reproduces the category composition of the Google
// workloads, weighted by execution frequency.
func (s *Suite) FigGoogleBlocks() (*Table, error) {
	t := &Table{
		ID:     "fig-google-blocks",
		Title:  "Basic-block composition of Spanner/Dremel (weighted by execution frequency, %)",
		Header: []string{"Application", "Cat-1", "Cat-2", "Cat-3", "Cat-4", "Cat-5", "Cat-6"},
	}
	gs, err := s.googleData()
	if err != nil {
		return nil, err
	}
	for _, g := range gs {
		var byCat [classify.NumCategories + 1]float64
		var total float64
		for i, c := range g.cats {
			byCat[int(c)] += float64(g.weights[i])
			total += float64(g.weights[i])
		}
		row := []string{g.name}
		for cat := 1; cat <= classify.NumCategories; cat++ {
			row = append(row, fmt.Sprintf("%.1f", 100*byCat[cat]/total))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: both applications spend 40-50% of time in load-dominated blocks (category-6)")
	return t, nil
}

// Names lists the experiment ids runnable via Run.
func Names() []string {
	return []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig-examples", "fig-apps-clusters", "fig-app-err", "fig-cluster-err",
		"case-study", "fig-scheduling", "fig-google-blocks", "fig-length-err"}
}

// RunResult is one experiment's structured output: the tables it built
// (nil for the free-form figures) and the exact text rendering Run
// returns. The evaluation server serializes Tables as the Table V/VI-
// shaped JSON of its /result endpoint.
type RunResult struct {
	ID     string   `json:"id"`
	Tables []*Table `json:"tables,omitempty"`
	Text   string   `json:"text"`
}

// RunStructured executes one experiment by id and returns its structured
// result. uarchName applies to the per-µarch figures (empty = all three).
func (s *Suite) RunStructured(id, uarchName string) (*RunResult, error) {
	cpus := uarch.All()
	if uarchName != "" {
		cpu, err := uarch.ByName(uarchName)
		if err != nil {
			return nil, err
		}
		cpus = []*uarch.CPU{cpu}
	}
	one := func(t *Table, err error) (*RunResult, error) {
		if err != nil {
			return nil, err
		}
		return &RunResult{ID: id, Tables: []*Table{t}, Text: t.Render()}, nil
	}
	perCPU := func(f func(*uarch.CPU) (*Table, error)) (*RunResult, error) {
		rr := &RunResult{ID: id}
		var sb strings.Builder
		for _, cpu := range cpus {
			t, err := f(cpu)
			if err != nil {
				return nil, err
			}
			rr.Tables = append(rr.Tables, t)
			sb.WriteString(t.Render())
		}
		rr.Text = sb.String()
		return rr, nil
	}
	switch id {
	case "table1":
		return one(s.Table1(), nil)
	case "table2":
		return one(s.Table2(), nil)
	case "table3":
		return one(s.Table3(), nil)
	case "table4":
		return one(s.Table4(), nil)
	case "table5":
		return one(s.Table5())
	case "table6":
		return one(s.Table6())
	case "fig-examples":
		return &RunResult{ID: id, Text: s.FigExamples()}, nil
	case "fig-apps-clusters":
		return one(s.FigAppsVsClusters(), nil)
	case "fig-app-err":
		return perCPU(s.FigAppErr)
	case "fig-cluster-err":
		return perCPU(s.FigClusterErr)
	case "fig-length-err":
		return perCPU(s.FigLenErr)
	case "case-study":
		return one(s.CaseStudy())
	case "fig-scheduling":
		text, err := s.FigScheduling()
		if err != nil {
			return nil, err
		}
		return &RunResult{ID: id, Text: text}, nil
	case "fig-google-blocks":
		return one(s.FigGoogleBlocks())
	case XValID:
		tables, err := s.CrossValidation(cpus)
		if err != nil {
			return nil, err
		}
		rr := &RunResult{ID: id, Tables: tables}
		var sb strings.Builder
		for _, t := range tables {
			sb.WriteString(t.Render())
		}
		rr.Text = sb.String()
		return rr, nil
	case BoundCheckID:
		// The bounds are proofs against the simulator, not paper
		// reproductions, so the crosscheck covers every parameterized
		// microarchitecture — including post-Skylake ones the paper's
		// tables exclude — unless one was requested explicitly.
		bcCPUs := cpus
		if uarchName == "" {
			bcCPUs = uarch.Extended()
		}
		tables, err := s.BoundCheck(bcCPUs)
		if err != nil {
			return nil, err
		}
		rr := &RunResult{ID: id, Tables: tables}
		var sb strings.Builder
		for _, t := range tables {
			sb.WriteString(t.Render())
		}
		rr.Text = sb.String()
		return rr, nil
	case "all":
		rr := &RunResult{ID: id}
		var sb strings.Builder
		for _, name := range Names() {
			sub, err := s.RunStructured(name, uarchName)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			rr.Tables = append(rr.Tables, sub.Tables...)
			sb.WriteString(sub.Text)
			sb.WriteByte('\n')
		}
		rr.Text = sb.String()
		return rr, nil
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, AllNames())
}

// Run executes one experiment by id and returns its text rendering.
// uarchName applies to the per-µarch figures (empty = all three).
func (s *Suite) Run(id, uarchName string) (string, error) {
	rr, err := s.RunStructured(id, uarchName)
	if err != nil {
		return "", err
	}
	return rr.Text, nil
}
