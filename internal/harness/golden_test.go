package harness

import (
	"os"
	"testing"
)

// TestTable5Golden asserts that the full Table V pipeline — corpus
// generation, parallel profiling through the pooled hot path, and every
// analytical model — is byte-identical to the output recorded before the
// hot-path overhaul (seed 7, scale 0.02). This is the determinism contract:
// scratch reuse, memoization, fault batching and parallel workers must not
// change a single measured or predicted number.
func TestTable5Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates Table V at scale 0.02 (several seconds)")
	}
	want, err := os.ReadFile("testdata/table5_seed7_scale002.golden")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // scale 0.02, seed 7
	cfg.Workers = 4        // exercise the concurrent profiling path
	got, err := New(cfg).Run("table5", "")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("Table V diverged from the recorded output.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
