package harness

import (
	"fmt"
	"math"

	"bhive/internal/models"
	"bhive/internal/profiler"
	"bhive/internal/stats"
	"bhive/internal/uarch"
)

// This file is the harness's distributed-evaluation surface: everything a
// remote worker needs to compute one shard of the corpus independently,
// and everything a coordinator needs to decide which shards are missing
// and validate what comes back. The shard geometry, the fingerprint, and
// the per-shard computation are exactly the ones the local pipeline
// (computeArch) uses, so a journal filled from worker payloads replays
// byte-identically to a single-node run.

// ShardPayload is one computed shard: the per-record measurements and
// per-model predictions (the same data a checkpoint journal line holds),
// plus the shard's mergeable partial aggregates — the coordinator merges
// those for live status without re-walking the records.
type ShardPayload struct {
	Arch  string
	Shard int

	// Tp/Status are index-aligned over the shard's record range.
	Tp     []float64
	Status []int
	// Preds maps model name to per-record predictions (NaN = the model
	// failed on that record).
	Preds map[string][]float64

	// Overall/Tau are this shard's partial per-model aggregates over its
	// accepted records (status OK, positive throughput): the streaming
	// mean relative error and the Kendall-tau pair set.
	Overall map[string]stats.Running
	Tau     map[string]*stats.TauAcc
}

// Fingerprint returns the run identity checkpoints (and distributed shard
// leases) are bound to. It is derived from the full configuration and
// corpus content, so two Suites built from the same normalized request
// agree on it across processes.
func (s *Suite) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fp == "" {
		s.fp = runFingerprint(s.cfg, s.recs)
	}
	return s.fp
}

// NumCorpusShards is the number of shards covering the corpus.
func (s *Suite) NumCorpusShards() int { return s.numShards(len(s.recs)) }

// ShardRange returns the [lo, hi) record range of shard si.
func (s *Suite) ShardRange(si int) (lo, hi int) { return s.shardBounds(si, len(s.recs)) }

// ShardSize exposes the effective shard size (Config.ShardSize after
// defaulting).
func (s *Suite) ShardSize() int { return s.cfg.ShardSize }

// ModelNames returns the prediction-model set (in evaluation order) for
// one microarchitecture — the keys a complete prediction shard must
// carry. The learned model is excluded: it trains on the whole measured
// corpus and is never computed shard-locally, so configurations with
// TrainIthemal are not distributable.
func (s *Suite) ModelNames(archName string) ([]string, error) {
	cpu, err := uarch.ByName(archName)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, m := range models.All(cpu) {
		names = append(names, m.Name())
	}
	return names, nil
}

// ShardComplete reports whether a checkpointed shard entry holds both
// completed stages at the expected record count and model set — the
// validation computeArch applies before resuming a shard, exposed so a
// distributed coordinator skips exactly the shards a local run would.
func ShardComplete(e ShardEntry, names []string, n int) bool {
	return e.MeasDone && len(e.Tp) == n && len(e.Status) == n &&
		e.PredDone && predsMatch(e.Preds, names, n)
}

// NeedsCorpusData reports whether an experiment id drives the sharded
// corpus measurement/prediction passes (the work a distributed fill
// precomputes). Experiments outside this set profile their own private
// corpora (ablations, Google workloads) or none at all.
func NeedsCorpusData(id string) bool {
	switch id {
	case "table5", "fig-app-err", "fig-cluster-err", "fig-length-err", "all":
		return true
	}
	return false
}

// ComputeShard measures and predicts one shard of the corpus for one
// microarchitecture — the worker half of distributed evaluation. It runs
// the exact per-record pipeline computeArch runs (same profiling options,
// same model set, same record order), so the payload is byte-equivalent
// to what a local run would have journaled for that shard.
func (s *Suite) ComputeShard(archName string, si int) (*ShardPayload, error) {
	if s.cfg.TrainIthemal {
		return nil, fmt.Errorf("harness: ComputeShard: TrainIthemal runs are not distributable (the learned model needs the whole measured corpus)")
	}
	cpu, err := uarch.ByName(archName)
	if err != nil {
		return nil, err
	}
	n := len(s.recs)
	if si < 0 || si >= s.numShards(n) {
		return nil, fmt.Errorf("harness: ComputeShard: shard %d out of range (have %d)", si, s.numShards(n))
	}
	lo, hi := s.shardBounds(si, n)
	recs := s.recs[lo:hi]

	// Stage 1: measurements, exactly as computeArch's pass 1.
	meas := make([]measurement, hi-lo)
	s.profileRange(cpu, profiler.DefaultOptions(), recs, meas, s.cfg.Metrics)

	// Stage 2: predictions, exactly as computeArch's pass 2.
	var preds []models.Predictor
	for _, m := range models.All(cpu) {
		preds = append(preds, m)
	}
	d := &archData{preds: make(map[string][]float64)}
	for _, m := range preds {
		d.names = append(d.names, m.Name())
		d.preds[m.Name()] = make([]float64, hi-lo)
	}
	s.predictRange(preds, recs, d, 0)

	p := &ShardPayload{
		Arch:    archName,
		Shard:   si,
		Tp:      make([]float64, hi-lo),
		Status:  make([]int, hi-lo),
		Preds:   d.preds,
		Overall: make(map[string]stats.Running, len(d.names)),
		Tau:     make(map[string]*stats.TauAcc, len(d.names)),
	}
	for i := range meas {
		p.Tp[i] = meas[i].tp
		p.Status[i] = int(meas[i].status)
	}
	for _, name := range d.names {
		p.Tau[name] = new(stats.TauAcc)
	}
	for i := range meas {
		if meas[i].status != profiler.StatusOK || meas[i].tp <= 0 {
			continue
		}
		for _, name := range d.names {
			pr := d.preds[name][i]
			if math.IsNaN(pr) {
				continue
			}
			agg := p.Overall[name]
			agg.Add(stats.RelError(pr, meas[i].tp))
			p.Overall[name] = agg
			p.Tau[name].Add(pr, meas[i].tp)
		}
	}
	return p, nil
}
