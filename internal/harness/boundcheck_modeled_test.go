package harness

import (
	"testing"

	"bhive/internal/bound"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
)

// TestModeledBoundsSound is the boundcheck invariant for the modeled front
// end: with Options.ModeledFrontEnd on, every OK-profiled fixture block
// must land inside the AnalyzeFE(modeled=true) static bounds on every
// µarch, including Ice Lake — lower·n ≤ cycles(n) ≤ upper·n at the
// measured unroll n. A violation is a simulator or bound-analysis bug.
func TestModeledBoundsSound(t *testing.T) {
	recs := ablationFixture(t, 4)
	for _, cpu := range uarch.Extended() {
		opts := profiler.DefaultOptions()
		opts.ModeledFrontEnd = true
		p := profiler.New(cpu, opts)
		checked := 0
		for _, rec := range recs {
			r := p.Profile(rec.Block)
			if r.Status != profiler.StatusOK || r.Throughput <= 0 ||
				r.Counters.Cycles == 0 || r.UnrollHi <= 0 {
				continue
			}
			bs, err := bound.AnalyzeFE(cpu, rec.Block, true)
			if err != nil {
				t.Fatalf("%s/%s: %v", cpu.Name, rec.App, err)
			}
			checked++
			n := float64(r.UnrollHi)
			c := float64(r.Counters.Cycles)
			const eps = 1e-6
			if c < bs.Lower*n-eps || c > bs.Upper*n+eps {
				hexStr, _ := rec.Block.Hex()
				t.Errorf("%s: block %s: cycles %.0f outside modeled bounds [%.2f, %.2f] at unroll %d (%s)",
					cpu.Name, hexStr, c, bs.Lower*n, bs.Upper*n, r.UnrollHi, bs.VerdictString())
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no blocks checked", cpu.Name)
		}
		t.Logf("%s: %d blocks inside modeled bounds", cpu.Name, checked)
	}
}
