// Package harness regenerates every table and figure of the paper's
// evaluation section against the simulated machine: the measurement
// ablations, the corpus and category statistics, the per-model error
// tables, the case studies, and the Google-workload validation. See
// DESIGN.md for the experiment index.
//
// Evaluation is sharded and resumable: the corpus is split into
// fixed-size shards, profiling and model prediction are driven
// shard-by-shard through the worker pool, and each completed shard is
// persisted to an append-only checkpoint journal (see Checkpoint) keyed
// by the run fingerprint. An interrupted run re-invoked with the same
// checkpoint file resumes from the last completed shard and produces
// byte-identical tables. Shard results stream into the incremental
// aggregators of internal/stats as they complete, and per-shard progress
// lines (blocks/s, cache-hit rate, reject-status histogram) go to
// Config.Progress.
package harness

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bhive/internal/backend"
	"bhive/internal/blocklint"
	"bhive/internal/classify"
	"bhive/internal/corpus"
	"bhive/internal/models"
	"bhive/internal/models/ithemal"
	"bhive/internal/profcache"
	"bhive/internal/profiler"
	"bhive/internal/stats"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// DefaultShardSize is the per-shard record count when Config.ShardSize is
// unset: large enough to amortize worker startup, small enough that an
// interrupted run loses under a second of work.
const DefaultShardSize = 512

// ErrInterrupted is returned when Config.StopAfterShards exhausts its
// budget before the run completes. Completed shards are already persisted
// to the checkpoint; a re-run resumes behind them.
var ErrInterrupted = errors.New("harness: shard budget exhausted before the run completed")

// Config scales and parameterizes a harness run.
type Config struct {
	// Scale samples the corpus: 1.0 is the paper's full 358,561 blocks.
	Scale float64
	// Seed drives corpus generation and every stochastic component.
	Seed int64
	// TrainIthemal includes the learned model in the evaluations (adds
	// minutes of LSTM training per microarchitecture).
	TrainIthemal bool
	// IthemalEpochs/IthemalTrainCap bound the training cost.
	IthemalEpochs   int
	IthemalTrainCap int
	// Workers bounds profiling parallelism (0 = GOMAXPROCS).
	Workers int
	// Records, when non-empty, overrides corpus generation — e.g. a corpus
	// loaded from a CSV written by bhive-collect.
	Records []corpus.Record
	// ProfileCache, when non-nil, is shared by all profiling workers:
	// previously profiled (block, uarch, options, seed) tuples are served
	// from it instead of being re-measured.
	ProfileCache *profcache.Cache

	// ShardSize is the number of corpus records per evaluation shard
	// (0 = DefaultShardSize). Shards are the unit of checkpointing,
	// resumption and progress reporting.
	ShardSize int
	// CheckpointPath, when non-empty, persists every completed shard to an
	// append-only journal there; a re-run with the same configuration
	// resumes from the last completed shard. See Checkpoint for the file
	// format.
	CheckpointPath string
	// FsyncEvery relaxes checkpoint durability to one fsync per N
	// completed shards (group commit); 0 or 1 syncs every shard. A crash
	// can lose at most the last N-1 persisted shards, which the next run
	// recomputes — graceful stops (Close, Interrupt, StopAfterShards)
	// always flush, so only a hard kill pays that price.
	FsyncEvery int
	// Progress, when non-nil, receives one line per completed shard
	// (blocks/s, cache-hit rate, reject-status histogram) and a per-µarch
	// summary line. It must be distinct from the stream the rendered
	// tables go to.
	Progress io.Writer
	// StopAfterShards, when positive, aborts the run with ErrInterrupted
	// once that many shards have been computed (resumed shards don't
	// count). It bounds chunked batch jobs — "do N shards per invocation"
	// — and simulates interruption in the resumability tests.
	StopAfterShards int
	// Interrupt, when non-nil, requests a graceful drain: the run finishes
	// (and checkpoints) the shard in flight, then returns ErrInterrupted
	// at the next shard boundary once the channel is closed. The
	// evaluation server closes it on SIGTERM so in-flight jobs stop on a
	// durable boundary and resume byte-identically after restart.
	Interrupt <-chan struct{}
	// Metrics, when non-nil, receives every profiling outcome of the run
	// (all microarchitectures fold into it) instead of per-µarch private
	// counters. Snapshots are safe to take from other goroutines while the
	// run is in progress — the evaluation server polls it for job status.
	Metrics *profiler.Metrics

	// Prescreen runs the static block analyzer (internal/blocklint) over
	// every record before profiling and skips statically rejected blocks:
	// the predicted status is recorded without running the measurement
	// protocol, and the skip is counted in the metrics ("prescreened=N" in
	// the progress lines). Sound because the analyzer only rejects when
	// the rejection is guaranteed.
	Prescreen bool
	// Crosscheck profiles every non-prescreened record normally and also
	// runs the static analyzer, counting blocks whose dynamic status
	// disagrees with the static prediction outside the whitelisted cases
	// (see blocklint.Report.Agrees). Disagreements are surfaced in the
	// progress stream and in the metrics ("cross-mismatch=N").
	Crosscheck bool

	// Backends supplies the measurement backends the cross-validation
	// experiment (XValID) compares; empty means a single stock-simulator
	// backend wired to ProfileCache and Metrics. The suite does not own
	// them: the caller Closes them after the run (traces flush there).
	// Their fingerprints are part of the run fingerprint, so checkpoints
	// written under one backend set never resume another.
	Backends []backend.Backend
}

// DefaultConfig is sized for interactive runs.
func DefaultConfig() Config {
	return Config{
		Scale:           0.02,
		Seed:            7,
		TrainIthemal:    false,
		IthemalEpochs:   12,
		IthemalTrainCap: 2500,
	}
}

// measurement is one block's profiling outcome on one microarchitecture.
type measurement struct {
	tp     float64
	status profiler.Status
}

// archData caches per-microarchitecture results. The overall/tau
// aggregates are streamed shard-by-shard while the per-record slices are
// filled; summary tables read the aggregates and never re-walk the
// records.
type archData struct {
	meas    []measurement
	preds   map[string][]float64      // model name -> per-record prediction (NaN = failed)
	names   []string                  // model order
	overall map[string]*stats.Running // per-model streaming mean relative error
	tau     map[string]*stats.TauAcc  // per-model streaming Kendall-tau accumulator
}

// archOnce singleflights the expensive per-µarch computation: concurrent
// experiments requesting the same microarchitecture share one profiling
// pass instead of racing to duplicate it.
type archOnce struct {
	once sync.Once
	d    *archData
	err  error
}

// Suite owns the corpus and caches expensive intermediate results.
type Suite struct {
	cfg  Config
	recs []corpus.Record
	fp   string // run fingerprint binding checkpoints to this configuration

	mu        sync.Mutex
	arch      map[string]*archOnce
	bmeas     map[string]*bmeasOnce // per-(µarch, backend) xval measurements
	defaultBE backend.Backend       // lazily built when Config.Backends is empty
	cls       *classify.Classifier
	learn     map[string]*ithemal.Model
	ckpt      *Checkpoint
	ckptErr   error
	ckptOpen  bool

	computedShards  atomic.Int64  // shards computed (not resumed) this run
	profileCalls    atomic.Uint64 // Profile invocations (resumed shards skip these)
	crossMismatches atomic.Uint64 // static/dynamic disagreements (Crosscheck)
}

// New builds a suite: the corpus is generated eagerly, everything else
// lazily.
func New(cfg Config) *Suite {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = DefaultShardSize
	}
	recs := cfg.Records
	if len(recs) == 0 {
		recs = corpus.GenerateAll(cfg.Scale, cfg.Seed)
	}
	s := &Suite{
		cfg:   cfg,
		recs:  recs,
		arch:  make(map[string]*archOnce),
		learn: make(map[string]*ithemal.Model),
	}
	if cfg.CheckpointPath != "" {
		s.fp = runFingerprint(cfg, recs)
	}
	return s
}

// Records exposes the generated corpus.
func (s *Suite) Records() []corpus.Record { return s.recs }

// Close releases the checkpoint journal, if one was opened, flushing any
// shards a group-commit window (Config.FsyncEvery) was still holding.
// After Close every persisted shard is durable.
func (s *Suite) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ckpt != nil {
		return s.ckpt.Close()
	}
	return nil
}

// checkpoint lazily opens the journal configured by CheckpointPath.
func (s *Suite) checkpoint() (*Checkpoint, error) {
	if s.cfg.CheckpointPath == "" {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ckptOpen {
		s.ckpt, s.ckptErr = OpenCheckpoint(s.cfg.CheckpointPath, s.fp, s.cfg.ShardSize)
		s.ckptOpen = true
		if s.ckpt != nil && s.cfg.FsyncEvery > 1 {
			s.ckpt.SetGroupCommit(s.cfg.FsyncEvery)
		}
	}
	return s.ckpt, s.ckptErr
}

func (s *Suite) progressf(format string, args ...any) {
	if s.cfg.Progress != nil {
		fmt.Fprintf(s.cfg.Progress, format, args...)
	}
}

// spendShard charges one computed shard against StopAfterShards and
// reports whether the run should stop — budget exhausted, or a graceful
// interrupt (Config.Interrupt) requested. Either way the shard just
// completed is already checkpointed, so stopping here is a durable
// boundary.
func (s *Suite) spendShard() bool {
	n := s.computedShards.Add(1)
	if s.cfg.StopAfterShards > 0 && n >= int64(s.cfg.StopAfterShards) {
		return true
	}
	select {
	case <-s.cfg.Interrupt:
		return true
	default: // nil channel: never ready, default always taken
		return false
	}
}

// resumedRecords counts the records of one measurement pass whose shards
// the checkpoint already holds — the work a resume skips, excluded from
// the planned total behind the progress ETA.
func (s *Suite) resumedRecords(ck *Checkpoint, arch string) int {
	if ck == nil {
		return 0
	}
	n := len(s.recs)
	resumed := 0
	for si := 0; si < s.numShards(n); si++ {
		lo, hi := s.shardBounds(si, n)
		if sh, ok := ck.Shard(arch, si); ok && sh.MeasDone && len(sh.Tp) == hi-lo {
			resumed += hi - lo
		}
	}
	return resumed
}

// etaSuffix renders the overall-rate/ETA segment of a progress line
// ("  overall 1234 blocks/s  eta 2m5s"), or "" before any outcome lands.
// The ETA comes from the measured-only rate (see profiler.Rate), so a
// warm-cache resume doesn't promise the cold remainder at cache speed.
func etaSuffix(met *profiler.Metrics) string {
	r, ok := met.Throughput()
	if !ok {
		return ""
	}
	out := fmt.Sprintf("  overall %.0f blocks/s", r.BlocksPerSec)
	if r.Eta > 0 {
		out += fmt.Sprintf("  eta %s", r.Eta.Round(time.Second))
	}
	return out
}

// numShards is the shard count covering n records.
func (s *Suite) numShards(n int) int {
	return (n + s.cfg.ShardSize - 1) / s.cfg.ShardSize
}

// shardBounds returns the [lo, hi) record range of shard si.
func (s *Suite) shardBounds(si, n int) (lo, hi int) {
	lo = si * s.cfg.ShardSize
	hi = lo + s.cfg.ShardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// maxMismatchLines bounds the per-suite cross-check detail lines in the
// progress stream; the full count is always in the metrics.
const maxMismatchLines = 20

// profileRange profiles recs into out (parallel index-aligned slices)
// under the given options, feeding met. With Config.Prescreen, statically
// rejected blocks are skipped; with Config.Crosscheck, dynamic statuses
// are validated against the static predictions.
func (s *Suite) profileRange(cpu *uarch.CPU, opts profiler.Options, recs []corpus.Record, out []measurement, met *profiler.Metrics) {
	var lint *blocklint.Analyzer
	if s.cfg.Prescreen || s.cfg.Crosscheck {
		lint = blocklint.New(cpu, opts)
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(recs))
	for i := range recs {
		ch <- i
	}
	close(ch)
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := profiler.New(cpu, opts)
			p.Cache = s.cfg.ProfileCache
			p.Metrics = met
			for i := range ch {
				var rep *blocklint.Report
				if lint != nil {
					rep = lint.Analyze(recs[i].Block)
					if s.cfg.Prescreen && rep.Rejected() {
						out[i] = measurement{tp: 0, status: rep.Predicted}
						met.RecordPrescreened(rep.Predicted)
						continue
					}
				}
				r := p.Profile(recs[i].Block)
				out[i] = measurement{tp: r.Throughput, status: r.Status}
				s.profileCalls.Add(1)
				if s.cfg.Crosscheck && rep != nil && !rep.Agrees(r.Status) {
					met.RecordCrosscheckMismatch()
					if n := s.crossMismatches.Add(1); n <= maxMismatchLines {
						hexStr, _ := recs[i].Block.Hex()
						s.progressf("[%s] crosscheck mismatch: %s static=%s(exact=%v) dynamic=%s\n",
							cpu.Name, hexStr, rep.PredictedName, rep.Exact, r.Status)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// CrosscheckMismatches reports how many static/dynamic disagreements the
// suite has seen (0 unless Config.Crosscheck).
func (s *Suite) CrosscheckMismatches() uint64 { return s.crossMismatches.Load() }

// profileAll profiles a record set in parallel under the given options
// (unsharded: the ablation tables and Google corpora are small).
func (s *Suite) profileAll(cpu *uarch.CPU, opts profiler.Options, recs []corpus.Record) []measurement {
	out := make([]measurement, len(recs))
	s.profileRange(cpu, opts, recs, out, nil)
	return out
}

// predictRange runs every predictor over recs, writing into d.preds at
// offset base.
func (s *Suite) predictRange(preds []models.Predictor, recs []corpus.Record, d *archData, base int) {
	var wg sync.WaitGroup
	ch := make(chan int, len(recs))
	for i := range recs {
		ch <- i
	}
	close(ch)
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				for _, m := range preds {
					p, err := m.Predict(recs[i].Block)
					if err != nil {
						p = math.NaN()
					}
					d.preds[m.Name()][base+i] = p
				}
			}
		}()
	}
	wg.Wait()
}

// data returns (and lazily computes, exactly once per microarchitecture)
// the measurements and model predictions for one microarchitecture.
// Concurrent callers share a single computation.
func (s *Suite) data(cpu *uarch.CPU) (*archData, error) {
	s.mu.Lock()
	ao := s.arch[cpu.Name]
	if ao == nil {
		ao = new(archOnce)
		s.arch[cpu.Name] = ao
	}
	s.mu.Unlock()
	ao.once.Do(func() { ao.d, ao.err = s.computeArch(cpu) })
	return ao.d, ao.err
}

// computeArch drives the sharded measurement and prediction pipeline for
// one microarchitecture: resume completed shards from the checkpoint,
// compute and persist the rest, and stream every shard into the
// incremental aggregators.
func (s *Suite) computeArch(cpu *uarch.CPU) (*archData, error) {
	ck, err := s.checkpoint()
	if err != nil {
		return nil, err
	}
	n := len(s.recs)
	num := s.numShards(n)

	d := &archData{
		meas:    make([]measurement, n),
		preds:   make(map[string][]float64),
		overall: make(map[string]*stats.Running),
		tau:     make(map[string]*stats.TauAcc),
	}
	met := s.cfg.Metrics
	if met == nil {
		met = new(profiler.Metrics)
	}

	// Register this pass's non-resumed work up front so the per-shard
	// progress lines can carry an overall rate and time-to-finish.
	met.AddPlanned(n - s.resumedRecords(ck, cpu.Name))

	// Pass 1: measurements, shard by shard.
	for si := 0; si < num; si++ {
		lo, hi := s.shardBounds(si, n)
		if ck != nil {
			if sh, ok := ck.Shard(cpu.Name, si); ok && sh.MeasDone && len(sh.Tp) == hi-lo {
				for i := lo; i < hi; i++ {
					d.meas[i] = measurement{tp: sh.Tp[i-lo], status: profiler.Status(sh.Status[i-lo])}
				}
				s.progressf("[%s] meas shard %d/%d: %d blocks resumed from checkpoint\n",
					cpu.Name, si+1, num, hi-lo)
				continue
			}
		}
		start := time.Now()
		before := met.Snapshot()
		s.profileRange(cpu, profiler.DefaultOptions(), s.recs[lo:hi], d.meas[lo:hi], met)
		if ck != nil {
			tp := make([]float64, hi-lo)
			st := make([]int, hi-lo)
			for i := lo; i < hi; i++ {
				tp[i-lo] = d.meas[i].tp
				st[i-lo] = int(d.meas[i].status)
			}
			if err := ck.PutMeas(cpu.Name, si, tp, st); err != nil {
				return nil, err
			}
		}
		delta := met.Snapshot().Sub(before)
		s.progressf("[%s] meas shard %d/%d: %d blocks  %.0f blocks/s%s  cache-hit %.1f%%  reject: %s\n",
			cpu.Name, si+1, num, hi-lo,
			float64(hi-lo)/time.Since(start).Seconds(), etaSuffix(met),
			100*delta.HitRate(), delta.RejectHistogram())
		if s.spendShard() {
			return nil, ErrInterrupted
		}
	}

	// Predictors: the analytical models, plus the learned model trained on
	// the (now complete) measurements.
	var preds []models.Predictor
	for _, m := range models.All(cpu) {
		preds = append(preds, m)
	}
	if s.cfg.TrainIthemal {
		preds = append(preds, s.ithemalFor(cpu, d.meas))
	}
	for _, m := range preds {
		d.names = append(d.names, m.Name())
		d.preds[m.Name()] = make([]float64, n)
	}
	for _, name := range d.names {
		d.overall[name] = new(stats.Running)
		d.tau[name] = new(stats.TauAcc)
	}

	// Pass 2: predictions, shard by shard; every shard (resumed or
	// computed) streams into the aggregators in record order, so resumed
	// runs fold the same values in the same order.
	for si := 0; si < num; si++ {
		lo, hi := s.shardBounds(si, n)
		resumed := false
		if ck != nil {
			if sh, ok := ck.Shard(cpu.Name, si); ok && sh.PredDone && predsMatch(sh.Preds, d.names, hi-lo) {
				for _, name := range d.names {
					copy(d.preds[name][lo:hi], sh.Preds[name])
				}
				resumed = true
				s.progressf("[%s] pred shard %d/%d: %d blocks resumed from checkpoint\n",
					cpu.Name, si+1, num, hi-lo)
			}
		}
		if !resumed {
			start := time.Now()
			s.predictRange(preds, s.recs[lo:hi], d, lo)
			if ck != nil {
				shard := make(map[string][]float64, len(d.names))
				for _, name := range d.names {
					shard[name] = d.preds[name][lo:hi]
				}
				if err := ck.PutPreds(cpu.Name, si, shard); err != nil {
					return nil, err
				}
			}
			s.progressf("[%s] pred shard %d/%d: %d blocks  %.0f blocks/s  %d models\n",
				cpu.Name, si+1, num, hi-lo,
				float64(hi-lo)/time.Since(start).Seconds(), len(preds))
		}
		s.aggregateShard(d, lo, hi)
		if !resumed && s.spendShard() {
			return nil, ErrInterrupted
		}
	}

	if s.cfg.Progress != nil {
		line := fmt.Sprintf("[%s] done: %d blocks", cpu.Name, n)
		for _, name := range d.names {
			line += fmt.Sprintf("  %s mean=%.4f tau=%.4f", name, d.overall[name].Mean(), d.tau[name].Value())
		}
		s.progressf("%s\n", line)
	}
	return d, nil
}

// aggregateShard streams one shard's accepted (measurement, prediction)
// pairs into the per-model accumulators.
func (s *Suite) aggregateShard(d *archData, lo, hi int) {
	for i := lo; i < hi; i++ {
		if d.meas[i].status != profiler.StatusOK || d.meas[i].tp <= 0 {
			continue
		}
		for _, name := range d.names {
			p := d.preds[name][i]
			if math.IsNaN(p) {
				continue
			}
			d.overall[name].Add(stats.RelError(p, d.meas[i].tp))
			d.tau[name].Add(p, d.meas[i].tp)
		}
	}
}

// predsMatch verifies a checkpointed prediction shard covers exactly the
// expected models at the expected length (a model-set change must miss).
func predsMatch(got map[string][]float64, names []string, n int) bool {
	if len(got) != len(names) {
		return false
	}
	for _, name := range names {
		if len(got[name]) != n {
			return false
		}
	}
	return true
}

// ithemalFor trains (and caches) the learned model for one CPU on its
// measured corpus.
func (s *Suite) ithemalFor(cpu *uarch.CPU, meas []measurement) *ithemal.Model {
	s.mu.Lock()
	if m, ok := s.learn[cpu.Name]; ok {
		s.mu.Unlock()
		return m
	}
	s.mu.Unlock()

	// The paper's Ithemal authors attribute the model's weakness on
	// vectorized blocks to training-set imbalance: "the majority of
	// [their training data] consists of non-vectorized basic blocks", and
	// more vectorized blocks were left out for lack of reliable
	// measurements. Reproduce that imbalance where it bites: purely-vector
	// kernels (the category-2 population) are rare in training — only one
	// in eight of them is kept.
	var samples []ithemal.Sample
	vecSeen := 0
	for i := range s.recs {
		if meas[i].status != profiler.StatusOK || meas[i].tp <= 0 {
			continue
		}
		if pureVector(s.recs[i].Block) {
			vecSeen++
			if vecSeen%8 != 0 {
				continue
			}
		}
		samples = append(samples, ithemal.Sample{Block: s.recs[i].Block, Throughput: meas[i].tp})
	}
	if limit := s.cfg.IthemalTrainCap; limit > 0 && len(samples) > limit {
		samples = samples[:limit]
	}
	m := ithemal.New(32, 64, s.cfg.Seed)
	tc := ithemal.DefaultTrainConfig()
	if s.cfg.IthemalEpochs > 0 {
		tc.Epochs = s.cfg.IthemalEpochs
	}
	tc.Seed = s.cfg.Seed
	m.Train(samples, tc)

	s.mu.Lock()
	s.learn[cpu.Name] = m
	s.mu.Unlock()
	return m
}

// ithemalModel returns the trained learned model for one µarch (nil if
// not trained); data(cpu) must have completed first.
func (s *Suite) ithemalModel(name string) *ithemal.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.learn[name]
}

// pureVector reports whether every instruction in the block works on
// vector registers — the shape of the paper's category-2.
func pureVector(b *x86.Block) bool {
	if len(b.Insts) == 0 {
		return false
	}
	for i := range b.Insts {
		hasVecReg := false
		for _, a := range b.Insts[i].Args {
			if a.Kind == x86.KindReg && a.Reg.IsVec() {
				hasVecReg = true
			}
		}
		if !hasVecReg {
			return false
		}
	}
	return true
}

// classifier lazily fits the LDA classifier over the corpus (on Haswell,
// as in the paper).
func (s *Suite) classifier() *classify.Classifier {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cls == nil {
		blocks := make([]*x86.Block, len(s.recs))
		for i := range s.recs {
			blocks[i] = s.recs[i].Block
		}
		opts := classify.DefaultOptions()
		opts.Seed = s.cfg.Seed
		s.cls = classify.Fit(uarch.Haswell(), blocks, opts)
	}
	return s.cls
}

// errorCell aggregates one model's error over a filtered record subset.
func (s *Suite) errorCell(d *archData, name string, keep func(i int) bool, weighted bool) string {
	var mean stats.Running
	var wmean stats.RunningWeighted
	for i := range s.recs {
		if d.meas[i].status != profiler.StatusOK || d.meas[i].tp <= 0 || !keep(i) {
			continue
		}
		p := d.preds[name][i]
		if math.IsNaN(p) {
			continue
		}
		e := stats.RelError(p, d.meas[i].tp)
		mean.Add(e)
		wmean.Add(e, s.recs[i].Freq)
	}
	if mean.N() == 0 {
		return "-"
	}
	if weighted {
		return fmt.Sprintf("%.4f", wmean.Mean())
	}
	return fmt.Sprintf("%.4f", mean.Mean())
}

// overallCell renders one model's corpus-wide mean error from the
// streaming aggregate (no per-record walk).
func overallCell(d *archData, name string) string {
	agg := d.overall[name]
	if agg == nil || agg.N() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f", agg.Mean())
}

// appNames returns the corpus applications in stable order.
func (s *Suite) appNames() []string {
	seen := map[string]bool{}
	var out []string
	for i := range s.recs {
		if !seen[s.recs[i].App] {
			seen[s.recs[i].App] = true
			out = append(out, s.recs[i].App)
		}
	}
	sort.Strings(out)
	return out
}
