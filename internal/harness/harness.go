// Package harness regenerates every table and figure of the paper's
// evaluation section against the simulated machine: the measurement
// ablations, the corpus and category statistics, the per-model error
// tables, the case studies, and the Google-workload validation. See
// DESIGN.md for the experiment index.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"bhive/internal/classify"
	"bhive/internal/corpus"
	"bhive/internal/models"
	"bhive/internal/models/ithemal"
	"bhive/internal/profcache"
	"bhive/internal/profiler"
	"bhive/internal/stats"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Config scales and parameterizes a harness run.
type Config struct {
	// Scale samples the corpus: 1.0 is the paper's full 358,561 blocks.
	Scale float64
	// Seed drives corpus generation and every stochastic component.
	Seed int64
	// TrainIthemal includes the learned model in the evaluations (adds
	// minutes of LSTM training per microarchitecture).
	TrainIthemal bool
	// IthemalEpochs/IthemalTrainCap bound the training cost.
	IthemalEpochs   int
	IthemalTrainCap int
	// Workers bounds profiling parallelism (0 = GOMAXPROCS).
	Workers int
	// Records, when non-empty, overrides corpus generation — e.g. a corpus
	// loaded from a CSV written by bhive-collect.
	Records []corpus.Record
	// ProfileCache, when non-nil, is shared by all profiling workers:
	// previously profiled (block, uarch, options, seed) tuples are served
	// from it instead of being re-measured.
	ProfileCache *profcache.Cache
}

// DefaultConfig is sized for interactive runs.
func DefaultConfig() Config {
	return Config{
		Scale:           0.02,
		Seed:            7,
		TrainIthemal:    false,
		IthemalEpochs:   12,
		IthemalTrainCap: 2500,
	}
}

// measurement is one block's profiling outcome on one microarchitecture.
type measurement struct {
	tp     float64
	status profiler.Status
}

// archData caches per-microarchitecture results.
type archData struct {
	meas  []measurement
	preds map[string][]float64 // model name -> per-record prediction (NaN = failed)
	names []string             // model order
}

// Suite owns the corpus and caches expensive intermediate results.
type Suite struct {
	cfg Config

	recs []corpus.Record

	mu    sync.Mutex
	arch  map[string]*archData
	cls   *classify.Classifier
	learn map[string]*ithemal.Model
}

// New builds a suite: the corpus is generated eagerly, everything else
// lazily.
func New(cfg Config) *Suite {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	recs := cfg.Records
	if len(recs) == 0 {
		recs = corpus.GenerateAll(cfg.Scale, cfg.Seed)
	}
	return &Suite{
		cfg:   cfg,
		recs:  recs,
		arch:  make(map[string]*archData),
		learn: make(map[string]*ithemal.Model),
	}
}

// Records exposes the generated corpus.
func (s *Suite) Records() []corpus.Record { return s.recs }

// profileAll profiles a record set in parallel under the given options.
func (s *Suite) profileAll(cpu *uarch.CPU, opts profiler.Options, recs []corpus.Record) []measurement {
	out := make([]measurement, len(recs))
	var wg sync.WaitGroup
	ch := make(chan int, len(recs))
	for i := range recs {
		ch <- i
	}
	close(ch)
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := profiler.New(cpu, opts)
			p.Cache = s.cfg.ProfileCache
			for i := range ch {
				r := p.Profile(recs[i].Block)
				out[i] = measurement{tp: r.Throughput, status: r.Status}
			}
		}()
	}
	wg.Wait()
	return out
}

// data returns (and lazily computes) the measurements and model
// predictions for one microarchitecture.
func (s *Suite) data(cpu *uarch.CPU) *archData {
	s.mu.Lock()
	if d, ok := s.arch[cpu.Name]; ok {
		s.mu.Unlock()
		return d
	}
	s.mu.Unlock()

	d := &archData{preds: make(map[string][]float64)}
	d.meas = s.profileAll(cpu, profiler.DefaultOptions(), s.recs)

	preds := []models.Predictor{}
	for _, m := range models.All(cpu) {
		preds = append(preds, m)
	}
	if s.cfg.TrainIthemal {
		preds = append(preds, s.ithemalFor(cpu, d.meas))
	}
	for _, m := range preds {
		d.names = append(d.names, m.Name())
		d.preds[m.Name()] = make([]float64, len(s.recs))
	}

	var wg sync.WaitGroup
	ch := make(chan int, len(s.recs))
	for i := range s.recs {
		ch <- i
	}
	close(ch)
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				for _, m := range preds {
					p, err := m.Predict(s.recs[i].Block)
					if err != nil {
						p = math.NaN()
					}
					d.preds[m.Name()][i] = p
				}
			}
		}()
	}
	wg.Wait()

	s.mu.Lock()
	s.arch[cpu.Name] = d
	s.mu.Unlock()
	return d
}

// ithemalFor trains (and caches) the learned model for one CPU on its
// measured corpus.
func (s *Suite) ithemalFor(cpu *uarch.CPU, meas []measurement) *ithemal.Model {
	s.mu.Lock()
	if m, ok := s.learn[cpu.Name]; ok {
		s.mu.Unlock()
		return m
	}
	s.mu.Unlock()

	// The paper's Ithemal authors attribute the model's weakness on
	// vectorized blocks to training-set imbalance: "the majority of
	// [their training data] consists of non-vectorized basic blocks", and
	// more vectorized blocks were left out for lack of reliable
	// measurements. Reproduce that imbalance where it bites: purely-vector
	// kernels (the category-2 population) are rare in training — only one
	// in eight of them is kept.
	var samples []ithemal.Sample
	vecSeen := 0
	for i := range s.recs {
		if meas[i].status != profiler.StatusOK || meas[i].tp <= 0 {
			continue
		}
		if pureVector(s.recs[i].Block) {
			vecSeen++
			if vecSeen%8 != 0 {
				continue
			}
		}
		samples = append(samples, ithemal.Sample{Block: s.recs[i].Block, Throughput: meas[i].tp})
	}
	if cap := s.cfg.IthemalTrainCap; cap > 0 && len(samples) > cap {
		samples = samples[:cap]
	}
	m := ithemal.New(32, 64, s.cfg.Seed)
	tc := ithemal.DefaultTrainConfig()
	if s.cfg.IthemalEpochs > 0 {
		tc.Epochs = s.cfg.IthemalEpochs
	}
	tc.Seed = s.cfg.Seed
	m.Train(samples, tc)

	s.mu.Lock()
	s.learn[cpu.Name] = m
	s.mu.Unlock()
	return m
}

// pureVector reports whether every instruction in the block works on
// vector registers — the shape of the paper's category-2.
func pureVector(b *x86.Block) bool {
	if len(b.Insts) == 0 {
		return false
	}
	for i := range b.Insts {
		hasVecReg := false
		for _, a := range b.Insts[i].Args {
			if a.Kind == x86.KindReg && a.Reg.IsVec() {
				hasVecReg = true
			}
		}
		if !hasVecReg {
			return false
		}
	}
	return true
}

// classifier lazily fits the LDA classifier over the corpus (on Haswell,
// as in the paper).
func (s *Suite) classifier() *classify.Classifier {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cls == nil {
		blocks := make([]*x86.Block, len(s.recs))
		for i := range s.recs {
			blocks[i] = s.recs[i].Block
		}
		opts := classify.DefaultOptions()
		opts.Seed = s.cfg.Seed
		s.cls = classify.Fit(uarch.Haswell(), blocks, opts)
	}
	return s.cls
}

// errorRows aggregates per-model errors over a filtered record subset.
func (s *Suite) errorCell(d *archData, name string, keep func(i int) bool, weighted bool) string {
	var errs []float64
	var ws []uint64
	for i := range s.recs {
		if d.meas[i].status != profiler.StatusOK || d.meas[i].tp <= 0 || !keep(i) {
			continue
		}
		p := d.preds[name][i]
		if math.IsNaN(p) {
			continue
		}
		errs = append(errs, stats.RelError(p, d.meas[i].tp))
		ws = append(ws, s.recs[i].Freq)
	}
	if len(errs) == 0 {
		return "-"
	}
	if weighted {
		return fmt.Sprintf("%.4f", stats.WeightedMean(errs, ws))
	}
	return fmt.Sprintf("%.4f", stats.Mean(errs))
}

// appNames returns the corpus applications in stable order.
func (s *Suite) appNames() []string {
	seen := map[string]bool{}
	var out []string
	for i := range s.recs {
		if !seen[s.recs[i].App] {
			seen[s.recs[i].App] = true
			out = append(out, s.recs[i].App)
		}
	}
	sort.Strings(out)
	return out
}
