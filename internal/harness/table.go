package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows the paper's tables and
// figures report.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
