package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bhive/internal/backend"
	"bhive/internal/corpus"
)

// xvalConfig is a small, fast cross-validation configuration: a sub-1%
// corpus so the full sharded pipeline (multiple shards per backend) runs
// in well under a second per backend.
func xvalConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = 0.0005
	cfg.Seed = 7
	cfg.Workers = 4
	cfg.ShardSize = 64
	cfg.Records = corpus.GenerateAll(cfg.Scale, cfg.Seed)
	return cfg
}

// TestXValGolden pins the sim-only cross-validation report (seed 7,
// scale 0.002) byte-for-byte, the same determinism contract the Table V
// golden enforces for the model pipeline.
func TestXValGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles the corpus at scale 0.002 (seconds)")
	}
	want, err := os.ReadFile("testdata/xval_sim_seed7_scale0002.golden")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	cfg.Workers = 4
	got, err := New(cfg).Run(XValID, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("xval report diverged from the recorded output.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestXValRecordReplayByteIdentity is the tentpole acceptance contract:
// recording a sim run to a trace and replaying that trace must reproduce
// the sim-only report byte-for-byte.
func TestXValRecordReplayByteIdentity(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "sim.trace")

	// Plain sim run.
	cfg := xvalConfig(t)
	cfg.Backends = []backend.Backend{backend.NewSim(backend.Options{})}
	plain, err := New(cfg).Run(XValID, "")
	if err != nil {
		t.Fatal(err)
	}

	// Recording run: transparent, so its report equals the plain one.
	rec, err := backend.NewRecorder(backend.NewSim(backend.Options{}), trace)
	if err != nil {
		t.Fatal(err)
	}
	cfg = xvalConfig(t)
	cfg.Backends = []backend.Backend{rec}
	recorded, err := New(cfg).Run(XValID, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if recorded != plain {
		t.Fatalf("recording changed the report.\n--- recorded ---\n%s\n--- plain ---\n%s", recorded, plain)
	}

	// Replay run: no simulation at all, same bytes.
	rb, err := backend.OpenTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	cfg = xvalConfig(t)
	cfg.Backends = []backend.Backend{rb}
	replayed, err := New(cfg).Run(XValID, "")
	if err != nil {
		t.Fatal(err)
	}
	if replayed != plain {
		t.Fatalf("replay diverged from the sim report.\n--- replayed ---\n%s\n--- plain ---\n%s", replayed, plain)
	}
}

// TestXValPairwise checks the report shape over two live backends: every
// µarch gets a coverage row per backend, one pairwise row, and the
// pairwise columns are populated.
func TestXValPairwise(t *testing.T) {
	cfg := xvalConfig(t)
	bes, err := backend.ParseList("sim,perturbed", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backends = bes
	rr, err := New(cfg).RunStructured(XValID, "haswell")
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Tables) != 3 {
		t.Fatalf("got %d tables, want 3 (coverage, pairwise, status)", len(rr.Tables))
	}
	cov, pair := rr.Tables[0], rr.Tables[1]
	if len(cov.Rows) != 2 {
		t.Fatalf("coverage rows = %d, want 2 (one per backend)", len(cov.Rows))
	}
	if len(pair.Rows) != 1 {
		t.Fatalf("pairwise rows = %d, want 1", len(pair.Rows))
	}
	row := pair.Rows[0]
	if row[0] != "haswell" || row[1] != "sim vs perturbed" {
		t.Fatalf("pairwise row identity: %v", row[:2])
	}
	for i, col := range []string{"both-OK", "error", "tau", "agreement"} {
		if row[2+i] == "" {
			t.Errorf("pairwise column %s is empty", col)
		}
	}
	if !strings.HasSuffix(row[5], "%") {
		t.Errorf("status agreement %q not a percentage", row[5])
	}
}

// TestXValCheckpointResume drives the xval pipeline through the same
// interrupt/resume cycle the model pipeline supports: a shard-budgeted
// run stops with ErrInterrupted, and the re-run resumes from the journal
// and produces a byte-identical report.
func TestXValCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "xval.ckpt")

	uninterrupted := func() string {
		cfg := xvalConfig(t)
		cfg.Backends = []backend.Backend{backend.NewSim(backend.Options{})}
		out, err := New(cfg).Run(XValID, "")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()

	cfg := xvalConfig(t)
	cfg.Backends = []backend.Backend{backend.NewSim(backend.Options{})}
	cfg.CheckpointPath = ckpt
	cfg.StopAfterShards = 1
	s := New(cfg)
	_, err := s.Run(XValID, "")
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("budgeted run: err = %v, want ErrInterrupted", err)
	}
	s.Close()

	var progress bytes.Buffer
	cfg = xvalConfig(t)
	cfg.Backends = []backend.Backend{backend.NewSim(backend.Options{})}
	cfg.CheckpointPath = ckpt
	cfg.Progress = &progress
	s = New(cfg)
	defer s.Close()
	resumed, err := s.Run(XValID, "")
	if err != nil {
		t.Fatal(err)
	}
	if resumed != uninterrupted {
		t.Fatalf("resumed report diverged.\n--- resumed ---\n%s\n--- want ---\n%s", resumed, uninterrupted)
	}
	if !strings.Contains(progress.String(), "resumed from checkpoint") {
		t.Fatalf("no shard resumed from checkpoint; progress:\n%s", progress.String())
	}
}

// TestXValDefaultBackend: with no backends configured the experiment
// reduces to a single-sim coverage report — Names() stays the paper's
// table set, and AllNames advertises the extension.
func TestXValDefaultBackend(t *testing.T) {
	cfg := xvalConfig(t)
	rr, err := New(cfg).RunStructured(XValID, "haswell")
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Tables[0].Rows) != 1 || rr.Tables[0].Rows[0][1] != "sim" {
		t.Fatalf("default backend coverage rows: %v", rr.Tables[0].Rows)
	}
	if len(rr.Tables[1].Rows) != 0 {
		t.Fatalf("single backend produced pairwise rows: %v", rr.Tables[1].Rows)
	}
	for _, n := range Names() {
		if n == XValID {
			t.Fatal("xval leaked into Names(); -exp all would double profiling cost")
		}
	}
	found := false
	for _, n := range AllNames() {
		if n == XValID {
			found = true
		}
	}
	if !found {
		t.Fatal("AllNames() missing xval")
	}
}
