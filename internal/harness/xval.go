package harness

import (
	"fmt"
	"sync"
	"time"

	"bhive/internal/backend"
	"bhive/internal/corpus"
	"bhive/internal/profiler"
	"bhive/internal/stats"
	"bhive/internal/uarch"
)

// XValID is the experiment id of the backend cross-validation report. It
// is not part of Names() — "all" regenerates the paper's tables, and
// cross-validation multiplies the profiling cost by the backend count —
// but RunStructured accepts it, and AllNames advertises it.
const XValID = "xval"

// AllNames lists every runnable experiment id: the paper's tables and
// figures (Names) plus the cross-validation and bound-check extensions.
func AllNames() []string { return append(Names(), XValID, BoundCheckID) }

// backends returns the configured measurement backends, defaulting to a
// single stock-simulator backend wired to the suite's cache and metrics —
// so `xval` with no -backend flag is exactly the ground truth every other
// experiment uses.
func (s *Suite) backends() []backend.Backend {
	if len(s.cfg.Backends) > 0 {
		return s.cfg.Backends
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.defaultBE == nil {
		s.defaultBE = backend.NewSim(backend.Options{
			Cache:   s.cfg.ProfileCache,
			Metrics: s.cfg.Metrics,
		})
	}
	return []backend.Backend{s.defaultBE}
}

// backendArchKey is the checkpoint shard namespace of one (µarch,
// backend) measurement pass. The "@" keeps it disjoint from the plain
// cpu-name keys the model-evaluation passes use, so one journal can hold
// both.
func backendArchKey(cpu *uarch.CPU, be backend.Backend) string {
	return cpu.Name + "@" + be.Name()
}

// bmeasOnce singleflights one (µarch, backend) measurement pass, the way
// archOnce does for the model-evaluation passes.
type bmeasOnce struct {
	once sync.Once
	meas []measurement
	err  error
}

// backendData measures the whole corpus with one backend on one
// microarchitecture — sharded, checkpointed, and computed at most once
// per suite.
func (s *Suite) backendData(be backend.Backend, cpu *uarch.CPU) ([]measurement, error) {
	key := backendArchKey(cpu, be)
	s.mu.Lock()
	if s.bmeas == nil {
		s.bmeas = make(map[string]*bmeasOnce)
	}
	bo := s.bmeas[key]
	if bo == nil {
		bo = new(bmeasOnce)
		s.bmeas[key] = bo
	}
	s.mu.Unlock()
	bo.once.Do(func() { bo.meas, bo.err = s.computeBackendArch(be, cpu) })
	return bo.meas, bo.err
}

// computeBackendArch is the backend analogue of computeArch's measurement
// pass: resume completed shards from the checkpoint, measure and persist
// the rest.
func (s *Suite) computeBackendArch(be backend.Backend, cpu *uarch.CPU) ([]measurement, error) {
	ck, err := s.checkpoint()
	if err != nil {
		return nil, err
	}
	key := backendArchKey(cpu, be)
	n := len(s.recs)
	num := s.numShards(n)
	meas := make([]measurement, n)

	// Backends that share Config.Metrics (the evaluation server wires its
	// job metrics into both) get the same overall-rate/ETA reporting as
	// the stock measurement pass; AddPlanned is a no-op on a nil sink.
	met := s.cfg.Metrics
	met.AddPlanned(n - s.resumedRecords(ck, key))

	for si := 0; si < num; si++ {
		lo, hi := s.shardBounds(si, n)
		if ck != nil {
			if sh, ok := ck.Shard(key, si); ok && sh.MeasDone && len(sh.Tp) == hi-lo {
				for i := lo; i < hi; i++ {
					meas[i] = measurement{tp: sh.Tp[i-lo], status: profiler.Status(sh.Status[i-lo])}
				}
				s.progressf("[%s] meas shard %d/%d: %d blocks resumed from checkpoint\n",
					key, si+1, num, hi-lo)
				continue
			}
		}
		start := time.Now()
		s.measureBackendRange(be, cpu, s.recs[lo:hi], meas[lo:hi])
		if ck != nil {
			tp := make([]float64, hi-lo)
			st := make([]int, hi-lo)
			for i := lo; i < hi; i++ {
				tp[i-lo] = meas[i].tp
				st[i-lo] = int(meas[i].status)
			}
			if err := ck.PutMeas(key, si, tp, st); err != nil {
				return nil, err
			}
		}
		s.progressf("[%s] meas shard %d/%d: %d blocks  %.0f blocks/s%s\n",
			key, si+1, num, hi-lo, float64(hi-lo)/time.Since(start).Seconds(), etaSuffix(met))
		if s.spendShard() {
			return nil, ErrInterrupted
		}
	}
	return meas, nil
}

// measureBackendRange drives one backend over recs with the suite's
// worker pool, filling out (index-aligned).
func (s *Suite) measureBackendRange(be backend.Backend, cpu *uarch.CPU, recs []corpus.Record, out []measurement) {
	var wg sync.WaitGroup
	ch := make(chan int, len(recs))
	for i := range recs {
		ch <- i
	}
	close(ch)
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				m := be.Measure(recs[i].Block, cpu)
				out[i] = measurement{tp: m.Throughput, status: m.Status}
				s.profileCalls.Add(1)
			}
		}()
	}
	wg.Wait()
}

// CrossValidation measures the corpus with every configured backend on
// the given microarchitectures and reports their pairwise agreement in
// the shape of the paper's model-error tables: a coverage table (per
// backend, how much of the suite it accepts), a pairwise table (average
// relative error, Kendall's τ, status agreement — Table V/VI columns with
// backends in the model seat), and a status-disagreement matrix. With a
// single backend the pairwise tables are headers only and the report
// reduces to that backend's coverage — which is what makes a recorded
// trace's replay byte-comparable to the run that produced it.
func (s *Suite) CrossValidation(cpus []*uarch.CPU) ([]*Table, error) {
	bes := s.backends()

	cov := &Table{
		ID:     "xval-coverage",
		Title:  "Backend coverage: suite fraction accepted per measurement backend",
		Header: []string{"Microarchitecture", "Backend", "Blocks", "OK", "Profiled", "Mean Throughput"},
	}
	pair := &Table{
		ID:     "xval",
		Title:  "Pairwise backend cross-validation (blocks accepted by both)",
		Header: []string{"Microarchitecture", "Backends", "Both OK", "Average Error", "Kendall's Tau", "Status Agreement"},
	}
	disagree := &Table{
		ID:     "xval-status",
		Title:  "Status disagreement matrix (blocks where paired backends rejected differently)",
		Header: []string{"Microarchitecture", "Backends", "Status A", "Status B", "Blocks"},
	}

	for _, cpu := range cpus {
		meas := make([][]measurement, len(bes))
		for bi, be := range bes {
			m, err := s.backendData(be, cpu)
			if err != nil {
				return nil, err
			}
			meas[bi] = m

			var mean stats.Running
			ok := 0
			for i := range m {
				if m[i].status == profiler.StatusOK && m[i].tp > 0 {
					ok++
					mean.Add(m[i].tp)
				}
			}
			cov.Rows = append(cov.Rows, []string{
				cpu.Name, be.Name(),
				fmt.Sprintf("%d", len(m)),
				fmt.Sprintf("%d", ok),
				fmt.Sprintf("%.2f%%", 100*float64(ok)/float64(max(len(m), 1))),
				fmt.Sprintf("%.2f", mean.Mean()),
			})
		}

		for ai := 0; ai < len(bes); ai++ {
			for bi := ai + 1; bi < len(bes); bi++ {
				label := bes[ai].Name() + " vs " + bes[bi].Name()
				var errMean stats.Running
				var tau stats.TauAcc
				agree, both := 0, 0
				counts := map[[2]profiler.Status]int{}
				for i := range s.recs {
					a, b := meas[ai][i], meas[bi][i]
					if a.status == b.status {
						agree++
					} else {
						counts[[2]profiler.Status{a.status, b.status}]++
					}
					if a.status != profiler.StatusOK || b.status != profiler.StatusOK ||
						a.tp <= 0 || b.tp <= 0 {
						continue
					}
					both++
					errMean.Add(stats.RelError(a.tp, b.tp))
					tau.Add(a.tp, b.tp)
				}
				pair.Rows = append(pair.Rows, []string{
					cpu.Name, label,
					fmt.Sprintf("%d", both),
					fmt.Sprintf("%.4f", errMean.Mean()),
					fmt.Sprintf("%.4f", tau.Value()),
					fmt.Sprintf("%.2f%%", 100*float64(agree)/float64(max(len(s.recs), 1))),
				})
				// Matrix cells in status order, nonzero only, so the table is
				// deterministic and dense.
				for sa := profiler.StatusOK; sa <= profiler.StatusUnstable; sa++ {
					for sb := profiler.StatusOK; sb <= profiler.StatusUnstable; sb++ {
						if c := counts[[2]profiler.Status{sa, sb}]; c > 0 {
							disagree.Rows = append(disagree.Rows, []string{
								cpu.Name, label, sa.String(), sb.String(), fmt.Sprintf("%d", c),
							})
						}
					}
				}
			}
		}
	}

	cov.Notes = append(cov.Notes, fmt.Sprintf("suite scale %.4g (%d blocks), seed %d",
		s.cfg.Scale, len(s.recs), s.cfg.Seed))
	if len(bes) < 2 {
		pair.Notes = append(pair.Notes, "single backend: no pairs to cross-validate")
	} else {
		pair.Notes = append(pair.Notes,
			"Average Error is mean |tpA - tpB| / tpB over blocks both backends accept; agreement counts identical statuses")
	}
	return []*Table{cov, pair, disagree}, nil
}
