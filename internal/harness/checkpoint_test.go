package harness

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bhive/internal/uarch"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")

	ck, err := OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutMeas("haswell", 0, []float64{1, 2.5, 0, 3}, []int{0, 0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := ck.PutPreds("haswell", 0, map[string][]float64{
		"IACA":  {1.1, 2.4, math.NaN(), 3.2},
		"OSACA": {math.NaN(), math.NaN(), math.NaN(), math.NaN()},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	sh, ok := ck.Shard("haswell", 0)
	if !ok || !sh.MeasDone || !sh.PredDone {
		t.Fatalf("shard not fully replayed: %+v", sh)
	}
	if sh.Tp[1] != 2.5 || sh.Status[2] != 1 {
		t.Fatalf("measurements corrupted: %+v", sh)
	}
	// NaN predictions (failed models) must survive the JSON round-trip.
	if !math.IsNaN(sh.Preds["IACA"][2]) || sh.Preds["IACA"][3] != 3.2 {
		t.Fatalf("preds corrupted: %v", sh.Preds["IACA"])
	}
	for i, v := range sh.Preds["OSACA"] {
		if !math.IsNaN(v) {
			t.Fatalf("OSACA[%d] = %v, want NaN", i, v)
		}
	}
	if _, ok := ck.Shard("haswell", 1); ok {
		t.Fatal("phantom shard")
	}
}

func TestCheckpointIdentityMismatchRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, "fp-a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutMeas("haswell", 0, []float64{1}, []int{0}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Different fingerprint: persisted shards must be discarded, not merged.
	ck, err = OpenCheckpoint(path, "fp-b", 4)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Shards() != 0 {
		t.Fatalf("foreign shards kept: %d", ck.Shards())
	}
	ck.Close()

	// The restart rewrote the file under the new identity; the old one is gone.
	ck, err = OpenCheckpoint(path, "fp-a", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Shards() != 0 {
		t.Fatalf("stale shards resurrected: %d", ck.Shards())
	}
}

func TestCheckpointShardSizeMismatchRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutMeas("haswell", 0, []float64{1}, []int{0}); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	ck, err = OpenCheckpoint(path, "fp", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Shards() != 0 {
		t.Fatalf("shard-size change must restart: %d", ck.Shards())
	}
}

func TestCheckpointTruncatedTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutMeas("haswell", 0, []float64{1, 2}, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Arch":"haswell","Shard":1,"Stage":"meas","Tp":[9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatalf("truncated trailing line must be tolerated: %v", err)
	}
	if ck.Shards() != 1 {
		t.Fatalf("complete shards lost: %d", ck.Shards())
	}
	// The fragment must be physically gone so this append starts clean.
	if err := ck.PutMeas("haswell", 1, []float64{3, 4}, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"Tp":[9{`) {
		t.Fatal("append landed on the truncated fragment")
	}
	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Shards() != 2 {
		t.Fatalf("post-recovery append lost: %d", ck.Shards())
	}
}

// TestCheckpointTornParseableTrailingLine covers the nastier crash shape:
// the append tore exactly at the record's closing brace, so the fragment
// parses as complete JSON but has no newline. The old loader applied it
// and did not truncate, so the next append concatenated onto it —
// `}{"Arch":…` on one line — and every later open choked on a "corrupt
// journal line". An unterminated line is never durably committed (record
// and newline are one synced write), so it must be dropped like any other
// torn fragment.
func TestCheckpointTornParseableTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.PutMeas("haswell", 0, []float64{1, 2}, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Complete JSON, missing only the trailing newline.
	if _, err := f.WriteString(`{"Arch":"haswell","Shard":1,"Stage":"meas","Tp":[9],"Status":[0]}`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatalf("torn trailing line must be tolerated: %v", err)
	}
	if ck.Shards() != 1 {
		t.Fatalf("want 1 shard (the torn record was never committed), got %d", ck.Shards())
	}
	if _, ok := ck.Shard("haswell", 1); ok {
		t.Fatal("uncommitted torn record resurrected")
	}
	// The shard in flight during the crash is recomputed and re-appended;
	// the journal must stay line-clean through it.
	if err := ck.PutMeas("haswell", 1, []float64{3, 4}, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `}{`) {
		t.Fatal("append landed on the torn fragment")
	}
	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatalf("journal corrupted by post-recovery append: %v", err)
	}
	defer ck.Close()
	if ck.Shards() != 2 {
		t.Fatalf("post-recovery append lost: %d", ck.Shards())
	}
}

func TestCheckpointMidJournalCorruptionIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A complete (newline-terminated) garbage line is not the crash shape —
	// it must surface as an error, never as silent shard loss.
	if _, err := f.WriteString("not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenCheckpoint(path, "fp", 4); err == nil {
		t.Fatal("corrupt journal line must error")
	}
}

// TestDataSingleflight asserts that concurrent experiments requesting the
// same microarchitecture share one profiling pass: the old code released
// the suite lock between the cache check and the compute, so racing
// callers duplicated the entire measurement run.
func TestDataSingleflight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	cfg.ShardSize = 64
	s := New(cfg)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.data(uarch.Haswell()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got, want := s.profileCalls.Load(), uint64(len(s.recs)); got != want {
		t.Fatalf("%d Profile calls for %d records: concurrent data() duplicated profiling", got, want)
	}
}

// TestResumeAfterInterrupt simulates a killed run: the first suite stops
// after three computed shards (ErrInterrupted), the second one picks up
// the same checkpoint and must produce exactly the output of a run that
// was never interrupted, while re-profiling only the missing shards.
func TestResumeAfterInterrupt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	cfg.ShardSize = 64
	cfg.Workers = 4

	// Reference: same configuration, no checkpoint, no interruption.
	ref, err := New(cfg).Run("table5", "")
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg.CheckpointPath = path
	cfg.StopAfterShards = 3
	s1 := New(cfg)
	if _, err := s1.Run("table5", ""); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if got, want := s1.profileCalls.Load(), uint64(3*cfg.ShardSize); got != want {
		t.Fatalf("interrupted run profiled %d blocks, want %d", got, want)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.StopAfterShards = 0
	s2 := New(cfg)
	got, err := s2.Run("table5", "")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got != ref {
		t.Fatalf("resumed output diverged.\n--- resumed ---\n%s\n--- reference ---\n%s", got, ref)
	}
	// The three checkpointed shards must not have been re-profiled.
	want := uint64(3*len(s2.recs) - 3*cfg.ShardSize)
	if got := s2.profileCalls.Load(); got != want {
		t.Fatalf("resumed run profiled %d blocks, want %d (checkpointed shards re-profiled?)", got, want)
	}
}

// TestResumeMatchesGolden is the acceptance check from the issue: an
// interrupted table5 run at the golden configuration (seed 7, scale
// 0.02), resumed from its checkpoint, must be byte-identical to
// testdata/table5_seed7_scale002.golden.
func TestResumeMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates Table V at scale 0.02 twice (tens of seconds)")
	}
	want, err := os.ReadFile("testdata/table5_seed7_scale002.golden")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // scale 0.02, seed 7: the golden configuration
	cfg.Workers = 4
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
	cfg.StopAfterShards = 3

	s1 := New(cfg)
	if _, err := s1.Run("table5", ""); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	s1.Close()

	cfg.StopAfterShards = 0
	s2 := New(cfg)
	got, err := s2.Run("table5", "")
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if got != string(want) {
		t.Fatalf("resumed Table V diverged from the golden output.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestCheckpointGroupCommit pins the group-commit batching: N appends
// share one Sync, Flush drains a partial group, and every line written
// (synced or not) replays after a clean Close.
func TestCheckpointGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetGroupCommit(3)
	for i := 0; i < 7; i++ {
		if err := ck.PutMeas("haswell", i, []float64{float64(i)}, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ck.syncs; got != 2 {
		t.Fatalf("7 appends at group size 3 took %d syncs, want 2", got)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := ck.syncs; got != 3 {
		t.Fatalf("Flush did not sync the partial group: %d syncs, want 3", got)
	}
	if err := ck.Flush(); err != nil { // nothing pending: must not sync again
		t.Fatal(err)
	}
	if got := ck.syncs; got != 3 {
		t.Fatalf("empty Flush synced: %d syncs, want 3", got)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Shards() != 7 {
		t.Fatalf("replay lost group-committed shards: %d, want 7", ck.Shards())
	}
}

// TestCheckpointCrashMidGroup simulates a hard kill inside a group-commit
// window: several whole lines were written but not synced, and the line in
// flight tore mid-record. Recovery must keep every complete line — whether
// or not its group ever synced — and drop only the torn tail.
func TestCheckpointCrashMidGroup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck, err := OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	ck.SetGroupCommit(8)
	for i := 0; i < 5; i++ {
		if err := ck.PutMeas("haswell", i, []float64{float64(i)}, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if ck.syncs != 0 {
		t.Fatalf("group of 8 synced after 5 appends: %d syncs", ck.syncs)
	}
	// Crash: drop the handle without Flush/Close, then tear the tail the
	// way an interrupted append would.
	ck.f.Close()
	ck.f = nil
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Arch":"haswell","Shard":5,"Stage":"meas","Tp":[`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatalf("crash mid-group must be recoverable: %v", err)
	}
	if ck.Shards() != 5 {
		t.Fatalf("complete unsynced lines lost: %d shards, want 5", ck.Shards())
	}
	if _, ok := ck.Shard("haswell", 5); ok {
		t.Fatal("torn in-flight record resurrected")
	}
	// The recomputed shard appends cleanly onto the truncated boundary.
	if err := ck.PutMeas("haswell", 5, []float64{5}, []int{0}); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	ck, err = OpenCheckpoint(path, "fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Shards() != 6 {
		t.Fatalf("post-recovery append lost: %d shards, want 6", ck.Shards())
	}
}
