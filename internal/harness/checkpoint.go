package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"bhive/internal/corpus"
	"bhive/internal/memo"
	"bhive/internal/profcache"
	"bhive/internal/profiler"
)

// CheckpointVersion tags the journal format and the evaluation semantics
// it captures. A bump discards persisted shards wholesale, like
// profcache.Version does for profiles.
const CheckpointVersion = 1

// A Checkpoint persists completed evaluation shards so an interrupted run
// resumes from the last completed shard instead of recomputing the whole
// corpus. The file is an append-only JSONL journal:
//
//	line 1:  {"Version":1,"Fingerprint":"…","ShardSize":512}
//	line 2+: {"Arch":"haswell","Shard":0,"Stage":"meas","Tp":[…],"Status":[…]}
//	         {"Arch":"haswell","Shard":0,"Stage":"pred","Preds":{"IACA":[…],…}}
//
// Each completed shard appends exactly one line, so the journal is O(1)
// per shard regardless of run length. By default every append also syncs,
// making the journal durable shard-by-shard: a crash can lose at most the
// shard in flight. SetGroupCommit relaxes that to one sync per N appends
// (group commit) — small, fast shards then stop paying a device flush
// each; a crash can lose up to the last unsynced group, which a resume
// simply recomputes. Close and Flush always sync the tail. The fingerprint
// binds the journal to one run identity — corpus content, seed, scale,
// profiling options, and model configuration (the same key space
// profcache uses, lifted to whole runs) — so a journal written by a
// different corpus or configuration is discarded on open, never merged.
// A truncated trailing line (the crash case) is dropped silently; any
// other malformed content is an error, so silent checkpoint loss stays
// visible.
//
// NaN predictions (failed models) round-trip as JSON null.
type Checkpoint struct {
	path string

	mu     sync.Mutex
	f      *os.File
	shards map[shardKey]*ShardEntry

	// Group-commit state: sync once per groupEvery appends (<=1: every
	// append). pending counts appends written since the last sync; syncs
	// counts Sync calls (observed by tests to pin the batching behavior).
	groupEvery int
	pending    int
	syncs      int
}

type shardKey struct {
	arch string
	idx  int
}

// ShardEntry is the persisted state of one (µarch, shard) cell. The two
// stages complete independently: measurements land during the profiling
// pass, predictions during the model pass (which may be a separate
// process lifetime when a run is interrupted between the two).
type ShardEntry struct {
	MeasDone bool
	Tp       []float64
	Status   []int

	PredDone bool
	Preds    map[string][]float64
}

type ckptHeader struct {
	Version     int
	Fingerprint string
	ShardSize   int
}

// ckptLine is one journal record.
type ckptLine struct {
	Arch   string
	Shard  int
	Stage  string                // "meas" or "pred"
	Tp     []float64             `json:",omitempty"`
	Status []int                 `json:",omitempty"`
	Preds  map[string][]nanFloat `json:",omitempty"`
}

// nanFloat round-trips NaN through JSON as null (encoding/json rejects
// NaN outright, and failed models legitimately predict NaN).
type nanFloat float64

func (f nanFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

func (f *nanFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = nanFloat(math.NaN())
		return nil
	}
	return json.Unmarshal(b, (*float64)(f))
}

// OpenCheckpoint opens (or creates) the journal at path. Persisted shards
// are kept only when the header matches (same format version, same run
// fingerprint, same shard size); otherwise the journal is restarted
// empty. A truncated trailing line — the interrupted-append case — is
// dropped and physically truncated away, so later appends start on a
// clean line boundary; any other corruption is an error.
func OpenCheckpoint(path, fingerprint string, shardSize int) (*Checkpoint, error) {
	c := &Checkpoint{path: path, shards: make(map[shardKey]*ShardEntry)}

	raw, err := os.ReadFile(path)
	fresh := false
	validLen := int64(0)
	switch {
	case os.IsNotExist(err):
		fresh = true
	case err != nil:
		return nil, fmt.Errorf("checkpoint: %w", err)
	default:
		var ok bool
		ok, validLen, err = c.load(raw, fingerprint, shardSize)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
		}
		fresh = !ok
	}

	if fresh {
		if dir := filepath.Dir(path); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("checkpoint: %w", err)
			}
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		hdr, err := json.Marshal(ckptHeader{
			Version: CheckpointVersion, Fingerprint: fingerprint, ShardSize: shardSize,
		})
		if err == nil {
			_, err = f.Write(append(hdr, '\n'))
		}
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		c.f = f
		return c, nil
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if validLen < int64(len(raw)) {
		// Drop the interrupted trailing fragment before appending to it.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	c.f = f
	return c, nil
}

// load replays a journal. It reports whether the header matched (false
// means: restart empty) and how many leading bytes hold complete, valid
// lines.
func (c *Checkpoint) load(raw []byte, fingerprint string, shardSize int) (ok bool, validLen int64, err error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return false, 0, nil // empty or truncated header: restart
	}
	var hdr ckptHeader
	if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
		return false, 0, fmt.Errorf("bad header: %w", err)
	}
	if hdr.Version != CheckpointVersion || hdr.Fingerprint != fingerprint || hdr.ShardSize != shardSize {
		return false, 0, nil // different run identity: restart
	}
	off := int64(nl + 1)
	rest := raw[nl+1:]
	for len(rest) > 0 {
		nl = bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// Unterminated final line: an append died mid-write. The record
			// and its newline are written and synced as one unit, so a line
			// without a newline was never durably committed — even when the
			// fragment happens to parse as complete JSON (a tear exactly at
			// the closing brace). Applying such a fragment would also leave
			// the next append to concatenate onto it, corrupting the
			// journal for every later open. Keep everything before it and
			// let Open truncate the rest.
			return true, off, nil
		}
		line := rest[:nl]
		if len(line) > 0 {
			var l ckptLine
			if uerr := json.Unmarshal(line, &l); uerr != nil {
				return false, 0, fmt.Errorf("corrupt journal line: %w", uerr)
			}
			c.apply(&l)
		}
		off += int64(nl + 1)
		rest = rest[nl+1:]
	}
	return true, off, nil
}

func (c *Checkpoint) apply(l *ckptLine) {
	k := shardKey{l.Arch, l.Shard}
	e := c.shards[k]
	if e == nil {
		e = &ShardEntry{}
		c.shards[k] = e
	}
	switch l.Stage {
	case "meas":
		e.MeasDone = true
		e.Tp = l.Tp
		e.Status = l.Status
	case "pred":
		e.PredDone = true
		e.Preds = make(map[string][]float64, len(l.Preds))
		for name, vs := range l.Preds {
			fs := make([]float64, len(vs))
			for i, v := range vs {
				fs[i] = float64(v)
			}
			e.Preds[name] = fs
		}
	}
}

// Shard returns the persisted entry for one (µarch, shard index) cell.
func (c *Checkpoint) Shard(arch string, idx int) (ShardEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.shards[shardKey{arch, idx}]
	if !ok {
		return ShardEntry{}, false
	}
	return *e, true
}

// Shards returns the number of persisted (µarch, shard) cells.
func (c *Checkpoint) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shards)
}

// PutMeas persists one shard's measurements (synced per the group-commit
// policy).
func (c *Checkpoint) PutMeas(arch string, idx int, tp []float64, status []int) error {
	return c.append(&ckptLine{Arch: arch, Shard: idx, Stage: "meas", Tp: tp, Status: status})
}

// PutPreds persists one shard's per-model predictions (synced per the
// group-commit policy).
func (c *Checkpoint) PutPreds(arch string, idx int, preds map[string][]float64) error {
	l := &ckptLine{Arch: arch, Shard: idx, Stage: "pred",
		Preds: make(map[string][]nanFloat, len(preds))}
	for name, vs := range preds {
		ns := make([]nanFloat, len(vs))
		for i, v := range vs {
			ns[i] = nanFloat(v)
		}
		l.Preds[name] = ns
	}
	return c.append(l)
}

// SetGroupCommit makes the journal sync once per n appends instead of on
// every append (n <= 1 restores per-append durability). Each record and
// its newline are still written as one unit, so the torn-tail recovery
// contract is unchanged; what group commit trades away is durability of
// the lines written since the last sync — after a crash (not a clean
// Close, which always flushes) those shards are recomputed on resume.
func (c *Checkpoint) SetGroupCommit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groupEvery = n
}

func (c *Checkpoint) append(l *ckptLine) error {
	raw, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("checkpoint: %s: closed", c.path)
	}
	if _, err := c.f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	c.pending++
	if c.pending >= c.groupEvery || c.groupEvery <= 1 {
		if err := c.sync(); err != nil {
			return err
		}
	}
	c.apply(l)
	return nil
}

// sync flushes pending appends to stable storage. Callers hold c.mu.
func (c *Checkpoint) sync() error {
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	c.syncs++
	c.pending = 0
	return nil
}

// Flush syncs any appends the group-commit window is still holding. It is
// the durable boundary for graceful interrupts: after Flush returns, every
// persisted shard survives a crash.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil || c.pending == 0 {
		return nil
	}
	return c.sync()
}

// Close flushes the group-commit tail and releases the journal's append
// handle; after a clean Close every persisted shard is durable.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	var err error
	if c.pending > 0 {
		err = c.sync()
	}
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}

// runFingerprint derives the run identity a checkpoint is bound to:
// format version, seed, scale, model configuration, profiling options,
// profile-cache semantics version, and the full corpus content (app,
// frequency, machine code of every record). Any change misses — exactly
// the profcache key discipline, applied to whole runs.
func runFingerprint(cfg Config, recs []corpus.Record) string {
	h := sha256.New()
	fmt.Fprintf(h, "ckpt-v%d|seed=%d|scale=%g|ithemal=%v/%d/%d|opts=%s|profcache-v%d|prescreen=%v|n=%d\n",
		CheckpointVersion, cfg.Seed, cfg.Scale,
		cfg.TrainIthemal, cfg.IthemalEpochs, cfg.IthemalTrainCap,
		profiler.DefaultOptions().Fingerprint(), profcache.Version, cfg.Prescreen, len(recs))
	// Backend identity (cross-validation runs): a trace replay adopts the
	// fingerprint of the backend that produced it, so a replayed run
	// deliberately shares the originating run's checkpoints.
	for _, be := range cfg.Backends {
		fmt.Fprintf(h, "backend=%s\n", be.Fingerprint())
	}
	var buf []byte
	for i := range recs {
		fmt.Fprintf(h, "%s|%d|", recs[i].App, recs[i].Freq)
		buf = buf[:0]
		for j := range recs[i].Block.Insts {
			raw, err := memo.Encode(&recs[i].Block.Insts[j])
			if err == nil {
				buf = append(buf, raw...)
			}
		}
		h.Write(buf)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
