package harness

import (
	"strconv"
	"strings"
	"testing"

	"bhive/internal/uarch"
)

// testSuite is shared across tests: building measurements is the expensive
// part, so keep the scale small.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	return New(cfg)
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s lacks cell %d,%d", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func pct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad number %q", s)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	s := testSuite(t)
	tab := s.Table1()
	if len(tab.Rows) != 3 {
		t.Fatal("three ablation rows")
	}
	none, mapped, full := pct(t, cell(t, tab, 0, 1)), pct(t, cell(t, tab, 1, 1)), pct(t, cell(t, tab, 2, 1))
	if !(none < mapped && mapped < full) {
		t.Fatalf("ablation must be monotone: %v %v %v", none, mapped, full)
	}
	if none > 30 || mapped < 80 || full < 88 {
		t.Fatalf("rates off the paper's regime: %v %v %v", none, mapped, full)
	}
}

func TestTable2Shape(t *testing.T) {
	s := testSuite(t)
	tab := s.Table2()
	if len(tab.Rows) != 5 {
		t.Fatal("five optimization rows")
	}
	if cell(t, tab, 0, 1) != "Crashed" {
		t.Fatalf("row 1 must crash, got %q", cell(t, tab, 0, 1))
	}
	r2, r3, r4, r5 := num(t, cell(t, tab, 1, 1)), num(t, cell(t, tab, 2, 1)),
		num(t, cell(t, tab, 3, 1)), num(t, cell(t, tab, 4, 1))
	if !(r2 > r3 && r3 > r4 && r4 >= r5) {
		t.Fatalf("rows must decrease monotonically: %v %v %v %v", r2, r3, r4, r5)
	}
	if r3 < 8*r4 {
		t.Fatalf("gradual underflow must dominate row 3: %v vs %v", r3, r4)
	}
	// Row 2 has data-cache misses; row 3 does not.
	if num(t, cell(t, tab, 1, 2)) == 0 {
		t.Fatal("distinct physical pages must miss")
	}
	if num(t, cell(t, tab, 2, 2)) != 0 {
		t.Fatal("single physical page must not miss")
	}
	// Row 4 (naive 100x unroll) overflows the I-cache; row 5 does not.
	if num(t, cell(t, tab, 3, 3)) == 0 {
		t.Fatal("naive unroll of the big block must miss in L1I")
	}
	if num(t, cell(t, tab, 4, 3)) != 0 {
		t.Fatal("derived method must avoid I-cache misses")
	}
}

func TestTable3Counts(t *testing.T) {
	s := testSuite(t)
	tab := s.Table3()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "Total" || last[2] != "358561" {
		t.Fatalf("full-scale total: %v", last)
	}
}

func TestTable4AndExamples(t *testing.T) {
	s := testSuite(t)
	tab := s.Table4()
	if len(tab.Rows) != 6 {
		t.Fatal("six categories")
	}
	// Category-2 (purely vector) must be among the smallest.
	c2 := num(t, cell(t, tab, 1, 2))
	c6 := num(t, cell(t, tab, 5, 2))
	if c2 >= c6 {
		t.Fatalf("category-2 (%v) should be rarer than category-6 (%v)", c2, c6)
	}
	out := s.FigExamples()
	if !strings.Contains(out, "Category-2") {
		t.Fatal("examples figure must cover category 2")
	}
}

func TestTable5Shape(t *testing.T) {
	s := testSuite(t)
	tab, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 3 µarch x 4 analytical models
		t.Fatalf("12 rows, got %d", len(tab.Rows))
	}
	get := func(cpu, model string) float64 {
		for _, row := range tab.Rows {
			if row[0] == cpu && row[1] == model {
				return num(t, row[2])
			}
		}
		t.Fatalf("missing %s/%s", cpu, model)
		return 0
	}
	for _, cpu := range []string{"ivybridge", "haswell", "skylake"} {
		iaca, mca, osaca := get(cpu, "IACA"), get(cpu, "llvm-mca"), get(cpu, "OSACA")
		if !(iaca < osaca && mca < osaca) {
			t.Errorf("%s: OSACA must be worst (%v %v %v)", cpu, iaca, mca, osaca)
		}
		if iaca > 0.25 || mca > 0.30 {
			t.Errorf("%s: analytical errors out of the paper's range (%v %v)", cpu, iaca, mca)
		}
	}
	// llvm-mca degrades on Skylake relative to Haswell (the stale model).
	if get("skylake", "llvm-mca") <= get("haswell", "llvm-mca") {
		t.Error("llvm-mca should be worse on Skylake")
	}
}

func TestCaseStudyShape(t *testing.T) {
	s := testSuite(t)
	tab, err := s.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatal("three case-study blocks")
	}
	// div block: measured ~21.6; IACA and llvm-mca vastly overpredict;
	// OSACA underpredicts.
	meas := num(t, cell(t, tab, 0, 1))
	iaca := num(t, cell(t, tab, 0, 2))
	mca := num(t, cell(t, tab, 0, 3))
	osaca := num(t, cell(t, tab, 0, 4))
	if meas < 18 || meas > 26 {
		t.Errorf("div measured %v (paper 21.62)", meas)
	}
	if iaca < 3*meas || mca < 3*meas {
		t.Errorf("div overprediction missing: %v %v vs %v", iaca, mca, meas)
	}
	if osaca >= meas {
		t.Errorf("OSACA should underpredict div: %v vs %v", osaca, meas)
	}
	// vxorps: measured ~0.25, IACA right, llvm-mca and OSACA ~1.0.
	if v := num(t, cell(t, tab, 1, 1)); v < 0.2 || v > 0.35 {
		t.Errorf("vxorps measured %v", v)
	}
	if v := num(t, cell(t, tab, 1, 3)); v < 0.9 {
		t.Errorf("llvm-mca must miss the zero idiom: %v", v)
	}
	// CRC: llvm-mca overpredicts, IACA close, OSACA fails ("-").
	if cell(t, tab, 2, 4) != "-" {
		t.Errorf("OSACA must fail on the CRC block, got %q", cell(t, tab, 2, 4))
	}
	crcMeas := num(t, cell(t, tab, 2, 1))
	crcMCA := num(t, cell(t, tab, 2, 3))
	if crcMCA <= crcMeas {
		t.Errorf("llvm-mca must overpredict the CRC block: %v vs %v", crcMCA, crcMeas)
	}
}

func TestFigScheduling(t *testing.T) {
	s := testSuite(t)
	out, err := s.FigScheduling()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "llvm-mca") || !strings.Contains(out, "IACA") {
		t.Fatal("both schedules must render")
	}
	if !strings.Contains(out, "load") {
		t.Fatal("schedules must show load µops")
	}
}

func TestFigAppsVsClusters(t *testing.T) {
	s := testSuite(t)
	tab := s.FigAppsVsClusters()
	if len(tab.Rows) != 10 {
		t.Fatalf("ten applications, got %d", len(tab.Rows))
	}
	// Every row sums to ~100%.
	for _, row := range tab.Rows {
		var sum float64
		for _, cellv := range row[1:] {
			sum += num(t, cellv)
		}
		if sum < 99 || sum > 101 {
			t.Fatalf("%s: percentages sum to %v", row[0], sum)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	s := testSuite(t)
	for _, id := range []string{"table3", "fig-examples"} {
		out, err := s.Run(id, "")
		if err != nil || out == "" {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if _, err := s.Run("nope", ""); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if _, err := s.Run("fig-app-err", "bogus"); err == nil {
		t.Fatal("unknown uarch must error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "hello,world"}}}
	if !strings.Contains(tab.Render(), "hello") {
		t.Fatal("render")
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"hello,world"`) {
		t.Fatalf("csv escaping: %q", csv)
	}
}

func TestFigClusterErrVectorizedHard(t *testing.T) {
	if testing.Short() {
		t.Skip("full per-cluster sweep")
	}
	s := testSuite(t)
	tab, err := s.FigClusterErr(uarch.Haswell())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatal("six categories")
	}
}

func TestTable6AndGoogleBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("google corpora sweep")
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.001
	s := New(cfg)

	tab, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 2 apps x 3 analytical models (no Ithemal, no OSACA)
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		avg, tau := num(t, row[2]), num(t, row[4])
		if avg <= 0 || avg > 0.6 {
			t.Errorf("%s/%s: avg error %v", row[0], row[1], avg)
		}
		if tau < 0.4 {
			t.Errorf("%s/%s: tau %v too low (paper ~0.77)", row[0], row[1], tau)
		}
	}

	fig, err := s.FigGoogleBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatal("two applications")
	}
	// Load-dominated: categories 3+6 carry most of the runtime weight.
	for _, row := range fig.Rows {
		loadShare := num(t, row[3]) + num(t, row[6])
		if loadShare < 35 {
			t.Errorf("%s: load-dominated share %.1f%% too low", row[0], loadShare)
		}
	}
}

func TestBoundCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.001
	s := New(cfg)

	hsw := uarch.Haswell()
	tables, err := s.BoundCheck([]*uarch.CPU{hsw})
	if err != nil {
		t.Fatal(err)
	}
	// Zero violations expected, so only the summary table is present.
	if len(tables) != 1 || tables[0].ID != "boundcheck" {
		t.Fatalf("expected the summary table alone, got %d tables", len(tables))
	}
	tab := tables[0]
	if len(tab.Rows) != 1 {
		t.Fatalf("one row per µarch, got %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	if row[0] != "haswell" {
		t.Fatalf("row for %q", row[0])
	}
	blocks, checked := num(t, row[1]), num(t, row[2])
	if checked < 50 || checked > blocks {
		t.Fatalf("checked %v of %v blocks", checked, blocks)
	}
	// The verdict histogram partitions the checked blocks.
	dep, port, fe := num(t, row[4]), num(t, row[5]), num(t, row[6])
	if dep+port+fe != checked {
		t.Fatalf("verdicts %v+%v+%v != checked %v", dep, port, fe, checked)
	}
	if v := num(t, row[7]); v != 0 {
		t.Fatalf("%v bound violations on the generated corpus", v)
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "total violations: 0") {
		t.Fatalf("summary notes must carry the smoke-greppable total: %v", tab.Notes)
	}

	// The crosscheck is reachable through the structured runner.
	res, err := s.RunStructured(BoundCheckID, "haswell")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || !strings.Contains(res.Text, "boundcheck") {
		t.Fatal("RunStructured must render the boundcheck tables")
	}
}

func TestFigLenErr(t *testing.T) {
	s := testSuite(t)
	tab, err := s.FigLenErr(uarch.Haswell())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d buckets", len(tab.Rows))
	}
	total := 0.0
	for _, row := range tab.Rows {
		total += num(t, row[1])
	}
	if total < 500 {
		t.Fatalf("buckets cover too few blocks: %v", total)
	}
}
