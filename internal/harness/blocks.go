package harness

import (
	"fmt"

	"bhive/internal/x86"
)

// The three case-study blocks of the paper (Haswell).

// CRCBlockText is the Gzip updcrc inner loop (the motivating example and
// the mis-scheduling case study; measured 8.25 in the paper).
const CRCBlockText = `add $1, %rdi
mov %edx, %eax
shr $8, %rdx
xorb -1(%rdi), %al
movzbl %al, %eax
xor 0x4110a(, %rax, 8), %rdx
cmp %rcx, %rdi`

// DivBlockText is the unsigned-division case study (measured 21.62).
const DivBlockText = `xor %edx, %edx
div %ecx
test %edx, %edx`

// ZeroIdiomBlockText is the vectorized-XOR zero idiom (measured 0.25).
const ZeroIdiomBlockText = `vxorps %xmm2, %xmm2, %xmm2`

// CaseStudyBlocks parses the three blocks.
func CaseStudyBlocks() ([]*x86.Block, []string, error) {
	texts := []string{DivBlockText, ZeroIdiomBlockText, CRCBlockText}
	names := []string{"div (32-bit unsigned division)", "vxorps (zero idiom)", "gzip crc (memory dependence)"}
	out := make([]*x86.Block, len(texts))
	for i, t := range texts {
		b, err := x86.ParseBlock(t, x86.SyntaxATT)
		if err != nil {
			return nil, nil, fmt.Errorf("case-study block %d: %w", i, err)
		}
		out[i] = b
	}
	return out, names, nil
}

// SampleTFBlock builds the Table-II sample block: a large (> 330-byte)
// vectorized inner-loop body in the style of TensorFlow's CNN training
// kernels. It is designed to hit every measurement hazard in sequence:
//
//   - it loads from eleven distinct virtual pages at the same page offset,
//     so per-page physical frames overflow the 8-way L1 set (data-cache
//     misses unless everything maps to one physical page);
//   - its multiplier constant drives the loaded values into the subnormal
//     range, so FP math takes the gradual-underflow assist unless MXCSR
//     FTZ/DAZ is set;
//   - its encoded size makes a naive 100x unroll overflow the 32KB L1
//     instruction cache, which only the derived-throughput method avoids.
func SampleTFBlock() *x86.Block {
	var insts []x86.Inst

	// Materialize the scaling constant ~1e-12f: pattern * 1e-12 is
	// subnormal but not zero.
	insts = append(insts,
		x86.NewInst(x86.MOV, x86.RegOp(x86.EAX), x86.ImmOp(0x2B8CBCCC)),
		x86.NewInst(x86.MOVD, x86.RegOp(x86.X15), x86.RegOp(x86.EAX)),
	)

	// Eleven page-strided loads (page offset identical in each page).
	for k := 0; k < 11; k++ {
		insts = append(insts, x86.NewInst(x86.MOVUPS,
			x86.RegOp(x86.VecReg(k%8, 16)),
			x86.MemOp(x86.Mem{Base: x86.RBX, Disp: int32(k * 0x1000), Size: 16})))
		insts = append(insts, x86.NewInst(x86.MULPS,
			x86.RegOp(x86.VecReg(k%8, 16)), x86.RegOp(x86.X15)))
		insts = append(insts, x86.NewInst(x86.ADDPS,
			x86.RegOp(x86.X8), x86.RegOp(x86.VecReg(k%8, 16))))
	}

	// Vector arithmetic padding to push the encoded size past 330 bytes.
	for k := 0; k < 30; k++ {
		insts = append(insts, x86.NewInst(x86.VFMADD231PS,
			x86.RegOp(x86.VecReg(8+k%4, 32)),
			x86.RegOp(x86.VecReg(12, 32)),
			x86.RegOp(x86.VecReg(13, 32))))
		insts = append(insts, x86.NewInst(x86.ADD, x86.RegOp(x86.RSI), x86.ImmOp(4)))
	}
	insts = append(insts, x86.NewInst(x86.MOVUPS,
		x86.MemOp(x86.Mem{Base: x86.RDI, Disp: 0x40, Size: 16}), x86.RegOp(x86.X8)))

	return &x86.Block{Insts: insts}
}
