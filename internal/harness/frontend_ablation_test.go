package harness

import (
	"math"
	"os"
	"strings"
	"testing"

	"bhive/internal/corpus"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// ablationFixture loads a per-category subsample of the lint fixture
// corpus: up to perApp blocks of each application, skipping the
// deliberately pathological rows.
func ablationFixture(t *testing.T, perApp int) []corpus.Record {
	t.Helper()
	f, err := os.Open("../blocklint/testdata/example_corpus.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := corpus.ReadCSVRaw(f)
	if err != nil {
		t.Fatal(err)
	}
	taken := map[string]int{}
	var out []corpus.Record
	for _, row := range rows {
		if strings.HasPrefix(row.App, "pathological") || taken[row.App] >= perApp {
			continue
		}
		block, err := x86.BlockFromHex(row.Hex)
		if err != nil {
			continue // undecodable fixture rows are lint-only material
		}
		taken[row.App]++
		out = append(out, corpus.Record{App: row.App, Block: block, Freq: row.Freq})
	}
	if len(out) == 0 {
		t.Fatal("empty ablation fixture")
	}
	return out
}

// TestModeledFrontEndAblation profiles a per-category fixture sample with
// the front-end model switched on and off, on Skylake and Ice Lake. The
// modeled front end must (a) be deterministic, (b) produce a measurable
// per-category throughput shift — if flipping the switch moved nothing,
// the stage would be dead code — and (c) never speed a block up beyond
// what dropping the 16-byte fetch limit allows while leaving the back end
// untouched: modeled throughput stays positive and finite everywhere.
func TestModeledFrontEndAblation(t *testing.T) {
	recs := ablationFixture(t, 6)
	for _, cpu := range []*uarch.CPU{uarch.Skylake(), uarch.IceLake()} {
		legacyOpts := profiler.DefaultOptions()
		modeledOpts := profiler.DefaultOptions()
		modeledOpts.ModeledFrontEnd = true
		legacy := profiler.New(cpu, legacyOpts)
		modeled := profiler.New(cpu, modeledOpts)
		modeled2 := profiler.New(cpu, modeledOpts)

		type shift struct {
			blocks  int
			changed int
			rel     float64 // summed |modeled-legacy|/legacy over OK blocks
		}
		perApp := map[string]*shift{}
		for _, r := range recs {
			lr := legacy.Profile(r.Block)
			mr := modeled.Profile(r.Block)
			m2 := modeled2.Profile(r.Block)
			if mr.Throughput != m2.Throughput || mr.Status != m2.Status {
				t.Fatalf("%s/%s: modeled profiling is not deterministic: %v vs %v",
					cpu.Name, r.App, mr, m2)
			}
			if lr.Status != profiler.StatusOK || mr.Status != profiler.StatusOK {
				continue
			}
			if mr.Throughput <= 0 || math.IsNaN(mr.Throughput) || math.IsInf(mr.Throughput, 0) {
				t.Fatalf("%s/%s: modeled throughput %v", cpu.Name, r.App, mr.Throughput)
			}
			s := perApp[r.App]
			if s == nil {
				s = &shift{}
				perApp[r.App] = s
			}
			s.blocks++
			if mr.Throughput != lr.Throughput {
				s.changed++
			}
			s.rel += math.Abs(mr.Throughput-lr.Throughput) / lr.Throughput
		}

		shifted, total := 0, 0
		for app, s := range perApp {
			total += s.blocks
			mean := s.rel / float64(s.blocks)
			t.Logf("%s/%s: %d/%d blocks shifted, mean relative shift %.3f%%",
				cpu.Name, app, s.changed, s.blocks, 100*mean)
			if s.changed > 0 {
				shifted++
			}
		}
		if total == 0 {
			t.Fatalf("%s: no OK blocks in the ablation fixture", cpu.Name)
		}
		if shifted == 0 {
			t.Errorf("%s: enabling the modeled front end shifted no category at all", cpu.Name)
		}
	}
}
