package harness

import (
	"fmt"
	"sync"

	"bhive/internal/bound"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
)

// BoundCheckID is the experiment id of the sim-vs-bounds crosscheck. Like
// XValID it is not part of Names() — "all" regenerates the paper's tables,
// and the crosscheck is a validation harness, not a paper artifact — but
// RunStructured accepts it, AllNames advertises it, and the evaluation
// server schedules it as a job experiment.
const BoundCheckID = "boundcheck"

// boundEps absorbs float rounding in lower*n comparisons against integer
// cycle counters; the bounds themselves carry no tolerance.
const boundEps = 1e-6

// maxViolationRows caps the violation table; the expected count is zero,
// so a cap only matters when something is badly broken.
const maxViolationRows = 50

// BoundCheck runs the simulator over the corpus and asserts, per (block,
// µarch), that the measured total cycle count lies inside the static
// bounds: lower·n ≤ cycles(n) ≤ upper·n at the measured unroll factor n.
// The check is on totals, not marginal throughput, because that is where
// the bounds are sound: the marginal estimate (C_hi−C_lo)/(hi−lo) can dip
// a fraction of a cycle below the asymptotic rate when the low-factor run
// carries transient wobble, without any simulator bug. A violation here is
// a simulator or bound-analysis bug by construction.
func (s *Suite) BoundCheck(cpus []*uarch.CPU) ([]*Table, error) {
	summary := &Table{
		ID:    "boundcheck",
		Title: "Static bounds vs simulator (lower*n <= cycles <= upper*n at measured unroll n)",
		Header: []string{"Microarchitecture", "Blocks", "Checked", "Vacuous",
			"DepChain", "Port", "FrontEnd", "Violations"},
	}
	viol := &Table{
		ID:    "boundcheck-violations",
		Title: "Bound violations (each row is a simulator or bound-analysis bug)",
		Header: []string{"Microarchitecture", "Block", "Unroll", "Cycles",
			"Lower*n", "Upper*n", "Verdict"},
	}

	total := 0
	for _, cpu := range cpus {
		results := s.profileResults(cpu)
		checked, vacuous, violations := 0, 0, 0
		var verdicts [3]int
		for i := range s.recs {
			r := &results[i]
			if r.Status != profiler.StatusOK || r.Throughput <= 0 ||
				r.Counters.Cycles == 0 || r.UnrollHi <= 0 {
				continue
			}
			bs, err := bound.Analyze(cpu, s.recs[i].Block)
			if err != nil {
				// Describable by the simulator but not the analyzer would be
				// a wiring bug; both share memo.Describe, so an OK profile
				// implies analyzability.
				return nil, fmt.Errorf("boundcheck: %s: %w", cpu.Name, err)
			}
			checked++
			if bs.Vacuous {
				vacuous++
			}
			verdicts[bs.Verdict]++
			n := float64(r.UnrollHi)
			c := float64(r.Counters.Cycles)
			low, high := c < bs.Lower*n-boundEps, c > bs.Upper*n+boundEps
			if !low && !high {
				continue
			}
			violations++
			if len(viol.Rows) < maxViolationRows {
				hexStr, _ := s.recs[i].Block.Hex()
				viol.Rows = append(viol.Rows, []string{
					cpu.Name, hexStr,
					fmt.Sprintf("%d", r.UnrollHi),
					fmt.Sprintf("%.0f", c),
					fmt.Sprintf("%.2f", bs.Lower*n),
					fmt.Sprintf("%.2f", bs.Upper*n),
					bs.VerdictString(),
				})
			}
		}
		total += violations
		summary.Rows = append(summary.Rows, []string{
			cpu.Name,
			fmt.Sprintf("%d", len(s.recs)),
			fmt.Sprintf("%d", checked),
			fmt.Sprintf("%d", vacuous),
			fmt.Sprintf("%d", verdicts[bound.VerdictDepChain]),
			fmt.Sprintf("%d", verdicts[bound.VerdictPort]),
			fmt.Sprintf("%d", verdicts[bound.VerdictFrontEnd]),
			fmt.Sprintf("%d", violations),
		})
	}
	summary.Notes = append(summary.Notes,
		fmt.Sprintf("total violations: %d", total),
		"checked = status-ok blocks; vacuous = bounds over generic fallback descriptors (BL015)",
	)
	tables := []*Table{summary}
	if len(viol.Rows) > 0 {
		tables = append(tables, viol)
	}
	return tables, nil
}

// profileResults profiles the whole corpus keeping full results (the
// model-evaluation path keeps only throughput+status, but the bound check
// needs the cycle counters and unroll factors; the profile cache makes
// the second pass cheap when both run).
func (s *Suite) profileResults(cpu *uarch.CPU) []profiler.Result {
	out := make([]profiler.Result, len(s.recs))
	var wg sync.WaitGroup
	ch := make(chan int, len(s.recs))
	for i := range s.recs {
		ch <- i
	}
	close(ch)
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := profiler.New(cpu, profiler.DefaultOptions())
			p.Cache = s.cfg.ProfileCache
			p.Metrics = s.cfg.Metrics
			for i := range ch {
				out[i] = p.Profile(s.recs[i].Block)
				s.profileCalls.Add(1)
			}
		}()
	}
	wg.Wait()
	return out
}
