package harness

import (
	"path/filepath"
	"testing"

	"bhive/internal/stats"
	"bhive/internal/uarch"
)

// TestComputeShardFillReplaysByteIdentically is the core distributed-
// evaluation property: a checkpoint journal filled entirely from
// ComputeShard payloads (the worker pipeline) must replay into exactly
// the tables an uninterrupted local run produces — byte-identical text,
// zero local profiling.
func TestComputeShardFillReplaysByteIdentically(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	cfg.ShardSize = 64
	cfg.Workers = 4

	// Reference: plain local run.
	ref, err := New(cfg).Run("table5", "")
	if err != nil {
		t.Fatal(err)
	}

	// "Worker": compute every shard through the exported shard API.
	worker := New(cfg)
	fp := worker.Fingerprint()
	path := filepath.Join(t.TempDir(), "filled.ckpt")
	ck, err := OpenCheckpoint(path, fp, cfg.ShardSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, cpu := range uarch.All() {
		names, err := worker.ModelNames(cpu.Name)
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < worker.NumCorpusShards(); si++ {
			p, err := worker.ComputeShard(cpu.Name, si)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := worker.ShardRange(si)
			if len(p.Tp) != hi-lo || len(p.Status) != hi-lo {
				t.Fatalf("shard %d payload covers %d records, want %d", si, len(p.Tp), hi-lo)
			}
			for _, name := range names {
				if len(p.Preds[name]) != hi-lo {
					t.Fatalf("shard %d missing model %s predictions", si, name)
				}
			}
			if err := ck.PutMeas(cpu.Name, si, p.Tp, p.Status); err != nil {
				t.Fatal(err)
			}
			if err := ck.PutPreds(cpu.Name, si, p.Preds); err != nil {
				t.Fatal(err)
			}
			// The journaled entry must pass the same completeness check the
			// coordinator applies before skipping a shard.
			e, ok := ck.Shard(cpu.Name, si)
			if !ok || !ShardComplete(e, names, hi-lo) {
				t.Fatalf("shard %d not complete after fill", si)
			}
		}
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// "Coordinator": replay the filled journal; no local profiling allowed.
	cfg.CheckpointPath = path
	replay := New(cfg)
	if got, want := replay.Fingerprint(), fp; got != want {
		t.Fatalf("fingerprint drift across suites: %s vs %s", got, want)
	}
	out, err := replay.Run("table5", "")
	if err != nil {
		t.Fatal(err)
	}
	if out != ref {
		t.Fatalf("filled-journal replay diverged from the local run.\n--- replay ---\n%s\n--- local ---\n%s", out, ref)
	}
	if n := replay.profileCalls.Load(); n != 0 {
		t.Fatalf("replay profiled %d blocks locally, want 0 (all shards filled)", n)
	}
}

// TestComputeShardAggregatesMatchLocal: the shard payload's partial
// aggregates, merged across all shards, must agree with the aggregates
// the local pipeline streams (tau bit-identically; means to float
// rounding — the coordinator uses these for live status and cross-checks,
// not for the final tables).
func TestComputeShardAggregatesMatchLocal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	cfg.ShardSize = 64
	cfg.Workers = 4

	local := New(cfg)
	hsw := uarch.Haswell()
	d, err := local.data(hsw)
	if err != nil {
		t.Fatal(err)
	}

	worker := New(cfg)
	merged := map[string]*stats.Running{}
	mergedTau := map[string]*stats.TauAcc{}
	for si := 0; si < worker.NumCorpusShards(); si++ {
		p, err := worker.ComputeShard(hsw.Name, si)
		if err != nil {
			t.Fatal(err)
		}
		for name, agg := range p.Overall {
			if merged[name] == nil {
				merged[name] = new(stats.Running)
				mergedTau[name] = new(stats.TauAcc)
			}
			merged[name].Merge(agg)
			mergedTau[name].Merge(p.Tau[name])
		}
	}
	for _, name := range d.names {
		if merged[name] == nil {
			t.Fatalf("no merged aggregate for model %s", name)
		}
		if got, want := merged[name].N(), d.overall[name].N(); got != want {
			t.Fatalf("%s: merged N=%d, local N=%d", name, got, want)
		}
		gm, wm := merged[name].Mean(), d.overall[name].Mean()
		if diff := gm - wm; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("%s: merged mean %v, local %v", name, gm, wm)
		}
		if got, want := mergedTau[name].Value(), d.tau[name].Value(); got != want {
			t.Fatalf("%s: merged tau %v, local %v", name, got, want)
		}
	}
}

func TestComputeShardValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	s := New(cfg)
	if _, err := s.ComputeShard("zen4", 0); err == nil {
		t.Fatal("unknown microarchitecture accepted")
	}
	if _, err := s.ComputeShard("haswell", -1); err == nil {
		t.Fatal("negative shard accepted")
	}
	if _, err := s.ComputeShard("haswell", s.NumCorpusShards()); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	iCfg := cfg
	iCfg.TrainIthemal = true
	if _, err := New(iCfg).ComputeShard("haswell", 0); err == nil {
		t.Fatal("TrainIthemal configuration must not be distributable")
	}
}

func TestNeedsCorpusData(t *testing.T) {
	for _, id := range []string{"table5", "fig-app-err", "fig-cluster-err", "fig-length-err", "all"} {
		if !NeedsCorpusData(id) {
			t.Errorf("%s should need corpus data", id)
		}
	}
	for _, id := range []string{"table1", "table2", "table3", "table4", "table6", "case-study", "fig-scheduling", XValID} {
		if NeedsCorpusData(id) {
			t.Errorf("%s should not need corpus data", id)
		}
	}
}
