package portmap

import (
	"math"
	"testing"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func tmpl(t *testing.T, text string) x86.Inst {
	t.Helper()
	in, err := x86.ParseInst(text, x86.SyntaxIntel)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestMeasureLatencyKnownValues(t *testing.T) {
	hsw := uarch.Haswell()
	cases := []struct {
		text string
		want float64
	}{
		{"add rax, rbx", 1},
		{"imul rax, rbx", 3},
		{"addss xmm0, xmm1", 3}, // Haswell FP add
		{"mulps xmm0, xmm1", 5}, // Haswell FP mul
		{"shl rax, 3", 1},
		{"pshufd xmm0, xmm1, 0x1b", 1},
	}
	for _, c := range cases {
		got, err := MeasureLatency(hsw, tmpl(t, c.text))
		if err != nil {
			t.Fatalf("%s: %v", c.text, err)
		}
		if math.Abs(got-c.want) > 0.35 {
			t.Errorf("%s: measured latency %.2f, want ~%.0f", c.text, got, c.want)
		}
	}
}

func TestMeasureLatencySkylakeDiffers(t *testing.T) {
	// FP add: 3 cycles on Haswell, 4 on Skylake — the measured tables must
	// reflect the microarchitecture.
	in := tmpl(t, "addss xmm0, xmm1")
	hsw, err := MeasureLatency(uarch.Haswell(), in)
	if err != nil {
		t.Fatal(err)
	}
	skl, err := MeasureLatency(uarch.Skylake(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !(hsw < skl) {
		t.Fatalf("hsw %.2f, skl %.2f", hsw, skl)
	}
}

func TestMeasureThroughputKnownValues(t *testing.T) {
	hsw := uarch.Haswell()
	cases := []struct {
		text    string
		atMost  float64
		atLeast float64
	}{
		{"add rax, rbx", 0.5, 0.2},     // 4 ALU ports, 4-wide front end
		{"imul rax, rbx", 1.3, 0.8},    // single multiplier port
		{"mulps xmm0, xmm1", 0.8, 0.4}, // two FP multiply ports
		{"addss xmm0, xmm1", 1.3, 0.8}, // one FP adder on Haswell
	}
	for _, c := range cases {
		got, err := MeasureThroughput(hsw, tmpl(t, c.text))
		if err != nil {
			t.Fatalf("%s: %v", c.text, err)
		}
		if got > c.atMost || got < c.atLeast {
			t.Errorf("%s: rthroughput %.2f outside [%.2f, %.2f]", c.text, got, c.atLeast, c.atMost)
		}
	}
}

func TestLatencyExceedsThroughput(t *testing.T) {
	// For any pipelined instruction, chain latency >= reciprocal
	// throughput.
	hsw := uarch.Haswell()
	for _, in := range DefaultTemplates() {
		lat, err := MeasureLatency(hsw, in)
		if err != nil {
			t.Fatalf("%s: %v", in.String(), err)
		}
		tp, err := MeasureThroughput(hsw, in)
		if err != nil {
			t.Fatalf("%s: %v", in.String(), err)
		}
		if lat+0.2 < tp {
			t.Errorf("%s: latency %.2f < rthroughput %.2f", in.String(), lat, tp)
		}
	}
}

func TestLatencyChainShapes(t *testing.T) {
	// RMW destination: chain through the destination register.
	chain, err := LatencyChain(tmpl(t, "shl rax, 3"), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chain {
		if chain[i].Args[0].Reg != x86.RAX {
			t.Fatal("RMW chain must reuse the destination")
		}
	}
	// Write-only destination: alternate and wire the source.
	chain, err = LatencyChain(tmpl(t, "sqrtss xmm0, xmm1"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if chain[0].Args[0].Reg == chain[1].Args[0].Reg {
		t.Fatal("write-only chain must alternate destinations")
	}
	if chain[1].Args[1].Reg != chain[0].Args[0].Reg {
		t.Fatal("each link must consume the previous destination")
	}
	// Zero-idiom shapes must not appear: xor chain keeps distinct regs.
	chain, err = LatencyChain(tmpl(t, "xor rax, rax"), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chain {
		if chain[i].Args[0].Reg == chain[i].Args[1].Reg {
			t.Fatal("chain must avoid zero idioms")
		}
	}
}

func TestBuildTable(t *testing.T) {
	entries, err := BuildTable(uarch.Haswell(), DefaultTemplates()[:6])
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("%d entries", len(entries))
	}
	for _, e := range entries {
		if e.Latency <= 0 || e.RThroughput <= 0 || e.Ports == 0 {
			t.Errorf("%s: incomplete entry %+v", e.Inst, e)
		}
	}
}

func TestAllTemplatesCoverTheISA(t *testing.T) {
	templates := AllTemplates()
	if len(templates) < 120 {
		t.Fatalf("expected broad ISA coverage, got %d templates", len(templates))
	}
	// Every template must be measurable end to end on Haswell (throughput
	// only; latency chains need a register source, which pure-write ops
	// like set/cmov-from-flags may lack).
	hsw := uarch.Haswell()
	for _, tm := range templates[:40] {
		if _, err := MeasureThroughput(hsw, tm); err != nil {
			t.Errorf("%s: %v", tm.String(), err)
		}
	}
}
