// Package portmap reimplements the measurement-based methodology of Abel
// and Reineke that the paper's classification relies on: it rediscovers an
// instruction's execution-port combination by running automatically
// generated saturating micro-benchmarks on the simulated machine and
// reading the per-port micro-op performance counters.
//
// Like llvm-exegesis (which the paper also discusses), the generator is
// limited to instructions whose micro-benchmark can be built from
// register-only independent streams; the inferred mapping is validated
// against the parameter tables in internal/uarch.
package portmap

import (
	"fmt"

	"bhive/internal/exec"
	"bhive/internal/machine"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// scratch destination registers used to build independent streams.
var gpDst = []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.R8, x86.R9, x86.R10, x86.R11, x86.R15}
var vecDst = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

// Microbenchmark builds a saturating instruction stream for the given
// instruction template: n copies with rotated destination registers so the
// streams are independent and spill across every allowed port.
func Microbenchmark(template x86.Inst, n int) ([]x86.Inst, error) {
	if len(template.Args) == 0 || template.Args[0].Kind != x86.KindReg {
		return nil, fmt.Errorf("portmap: template needs a register destination")
	}
	out := make([]x86.Inst, 0, n)
	for i := 0; i < n; i++ {
		in := template
		in.Args = append([]x86.Operand(nil), template.Args...)
		dst := template.Args[0].Reg
		switch {
		case dst.IsGP():
			in.Args[0] = x86.RegOp(x86.GPReg(gpDst[i%len(gpDst)].Num(), dst.Size()))
		case dst.IsVec():
			in.Args[0] = x86.RegOp(x86.VecReg(vecDst[i%len(vecDst)], dst.Size()))
		default:
			return nil, fmt.Errorf("portmap: unsupported destination %v", dst)
		}
		// Keep sources out of the destination pool: a source that aliases
		// a rotated destination would serialize every stream through that
		// one chain.
		for k := 1; k < len(in.Args); k++ {
			if in.Args[k].Kind != x86.KindReg {
				continue
			}
			r := in.Args[k].Reg
			switch {
			case r.IsVec() && r.Num() <= 11:
				in.Args[k] = x86.RegOp(x86.VecReg(13, r.Size()))
			case r.IsGP():
				for _, d := range gpDst {
					if r.Base64() == d {
						in.Args[k] = x86.RegOp(x86.GPReg(x86.RBX.Num(), r.Size()))
						break
					}
				}
			}
		}
		if _, err := x86.Encode(in); err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// Result is one inferred mapping.
type Result struct {
	Ports   uarch.PortSet
	UopsPer float64 // micro-ops per instruction
	PerPort [16]uint64
}

// Infer measures the port combination of a register-only instruction on
// the given microarchitecture.
func Infer(cpu *uarch.CPU, template x86.Inst) (Result, error) {
	const streams = 16
	const unroll = 24

	bench, err := Microbenchmark(template, streams)
	if err != nil {
		return Result{}, err
	}
	var insts []x86.Inst
	for i := 0; i < unroll; i++ {
		insts = append(insts, bench...)
	}

	m := machine.New(cpu, 99)
	prog, err := m.Prepare(insts)
	if err != nil {
		return Result{}, err
	}
	st := &exec.State{FTZ: true, DAZ: true}
	st.InitRegisters(0x12345600)
	steps, err := m.Execute(prog, st)
	if err != nil {
		return Result{}, err
	}
	m.Time(prog, steps, machine.Config{}) // warm-up
	st2 := &exec.State{FTZ: true, DAZ: true}
	st2.InitRegisters(0x12345600)
	steps, err = m.Execute(prog, st2)
	if err != nil {
		return Result{}, err
	}
	ctr := m.Time(prog, steps, machine.Config{})

	var total uint64
	for _, c := range ctr.PortUops {
		total += c
	}
	if total == 0 {
		return Result{}, fmt.Errorf("portmap: no micro-ops issued")
	}
	var ports uarch.PortSet
	threshold := total / 50 // 2% of issued µops
	if threshold == 0 {
		threshold = 1
	}
	for p, c := range ctr.PortUops {
		if c > threshold {
			ports |= uarch.Ports(p)
		}
	}
	return Result{
		Ports:   ports,
		UopsPer: float64(ctr.Uops) / float64(len(insts)),
		PerPort: ctr.PortUops,
	}, nil
}
