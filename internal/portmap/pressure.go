package portmap

import "bhive/internal/uarch"

// SubsetPressure computes the pessimistic-assignment execution-port lower
// bound from a port-time profile: load maps each allowed-port combination
// to the total port cycles of the µops bound to it (for the reference
// simulator, one cycle per pipelined µop, the occupancy for non-pipelined
// ones).
//
// For any subset S of ports, every µop whose allowed combination is
// contained in S must execute inside S, and each port serves at most one
// µop-cycle per cycle, so any schedule needs at least
//
//	cost(S) / |S|  cycles, where  cost(S) = Σ load[m] over m ⊆ S.
//
// The returned value is the maximum of that ratio over all subsets of the
// ports that appear in load, together with the subset attaining it. No LP
// is solved: the bound is the LP dual evaluated at the laziest feasible
// points, yet for fractional assignment it is exact (a deficiency form of
// Hall's theorem), which is what makes it usable as a *provable* bound
// rather than a heuristic. Subsets are enumerated over the union of the
// appearing combinations only, so the cost is at most 2^ports-in-use.
func SubsetPressure(load map[uarch.PortSet]float64) (float64, uarch.PortSet) {
	var union uarch.PortSet
	for m, v := range load {
		if v > 0 && m != 0 {
			union |= m
		}
	}
	if union == 0 {
		return 0, 0
	}
	best, bestSet := 0.0, uarch.PortSet(0)
	// Enumerate every non-empty subset of union (standard submask walk).
	for s := union; s != 0; s = (s - 1) & union {
		cost := 0.0
		for m, v := range load {
			if m != 0 && m&^s == 0 {
				cost += v
			}
		}
		if r := cost / float64(s.Count()); r > best {
			best, bestSet = r, s
		}
	}
	return best, bestSet
}
