package portmap

import (
	"fmt"
	"sort"

	"bhive/internal/exec"
	"bhive/internal/machine"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// This file is the llvm-exegesis side of the tooling the paper surveys:
// automatic generation of micro-benchmarks that measure one instruction's
// latency (a serial dependency chain) and reciprocal throughput
// (independent parallel streams). Like the real tool, it is limited to
// register-only instruction forms.

// LatencyChain builds a serial chain of n copies of the template where
// each copy consumes the previous copy's result. Zero-idiom shapes
// (xor a,a) are avoided by alternating two registers.
func LatencyChain(template x86.Inst, n int) ([]x86.Inst, error) {
	if len(template.Args) == 0 || template.Args[0].Kind != x86.KindReg {
		return nil, fmt.Errorf("portmap: template needs a register destination")
	}
	dst := template.Args[0].Reg
	read, _ := template.ArgIO(0)

	sameClass := func(num int, like x86.Reg) x86.Reg {
		if like.IsVec() {
			return x86.VecReg(num, like.Size())
		}
		return x86.GPReg(num, like.Size())
	}

	out := make([]x86.Inst, 0, n)
	if read {
		// Read-modify-write destination: the chain runs through the
		// destination register itself. Keep sources distinct from the
		// destination so the chain is never a zero idiom.
		for i := 0; i < n; i++ {
			in := template
			in.Args = append([]x86.Operand(nil), template.Args...)
			for k := 1; k < len(in.Args); k++ {
				if in.Args[k].Kind == x86.KindReg && in.Args[k].Reg == dst {
					in.Args[k] = x86.RegOp(sameClass(dst.Num()+1, in.Args[k].Reg))
				}
			}
			if _, err := x86.Encode(in); err != nil {
				return nil, err
			}
			out = append(out, in)
		}
		return out, nil
	}

	// Write-only destination: alternate two registers and wire the last
	// register source to the previous destination.
	regA, regB := sameClass(0, dst), sameClass(1, dst)
	for i := 0; i < n; i++ {
		in := template
		in.Args = append([]x86.Operand(nil), template.Args...)
		d, s := regA, regB
		if i%2 == 1 {
			d, s = regB, regA
		}
		in.Args[0] = x86.RegOp(d)
		wired := false
		for k := len(in.Args) - 1; k >= 1; k-- {
			if in.Args[k].Kind == x86.KindReg {
				in.Args[k] = x86.RegOp(sameClass(s.Num(), in.Args[k].Reg))
				wired = true
				break
			}
			if in.Args[k].Kind == x86.KindMem && in.Args[k].Mem.Base.IsGP() {
				// Address-generation chains (LEA) run through the base.
				m := in.Args[k].Mem
				m.Base = x86.GPReg(s.Num(), 8)
				in.Args[k] = x86.MemOp(m)
				wired = true
				break
			}
		}
		if !wired {
			return nil, fmt.Errorf("portmap: %s has no register source to chain through", template.String())
		}
		if _, err := x86.Encode(in); err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// runCycles measures the steady-state cycles of an instruction sequence by
// the derived two-unroll method on a fresh machine.
func runCycles(cpu *uarch.CPU, insts []x86.Inst, unroll int) (float64, error) {
	measure := func(u int) (uint64, error) {
		m := machine.New(cpu, 3)
		var seq []x86.Inst
		for i := 0; i < u; i++ {
			seq = append(seq, insts...)
		}
		prog, err := m.Prepare(seq)
		if err != nil {
			return 0, err
		}
		st := &exec.State{FTZ: true, DAZ: true}
		st.InitRegisters(0x12345600)
		steps, err := m.Execute(prog, st)
		if err != nil {
			return 0, err
		}
		m.Time(prog, steps, machine.Config{})
		st2 := &exec.State{FTZ: true, DAZ: true}
		st2.InitRegisters(0x12345600)
		steps, err = m.Execute(prog, st2)
		if err != nil {
			return 0, err
		}
		return m.Time(prog, steps, machine.Config{}).Cycles, nil
	}
	c1, err := measure(unroll)
	if err != nil {
		return 0, err
	}
	c2, err := measure(2 * unroll)
	if err != nil {
		return 0, err
	}
	return float64(c2-c1) / float64(unroll), nil
}

// MeasureLatency measures the template's dependency-chain latency in
// cycles.
func MeasureLatency(cpu *uarch.CPU, template x86.Inst) (float64, error) {
	chain, err := LatencyChain(template, 8)
	if err != nil {
		return 0, err
	}
	perIter, err := runCycles(cpu, chain, 8)
	if err != nil {
		return 0, err
	}
	return perIter / float64(len(chain)), nil
}

// MeasureThroughput measures the template's reciprocal throughput
// (cycles per instruction with unbounded parallelism).
func MeasureThroughput(cpu *uarch.CPU, template x86.Inst) (float64, error) {
	bench, err := Microbenchmark(template, 12)
	if err != nil {
		return 0, err
	}
	perIter, err := runCycles(cpu, bench, 8)
	if err != nil {
		return 0, err
	}
	return perIter / float64(len(bench)), nil
}

// TableEntry is one measured row of an instruction table.
type TableEntry struct {
	Inst        string
	Latency     float64
	RThroughput float64
	Ports       uarch.PortSet
	UopsPer     float64
}

// BuildTable measures latency, throughput and port usage for each template
// and returns the rows sorted by mnemonic — the per-instruction tables
// (Agner Fog / uops.info style) the paper's background discusses.
func BuildTable(cpu *uarch.CPU, templates []x86.Inst) ([]TableEntry, error) {
	var out []TableEntry
	for _, tmpl := range templates {
		lat, err := MeasureLatency(cpu, tmpl)
		if err != nil {
			return nil, fmt.Errorf("%s: latency: %w", tmpl.String(), err)
		}
		tp, err := MeasureThroughput(cpu, tmpl)
		if err != nil {
			return nil, fmt.Errorf("%s: throughput: %w", tmpl.String(), err)
		}
		pm, err := Infer(cpu, tmpl)
		if err != nil {
			return nil, fmt.Errorf("%s: ports: %w", tmpl.String(), err)
		}
		out = append(out, TableEntry{
			Inst:        tmpl.String(),
			Latency:     lat,
			RThroughput: tp,
			Ports:       pm.Ports,
			UopsPer:     pm.UopsPer,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Inst < out[j].Inst })
	return out, nil
}

// AllTemplates derives one register-only template per opcode from the
// encoding table (the first form whose operands can all be registers or
// immediates), skipping branches and stack ops. This is how the tool
// covers the whole ISA without a hand-written list.
func AllTemplates() []x86.Inst {
	var out []x86.Inst
	seen := make(map[x86.Op]bool)
	for i := range x86.Forms {
		f := &x86.Forms[i]
		if seen[f.Op] || f.Op.IsBranch() {
			continue
		}
		switch f.Op {
		case x86.PUSH, x86.POP, x86.NOP, x86.VZEROUPPER:
			continue
		case x86.DIV, x86.IDIV, x86.MUL, x86.CDQ, x86.CQO:
			// Widening multiply/divide needs implicit RDX:RAX setup that a
			// generic harness cannot provide without faulting (#DE);
			// llvm-exegesis special-cases these too.
			continue
		}
		in := templateFromForm(f)
		if in == nil {
			continue
		}
		if _, err := x86.Encode(*in); err != nil {
			continue
		}
		seen[f.Op] = true
		out = append(out, *in)
	}
	return out
}

// templateFromForm materializes register/immediate operands for a form,
// returning nil when the form requires memory.
func templateFromForm(f *x86.Form) *x86.Inst {
	in := &x86.Inst{Op: f.Op}
	for _, p := range f.Args {
		switch p {
		case x86.PatR8, x86.PatRM8:
			in.Args = append(in.Args, x86.RegOp(x86.CL))
		case x86.PatR16, x86.PatRM16:
			in.Args = append(in.Args, x86.RegOp(x86.CX))
		case x86.PatR32, x86.PatRM32:
			in.Args = append(in.Args, x86.RegOp(x86.ECX))
		case x86.PatR64, x86.PatRM64:
			in.Args = append(in.Args, x86.RegOp(x86.RCX))
		case x86.PatXMM, x86.PatXM32, x86.PatXM64, x86.PatXM128:
			in.Args = append(in.Args, x86.RegOp(x86.X2))
		case x86.PatYMM, x86.PatYM256:
			in.Args = append(in.Args, x86.RegOp(x86.Y2))
		case x86.PatImm8, x86.PatImm16, x86.PatImm32, x86.PatImm64:
			in.Args = append(in.Args, x86.ImmOp(3))
		case x86.PatCL:
			in.Args = append(in.Args, x86.RegOp(x86.CL))
		default:
			return nil // memory-only or unsupported slot
		}
	}
	if len(in.Args) == 0 || in.Args[0].Kind != x86.KindReg {
		return nil
	}
	return in
}

// DefaultTemplates returns a representative register-only instruction set
// for table building.
func DefaultTemplates() []x86.Inst {
	texts := []string{
		"add rax, rbx",
		"adc rax, rbx",
		"imul rax, rbx",
		"shl rax, 3",
		"rol rax, 7",
		"popcnt rax, rbx",
		"lea rax, [rbx+8]",
		"bswap rax",
		"cmova rax, rbx",
		"addss xmm0, xmm1",
		"addpd xmm0, xmm1",
		"mulps xmm0, xmm1",
		"divsd xmm0, xmm1",
		"sqrtss xmm0, xmm1",
		"pshufd xmm0, xmm1, 0x1b",
		"paddd xmm0, xmm1",
		"pmulld xmm0, xmm1",
		"pslld xmm0, 4",
	}
	var out []x86.Inst
	for _, t := range texts {
		in, err := x86.ParseInst(t, x86.SyntaxIntel)
		if err != nil {
			panic("portmap: bad default template " + t)
		}
		out = append(out, in)
	}
	return out
}
