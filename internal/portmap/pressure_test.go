package portmap

import (
	"math"
	"testing"

	"bhive/internal/uarch"
)

func TestSubsetPressure(t *testing.T) {
	p := uarch.Ports
	cases := []struct {
		name string
		load map[uarch.PortSet]float64
		want float64
		set  uarch.PortSet
	}{
		{"empty", nil, 0, 0},
		{"single port", map[uarch.PortSet]float64{p(0): 3}, 3, p(0)},
		{"two spreadable", map[uarch.PortSet]float64{p(0, 1): 4}, 2, p(0, 1)},
		// Restricted µops force the shared subset even though the wide
		// combination alone would spread: {0,1} holds 1+1+2 = 4 over 2.
		{"hall deficiency", map[uarch.PortSet]float64{p(0): 1, p(1): 1, p(0, 1): 2}, 2, p(0, 1)},
		// The narrow subset binds when the restricted load dominates.
		{"narrow binds", map[uarch.PortSet]float64{p(0): 5, p(0, 1, 2): 3}, 5, p(0)},
		// Zero and unconstrained (PortSet 0) entries are ignored.
		{"ignores zero", map[uarch.PortSet]float64{p(0): 0, 0: 7}, 0, 0},
	}
	for _, c := range cases {
		got, set := SubsetPressure(c.load)
		if math.Abs(got-c.want) > 1e-9 || set != c.set {
			t.Errorf("%s: got %.4f on %s, want %.4f on %s", c.name, got, set, c.want, c.set)
		}
	}
}

// TestSubsetPressureLowerBoundsSchedule checks the defining property on a
// brute-forced instance: no integral assignment of µops to allowed ports
// can finish in fewer cycles than the subset bound.
func TestSubsetPressureLowerBoundsSchedule(t *testing.T) {
	p := uarch.Ports
	load := map[uarch.PortSet]float64{
		p(0):    2,
		p(0, 1): 3,
		p(1, 5): 1,
		p(5):    2,
	}
	bound, _ := SubsetPressure(load)

	// Enumerate every assignment of the 8 unit µops to a port in their
	// combination and take the best makespan.
	type uop struct{ ports []int }
	var uops []uop
	for m, v := range load {
		var ps []int
		for i := 0; i < 16; i++ {
			if m.Has(i) {
				ps = append(ps, i)
			}
		}
		for k := 0; k < int(v); k++ {
			uops = append(uops, uop{ports: ps})
		}
	}
	best := math.Inf(1)
	var rec func(i int, used map[int]int)
	rec = func(i int, used map[int]int) {
		if i == len(uops) {
			worst := 0
			for _, n := range used {
				if n > worst {
					worst = n
				}
			}
			best = math.Min(best, float64(worst))
			return
		}
		for _, pt := range uops[i].ports {
			used[pt]++
			rec(i+1, used)
			used[pt]--
		}
	}
	rec(0, map[int]int{})

	if bound > best+1e-9 {
		t.Fatalf("subset bound %.4f exceeds the best schedule %.4f", bound, best)
	}
	// The bound is exact for fractional assignment; integral schedules can
	// only round up. For this instance (8 unit µops over {0,1,5}) the gap
	// is exactly the ceiling.
	if math.Ceil(bound-1e-9) != best {
		t.Fatalf("ceil of subset bound %.4f should meet the best schedule %.4f", bound, best)
	}
}
