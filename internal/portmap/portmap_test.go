package portmap

import (
	"testing"

	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// TestInferMatchesTables validates the measurement-based inference against
// the parameter tables: for a spread of register-only instructions, the
// rediscovered port combination must equal the table's.
func TestInferMatchesTables(t *testing.T) {
	hsw := uarch.Haswell()
	cases := []string{
		"add rax, rbx",            // p0156
		"imul rax, rbx",           // p1
		"shl rax, 3",              // p06
		"pshufd xmm0, xmm1, 0x1b", // p5
		"mulps xmm0, xmm1",        // p01
		"paddd xmm0, xmm1",        // p15
		"pslld xmm0, 4",           // p0
	}
	for _, text := range cases {
		in, err := x86.ParseInst(text, x86.SyntaxIntel)
		if err != nil {
			t.Fatal(err)
		}
		want, err := hsw.DescribeRaw(&in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Infer(hsw, in)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if res.Ports != want.Uops[0].Ports {
			t.Errorf("%s: inferred %v, table says %v (per-port %v)",
				text, res.Ports, want.Uops[0].Ports, res.PerPort[:8])
		}
		if res.UopsPer < 0.9 || res.UopsPer > 1.1 {
			t.Errorf("%s: µops/inst = %.2f", text, res.UopsPer)
		}
	}
}

func TestInferDifferentArch(t *testing.T) {
	// The same instruction maps differently on Ivy Bridge (3 ALU ports)
	// vs Haswell (4).
	in, _ := x86.ParseInst("add rax, rbx", x86.SyntaxIntel)
	ivb, err := Infer(uarch.IvyBridge(), in)
	if err != nil {
		t.Fatal(err)
	}
	hsw, err := Infer(uarch.Haswell(), in)
	if err != nil {
		t.Fatal(err)
	}
	if ivb.Ports.Count() != 3 || hsw.Ports.Count() != 4 {
		t.Fatalf("ivb=%v hsw=%v", ivb.Ports, hsw.Ports)
	}
}

func TestMicrobenchmarkIndependence(t *testing.T) {
	in, _ := x86.ParseInst("imul rax, rbx", x86.SyntaxIntel)
	bench, err := Microbenchmark(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	dsts := map[x86.Reg]bool{}
	for i := range bench {
		dsts[bench[i].Args[0].Reg] = true
	}
	if len(dsts) < 4 {
		t.Fatalf("destinations not rotated: %v", dsts)
	}
}

func TestInferRejectsMemoryTemplates(t *testing.T) {
	in, _ := x86.ParseInst("add qword ptr [rax], 1", x86.SyntaxIntel)
	if _, err := Microbenchmark(in, 4); err == nil {
		t.Fatal("memory-destination templates are out of scope (as in llvm-exegesis)")
	}
}
