package counter

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"bhive/internal/bound"
	"bhive/internal/pipeline"
)

// StubConfig parameterizes the deterministic perfstub source. Every
// injected fault is scheduled by a seeded content hash, so the same
// (seed, corpus) always produces the same measurements, the same
// retries, and the same filtering decisions — the property that lets CI
// golden-test the whole protocol without hardware.
type StubConfig struct {
	// Seed perturbs every hash draw; two seeds are two "machines".
	Seed int64

	// Env is the environment the stub reports. The zero value means
	// fully fenced (CPU and frequency pinned).
	Env *Env

	// JitterCycles is the maximum uniform per-sample cycle jitter
	// (deterministic in the sample index). 0 = quiet machine: every
	// clean sample of a run is identical, the paper's assumption.
	JitterCycles uint64

	// SpikeEvery injects an interference spike — SpikeCycles extra
	// cycles and one context switch — into every SpikeEvery-th sample.
	// The MAD filter must reject these. 0 disables.
	SpikeEvery  int
	SpikeCycles uint64

	// TimeoutEvery makes every TimeoutEvery-th run fail its first
	// attempt with ErrTimeout (the retry succeeds), exercising the
	// bounded-backoff retry path. 0 disables.
	TimeoutEvery int

	// DisagreeEvery makes the stub genuinely disagree with the simulator
	// on acceptance: of every DisagreeEvery consecutive hash residues,
	// one block reports L1 data misses (→ cache-miss rejection) and one
	// reports line-splitting loads (→ misaligned rejection). 0 disables.
	DisagreeEvery int

	// MaxSkew bounds the per-(block, µarch) systematic throughput skew
	// the stub applies over its analytic base — the calibration error a
	// real machine would show against the simulator. Default 0.05.
	MaxSkew float64
}

// DefaultStubConfig exercises every protocol path: interference spikes
// (filtering), first-attempt timeouts (retry), and acceptance
// disagreements (xval status matrix) — all deterministic.
func DefaultStubConfig() StubConfig {
	return StubConfig{
		Seed:          1,
		SpikeEvery:    5,
		SpikeCycles:   50_000,
		TimeoutEvery:  23,
		DisagreeEvery: 7,
		MaxSkew:       0.05,
	}
}

// StubSource is a deterministic, hermetic measurement source: "hardware"
// whose ground truth is the static cycle-bound analysis (internal/bound)
// instead of the simulator — close enough to be plausible, independent
// enough that cross-validation against the sim backend has something
// real to disagree about. All fault injection is hash-scheduled; see
// StubConfig.
type StubSource struct {
	cfg StubConfig

	mu    sync.Mutex
	bases map[string]*stubBase // per "cpu|hex"
}

// stubBase is the per-(block, µarch) stationary model every run of that
// pair derives from.
type stubBase struct {
	err        error   // analysis failure: the block "crashes" on the stub machine
	cycPerIter float64 // skewed steady-state cycles per iteration
	transient  uint64  // fixed startup cycles, cancelled by the derived formula
	instrs     uint64  // instructions per iteration
	uops       uint64  // µops per iteration (estimate)
	hash       uint64  // fault-schedule identity
	cacheMiss  bool    // disagreement injection: L1D misses every run
	misaligned bool    // disagreement injection: split loads every run
}

// NewStub builds a stub source.
func NewStub(cfg StubConfig) *StubSource {
	if cfg.MaxSkew == 0 {
		cfg.MaxSkew = 0.05
	}
	return &StubSource{cfg: cfg, bases: make(map[string]*stubBase)}
}

func (s *StubSource) Name() string { return "stub" }

func (s *StubSource) Fingerprint() string {
	c := s.cfg
	return fmt.Sprintf("stub|seed%d j%d sp%d/%d to%d dis%d skew%g",
		c.Seed, c.JitterCycles, c.SpikeEvery, c.SpikeCycles, c.TimeoutEvery,
		c.DisagreeEvery, c.MaxSkew)
}

func (s *StubSource) Env() Env {
	if s.cfg.Env != nil {
		return *s.cfg.Env
	}
	return Env{CPUPinned: true, FreqPinned: true, Desc: "stub (fenced)"}
}

func (s *StubSource) Close() error { return nil }

// Measure synthesizes the counters of one run.
func (s *StubSource) Measure(r Run) (pipeline.Counters, error) {
	b, err := s.baseFor(r)
	if err != nil {
		return pipeline.Counters{}, err
	}

	// Transient-failure injection: the run's first attempt times out,
	// the retry succeeds — deterministic in the run identity, so the
	// eventual sample value is independent of how it got there.
	if s.cfg.TimeoutEvery > 0 && r.Attempt == 0 &&
		mix(b.hash, uint64(r.Unroll), uint64(r.Sample), 0x7e)%uint64(s.cfg.TimeoutEvery) == 0 {
		return pipeline.Counters{}, fmt.Errorf("stub: injected slow run: %w", ErrTimeout)
	}

	u := uint64(r.Unroll)
	var c pipeline.Counters
	c.Cycles = uint64(math.Round(b.cycPerIter*float64(u))) + b.transient
	if s.cfg.JitterCycles > 0 {
		c.Cycles += mix(b.hash, u, uint64(r.Sample), 0x71) % (s.cfg.JitterCycles + 1)
	}
	if s.cfg.SpikeEvery > 0 && !r.Warmup && (r.Sample+1)%s.cfg.SpikeEvery == 0 {
		c.Cycles += s.cfg.SpikeCycles
		c.ContextSwitches = 1
	}
	c.Instructions = b.instrs * u
	c.Uops = b.uops * u
	if b.cacheMiss {
		c.L1DReadMisses = 2 * u
	}
	if b.misaligned {
		c.MisalignedLoads = u
	}
	// Port attribution: µops spread round-robin from a hash-chosen
	// starting port — stable per block, different across blocks.
	if n := r.CPU.NumPorts; n > 0 {
		start := int(b.hash % uint64(n))
		for i := uint64(0); i < b.uops; i++ {
			c.PortUops[(start+int(i))%n] += u
		}
	}

	return mask(c, r.Group), nil
}

// baseFor finds or computes the stationary model for (r.CPU, r.Block).
func (s *StubSource) baseFor(r Run) (*stubBase, error) {
	hexStr, err := r.Block.Hex()
	if err != nil {
		return nil, fmt.Errorf("stub: %w", err)
	}
	key := r.CPU.Name + "|" + hexStr
	s.mu.Lock()
	b, ok := s.bases[key]
	s.mu.Unlock()
	if ok {
		return b, b.err
	}

	b = &stubBase{hash: hashKey(s.cfg.Seed, key)}
	bounds, aerr := bound.Analyze(r.CPU, r.Block)
	if aerr != nil {
		b.err = fmt.Errorf("stub: block does not run on this machine: %w", aerr)
	} else {
		// The stub machine's steady state sits a hash-chosen fraction of
		// MaxSkew above the certified floor — never below it, so the
		// measurements stay physically consistent with the bounds.
		skew := 1 + s.cfg.MaxSkew*float64(b.hash%1024)/1024
		base := bounds.Lower
		if base < 0.25 {
			base = 0.25
		}
		b.cycPerIter = base * skew
		b.transient = uint64(math.Round(b.cycPerIter*2)) + 40
		b.instrs = uint64(len(r.Block.Insts))
		b.uops = b.instrs + b.instrs/3
		if s.cfg.DisagreeEvery > 0 {
			switch b.hash % uint64(s.cfg.DisagreeEvery) {
			case 0:
				b.cacheMiss = true
			case 1:
				b.misaligned = true
			}
		}
	}
	s.mu.Lock()
	s.bases[key] = b
	s.mu.Unlock()
	return b, b.err
}

// mask zeroes every counter outside g — the Source contract: a run
// reports only what its group programmed.
func mask(c pipeline.Counters, g Group) pipeline.Counters {
	var out pipeline.Counters
	for _, id := range g {
		setValue(&out, id, value(&c, id))
	}
	return out
}

// hashKey seeds the fault schedule of one (cpu, block) pair.
func hashKey(seed int64, key string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	return h.Sum64()
}

// mix folds run coordinates into a per-key hash (splitmix-style).
func mix(vs ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
	}
	return x
}
