package counter

import (
	"fmt"
	"strconv"
	"strings"

	"bhive/internal/backend"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Backend adapts an Engine to backend.Backend, so counter measurements
// flow through the standard plumbing: the xval cross-validation
// experiment, checkpoint shard keys, and — wrapped in backend.Recorder —
// the content-addressed trace format bhive-record emits.
type Backend struct {
	eng *Engine
}

// NewBackend builds the counter backend over a source.
func NewBackend(src Source, cfg Config) (*Backend, error) {
	eng, err := NewEngine(src, cfg)
	if err != nil {
		return nil, err
	}
	return &Backend{eng: eng}, nil
}

// Engine exposes the underlying engine (stats, fencing state).
func (cb *Backend) Engine() *Engine { return cb.eng }

func (cb *Backend) Name() string        { return "counter" }
func (cb *Backend) Fingerprint() string { return cb.eng.Fingerprint() }

func (cb *Backend) Measure(b *x86.Block, cpu *uarch.CPU) backend.Measurement {
	status, tp, counters, err := cb.eng.Measure(b, cpu)
	return backend.Measurement{Status: status, Throughput: tp, Counters: counters, Err: err}
}

func (cb *Backend) Close() error { return cb.eng.src.Close() }

// The "counter" spec scheme: "counter" (stub source, default seed),
// "counter:stub", "counter:stub:<seed>", or "counter:perf" (gated: real
// hardware counters are not available in this build). Registered into
// the backend spec grammar at link time — any binary importing this
// package accepts the scheme in -backend flags and server requests.
func init() {
	backend.RegisterScheme("counter", backend.Scheme{
		Check: func(arg string) error { _, _, err := parseSourceArg(arg); return err },
		Open: func(arg string, opts backend.Options) (backend.Backend, error) {
			src, cfg, err := parseSourceArg(arg)
			if err != nil {
				return nil, err
			}
			return NewBackend(src, cfg)
		},
	})
}

// parseSourceArg resolves the spec argument to a source and protocol
// config. Hardware sources are named in the grammar but gated: asking
// for one fails with a actionable message instead of pretending.
func parseSourceArg(arg string) (Source, Config, error) {
	cfg := DefaultConfig()
	switch {
	case arg == "" || arg == "stub":
		return NewStub(DefaultStubConfig()), cfg, nil
	case strings.HasPrefix(arg, "stub:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(arg, "stub:"), 10, 64)
		if err != nil {
			return nil, cfg, fmt.Errorf("counter: bad stub seed in %q: %v", arg, err)
		}
		sc := DefaultStubConfig()
		sc.Seed = seed
		return NewStub(sc), cfg, nil
	case arg == "perf":
		return nil, cfg, fmt.Errorf("counter: the perf source needs bare-metal performance counters (perf_event_open), which this build does not ship; use counter:stub[:<seed>] or record a trace on hardware and replay it with recorded:<path>")
	default:
		return nil, cfg, fmt.Errorf("counter: unknown source %q (want stub, stub:<seed>, or perf)", arg)
	}
}
