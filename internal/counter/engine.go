package counter

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"bhive/internal/pipeline"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Config parameterizes the measurement protocol. The defaults follow the
// paper's acceptance protocol (16 samples, 8 clean) with nanoBench's
// aggregation (median-of-N after outlier rejection).
type Config struct {
	// WarmupRuns are executed and discarded before the samples of every
	// (unroll, group) round — they charge caches, the branch predictor,
	// and on real hardware the frequency governor.
	WarmupRuns int
	// Samples is the number of timed runs per (unroll, group) round.
	Samples int
	// MinCleanSamples is how many samples must survive interference
	// filtering for the round to be accepted.
	MinCleanSamples int
	// MADK scales the filtering tolerance: a sample is clean when its
	// cycle count is within MADK × MAD of the median (MAD = median
	// absolute deviation). With MAD 0 — a quiet machine — only
	// exactly-median samples are clean, the paper's "identical" rule.
	MADK float64
	// UnfencedSlack is the relative cycle tolerance (fraction of the
	// median) added to the filter when the environment is not fenced:
	// the degraded mode accepts residual frequency/scheduling noise that
	// pinning would have removed, and flags the run instead of failing.
	UnfencedSlack float64

	// RunRetries is how many times one errored run (e.g. ErrTimeout) is
	// retried before the whole measurement fails.
	RunRetries int
	// MeasRetries is how many times a round whose filtering left fewer
	// than MinCleanSamples clean samples is re-measured before the block
	// is declared unstable.
	MeasRetries int
	// BackoffBase is the first retry delay, doubling per attempt and
	// capped at BackoffCap — bounded, so a flaky source cannot stall a
	// sweep indefinitely.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// UnrollLo/UnrollHi are the two unroll factors of the derived-
	// throughput formula (cycles(hi) − cycles(lo)) / (hi − lo).
	UnrollLo, UnrollHi int

	// Sleep replaces time.Sleep in backoff waits (tests make it a no-op
	// recorder). Nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultConfig is the full protocol at the paper's sample counts.
func DefaultConfig() Config {
	return Config{
		WarmupRuns:      2,
		Samples:         16,
		MinCleanSamples: 8,
		MADK:            3,
		UnfencedSlack:   0.02,
		RunRetries:      3,
		MeasRetries:     2,
		BackoffBase:     time.Millisecond,
		BackoffCap:      100 * time.Millisecond,
		UnrollLo:        8,
		UnrollHi:        24,
	}
}

func (c *Config) applyDefaults() error {
	d := DefaultConfig()
	if c.WarmupRuns < 0 {
		return errors.New("counter: WarmupRuns < 0")
	}
	if c.Samples == 0 {
		c.Samples = d.Samples
	}
	if c.MinCleanSamples == 0 {
		c.MinCleanSamples = d.MinCleanSamples
	}
	if c.MinCleanSamples > c.Samples {
		return fmt.Errorf("counter: MinCleanSamples %d > Samples %d", c.MinCleanSamples, c.Samples)
	}
	if c.MADK == 0 {
		c.MADK = d.MADK
	}
	if c.UnfencedSlack == 0 {
		c.UnfencedSlack = d.UnfencedSlack
	}
	if c.RunRetries == 0 {
		c.RunRetries = d.RunRetries
	}
	if c.MeasRetries == 0 {
		c.MeasRetries = d.MeasRetries
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = d.BackoffCap
	}
	if c.UnrollLo == 0 {
		c.UnrollLo = d.UnrollLo
	}
	if c.UnrollHi == 0 {
		c.UnrollHi = d.UnrollHi
	}
	if c.UnrollLo >= c.UnrollHi {
		return fmt.Errorf("counter: UnrollLo %d >= UnrollHi %d", c.UnrollLo, c.UnrollHi)
	}
	return nil
}

// fingerprint folds every protocol parameter into the backend
// fingerprint, so checkpoints written under one protocol never resume
// another. The Sleep hook is behavior-neutral and excluded.
func (c Config) fingerprint() string {
	return fmt.Sprintf("w%d s%d/%d mad%g slack%g rr%d mr%d u%d-%d",
		c.WarmupRuns, c.MinCleanSamples, c.Samples, c.MADK, c.UnfencedSlack,
		c.RunRetries, c.MeasRetries, c.UnrollLo, c.UnrollHi)
}

// Stats counts protocol events across every Measure call — the
// observability hook bhive-record prints and the fault-injection tests
// assert on. All fields are atomically updated; read them with Load.
type Stats struct {
	Runs            atomic.Uint64 // timed sample runs executed
	Warmups         atomic.Uint64 // warm-up runs executed and discarded
	FilteredSamples atomic.Uint64 // samples rejected by the MAD filter
	RunRetries      atomic.Uint64 // errored runs retried
	Timeouts        atomic.Uint64 // of those, timeouts specifically
	MeasRetries     atomic.Uint64 // whole rounds re-measured
	Unstable        atomic.Uint64 // measurements that exhausted MeasRetries
}

// Engine drives the nanoBench protocol over a Source. It is safe for
// concurrent Measure calls iff the source is (both shipped sources are).
type Engine struct {
	cfg      Config
	src      Source
	unfenced bool
	stats    Stats
}

// NewEngine validates the configuration, checks the source's environment
// fencing once, and builds the engine. An unfenced environment (CPU or
// frequency not pinned) degrades the engine — wider filter tolerance,
// flagged fingerprint — instead of failing: measurements remain usable,
// and everything downstream can see they were taken unfenced.
func NewEngine(src Source, cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, src: src, unfenced: !src.Env().Fenced()}, nil
}

// Unfenced reports whether the engine is running in the degraded
// unfenced mode.
func (e *Engine) Unfenced() bool { return e.unfenced }

// Stats exposes the protocol-event counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Source returns the measurement source the engine drives.
func (e *Engine) Source() Source { return e.src }

// Fingerprint captures the measurement semantics: protocol parameters,
// source identity, and the fencing degradation if active.
func (e *Engine) Fingerprint() string {
	fp := "counter|" + e.cfg.fingerprint() + "|" + e.src.Fingerprint()
	if e.unfenced {
		fp += "|unfenced"
	}
	return fp
}

// errUnstable marks a measurement whose rounds never yielded enough
// clean samples; Measure maps it to profiler.StatusUnstable.
var errUnstable = errors.New("counter: interference filtering left too few clean samples")

// Measure runs the full protocol for one block on one µarch: both
// unroll factors, every counter group, warm-ups, sampling, filtering,
// and retries — then derives throughput and applies the paper's
// acceptance rules to the aggregated counters.
func (e *Engine) Measure(b *x86.Block, cpu *uarch.CPU) (profiler.Status, float64, pipeline.Counters, error) {
	lo, err := e.measureUnroll(b, cpu, e.cfg.UnrollLo)
	if err != nil {
		return statusFor(err), 0, pipeline.Counters{}, err
	}
	hi, err := e.measureUnroll(b, cpu, e.cfg.UnrollHi)
	if err != nil {
		return statusFor(err), 0, pipeline.Counters{}, err
	}

	// Derived throughput: the difference quotient cancels the fixed
	// startup transient both runs share.
	if hi.Cycles <= lo.Cycles {
		return profiler.StatusUnstable, 0, pipeline.Counters{},
			fmt.Errorf("counter: non-monotone cycles: %d at u=%d, %d at u=%d",
				lo.Cycles, e.cfg.UnrollLo, hi.Cycles, e.cfg.UnrollHi)
	}
	tp := float64(hi.Cycles-lo.Cycles) / float64(e.cfg.UnrollHi-e.cfg.UnrollLo)

	// Acceptance on the aggregated counters of the high-unroll run, the
	// paper's protocol: any cache miss or line-splitting access rejects
	// the measurement; a surviving context switch means the filter could
	// not isolate a quiet run.
	switch {
	case hi.L1DReadMisses > 0 || hi.L1DWriteMisses > 0 || hi.L1IMisses > 0:
		return profiler.StatusCacheMiss, 0, hi, nil
	case hi.MisalignedLoads > 0 || hi.MisalignedStores > 0:
		return profiler.StatusMisaligned, 0, hi, nil
	case hi.ContextSwitches > 0:
		return profiler.StatusUnstable, 0, hi, nil
	}
	return profiler.StatusOK, tp, hi, nil
}

// statusFor maps a measurement failure to the paper's status taxonomy.
func statusFor(err error) profiler.Status {
	if errors.Is(err, errUnstable) {
		return profiler.StatusUnstable
	}
	return profiler.StatusCrashed
}

// measureUnroll measures every counter group at one unroll factor and
// merges the per-group aggregates. Each counter's value comes from the
// group that programmed it; the cycle reference is group 0's.
func (e *Engine) measureUnroll(b *x86.Block, cpu *uarch.CPU, unroll int) (pipeline.Counters, error) {
	var merged pipeline.Counters
	for gi, g := range GroupsFor(cpu) {
		agg, err := e.measureGroup(b, cpu, unroll, gi, g)
		if err != nil {
			return pipeline.Counters{}, err
		}
		start := 0
		if gi > 0 {
			start = 1 // Cycles authoritative from group 0 only
		}
		for _, id := range g[start:] {
			setValue(&merged, id, value(&agg, id))
		}
	}
	return merged, nil
}

// measureGroup is one protocol round with whole-round retries: warm-ups,
// Samples timed runs (each individually retried on error), MAD
// filtering, and median aggregation of the clean samples.
func (e *Engine) measureGroup(b *x86.Block, cpu *uarch.CPU, unroll, gi int, g Group) (pipeline.Counters, error) {
	samples := make([]pipeline.Counters, 0, e.cfg.Samples)
	for round := 0; ; round++ {
		samples = samples[:0]
		base := round * (e.cfg.WarmupRuns + e.cfg.Samples)
		for w := 0; w < e.cfg.WarmupRuns; w++ {
			if _, err := e.run(Run{
				Block: b, CPU: cpu, Unroll: unroll, Group: g,
				Sample: base + w, Warmup: true,
			}); err != nil {
				return pipeline.Counters{}, err
			}
			e.stats.Warmups.Add(1)
		}
		for s := 0; s < e.cfg.Samples; s++ {
			c, err := e.run(Run{
				Block: b, CPU: cpu, Unroll: unroll, Group: g,
				Sample: base + e.cfg.WarmupRuns + s,
			})
			if err != nil {
				return pipeline.Counters{}, err
			}
			e.stats.Runs.Add(1)
			samples = append(samples, c)
		}

		clean := e.filter(samples)
		e.stats.FilteredSamples.Add(uint64(len(samples) - len(clean)))
		if len(clean) >= e.cfg.MinCleanSamples {
			return aggregate(clean, g), nil
		}
		if round >= e.cfg.MeasRetries {
			e.stats.Unstable.Add(1)
			return pipeline.Counters{}, fmt.Errorf("%w: %d/%d clean after %d rounds (unroll %d, group %s)",
				errUnstable, len(clean), e.cfg.Samples, round+1, unroll, g)
		}
		e.stats.MeasRetries.Add(1)
		e.sleep(e.backoff(round))
	}
}

// run executes one measurement run with per-run retry and bounded
// backoff. Only transient failures — errors wrapping ErrTimeout — are
// retried; anything else (an undecodable block, a faulting benchmark) is
// permanent and fails the measurement immediately.
func (e *Engine) run(r Run) (pipeline.Counters, error) {
	for {
		c, err := e.src.Measure(r)
		if err == nil {
			return c, nil
		}
		if !errors.Is(err, ErrTimeout) {
			return pipeline.Counters{}, err
		}
		e.stats.Timeouts.Add(1)
		if r.Attempt >= e.cfg.RunRetries {
			return pipeline.Counters{}, fmt.Errorf("counter: run failed after %d attempts: %w", r.Attempt+1, err)
		}
		e.stats.RunRetries.Add(1)
		e.sleep(e.backoff(r.Attempt))
		r.Attempt++
	}
}

// filter keeps the samples whose cycle counts lie within the MAD-based
// tolerance of the median — nanoBench's outlier rejection, widened by
// the relative slack when running unfenced.
func (e *Engine) filter(samples []pipeline.Counters) []pipeline.Counters {
	cycles := make([]uint64, len(samples))
	for i := range samples {
		cycles[i] = samples[i].Cycles
	}
	med := medianU64(cycles)
	devs := make([]uint64, len(samples))
	for i, c := range cycles {
		devs[i] = absDiff(c, med)
	}
	tol := e.cfg.MADK * float64(medianU64(devs))
	if e.unfenced {
		if slack := e.cfg.UnfencedSlack * float64(med); tol < slack {
			tol = slack
		}
	}
	clean := samples[:0:len(samples)]
	for i := range samples {
		if float64(devs[i]) <= tol {
			clean = append(clean, samples[i])
		}
	}
	return clean
}

// aggregate takes the per-counter lower median over the clean samples —
// integral, deterministic, and robust to the residual noise the filter
// tolerated.
func aggregate(clean []pipeline.Counters, g Group) pipeline.Counters {
	var out pipeline.Counters
	vals := make([]uint64, len(clean))
	for _, id := range g {
		for i := range clean {
			vals[i] = value(&clean[i], id)
		}
		setValue(&out, id, medianU64(vals))
	}
	return out
}

// medianU64 is the lower median (does not mutate its argument).
func medianU64(xs []uint64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// backoff is the bounded exponential retry delay for attempt (0-based).
func (e *Engine) backoff(attempt int) time.Duration {
	d := e.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > e.cfg.BackoffCap {
		d = e.cfg.BackoffCap
	}
	return d
}

func (e *Engine) sleep(d time.Duration) {
	if e.cfg.Sleep != nil {
		e.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}
