package counter

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bhive/internal/pipeline"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func testBlock(t *testing.T, text string) *x86.Block {
	t.Helper()
	b, err := x86.ParseBlock(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return b
}

// fakeSource scripts raw runs: cycles come from a caller-supplied
// function, errors from an injected schedule. It reports whatever Env
// it is given — the engine-side fencing tests steer everything.
type fakeSource struct {
	env    Env
	cycles func(r Run) uint64
	fail   func(r Run) error
}

func (f *fakeSource) Name() string        { return "fake" }
func (f *fakeSource) Fingerprint() string { return "fake" }
func (f *fakeSource) Env() Env            { return f.env }
func (f *fakeSource) Close() error        { return nil }

func (f *fakeSource) Measure(r Run) (pipeline.Counters, error) {
	if f.fail != nil {
		if err := f.fail(r); err != nil {
			return pipeline.Counters{}, err
		}
	}
	var c pipeline.Counters
	c.Cycles = f.cycles(r)
	c.Instructions = uint64(len(r.Block.Insts) * r.Unroll)
	return mask(c, r.Group), nil
}

var fenced = Env{CPUPinned: true, FreqPinned: true}

// quiet returns a noise-free cycle model: base cycles per iteration plus
// a fixed transient the derived-throughput formula must cancel.
func quiet(base, transient uint64) func(Run) uint64 {
	return func(r Run) uint64 { return base*uint64(r.Unroll) + transient }
}

func TestGroupsForCoverEveryCounterOnce(t *testing.T) {
	for _, cpu := range uarch.All() {
		groups := GroupsFor(cpu)
		budget := programmable[cpu.Name]
		seen := map[ID]int{}
		for _, g := range groups {
			if g[0] != Cycles {
				t.Fatalf("%s: group %s does not lead with cycles", cpu.Name, g)
			}
			if len(g) > budget {
				t.Fatalf("%s: group %s exceeds the %d-counter budget", cpu.Name, g, budget)
			}
			for _, id := range g[1:] {
				seen[id]++
			}
		}
		for id := Instructions; id < Port0+ID(cpu.NumPorts); id++ {
			if seen[id] != 1 {
				t.Fatalf("%s: counter %s programmed %d times, want once", cpu.Name, id, seen[id])
			}
		}
	}
	// Skylake's 8-counter budget must need fewer groups (= fewer runs)
	// than Haswell's 4 for the same counter set size difference.
	if sk, hw := len(GroupsFor(uarch.Skylake())), len(GroupsFor(uarch.Haswell())); sk >= hw {
		t.Fatalf("skylake needs %d groups, haswell %d; wider budget should mean fewer", sk, hw)
	}
}

func TestMedianU64(t *testing.T) {
	cases := []struct {
		in   []uint64
		want uint64
	}{
		{nil, 0},
		{[]uint64{5}, 5},
		{[]uint64{9, 1, 5}, 5},
		{[]uint64{4, 1, 3, 2}, 2}, // lower median, even count
	}
	for _, c := range cases {
		in := append([]uint64(nil), c.in...)
		if got := medianU64(in); got != c.want {
			t.Errorf("medianU64(%v) = %d, want %d", c.in, got, c.want)
		}
		for i := range in {
			if in[i] != c.in[i] {
				t.Errorf("medianU64 mutated its argument: %v -> %v", c.in, in)
			}
		}
	}
}

// TestDerivedThroughputCancelsTransient: a quiet source with a large
// fixed transient must still measure exactly the per-iteration cost.
func TestDerivedThroughputCancelsTransient(t *testing.T) {
	src := &fakeSource{env: fenced, cycles: quiet(7, 12345)}
	eng, err := NewEngine(src, Config{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	status, tp, counters, err := eng.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if err != nil || status != profiler.StatusOK {
		t.Fatalf("measure: status=%v err=%v", status, err)
	}
	if tp != 7 {
		t.Fatalf("throughput = %v, want 7 (transient not cancelled)", tp)
	}
	if eng.Unfenced() {
		t.Fatal("fenced env reported unfenced")
	}
	wantInstr := uint64(1 * DefaultConfig().UnrollHi)
	if counters.Instructions != wantInstr {
		t.Fatalf("aggregated instructions = %d, want %d", counters.Instructions, wantInstr)
	}
}

// TestMADFilterRejectsInterference: periodic 50k-cycle spikes (with the
// context switches real interference would show) must be filtered out,
// leaving a clean, spike-free aggregate.
func TestMADFilterRejectsInterference(t *testing.T) {
	spikes := 0
	src := &fakeSource{env: fenced, cycles: func(r Run) uint64 {
		c := quiet(7, 100)(r)
		if !r.Warmup && r.Sample%4 == 3 {
			spikes++
			c += 50_000
		}
		return c
	}}
	eng, err := NewEngine(src, Config{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	status, tp, _, err := eng.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if err != nil || status != profiler.StatusOK || tp != 7 {
		t.Fatalf("spiked measure: status=%v tp=%v err=%v", status, tp, err)
	}
	if spikes == 0 {
		t.Fatal("test injected no spikes")
	}
	if got := eng.Stats().FilteredSamples.Load(); got != uint64(spikes) {
		t.Fatalf("filtered %d samples, want the %d spikes", got, spikes)
	}
}

// TestUnstableAfterMeasRetries: when filtering persistently leaves too
// few clean samples, the engine retries whole rounds with backoff and
// then reports StatusUnstable — never a throughput.
func TestUnstableAfterMeasRetries(t *testing.T) {
	// Half the samples sit far above the median: 8 clean of 16 < the 12
	// this config demands, every round.
	src := &fakeSource{env: fenced, cycles: func(r Run) uint64 {
		c := quiet(7, 100)(r)
		if r.Sample%2 == 1 {
			c += 10_000
		}
		return c
	}}
	var backoffs []time.Duration
	eng, err := NewEngine(src, Config{
		MinCleanSamples: 12,
		Sleep:           func(d time.Duration) { backoffs = append(backoffs, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	status, tp, _, err := eng.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if status != profiler.StatusUnstable || tp != 0 {
		t.Fatalf("status=%v tp=%v, want unstable/0", status, tp)
	}
	if !errors.Is(err, errUnstable) {
		t.Fatalf("err = %v, want errUnstable", err)
	}
	want := uint64(DefaultConfig().MeasRetries)
	if got := eng.Stats().MeasRetries.Load(); got != want {
		t.Fatalf("MeasRetries = %d, want %d (bounded)", got, want)
	}
	if len(backoffs) != int(want) {
		t.Fatalf("%d backoff sleeps, want %d", len(backoffs), want)
	}
	for i, d := range backoffs {
		if d <= 0 || d > DefaultConfig().BackoffCap {
			t.Fatalf("backoff %d = %v outside (0, %v]", i, d, DefaultConfig().BackoffCap)
		}
	}
}

// TestTimeoutRetrySucceeds: a run that times out on its first attempts
// and then succeeds must produce the same measurement as a clean run,
// with the retries visible in the stats.
func TestTimeoutRetrySucceeds(t *testing.T) {
	src := &fakeSource{
		env:    fenced,
		cycles: quiet(7, 100),
		fail: func(r Run) error {
			if r.Sample == 3 && r.Attempt < 2 {
				return fmt.Errorf("wrapped: %w", ErrTimeout)
			}
			return nil
		},
	}
	var slept int
	eng, err := NewEngine(src, Config{Sleep: func(time.Duration) { slept++ }})
	if err != nil {
		t.Fatal(err)
	}
	status, tp, _, err := eng.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if err != nil || status != profiler.StatusOK || tp != 7 {
		t.Fatalf("status=%v tp=%v err=%v", status, tp, err)
	}
	if eng.Stats().RunRetries.Load() == 0 || eng.Stats().Timeouts.Load() == 0 {
		t.Fatalf("retries=%d timeouts=%d, want both > 0",
			eng.Stats().RunRetries.Load(), eng.Stats().Timeouts.Load())
	}
	if slept == 0 {
		t.Fatal("retries did not back off")
	}
}

// TestTimeoutRetriesAreBounded: a persistently timing-out run fails the
// measurement as crashed after exactly RunRetries+1 attempts.
func TestTimeoutRetriesAreBounded(t *testing.T) {
	attempts := 0
	src := &fakeSource{
		env:    fenced,
		cycles: quiet(7, 100),
		fail: func(r Run) error {
			attempts++
			return ErrTimeout
		},
	}
	eng, err := NewEngine(src, Config{RunRetries: 2, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	status, _, _, err := eng.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if status != profiler.StatusCrashed || !errors.Is(err, ErrTimeout) {
		t.Fatalf("status=%v err=%v, want crashed wrapping ErrTimeout", status, err)
	}
	if attempts != 3 {
		t.Fatalf("source saw %d attempts, want 3 (1 + 2 retries)", attempts)
	}
}

// TestPermanentErrorFailsFast: non-timeout errors are permanent — no
// retries, immediate crashed status.
func TestPermanentErrorFailsFast(t *testing.T) {
	attempts := 0
	boom := errors.New("SIGSEGV in benchmark")
	src := &fakeSource{
		env:    fenced,
		cycles: quiet(7, 100),
		fail:   func(r Run) error { attempts++; return boom },
	}
	eng, err := NewEngine(src, Config{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	status, _, _, err := eng.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if status != profiler.StatusCrashed || !errors.Is(err, boom) {
		t.Fatalf("status=%v err=%v, want crashed wrapping the fault", status, err)
	}
	if attempts != 1 {
		t.Fatalf("permanent error retried: %d attempts", attempts)
	}
}

// TestFencingDegradation: proportional noise that defeats the strict
// fenced filter must pass under the unfenced slack — same source, same
// noise, different environment — and the degradation must be flagged in
// Unfenced() and the fingerprint rather than silently absorbed.
func TestFencingDegradation(t *testing.T) {
	// Samples alternate between base and base×1.01 — the drift an
	// unpinned frequency governor produces.
	noisy := func(r Run) uint64 {
		c := quiet(1000, 0)(r)
		if r.Sample%2 == 1 {
			c += c / 100
		}
		return c
	}
	cfg := func() Config {
		return Config{MinCleanSamples: 12, Sleep: func(time.Duration) {}}
	}

	strict, err := NewEngine(&fakeSource{env: fenced, cycles: noisy}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	status, _, _, _ := strict.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if status != profiler.StatusUnstable {
		t.Fatalf("fenced engine accepted drifting samples: %v", status)
	}

	degraded, err := NewEngine(&fakeSource{env: Env{CPUPinned: true, FreqPinned: false}, cycles: noisy}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !degraded.Unfenced() {
		t.Fatal("unpinned frequency not flagged as unfenced")
	}
	status, tp, _, err := degraded.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if err != nil || status != profiler.StatusOK {
		t.Fatalf("degraded mode rejected the measurement: status=%v err=%v", status, err)
	}
	if tp <= 0 {
		t.Fatalf("degraded throughput = %v", tp)
	}
	if fp := degraded.Fingerprint(); !strings.Contains(fp, "unfenced") {
		t.Fatalf("fingerprint %q does not flag the unfenced degradation", fp)
	}
	if fp := strict.Fingerprint(); strings.Contains(fp, "unfenced") {
		t.Fatalf("fenced fingerprint %q flags unfenced", fp)
	}
}

// TestConfigValidation: impossible protocol parameters fail construction.
func TestConfigValidation(t *testing.T) {
	src := &fakeSource{env: fenced, cycles: quiet(1, 0)}
	bad := []Config{
		{MinCleanSamples: 20, Samples: 16},
		{UnrollLo: 16, UnrollHi: 8},
		{WarmupRuns: -1},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(src, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestNonMonotoneCyclesRejected: a source whose high-unroll run is not
// costlier than the low one cannot yield a meaningful difference
// quotient; the engine must refuse rather than report tp ≤ 0.
func TestNonMonotoneCyclesRejected(t *testing.T) {
	src := &fakeSource{env: fenced, cycles: func(r Run) uint64 { return 1000 - 10*uint64(r.Unroll) }}
	eng, err := NewEngine(src, Config{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	status, tp, _, err := eng.Measure(testBlock(t, "add rax, rbx"), uarch.Haswell())
	if status != profiler.StatusUnstable || tp != 0 || err == nil {
		t.Fatalf("status=%v tp=%v err=%v, want unstable/0/non-nil", status, tp, err)
	}
}
