package counter

import (
	"strings"
	"testing"
	"time"

	"bhive/internal/backend"
	"bhive/internal/corpus"
	"bhive/internal/profiler"
	"bhive/internal/uarch"
)

// stubCorpus is a small but protocol-covering slice of the generated
// corpus: enough blocks that the hash-scheduled timeout, spike, and
// disagreement injections all fire.
func stubCorpus(t *testing.T) []corpus.Record {
	t.Helper()
	recs := corpus.GenerateAll(0.0005, 7)
	if len(recs) < 50 {
		t.Fatalf("generated corpus too small: %d records", len(recs))
	}
	return recs[:50]
}

func noSleep() Config { return Config{Sleep: func(time.Duration) {}} }

// TestStubDeterminism: two independently constructed stub backends with
// the same seed must agree measurement-for-measurement — status,
// throughput, and every counter — even though the protocol takes
// different-looking paths (retries after injected timeouts). This is the
// property that makes recorded fixture traces reproducible.
func TestStubDeterminism(t *testing.T) {
	recs := stubCorpus(t)
	cpu := uarch.Haswell()

	mk := func() *Backend {
		b, err := NewBackend(NewStub(DefaultStubConfig()), noSleep())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	for i, rec := range recs {
		ma, mb := a.Measure(rec.Block, cpu), b.Measure(rec.Block, cpu)
		if ma.Status != mb.Status || ma.Throughput != mb.Throughput || ma.Counters != mb.Counters {
			t.Fatalf("record %d (%s): measurements diverge:\n  %+v\nvs\n  %+v",
				i, rec.App, ma, mb)
		}
	}

	// The default fault schedule must actually have exercised the
	// interference-filtering and timeout-retry paths over this corpus —
	// otherwise the determinism above proves nothing about them.
	st := a.Engine().Stats()
	if st.FilteredSamples.Load() == 0 {
		t.Error("no samples filtered: spike injection never fired")
	}
	if st.Timeouts.Load() == 0 || st.RunRetries.Load() == 0 {
		t.Errorf("timeouts=%d retries=%d: timeout injection never fired",
			st.Timeouts.Load(), st.RunRetries.Load())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints diverge: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

// TestStubSeedChangesMachine: a different seed is a different "machine" —
// some block must measure differently.
func TestStubSeedChangesMachine(t *testing.T) {
	recs := stubCorpus(t)
	cpu := uarch.Haswell()
	sc := DefaultStubConfig()
	sc.Seed = 2
	a, err := NewBackend(NewStub(DefaultStubConfig()), noSleep())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(NewStub(sc), noSleep())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("seeds 1 and 2 share fingerprint %q", a.Fingerprint())
	}
	for _, rec := range recs {
		ma, mb := a.Measure(rec.Block, cpu), b.Measure(rec.Block, cpu)
		if ma.Status != mb.Status || ma.Throughput != mb.Throughput {
			return // found a diverging block, as a different machine should
		}
	}
	t.Fatal("seeds 1 and 2 agree on every block: seed does not reach the measurement model")
}

// TestStubDisagreesWithSim: cross-validating the counter backend against
// the simulator must find genuine disagreements — both status-level
// (injected cache-miss/misaligned rejections) and throughput-level (the
// systematic skew) — while still agreeing that most blocks are OK. This
// is what makes the xval status-disagreement matrix non-trivial.
func TestStubDisagreesWithSim(t *testing.T) {
	recs := stubCorpus(t)
	cpu := uarch.Haswell()
	cb, err := NewBackend(NewStub(DefaultStubConfig()), noSleep())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := backend.Parse("sim", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bothOK, statusDisagree, tpDiffers int
	for _, rec := range recs {
		mc, ms := cb.Measure(rec.Block, cpu), sim.Measure(rec.Block, cpu)
		switch {
		case mc.Status != ms.Status:
			statusDisagree++
		case mc.Status == profiler.StatusOK:
			bothOK++
			if mc.Throughput != ms.Throughput {
				tpDiffers++
			}
		}
	}
	if statusDisagree == 0 {
		t.Error("no status disagreements: DisagreeEvery injection never fired")
	}
	if bothOK == 0 {
		t.Error("backends never both accepted a block")
	}
	if tpDiffers == 0 {
		t.Error("throughputs identical on every both-OK block: skew not applied")
	}
	t.Logf("over %d blocks: bothOK=%d statusDisagree=%d tpDiffers=%d",
		len(recs), bothOK, statusDisagree, tpDiffers)
}

// TestStubUnfencedEnv: a stub configured with an unpinned environment
// must flow through to the engine's degraded mode.
func TestStubUnfencedEnv(t *testing.T) {
	sc := DefaultStubConfig()
	sc.Env = &Env{CPUPinned: false, FreqPinned: true, Desc: "no pinning"}
	b, err := NewBackend(NewStub(sc), noSleep())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Engine().Unfenced() {
		t.Fatal("unpinned stub env not degraded to unfenced mode")
	}
	if !strings.Contains(b.Fingerprint(), "unfenced") {
		t.Fatalf("fingerprint %q hides the unfenced degradation", b.Fingerprint())
	}
}

// TestCounterScheme: the "counter" spec scheme registered into the
// backend grammar — accepted forms, the gated perf source, and rejection
// of garbage, both at check time and open time.
func TestCounterScheme(t *testing.T) {
	for _, spec := range []string{"counter", "counter:stub", "counter:stub:42"} {
		if err := backend.CheckSpec(spec); err != nil {
			t.Errorf("CheckSpec(%q) = %v, want ok", spec, err)
		}
		b, err := backend.Parse(spec, backend.Options{})
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if b.Name() != "counter" {
			t.Errorf("Parse(%q).Name() = %q", spec, b.Name())
		}
		if err := b.Close(); err != nil {
			t.Errorf("Close(%q): %v", spec, err)
		}
	}

	if err := backend.CheckSpec("counter:perf"); err == nil || !strings.Contains(err.Error(), "perf_event_open") {
		t.Errorf("CheckSpec(counter:perf) = %v, want gated hardware error", err)
	}
	for _, spec := range []string{"counter:nope", "counter:stub:abc"} {
		if err := backend.CheckSpec(spec); err == nil {
			t.Errorf("CheckSpec(%q) accepted", spec)
		}
		if _, err := backend.Parse(spec, backend.Options{}); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}

	// Seed reaches the source: different seeds, different fingerprints.
	b1, err := backend.Parse("counter:stub:1", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := backend.Parse("counter:stub:2", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Fingerprint() == b2.Fingerprint() {
		t.Errorf("seeds 1 and 2 share fingerprint %q", b1.Fingerprint())
	}

	// And the scheme composes with the list grammar the CLIs use.
	list, err := backend.ParseList("sim,counter:stub:7", backend.Options{})
	if err != nil {
		t.Fatalf("ParseList: %v", err)
	}
	if len(list) != 2 || list[0].Name() != "sim" || list[1].Name() != "counter" {
		t.Fatalf("ParseList gave %d backends", len(list))
	}
}
