// Package counter implements a nanoBench-style hardware-counter
// measurement engine (Abel & Reineke, PAPERS.md): per-µarch programmable
// counter sets, warm-up runs, median-of-N aggregation with MAD-based
// interference filtering, per-run timeout/retry with bounded backoff,
// and environment fencing that degrades to a flagged "unfenced" mode
// instead of failing when the CPU or frequency is not pinned.
//
// The engine is source-agnostic: a Source executes one measurement run
// and returns raw counter values. Real hardware plugs in behind that
// interface (a perf_event or nanoBench kernel-module source); CI and
// tests use the deterministic StubSource, which synthesizes counters
// from the static cycle-bound analysis and injects jitter, interference
// spikes, timeouts, and acceptance faults on a seeded schedule — every
// protocol path is exercised hermetically.
//
// Engine measurements flow into the rest of the system through Backend,
// a backend.Backend adapter, so recorded counter traces share the
// content-addressed trace format and the xval cross-validation pipeline.
package counter

import (
	"errors"
	"fmt"
	"strings"

	"bhive/internal/pipeline"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// ID names one logical performance counter the engine can program. The
// set mirrors pipeline.Counters — the counters the BHive acceptance
// protocol reads.
type ID int

const (
	Cycles ID = iota
	Instructions
	Uops
	L1DReadMisses
	L1DWriteMisses
	L1IMisses
	MisalignedLoads
	MisalignedStores
	ContextSwitches
	// Port0 + k is µops issued on execution port k; how many exist is
	// per-µarch (uarch.CPU.NumPorts).
	Port0
)

var idNames = [...]string{
	"cycles", "instructions", "uops", "l1d-read-miss", "l1d-write-miss",
	"l1i-miss", "misaligned-load", "misaligned-store", "context-switches",
}

func (id ID) String() string {
	if int(id) < len(idNames) {
		return idNames[id]
	}
	return fmt.Sprintf("port%d", int(id-Port0))
}

// value reads one logical counter out of a pipeline.Counters.
func value(c *pipeline.Counters, id ID) uint64 {
	switch id {
	case Cycles:
		return c.Cycles
	case Instructions:
		return c.Instructions
	case Uops:
		return c.Uops
	case L1DReadMisses:
		return c.L1DReadMisses
	case L1DWriteMisses:
		return c.L1DWriteMisses
	case L1IMisses:
		return c.L1IMisses
	case MisalignedLoads:
		return c.MisalignedLoads
	case MisalignedStores:
		return c.MisalignedStores
	case ContextSwitches:
		return c.ContextSwitches
	default:
		return c.PortUops[int(id-Port0)]
	}
}

// setValue writes one logical counter into a pipeline.Counters.
func setValue(c *pipeline.Counters, id ID, v uint64) {
	switch id {
	case Cycles:
		c.Cycles = v
	case Instructions:
		c.Instructions = v
	case Uops:
		c.Uops = v
	case L1DReadMisses:
		c.L1DReadMisses = v
	case L1DWriteMisses:
		c.L1DWriteMisses = v
	case L1IMisses:
		c.L1IMisses = v
	case MisalignedLoads:
		c.MisalignedLoads = v
	case MisalignedStores:
		c.MisalignedStores = v
	case ContextSwitches:
		c.ContextSwitches = v
	default:
		c.PortUops[int(id-Port0)] = v
	}
}

// Group is one programmable-counter configuration: the counters a single
// run measures together. Slot 0 is always Cycles — the engine needs the
// cycle count of every run as the interference-filtering reference, the
// same role nanoBench gives its fixed-counter baseline.
type Group []ID

func (g Group) String() string {
	names := make([]string, len(g))
	for i, id := range g {
		names[i] = id.String()
	}
	return strings.Join(names, "+")
}

// programmable is the per-µarch count of general-purpose counters that
// can be programmed at once (the hyperthreading-on figure; Skylake
// exposes all eight with HT off). Unknown µarches get the conservative
// default of 4.
var programmable = map[string]int{
	"ivybridge": 4,
	"haswell":   4,
	"skylake":   8,
}

// GroupsFor partitions the full counter set for one µarch into groups of
// at most its programmable-counter budget, Cycles leading every group.
// The acceptance-protocol counters come first so a budget cut degrades
// port attribution, never the protocol itself.
func GroupsFor(cpu *uarch.CPU) []Group {
	budget := programmable[cpu.Name]
	if budget == 0 {
		budget = 4
	}
	if budget < 2 {
		budget = 2 // Cycles plus at least one programmable slot
	}
	ids := []ID{
		Instructions, Uops, ContextSwitches,
		L1DReadMisses, L1DWriteMisses, L1IMisses,
		MisalignedLoads, MisalignedStores,
	}
	for p := 0; p < cpu.NumPorts; p++ {
		ids = append(ids, Port0+ID(p))
	}
	var groups []Group
	for len(ids) > 0 {
		n := budget - 1 // slot 0 is Cycles
		if n > len(ids) {
			n = len(ids)
		}
		g := append(Group{Cycles}, ids[:n]...)
		ids = ids[n:]
		groups = append(groups, g)
	}
	return groups
}

// Run describes one measurement run the engine asks a Source for.
type Run struct {
	Block  *x86.Block
	CPU    *uarch.CPU
	Unroll int // copies of the block in the measured buffer
	Group  Group
	// Sample is the protocol-wide sample index (monotone across
	// whole-measurement retries, so a retry round draws fresh noise).
	Sample int
	// Attempt is the 0-based per-run retry attempt (bumped when the
	// previous attempt returned an error such as ErrTimeout).
	Attempt int
	// Warmup marks the discarded warm-up runs that precede the samples.
	Warmup bool
}

// Env describes the measurement environment a source runs in. The
// protocol's precondition is a fenced environment — the measurement
// thread pinned to one core and that core's frequency pinned (turbo and
// scaling disabled). An unfenced environment degrades the engine to a
// flagged wider-tolerance mode rather than failing.
type Env struct {
	CPUPinned  bool
	FreqPinned bool
	// Desc is a short human-readable environment summary for logs
	// ("core 3 @ 2.9GHz", "stub").
	Desc string
}

// Fenced reports whether the environment meets the protocol's
// interference preconditions.
func (e Env) Fenced() bool { return e.CPUPinned && e.FreqPinned }

// ErrTimeout is the error a Source returns when one run exceeded its
// time budget; the engine retries it with bounded backoff.
var ErrTimeout = errors.New("counter: measurement run timed out")

// Source executes measurement runs. Implementations must be safe for
// concurrent Measure calls and must return counters for exactly the
// counters in r.Group (others zero).
type Source interface {
	// Name is the short stable source identifier ("stub", "perf").
	Name() string
	// Fingerprint captures everything that changes measured values
	// (seed, fault schedule, hardware identity).
	Fingerprint() string
	// Env reports the measurement environment; the engine checks it once
	// at construction.
	Env() Env
	// Measure executes one run.
	Measure(r Run) (pipeline.Counters, error)
	// Close releases the source (hardware sources unprogram counters).
	Close() error
}
