package corpus

import (
	"errors"
	"strings"
	"testing"
)

// TestReadAsmBasic: a well-formed listing with headers, comments, mixed
// Intel/AT&T syntax and an explicit frequency parses into records whose
// canonical hex matches what a CSV submission of the same blocks carries.
func TestReadAsmBasic(t *testing.T) {
	listing := `
# leading comment
@ gcc 12
xor ecx, ecx        # intel operand order
divl %ecx           ; at&t operand order

@ llvm
nop
`
	recs, err := ReadAsm(strings.NewReader(listing))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		app  string
		freq uint64
		hex  string
	}{
		{"gcc", 12, "31c9f7f1"},
		{"llvm", 1, "90"},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		r := recs[i]
		if r.App != w.app || r.Freq != w.freq {
			t.Errorf("record %d = (%s, %d), want (%s, %d)", i, r.App, r.Freq, w.app, w.freq)
		}
		h, err := r.Block.Hex()
		if err != nil {
			t.Fatalf("record %d does not encode: %v", i, err)
		}
		if h != w.hex {
			t.Errorf("record %d hex = %s, want %s", i, h, w.hex)
		}
	}
}

// TestReadAsmMatchesCSV: reading a corpus as assembly and as hex CSV must
// produce identical records — the invariant the server's job-id unification
// rests on.
func TestReadAsmMatchesCSV(t *testing.T) {
	asmRecs, err := ReadAsm(strings.NewReader("@ a 2\nadd rax, rbx\nnop\n@ b\nimul eax, ecx, 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, asmRecs); err != nil {
		t.Fatal(err)
	}
	csvRecs, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvRecs) != len(asmRecs) {
		t.Fatalf("round trip changed record count: %d -> %d", len(asmRecs), len(csvRecs))
	}
	for i := range asmRecs {
		ah, _ := asmRecs[i].Block.Hex()
		ch, _ := csvRecs[i].Block.Hex()
		if ah != ch || asmRecs[i].App != csvRecs[i].App || asmRecs[i].Freq != csvRecs[i].Freq {
			t.Errorf("record %d drifted through CSV: (%s,%s,%d) -> (%s,%s,%d)",
				i, asmRecs[i].App, ah, asmRecs[i].Freq, csvRecs[i].App, ch, csvRecs[i].Freq)
		}
	}
}

// TestReadAsmErrors: every malformed listing fails with a *ParseError
// pointing at the offending 1-based line.
func TestReadAsmErrors(t *testing.T) {
	cases := []struct {
		name, in string
		wantLine int
		wantSub  string
	}{
		{"empty", "", 1, "no blocks"},
		{"comments only", "# nothing\n; here\n", 1, "no blocks"},
		{"inst before header", "nop\n", 1, "before any"},
		{"bad freq", "@ app zero\nnop\n", 1, "bad frequency"},
		{"too many fields", "@ app 1 extra\nnop\n", 1, "want '@ <app> [freq]'"},
		{"empty block", "@ a\n@ b\nnop\n", 1, "no instructions"},
		{"empty trailing block", "@ a\nnop\n@ b\n", 3, "no instructions"},
		{"bad instruction", "@ a\nnop\nbogus xyz\n", 3, ""},
		{"duplicate block", "@ a\nnop\n@ a\nnop\n", 3, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadAsm(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("ReadAsm accepted a malformed listing")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
			if pe.Line != tc.wantLine {
				t.Errorf("error line = %d, want %d (%v)", pe.Line, tc.wantLine, err)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRawRecords: the lint-facing conversion canonicalizes hex and numbers
// records by ordinal.
func TestRawRecords(t *testing.T) {
	recs, err := ReadAsm(strings.NewReader("@ a\nnop\n@ b 5\nxor ecx, ecx\n"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RawRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Hex != "90" || rows[0].Line != 1 || rows[0].App != "a" {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Hex != "31c9" || rows[1].Line != 2 || rows[1].Freq != 5 {
		t.Errorf("row 1 = %+v", rows[1])
	}
}
