package corpus

import (
	"math/rand"

	"bhive/internal/x86"
)

// This file reproduces the paper's motivation for dynamic collection:
// "precise static disassembly of x86 binaries is undecidable ... we
// discovered cases where static disassemblers cannot distinguish padding
// bytes from instructions." BuildImage lays blocks out the way a linker
// does — with alignment padding between functions — and LinearSweep is the
// naive static disassembler that walks the bytes and misparses across the
// padding.

// Image is a synthetic text section.
type Image struct {
	Bytes []byte
	// BlockOffsets are the true starting offsets of each block (the ground
	// truth a dynamic tracer observes).
	BlockOffsets []int
}

// BuildImage concatenates the blocks' machine code with x86 padding bytes
// (single-byte INT3-style 0xCC fill and fragments that alias real opcode
// prefixes) between them, aligned to 16 bytes as linkers emit functions.
func BuildImage(blocks []*x86.Block, seed int64) (*Image, error) {
	rng := rand.New(rand.NewSource(seed))
	img := &Image{}
	for _, b := range blocks {
		code, err := b.Bytes()
		if err != nil {
			return nil, err
		}
		img.BlockOffsets = append(img.BlockOffsets, len(img.Bytes))
		img.Bytes = append(img.Bytes, code...)
		// Pad to 16 bytes with bytes that look like instruction prefixes
		// half of the time — exactly what confuses a linear sweep.
		for len(img.Bytes)%16 != 0 {
			if rng.Intn(2) == 0 {
				img.Bytes = append(img.Bytes, 0xCC)
			} else {
				img.Bytes = append(img.Bytes, []byte{0x66, 0x48, 0x0F}[rng.Intn(3)])
			}
		}
	}
	return img, nil
}

// SweepResult summarizes a linear-sweep disassembly attempt.
type SweepResult struct {
	Insts      int // instructions decoded
	Errors     int // positions where decoding failed and resynced
	Misaligned int // true block starts the sweep decoded mid-instruction
}

// LinearSweep decodes the image from offset 0, resynchronizing one byte
// after each failure — the classic static approach that the paper rejects
// in favor of dynamic collection.
func LinearSweep(img *Image) SweepResult {
	var res SweepResult
	covered := make(map[int]bool) // offsets decoded as instruction starts
	off := 0
	for off < len(img.Bytes) {
		_, n, err := x86.Decode(img.Bytes[off:])
		if err != nil {
			res.Errors++
			off++
			continue
		}
		covered[off] = true
		res.Insts++
		off += n
	}
	for _, o := range img.BlockOffsets {
		if !covered[o] {
			res.Misaligned++
		}
	}
	return res
}
