package corpus

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzReadCSV fuzzes the corpus interchange parser. Invariants:
//
//   - ReadCSV never panics, whatever the bytes;
//   - every failure is a *ParseError carrying a plausible line number
//     (the evaluation service surfaces it as structured data);
//   - a successful read round-trips: WriteCSV of the records re-reads to
//     the same corpus, and ReadCSVRaw agrees row-for-row.
func FuzzReadCSV(f *testing.F) {
	// The paper corpus in interchange form (tiny sample) seeds the happy
	// path with real generated blocks.
	var sample bytes.Buffer
	if err := WriteCSV(&sample, GenerateAll(0.0002, 7)); err != nil {
		f.Fatal(err)
	}
	f.Add(sample.String())

	f.Add("app,hex,freq\ngzip,4889c8,12\n")
	f.Add("gzip,4889c8,12\n")                         // no header
	f.Add("app,hex,freq\ngzip,4889c8\n")              // field count
	f.Add("app,hex,freq\ngzip,4889c8,notanumber\n")   // bad frequency
	f.Add("app,hex,freq\ngzip,zz,1\n")                // bad hex
	f.Add("app,hex,freq\ngzip,4889c8,1\ngzip,4889c8,2\n") // duplicate row
	f.Add("app,hex,freq\ngzip,4889C8,1\ngzip,4889c8,2\n") // duplicate, case-folded hex
	f.Add("")
	f.Add("\n\n\n")
	f.Add("app,hex,freq\n" + strings.Repeat("a", 1<<20)) // over-long line
	f.Add("app,hex,freq\ngzip,,1\n")                     // empty block

	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ReadCSV error is not a *ParseError: %v", err)
			}
			if pe.Line < 1 {
				t.Fatalf("ParseError.Line = %d, want >= 1", pe.Line)
			}
			if pe.Unwrap() == nil {
				t.Fatal("ParseError wraps nothing")
			}
			return
		}

		// Raw reading must accept everything the strict reader accepts,
		// row for row.
		raw, rerr := ReadCSVRaw(strings.NewReader(input))
		if rerr != nil {
			t.Fatalf("ReadCSV ok but ReadCSVRaw failed: %v", rerr)
		}
		if len(raw) != len(recs) {
			t.Fatalf("raw rows = %d, decoded records = %d", len(raw), len(recs))
		}

		// Write/read round trip preserves the corpus.
		var buf bytes.Buffer
		if werr := WriteCSV(&buf, recs); werr != nil {
			t.Fatalf("WriteCSV of a just-read corpus failed: %v", werr)
		}
		again, aerr := ReadCSV(&buf)
		if aerr != nil {
			t.Fatalf("round trip failed: %v", aerr)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip: %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i].App != recs[i].App || again[i].Freq != recs[i].Freq {
				t.Fatalf("record %d changed: (%s, %d) -> (%s, %d)",
					i, recs[i].App, recs[i].Freq, again[i].App, again[i].Freq)
			}
			h1, e1 := recs[i].Block.Hex()
			h2, e2 := again[i].Block.Hex()
			if e1 != nil || e2 != nil || h1 != h2 {
				t.Fatalf("record %d block hex changed: %q -> %q (%v, %v)", i, h1, h2, e1, e2)
			}
		}
	})
}
