package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bhive/internal/x86"
)

// WriteCSV stores records in the suite's interchange format:
// a header line followed by "app,hex,freq" rows.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "app,hex,freq"); err != nil {
		return err
	}
	for i := range recs {
		hexStr, err := recs[i].Block.Hex()
		if err != nil {
			return fmt.Errorf("corpus: encode record %d: %w", i, err)
		}
		if _, err := fmt.Fprintf(bw, "%s,%s,%d\n", recs[i].App, hexStr, recs[i].Freq); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseError is a corpus CSV read failure attributed to one row. API
// clients submit corpora over the evaluation service, so "which line is
// bad" must survive as structured data, not just prose.
type ParseError struct {
	// Line is the 1-based CSV line of the offending row.
	Line int
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("corpus: line %d: %v", e.Line, e.Err) }
func (e *ParseError) Unwrap() error { return e.Err }

// RawRecord is one corpus CSV row before block decoding: what auditing
// tools need so that undecodable hex is reported per row instead of
// aborting the whole read.
type RawRecord struct {
	App  string
	Hex  string
	Freq uint64
	// Line is the 1-based CSV line the row came from.
	Line int
}

// forEachRow drives the shared CSV row scan: header and blank lines are
// skipped, field count and frequency are validated, duplicate (app, hex)
// rows are rejected, and every error — including scanner failures such as
// an over-long line — carries the offending line number as a *ParseError.
func forEachRow(r io.Reader, row func(raw RawRecord) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	seen := make(map[string]int) // app\x00hex -> first line
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "app,")) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return &ParseError{Line: line, Err: fmt.Errorf("want 3 fields, got %d", len(parts))}
		}
		freq, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return &ParseError{Line: line, Err: fmt.Errorf("bad frequency %q", parts[2])}
		}
		key := parts[0] + "\x00" + strings.ToLower(parts[1])
		if first, dup := seen[key]; dup {
			return &ParseError{Line: line, Err: fmt.Errorf("duplicate block row (same app and hex as line %d)", first)}
		}
		seen[key] = line
		if err := row(RawRecord{App: parts[0], Hex: parts[1], Freq: freq, Line: line}); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// The scanner died reading the line after the last complete one.
		return &ParseError{Line: line + 1, Err: err}
	}
	return nil
}

// ReadCSVRaw loads corpus rows without decoding the hex. Malformed rows
// (wrong field count, bad frequency, duplicate app+hex) still fail the
// read with a *ParseError naming the offending line; hex validity is
// deliberately not checked — that is the auditor's job.
func ReadCSVRaw(r io.Reader) ([]RawRecord, error) {
	var out []RawRecord
	err := forEachRow(r, func(raw RawRecord) error {
		out = append(out, raw)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadCSV loads records written by WriteCSV (or by cmd/bhive-collect),
// decoding each block from its machine-code hex. Every failure is a
// *ParseError carrying the 1-based line of the offending row.
func ReadCSV(r io.Reader) ([]Record, error) {
	var out []Record
	err := forEachRow(r, func(raw RawRecord) error {
		block, err := x86.BlockFromHex(raw.Hex)
		if err != nil {
			return &ParseError{Line: raw.Line, Err: err}
		}
		out = append(out, Record{App: raw.App, Block: block, Freq: raw.Freq})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
