package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bhive/internal/x86"
)

// WriteCSV stores records in the suite's interchange format:
// a header line followed by "app,hex,freq" rows.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "app,hex,freq"); err != nil {
		return err
	}
	for i := range recs {
		hexStr, err := recs[i].Block.Hex()
		if err != nil {
			return fmt.Errorf("corpus: encode record %d: %w", i, err)
		}
		if _, err := fmt.Fprintf(bw, "%s,%s,%d\n", recs[i].App, hexStr, recs[i].Freq); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV loads records written by WriteCSV (or by cmd/bhive-collect),
// decoding each block from its machine-code hex.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "app,")) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("corpus: line %d: want 3 fields, got %d", line, len(parts))
		}
		block, err := x86.BlockFromHex(parts[1])
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		freq, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: bad frequency %q", line, parts[2])
		}
		out = append(out, Record{App: parts[0], Block: block, Freq: freq})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
