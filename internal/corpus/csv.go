package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bhive/internal/x86"
)

// WriteCSV stores records in the suite's interchange format:
// a header line followed by "app,hex,freq" rows.
func WriteCSV(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "app,hex,freq"); err != nil {
		return err
	}
	for i := range recs {
		hexStr, err := recs[i].Block.Hex()
		if err != nil {
			return fmt.Errorf("corpus: encode record %d: %w", i, err)
		}
		if _, err := fmt.Fprintf(bw, "%s,%s,%d\n", recs[i].App, hexStr, recs[i].Freq); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RawRecord is one corpus CSV row before block decoding: what auditing
// tools need so that undecodable hex is reported per row instead of
// aborting the whole read.
type RawRecord struct {
	App  string
	Hex  string
	Freq uint64
	// Line is the 1-based CSV line the row came from.
	Line int
}

// ReadCSVRaw loads corpus rows without decoding the hex. Malformed rows
// (wrong field count, bad frequency) still fail the read; hex validity is
// deliberately not checked — that is the auditor's job.
func ReadCSVRaw(r io.Reader) ([]RawRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var out []RawRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "app,")) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("corpus: line %d: want 3 fields, got %d", line, len(parts))
		}
		freq, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: bad frequency %q", line, parts[2])
		}
		out = append(out, RawRecord{App: parts[0], Hex: parts[1], Freq: freq, Line: line})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadCSV loads records written by WriteCSV (or by cmd/bhive-collect),
// decoding each block from its machine-code hex.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "app,")) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("corpus: line %d: want 3 fields, got %d", line, len(parts))
		}
		block, err := x86.BlockFromHex(parts[1])
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		freq, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("corpus: line %d: bad frequency %q", line, parts[2])
		}
		out = append(out, Record{App: parts[0], Block: block, Freq: freq})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
