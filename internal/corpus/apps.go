// Package corpus generates and collects the BHive benchmark suite: basic
// blocks from eleven modelled applications (the paper's nine open-source
// programs plus the Spanner and Dremel case-study workloads).
//
// The real suite was collected by running each application under a
// DynamoRIO client that records every basic block executed, together with
// its execution frequency. This reproduction cannot ship those proprietary
// binaries and traces, so each application is modelled as a seeded
// control-flow-graph generator whose basic-block instruction mix is tuned
// to the domain the paper describes (general-purpose pointer-chasing code
// for Clang/SQLite/Redis, bit manipulation for Gzip/OpenSSL, hand-vectorized
// kernels for OpenBLAS/Eigen/TensorFlow/Embree/FFmpeg, load-dominated
// server code for Spanner/Dremel). The collector then walks the CFGs the
// way a dynamic tracer would, recording blocks with frequencies.
package corpus

// kind enumerates the instruction classes the generators mix.
type kind int

const (
	kALU kind = iota // scalar register arithmetic/logic
	kLoad
	kStore
	kRMWMem   // read-modify-write to memory
	kShiftBit // shifts, rotates, bit scans, byte swaps
	kLEA
	kMulDiv
	kCmpFlag // cmp/test + cmov/setcc consumers
	kVecFP   // packed/scalar FP arithmetic (incl. FMA where available)
	kVecLoad
	kVecStore
	kVecInt // packed integer
	kShuffle
	kConvert
	kZeroIdiom
	kStack // push/pop
	numKinds
)

// mix is one application's generation profile.
type mix struct {
	weights [numKinds]float64

	useAVX bool // VEX encodings
	use256 bool // 256-bit registers
	useFMA bool // fused multiply-add (Haswell+ only in hardware)

	// regOnlyFrac is the fraction of blocks with no memory traffic at all
	// (these are the only blocks the no-mapping baseline can profile).
	regOnlyFrac float64
	// bigBlockFrac is the fraction of unrolled-kernel blocks long enough
	// that a 100x unroll overflows the L1 instruction cache.
	bigBlockFrac float64
	// badPtrFrac is the fraction of blocks that dereference an address the
	// monitor cannot legally map (low pages); these crash under every
	// methodology.
	badPtrFrac float64
	// misalignFrac is the fraction of blocks with a deliberately
	// line-splitting access.
	misalignFrac float64
	// subnormalFrac is the fraction of blocks whose FP inputs are
	// subnormal (affected by gradual underflow unless FTZ/DAZ is set).
	subnormalFrac float64
	// hotVectorized routes hot inner-loop blocks to the vector-heavy
	// generator (numeric libraries keep their SIMD in hot kernels).
	hotVectorized bool
	// hotLoadHeavy routes hot inner-loop blocks to a load-dominated
	// generator (server code spends its time scanning and chasing
	// pointers, as the paper observes for Spanner and Dremel).
	hotLoadHeavy bool

	lenMean int // mean instructions per ordinary block
}

// App is one source application of the benchmark suite.
type App struct {
	Name   string
	Domain string
	// Blocks is the full-scale block count (Table "apps" of the paper).
	Blocks int
	// InTable3 marks the nine applications of the paper's Table III;
	// OpenSSL appears in the paper's text and figures but not the table,
	// and Spanner/Dremel belong to the separate case study.
	InTable3 bool

	mix mix
}

func weights(pairs map[kind]float64) [numKinds]float64 {
	var w [numKinds]float64
	for k, v := range pairs {
		w[k] = v
	}
	return w
}

// generalPurpose is the shared flavor of compiler/database-style code:
// load-heavy, branchy (cmp/flag traffic), barely vectorized.
func generalPurpose(loads, stores float64) mix {
	return mix{
		weights: weights(map[kind]float64{
			kALU: 22, kLoad: loads, kStore: stores, kRMWMem: 1,
			kShiftBit: 4, kLEA: 6, kMulDiv: 1.2, kCmpFlag: 10,
			kVecFP: 0.6, kVecLoad: 0.5, kVecStore: 0.3, kVecInt: 0.4,
			kShuffle: 0.3, kConvert: 0.4, kZeroIdiom: 2.5, kStack: 2,
		}),
		useAVX:        false,
		regOnlyFrac:   0.17,
		bigBlockFrac:  0.002,
		badPtrFrac:    0.05,
		misalignFrac:  0.0018,
		subnormalFrac: 0.0002,
		lenMean:       5,
	}
}

// numericKernel is the shared flavor of hand-vectorized math libraries.
// Most *static* blocks are scalar glue (framework code, index arithmetic);
// the vectorization concentrates in the hot inner-loop blocks and the big
// unrolled kernels, so it dominates dynamically, as the paper's
// apps-vs-clusters figure shows.
func numericKernel(avx, use256, fma bool) mix {
	return mix{
		weights: weights(map[kind]float64{
			kALU: 20, kLoad: 15, kStore: 6, kRMWMem: 0.75,
			kShiftBit: 3, kLEA: 5, kMulDiv: 0.8, kCmpFlag: 8,
			kVecFP: 6, kVecLoad: 3.5, kVecStore: 1.5, kVecInt: 1,
			kShuffle: 1.2, kConvert: 1, kZeroIdiom: 2, kStack: 1.5,
		}),
		useAVX:        avx,
		use256:        use256,
		useFMA:        fma,
		hotVectorized: true,
		regOnlyFrac:   0.13,
		bigBlockFrac:  0.08,
		badPtrFrac:    0.04,
		misalignFrac:  0.0018,
		subnormalFrac: 0.004,
		lenMean:       7,
	}
}

// Apps returns the paper's open-source applications with their full-scale
// block counts (Table "apps": the nine table rows sum to 358,561; OpenSSL
// additionally appears in the text and the per-application figures).
func Apps() []*App {
	openblas := numericKernel(true, true, true)
	openblas.bigBlockFrac = 0.12
	openblas.weights[kVecFP] = 9 // hand-written assembly kernels throughout

	eigen := numericKernel(true, false, false)
	eigen.weights[kLoad] += 4 // sparse workloads chase indices

	tf := numericKernel(true, true, true)
	tf.weights[kALU] += 6 // framework glue code around the kernels
	tf.weights[kLoad] += 4
	tf.bigBlockFrac = 0.07

	embree := numericKernel(true, true, false)
	embree.weights[kShuffle] += 4 // ispc-generated masks and swizzles
	embree.weights[kCmpFlag] += 3

	ffmpeg := numericKernel(false, false, false)
	ffmpeg.weights[kVecFP] = 1 // DSP kernels are mostly packed integer
	ffmpeg.weights[kVecInt] = 6
	ffmpeg.weights[kShuffle] = 2.5
	ffmpeg.bigBlockFrac = 0.05

	gzip := generalPurpose(16, 7)
	gzip.weights[kShiftBit] = 14 // CRC and Huffman bit twiddling
	gzip.weights[kALU] = 26
	gzip.regOnlyFrac = 0.20

	openssl := generalPurpose(14, 6)
	openssl.weights[kShiftBit] = 16 // rotate-heavy crypto rounds
	openssl.weights[kALU] = 28
	openssl.weights[kMulDiv] = 2
	openssl.regOnlyFrac = 0.22

	redis := generalPurpose(18, 8)
	redis.regOnlyFrac = 0.18

	sqlite := generalPurpose(20, 8)
	sqlite.regOnlyFrac = 0.16

	llvm := generalPurpose(19, 7)
	llvm.regOnlyFrac = 0.17

	return []*App{
		{Name: "OpenBlas", Domain: "Scientific Computing", Blocks: 19032, InTable3: true, mix: openblas},
		{Name: "Redis", Domain: "Database", Blocks: 9343, InTable3: true, mix: redis},
		{Name: "SQLite", Domain: "Database", Blocks: 8871, InTable3: true, mix: sqlite},
		{Name: "GZip", Domain: "Compression", Blocks: 2272, InTable3: true, mix: gzip},
		{Name: "TensorFlow", Domain: "Machine Learning", Blocks: 71988, InTable3: true, mix: tf},
		{Name: "Clang/LLVM", Domain: "Compiler", Blocks: 212758, InTable3: true, mix: llvm},
		{Name: "Eigen", Domain: "Scientific Computing", Blocks: 4545, InTable3: true, mix: eigen},
		{Name: "Embree", Domain: "Ray Tracing", Blocks: 12602, InTable3: true, mix: embree},
		{Name: "FFmpeg", Domain: "Multimedia", Blocks: 17150, InTable3: true, mix: ffmpeg},
		{Name: "OpenSSL", Domain: "Cryptography", Blocks: 11247, InTable3: false, mix: openssl},
	}
}

// GoogleApps returns the Spanner and Dremel case-study workloads: server
// code spending 40–50% of its time in load-dominated blocks, with notably
// more partially-vectorized code than the open-source general-purpose apps.
func GoogleApps() []*App {
	server := func(loadW float64) mix {
		m := generalPurpose(loadW, 8)
		m.weights[kVecFP] = 3
		m.weights[kVecLoad] = 2.5
		m.weights[kVecInt] = 2
		m.weights[kALU] = 16
		m.useAVX = true
		m.hotLoadHeavy = true
		m.hotVectorized = true
		m.regOnlyFrac = 0.12
		m.badPtrFrac = 0.035
		return m
	}
	spanner := server(34)
	dremel := server(42)
	return []*App{
		{Name: "Spanner", Domain: "Distributed Database", Blocks: 100000, mix: spanner},
		{Name: "Dremel", Domain: "Query Engine", Blocks: 100000, mix: dremel},
	}
}

// AppByName finds an application model by name across both sets.
func AppByName(name string) *App {
	for _, a := range Apps() {
		if a.Name == name {
			return a
		}
	}
	for _, a := range GoogleApps() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
