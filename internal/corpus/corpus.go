package corpus

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"bhive/internal/x86"
)

// Record is one collected basic block with its dynamic execution frequency,
// as a DynamoRIO-style tracer would report it.
type Record struct {
	App   string
	Block *x86.Block
	// Freq is the number of times the block executed during collection.
	Freq uint64
}

// appSeed derives a per-application seed so corpora are stable regardless
// of generation order.
func appSeed(name string, seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Generate collects the application's basic blocks at the given scale
// (1.0 = the paper's full counts). Blocks are organized into synthetic
// functions with loop nests; the collector walks them to assign dynamic
// execution frequencies, so hot inner blocks carry most of the runtime
// weight (and, for numeric applications, skew vectorized).
func (a *App) Generate(scale float64, seed int64) []Record {
	n := int(math.Round(float64(a.Blocks) * scale))
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(appSeed(a.Name, seed)))
	out := make([]Record, 0, n)

	for len(out) < n {
		// One synthetic function: 3–12 blocks with a loop nest.
		fnBlocks := 3 + rng.Intn(10)
		if fnBlocks > n-len(out) {
			fnBlocks = n - len(out)
		}
		// Function call count: heavy-tailed (a few very hot functions).
		calls := uint64(1 + rng.Intn(10))
		if rng.Intn(8) == 0 {
			calls *= uint64(100 + rng.Intn(10000))
		}

		mult := uint64(1)
		loopLeft := 0
		for b := 0; b < fnBlocks; b++ {
			if loopLeft == 0 && rng.Intn(4) == 0 {
				// Enter a loop spanning the next few blocks.
				trip := uint64(1) << (1 + rng.Intn(6)) // 2..64 iterations
				mult *= trip
				loopLeft = 1 + rng.Intn(3)
			} else if loopLeft > 0 {
				loopLeft--
				if loopLeft == 0 {
					mult = 1
				}
			}
			freq := calls * mult
			// Hot blocks are the innermost loop bodies (deep multipliers)
			// and, for server workloads, the bodies of very hot functions:
			// both are statically rare but dynamically dominant.
			hot := mult >= 64 || (a.mix.hotLoadHeavy && calls >= 20000)
			out = append(out, Record{
				App:   a.Name,
				Block: a.generate(rng, hot),
				Freq:  freq,
			})
		}
	}
	return out[:n]
}

// GenerateAll collects the full open-source suite (the nine Table III
// applications plus OpenSSL) at the given scale.
func GenerateAll(scale float64, seed int64) []Record {
	var out []Record
	for _, a := range Apps() {
		out = append(out, a.Generate(scale, seed)...)
	}
	return out
}

// GenerateTable3 collects only the nine applications of the paper's
// Table III.
func GenerateTable3(scale float64, seed int64) []Record {
	var out []Record
	for _, a := range Apps() {
		if a.InTable3 {
			out = append(out, a.Generate(scale, seed)...)
		}
	}
	return out
}

// ByApp groups records by application, preserving order.
func ByApp(recs []Record) map[string][]*Record {
	m := make(map[string][]*Record)
	for i := range recs {
		m[recs[i].App] = append(m[recs[i].App], &recs[i])
	}
	return m
}

// TopByFreq returns the n most frequently executed records (the case study
// profiles the 100,000 hottest blocks of Spanner and Dremel).
func TopByFreq(recs []Record, n int) []Record {
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Freq > sorted[j].Freq })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Table3Total is the full-scale block count of the paper's Table III.
const Table3Total = 358561
