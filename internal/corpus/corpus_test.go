package corpus

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"bhive/internal/profiler"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func TestTable3Counts(t *testing.T) {
	total := 0
	for _, a := range Apps() {
		if a.InTable3 {
			total += a.Blocks
		}
	}
	if total != Table3Total {
		t.Fatalf("Table III total %d, want %d", total, Table3Total)
	}
	want := map[string]int{
		"OpenBlas": 19032, "Redis": 9343, "SQLite": 8871, "GZip": 2272,
		"TensorFlow": 71988, "Clang/LLVM": 212758, "Eigen": 4545,
		"Embree": 12602, "FFmpeg": 17150,
	}
	for _, a := range Apps() {
		if !a.InTable3 {
			continue
		}
		if want[a.Name] != a.Blocks {
			t.Errorf("%s: %d blocks, want %d", a.Name, a.Blocks, want[a.Name])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := AppByName("GZip")
	r1 := a.Generate(0.1, 42)
	r2 := a.Generate(0.1, 42)
	if len(r1) != len(r2) {
		t.Fatal("length mismatch")
	}
	for i := range r1 {
		h1, _ := r1[i].Block.Hex()
		h2, _ := r2[i].Block.Hex()
		if h1 != h2 || r1[i].Freq != r2[i].Freq {
			t.Fatalf("record %d differs", i)
		}
	}
	r3 := a.Generate(0.1, 43)
	h1, _ := r1[0].Block.Hex()
	h3, _ := r3[0].Block.Hex()
	if h1 == h3 {
		t.Fatal("different seeds should differ")
	}
}

func TestGeneratedBlocksEncodeAndDecode(t *testing.T) {
	for _, a := range Apps() {
		recs := a.Generate(0.005, 1)
		for _, r := range recs {
			raw, err := r.Block.Bytes()
			if err != nil {
				t.Fatalf("%s: encode: %v", a.Name, err)
			}
			insts, err := x86.DecodeBlock(raw)
			if err != nil {
				t.Fatalf("%s: decode: %v\n%s", a.Name, err, r.Block)
			}
			if len(insts) != len(r.Block.Insts) {
				t.Fatalf("%s: decode count mismatch", a.Name)
			}
		}
	}
}

func TestCorpusProfileRates(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep")
	}
	// The ablation shape of Table I: baseline profiles a small minority
	// (the register-only blocks), mapping the vast majority, the derived
	// method more still.
	recs := GenerateTable3(0.004, 7)
	if len(recs) < 1000 {
		t.Fatalf("scale too small: %d", len(recs))
	}

	rate := func(opts profiler.Options) float64 {
		p := profiler.New(uarch.Haswell(), opts)
		ok := 0
		for i := range recs {
			if p.Profile(recs[i].Block).Status == profiler.StatusOK {
				ok++
			}
		}
		return float64(ok) / float64(len(recs))
	}

	base := rate(profiler.BaselineOptions())
	mapped := rate(profiler.MappingOptions())
	full := rate(profiler.DefaultOptions())

	t.Logf("profiled: baseline %.2f%%, mapping %.2f%%, full %.2f%% (paper: 16.65 / 91.28 / 94.24)",
		100*base, 100*mapped, 100*full)

	if base < 0.08 || base > 0.30 {
		t.Errorf("baseline rate %.3f outside the paper's regime (~0.17)", base)
	}
	if mapped < 0.80 || mapped > 0.97 {
		t.Errorf("mapping rate %.3f outside the paper's regime (~0.91)", mapped)
	}
	if full <= mapped {
		t.Errorf("derived unrolling must recover blocks: %.3f vs %.3f", full, mapped)
	}
	if full < 0.88 {
		t.Errorf("full methodology rate %.3f too low (~0.94 expected)", full)
	}
}

func TestFrequenciesHeavyTailed(t *testing.T) {
	recs := AppByName("TensorFlow").Generate(0.02, 3)
	var total, max uint64
	for _, r := range recs {
		total += r.Freq
		if r.Freq > max {
			max = r.Freq
		}
	}
	if max < total/100 {
		t.Fatalf("expected a heavy tail: max %d of total %d", max, total)
	}
	top := TopByFreq(recs, 10)
	if top[0].Freq < top[9].Freq {
		t.Fatal("TopByFreq must sort descending")
	}
}

func TestGoogleAppsLoadDominated(t *testing.T) {
	for _, a := range GoogleApps() {
		recs := a.Generate(0.01, 5)
		loads, insts := 0, 0
		for _, r := range recs {
			loads += r.Block.NumLoads()
			insts += len(r.Block.Insts)
		}
		frac := float64(loads) / float64(insts)
		if frac < 0.18 {
			t.Errorf("%s: load fraction %.2f too low for a server workload", a.Name, frac)
		}
	}
}

func TestVectorizationSkew(t *testing.T) {
	vecFrac := func(name string) float64 {
		recs := AppByName(name).Generate(0.02, 9)
		vec := 0
		for _, r := range recs {
			if r.Block.HasVector() {
				vec++
			}
		}
		return float64(vec) / float64(len(recs))
	}
	blas, llvm := vecFrac("OpenBlas"), vecFrac("Clang/LLVM")
	if blas < 2*llvm {
		t.Fatalf("OpenBLAS (%.2f) must be far more vectorized than LLVM (%.2f)", blas, llvm)
	}
}

func TestStaticDisassemblyConfusion(t *testing.T) {
	recs := AppByName("SQLite").Generate(0.02, 11)
	blocks := make([]*x86.Block, 0, len(recs))
	for i := range recs {
		blocks = append(blocks, recs[i].Block)
	}
	img, err := BuildImage(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := LinearSweep(img)
	if res.Errors == 0 && res.Misaligned == 0 {
		t.Fatal("the padding bytes should confuse a linear sweep somewhere")
	}
	t.Logf("linear sweep: %d insts, %d errors, %d/%d block starts missed",
		res.Insts, res.Errors, res.Misaligned, len(blocks))
}

func TestCSVRoundtrip(t *testing.T) {
	recs := AppByName("Redis").Generate(0.01, 3)
	var buf strings.Builder
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].App != recs[i].App || got[i].Freq != recs[i].Freq {
			t.Fatalf("record %d metadata mismatch", i)
		}
		h1, _ := got[i].Block.Hex()
		h2, _ := recs[i].Block.Hex()
		if h1 != h2 {
			t.Fatalf("record %d block mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("app,hex,freq\nfoo,zz,1\n")); err == nil {
		t.Fatal("bad hex must error")
	}
	if _, err := ReadCSV(strings.NewReader("foo,90\n")); err == nil {
		t.Fatal("missing fields must error")
	}
	if _, err := ReadCSV(strings.NewReader("foo,90,notanumber\n")); err == nil {
		t.Fatal("bad frequency must error")
	}
	recs, err := ReadCSV(strings.NewReader("app,hex,freq\n\nfoo,90,5\n"))
	if err != nil || len(recs) != 1 || recs[0].Freq != 5 {
		t.Fatalf("blank lines and header must be tolerated: %v %v", recs, err)
	}
}

// TestReadCSVErrorLineNumbers pins the structured diagnostics API-submitted
// corpora depend on: every failure is a *ParseError naming the 1-based line
// of the offending row.
func TestReadCSVErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  int
	}{
		{"bad hex", "app,hex,freq\nfoo,90,1\nfoo,zz,1\n", 3},
		{"missing fields", "app,hex,freq\nfoo,90\n", 2},
		{"bad frequency", "app,hex,freq\n\nfoo,90,notanumber\n", 3},
		{"duplicate row", "app,hex,freq\nfoo,90,1\nbar,90,2\nfoo,90,9\n", 4},
	}
	for _, tc := range cases {
		_, err := ReadCSV(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *ParseError", tc.name, err)
			continue
		}
		if pe.Line != tc.line {
			t.Errorf("%s: reported line %d, want %d (%v)", tc.name, pe.Line, tc.line, err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("line %d", tc.line)) {
			t.Errorf("%s: message %q does not name line %d", tc.name, err, tc.line)
		}
	}
}

func TestReadCSVRejectsDuplicates(t *testing.T) {
	// Same hex under different apps is legitimate (distinct rows of the
	// interchange format); the same (app, hex) pair is a duplicate even if
	// the frequency differs, and the error names both lines.
	if _, err := ReadCSV(strings.NewReader("app,hex,freq\na,90,1\nb,90,1\n")); err != nil {
		t.Fatalf("same hex under different apps must be accepted: %v", err)
	}
	_, err := ReadCSV(strings.NewReader("app,hex,freq\na,90,1\na,90,7\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("duplicate (app,hex) must error naming the first occurrence, got %v", err)
	}
	// ReadCSVRaw applies the same rejection (hex case-insensitively).
	_, err = ReadCSVRaw(strings.NewReader("app,hex,freq\na,4801D8,1\na,4801d8,7\n"))
	var pe *ParseError
	if err == nil || !errors.As(err, &pe) || pe.Line != 3 {
		t.Fatalf("ReadCSVRaw duplicate must be a *ParseError at line 3, got %v", err)
	}
}

// TestReadCSVScannerErrorHasLine: an over-long line fails inside
// bufio.Scanner, which used to surface as a bare "token too long" with no
// position at all.
func TestReadCSVScannerErrorHasLine(t *testing.T) {
	input := "app,hex,freq\nfoo,90,1\nbar," + strings.Repeat("90", 1<<20) + ",1\n"
	_, err := ReadCSV(strings.NewReader(input))
	var pe *ParseError
	if err == nil || !errors.As(err, &pe) {
		t.Fatalf("want *ParseError for over-long line, got %v", err)
	}
	if pe.Line != 3 {
		t.Fatalf("over-long line reported at line %d, want 3", pe.Line)
	}
}
