package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bhive/internal/x86"
)

// ReadAsm loads a corpus from assembly listing text — the human-writable
// companion to the hex CSV interchange format. The listing is a sequence
// of blocks, each introduced by a header line
//
//	@ <app> [freq]
//
// followed by one assembly instruction per line (Intel or AT&T syntax,
// auto-detected per instruction exactly as x86.Parse does) until the next
// header or end of input. Blank lines and '#'/';' comments — whole-line or
// trailing — are skipped; a missing freq defaults to 1.
//
// Every block is canonicalized by round-tripping through the encoder:
// the Record holds the parsed instructions, and its hex (Block.Hex) is the
// same canonical machine code a hex submission of the block would carry,
// so downstream identities — profile-cache keys, server job ids — cannot
// distinguish the two front doors. Duplicate (app, canonical code) blocks
// are rejected like duplicate CSV rows. Every failure is a *ParseError
// carrying the 1-based listing line.
// RawRecords converts parsed records into the raw hex-row form the lint
// auditor consumes, canonicalizing each block through the encoder. Line is
// the record's 1-based ordinal in the corpus (an assembly listing has no
// per-row CSV line to report).
func RawRecords(recs []Record) ([]RawRecord, error) {
	out := make([]RawRecord, 0, len(recs))
	for i, rec := range recs {
		h, err := rec.Block.Hex()
		if err != nil {
			return nil, fmt.Errorf("block %d (%s): %w", i+1, rec.App, err)
		}
		out = append(out, RawRecord{App: rec.App, Hex: h, Freq: rec.Freq, Line: i + 1})
	}
	return out, nil
}

func ReadAsm(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)

	var (
		out     []Record
		insts   []x86.Inst // instructions of the open block
		app     string
		freq    uint64
		open    bool
		headAt  int // line of the open block's header
		lineNum int
	)
	seen := make(map[string]int) // app\x00hex -> first header line

	flush := func() error {
		if !open {
			return nil
		}
		if len(insts) == 0 {
			return &ParseError{Line: headAt, Err: fmt.Errorf("block %q has no instructions", app)}
		}
		block := &x86.Block{Insts: insts}
		hexStr, err := block.Hex()
		if err != nil {
			return &ParseError{Line: headAt, Err: fmt.Errorf("block %q does not encode: %w", app, err)}
		}
		key := app + "\x00" + hexStr
		if first, dup := seen[key]; dup {
			return &ParseError{Line: headAt, Err: fmt.Errorf("duplicate block (same app and code as line %d)", first)}
		}
		seen[key] = headAt
		out = append(out, Record{App: app, Block: block, Freq: freq})
		insts, open = nil, false
		return nil
	}

	for sc.Scan() {
		lineNum++
		text := sc.Text()
		if i := strings.IndexAny(text, "#;"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "@") {
			if err := flush(); err != nil {
				return nil, err
			}
			fields := strings.Fields(text[1:])
			switch len(fields) {
			case 1:
				app, freq = fields[0], 1
			case 2:
				f, err := strconv.ParseUint(fields[1], 10, 64)
				if err != nil {
					return nil, &ParseError{Line: lineNum, Err: fmt.Errorf("bad frequency %q", fields[1])}
				}
				app, freq = fields[0], f
			default:
				return nil, &ParseError{Line: lineNum, Err: fmt.Errorf("want '@ <app> [freq]', got %q", text)}
			}
			open, headAt = true, lineNum
			continue
		}
		if !open {
			return nil, &ParseError{Line: lineNum, Err: fmt.Errorf("instruction before any '@ <app>' header")}
		}
		in, err := x86.ParseInst(text, x86.SyntaxAuto)
		if err != nil {
			return nil, &ParseError{Line: lineNum, Err: err}
		}
		insts = append(insts, in)
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: lineNum + 1, Err: err}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, &ParseError{Line: 1, Err: fmt.Errorf("no blocks in assembly listing")}
	}
	return out, nil
}
