package corpus

import (
	"math/rand"

	"bhive/internal/x86"
)

// Register discipline for generated blocks: pointer registers keep their
// initialized pattern value (so memory operands stay mappable); scratch
// registers absorb computation results.
var (
	ptrRegs     = []x86.Reg{x86.RBX, x86.RSI, x86.RDI, x86.R12, x86.R13, x86.R14}
	scratchRegs = []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.R8, x86.R9, x86.R10, x86.R11, x86.R15}
)

// blockGen builds one basic block under a mix.
type blockGen struct {
	rng *rand.Rand
	m   *mix

	insts []x86.Inst
	// small marks scratch registers whose runtime value may be below the
	// first mappable page (using one as a base would crash the block).
	small map[x86.Reg]bool
}

func newBlockGen(rng *rand.Rand, m *mix) *blockGen {
	return &blockGen{rng: rng, m: m, small: make(map[x86.Reg]bool)}
}

func (g *blockGen) emit(in x86.Inst) {
	if _, err := x86.Encode(in); err != nil {
		// Should not happen; generators only build encodable shapes.
		panic("corpus: generated unencodable instruction: " + in.String() + ": " + err.Error())
	}
	g.insts = append(g.insts, in)
}

func (g *blockGen) scratch() x86.Reg { return scratchRegs[g.rng.Intn(len(scratchRegs))] }

// pointer returns a register safe to use as a memory base.
func (g *blockGen) pointer() x86.Reg { return ptrRegs[g.rng.Intn(len(ptrRegs))] }

// cleanScratch returns a scratch register not marked small.
func (g *blockGen) cleanScratch() x86.Reg {
	for i := 0; i < 8; i++ {
		r := g.scratch()
		if !g.small[r] {
			return r
		}
	}
	return x86.R15
}

func (g *blockGen) gp(r x86.Reg, size int) x86.Reg { return x86.GPReg(r.Num(), size) }

func (g *blockGen) vec() x86.Reg {
	if g.m.use256 && g.rng.Intn(3) > 0 {
		return x86.VecReg(g.rng.Intn(16), 32)
	}
	return x86.VecReg(g.rng.Intn(16), 16)
}

func (g *blockGen) xmm() x86.Reg { return x86.VecReg(g.rng.Intn(16), 16) }

// mem builds an int memory operand of the given size off a pointer base.
// Displacements are size-aligned so ordinary blocks never split lines.
func (g *blockGen) mem(size int) x86.Mem {
	disp := int32(g.rng.Intn(512/size)) * int32(size)
	m := x86.Mem{Base: g.pointer(), Disp: disp, Size: uint8(size)}
	if g.rng.Intn(4) == 0 {
		// Indexed form; scaled pattern+pattern stays mappable.
		m.Index = g.pointer()
		m.Scale = 1
		if g.rng.Intn(3) == 0 {
			m.Scale = uint8(size)
		}
	}
	return m
}

// vmem builds a vector memory operand, aligned to its width.
func (g *blockGen) vmem(size int) x86.Mem {
	disp := int32(g.rng.Intn(1+256/size)) * int32(size)
	return x86.Mem{Base: g.pointer(), Disp: disp, Size: uint8(size)}
}

func (g *blockGen) imm(max int) int64 { return int64(g.rng.Intn(max) + 1) }

var aluOps = []x86.Op{x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR}
var vecFPOpsSSE = []x86.Op{x86.ADDPS, x86.MULPS, x86.SUBPS, x86.ADDSS, x86.MULSS,
	x86.ADDSD, x86.MULSD, x86.MINPS, x86.MAXPS, x86.SUBSS, x86.ADDPD, x86.MULPD}
var vecFPOpsAVX = []x86.Op{x86.VADDPS, x86.VMULPS, x86.VSUBPS, x86.VADDPD,
	x86.VMULPD, x86.VMINPS, x86.VMAXPS, x86.VADDSS, x86.VMULSD}
var fmaOps = []x86.Op{x86.VFMADD231PS, x86.VFMADD213PS, x86.VFMADD231PD, x86.VFNMADD231PS}
var vecIntOpsSSE = []x86.Op{x86.PADDB, x86.PADDW, x86.PADDD, x86.PSUBW, x86.PSUBD,
	x86.PAND, x86.POR, x86.PXOR, x86.PMULLW, x86.PCMPEQB, x86.PCMPGTD, x86.PADDQ}
var vecIntOpsAVX = []x86.Op{x86.VPADDB, x86.VPADDD, x86.VPSUBD, x86.VPAND,
	x86.VPOR, x86.VPXOR, x86.VPMULLW, x86.VPCMPEQD, x86.VPADDQ}
var shuffleOpsSSE = []x86.Op{x86.PSHUFD, x86.SHUFPS, x86.PUNPCKLBW, x86.PUNPCKLWD,
	x86.PUNPCKLDQ, x86.UNPCKLPS}
var shiftOps = []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR}
var cmovOps = []x86.Op{x86.CMOVE, x86.CMOVNE, x86.CMOVL, x86.CMOVB, x86.CMOVA, x86.CMOVGE}
var setOps = []x86.Op{x86.SETE, x86.SETNE, x86.SETL, x86.SETB, x86.SETA}

// gpSize picks a plausible scalar operand width (64-bit dominant).
func (g *blockGen) gpSize() int {
	switch g.rng.Intn(10) {
	case 0:
		return 1
	case 1, 2:
		return 4
	default:
		return 8
	}
}

// step emits one instruction (occasionally a short idiom of 2–3) of the
// given kind. memOK=false restricts to register-only forms.
func (g *blockGen) step(k kind, memOK bool) {
	switch k {
	case kALU:
		op := aluOps[g.rng.Intn(len(aluOps))]
		size := g.gpSize()
		dst := g.gp(g.scratch(), size)
		if g.rng.Intn(3) == 0 {
			g.emit(x86.NewInst(op, x86.RegOp(dst), x86.ImmOp(g.imm(127))))
		} else {
			src := g.gp(g.scratch(), size)
			if dst.Base64() == src.Base64() && (op == x86.XOR || op == x86.SUB) {
				// would be a zero idiom; make it an add instead
				op = x86.ADD
			}
			g.emit(x86.NewInst(op, x86.RegOp(dst), x86.RegOp(src)))
		}
		if op == x86.XOR || op == x86.AND {
			// Logic results can be tiny; stop using this register as a base.
			g.small[dst.Base64()] = true
		}

	case kLoad:
		size := g.gpSize()
		if size == 1 && g.rng.Intn(2) == 0 {
			g.emit(x86.NewInst(x86.MOVZX, x86.RegOp(g.gp(g.scratch(), 4)), x86.MemOp(g.mem(1))))
			return
		}
		dst := g.scratch()
		g.emit(x86.NewInst(x86.MOV, x86.RegOp(g.gp(dst, size)), x86.MemOp(g.mem(size))))
		if size >= 4 {
			delete(g.small, dst.Base64()) // loaded the page fill pattern
		}

	case kStore:
		size := g.gpSize()
		if g.rng.Intn(4) == 0 {
			g.emit(x86.NewInst(x86.MOV, x86.MemOp(g.mem(size)), x86.ImmOp(g.imm(100))))
			return
		}
		g.emit(x86.NewInst(x86.MOV, x86.MemOp(g.mem(size)), x86.RegOp(g.gp(g.scratch(), size))))

	case kRMWMem:
		op := aluOps[g.rng.Intn(len(aluOps))]
		size := g.gpSize()
		if g.rng.Intn(2) == 0 {
			g.emit(x86.NewInst(op, x86.MemOp(g.mem(size)), x86.ImmOp(g.imm(100))))
		} else {
			g.emit(x86.NewInst(op, x86.MemOp(g.mem(size)), x86.RegOp(g.gp(g.scratch(), size))))
		}

	case kShiftBit:
		switch g.rng.Intn(6) {
		case 0:
			g.emit(x86.NewInst(x86.BSWAP, x86.RegOp(g.scratch())))
		case 1:
			g.emit(x86.NewInst(x86.POPCNT, x86.RegOp(g.cleanScratch()), x86.RegOp(g.scratch())))
		case 2:
			g.emit(x86.NewInst(x86.TZCNT, x86.RegOp(g.cleanScratch()), x86.RegOp(g.scratch())))
			g.small[g.insts[len(g.insts)-1].Args[0].Reg.Base64()] = true
		default:
			op := shiftOps[g.rng.Intn(len(shiftOps))]
			r := g.scratch()
			g.emit(x86.NewInst(op, x86.RegOp(r), x86.ImmOp(g.imm(31))))
			g.small[r.Base64()] = true
		}

	case kLEA:
		m := x86.Mem{Base: g.pointer(), Disp: int32(g.rng.Intn(256))}
		if g.rng.Intn(2) == 0 {
			m.Index = g.pointer()
			m.Scale = []uint8{1, 2, 4, 8}[g.rng.Intn(4)]
		}
		dst := g.scratch()
		g.emit(x86.NewInst(x86.LEA, x86.RegOp(dst), x86.MemOp(m)))
		delete(g.small, dst)

	case kMulDiv:
		// Multiplies dominate; integer division is rare in real code.
		switch g.rng.Intn(10) {
		case 0: // 32-bit unsigned divide with zeroed rdx (the common idiom)
			g.emit(x86.NewInst(x86.XOR, x86.RegOp(x86.EDX), x86.RegOp(x86.EDX)))
			div := g.pointer() // pattern value: never zero
			g.emit(x86.NewInst(x86.DIV, x86.RegOp(g.gp(div, 4))))
			g.small[x86.RDX] = true
		case 1: // signed divide after sign extension
			g.emit(x86.NewInst(x86.CDQ))
			g.emit(x86.NewInst(x86.IDIV, x86.RegOp(g.gp(g.pointer(), 4))))
			g.small[x86.RDX] = true
		case 2:
			g.emit(x86.NewInst(x86.IMUL, x86.RegOp(g.cleanScratch()), x86.RegOp(g.scratch()),
				x86.ImmOp(g.imm(100))))
		default:
			g.emit(x86.NewInst(x86.IMUL, x86.RegOp(g.scratch()), x86.RegOp(g.scratch())))
		}

	case kCmpFlag:
		size := 8
		if g.rng.Intn(3) == 0 {
			size = 4
		}
		if memOK && g.rng.Intn(4) == 0 {
			g.emit(x86.NewInst(x86.CMP, x86.RegOp(g.gp(g.scratch(), size)), x86.MemOp(g.mem(size))))
		} else if g.rng.Intn(2) == 0 {
			g.emit(x86.NewInst(x86.CMP, x86.RegOp(g.gp(g.scratch(), size)), x86.RegOp(g.gp(g.scratch(), size))))
		} else {
			g.emit(x86.NewInst(x86.TEST, x86.RegOp(g.gp(g.scratch(), size)), x86.RegOp(g.gp(g.scratch(), size))))
		}
		switch g.rng.Intn(3) {
		case 0:
			g.emit(x86.NewInst(cmovOps[g.rng.Intn(len(cmovOps))],
				x86.RegOp(g.cleanScratch()), x86.RegOp(g.scratch())))
		case 1:
			r := g.scratch()
			g.emit(x86.NewInst(setOps[g.rng.Intn(len(setOps))], x86.RegOp(g.gp(r, 1))))
			g.small[r.Base64()] = true
		}

	case kVecFP:
		if g.m.useFMA && g.rng.Intn(3) == 0 {
			op := fmaOps[g.rng.Intn(len(fmaOps))]
			g.emit(x86.NewInst(op, x86.RegOp(g.vec256()), x86.RegOp(g.vec256()), x86.RegOp(g.vec256())))
			return
		}
		if g.m.useAVX && g.rng.Intn(2) == 0 {
			op := vecFPOpsAVX[g.rng.Intn(len(vecFPOpsAVX))]
			w := g.avxWidthFor(op)
			g.emit(x86.NewInst(op, x86.RegOp(w()), x86.RegOp(w()), x86.RegOp(w())))
			return
		}
		op := vecFPOpsSSE[g.rng.Intn(len(vecFPOpsSSE))]
		g.emit(x86.NewInst(op, x86.RegOp(g.xmm()), x86.RegOp(g.xmm())))

	case kVecLoad:
		if g.m.useAVX && g.m.use256 && g.rng.Intn(2) == 0 {
			g.emit(x86.NewInst(x86.VMOVUPS, x86.RegOp(x86.VecReg(g.rng.Intn(16), 32)),
				x86.MemOp(g.vmem(32))))
			return
		}
		switch g.rng.Intn(3) {
		case 0:
			g.emit(x86.NewInst(x86.MOVSS, x86.RegOp(g.xmm()), x86.MemOp(g.vmem(4))))
		case 1:
			g.emit(x86.NewInst(x86.MOVSD, x86.RegOp(g.xmm()), x86.MemOp(g.vmem(8))))
		default:
			g.emit(x86.NewInst(x86.MOVUPS, x86.RegOp(g.xmm()), x86.MemOp(g.vmem(16))))
		}

	case kVecStore:
		if g.m.useAVX && g.m.use256 && g.rng.Intn(2) == 0 {
			g.emit(x86.NewInst(x86.VMOVUPS, x86.MemOp(g.vmem(32)),
				x86.RegOp(x86.VecReg(g.rng.Intn(16), 32))))
			return
		}
		switch g.rng.Intn(3) {
		case 0:
			g.emit(x86.NewInst(x86.MOVSS, x86.MemOp(g.vmem(4)), x86.RegOp(g.xmm())))
		case 1:
			g.emit(x86.NewInst(x86.MOVSD, x86.MemOp(g.vmem(8)), x86.RegOp(g.xmm())))
		default:
			g.emit(x86.NewInst(x86.MOVUPS, x86.MemOp(g.vmem(16)), x86.RegOp(g.xmm())))
		}

	case kVecInt:
		if g.m.useAVX && g.rng.Intn(2) == 0 {
			op := vecIntOpsAVX[g.rng.Intn(len(vecIntOpsAVX))]
			w := g.xmm
			if g.m.use256 {
				w = func() x86.Reg { return x86.VecReg(g.rng.Intn(16), 32) }
			}
			g.emit(x86.NewInst(op, x86.RegOp(w()), x86.RegOp(w()), x86.RegOp(w())))
			return
		}
		op := vecIntOpsSSE[g.rng.Intn(len(vecIntOpsSSE))]
		a, b := g.xmm(), g.xmm()
		if a == b && (op == x86.PXOR || op == x86.PSUBD || op == x86.PCMPGTD) {
			op = x86.PADDD
		}
		g.emit(x86.NewInst(op, x86.RegOp(a), x86.RegOp(b)))

	case kShuffle:
		op := shuffleOpsSSE[g.rng.Intn(len(shuffleOpsSSE))]
		switch op {
		case x86.PSHUFD:
			g.emit(x86.NewInst(op, x86.RegOp(g.xmm()), x86.RegOp(g.xmm()), x86.ImmOp(int64(g.rng.Intn(128)))))
		case x86.SHUFPS:
			g.emit(x86.NewInst(op, x86.RegOp(g.xmm()), x86.RegOp(g.xmm()), x86.ImmOp(int64(g.rng.Intn(128)))))
		default:
			g.emit(x86.NewInst(op, x86.RegOp(g.xmm()), x86.RegOp(g.xmm())))
		}

	case kConvert:
		switch g.rng.Intn(4) {
		case 0:
			g.emit(x86.NewInst(x86.CVTSI2SD, x86.RegOp(g.xmm()), x86.RegOp(g.scratch())))
		case 1:
			g.emit(x86.NewInst(x86.CVTTSD2SI, x86.RegOp(g.cleanScratch()), x86.RegOp(g.xmm())))
			g.small[g.insts[len(g.insts)-1].Args[0].Reg.Base64()] = true
		case 2:
			g.emit(x86.NewInst(x86.CVTSS2SD, x86.RegOp(g.xmm()), x86.RegOp(g.xmm())))
		default:
			g.emit(x86.NewInst(x86.CVTDQ2PS, x86.RegOp(g.xmm()), x86.RegOp(g.xmm())))
		}

	case kZeroIdiom:
		switch g.rng.Intn(3) {
		case 0:
			r := g.gp(g.scratch(), 4)
			g.emit(x86.NewInst(x86.XOR, x86.RegOp(r), x86.RegOp(r)))
			g.small[r.Base64()] = true
		case 1:
			v := g.xmm()
			g.emit(x86.NewInst(x86.PXOR, x86.RegOp(v), x86.RegOp(v)))
		default:
			if g.m.useAVX {
				v := g.xmm()
				g.emit(x86.NewInst(x86.VXORPS, x86.RegOp(v), x86.RegOp(v), x86.RegOp(v)))
			} else {
				v := g.xmm()
				g.emit(x86.NewInst(x86.XORPS, x86.RegOp(v), x86.RegOp(v)))
			}
		}

	case kStack:
		if g.rng.Intn(2) == 0 {
			g.emit(x86.NewInst(x86.PUSH, x86.RegOp(g.scratch())))
			g.emit(x86.NewInst(x86.POP, x86.RegOp(g.scratch())))
		} else {
			g.emit(x86.NewInst(x86.MOV, x86.RegOp(g.scratch()),
				x86.MemOp(x86.Mem{Base: x86.RSP, Disp: int32(8 * g.rng.Intn(16)), Size: 8})))
		}
	}
}

func (g *blockGen) vec256() x86.Reg {
	if g.m.use256 {
		return x86.VecReg(g.rng.Intn(16), 32)
	}
	return g.xmm()
}

// avxWidthFor returns a register source matching the op's scalar/packed
// width (scalar AVX ops must use xmm).
func (g *blockGen) avxWidthFor(op x86.Op) func() x86.Reg {
	switch op {
	case x86.VADDSS, x86.VMULSD, x86.VADDSD, x86.VMULSS, x86.VSUBSS, x86.VSUBSD:
		return g.xmm
	}
	if g.m.use256 {
		return func() x86.Reg { return x86.VecReg(g.rng.Intn(16), 32) }
	}
	return g.xmm
}

// memKinds reports whether a kind touches memory.
func memKind(k kind) bool {
	switch k {
	case kLoad, kStore, kRMWMem, kVecLoad, kVecStore, kStack:
		return true
	}
	return false
}

// pick samples a kind from the mix, optionally excluding memory kinds.
func (g *blockGen) pick(memOK bool) kind {
	total := 0.0
	for k := kind(0); k < numKinds; k++ {
		if !memOK && memKind(k) {
			continue
		}
		total += g.m.weights[k]
	}
	x := g.rng.Float64() * total
	for k := kind(0); k < numKinds; k++ {
		if !memOK && memKind(k) {
			continue
		}
		x -= g.m.weights[k]
		if x < 0 {
			return k
		}
	}
	return kALU
}

// Block flavors.

func (g *blockGen) ordinary(n int, memOK bool) {
	for len(g.insts) < n {
		g.step(g.pick(memOK), memOK)
	}
	// "Most [blocks] contain memory accesses" (paper §1): every block that
	// is not explicitly register-only touches memory at least once.
	if memOK && !g.hasMem() {
		if g.m.weights[kVecLoad] > g.m.weights[kLoad] {
			g.step(kVecLoad, true)
		} else {
			g.step(kLoad, true)
		}
	}
}

func (g *blockGen) hasMem() bool {
	for i := range g.insts {
		if g.insts[i].IsLoad() || g.insts[i].IsStore() {
			return true
		}
	}
	return false
}

// badPointer produces a block that dereferences an unmappable address.
func (g *blockGen) badPointer() {
	g.ordinary(2+g.rng.Intn(3), true)
	r := g.scratch()
	if g.rng.Intn(2) == 0 {
		// Low (null-ish) pointer.
		g.emit(x86.NewInst(x86.MOV, x86.RegOp(g.gp(r, 4)), x86.ImmOp(int64(g.rng.Intn(2048)))))
	} else {
		// Non-canonical / kernel-half pointer.
		g.emit(x86.NewInst(x86.MOV, x86.RegOp(r), x86.ImmOp(int64(-1)<<47)))
	}
	g.emit(x86.NewInst(x86.MOV, x86.RegOp(g.scratch()),
		x86.MemOp(x86.Mem{Base: r, Size: 8})))
}

// misaligned produces a block with a line-splitting access.
func (g *blockGen) misaligned() {
	g.ordinary(3+g.rng.Intn(4), true)
	g.emit(x86.NewInst(x86.MOV, x86.RegOp(g.scratch()),
		x86.MemOp(x86.Mem{Base: g.pointer(), Disp: 0x3c, Size: 8})))
}

// subnormalBlock produces FP work on denormal inputs.
func (g *blockGen) subnormalBlock() {
	r := g.scratch()
	g.emit(x86.NewInst(x86.MOV, x86.RegOp(g.gp(r, 4)), x86.ImmOp(0x00200000))) // subnormal f32
	g.emit(x86.NewInst(x86.MOVD, x86.RegOp(g.xmm()), x86.RegOp(g.gp(r, 4))))
	g.small[r.Base64()] = true
	for i := 0; i < 2+g.rng.Intn(3); i++ {
		op := []x86.Op{x86.ADDSS, x86.MULSS, x86.ADDPS, x86.MULPS}[g.rng.Intn(4)]
		g.emit(x86.NewInst(op, x86.RegOp(g.xmm()), x86.RegOp(g.xmm())))
	}
}

// bigKernel produces an unrolled numerical inner loop long enough that a
// naive 100x unroll overflows the instruction cache. These are the long
// vector-arithmetic-dominated blocks (GEMM-style: several FMAs per load)
// that populate the paper's purely-vector category.
func (g *blockGen) bigKernel() {
	n := 90 + g.rng.Intn(130)
	vecKind := kVecFP
	if g.m.weights[kVecInt] > g.m.weights[kVecFP] {
		vecKind = kVecInt
	}
	for len(g.insts) < n {
		switch g.rng.Intn(10) {
		case 0:
			g.step(kALU, true)
		case 1:
			g.step(kVecLoad, true)
		case 2:
			g.step(kVecStore, true)
		case 3:
			g.step(kShuffle, true)
		default:
			g.step(vecKind, true)
		}
	}
}

// generate builds one block for the application.
func (a *App) generate(rng *rand.Rand, hot bool) *x86.Block {
	g := newBlockGen(rng, &a.mix)
	m := &a.mix
	if hot && (m.hotLoadHeavy || m.hotVectorized) {
		// Hot inner-loop bodies take dedicated generators and skip the
		// crash/filter hazards: they are the well-behaved kernels.
		return a.generateHot(rng)
	}
	r := rng.Float64()
	switch {
	case r < m.badPtrFrac:
		g.badPointer()
	case r < m.badPtrFrac+m.misalignFrac:
		g.misaligned()
	case r < m.badPtrFrac+m.misalignFrac+m.subnormalFrac:
		g.subnormalBlock()
	case r < m.badPtrFrac+m.misalignFrac+m.subnormalFrac+m.bigBlockFrac:
		g.bigKernel()
	case r < m.badPtrFrac+m.misalignFrac+m.subnormalFrac+m.bigBlockFrac+m.regOnlyFrac:
		n := 1 + rng.Intn(2*m.lenMean)
		g.ordinary(n, false)
	default:
		n := 1 + rng.Intn(2*m.lenMean)
		g.ordinary(n, true)
	}
	return &x86.Block{Insts: g.insts}
}

// generateHot builds a hot inner-loop block: load-dominated scans for
// server workloads, vector kernels for numeric libraries.
func (a *App) generateHot(rng *rand.Rand) *x86.Block {
	m := &a.mix
	n := 3 + rng.Intn(2*m.lenMean)
	g := newBlockGen(rng, m)

	if m.hotLoadHeavy && (!m.hotVectorized || rng.Intn(20) < 17) {
		// Load-dominated scans and pointer chases: 40-50% of the Google
		// workloads' runtime per the paper. No stores: scans read.
		for len(g.insts) < n+2 {
			if rng.Intn(8) == 0 {
				g.step(kALU, true)
			} else {
				g.step(kLoad, true)
			}
		}
		return &x86.Block{Insts: g.insts}
	}

	// Vector kernels: statically rare, dynamically dominant. A minority
	// are purely vector arithmetic (register-resident accumulator
	// updates) — the paper's rare category-2.
	vecKind := kVecFP
	if m.weights[kVecInt] > m.weights[kVecFP] {
		vecKind = kVecInt
	}
	if rng.Intn(5) == 0 && !m.hotLoadHeavy {
		pn := 16 + rng.Intn(48)
		for len(g.insts) < pn {
			if rng.Intn(4) == 0 {
				g.step(kShuffle, false)
			} else {
				g.step(vecKind, false)
			}
		}
		return &x86.Block{Insts: g.insts}
	}
	for len(g.insts) < n+2 {
		switch rng.Intn(8) {
		case 0:
			g.step(g.pick(true), true)
		case 1, 2:
			g.step(kVecLoad, true)
		case 3:
			g.step(kVecStore, true)
		default:
			g.step(vecKind, true)
		}
	}
	return &x86.Block{Insts: g.insts}
}
