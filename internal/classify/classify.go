// Package classify assigns basic blocks to the paper's six categories by
// clustering their micro-ops' execution-port combinations with LDA
// (6 topics, alpha = 1/6, beta = 1/13 over the 13 Haswell port
// combinations) and labelling each topic from the hardware-resource mix of
// the micro-ops it attracted.
package classify

import (
	"fmt"
	"sort"

	"bhive/internal/lda"
	"bhive/internal/memo"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Category is a block category, numbered 1..6 as in the paper's Table IV.
type Category int

// The six categories.
const (
	CatScalarVecMix Category = 1 + iota // mix of scalar and vectorized arithmetic
	CatPureVector                       // purely vector instructions
	CatLoadStoreMix                     // mix of loads and stores
	CatMostlyStores                     // mostly stores
	CatALUWithMem                       // ALU ops sprinkled with loads and stores
	CatMostlyLoads                      // mostly loads
	NumCategories   = 6
)

var catDescriptions = map[Category]string{
	CatScalarVecMix: "Mix of Scalar and Vectorized arithmetic",
	CatPureVector:   "Purely Vector instructions",
	CatLoadStoreMix: "Mix of loads and stores",
	CatMostlyStores: "Mostly stores",
	CatALUWithMem:   "ALU ops sprinkled with loads and stores",
	CatMostlyLoads:  "Mostly loads",
}

// Description returns the paper's description of a category.
func (c Category) Description() string { return catDescriptions[c] }

// String returns "Category-N".
func (c Category) String() string { return fmt.Sprintf("Category-%d", int(c)) }

// feature buckets used to label topics.
type feature int

const (
	featLoad feature = iota
	featStore
	featVec
	featScalar
	numFeatures
)

// classFeature buckets a µop class.
func classFeature(c uarch.UopClass) feature {
	switch c {
	case uarch.ClassLoad:
		return featLoad
	case uarch.ClassStoreAddr, uarch.ClassStoreData:
		return featStore
	case uarch.ClassVecALU, uarch.ClassVecLogic, uarch.ClassVecMul,
		uarch.ClassVecShift, uarch.ClassFPAdd, uarch.ClassFPMul,
		uarch.ClassFMA, uarch.ClassFPDiv, uarch.ClassShuffle,
		uarch.ClassTransfer:
		return featVec
	}
	return featScalar
}

// BlockDoc converts a block into an LDA document: one word per µop, the
// word being the µop's port-combination index. The parallel feature slice
// is used only for topic labelling.
func BlockDoc(cpu *uarch.CPU, comboIdx map[uarch.PortSet]int, b *x86.Block) (words []int, feats []feature) {
	for i := range b.Insts {
		d, err := memo.Describe(cpu, &b.Insts[i])
		if err != nil {
			continue
		}
		for _, u := range d.Uops {
			if w, ok := comboIdx[u.Ports]; ok {
				words = append(words, w)
				feats = append(feats, classFeature(u.Class))
			}
		}
		// Zero idioms / eliminated moves contribute the scalar-ALU
		// combination (the static tables the paper uses know nothing of
		// rename-time elimination).
		if d.ZeroIdiom || d.EliminatedMove {
			raw, err := memo.DescribeRaw(cpu, &b.Insts[i])
			if err == nil {
				for _, u := range raw.Uops {
					if w, ok := comboIdx[u.Ports]; ok {
						words = append(words, w)
						feats = append(feats, classFeature(u.Class))
					}
				}
			}
		}
	}
	return words, feats
}

// Classifier is a fitted block classifier.
type Classifier struct {
	cpu      *uarch.CPU
	comboIdx map[uarch.PortSet]int
	model    *lda.Model
	topicCat []Category // topic -> category
	cats     []Category // per fitted block
}

// Options for fitting.
type Options struct {
	Topics int
	Alpha  float64
	Beta   float64
	Sweeps int
	Seed   int64
}

// DefaultOptions are the paper's hyperparameters: K=6, alpha=1/6,
// beta=1/13 (one over the Haswell port-combination count).
func DefaultOptions() Options {
	return Options{Topics: 6, Alpha: 1.0 / 6, Beta: 1.0 / 13, Sweeps: 12, Seed: 1}
}

// Fit clusters the blocks. The port-combination vocabulary comes from the
// given CPU (the paper uses Haswell for classification on all targets).
func Fit(cpu *uarch.CPU, blocks []*x86.Block, opts Options) *Classifier {
	comboIdx := cpu.ComboIndex()
	vocab := len(comboIdx)

	docs := make([][]int, len(blocks))
	featDocs := make([][]feature, len(blocks))
	for i, b := range blocks {
		docs[i], featDocs[i] = BlockDoc(cpu, comboIdx, b)
	}

	// Semi-supervised initialization: seed the sampler with a
	// feature-informed topic guess per µop, so the six topics converge to
	// the six resource clusters instead of six slices of the dominant
	// scalar mass (the symmetry randomly-initialized Gibbs gets stuck in
	// on a vocabulary of 13 words). The sampler remains free to reassign.
	hints := make([][]int, len(docs))
	for d := range docs {
		if len(docs[d]) == 0 {
			continue
		}
		var nLoad, nStore, nVec int
		for _, f := range featDocs[d] {
			switch f {
			case featLoad:
				nLoad++
			case featStore:
				nStore++
			case featVec:
				nVec++
			}
		}
		n := len(featDocs[d])
		pureVec := nVec*4 >= n*3
		memMix := nLoad*5 >= n && nStore*5 >= n
		hints[d] = make([]int, n)
		for i, f := range featDocs[d] {
			switch {
			case f == featVec && pureVec:
				hints[d][i] = 1
			case f == featVec:
				hints[d][i] = 0
			case f == featLoad && memMix:
				hints[d][i] = 2
			case f == featLoad:
				hints[d][i] = 5
			case f == featStore && memMix:
				hints[d][i] = 2
			case f == featStore:
				hints[d][i] = 3
			default:
				hints[d][i] = 4
			}
		}
	}

	model := lda.FitSeeded(docs, hints, vocab, opts.Topics, opts.Alpha, opts.Beta, opts.Sweeps, opts.Seed)

	// Label topics: accumulate the feature mix each topic attracted.
	counts := make([][]float64, opts.Topics)
	for k := range counts {
		counts[k] = make([]float64, numFeatures)
	}
	for d := range docs {
		for i := range docs[d] {
			k := model.Assignments[d][i]
			counts[k][classFeatureIndex(featDocs[d][i])]++
		}
	}
	topicCat := labelTopics(counts)

	c := &Classifier{
		cpu: cpu, comboIdx: comboIdx, model: model, topicCat: topicCat,
	}
	c.cats = make([]Category, len(blocks))
	for d := range docs {
		if len(docs[d]) == 0 {
			c.cats[d] = CatALUWithMem // degenerate blocks default scalar
			continue
		}
		c.cats[d] = topicCat[model.DocTopic(d)]
	}
	return c
}

func classFeatureIndex(f feature) int { return int(f) }

// labelTopics maps each topic to a distinct category by greedy best-score
// assignment over the topics' feature fractions.
func labelTopics(counts [][]float64) []Category {
	K := len(counts)
	type frac struct{ l, s, v, a float64 }
	fr := make([]frac, K)
	for k, c := range counts {
		tot := c[featLoad] + c[featStore] + c[featVec] + c[featScalar]
		if tot == 0 {
			tot = 1
		}
		fr[k] = frac{
			l: c[featLoad] / tot, s: c[featStore] / tot,
			v: c[featVec] / tot, a: c[featScalar] / tot,
		}
	}
	harm := func(x, y float64) float64 {
		if x+y == 0 {
			return 0
		}
		return 2 * x * y / (x + y)
	}
	score := func(k int, cat Category) float64 {
		f := fr[k]
		switch cat {
		case CatPureVector:
			return f.v * (1 - f.l - f.s)
		case CatScalarVecMix:
			return harm(f.v, f.a+f.l)
		case CatMostlyLoads:
			return f.l * (1 - f.s)
		case CatMostlyStores:
			return f.s * (1 - f.l)
		case CatLoadStoreMix:
			return harm(f.l, f.s)
		case CatALUWithMem:
			return f.a * (1 - f.v)
		}
		return 0
	}

	type cell struct {
		k   int
		cat Category
		sc  float64
	}
	var cells []cell
	for k := 0; k < K; k++ {
		for cat := Category(1); cat <= NumCategories; cat++ {
			cells = append(cells, cell{k, cat, score(k, cat)})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].sc != cells[j].sc {
			return cells[i].sc > cells[j].sc
		}
		if cells[i].k != cells[j].k {
			return cells[i].k < cells[j].k
		}
		return cells[i].cat < cells[j].cat
	})
	out := make([]Category, K)
	usedTopic := make([]bool, K)
	usedCat := make(map[Category]bool)
	assigned := 0
	for _, c := range cells {
		if assigned == K {
			break
		}
		if usedTopic[c.k] || usedCat[c.cat] {
			continue
		}
		out[c.k] = c.cat
		usedTopic[c.k] = true
		usedCat[c.cat] = true
		assigned++
	}
	return out
}

// Category returns the category of fitted block i.
func (c *Classifier) Category(i int) Category { return c.cats[i] }

// Categories returns the category of every fitted block.
func (c *Classifier) Categories() []Category { return c.cats }

// Classify folds a new block into the fitted model.
func (c *Classifier) Classify(b *x86.Block) Category {
	words, _ := BlockDoc(c.cpu, c.comboIdx, b)
	if len(words) == 0 {
		return CatALUWithMem
	}
	return c.topicCat[c.model.Infer(words, 10, 7)]
}

// Counts returns the number of fitted blocks per category.
func (c *Classifier) Counts() map[Category]int {
	out := make(map[Category]int, NumCategories)
	for _, cat := range c.cats {
		out[cat]++
	}
	return out
}

// Example returns the index of a representative fitted block for the
// category: the one with the highest dominant-topic confidence.
func (c *Classifier) Example(cat Category) int {
	best, bestP := -1, -1.0
	for d := range c.cats {
		if c.cats[d] != cat {
			continue
		}
		dist := c.model.DocTopicDist(d)
		p := dist[c.model.DocTopic(d)]
		if p > bestP {
			best, bestP = d, p
		}
	}
	return best
}

// DebugTopics renders each topic's port-combination distribution, feature
// mix and assigned label — used when tuning the labeller.
func (c *Classifier) DebugTopics() string {
	combos := c.cpu.PortCombinations()
	var sb []byte
	for k := 0; k < c.model.K; k++ {
		dist := c.model.TopicWordDist(k)
		sb = append(sb, fmt.Sprintf("topic %d -> %v:", k, c.topicCat[k])...)
		for w, p := range dist {
			if p > 0.08 {
				sb = append(sb, fmt.Sprintf(" %s=%.2f", combos[w], p)...)
			}
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}
