package classify

import (
	"testing"

	"bhive/internal/corpus"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func parseBlocks(t *testing.T, texts []string) []*x86.Block {
	t.Helper()
	out := make([]*x86.Block, len(texts))
	for i, text := range texts {
		b, err := x86.ParseBlock(text, x86.SyntaxAuto)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// TestArchetypes checks that hand-built archetype blocks land in their
// expected categories once mixed into a diverse corpus.
func TestArchetypes(t *testing.T) {
	loadBlock := "mov rax, qword ptr [rbx]\nmov rcx, qword ptr [rbx+8]\nmov rdx, qword ptr [rbx+16]"
	storeBlock := "mov qword ptr [rbx], rax\nmov qword ptr [rbx+8], rcx\nmov qword ptr [rbx+16], rdx"
	vecBlock := "vmulps %ymm0, %ymm1, %ymm2\nvaddps %ymm3, %ymm4, %ymm5\nvmulps %ymm6, %ymm7, %ymm8\nvaddps %ymm9, %ymm10, %ymm11"
	aluBlock := "add rax, rbx\nsub rcx, rdx\nand r8, r9\nadd r10, 4\nmov r11, qword ptr [rsp]"
	mixBlock := "mov rax, qword ptr [rbx]\nmov qword ptr [rsi], rcx\nmov rdx, qword ptr [rbx+8]\nmov qword ptr [rsi+8], r8"
	scalarVec := "addss xmm0, xmm1\nadd rax, rbx\nmulss xmm2, xmm3\nsub rcx, rdx"

	archetypes := parseBlocks(t, []string{loadBlock, storeBlock, vecBlock, aluBlock, mixBlock, scalarVec})

	// Pad with corpus blocks so LDA has data to shape its topics.
	recs := corpus.GenerateAll(0.001, 5)
	blocks := append([]*x86.Block{}, archetypes...)
	for i := range recs {
		blocks = append(blocks, recs[i].Block)
	}

	c := Fit(uarch.Haswell(), blocks, DefaultOptions())

	// Two topics attract load-heavy documents (pure loads vs loads mixed
	// with stores); a short all-load block may land in either.
	if got := c.Category(0); got != CatMostlyLoads && got != CatLoadStoreMix {
		t.Errorf("load block classified %v", got)
	}
	if got := c.Category(1); got != CatMostlyStores && got != CatLoadStoreMix {
		t.Errorf("store block classified %v", got)
	}
	if got := c.Category(2); got != CatPureVector && got != CatScalarVecMix {
		t.Errorf("vector block classified %v", got)
	}
}

func TestCategoriesDistinct(t *testing.T) {
	recs := corpus.GenerateAll(0.002, 5)
	blocks := make([]*x86.Block, len(recs))
	for i := range recs {
		blocks[i] = recs[i].Block
	}
	c := Fit(uarch.Haswell(), blocks, DefaultOptions())
	counts := c.Counts()
	if len(counts) < 4 {
		t.Fatalf("expected at least 4 populated categories, got %v", counts)
	}
	// Topic labels must be a permutation: six distinct categories.
	seen := map[Category]bool{}
	for _, cat := range c.topicCat {
		if seen[cat] {
			t.Fatalf("duplicate label %v", cat)
		}
		seen[cat] = true
	}
	// The paper's broad shape: pure-vector blocks are the rarest class.
	if counts[CatPureVector] >= counts[CatMostlyLoads] {
		t.Errorf("pure-vector should be rare: %v", counts)
	}
}

func TestClassifyNewBlock(t *testing.T) {
	recs := corpus.GenerateAll(0.001, 5)
	blocks := make([]*x86.Block, len(recs))
	for i := range recs {
		blocks[i] = recs[i].Block
	}
	c := Fit(uarch.Haswell(), blocks, DefaultOptions())
	nb, err := x86.ParseBlock("mov rax, qword ptr [rbx]\nmov rcx, qword ptr [rbx+8]\nmov rdx, qword ptr [rbx+24]\nmov r8, qword ptr [rbx+32]", x86.SyntaxIntel)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classify(nb); got != CatMostlyLoads && got != CatLoadStoreMix {
		t.Errorf("new load block classified %v", got)
	}
}

func TestExample(t *testing.T) {
	recs := corpus.GenerateAll(0.001, 5)
	blocks := make([]*x86.Block, len(recs))
	for i := range recs {
		blocks[i] = recs[i].Block
	}
	c := Fit(uarch.Haswell(), blocks, DefaultOptions())
	for cat := Category(1); cat <= NumCategories; cat++ {
		idx := c.Example(cat)
		if idx >= 0 && c.Category(idx) != cat {
			t.Errorf("example for %v has category %v", cat, c.Category(idx))
		}
	}
}

func TestDescriptions(t *testing.T) {
	for cat := Category(1); cat <= NumCategories; cat++ {
		if cat.Description() == "" {
			t.Errorf("%v lacks a description", cat)
		}
	}
	if CatPureVector.String() != "Category-2" {
		t.Fatal("category numbering")
	}
}
