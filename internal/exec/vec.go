package exec

import (
	"fmt"
	"math"

	"bhive/internal/x86"
)

// AlignmentError is the #GP fault raised by aligned vector moves
// (movaps/movdqa and friends) on a misaligned address.
type AlignmentError struct {
	Addr uint64
	Req  int
}

func (e *AlignmentError) Error() string {
	return fmt.Sprintf("exec: alignment fault: %#x not %d-byte aligned", e.Addr, e.Req)
}

// isSSEOp reports whether op is a legacy SSE instruction.
func isSSEOp(op x86.Op) bool { return op >= x86.MOVSS && op <= x86.PMOVMSKB }

// vecWidth returns the operation width in bytes.
func vecWidth(in *x86.Inst) int {
	for _, a := range in.Args {
		if a.Kind == x86.KindReg && a.Reg.Class() == x86.ClassYMM {
			return 32
		}
		if a.Kind == x86.KindMem && a.Mem.Size == 32 {
			return 32
		}
	}
	return 16
}

// readVecArg materializes operand k as a 256-bit value (memory operands are
// zero-padded above their access size).
func (r *Runner) readVecArg(in *x86.Inst, k int, step *Step) ([32]byte, error) {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		if a.Reg.IsVec() {
			return r.State.ReadVec(a.Reg), nil
		}
		var v [32]byte
		setU64(&v, 0, r.State.ReadGPR(a.Reg))
		return v, nil
	case x86.KindMem:
		var v [32]byte
		err := r.loadBytes(r.ea(a.Mem), v[:a.Mem.Size], step)
		return v, err
	}
	return [32]byte{}, fmt.Errorf("exec: bad vector operand")
}

// alignedMoveOps require natural alignment.
var alignedMoveOps = map[x86.Op]bool{
	x86.MOVAPS: true, x86.MOVAPD: true, x86.MOVDQA: true,
	x86.VMOVAPS: true, x86.VMOVAPD: true, x86.VMOVDQA: true,
}

func (r *Runner) execVec(in *x86.Inst, step *Step) error {
	op := in.Op
	vex := op.IsVex()
	width := vecWidth(in)

	if op == x86.VZEROUPPER {
		for i := range r.State.Vec {
			for b := 16; b < 32; b++ {
				r.State.Vec[i][b] = 0
			}
		}
		return nil
	}

	switch op {
	case x86.MOVSS, x86.MOVSD, x86.VMOVSS, x86.VMOVSD:
		return r.execScalarMove(in, step)
	case x86.MOVAPS, x86.MOVUPS, x86.MOVAPD, x86.MOVUPD, x86.MOVDQA,
		x86.MOVDQU, x86.VMOVAPS, x86.VMOVUPS, x86.VMOVAPD, x86.VMOVUPD,
		x86.VMOVDQA, x86.VMOVDQU:
		return r.execVecMove(in, step, width, vex)
	case x86.MOVD, x86.MOVQ:
		return r.execTransfer(in, step)
	case x86.UCOMISS, x86.UCOMISD, x86.VUCOMISS, x86.VUCOMISD:
		return r.execUComi(in, step)
	case x86.CVTSI2SS, x86.CVTSI2SD, x86.CVTTSS2SI, x86.CVTTSD2SI,
		x86.CVTSS2SD, x86.CVTSD2SS, x86.CVTDQ2PS, x86.CVTPS2DQ,
		x86.VCVTDQ2PS, x86.VCVTPS2DQ:
		return r.execCvt(in, step, width, vex)
	case x86.PMOVMSKB, x86.MOVMSKPS, x86.VPMOVMSKB:
		return r.execMovMsk(in, step, width)
	case x86.VBROADCASTSS, x86.VBROADCASTSD, x86.VPBROADCASTB,
		x86.VPBROADCASTD, x86.VPBROADCASTQ:
		return r.execBroadcast(in, step, width)
	case x86.VEXTRACTF128, x86.VEXTRACTI128:
		return r.execExtract128(in, step)
	case x86.VINSERTF128, x86.VINSERTI128:
		return r.execInsert128(in, step)
	case x86.PSHUFD, x86.VPSHUFD:
		return r.execPshufd(in, step, width, vex)
	case x86.SHUFPS, x86.VSHUFPS:
		return r.execShufps(in, step, width, vex)
	}

	// Remaining ops are "dst = f(src1, src2)" shaped (or unary like sqrt).
	dst := in.Args[0].Reg
	var a, b [32]byte
	var err error
	switch {
	case len(in.Args) == 3 && in.Args[2].Kind != x86.KindImm: // VEX 3-op
		if a, err = r.readVecArg(in, 1, step); err != nil {
			return err
		}
		if b, err = r.readVecArg(in, 2, step); err != nil {
			return err
		}
	case len(in.Args) >= 2 && in.Args[1].Kind != x86.KindImm:
		if a, err = r.readVecArg(in, 0, step); err != nil {
			return err
		}
		if b, err = r.readVecArg(in, 1, step); err != nil {
			return err
		}
	}

	// FMA reads three vector inputs: dst, src2, src3.
	if op >= x86.VFMADD132PS && op <= x86.VFNMADD231PD {
		return r.execFMA(in, step, width)
	}

	var res [32]byte
	fp := false
	switch op {
	case x86.ADDPS, x86.VADDPS:
		fp = true
		r.lanesF32(&res, &a, &b, width, step, func(x, y float32) float32 { return x + y })
	case x86.SUBPS, x86.VSUBPS:
		fp = true
		r.lanesF32(&res, &a, &b, width, step, func(x, y float32) float32 { return x - y })
	case x86.MULPS, x86.VMULPS:
		fp = true
		r.lanesF32(&res, &a, &b, width, step, func(x, y float32) float32 { return x * y })
	case x86.DIVPS, x86.VDIVPS:
		fp = true
		r.lanesF32(&res, &a, &b, width, step, func(x, y float32) float32 { return x / y })
	case x86.MINPS, x86.VMINPS:
		fp = true
		r.lanesF32(&res, &a, &b, width, step, minF32)
	case x86.MAXPS, x86.VMAXPS:
		fp = true
		r.lanesF32(&res, &a, &b, width, step, maxF32)
	case x86.ADDPD, x86.VADDPD:
		fp = true
		r.lanesF64(&res, &a, &b, width, step, func(x, y float64) float64 { return x + y })
	case x86.SUBPD, x86.VSUBPD:
		fp = true
		r.lanesF64(&res, &a, &b, width, step, func(x, y float64) float64 { return x - y })
	case x86.MULPD, x86.VMULPD:
		fp = true
		r.lanesF64(&res, &a, &b, width, step, func(x, y float64) float64 { return x * y })
	case x86.DIVPD, x86.VDIVPD:
		fp = true
		r.lanesF64(&res, &a, &b, width, step, func(x, y float64) float64 { return x / y })
	case x86.SQRTPS, x86.VSQRTPS:
		fp = true
		r.lanesF32(&res, &b, &b, width, step, func(_, y float32) float32 {
			return float32(math.Sqrt(float64(y)))
		})
	case x86.SQRTPD, x86.VSQRTPD:
		fp = true
		r.lanesF64(&res, &b, &b, width, step, func(_, y float64) float64 {
			return math.Sqrt(y)
		})

	case x86.ADDSS, x86.VADDSS, x86.SUBSS, x86.VSUBSS, x86.MULSS,
		x86.VMULSS, x86.DIVSS, x86.VDIVSS, x86.MINSS, x86.MAXSS,
		x86.SQRTSS, x86.CVTSS2SD:
		return r.execScalarF32(in, step, &a, &b)
	case x86.ADDSD, x86.VADDSD, x86.SUBSD, x86.VSUBSD, x86.MULSD,
		x86.VMULSD, x86.DIVSD, x86.VDIVSD, x86.MINSD, x86.MAXSD, x86.SQRTSD:
		return r.execScalarF64(in, step, &a, &b)

	case x86.XORPS, x86.XORPD, x86.PXOR, x86.VXORPS, x86.VXORPD, x86.VPXOR:
		for i := 0; i < width; i++ {
			res[i] = a[i] ^ b[i]
		}
	case x86.ANDPS, x86.ANDPD, x86.PAND, x86.VANDPS, x86.VANDPD, x86.VPAND:
		for i := 0; i < width; i++ {
			res[i] = a[i] & b[i]
		}
	case x86.ORPS, x86.ORPD, x86.POR, x86.VORPS, x86.VORPD, x86.VPOR:
		for i := 0; i < width; i++ {
			res[i] = a[i] | b[i]
		}
	case x86.PANDN, x86.VPANDN:
		for i := 0; i < width; i++ {
			res[i] = ^a[i] & b[i]
		}

	case x86.PADDB, x86.VPADDB:
		for i := 0; i < width; i++ {
			res[i] = a[i] + b[i]
		}
	case x86.PSUBB, x86.VPSUBB:
		for i := 0; i < width; i++ {
			res[i] = a[i] - b[i]
		}
	case x86.PADDW, x86.VPADDW:
		for i := 0; i < width/2; i++ {
			setU16(&res, i, getU16(&a, i)+getU16(&b, i))
		}
	case x86.PSUBW, x86.VPSUBW:
		for i := 0; i < width/2; i++ {
			setU16(&res, i, getU16(&a, i)-getU16(&b, i))
		}
	case x86.PADDD, x86.VPADDD:
		for i := 0; i < width/4; i++ {
			setU32(&res, i, getU32(&a, i)+getU32(&b, i))
		}
	case x86.PSUBD, x86.VPSUBD:
		for i := 0; i < width/4; i++ {
			setU32(&res, i, getU32(&a, i)-getU32(&b, i))
		}
	case x86.PADDQ, x86.VPADDQ:
		for i := 0; i < width/8; i++ {
			setU64(&res, i, getU64(&a, i)+getU64(&b, i))
		}
	case x86.PSUBQ, x86.VPSUBQ:
		for i := 0; i < width/8; i++ {
			setU64(&res, i, getU64(&a, i)-getU64(&b, i))
		}

	case x86.PMULLW, x86.VPMULLW:
		for i := 0; i < width/2; i++ {
			setU16(&res, i, getU16(&a, i)*getU16(&b, i))
		}
	case x86.PMULLD, x86.VPMULLD:
		for i := 0; i < width/4; i++ {
			setU32(&res, i, getU32(&a, i)*getU32(&b, i))
		}
	case x86.PMULUDQ:
		for i := 0; i < width/8; i++ {
			setU64(&res, i, uint64(getU32(&a, 2*i))*uint64(getU32(&b, 2*i)))
		}

	case x86.PCMPEQB, x86.VPCMPEQB:
		for i := 0; i < width; i++ {
			res[i] = cmpMask8(a[i] == b[i])
		}
	case x86.PCMPEQD, x86.VPCMPEQD:
		for i := 0; i < width/4; i++ {
			setU32(&res, i, cmpMask32(getU32(&a, i) == getU32(&b, i)))
		}
	case x86.PCMPGTB:
		for i := 0; i < width; i++ {
			res[i] = cmpMask8(int8(a[i]) > int8(b[i]))
		}
	case x86.PCMPGTD, x86.VPCMPGTD:
		for i := 0; i < width/4; i++ {
			setU32(&res, i, cmpMask32(int32(getU32(&a, i)) > int32(getU32(&b, i))))
		}

	case x86.PSLLW, x86.PSLLD, x86.PSLLQ, x86.PSRLW, x86.PSRLD, x86.PSRLQ,
		x86.PSRAW, x86.PSRAD, x86.VPSLLD, x86.VPSLLQ, x86.VPSRLD, x86.VPSRLQ:
		return r.execVecShift(in, step, width, vex)

	case x86.PUNPCKLBW:
		for i := 0; i < 8; i++ {
			res[2*i] = a[i]
			res[2*i+1] = b[i]
		}
	case x86.PUNPCKLWD:
		for i := 0; i < 4; i++ {
			setU16(&res, 2*i, getU16(&a, i))
			setU16(&res, 2*i+1, getU16(&b, i))
		}
	case x86.PUNPCKLDQ:
		for i := 0; i < 2; i++ {
			setU32(&res, 2*i, getU32(&a, i))
			setU32(&res, 2*i+1, getU32(&b, i))
		}
	case x86.PUNPCKHDQ:
		for i := 0; i < 2; i++ {
			setU32(&res, 2*i, getU32(&a, i+2))
			setU32(&res, 2*i+1, getU32(&b, i+2))
		}
	case x86.UNPCKLPS:
		for i := 0; i < 2; i++ {
			setU32(&res, 2*i, getU32(&a, i))
			setU32(&res, 2*i+1, getU32(&b, i))
		}

	default:
		return fmt.Errorf("exec: unimplemented vector op %s", op)
	}
	_ = fp
	r.State.WriteVec(dst, res, width, vex)
	return nil
}

func cmpMask8(b bool) byte {
	if b {
		return 0xFF
	}
	return 0
}

func cmpMask32(b bool) uint32 {
	if b {
		return 0xFFFFFFFF
	}
	return 0
}

func minF32(x, y float32) float32 {
	if x < y {
		return x
	}
	return y // NaN and equal cases return the second operand, as in hardware
}

func maxF32(x, y float32) float32 {
	if x > y {
		return x
	}
	return y
}

func minF64(x, y float64) float64 {
	if x < y {
		return x
	}
	return y
}

func maxF64(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}

// lanesF32 applies a binary float32 op per lane with DAZ/FTZ handling and
// subnormal accounting.
func (r *Runner) lanesF32(res, a, b *[32]byte, width int, step *Step, f func(x, y float32) float32) {
	for i := 0; i < width/4; i++ {
		setF32(res, i, r.f32op(getF32(a, i), getF32(b, i), step, f))
	}
}

func (r *Runner) lanesF64(res, a, b *[32]byte, width int, step *Step, f func(x, y float64) float64) {
	for i := 0; i < width/8; i++ {
		setF64(res, i, r.f64op(getF64(a, i), getF64(b, i), step, f))
	}
}

func (r *Runner) f32op(x, y float32, step *Step, f func(x, y float32) float32) float32 {
	if r.State.DAZ {
		if isSubnormal32(x) {
			x = 0
		}
		if isSubnormal32(y) {
			y = 0
		}
	} else if isSubnormal32(x) || isSubnormal32(y) {
		step.Subnormal = true
	}
	res := f(x, y)
	if isSubnormal32(res) {
		if r.State.FTZ {
			res = 0
		} else {
			step.Subnormal = true
		}
	}
	return res
}

func (r *Runner) f64op(x, y float64, step *Step, f func(x, y float64) float64) float64 {
	if r.State.DAZ {
		if isSubnormal64(x) {
			x = 0
		}
		if isSubnormal64(y) {
			y = 0
		}
	} else if isSubnormal64(x) || isSubnormal64(y) {
		step.Subnormal = true
	}
	res := f(x, y)
	if isSubnormal64(res) {
		if r.State.FTZ {
			res = 0
		} else {
			step.Subnormal = true
		}
	}
	return res
}

func (r *Runner) execScalarMove(in *x86.Inst, step *Step) error {
	op := in.Op
	size := 4
	if op == x86.MOVSD || op == x86.VMOVSD {
		size = 8
	}
	vex := op.IsVex()
	switch {
	case len(in.Args) == 3: // vmovss xmm1, xmm2, xmm3
		res := r.State.ReadVec(in.Args[1].Reg)
		src2 := r.State.ReadVec(in.Args[2].Reg)
		copy(res[:size], src2[:size])
		r.State.WriteVec(in.Args[0].Reg, res, 16, true)
	case in.Args[0].Kind == x86.KindMem: // store
		src := r.State.ReadVec(in.Args[1].Reg)
		return r.storeBytes(r.ea(in.Args[0].Mem), src[:size], step)
	case in.Args[1].Kind == x86.KindMem: // load: zeroes the rest of xmm
		var v [32]byte
		if err := r.loadBytes(r.ea(in.Args[1].Mem), v[:size], step); err != nil {
			return err
		}
		r.State.WriteVec(in.Args[0].Reg, v, 16, true)
	default: // legacy reg-reg merges the low lane
		res := r.State.ReadVec(in.Args[0].Reg)
		src := r.State.ReadVec(in.Args[1].Reg)
		copy(res[:size], src[:size])
		r.State.WriteVec(in.Args[0].Reg, res, 16, vex)
	}
	return nil
}

func (r *Runner) execVecMove(in *x86.Inst, step *Step, width int, vex bool) error {
	if in.Args[0].Kind == x86.KindMem { // store
		m := in.Args[0].Mem
		addr := r.ea(m)
		if alignedMoveOps[in.Op] && addr%uint64(width) != 0 {
			return &AlignmentError{Addr: addr, Req: width}
		}
		src := r.State.ReadVec(in.Args[1].Reg)
		return r.storeBytes(addr, src[:width], step)
	}
	if in.Args[1].Kind == x86.KindMem { // load
		addr := r.ea(in.Args[1].Mem)
		if alignedMoveOps[in.Op] && addr%uint64(width) != 0 {
			return &AlignmentError{Addr: addr, Req: width}
		}
		var v [32]byte
		if err := r.loadBytes(addr, v[:width], step); err != nil {
			return err
		}
		r.State.WriteVec(in.Args[0].Reg, v, width, true)
		return nil
	}
	r.State.WriteVec(in.Args[0].Reg, r.State.ReadVec(in.Args[1].Reg), width, vex)
	return nil
}

func (r *Runner) execTransfer(in *x86.Inst, step *Step) error {
	op := in.Op
	size := 4
	if op == x86.MOVQ {
		size = 8
	}
	dst, src := in.Args[0], in.Args[1]
	switch {
	case dst.Kind == x86.KindReg && dst.Reg.IsVec():
		var v [32]byte
		switch src.Kind {
		case x86.KindMem:
			if err := r.loadBytes(r.ea(src.Mem), v[:size], step); err != nil {
				return err
			}
		default:
			if src.Reg.IsVec() {
				s := r.State.ReadVec(src.Reg)
				copy(v[:size], s[:size])
			} else {
				setU64(&v, 0, r.State.ReadGPR(src.Reg))
			}
		}
		r.State.WriteVec(dst.Reg, v, 16, true)
	case dst.Kind == x86.KindMem:
		s := r.State.ReadVec(src.Reg)
		return r.storeBytes(r.ea(dst.Mem), s[:size], step)
	default: // GPR destination
		s := r.State.ReadVec(src.Reg)
		r.State.WriteGPR(dst.Reg, maskTo(getU64(&s, 0), size))
	}
	return nil
}

func (r *Runner) execUComi(in *x86.Inst, step *Step) error {
	s := r.State
	a, err := r.readVecArg(in, 0, step)
	if err != nil {
		return err
	}
	b, err := r.readVecArg(in, 1, step)
	if err != nil {
		return err
	}
	var x, y float64
	if in.Op == x86.UCOMISS || in.Op == x86.VUCOMISS {
		x, y = float64(getF32(&a, 0)), float64(getF32(&b, 0))
	} else {
		x, y = getF64(&a, 0), getF64(&b, 0)
	}
	s.OF, s.SF = false, false
	switch {
	case math.IsNaN(x) || math.IsNaN(y):
		s.ZF, s.PF, s.CF = true, true, true
	case x > y:
		s.ZF, s.PF, s.CF = false, false, false
	case x < y:
		s.ZF, s.PF, s.CF = false, false, true
	default:
		s.ZF, s.PF, s.CF = true, false, false
	}
	return nil
}

func (r *Runner) execCvt(in *x86.Inst, step *Step, width int, vex bool) error {
	s := r.State
	switch in.Op {
	case x86.CVTSI2SS, x86.CVTSI2SD:
		v, err := r.readIntArg(in, 1, step)
		if err != nil {
			return err
		}
		iv := signExtend(v, intOpSize(in, 1))
		res := s.ReadVec(in.Args[0].Reg)
		if in.Op == x86.CVTSI2SS {
			setF32(&res, 0, float32(iv))
		} else {
			setF64(&res, 0, float64(iv))
		}
		s.WriteVec(in.Args[0].Reg, res, 16, false)
	case x86.CVTTSS2SI, x86.CVTTSD2SI:
		v, err := r.readVecArg(in, 1, step)
		if err != nil {
			return err
		}
		var f float64
		if in.Op == x86.CVTTSS2SI {
			f = float64(getF32(&v, 0))
		} else {
			f = getF64(&v, 0)
		}
		s.WriteGPR(in.Args[0].Reg, uint64(int64(f)))
	case x86.CVTSS2SD:
		v, err := r.readVecArg(in, 1, step)
		if err != nil {
			return err
		}
		res := s.ReadVec(in.Args[0].Reg)
		setF64(&res, 0, float64(getF32(&v, 0)))
		s.WriteVec(in.Args[0].Reg, res, 16, false)
	case x86.CVTSD2SS:
		v, err := r.readVecArg(in, 1, step)
		if err != nil {
			return err
		}
		res := s.ReadVec(in.Args[0].Reg)
		setF32(&res, 0, float32(getF64(&v, 0)))
		s.WriteVec(in.Args[0].Reg, res, 16, false)
	case x86.CVTDQ2PS, x86.VCVTDQ2PS:
		v, err := r.readVecArg(in, 1, step)
		if err != nil {
			return err
		}
		var res [32]byte
		for i := 0; i < width/4; i++ {
			setF32(&res, i, float32(int32(getU32(&v, i))))
		}
		s.WriteVec(in.Args[0].Reg, res, width, vex)
	case x86.CVTPS2DQ, x86.VCVTPS2DQ:
		v, err := r.readVecArg(in, 1, step)
		if err != nil {
			return err
		}
		var res [32]byte
		for i := 0; i < width/4; i++ {
			setU32(&res, i, uint32(int32(math.RoundToEven(float64(getF32(&v, i))))))
		}
		s.WriteVec(in.Args[0].Reg, res, width, vex)
	}
	return nil
}

func (r *Runner) execMovMsk(in *x86.Inst, step *Step, width int) error {
	v, err := r.readVecArg(in, 1, step)
	if err != nil {
		return err
	}
	var mask uint64
	if in.Op == x86.MOVMSKPS {
		for i := 0; i < 4; i++ {
			if getU32(&v, i)>>31 == 1 {
				mask |= 1 << i
			}
		}
	} else {
		for i := 0; i < width; i++ {
			if v[i]>>7 == 1 {
				mask |= 1 << i
			}
		}
	}
	r.State.WriteGPR(in.Args[0].Reg, mask)
	return nil
}

func (r *Runner) execBroadcast(in *x86.Inst, step *Step, width int) error {
	v, err := r.readVecArg(in, 1, step)
	if err != nil {
		return err
	}
	var res [32]byte
	lane := 0
	switch in.Op {
	case x86.VPBROADCASTB:
		lane = 1
	case x86.VBROADCASTSS, x86.VPBROADCASTD:
		lane = 4
	case x86.VBROADCASTSD, x86.VPBROADCASTQ:
		lane = 8
	}
	for off := 0; off < width; off += lane {
		copy(res[off:off+lane], v[:lane])
	}
	r.State.WriteVec(in.Args[0].Reg, res, width, true)
	return nil
}

func (r *Runner) execExtract128(in *x86.Inst, step *Step) error {
	src := r.State.ReadVec(in.Args[1].Reg)
	sel := int(in.Args[2].Imm) & 1
	var half [32]byte
	copy(half[:16], src[sel*16:sel*16+16])
	if in.Args[0].Kind == x86.KindMem {
		return r.storeBytes(r.ea(in.Args[0].Mem), half[:16], step)
	}
	r.State.WriteVec(in.Args[0].Reg, half, 16, true)
	return nil
}

func (r *Runner) execInsert128(in *x86.Inst, step *Step) error {
	res := r.State.ReadVec(in.Args[1].Reg)
	src, err := r.readVecArg(in, 2, step)
	if err != nil {
		return err
	}
	sel := int(in.Args[3].Imm) & 1
	copy(res[sel*16:sel*16+16], src[:16])
	r.State.WriteVec(in.Args[0].Reg, res, 32, true)
	return nil
}

func (r *Runner) execPshufd(in *x86.Inst, step *Step, width int, vex bool) error {
	src, err := r.readVecArg(in, 1, step)
	if err != nil {
		return err
	}
	imm := uint8(in.Args[2].Imm)
	var res [32]byte
	for lane := 0; lane < width; lane += 16 {
		base := lane / 4
		for i := 0; i < 4; i++ {
			sel := int(imm>>(2*i)) & 3
			setU32(&res, base+i, getU32(&src, base+sel))
		}
	}
	r.State.WriteVec(in.Args[0].Reg, res, width, vex)
	return nil
}

func (r *Runner) execShufps(in *x86.Inst, step *Step, width int, vex bool) error {
	var a, b [32]byte
	var err error
	immIdx := 2
	if len(in.Args) == 4 { // VEX form
		if a, err = r.readVecArg(in, 1, step); err != nil {
			return err
		}
		if b, err = r.readVecArg(in, 2, step); err != nil {
			return err
		}
		immIdx = 3
	} else {
		a = r.State.ReadVec(in.Args[0].Reg)
		if b, err = r.readVecArg(in, 1, step); err != nil {
			return err
		}
	}
	imm := uint8(in.Args[immIdx].Imm)
	var res [32]byte
	for lane := 0; lane < width; lane += 16 {
		base := lane / 4
		setU32(&res, base+0, getU32(&a, base+int(imm>>0)&3))
		setU32(&res, base+1, getU32(&a, base+int(imm>>2)&3))
		setU32(&res, base+2, getU32(&b, base+int(imm>>4)&3))
		setU32(&res, base+3, getU32(&b, base+int(imm>>6)&3))
	}
	r.State.WriteVec(in.Args[0].Reg, res, width, vex)
	return nil
}

func (r *Runner) execVecShift(in *x86.Inst, step *Step, width int, vex bool) error {
	var src [32]byte
	var cnt uint64
	var dst x86.Reg
	var err error
	if in.Args[len(in.Args)-1].Kind == x86.KindImm {
		cnt = uint64(in.Args[len(in.Args)-1].Imm)
		if len(in.Args) == 3 { // VEX: vpslld dst, src, imm
			src = r.State.ReadVec(in.Args[1].Reg)
		} else {
			src = r.State.ReadVec(in.Args[0].Reg)
		}
		dst = in.Args[0].Reg
	} else {
		if len(in.Args) == 3 { // VEX: vpslld dst, src1, xmm/m
			src = r.State.ReadVec(in.Args[1].Reg)
			var c [32]byte
			if c, err = r.readVecArg(in, 2, step); err != nil {
				return err
			}
			cnt = getU64(&c, 0)
		} else {
			src = r.State.ReadVec(in.Args[0].Reg)
			var c [32]byte
			if c, err = r.readVecArg(in, 1, step); err != nil {
				return err
			}
			cnt = getU64(&c, 0)
		}
		dst = in.Args[0].Reg
	}

	var res [32]byte
	elem := 0
	arith, right := false, false
	switch in.Op {
	case x86.PSLLW:
		elem = 2
	case x86.PSLLD, x86.VPSLLD:
		elem = 4
	case x86.PSLLQ, x86.VPSLLQ:
		elem = 8
	case x86.PSRLW:
		elem, right = 2, true
	case x86.PSRLD, x86.VPSRLD:
		elem, right = 4, true
	case x86.PSRLQ, x86.VPSRLQ:
		elem, right = 8, true
	case x86.PSRAW:
		elem, right, arith = 2, true, true
	case x86.PSRAD:
		elem, right, arith = 4, true, true
	}
	bitsN := uint64(elem) * 8
	for off := 0; off < width; off += elem {
		var v uint64
		switch elem {
		case 2:
			v = uint64(getU16(&src, off/2))
		case 4:
			v = uint64(getU32(&src, off/4))
		case 8:
			v = getU64(&src, off/8)
		}
		var out uint64
		switch {
		case cnt >= bitsN && !arith:
			out = 0
		case cnt >= bitsN && arith:
			out = uint64(signExtend(v, elem) >> (bitsN - 1))
		case right && arith:
			out = uint64(signExtend(v, elem) >> cnt)
		case right:
			out = v >> cnt
		default:
			out = v << cnt
		}
		switch elem {
		case 2:
			setU16(&res, off/2, uint16(out))
		case 4:
			setU32(&res, off/4, uint32(out))
		case 8:
			setU64(&res, off/8, out)
		}
	}
	r.State.WriteVec(dst, res, width, vex)
	return nil
}

func (r *Runner) execScalarF32(in *x86.Inst, step *Step, a, b *[32]byte) error {
	// For legacy 2-op forms a is dst, b is src; for VEX 3-op a is src1, b is
	// src2 (already loaded by the caller).
	op := in.Op
	x, y := getF32(a, 0), getF32(b, 0)
	var res float32
	switch op {
	case x86.ADDSS, x86.VADDSS:
		res = r.f32op(x, y, step, func(p, q float32) float32 { return p + q })
	case x86.SUBSS, x86.VSUBSS:
		res = r.f32op(x, y, step, func(p, q float32) float32 { return p - q })
	case x86.MULSS, x86.VMULSS:
		res = r.f32op(x, y, step, func(p, q float32) float32 { return p * q })
	case x86.DIVSS, x86.VDIVSS:
		res = r.f32op(x, y, step, func(p, q float32) float32 { return p / q })
	case x86.MINSS:
		res = r.f32op(x, y, step, minF32)
	case x86.MAXSS:
		res = r.f32op(x, y, step, maxF32)
	case x86.SQRTSS:
		res = r.f32op(y, y, step, func(_, q float32) float32 {
			return float32(math.Sqrt(float64(q)))
		})
	}
	out := *a
	setF32(&out, 0, res)
	r.State.WriteVec(in.Args[0].Reg, out, 16, op.IsVex())
	return nil
}

func (r *Runner) execScalarF64(in *x86.Inst, step *Step, a, b *[32]byte) error {
	op := in.Op
	x, y := getF64(a, 0), getF64(b, 0)
	var res float64
	switch op {
	case x86.ADDSD, x86.VADDSD:
		res = r.f64op(x, y, step, func(p, q float64) float64 { return p + q })
	case x86.SUBSD, x86.VSUBSD:
		res = r.f64op(x, y, step, func(p, q float64) float64 { return p - q })
	case x86.MULSD, x86.VMULSD:
		res = r.f64op(x, y, step, func(p, q float64) float64 { return p * q })
	case x86.DIVSD, x86.VDIVSD:
		res = r.f64op(x, y, step, func(p, q float64) float64 { return p / q })
	case x86.MINSD:
		res = r.f64op(x, y, step, minF64)
	case x86.MAXSD:
		res = r.f64op(x, y, step, maxF64)
	case x86.SQRTSD:
		res = r.f64op(y, y, step, func(_, q float64) float64 { return math.Sqrt(q) })
	}
	out := *a
	setF64(&out, 0, res)
	r.State.WriteVec(in.Args[0].Reg, out, 16, op.IsVex())
	return nil
}

func (r *Runner) execFMA(in *x86.Inst, step *Step, width int) error {
	op := in.Op
	dstv := r.State.ReadVec(in.Args[0].Reg)
	src2 := r.State.ReadVec(in.Args[1].Reg)
	src3, err := r.readVecArg(in, 2, step)
	if err != nil {
		return err
	}

	// Operand roles by the numeric suffix: 132: d = d*s3 + s2;
	// 213: d = s2*d + s3; 231: d = s2*s3 + d.
	var ma, mb, ad *[32]byte
	switch op {
	case x86.VFMADD132PS, x86.VFMADD132PD, x86.VFMADD132SS, x86.VFMADD132SD:
		ma, mb, ad = &dstv, &src3, &src2
	case x86.VFMADD213PS, x86.VFMADD213PD, x86.VFMADD213SS, x86.VFMADD213SD:
		ma, mb, ad = &src2, &dstv, &src3
	default: // 231 variants
		ma, mb, ad = &src2, &src3, &dstv
	}
	negate := op == x86.VFNMADD231PS || op == x86.VFNMADD231PD

	var res [32]byte
	double := false
	scalar := false
	switch op {
	case x86.VFMADD132PD, x86.VFMADD213PD, x86.VFMADD231PD, x86.VFNMADD231PD:
		double = true
	case x86.VFMADD132SS, x86.VFMADD213SS, x86.VFMADD231SS:
		scalar = true
	case x86.VFMADD132SD, x86.VFMADD213SD, x86.VFMADD231SD:
		double, scalar = true, true
	}

	if double {
		n := width / 8
		if scalar {
			n = 1
			res = dstv
		}
		for i := 0; i < n; i++ {
			v := r.f64op(getF64(ma, i), getF64(mb, i), step, func(p, q float64) float64 { return p * q })
			v = r.f64op(v, getF64(ad, i), step, func(p, q float64) float64 { return p + q })
			if negate {
				v = r.f64op(-getF64(ma, i)*getF64(mb, i), getF64(ad, i), step,
					func(p, q float64) float64 { return p + q })
			}
			setF64(&res, i, v)
		}
	} else {
		n := width / 4
		if scalar {
			n = 1
			res = dstv
		}
		for i := 0; i < n; i++ {
			v := r.f32op(getF32(ma, i), getF32(mb, i), step, func(p, q float32) float32 { return p * q })
			v = r.f32op(v, getF32(ad, i), step, func(p, q float32) float32 { return p + q })
			if negate {
				v = r.f32op(-getF32(ma, i)*getF32(mb, i), getF32(ad, i), step,
					func(p, q float32) float32 { return p + q })
			}
			setF32(&res, i, v)
		}
	}
	if scalar {
		width = 16
	}
	r.State.WriteVec(in.Args[0].Reg, res, width, true)
	return nil
}
