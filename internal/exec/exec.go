package exec

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"bhive/internal/vm"
	"bhive/internal/x86"
)

// MemAccess is one dynamic memory access.
type MemAccess struct {
	Addr  uint64 // virtual address
	Phys  uint64 // physical address after translation
	Size  uint8
	Write bool
}

// Step is the dynamic record of one executed instruction: what the timing
// model needs beyond the static instruction.
type Step struct {
	Inst  *x86.Inst
	Load  *MemAccess
	Store *MemAccess
	// Subnormal marks an FP instruction that consumed or produced a
	// denormal value that was not flushed by FTZ/DAZ.
	Subnormal bool
}

// DivideError is the #DE exception (division by zero or quotient
// overflow); a block raising it cannot be profiled.
type DivideError struct{}

func (DivideError) Error() string { return "exec: divide error (#DE)" }

// Runner executes instruction sequences against an address space.
type Runner struct {
	State *State
	AS    *vm.AddressSpace

	// Record enables trace collection into Trace.
	Record bool
	Trace  []Step

	// Acc is the arena backing the Load/Store records of traced steps, so
	// a run performs no per-access heap allocation. Run reserves enough
	// free capacity up front that appends never reallocate — entries stay
	// address-stable for the lifetime of the trace that points into them.
	// Callers recycling a runner's buffers must recycle Trace and Acc
	// together: a step and its accesses share one validity window.
	Acc []MemAccess

	// OnFault, when non-nil, is invoked for every page fault. Returning
	// true means the handler repaired the fault (e.g. mapped the page) and
	// the access is retried in place; returning false propagates the fault
	// as an error. Because execution is deterministic and mapping only adds
	// pages, continuing in place yields exactly the trace that the
	// restart-per-fault monitor protocol converges to — this is what lets
	// one functional pass discover and map every faulting page.
	OnFault func(f *vm.Fault) bool
}

// NewRunner builds a runner over fresh architectural state.
func NewRunner(as *vm.AddressSpace) *Runner {
	return &Runner{State: &State{}, AS: as}
}

// Run executes insts in order. addrs, when non-nil, holds each
// instruction's virtual address plus a final entry for the end address
// (used for RIP-relative addressing).
func (r *Runner) Run(insts []x86.Inst, addrs []uint64) error {
	// Reserve arena headroom so newAccess never reallocates mid-run: at
	// most one load and one store per instruction. A prior Run's entries
	// are kept live by the steps pointing at the old backing array, so a
	// full arena is replaced, not grown in place.
	if free := cap(r.Acc) - len(r.Acc); free < 2*len(insts) {
		r.Acc = make([]MemAccess, 0, 2*len(insts))
	}
	for i := range insts {
		if addrs != nil {
			r.State.RIP = addrs[i+1] // RIP-relative is next-instruction based
		}
		step := Step{Inst: &insts[i]}
		if err := r.exec(&insts[i], &step); err != nil {
			return err
		}
		if r.Record {
			r.Trace = append(r.Trace, step)
		}
	}
	return nil
}

// ea computes the effective address of a memory operand.
func (r *Runner) ea(m x86.Mem) uint64 {
	var a uint64
	switch m.Base {
	case x86.RegNone:
	case x86.RIP:
		a = r.State.RIP
	default:
		a = r.State.ReadGPR(m.Base)
	}
	if m.Index != x86.RegNone {
		a += r.State.ReadGPR(m.Index) * uint64(m.Scale)
	}
	return a + uint64(int64(m.Disp))
}

func (r *Runner) loadBytes(addr uint64, buf []byte, step *Step) error {
	for {
		err := r.AS.Read(addr, buf)
		if err == nil {
			break
		}
		if f, ok := err.(*vm.Fault); ok && r.OnFault != nil && r.OnFault(f) {
			continue // repaired: retry the access in place
		}
		return err
	}
	_, phys, _ := r.AS.Translate(addr)
	step.Load = r.newAccess(MemAccess{Addr: addr, Phys: phys, Size: uint8(len(buf))})
	return nil
}

// newAccess places an access record in the arena and returns its stable
// address. The fallback allocation is unreachable under Run's reservation
// (≤2 accesses per instruction) but keeps pointer stability unconditional.
func (r *Runner) newAccess(a MemAccess) *MemAccess {
	if len(r.Acc) < cap(r.Acc) {
		r.Acc = append(r.Acc, a)
		return &r.Acc[len(r.Acc)-1]
	}
	p := new(MemAccess)
	*p = a
	return p
}

func (r *Runner) storeBytes(addr uint64, buf []byte, step *Step) error {
	for {
		err := r.AS.Write(addr, buf)
		if err == nil {
			break
		}
		if f, ok := err.(*vm.Fault); ok && r.OnFault != nil && r.OnFault(f) {
			continue
		}
		return err
	}
	_, phys, _ := r.AS.Translate(addr)
	step.Store = r.newAccess(MemAccess{Addr: addr, Phys: phys, Size: uint8(len(buf)), Write: true})
	return nil
}

func (r *Runner) loadInt(addr uint64, size int, step *Step) (uint64, error) {
	var buf [8]byte
	if err := r.loadBytes(addr, buf[:size], step); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func (r *Runner) storeInt(addr uint64, v uint64, size int, step *Step) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return r.storeBytes(addr, buf[:size], step)
}

// readIntArg reads operand k as an integer value (zero-extended for
// registers/memory, sign-extended immediates reinterpreted as unsigned).
func (r *Runner) readIntArg(in *x86.Inst, k int, step *Step) (uint64, error) {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		return r.State.ReadGPR(a.Reg), nil
	case x86.KindImm:
		return uint64(a.Imm), nil
	case x86.KindMem:
		return r.loadInt(r.ea(a.Mem), int(a.Mem.Size), step)
	}
	return 0, fmt.Errorf("exec: bad operand")
}

// writeIntArg writes v to operand k.
func (r *Runner) writeIntArg(in *x86.Inst, k int, v uint64, step *Step) error {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		r.State.WriteGPR(a.Reg, v)
		return nil
	case x86.KindMem:
		return r.storeInt(r.ea(a.Mem), v, int(a.Mem.Size), step)
	}
	return fmt.Errorf("exec: bad destination operand")
}

// intOpSize returns the operand width in bytes of the primary operand.
func intOpSize(in *x86.Inst, k int) int {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		return a.Reg.Size()
	case x86.KindMem:
		return int(a.Mem.Size)
	}
	return 8
}

func (r *Runner) exec(in *x86.Inst, step *Step) error {
	s := r.State
	op := in.Op
	if op.IsVex() || isSSEOp(op) {
		return r.execVec(in, step)
	}

	switch op {
	case x86.MOV:
		v, err := r.readIntArg(in, 1, step)
		if err != nil {
			return err
		}
		return r.writeIntArg(in, 0, v, step)

	case x86.MOVZX:
		v, err := r.readIntArg(in, 1, step)
		if err != nil {
			return err
		}
		return r.writeIntArg(in, 0, maskTo(v, intOpSize(in, 1)), step)

	case x86.MOVSX, x86.MOVSXD:
		v, err := r.readIntArg(in, 1, step)
		if err != nil {
			return err
		}
		sv := signExtend(v, intOpSize(in, 1))
		return r.writeIntArg(in, 0, uint64(sv), step)

	case x86.LEA:
		s.WriteGPR(in.Args[0].Reg, maskTo(r.ea(in.Args[1].Mem), in.Args[0].Reg.Size()))
		return nil

	case x86.PUSH:
		v, err := r.readIntArg(in, 0, step)
		if err != nil {
			return err
		}
		s.GPR[x86.RSP.Num()] -= 8
		return r.storeInt(s.GPR[x86.RSP.Num()], v, 8, step)

	case x86.POP:
		v, err := r.loadInt(s.GPR[x86.RSP.Num()], 8, step)
		if err != nil {
			return err
		}
		s.GPR[x86.RSP.Num()] += 8
		return r.writeIntArg(in, 0, v, step)

	case x86.XCHG:
		a, err := r.readIntArg(in, 0, step)
		if err != nil {
			return err
		}
		b, err := r.readIntArg(in, 1, step)
		if err != nil {
			return err
		}
		if err := r.writeIntArg(in, 0, b, step); err != nil {
			return err
		}
		return r.writeIntArg(in, 1, a, step)

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR,
		x86.CMP, x86.TEST:
		return r.execALU(in, step)

	case x86.INC, x86.DEC, x86.NEG, x86.NOT:
		return r.execUnary(in, step)

	case x86.BSWAP:
		v := s.ReadGPR(in.Args[0].Reg)
		size := in.Args[0].Reg.Size()
		if size == 4 {
			v = uint64(bits.ReverseBytes32(uint32(v)))
		} else {
			v = bits.ReverseBytes64(v)
		}
		s.WriteGPR(in.Args[0].Reg, v)
		return nil

	case x86.IMUL:
		return r.execIMul(in, step)
	case x86.MUL:
		return r.execWideMul(in, step)
	case x86.DIV, x86.IDIV:
		return r.execDiv(in, step)

	case x86.CDQ:
		s.WriteGPR(x86.EDX, uint64(uint32(int32(s.ReadGPR(x86.EAX))>>31)))
		return nil
	case x86.CQO:
		s.GPR[x86.RDX.Num()] = uint64(int64(s.GPR[x86.RAX.Num()]) >> 63)
		return nil

	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		return r.execShift(in, step)

	case x86.POPCNT, x86.LZCNT, x86.TZCNT, x86.BSF, x86.BSR:
		return r.execBitScan(in, step)

	case x86.BT:
		v, err := r.readIntArg(in, 0, step)
		if err != nil {
			return err
		}
		idx, err := r.readIntArg(in, 1, step)
		if err != nil {
			return err
		}
		bitsN := uint64(intOpSize(in, 0)) * 8
		s.CF = v>>(idx%bitsN)&1 == 1
		return nil

	case x86.NOP, x86.VZEROUPPER:
		if op == x86.VZEROUPPER {
			for i := range s.Vec {
				for b := 16; b < 32; b++ {
					s.Vec[i][b] = 0
				}
			}
		}
		return nil
	}

	// Conditional moves and sets.
	if c := op.Cond(); c != x86.CondNone {
		switch {
		case op >= x86.CMOVE && op <= x86.CMOVNS:
			if s.Cond(c) {
				v, err := r.readIntArg(in, 1, step)
				if err != nil {
					return err
				}
				return r.writeIntArg(in, 0, v, step)
			}
			// Even when the condition fails, a memory source is read.
			if in.Args[1].Kind == x86.KindMem {
				_, err := r.readIntArg(in, 1, step)
				return err
			}
			return nil
		case op >= x86.SETE && op <= x86.SETNS:
			v := uint64(0)
			if s.Cond(c) {
				v = 1
			}
			return r.writeIntArg(in, 0, v, step)
		}
	}

	if op.IsBranch() {
		// Basic blocks never contain branches; treat as a no-op marker.
		return nil
	}
	return fmt.Errorf("exec: unimplemented op %s", op)
}

func (r *Runner) execALU(in *x86.Inst, step *Step) error {
	s := r.State
	size := intOpSize(in, 0)
	a, err := r.readIntArg(in, 0, step)
	if err != nil {
		return err
	}
	b, err := r.readIntArg(in, 1, step)
	if err != nil {
		return err
	}
	a, b = maskTo(a, size), maskTo(b, size)
	var res uint64
	write := true
	switch in.Op {
	case x86.ADD:
		res = a + b
		s.setAddFlags(a, b, res, size)
	case x86.ADC:
		c := uint64(0)
		if s.CF {
			c = 1
		}
		res = a + b + c
		s.setAddFlags(a, b+c, res, size)
	case x86.SUB:
		res = a - b
		s.setSubFlags(a, b, res, size)
	case x86.SBB:
		c := uint64(0)
		if s.CF {
			c = 1
		}
		res = a - b - c
		s.setSubFlags(a, b+c, res, size)
	case x86.CMP:
		res = a - b
		s.setSubFlags(a, b, res, size)
		write = false
	case x86.AND:
		res = a & b
		s.setLogicFlags(res, size)
	case x86.TEST:
		res = a & b
		s.setLogicFlags(res, size)
		write = false
	case x86.OR:
		res = a | b
		s.setLogicFlags(res, size)
	case x86.XOR:
		res = a ^ b
		s.setLogicFlags(res, size)
	}
	if !write {
		return nil
	}
	return r.writeIntArg(in, 0, maskTo(res, size), step)
}

func (r *Runner) execUnary(in *x86.Inst, step *Step) error {
	s := r.State
	size := intOpSize(in, 0)
	a, err := r.readIntArg(in, 0, step)
	if err != nil {
		return err
	}
	a = maskTo(a, size)
	var res uint64
	switch in.Op {
	case x86.INC:
		res = a + 1
		cf := s.CF // inc preserves CF
		s.setAddFlags(a, 1, res, size)
		s.CF = cf
	case x86.DEC:
		res = a - 1
		cf := s.CF
		s.setSubFlags(a, 1, res, size)
		s.CF = cf
	case x86.NEG:
		res = -a
		s.setSubFlags(0, a, res, size)
		s.CF = a != 0
	case x86.NOT:
		res = ^a // not touches no flags
	}
	return r.writeIntArg(in, 0, maskTo(res, size), step)
}

func (r *Runner) execIMul(in *x86.Inst, step *Step) error {
	s := r.State
	size := intOpSize(in, 0)
	var a, b uint64
	var err error
	if len(in.Args) == 3 {
		if a, err = r.readIntArg(in, 1, step); err != nil {
			return err
		}
		b = uint64(in.Args[2].Imm)
	} else {
		if a, err = r.readIntArg(in, 0, step); err != nil {
			return err
		}
		if b, err = r.readIntArg(in, 1, step); err != nil {
			return err
		}
	}
	sa, sb := signExtend(a, size), signExtend(b, size)
	res := uint64(sa * sb)
	hi, _ := bits.Mul64(uint64(sa), uint64(sb))
	s.CF = signExtend(res, size) != sa*sb || (size == 8 && hi != 0 && hi != ^uint64(0))
	s.OF = s.CF
	s.setZSP(res, size)
	return r.writeIntArg(in, 0, maskTo(res, size), step)
}

func (r *Runner) execWideMul(in *x86.Inst, step *Step) error {
	s := r.State
	size := intOpSize(in, 0)
	v, err := r.readIntArg(in, 0, step)
	if err != nil {
		return err
	}
	switch size {
	case 4:
		prod := s.ReadGPR(x86.EAX) * maskTo(v, 4)
		s.WriteGPR(x86.EAX, prod&0xFFFFFFFF)
		s.WriteGPR(x86.EDX, prod>>32)
		s.CF = prod>>32 != 0
	default:
		hi, lo := bits.Mul64(s.GPR[x86.RAX.Num()], v)
		s.GPR[x86.RAX.Num()] = lo
		s.GPR[x86.RDX.Num()] = hi
		s.CF = hi != 0
	}
	s.OF = s.CF
	return nil
}

func (r *Runner) execDiv(in *x86.Inst, step *Step) error {
	s := r.State
	size := intOpSize(in, 0)
	v, err := r.readIntArg(in, 0, step)
	if err != nil {
		return err
	}
	v = maskTo(v, size)
	if v == 0 {
		return DivideError{}
	}
	signed := in.Op == x86.IDIV
	switch size {
	case 1:
		dividend := s.ReadGPR(x86.AX)
		if signed {
			q := int64(int16(dividend)) / int64(int8(v))
			rem := int64(int16(dividend)) % int64(int8(v))
			if q > 127 || q < -128 {
				return DivideError{}
			}
			s.WriteGPR(x86.AL, uint64(q))
			s.WriteGPR(x86.AH, uint64(rem))
		} else {
			q := dividend / v
			if q > 0xFF {
				return DivideError{}
			}
			s.WriteGPR(x86.AL, q)
			s.WriteGPR(x86.AH, dividend%v)
		}
	case 4:
		dividend := s.ReadGPR(x86.EDX)<<32 | s.ReadGPR(x86.EAX)
		if signed {
			q := int64(dividend) / int64(int32(v))
			rem := int64(dividend) % int64(int32(v))
			if q > 0x7FFFFFFF || q < -0x80000000 {
				return DivideError{}
			}
			s.WriteGPR(x86.EAX, uint64(uint32(q)))
			s.WriteGPR(x86.EDX, uint64(uint32(rem)))
		} else {
			q := dividend / v
			if q > 0xFFFFFFFF {
				return DivideError{}
			}
			s.WriteGPR(x86.EAX, q)
			s.WriteGPR(x86.EDX, dividend%v)
		}
	default:
		hi, lo := s.GPR[x86.RDX.Num()], s.GPR[x86.RAX.Num()]
		if signed {
			negDividend := int64(hi) < 0
			if negDividend {
				lo = -lo
				hi = ^hi
				if lo == 0 {
					hi++
				}
			}
			dv := int64(v)
			negDiv := dv < 0
			uv := uint64(dv)
			if negDiv {
				uv = uint64(-dv)
			}
			if hi >= uv {
				return DivideError{}
			}
			q, rem := bits.Div64(hi, lo, uv)
			if negDividend != negDiv {
				if q > 1<<63 {
					return DivideError{}
				}
				q = -q
			} else if q >= 1<<63 {
				return DivideError{}
			}
			if negDividend {
				rem = -rem
			}
			s.GPR[x86.RAX.Num()] = q
			s.GPR[x86.RDX.Num()] = rem
		} else {
			if hi >= v {
				return DivideError{}
			}
			q, rem := bits.Div64(hi, lo, v)
			s.GPR[x86.RAX.Num()] = q
			s.GPR[x86.RDX.Num()] = rem
		}
	}
	return nil
}

func (r *Runner) execShift(in *x86.Inst, step *Step) error {
	s := r.State
	size := intOpSize(in, 0)
	a, err := r.readIntArg(in, 0, step)
	if err != nil {
		return err
	}
	a = maskTo(a, size)
	cnt, err := r.readIntArg(in, 1, step)
	if err != nil {
		return err
	}
	if size == 8 {
		cnt &= 63
	} else {
		cnt &= 31
	}
	if cnt == 0 {
		// Flags unchanged; destination rewritten with the same value (a
		// memory destination still performs its store).
		return r.writeIntArg(in, 0, a, step)
	}
	bitsN := uint(size) * 8
	var res uint64
	switch in.Op {
	case x86.SHL:
		res = a << cnt
		s.CF = cnt <= uint64(bitsN) && a>>(uint64(bitsN)-cnt)&1 == 1
		s.setZSP(res, size)
		s.OF = (res>>(bitsN-1)&1 == 1) != s.CF
	case x86.SHR:
		res = a >> cnt
		s.CF = a>>(cnt-1)&1 == 1
		s.setZSP(res, size)
		s.OF = a>>(bitsN-1)&1 == 1
	case x86.SAR:
		res = uint64(signExtend(a, size) >> cnt)
		s.CF = a>>(cnt-1)&1 == 1
		s.setZSP(res, size)
		s.OF = false
	case x86.ROL:
		k := cnt % uint64(bitsN)
		res = a<<k | a>>(uint64(bitsN)-k)
		s.CF = res&1 == 1
	case x86.ROR:
		k := cnt % uint64(bitsN)
		res = a>>k | a<<(uint64(bitsN)-k)
		s.CF = res>>(bitsN-1)&1 == 1
	}
	return r.writeIntArg(in, 0, maskTo(res, size), step)
}

func (r *Runner) execBitScan(in *x86.Inst, step *Step) error {
	s := r.State
	size := intOpSize(in, 1)
	v, err := r.readIntArg(in, 1, step)
	if err != nil {
		return err
	}
	v = maskTo(v, size)
	bitsN := size * 8
	var res uint64
	switch in.Op {
	case x86.POPCNT:
		res = uint64(bits.OnesCount64(v))
		s.ZF = v == 0
	case x86.LZCNT:
		res = uint64(bits.LeadingZeros64(v) - (64 - bitsN))
		s.CF = v == 0
		s.ZF = res == 0
	case x86.TZCNT:
		if v == 0 {
			res = uint64(bitsN)
		} else {
			res = uint64(bits.TrailingZeros64(v))
		}
		s.CF = v == 0
		s.ZF = res == 0
	case x86.BSF:
		if v == 0 {
			s.ZF = true
			return nil // destination undefined; leave unchanged
		}
		s.ZF = false
		res = uint64(bits.TrailingZeros64(v))
	case x86.BSR:
		if v == 0 {
			s.ZF = true
			return nil
		}
		s.ZF = false
		res = uint64(63 - bits.LeadingZeros64(v))
	}
	return r.writeIntArg(in, 0, res, step)
}
