// Package exec is the functional (architectural) executor for the x86-64
// subset: it computes register values, flags, memory addresses and
// floating-point results. The measurement framework uses it twice per
// basic block — once to discover the virtual pages the block touches (the
// mapping run) and once more to produce the dynamic micro-op trace that the
// cycle-level pipeline model times.
package exec

import (
	"encoding/binary"
	"math"

	"bhive/internal/x86"
)

// State is the architectural register state of the simulated process.
type State struct {
	GPR [16]uint64
	Vec [16][32]byte

	// Status flags.
	ZF, SF, CF, OF, PF bool

	// MXCSR bits controlling gradual underflow: flush-to-zero and
	// denormals-are-zero. BHive sets both to "normalize" FP timing.
	FTZ, DAZ bool

	// RIP is the address of the next instruction (for RIP-relative
	// addressing); the run loop maintains it.
	RIP uint64
}

// InitRegisters sets every general-purpose register to the given pattern
// and fills vector registers with it too — the BHive initialization step
// that makes loaded values usable as pointers.
func (s *State) InitRegisters(pattern uint64) {
	for i := range s.GPR {
		s.GPR[i] = pattern
	}
	var lane [8]byte
	binary.LittleEndian.PutUint64(lane[:], pattern)
	for i := range s.Vec {
		for o := 0; o < 32; o += 8 {
			copy(s.Vec[i][o:o+8], lane[:])
		}
	}
	s.ZF, s.SF, s.CF, s.OF, s.PF = false, false, false, false, false
}

// ReadGPR returns the value of a general-purpose register, zero-extended
// to 64 bits.
func (s *State) ReadGPR(r x86.Reg) uint64 {
	full := s.GPR[r.Base64().Num()]
	switch r.Class() {
	case x86.ClassGP64:
		return full
	case x86.ClassGP32:
		return full & 0xFFFFFFFF
	case x86.ClassGP16:
		return full & 0xFFFF
	case x86.ClassGP8:
		if r.IsHighByte() {
			return (full >> 8) & 0xFF
		}
		return full & 0xFF
	}
	return 0
}

// WriteGPR stores v into r with x86 merge semantics: 8- and 16-bit writes
// merge into the surrounding register, 32-bit writes zero-extend.
func (s *State) WriteGPR(r x86.Reg, v uint64) {
	n := r.Base64().Num()
	switch r.Class() {
	case x86.ClassGP64:
		s.GPR[n] = v
	case x86.ClassGP32:
		s.GPR[n] = v & 0xFFFFFFFF
	case x86.ClassGP16:
		s.GPR[n] = s.GPR[n]&^uint64(0xFFFF) | v&0xFFFF
	case x86.ClassGP8:
		if r.IsHighByte() {
			s.GPR[n] = s.GPR[n]&^uint64(0xFF00) | (v&0xFF)<<8
		} else {
			s.GPR[n] = s.GPR[n]&^uint64(0xFF) | v&0xFF
		}
	}
}

// vecNum returns the register file slot of a vector register.
func vecNum(r x86.Reg) int { return r.Num() }

// ReadVec copies the register's full 256-bit value.
func (s *State) ReadVec(r x86.Reg) [32]byte { return s.Vec[vecNum(r)] }

// WriteVec writes width bytes of val into r. Legacy SSE (zeroUpper=false)
// preserves bytes above width; VEX encodings zero them.
func (s *State) WriteVec(r x86.Reg, val [32]byte, width int, zeroUpper bool) {
	n := vecNum(r)
	copy(s.Vec[n][:width], val[:width])
	if zeroUpper {
		for i := width; i < 32; i++ {
			s.Vec[n][i] = 0
		}
	}
}

// Cond evaluates an x86 condition code against the flags.
func (s *State) Cond(c x86.Cond) bool {
	switch c {
	case x86.CondE:
		return s.ZF
	case x86.CondNE:
		return !s.ZF
	case x86.CondL:
		return s.SF != s.OF
	case x86.CondLE:
		return s.ZF || s.SF != s.OF
	case x86.CondG:
		return !s.ZF && s.SF == s.OF
	case x86.CondGE:
		return s.SF == s.OF
	case x86.CondB:
		return s.CF
	case x86.CondBE:
		return s.CF || s.ZF
	case x86.CondA:
		return !s.CF && !s.ZF
	case x86.CondAE:
		return !s.CF
	case x86.CondS:
		return s.SF
	case x86.CondNS:
		return !s.SF
	}
	return false
}

// setLogicFlags sets flags after a logical op (CF=OF=0).
func (s *State) setLogicFlags(res uint64, size int) {
	s.CF, s.OF = false, false
	s.setZSP(res, size)
}

// setZSP sets ZF, SF and PF from a result.
func (s *State) setZSP(res uint64, size int) {
	res = maskTo(res, size)
	s.ZF = res == 0
	s.SF = res>>(uint(size)*8-1)&1 == 1
	// PF covers the low byte only.
	b := res & 0xFF
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	s.PF = b&1 == 0
}

// setAddFlags sets flags for a + b (+carry) = res.
func (s *State) setAddFlags(a, b, res uint64, size int) {
	bits := uint(size) * 8
	a, b, res = maskTo(a, size), maskTo(b, size), maskTo(res, size)
	s.CF = res < a || (res == a && b != 0)
	sa, sb, sr := a>>(bits-1)&1, b>>(bits-1)&1, res>>(bits-1)&1
	s.OF = sa == sb && sa != sr
	s.setZSP(res, size)
}

// setSubFlags sets flags for a - b (- borrow) = res.
func (s *State) setSubFlags(a, b, res uint64, size int) {
	bits := uint(size) * 8
	a, b, res = maskTo(a, size), maskTo(b, size), maskTo(res, size)
	s.CF = a < b || (a == b && res != 0)
	sa, sb, sr := a>>(bits-1)&1, b>>(bits-1)&1, res>>(bits-1)&1
	s.OF = sa != sb && sa != sr
	s.setZSP(res, size)
}

func maskTo(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(uint(size)*8) - 1)
}

func signExtend(v uint64, size int) int64 {
	switch size {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	}
	return int64(v)
}

// --- float lane helpers ---

func getF32(v *[32]byte, lane int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(v[lane*4:]))
}

func setF32(v *[32]byte, lane int, f float32) {
	binary.LittleEndian.PutUint32(v[lane*4:], math.Float32bits(f))
}

func getF64(v *[32]byte, lane int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v[lane*8:]))
}

func setF64(v *[32]byte, lane int, f float64) {
	binary.LittleEndian.PutUint64(v[lane*8:], math.Float64bits(f))
}

func getU32(v *[32]byte, lane int) uint32 { return binary.LittleEndian.Uint32(v[lane*4:]) }
func setU32(v *[32]byte, lane int, x uint32) {
	binary.LittleEndian.PutUint32(v[lane*4:], x)
}
func getU64(v *[32]byte, lane int) uint64 { return binary.LittleEndian.Uint64(v[lane*8:]) }
func setU64(v *[32]byte, lane int, x uint64) {
	binary.LittleEndian.PutUint64(v[lane*8:], x)
}
func getU16(v *[32]byte, lane int) uint16 { return binary.LittleEndian.Uint16(v[lane*2:]) }
func setU16(v *[32]byte, lane int, x uint16) {
	binary.LittleEndian.PutUint16(v[lane*2:], x)
}

// isSubnormal32 reports whether f is a denormal (nonzero with zero
// exponent) — the inputs that trigger the microcoded gradual-underflow
// path and its up-to-20x slowdown.
func isSubnormal32(f float32) bool {
	b := math.Float32bits(f)
	return b&0x7F800000 == 0 && b&0x007FFFFF != 0
}

func isSubnormal64(f float64) bool {
	b := math.Float64bits(f)
	return b&0x7FF0000000000000 == 0 && b&0x000FFFFFFFFFFFFF != 0
}
