package exec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bhive/internal/vm"
	"bhive/internal/x86"
)

// TestExecuteEveryForm executes one canonical instance of every encoding
// form in the ISA table against a mapped address space: the executor must
// handle each without "unimplemented" errors or panics.
func TestExecuteEveryForm(t *testing.T) {
	base := uint64(0x100000)
	for i := range x86.Forms {
		f := &x86.Forms[i]
		if f.Op.IsBranch() {
			continue
		}
		in := formInstance(f)
		if in == nil {
			continue
		}
		as := vm.New()
		page := as.NewPhysPage()
		page.Fill(uint32(base))
		// Map generously around the base pattern.
		for off := uint64(0); off < 0x4000; off += vm.PageSize {
			as.Map(base+off, page)
		}
		r := NewRunner(as)
		r.State.InitRegisters(base)
		r.State.FTZ, r.State.DAZ = true, true
		err := r.Run([]x86.Inst{*in}, nil)
		if err != nil {
			// Faults on exotic addresses are fine; "unimplemented" is not.
			if _, ok := err.(*vm.Fault); ok {
				continue
			}
			if _, ok := err.(DivideError); ok {
				continue
			}
			if _, ok := err.(*AlignmentError); ok {
				continue
			}
			t.Errorf("%v: %v", in, err)
		}
	}
}

// formInstance builds a canonical executable instruction for a form.
func formInstance(f *x86.Form) *x86.Inst {
	in := &x86.Inst{Op: f.Op}
	for _, p := range f.Args {
		switch p {
		case x86.PatR8:
			in.Args = append(in.Args, x86.RegOp(x86.CL))
		case x86.PatR16:
			in.Args = append(in.Args, x86.RegOp(x86.CX))
		case x86.PatR32:
			in.Args = append(in.Args, x86.RegOp(x86.ECX))
		case x86.PatR64:
			in.Args = append(in.Args, x86.RegOp(x86.RCX))
		case x86.PatRM8:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 8, Size: 1}))
		case x86.PatRM16:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 8, Size: 2}))
		case x86.PatRM32:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 8, Size: 4}))
		case x86.PatRM64:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 8, Size: 8}))
		case x86.PatM:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 8}))
		case x86.PatM32, x86.PatXM32:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 16, Size: 4}))
		case x86.PatM64, x86.PatXM64:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 16, Size: 8}))
		case x86.PatM128, x86.PatXM128:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 16, Size: 16}))
		case x86.PatM256, x86.PatYM256:
			in.Args = append(in.Args, x86.MemOp(x86.Mem{Base: x86.RBX, Disp: 32, Size: 32}))
		case x86.PatImm8, x86.PatImm16, x86.PatImm32, x86.PatImm64:
			in.Args = append(in.Args, x86.ImmOp(5))
		case x86.PatXMM:
			in.Args = append(in.Args, x86.RegOp(x86.X3))
		case x86.PatYMM:
			in.Args = append(in.Args, x86.RegOp(x86.Y3))
		case x86.PatCL:
			in.Args = append(in.Args, x86.RegOp(x86.CL))
		default:
			return nil
		}
	}
	return in
}

// TestALUReferenceProperty checks 64-bit add/sub/and/or/xor against Go's
// own integer semantics with random operands via testing/quick.
func TestALUReferenceProperty(t *testing.T) {
	ops := []struct {
		op  x86.Op
		ref func(a, b uint64) uint64
	}{
		{x86.ADD, func(a, b uint64) uint64 { return a + b }},
		{x86.SUB, func(a, b uint64) uint64 { return a - b }},
		{x86.AND, func(a, b uint64) uint64 { return a & b }},
		{x86.OR, func(a, b uint64) uint64 { return a | b }},
		{x86.XOR, func(a, b uint64) uint64 { return a ^ b }},
	}
	for _, c := range ops {
		c := c
		f := func(a, b uint64) bool {
			r := NewRunner(vm.New())
			r.State.GPR[x86.RAX.Num()] = a
			r.State.GPR[x86.RBX.Num()] = b
			in := x86.NewInst(c.op, x86.RegOp(x86.RAX), x86.RegOp(x86.RBX))
			if err := r.Run([]x86.Inst{in}, nil); err != nil {
				return false
			}
			want := c.ref(a, b)
			if r.State.GPR[x86.RAX.Num()] != want {
				return false
			}
			// ZF must agree with the result.
			return r.State.ZF == (want == 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

// TestShiftReferenceProperty checks shifts against Go's shift semantics
// with masked counts.
func TestShiftReferenceProperty(t *testing.T) {
	f := func(a uint64, count uint8) bool {
		cnt := uint64(count) & 63
		r := NewRunner(vm.New())
		r.State.GPR[x86.RAX.Num()] = a
		in := x86.NewInst(x86.SHL, x86.RegOp(x86.RAX), x86.ImmOp(int64(count)&63))
		if err := r.Run([]x86.Inst{in}, nil); err != nil {
			return false
		}
		return r.State.GPR[x86.RAX.Num()] == a<<cnt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDivReferenceProperty checks unsigned 64-bit division against Go.
func TestDivReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		lo := rng.Uint64()
		d := rng.Uint64()
		if d == 0 {
			continue
		}
		r := NewRunner(vm.New())
		r.State.GPR[x86.RAX.Num()] = lo
		r.State.GPR[x86.RDX.Num()] = 0 // no overflow possible
		r.State.GPR[x86.RCX.Num()] = d
		in := x86.NewInst(x86.DIV, x86.RegOp(x86.RCX))
		if err := r.Run([]x86.Inst{in}, nil); err != nil {
			t.Fatalf("div %d/%d: %v", lo, d, err)
		}
		if r.State.GPR[x86.RAX.Num()] != lo/d || r.State.GPR[x86.RDX.Num()] != lo%d {
			t.Fatalf("%d/%d: got q=%d r=%d", lo, d,
				r.State.GPR[x86.RAX.Num()], r.State.GPR[x86.RDX.Num()])
		}
	}
}

// TestVectorFPReferenceProperty checks packed single-precision adds
// against Go float32 arithmetic.
func TestVectorFPReferenceProperty(t *testing.T) {
	f := func(a, b [4]float32) bool {
		r := NewRunner(vm.New())
		for i := 0; i < 4; i++ {
			if math.IsNaN(float64(a[i])) || math.IsNaN(float64(b[i])) {
				return true
			}
			setF32(&r.State.Vec[1], i, a[i])
			setF32(&r.State.Vec[2], i, b[i])
		}
		in := x86.NewInst(x86.ADDPS, x86.RegOp(x86.X1), x86.RegOp(x86.X2))
		if err := r.Run([]x86.Inst{in}, nil); err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if getF32(&r.State.Vec[1], i) != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
