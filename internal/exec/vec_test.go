package exec

import (
	"testing"

	"bhive/internal/vm"
	"bhive/internal/x86"
)

func runOne(t *testing.T, r *Runner, text string) {
	t.Helper()
	insts := mustParse(t, text)
	if err := r.Run(insts, nil); err != nil {
		t.Fatalf("%s: %v", text, err)
	}
}

func TestPshufdSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 4; i++ {
		setU32(&r.State.Vec[1], i, uint32(10+i))
	}
	// 0x1B = 00 01 10 11 → lanes 3,2,1,0 reversed.
	runOne(t, r, "pshufd xmm0, xmm1, 0x1b")
	for i := 0; i < 4; i++ {
		if got := getU32(&r.State.Vec[0], i); got != uint32(13-i) {
			t.Fatalf("lane %d = %d", i, got)
		}
	}
}

func TestShufpsSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 4; i++ {
		setU32(&r.State.Vec[0], i, uint32(i))     // dst: 0 1 2 3
		setU32(&r.State.Vec[1], i, uint32(100+i)) // src: 100..103
	}
	// imm 0x44 = lanes 0,1 from dst; lanes 0,1 from src.
	runOne(t, r, "shufps xmm0, xmm1, 0x44")
	want := []uint32{0, 1, 100, 101}
	for i, w := range want {
		if got := getU32(&r.State.Vec[0], i); got != w {
			t.Fatalf("lane %d = %d want %d", i, got, w)
		}
	}
}

func TestPunpcklbwSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 8; i++ {
		r.State.Vec[0][i] = byte(i)
		r.State.Vec[1][i] = byte(0x80 + i)
	}
	runOne(t, r, "punpcklbw xmm0, xmm1")
	for i := 0; i < 8; i++ {
		if r.State.Vec[0][2*i] != byte(i) || r.State.Vec[0][2*i+1] != byte(0x80+i) {
			t.Fatalf("interleave broken at %d: % x", i, r.State.Vec[0][:16])
		}
	}
}

func TestMovmskSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	setF32(&r.State.Vec[1], 0, -1)
	setF32(&r.State.Vec[1], 1, 2)
	setF32(&r.State.Vec[1], 2, -3)
	setF32(&r.State.Vec[1], 3, 4)
	runOne(t, r, "movmskps eax, xmm1")
	if got := r.State.ReadGPR(x86.EAX); got != 0b0101 {
		t.Fatalf("movmskps = %#b", got)
	}

	r2 := NewRunner(vm.New())
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			r2.State.Vec[1][i] = 0xFF
		}
	}
	runOne(t, r2, "pmovmskb eax, xmm1")
	if got := r2.State.ReadGPR(x86.EAX); got != 0x5555 {
		t.Fatalf("pmovmskb = %#x", got)
	}
}

func TestBroadcastSemantics(t *testing.T) {
	base := uint64(0x50000)
	r := mappedRunner(base)
	r.State.WriteGPR(x86.RBX, base)
	// Page filled with the pattern; broadcast the first dword.
	runOne(t, r, "vbroadcastss (%rbx), %ymm2")
	for i := 0; i < 8; i++ {
		if getU32(&r.State.Vec[2], i) != 0x12345600 {
			t.Fatalf("lane %d = %#x", i, getU32(&r.State.Vec[2], i))
		}
	}
}

func TestExtractInsert128(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 8; i++ {
		setU32(&r.State.Vec[1], i, uint32(i))
	}
	runOne(t, r, "vextractf128 $1, %ymm1, %xmm0")
	for i := 0; i < 4; i++ {
		if getU32(&r.State.Vec[0], i) != uint32(4+i) {
			t.Fatalf("extract lane %d = %d", i, getU32(&r.State.Vec[0], i))
		}
	}
	runOne(t, r, "vinsertf128 $0, %xmm0, %ymm1, %ymm3")
	if getU32(&r.State.Vec[3], 0) != 4 || getU32(&r.State.Vec[3], 4) != 4 {
		t.Fatalf("insert: % x", r.State.Vec[3])
	}
}

func TestCvtSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	r.State.WriteGPR(x86.RAX, uint64(0xFFFFFFFFFFFFFFD6)) // -42
	runOne(t, r, "cvtsi2sd xmm0, rax")
	if got := getF64(&r.State.Vec[0], 0); got != -42 {
		t.Fatalf("cvtsi2sd = %f", got)
	}
	runOne(t, r, "cvttsd2si rbx, xmm0")
	if int64(r.State.GPR[x86.RBX.Num()]) != -42 {
		t.Fatalf("cvttsd2si = %d", int64(r.State.GPR[x86.RBX.Num()]))
	}
	// Packed int→float.
	for i := 0; i < 4; i++ {
		setU32(&r.State.Vec[2], i, uint32(i*3))
	}
	runOne(t, r, "cvtdq2ps xmm3, xmm2")
	for i := 0; i < 4; i++ {
		if getF32(&r.State.Vec[3], i) != float32(i*3) {
			t.Fatalf("cvtdq2ps lane %d", i)
		}
	}
}

func TestVecShiftSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 4; i++ {
		setU32(&r.State.Vec[1], i, 0x80000001)
	}
	runOne(t, r, "psrld xmm1, 1")
	if getU32(&r.State.Vec[1], 0) != 0x40000000 {
		t.Fatalf("psrld: %#x", getU32(&r.State.Vec[1], 0))
	}
	// Arithmetic shift keeps the sign.
	for i := 0; i < 4; i++ {
		setU32(&r.State.Vec[2], i, 0x80000000)
	}
	runOne(t, r, "psrad xmm2, 4")
	if getU32(&r.State.Vec[2], 0) != 0xF8000000 {
		t.Fatalf("psrad: %#x", getU32(&r.State.Vec[2], 0))
	}
	// Shift count >= width zeroes logical shifts.
	for i := 0; i < 4; i++ {
		setU32(&r.State.Vec[3], i, 0xDEADBEEF)
	}
	runOne(t, r, "pslld xmm3, 40")
	if getU32(&r.State.Vec[3], 0) != 0 {
		t.Fatalf("oversized shift: %#x", getU32(&r.State.Vec[3], 0))
	}
}

func TestMinMaxNaNSemantics(t *testing.T) {
	// x86 min/max return the SECOND operand on NaN.
	r := NewRunner(vm.New())
	nan := float32(0)
	nan = nan / nan
	setF32(&r.State.Vec[0], 0, nan)
	setF32(&r.State.Vec[1], 0, 7)
	runOne(t, r, "minss xmm0, xmm1")
	if getF32(&r.State.Vec[0], 0) != 7 {
		t.Fatalf("minss NaN handling: %f", getF32(&r.State.Vec[0], 0))
	}
}

func TestPmuludqSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	setU32(&r.State.Vec[0], 0, 0xFFFFFFFF)
	setU32(&r.State.Vec[0], 2, 3)
	setU32(&r.State.Vec[1], 0, 2)
	setU32(&r.State.Vec[1], 2, 5)
	runOne(t, r, "pmuludq xmm0, xmm1")
	if getU64(&r.State.Vec[0], 0) != 0x1FFFFFFFE {
		t.Fatalf("lane 0 = %#x", getU64(&r.State.Vec[0], 0))
	}
	if getU64(&r.State.Vec[0], 1) != 15 {
		t.Fatalf("lane 1 = %d", getU64(&r.State.Vec[0], 1))
	}
}

func TestVMOVSSMergeSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 4; i++ {
		setF32(&r.State.Vec[1], i, float32(10+i))
		setF32(&r.State.Vec[2], i, float32(20+i))
	}
	// vmovss xmm0, xmm1, xmm2: low lane from xmm2, upper from xmm1.
	runOne(t, r, "vmovss %xmm2, %xmm1, %xmm0") // ATT: src2, src1, dst
	if getF32(&r.State.Vec[0], 0) != 20 || getF32(&r.State.Vec[0], 1) != 11 {
		t.Fatalf("vmovss merge: %f %f", getF32(&r.State.Vec[0], 0), getF32(&r.State.Vec[0], 1))
	}
}
