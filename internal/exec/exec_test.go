package exec

import (
	"math"
	"testing"

	"bhive/internal/vm"
	"bhive/internal/x86"
)

func mustParse(t *testing.T, text string) []x86.Inst {
	t.Helper()
	insts, err := x86.Parse(text, x86.SyntaxAuto)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return insts
}

// mappedRunner returns a runner whose address space maps the page at base.
func mappedRunner(base uint64) *Runner {
	as := vm.New()
	page := as.NewPhysPage()
	page.Fill(0x12345600)
	as.Map(base, page)
	r := NewRunner(as)
	return r
}

func TestGPRMergeSemantics(t *testing.T) {
	s := &State{}
	s.WriteGPR(x86.RAX, 0x1122334455667788)
	if s.ReadGPR(x86.EAX) != 0x55667788 {
		t.Fatal("32-bit read")
	}
	s.WriteGPR(x86.AL, 0xAB)
	if s.GPR[0] != 0x11223344556677AB {
		t.Fatalf("8-bit merge: %#x", s.GPR[0])
	}
	s.WriteGPR(x86.AH, 0xCD)
	if s.GPR[0] != 0x112233445566CDAB {
		t.Fatalf("high-byte merge: %#x", s.GPR[0])
	}
	if s.ReadGPR(x86.AH) != 0xCD {
		t.Fatal("high byte read")
	}
	s.WriteGPR(x86.EAX, 1)
	if s.GPR[0] != 1 {
		t.Fatal("32-bit write must zero-extend")
	}
	s.WriteGPR(x86.AX, 0xFFFF)
	if s.GPR[0] != 0xFFFF {
		t.Fatal("16-bit write merges")
	}
}

func TestALUFlags(t *testing.T) {
	r := NewRunner(vm.New())
	r.State.WriteGPR(x86.RAX, 0xFFFFFFFFFFFFFFFF)
	r.State.WriteGPR(x86.RBX, 1)
	if err := r.Run(mustParse(t, "add rax, rbx"), nil); err != nil {
		t.Fatal(err)
	}
	if r.State.GPR[0] != 0 || !r.State.ZF || !r.State.CF || r.State.OF {
		t.Fatalf("add overflow flags: zf=%v cf=%v of=%v", r.State.ZF, r.State.CF, r.State.OF)
	}

	r.State.WriteGPR(x86.RCX, 5)
	r.State.WriteGPR(x86.RDX, 7)
	if err := r.Run(mustParse(t, "cmp rcx, rdx"), nil); err != nil {
		t.Fatal(err)
	}
	if !r.State.CF || r.State.ZF {
		t.Fatal("cmp 5,7 sets CF (borrow)")
	}
	if !r.State.Cond(x86.CondB) || r.State.Cond(x86.CondAE) {
		t.Fatal("condition evaluation")
	}

	// Signed overflow: 0x7FFFFFFF + 1.
	r.State.WriteGPR(x86.EAX, 0x7FFFFFFF)
	r.State.WriteGPR(x86.EBX, 1)
	if err := r.Run(mustParse(t, "add eax, ebx"), nil); err != nil {
		t.Fatal(err)
	}
	if !r.State.OF || r.State.CF {
		t.Fatal("signed overflow must set OF only")
	}
}

func TestIncPreservesCF(t *testing.T) {
	r := NewRunner(vm.New())
	r.State.CF = true
	if err := r.Run(mustParse(t, "inc rax"), nil); err != nil {
		t.Fatal(err)
	}
	if !r.State.CF {
		t.Fatal("inc must preserve CF")
	}
}

func TestDivSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	r.State.WriteGPR(x86.EAX, 100)
	r.State.WriteGPR(x86.EDX, 0)
	r.State.WriteGPR(x86.ECX, 7)
	if err := r.Run(mustParse(t, "div ecx"), nil); err != nil {
		t.Fatal(err)
	}
	if r.State.ReadGPR(x86.EAX) != 14 || r.State.ReadGPR(x86.EDX) != 2 {
		t.Fatalf("100/7: q=%d r=%d", r.State.ReadGPR(x86.EAX), r.State.ReadGPR(x86.EDX))
	}

	// Division by zero faults.
	r2 := NewRunner(vm.New())
	err := r2.Run(mustParse(t, "div ecx"), nil)
	if _, ok := err.(DivideError); !ok {
		t.Fatalf("expected #DE, got %v", err)
	}

	// Quotient overflow faults: edx:eax / 1 with edx != 0.
	r3 := NewRunner(vm.New())
	r3.State.WriteGPR(x86.EDX, 5)
	r3.State.WriteGPR(x86.ECX, 1)
	err = r3.Run(mustParse(t, "div ecx"), nil)
	if _, ok := err.(DivideError); !ok {
		t.Fatalf("expected overflow #DE, got %v", err)
	}

	// Signed division.
	r4 := NewRunner(vm.New())
	r4.State.WriteGPR(x86.RAX, uint64(0xFFFFFFFFFFFFFF9C)) // -100
	r4.State.WriteGPR(x86.RDX, ^uint64(0))                 // sign extension
	r4.State.WriteGPR(x86.RCX, 7)
	if err := r4.Run(mustParse(t, "idiv rcx"), nil); err != nil {
		t.Fatal(err)
	}
	if int64(r4.State.GPR[0]) != -14 || int64(r4.State.GPR[2]) != -2 {
		t.Fatalf("-100/7: q=%d r=%d", int64(r4.State.GPR[0]), int64(r4.State.GPR[2]))
	}
}

func TestMemoryFaultReported(t *testing.T) {
	r := NewRunner(vm.New()) // nothing mapped
	r.State.WriteGPR(x86.RDI, 0x7000)
	err := r.Run(mustParse(t, "mov rax, qword ptr [rdi]"), nil)
	f, ok := err.(*vm.Fault)
	if !ok {
		t.Fatalf("expected page fault, got %v", err)
	}
	if f.Addr != 0x7000 {
		t.Fatalf("fault address %#x", f.Addr)
	}
}

func TestLoadStoreRoundtrip(t *testing.T) {
	base := uint64(0x10000)
	r := mappedRunner(base)
	r.Record = true
	r.State.WriteGPR(x86.RDI, base)
	r.State.WriteGPR(x86.RBX, 0xDEADBEEFCAFEF00D)
	prog := mustParse(t, `mov qword ptr [rdi+8], rbx
		mov rax, qword ptr [rdi+8]`)
	if err := r.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	if r.State.GPR[0] != 0xDEADBEEFCAFEF00D {
		t.Fatalf("got %#x", r.State.GPR[0])
	}
	if len(r.Trace) != 2 || r.Trace[0].Store == nil || r.Trace[1].Load == nil {
		t.Fatal("trace must record the store and the load")
	}
	if r.Trace[0].Store.Addr != base+8 || r.Trace[0].Store.Size != 8 {
		t.Fatalf("store access: %+v", r.Trace[0].Store)
	}
}

// TestCRCBlockDataflow runs the paper's Gzip CRC block and checks the
// pointer value flow: al is xored with a loaded byte, zero-extended, and
// used to index the lookup table.
func TestCRCBlockDataflow(t *testing.T) {
	base := uint64(0x200000)
	as := vm.New()
	page := as.NewPhysPage()
	page.Fill(0x12345600)
	// Map the buffer page and the lookup-table pages.
	as.Map(base, page)
	r := NewRunner(as)
	r.Record = true
	r.State.InitRegisters(base)

	block := mustParse(t, `add $1, %rdi
		mov %edx, %eax
		shr $8, %rdx
		xorb -1(%rdi), %al
		movzbl %al, %eax
		xor 0x4110a(, %rax, 8), %rdx
		cmp %rcx, %rdi`)

	err := r.Run(block, nil)
	// The table access at 0x4110a(,%rax,8) is unmapped: expect a fault at
	// that address so a monitor could map it.
	f, ok := err.(*vm.Fault)
	if !ok {
		t.Fatalf("expected fault on lookup table, got %v", err)
	}
	if f.Addr < 0x4110a {
		t.Fatalf("fault at %#x", f.Addr)
	}

	// Map the faulting page and re-run from scratch: should now complete.
	as.Map(f.Addr, page)
	r2 := NewRunner(as)
	r2.Record = true
	r2.State.InitRegisters(base)
	if err := r2.Run(block, nil); err != nil {
		t.Fatalf("after mapping: %v", err)
	}
	if got := len(r2.Trace); got != 7 {
		t.Fatalf("trace length %d", got)
	}
	if r2.Trace[3].Load == nil || r2.Trace[5].Load == nil {
		t.Fatal("loads missing from trace")
	}
}

func TestSubnormalDetectionAndFTZ(t *testing.T) {
	mk := func(ftz, daz bool) (*Runner, []x86.Inst) {
		r := NewRunner(vm.New())
		r.Record = true
		r.State.FTZ, r.State.DAZ = ftz, daz
		var v [32]byte
		setF32(&v, 0, math.Float32frombits(1)) // smallest subnormal
		r.State.Vec[1] = v
		var w [32]byte
		setF32(&w, 0, 1.0)
		r.State.Vec[2] = w
		return r, mustParse(t, "addss xmm2, xmm1")
	}

	r, prog := mk(false, false)
	if err := r.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	if !r.Trace[0].Subnormal {
		t.Fatal("subnormal input must be flagged without DAZ")
	}

	r2, prog2 := mk(true, true)
	if err := r2.Run(prog2, nil); err != nil {
		t.Fatal(err)
	}
	if r2.Trace[0].Subnormal {
		t.Fatal("DAZ flushes inputs; no subnormal penalty")
	}

	// Subnormal produced by the op itself (underflow).
	r3 := NewRunner(vm.New())
	r3.Record = true
	var tiny [32]byte
	setF32(&tiny, 0, math.Float32frombits(0x00800000)) // smallest normal
	r3.State.Vec[1] = tiny
	var half [32]byte
	setF32(&half, 0, 0.25)
	r3.State.Vec[2] = half
	prog3 := mustParse(t, "mulss xmm1, xmm2")
	if err := r3.Run(prog3, nil); err != nil {
		t.Fatal(err)
	}
	if !r3.Trace[0].Subnormal {
		t.Fatal("underflowing multiply must be flagged")
	}
}

func TestVectorALUAndZeroUpper(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 32; i++ {
		r.State.Vec[1][i] = byte(i)
		r.State.Vec[2][i] = 1
	}
	if err := r.Run(mustParse(t, "paddb xmm1, xmm2"), nil); err != nil {
		t.Fatal(err)
	}
	if r.State.Vec[1][0] != 1 || r.State.Vec[1][15] != 16 {
		t.Fatal("paddb lanes")
	}
	if r.State.Vec[1][16] != 16 {
		t.Fatal("legacy SSE must preserve the upper half")
	}

	// VEX 128 zeroes the upper half.
	if err := r.Run(mustParse(t, "vpaddb %xmm2, %xmm2, %xmm1"), nil); err != nil {
		t.Fatal(err)
	}
	if r.State.Vec[1][16] != 0 {
		t.Fatal("VEX-128 must zero the upper half")
	}
}

func TestUcomissFlags(t *testing.T) {
	r := NewRunner(vm.New())
	setF32(&r.State.Vec[0], 0, 1.0)
	setF32(&r.State.Vec[1], 0, 2.0)
	if err := r.Run(mustParse(t, "ucomiss xmm0, xmm1"), nil); err != nil {
		t.Fatal(err)
	}
	if !r.State.CF || r.State.ZF {
		t.Fatal("1 < 2: CF set, ZF clear")
	}
	setF32(&r.State.Vec[1], 0, float32(math.NaN()))
	if err := r.Run(mustParse(t, "ucomiss xmm0, xmm1"), nil); err != nil {
		t.Fatal(err)
	}
	if !r.State.CF || !r.State.ZF || !r.State.PF {
		t.Fatal("unordered sets ZF, PF and CF")
	}
}

func TestPushPop(t *testing.T) {
	base := uint64(0x800000)
	r := mappedRunner(base)
	r.State.WriteGPR(x86.RSP, base+vm.PageSize/2)
	r.State.WriteGPR(x86.RBX, 42)
	if err := r.Run(mustParse(t, "push rbx\npop rcx"), nil); err != nil {
		t.Fatal(err)
	}
	if r.State.ReadGPR(x86.RCX) != 42 {
		t.Fatal("push/pop roundtrip")
	}
	if r.State.ReadGPR(x86.RSP) != base+vm.PageSize/2 {
		t.Fatal("rsp must be restored")
	}
}

func TestCmovAndSetcc(t *testing.T) {
	r := NewRunner(vm.New())
	r.State.WriteGPR(x86.RAX, 1)
	r.State.WriteGPR(x86.RBX, 2)
	prog := mustParse(t, `cmp rax, rbx
		cmovb rcx, rbx
		setb dl`)
	if err := r.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	if r.State.ReadGPR(x86.RCX) != 2 || r.State.ReadGPR(x86.DL) != 1 {
		t.Fatalf("cmov/set: rcx=%d dl=%d", r.State.ReadGPR(x86.RCX), r.State.ReadGPR(x86.DL))
	}
}

func TestShiftSemantics(t *testing.T) {
	r := NewRunner(vm.New())
	r.State.WriteGPR(x86.RDX, 0x12345678)
	if err := r.Run(mustParse(t, "shr $8, %rdx"), nil); err != nil {
		t.Fatal(err)
	}
	if r.State.GPR[x86.RDX.Num()] != 0x123456 {
		t.Fatalf("shr: %#x", r.State.GPR[x86.RDX.Num()])
	}
	// Shift by CL.
	r.State.WriteGPR(x86.RCX, 4)
	if err := r.Run(mustParse(t, "shl cl, rbx"), nil); err == nil {
		t.Log("parsed unusual operand order") // Intel order is shl rbx, cl
	}
	r.State.WriteGPR(x86.RBX, 1)
	if err := r.Run(mustParse(t, "shl rbx, cl"), nil); err != nil {
		t.Fatal(err)
	}
	if r.State.GPR[x86.RBX.Num()] != 16 {
		t.Fatalf("shl by cl: %d", r.State.GPR[x86.RBX.Num()])
	}
}

func TestBitScan(t *testing.T) {
	r := NewRunner(vm.New())
	r.State.WriteGPR(x86.RBX, 0xF0)
	prog := mustParse(t, `popcnt rax, rbx
		tzcnt rcx, rbx
		lzcnt rdx, rbx`)
	if err := r.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	if r.State.GPR[0] != 4 || r.State.GPR[1] != 4 || r.State.GPR[2] != 56 {
		t.Fatalf("popcnt=%d tzcnt=%d lzcnt=%d", r.State.GPR[0], r.State.GPR[1], r.State.GPR[2])
	}
}

func TestMovapsAlignmentFault(t *testing.T) {
	base := uint64(0x40000)
	r := mappedRunner(base)
	r.State.WriteGPR(x86.RDI, base+4) // misaligned
	err := r.Run(mustParse(t, "movaps xmm0, xmmword ptr [rdi]"), nil)
	if _, ok := err.(*AlignmentError); !ok {
		t.Fatalf("expected alignment fault, got %v", err)
	}
	// movups tolerates it.
	r2 := mappedRunner(base)
	r2.State.WriteGPR(x86.RDI, base+4)
	if err := r2.Run(mustParse(t, "movups xmm0, xmmword ptr [rdi]"), nil); err != nil {
		t.Fatal(err)
	}
}

func TestFMASemantics(t *testing.T) {
	r := NewRunner(vm.New())
	for i := 0; i < 8; i++ {
		setF32(&r.State.Vec[0], i, 1.0) // dst (addend for 231)
		setF32(&r.State.Vec[1], i, 2.0)
		setF32(&r.State.Vec[2], i, 3.0)
	}
	if err := r.Run(mustParse(t, "vfmadd231ps %ymm2, %ymm1, %ymm0"), nil); err != nil {
		t.Fatal(err)
	}
	if got := getF32(&r.State.Vec[0], 7); got != 7.0 {
		t.Fatalf("fma: 2*3+1 = %f", got)
	}
}

func TestInitRegisters(t *testing.T) {
	s := &State{}
	s.InitRegisters(0x12345600)
	if s.GPR[5] != 0x12345600 {
		t.Fatal("GPR init")
	}
	if getU64(&s.Vec[3], 2) != 0x12345600 {
		t.Fatal("vector init")
	}
}

func TestRIPRelative(t *testing.T) {
	codeBase := uint64(0x400000)
	as := vm.New()
	page := as.NewPhysPage()
	as.Map(codeBase+0x2000, page)
	page.Data[0x100] = 0x99
	r := NewRunner(as)
	prog := mustParse(t, "mov al, byte ptr [rip+0x2100]")
	// Instruction addresses: one instruction; next address = base + length.
	enc, err := x86.Encode(prog[0])
	if err != nil {
		t.Fatal(err)
	}
	// Choose disp so base+len+disp lands on page.Data[0x100].
	disp := int64(codeBase+0x2100) - int64(codeBase) - int64(len(enc))
	prog[0].Args[1].Mem.Disp = int32(disp)
	addrs := []uint64{codeBase, codeBase + uint64(len(enc))}
	if err := r.Run(prog, addrs); err != nil {
		t.Fatal(err)
	}
	if r.State.ReadGPR(x86.AL) != 0x99 {
		t.Fatalf("rip-relative load got %#x", r.State.ReadGPR(x86.AL))
	}
}
