package bound

import (
	"math"
	"os"
	"testing"

	"bhive/internal/corpus"
	"bhive/internal/memo"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

func block(t *testing.T, hexStr string) *x86.Block {
	t.Helper()
	b, err := x86.BlockFromHex(hexStr)
	if err != nil {
		t.Fatalf("decode %s: %v", hexStr, err)
	}
	return b
}

func analyze(t *testing.T, cpu *uarch.CPU, hexStr string) *Bounds {
	t.Helper()
	bs, err := Analyze(cpu, block(t, hexStr))
	if err != nil {
		t.Fatalf("analyze %s: %v", hexStr, err)
	}
	return bs
}

// TestKnownChains pins the dependence term on hand-analyzable blocks.
func TestKnownChains(t *testing.T) {
	hsw := uarch.Haswell()
	cases := []struct {
		hex     string
		dep     float64
		verdict Verdict
	}{
		// add rax, rbx: carried 1-cycle chain on rax.
		{"4801d8", 1, VerdictDepChain},
		// imul rax, rax: carried 3-cycle multiply chain.
		{"480fafc0", 3, VerdictDepChain},
		// xor ecx, ecx: zero idiom, no chain; front-end binds.
		{"31c9", 0, VerdictFrontEnd},
		// mov rax, [rax]: address-carried load chain at L1 latency.
		{"488b00", 4, VerdictDepChain},
	}
	for _, c := range cases {
		bs := analyze(t, hsw, c.hex)
		if math.Abs(bs.DepChain-c.dep) > 1e-6 {
			t.Errorf("%s: dep chain %.4f, want %.4f", c.hex, bs.DepChain, c.dep)
		}
		if bs.Verdict != c.verdict {
			t.Errorf("%s: verdict %s, want %s", c.hex, bs.Verdict, c.verdict)
		}
		if bs.Lower > bs.Upper {
			t.Errorf("%s: lower %.4f > upper %.4f", c.hex, bs.Lower, bs.Upper)
		}
	}
}

// TestRenameAwareness pins the rename special cases: an eliminated move
// aliases its destination into the source's chain, and a zero idiom breaks
// the chain it overwrites.
func TestRenameAwareness(t *testing.T) {
	hsw := uarch.Haswell()

	// imul rax,rax ; mov rbx,rax ; add rax,rbx — the move is eliminated,
	// so the cycle is imul(3) + add(1) = 4 per iteration through rax.
	withMove := analyze(t, hsw, "480fafc04889c34801d8")
	if math.Abs(withMove.DepChain-4) > 1e-6 {
		t.Errorf("eliminated move: dep %.4f, want 4", withMove.DepChain)
	}

	// xor eax,eax ; add rax,rbx — the zero idiom kills the carried rax
	// chain; only the (free) same-iteration edge remains.
	broken := analyze(t, hsw, "31c04801d8")
	if broken.DepChain != 0 {
		t.Errorf("zero idiom: dep %.4f, want 0", broken.DepChain)
	}
}

// TestLeaNoAddrDependence pins the simulator quirk the model mirrors: an
// LEA has no load µop, so its address registers are not dependences and a
// carried lea rax,[rax+8] chain is free.
func TestLeaNoAddrDependence(t *testing.T) {
	hsw := uarch.Haswell()
	bs := analyze(t, hsw, "488d4008") // lea rax, [rax+8]
	if bs.DepChain != 0 {
		t.Errorf("lea addr chain: dep %.4f, want 0 (sim wires addr deps only into load µops)", bs.DepChain)
	}
}

// TestPortVerdict pins the port term: an unpipelined 64-bit divide
// occupies its port for the full occupancy.
func TestPortVerdict(t *testing.T) {
	hsw := uarch.Haswell()
	bs := analyze(t, hsw, "48f7f3") // div rbx
	if bs.PortPressure < 50 {
		t.Errorf("div port pressure %.2f, want ~95 (unpipelined divider occupancy)", bs.PortPressure)
	}
	if bs.Lower < 50 {
		t.Errorf("div lower %.2f, want ~95", bs.Lower)
	}
}

// TestFrontEndVerdict pins the front-end term: NOPs have no chains and no
// execution ports, so allocation width is the only constraint.
func TestFrontEndVerdict(t *testing.T) {
	hsw := uarch.Haswell()
	// 16 NOPs: 16 fused µops / width 4 = 4 cycles; 16 bytes / 16 = 1.
	bs := analyze(t, hsw, "90909090909090909090909090909090")
	if bs.Verdict != VerdictFrontEnd {
		t.Fatalf("verdict %s, want FrontEnd", bs.Verdict)
	}
	if math.Abs(bs.FrontEnd-4) > 1e-6 {
		t.Errorf("front-end %.4f, want 4", bs.FrontEnd)
	}
}

// TestVacuous pins the Generic-descriptor plumbing through FromDescs.
func TestVacuous(t *testing.T) {
	hsw := uarch.Haswell()
	b := block(t, "4801d8")
	d, err := memo.Describe(hsw, &b.Insts[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := FromDescs(hsw, b.Insts, []uarch.Desc{d}); got.Vacuous {
		t.Fatal("table-backed descriptor marked vacuous")
	}
	d.Generic = true
	if got := FromDescs(hsw, b.Insts, []uarch.Desc{d}); !got.Vacuous {
		t.Fatal("generic descriptor not marked vacuous")
	}
}

// TestEmptyAndUnsupported pins the error paths.
func TestEmptyAndUnsupported(t *testing.T) {
	if _, err := Analyze(uarch.Haswell(), &x86.Block{}); err == nil {
		t.Error("empty block accepted")
	}
	// vfmadd231ps needs FMA, absent on Ivy Bridge.
	b := block(t, "c4e26db8d9")
	if _, err := Analyze(uarch.IvyBridge(), b); err == nil {
		t.Error("FMA on Ivy Bridge accepted")
	}
}

// corpusBlocks decodes the lint fixture corpus (skipping the deliberately
// undecodable pathological rows).
func corpusBlocks(t *testing.T) []*x86.Block {
	t.Helper()
	f, err := os.Open("../blocklint/testdata/example_corpus.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	raws, err := corpus.ReadCSVRaw(f)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []*x86.Block
	for _, r := range raws {
		if b, err := x86.BlockFromHex(r.Hex); err == nil {
			blocks = append(blocks, b)
		}
	}
	if len(blocks) < 500 {
		t.Fatalf("fixture corpus shrank to %d decodable blocks", len(blocks))
	}
	return blocks
}

// TestLowerLeUpperCorpus is the lattice property over the whole fixture
// corpus on all three microarchitectures: every analyzable block satisfies
// 0 ≤ each lower term ≤ lower ≤ upper, and lower is exactly the max of its
// terms.
func TestLowerLeUpperCorpus(t *testing.T) {
	blocks := corpusBlocks(t)
	for _, cpu := range uarch.All() {
		for _, b := range blocks {
			bs, err := Analyze(cpu, b)
			if err != nil {
				continue // unsupported on this µarch
			}
			hexStr, _ := b.Hex()
			if bs.DepChain < 0 || bs.PortPressure < 0 || bs.FrontEnd < 0 {
				t.Fatalf("%s/%s: negative term %+v", cpu.Name, hexStr, bs)
			}
			wantLower := math.Max(bs.DepChain, math.Max(bs.PortPressure, bs.FrontEnd))
			if math.Abs(bs.Lower-wantLower) > 1e-9 {
				t.Fatalf("%s/%s: lower %.6f != max of terms %.6f", cpu.Name, hexStr, bs.Lower, wantLower)
			}
			if bs.Lower > bs.Upper+1e-9 {
				t.Fatalf("%s/%s: lower %.6f > upper %.6f", cpu.Name, hexStr, bs.Lower, bs.Upper)
			}
			if math.IsNaN(bs.Lower) || math.IsInf(bs.Lower, 0) ||
				math.IsNaN(bs.Upper) || math.IsInf(bs.Upper, 0) {
				t.Fatalf("%s/%s: non-finite bounds %+v", cpu.Name, hexStr, bs)
			}
		}
	}
}

// raiseLats returns deep copies of descs with every µop latency raised by
// delta (saturating at the uint8 ceiling).
func raiseLats(descs []uarch.Desc, delta int) []uarch.Desc {
	out := make([]uarch.Desc, len(descs))
	for i, d := range descs {
		c := d
		c.Uops = make([]uarch.Uop, len(d.Uops))
		copy(c.Uops, d.Uops)
		for j := range c.Uops {
			if c.Uops[j].Lat > 0 {
				v := int(c.Uops[j].Lat) + delta
				if v > 255 {
					v = 255
				}
				c.Uops[j].Lat = uint8(v)
			}
		}
		out[i] = c
	}
	return out
}

// TestMonotonicity is the differential property: raising any latency table
// entry never decreases the lower bound (the bisection returns from the
// feasible side, the port and front-end terms ignore latency, and the
// dependence graph's edge weights are monotone in the µop latencies).
func TestMonotonicity(t *testing.T) {
	blocks := corpusBlocks(t)
	hsw := uarch.Haswell()
	checked := 0
	for _, b := range blocks {
		descs := make([]uarch.Desc, len(b.Insts))
		ok := true
		for i := range b.Insts {
			d, err := memo.Describe(hsw, &b.Insts[i])
			if err != nil {
				ok = false
				break
			}
			descs[i] = d
		}
		if !ok {
			continue
		}
		base := FromDescs(hsw, b.Insts, descs)
		for _, delta := range []int{1, 3} {
			raised := FromDescs(hsw, b.Insts, raiseLats(descs, delta))
			// The bisection undercuts the exact ratio by at most
			// 1e-9*(1+hi); allow that sliver.
			if raised.Lower < base.Lower-1e-6 {
				hexStr, _ := b.Hex()
				t.Fatalf("%s: raising latencies by %d dropped lower %.6f -> %.6f",
					hexStr, delta, base.Lower, raised.Lower)
			}
			if raised.Upper < base.Upper-1e-6 {
				hexStr, _ := b.Hex()
				t.Fatalf("%s: raising latencies by %d dropped upper %.6f -> %.6f",
					hexStr, delta, base.Upper, raised.Upper)
			}
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d blocks checked", checked)
	}
}

// TestVerdictStrings pins the rendering used by bhive-lint -bounds and the
// boundcheck tables.
func TestVerdictStrings(t *testing.T) {
	if s := VerdictDepChain.String(); s != "DepChain" {
		t.Error(s)
	}
	if s := VerdictFrontEnd.String(); s != "FrontEnd" {
		t.Error(s)
	}
	b := &Bounds{Verdict: VerdictPort, Ports: uarch.Ports(0, 1)}
	if s := b.VerdictString(); s != "Port(p01)" {
		t.Error(s)
	}
}
