package bound

import (
	"bhive/internal/memo"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// The dependence model mirrors the reference pipeline's dependence wiring
// (internal/pipeline) exactly, because the bound is a claim about that
// simulator:
//
//   - register-use sets come from memo.RegSets — the same address/data/
//     write split the simulator's items carry;
//   - an instruction's register writes become ready when its last compute
//     µop completes (or its load µop, for pure loads); store µops never
//     produce register values;
//   - data reads feed the compute µops directly (they bypass the load), so
//     a data-carried edge costs only the compute-chain latency; address
//     reads feed the load µop first, so an address-carried edge through a
//     loading instruction additionally pays the load-to-use latency;
//   - instructions without a load µop ignore their address reads entirely
//     (the simulator wires addrDeps only into load and store-address µops,
//     so e.g. an LEA's compute µop does not wait for its address
//     registers);
//   - zero idioms break dependences (their outputs become free), and
//     eliminated moves alias their destination to the source's producer at
//     zero latency;
//   - instructions with neither a compute nor a load µop (push, nop, ...)
//     produce their writes "for free" — the simulator records no producer.
//
// chainKind classifies an instruction for that model.
type chainKind uint8

const (
	chainNormal chainKind = iota
	chainZero             // zero idiom: breaks every chain through its writes
	chainElim             // eliminated move: aliases writes to the source producer
	chainFree             // no producing µop: writes are ready immediately
)

// instChain is the per-instruction dependence-model summary.
type instChain struct {
	kind       chainKind
	computeSum int64 // chained latency of the compute µops
	loadLat    int64 // load µop latency (0 when hasLoad is false)
	hasLoad    bool
	hasCompute bool
	addr, data []uint8 // pipeline register ids (memo.RegSets)
	writes     []uint8
}

// buildChains derives the dependence-model summaries for a block.
func buildChains(insts []x86.Inst, descs []uarch.Desc) []instChain {
	chains := make([]instChain, len(insts))
	for i := range insts {
		c := &chains[i]
		c.addr, c.data, c.writes = memo.RegSets(&insts[i])
		d := &descs[i]
		switch {
		case d.ZeroIdiom:
			c.kind = chainZero
			continue
		case d.EliminatedMove:
			c.kind = chainElim
			continue
		}
		for _, u := range d.Uops {
			switch u.Class {
			case uarch.ClassLoad:
				c.hasLoad = true
				c.loadLat = int64(u.Lat)
			case uarch.ClassStoreAddr, uarch.ClassStoreData:
				// Store µops never feed register writes.
			default:
				c.hasCompute = true
				c.computeSum += int64(u.Lat)
			}
		}
		if !c.hasCompute && !c.hasLoad {
			c.kind = chainFree
		}
	}
	return chains
}

// depEdge is one quotient-graph dependence edge: the consumer's producer
// completes no earlier than delta cycles after the producer of `from`
// completed, `lag` iterations earlier (0 = same iteration).
type depEdge struct {
	from, to int
	delta    int64
	lag      int
}

// numRegs matches the pipeline register file (0-15 GPR, 16-31 vector, 32
// flags).
const numRegs = 33

// aliasCopies is how many consecutive iteration copies the writer map is
// advanced before edges are extracted. Eliminated-move aliases can forward
// a producer across iteration boundaries; by the last copy every alias
// chain of practical length has stabilized, and a chain that has not
// merely loses an edge — weakening, never unsounding, the lower bound.
const aliasCopies = 4

// carriedEdges extracts the steady-state dependence edges of one
// iteration: the writer map is advanced over aliasCopies copies of the
// block, and the edges feeding the final copy are reported with their
// iteration lag.
func carriedEdges(chains []instChain) []depEdge {
	n := len(chains)
	var writer [numRegs]int32 // global node id (copy*n + inst), -1 = no producer
	for i := range writer {
		writer[i] = -1
	}
	var edges []depEdge
	for k := 0; k < aliasCopies; k++ {
		last := k == aliasCopies-1
		for i := 0; i < n; i++ {
			c := &chains[i]
			switch c.kind {
			case chainZero, chainFree:
				for _, w := range c.writes {
					writer[w] = -1
				}
				continue
			case chainElim:
				src := int32(-1)
				if len(c.data) > 0 {
					src = writer[c.data[0]]
				}
				for _, w := range c.writes {
					writer[w] = src
				}
				continue
			}
			if last {
				if c.hasCompute {
					for _, r := range c.data {
						if p := writer[r]; p >= 0 {
							edges = append(edges, depEdge{
								from: int(p) % n, to: i,
								delta: c.computeSum,
								lag:   aliasCopies - 1 - int(p)/n,
							})
						}
					}
				}
				if c.hasLoad {
					for _, r := range c.addr {
						if p := writer[r]; p >= 0 {
							edges = append(edges, depEdge{
								from: int(p) % n, to: i,
								delta: c.loadLat + c.computeSum,
								lag:   aliasCopies - 1 - int(p)/n,
							})
						}
					}
				}
			}
			id := int32(k*n + i)
			for _, w := range c.writes {
				writer[w] = id
			}
		}
	}
	return edges
}

// positiveCycle reports whether the edge-weighted quotient graph contains
// a cycle of positive total weight under w(e) = delta - lambda*lag
// (Bellman-Ford from a virtual source connected to every node).
func positiveCycle(n int, edges []depEdge, lambda float64) bool {
	dist := make([]float64, n)
	for pass := 0; pass <= n; pass++ {
		changed := false
		for _, e := range edges {
			w := float64(e.delta) - lambda*float64(e.lag)
			if d := dist[e.from] + w; d > dist[e.to]+1e-9 {
				dist[e.to] = d
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// maxCycleRatio computes the maximum cycles-per-iteration over all
// dependence cycles: max over cycles of Σdelta / Σlag. Intra-iteration
// edges run strictly forward, so every cycle carries lag ≥ 1 and the
// ratio is well defined. The value is found by bisection on the positive-
// cycle test; the returned value is from the feasible side, so it never
// exceeds the true ratio (the lower bound stays sound).
func maxCycleRatio(n int, edges []depEdge) float64 {
	if len(edges) == 0 || !positiveCycle(n, edges, 0) {
		return 0 // acyclic: no loop-carried dependence
	}
	// Any simple cycle visits each instruction at most once, so its total
	// delta is at most the sum of the largest per-instruction deltas.
	var hi float64
	perInst := make([]int64, n)
	for _, e := range edges {
		if e.delta > perInst[e.to] {
			perInst[e.to] = e.delta
		}
	}
	for _, d := range perInst {
		hi += float64(d)
	}
	hi++
	lo := 0.0
	for iter := 0; iter < 50 && hi-lo > 1e-9*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if positiveCycle(n, edges, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// critPath computes the latency-weighted critical path of a single
// iteration from clean state: the completion time of the latest producer
// when every register starts ready.
func critPath(chains []instChain) int64 {
	var t [numRegs]int64
	var ready [numRegs]bool
	var crit int64
	// fin[i] tracked implicitly through the register times.
	for i := range chains {
		c := &chains[i]
		switch c.kind {
		case chainZero, chainFree:
			for _, w := range c.writes {
				t[w], ready[w] = 0, false
			}
			continue
		case chainElim:
			var v int64
			ok := false
			if len(c.data) > 0 && ready[c.data[0]] {
				v, ok = t[c.data[0]], true
			}
			for _, w := range c.writes {
				t[w], ready[w] = v, ok
			}
			if v > crit {
				crit = v
			}
			continue
		}
		var fin int64
		if c.hasCompute || c.hasLoad {
			var dataBase, addrBase int64
			for _, r := range c.data {
				if ready[r] && t[r] > dataBase {
					dataBase = t[r]
				}
			}
			for _, r := range c.addr {
				if ready[r] && t[r] > addrBase {
					addrBase = t[r]
				}
			}
			switch {
			case c.hasCompute && c.hasLoad:
				loadDone := addrBase + c.loadLat
				if dataBase > loadDone {
					loadDone = dataBase
				}
				fin = loadDone + c.computeSum
			case c.hasCompute:
				fin = dataBase + c.computeSum
			default: // pure load
				fin = addrBase + c.loadLat
			}
		}
		for _, w := range c.writes {
			t[w], ready[w] = fin, true
		}
		if fin > crit {
			crit = fin
		}
	}
	return crit
}

// Chain computes the dependence-chain statistics of a block under the
// simulator-congruent model: the single-iteration critical path (cycles
// from clean state) and the steady-state loop-carried dependence height
// (cycles per iteration, the maximum dependence-cycle ratio). It is the
// shared computation behind blocklint's dependence facts and the
// dependence term of the static lower bound.
func Chain(cpu *uarch.CPU, insts []x86.Inst, descs []uarch.Desc) (crit int, height float64) {
	_ = cpu // latencies are already baked into descs
	chains := buildChains(insts, descs)
	edges := carriedEdges(chains)
	return int(critPath(chains)), maxCycleRatio(len(chains), edges)
}
