// Package bound computes provable static cycle bounds for basic blocks
// against the reference pipeline simulator: for each (block, µarch) pair a
// sound lower bound on steady-state cycles-per-iteration, a latency-sum
// upper bound, and a bottleneck verdict naming the dominating term. The
// lower bound is the maximum of three independently sound terms — the
// loop-carried dependence height (exact maximum cycle ratio over the
// simulator-congruent dependence graph), execution-port pressure (subset
// bound over the port tables), and front-end width (fused-µop allocation
// and fetch bandwidth). A simulated throughput below the lower bound or
// above the upper bound is a simulator bug, not a modeling error; the
// `-exp boundcheck` harness experiment enforces exactly that.
package bound

import (
	"fmt"

	"bhive/internal/memo"
	"bhive/internal/portmap"
	"bhive/internal/uarch"
	"bhive/internal/x86"
)

// Verdict names the lower-bound term that dominates a block.
type Verdict uint8

const (
	// VerdictDepChain: the loop-carried dependence height is the binding
	// constraint (a latency-bound block).
	VerdictDepChain Verdict = iota
	// VerdictPort: pressure on some execution-port subset binds (a
	// throughput-bound block).
	VerdictPort
	// VerdictFrontEnd: fused-µop allocation width or fetch bandwidth binds.
	VerdictFrontEnd
)

func (v Verdict) String() string {
	switch v {
	case VerdictDepChain:
		return "DepChain"
	case VerdictPort:
		return "Port"
	case VerdictFrontEnd:
		return "FrontEnd"
	}
	return "Verdict?"
}

// Bounds is the static cycle-bound analysis of one block on one µarch.
// All cycle quantities are per iteration of the block in steady state.
type Bounds struct {
	// Lower is the sound lower bound: max(DepChain, PortPressure, FrontEnd).
	Lower float64 `json:"lower"`
	// Upper is the serial-execution upper bound (every µop in sequence,
	// plus issue, fetch and store-forwarding slack).
	Upper float64 `json:"upper"`

	// The individual lower-bound terms.
	DepChain     float64 `json:"dep_chain"`
	PortPressure float64 `json:"port_pressure"`
	FrontEnd     float64 `json:"front_end"`

	// Ports is the execution-port subset attaining PortPressure.
	Ports uarch.PortSet `json:"-"`

	// CritPath is the latency-weighted critical path of a single iteration
	// from clean state (cycles, not per-iteration).
	CritPath int `json:"crit_path"`

	// Verdict names the dominating lower-bound term.
	Verdict Verdict `json:"-"`

	// Vacuous is set when any instruction fell back to the generic µop
	// descriptor (opcode missing from the table): the bounds still hold
	// against the simulator, which uses the same fallback, but they say
	// nothing about real hardware. bhive-lint reports these as BL015.
	Vacuous bool `json:"vacuous,omitempty"`
}

// VerdictString renders the verdict with the binding port subset, e.g.
// "Port(p01)".
func (b *Bounds) VerdictString() string {
	if b.Verdict == VerdictPort {
		return fmt.Sprintf("Port(%s)", b.Ports)
	}
	return b.Verdict.String()
}

// MarshalText lets Bounds verdicts print naturally in JSON reports.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// fetchBytesPerCycle matches the simulator's front-end fetch bandwidth
// (16 code bytes per cycle).
const fetchBytesPerCycle = 16.0

// Analyze computes the static bounds for a block on one µarch, against
// the legacy (16-bytes-per-cycle fetch) front end. It fails only when an
// instruction cannot be described at all (undecodable for this subset);
// unknown-but-describable opcodes instead yield vacuous bounds.
func Analyze(cpu *uarch.CPU, b *x86.Block) (*Bounds, error) {
	return AnalyzeFE(cpu, b, false)
}

// AnalyzeFE is Analyze with the front-end model selectable: modeled=true
// produces bounds sound against the simulator's modeled front end
// (pipeline.Config.ModeledFrontEnd), where DSB/LSD delivery bypasses the
// 16-bytes-per-cycle fetch limit — the fetch term leaves the lower bound,
// and the upper bound absorbs worst-case per-iteration decode, LCP-stall
// and delivery-switch costs instead.
func AnalyzeFE(cpu *uarch.CPU, b *x86.Block, modeled bool) (*Bounds, error) {
	if len(b.Insts) == 0 {
		return nil, fmt.Errorf("bound: empty block")
	}
	descs := make([]uarch.Desc, len(b.Insts))
	codeBytes, lcpCount := 0, 0
	for i := range b.Insts {
		d, err := memo.Describe(cpu, &b.Insts[i])
		if err != nil {
			return nil, fmt.Errorf("bound: instruction %d: %w", i, err)
		}
		descs[i] = d
		if raw, err := memo.Encode(&b.Insts[i]); err == nil {
			codeBytes += len(raw)
			if x86.LengthChangingPrefix(raw) {
				lcpCount++
			}
		}
	}
	bs := fromDescs(cpu, b.Insts, descs, codeBytes)
	if modeled {
		modeledFrontEnd(cpu, bs, descs, lcpCount)
	}
	return bs, nil
}

// FromDescs computes bounds from caller-supplied descriptors. It exists so
// tests can perturb latency tables directly (the monotonicity property) and
// so blocklint can reuse descriptors it already holds. Code bytes are
// re-derived from the instructions; encoding failures just drop the fetch
// term (weakening, never unsounding, the bound).
func FromDescs(cpu *uarch.CPU, insts []x86.Inst, descs []uarch.Desc) *Bounds {
	codeBytes := 0
	for i := range insts {
		if raw, err := memo.Encode(&insts[i]); err == nil {
			codeBytes += len(raw)
		}
	}
	return fromDescs(cpu, insts, descs, codeBytes)
}

func fromDescs(cpu *uarch.CPU, insts []x86.Inst, descs []uarch.Desc, codeBytes int) *Bounds {
	bs := &Bounds{}
	if len(insts) == 0 {
		return bs
	}

	// Dependence term: exact maximum cycle ratio of the simulator-congruent
	// dependence graph.
	crit, height := Chain(cpu, insts, descs)
	bs.CritPath, bs.DepChain = crit, height

	// Port term: every µop needs max(1, occupancy) cycles of some port in
	// its allowed combination (the simulator holds a port for `occupancy`
	// cycles when the unit is unpipelined, one dispatch cycle otherwise).
	load := make(map[uarch.PortSet]float64)
	fusedTotal := 0
	var upper float64
	nLoads := 0
	for i := range descs {
		d := &descs[i]
		fusedTotal += d.FusedUops
		if d.Generic {
			bs.Vacuous = true
		}
		for _, u := range d.Uops {
			occ := float64(u.Occupancy)
			if occ < 1 {
				occ = 1
			}
			load[u.Ports] += occ
			upper += float64(u.Lat) + occ
			if u.Class == uarch.ClassLoad {
				nLoads++
			}
		}
	}
	bs.PortPressure, bs.Ports = portmap.SubsetPressure(load)

	// Front-end term: fused-domain allocation is IssueWidth µops/cycle and
	// fetch is 16 code bytes/cycle; zero idioms and eliminated moves still
	// consume allocation slots. The DSB delivery rate (DSBWidth fused
	// µops/cycle) is a third sound floor: no front-end path delivers
	// faster than the µop cache. With the shipped parameter files it is
	// numerically inert here (DSBWidth ≥ IssueWidth, so allocation
	// dominates), but it keeps the bound sound for any parameterization
	// and is what remains of the floor under the modeled front end.
	alloc := float64(fusedTotal) / float64(cpu.IssueWidth)
	fetch := float64(codeBytes) / fetchBytesPerCycle
	bs.FrontEnd = alloc
	if fetch > bs.FrontEnd {
		bs.FrontEnd = fetch
	}
	if w := cpu.FE.DSBWidth; w > 0 {
		if dsbRate := float64(fusedTotal) / float64(w); dsbRate > bs.FrontEnd {
			bs.FrontEnd = dsbRate
		}
	}

	bs.Lower = bs.DepChain
	bs.Verdict = VerdictDepChain
	if bs.PortPressure > bs.Lower {
		bs.Lower, bs.Verdict = bs.PortPressure, VerdictPort
	}
	if bs.FrontEnd > bs.Lower {
		bs.Lower, bs.Verdict = bs.FrontEnd, VerdictFrontEnd
	}

	// Upper bound: fully serial execution — every µop waits out its
	// latency and unit occupancy, every fused µop takes an allocation
	// cycle, fetch runs at 16B/cycle, each load may additionally pay the
	// store-forwarding slack over the L1 hit it was billed, plus constant
	// pipeline slack. Sound for clean steady-state runs (no cache misses,
	// splits or subnormal penalties, which the boundcheck harness filters
	// by measurement status).
	fwdSlack := float64(cpu.FwdLatency - cpu.L1DLatency + 1)
	bs.Upper = upper + float64(fusedTotal) + fetch + float64(nLoads)*fwdSlack + 2
	return bs
}

// modeledFrontEnd rewrites the front-end floor and upper-bound slack of bs
// for the modeled front end. The lower bound drops the 16-bytes-per-cycle
// fetch term — DSB and LSD iterations never fetch from the L1I, so code
// size no longer floors throughput — leaving allocation width and the DSB
// delivery rate. The upper bound gains the worst case of the modeled
// delivery machinery: every instruction decoding in its own MITE group,
// every length-changing prefix stalling the predecoder, the predecoder's
// window alignment, and both delivery switches.
func modeledFrontEnd(cpu *uarch.CPU, bs *Bounds, descs []uarch.Desc, lcpCount int) {
	fusedTotal := 0
	for i := range descs {
		fusedTotal += descs[i].FusedUops
	}
	fe := float64(fusedTotal) / float64(cpu.IssueWidth)
	if w := cpu.FE.DSBWidth; w > 0 {
		if r := float64(fusedTotal) / float64(w); r > fe {
			fe = r
		}
	}
	bs.FrontEnd = fe

	bs.Lower, bs.Verdict = bs.DepChain, VerdictDepChain
	if bs.PortPressure > bs.Lower {
		bs.Lower, bs.Verdict = bs.PortPressure, VerdictPort
	}
	if bs.FrontEnd > bs.Lower {
		bs.Lower, bs.Verdict = bs.FrontEnd, VerdictFrontEnd
	}

	bs.Upper += float64(len(descs)) +
		float64(lcpCount*cpu.FE.LCPStall) +
		float64(2*cpu.FE.SwitchPenalty) + 1
}
