// Package vm models the virtual-memory environment a basic block executes
// in: a page table mapping virtual pages to physical pages, page-fault
// reporting, and the BHive trick of mapping every virtual page a block
// touches onto one chosen physical page (which also guarantees that all
// accesses hit a physically-tagged L1 data cache).
package vm

import "fmt"

// PageSize is the virtual/physical page size in bytes.
const PageSize = 4096

// PageMask extracts the page base from an address.
const PageMask = ^uint64(PageSize - 1)

// Fault is a page fault: an access to an unmapped virtual address. It is
// the signal the monitoring process intercepts to build the page mapping.
type Fault struct {
	Addr  uint64
	Write bool
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: page fault: %s of unmapped address %#x", kind, f.Addr)
}

// PhysPage is one physical page frame.
type PhysPage struct {
	// ID is the frame number; physical addresses are ID*PageSize+offset.
	ID   uint64
	Data [PageSize]byte

	// inFree guards against a frame entering the free list twice when the
	// page table maps it under many virtual pages (the single-phys-page
	// technique makes that the common case).
	inFree bool
}

// Fill sets every 4-byte word of the page to the given pattern. BHive fills
// its single physical page with a "moderately sized" constant so that
// values loaded from memory are themselves mappable pointers.
func (p *PhysPage) Fill(pattern uint32) {
	for i := 0; i < PageSize; i += 4 {
		p.Data[i] = byte(pattern)
		p.Data[i+1] = byte(pattern >> 8)
		p.Data[i+2] = byte(pattern >> 16)
		p.Data[i+3] = byte(pattern >> 24)
	}
}

// AddressSpace is a process's page table.
type AddressSpace struct {
	pages     map[uint64]*PhysPage // virtual page base -> frame
	nextFrame uint64
	free      []*PhysPage // frames recycled by Reset, reused by NewPhysPage
}

// New returns an empty address space.
func New() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]*PhysPage), nextFrame: 1}
}

// NewPhysPage allocates a fresh physical frame, reusing one recycled by
// Reset when available. A recycled frame is zeroed and renumbered, so it
// is indistinguishable from a newly allocated one.
func (as *AddressSpace) NewPhysPage() *PhysPage {
	var p *PhysPage
	if n := len(as.free); n > 0 {
		p = as.free[n-1]
		as.free = as.free[:n-1]
		p.inFree = false
		p.Data = [PageSize]byte{}
	} else {
		p = new(PhysPage)
	}
	p.ID = as.nextFrame
	as.nextFrame++
	return p
}

// Map installs a mapping from the virtual page containing vaddr to the
// given frame (the mmapToChosenPhysPage primitive of the paper's
// pseudocode). Mapping the same frame under many virtual pages is allowed —
// that is the whole point.
func (as *AddressSpace) Map(vaddr uint64, frame *PhysPage) {
	as.pages[vaddr&PageMask] = frame
}

// Unmap removes the mapping covering vaddr.
func (as *AddressSpace) Unmap(vaddr uint64) {
	delete(as.pages, vaddr&PageMask)
}

// UnmapAll clears the page table (BHive unmaps everything except the code
// pages before the mapping run).
func (as *AddressSpace) UnmapAll() {
	as.pages = make(map[uint64]*PhysPage)
}

// Reset restores the address space to its just-constructed state — no
// mappings and frame numbering starting over at 1 — reusing the page-table
// allocation. Physical addresses (frame ID × PageSize) are therefore
// identical to a fresh New, which is what keeps cache set indexing, and
// hence measurements, byte-identical when address spaces are recycled.
//
// The frames the table referenced are recycled into NewPhysPage's free
// list (zeroed and renumbered on reuse), so the 4KB page bodies — by far
// the largest allocation of a measurement — survive across resets.
// Callers must therefore drop any frame pointers they kept once they
// Reset the address space that issued them.
func (as *AddressSpace) Reset() {
	for _, f := range as.pages {
		if !f.inFree {
			f.inFree = true
			as.free = append(as.free, f)
		}
	}
	clear(as.pages)
	as.nextFrame = 1
}

// Translate returns the frame and physical address for a virtual address.
func (as *AddressSpace) Translate(vaddr uint64) (*PhysPage, uint64, bool) {
	frame, ok := as.pages[vaddr&PageMask]
	if !ok {
		return nil, 0, false
	}
	return frame, frame.ID*PageSize + vaddr%PageSize, true
}

// Mapped reports whether vaddr is mapped.
func (as *AddressSpace) Mapped(vaddr uint64) bool {
	_, ok := as.pages[vaddr&PageMask]
	return ok
}

// NumMappings returns the number of virtual pages currently mapped.
func (as *AddressSpace) NumMappings() int { return len(as.pages) }

// DistinctFrames returns the number of distinct physical frames mapped.
func (as *AddressSpace) DistinctFrames() int {
	seen := make(map[uint64]bool)
	for _, f := range as.pages {
		seen[f.ID] = true
	}
	return len(seen)
}

// Read copies size bytes at vaddr into buf, possibly crossing a page
// boundary. It returns a *Fault if any byte is unmapped.
func (as *AddressSpace) Read(vaddr uint64, buf []byte) error {
	for len(buf) > 0 {
		frame, _, ok := as.Translate(vaddr)
		if !ok {
			return &Fault{Addr: vaddr}
		}
		off := vaddr % PageSize
		n := copy(buf, frame.Data[off:])
		buf = buf[n:]
		vaddr += uint64(n)
	}
	return nil
}

// Write copies buf to vaddr, possibly crossing a page boundary.
func (as *AddressSpace) Write(vaddr uint64, buf []byte) error {
	for len(buf) > 0 {
		frame, _, ok := as.Translate(vaddr)
		if !ok {
			return &Fault{Addr: vaddr, Write: true}
		}
		off := vaddr % PageSize
		n := copy(frame.Data[off:], buf)
		buf = buf[n:]
		vaddr += uint64(n)
	}
	return nil
}

// ValidUserAddress reports whether an address can legally be mapped for a
// user-space process: not in the zero page (null-ish pointers) and below
// the canonical user-space ceiling. The monitor refuses to map invalid
// addresses, and such blocks fail to profile.
func ValidUserAddress(addr uint64) bool {
	return addr >= PageSize && addr < 0x0000_8000_0000_0000
}
