package vm

import "testing"

func TestMapTranslate(t *testing.T) {
	as := New()
	p := as.NewPhysPage()
	as.Map(0x12345678, p)
	if !as.Mapped(0x12345000) || !as.Mapped(0x12345FFF) {
		t.Fatal("whole page must be mapped")
	}
	if as.Mapped(0x12346000) {
		t.Fatal("next page must not be mapped")
	}
	_, phys, ok := as.Translate(0x12345678)
	if !ok || phys != p.ID*PageSize+0x678 {
		t.Fatalf("translate: %#x", phys)
	}
}

func TestSinglePhysPageAliasing(t *testing.T) {
	as := New()
	p := as.NewPhysPage()
	as.Map(0x10000, p)
	as.Map(0x99000, p)
	if as.NumMappings() != 2 || as.DistinctFrames() != 1 {
		t.Fatalf("mappings=%d frames=%d", as.NumMappings(), as.DistinctFrames())
	}
	// A write through one virtual page is visible through the other: the
	// aliasing the single-physical-page trick relies on.
	if err := as.Write(0x10008, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	var buf [1]byte
	if err := as.Read(0x99008, buf[:]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("aliased frame must share contents")
	}
}

func TestFaultReporting(t *testing.T) {
	as := New()
	err := as.Read(0x5000, make([]byte, 8))
	f, ok := err.(*Fault)
	if !ok || f.Addr != 0x5000 || f.Write {
		t.Fatalf("got %v", err)
	}
	err = as.Write(0x5000, make([]byte, 8))
	f, ok = err.(*Fault)
	if !ok || !f.Write {
		t.Fatalf("got %v", err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	as := New()
	p1, p2 := as.NewPhysPage(), as.NewPhysPage()
	as.Map(0x10000, p1)
	as.Map(0x11000, p2)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := as.Write(0x10FFC, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := as.Read(0x10FFC, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d", i, got[i])
		}
	}
	if p1.Data[PageSize-4] != 1 || p2.Data[3] != 8 {
		t.Fatal("bytes must straddle the frames")
	}
	// Fault midway: second page unmapped.
	as.Unmap(0x11000)
	if err := as.Write(0x10FFC, data); err == nil {
		t.Fatal("expected fault on second page")
	}
}

func TestFill(t *testing.T) {
	as := New()
	p := as.NewPhysPage()
	p.Fill(0x12345600)
	if p.Data[0] != 0x00 || p.Data[1] != 0x56 || p.Data[2] != 0x34 || p.Data[3] != 0x12 {
		t.Fatal("little-endian fill")
	}
	if p.Data[PageSize-1] != 0x12 {
		t.Fatal("fill must cover the page")
	}
}

func TestValidUserAddress(t *testing.T) {
	cases := map[uint64]bool{
		0:                     false,
		100:                   false, // null page
		PageSize:              true,
		0x12345600:            true,
		0x7FFF_FFFF_F000:      true,
		0x0000_8000_0000_0000: false, // non-canonical start
		0xFFFF_8000_0000_0000: false, // kernel half
	}
	for addr, want := range cases {
		if got := ValidUserAddress(addr); got != want {
			t.Errorf("ValidUserAddress(%#x) = %v", addr, got)
		}
	}
}

func TestUnmapAll(t *testing.T) {
	as := New()
	as.Map(0x10000, as.NewPhysPage())
	as.Map(0x20000, as.NewPhysPage())
	as.UnmapAll()
	if as.NumMappings() != 0 {
		t.Fatal("unmap all")
	}
}
