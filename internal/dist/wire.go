// Package dist is the distributed-evaluation layer behind bhive-serve's
// coordinator mode and cmd/bhive-worker: a coordinator splits a job's
// corpus into shard-range leases, hands them to workers over HTTP, and
// folds the returned per-shard payloads into the job's checkpoint
// journal — from which the final tables replay byte-identically to a
// single-node run (the journal is the merge point; see internal/harness).
//
// The package has two halves: the lease Manager (coordinator-side
// bookkeeping — granting, expiry, re-issue, backpressure) and the Worker
// engine (the pull loop a worker process runs). The HTTP endpoints
// themselves live in internal/server; the wire types here are shared by
// both sides.
//
// Protocol (all POST bodies and responses are JSON):
//
//	POST /v1/dist/lease        LeaseRequest -> Lease | 204 (no work) | 503 + Retry-After (saturated)
//	GET  /v1/dist/jobs/{id}    -> JobSpec (the normalized evaluation request + shard geometry)
//	POST /v1/dist/result       ShardResult -> ResultAck | 409 (unknown/finished job)
//
// Leases are issued against a job fingerprint (the same run identity that
// binds checkpoint journals), so a worker that builds a divergent corpus
// — version skew, wrong scale — detects the mismatch before computing
// anything. A lease expires at its deadline: the coordinator returns its
// unfinished shards to the pending pool and re-issues them to the next
// worker that asks. Late results for a re-issued shard are accepted
// idempotently (first write wins, duplicates acknowledged and dropped),
// so an expired-but-alive worker wastes at most one shard of work.
package dist

import (
	"encoding/json"
	"math"
	"time"

	"bhive/internal/stats"
)

// ShardRef names one unit of leased work: one shard of one
// microarchitecture's corpus pass.
type ShardRef struct {
	Arch  string `json:"arch"`
	Shard int    `json:"shard"`
}

// LeaseRequest is the body of POST /v1/dist/lease.
type LeaseRequest struct {
	// Worker is a self-chosen worker name, used for observability and
	// lease attribution (not authentication — that is the bearer token).
	Worker string `json:"worker"`
}

// Lease is one grant of work: a set of shards of one job, valid until
// Deadline. The worker fetches the job's spec (normalized request) once
// per job via GET /v1/dist/jobs/{id} and caches the built suite by
// fingerprint.
type Lease struct {
	ID          string    `json:"id"`
	JobID       string    `json:"job_id"`
	Fingerprint string    `json:"fingerprint"`
	Shards      []ShardRef `json:"shards"`
	Deadline    time.Time `json:"deadline"`
}

// JobSpec is the worker-facing description of a distributed job: the
// exact normalized request the coordinator admitted (the worker rebuilds
// the identical corpus and harness configuration from it) plus the shard
// geometry and the run fingerprint to verify against.
type JobSpec struct {
	ID          string          `json:"id"`
	Fingerprint string          `json:"fingerprint"`
	ShardSize   int             `json:"shard_size"`
	Request     json.RawMessage `json:"request"`
}

// ShardResult is the body of POST /v1/dist/result: one computed shard's
// per-record data (the journal line the coordinator will write) plus the
// shard's partial per-model aggregates (merged coordinator-side for live
// status without re-walking records).
type ShardResult struct {
	LeaseID string   `json:"lease_id"`
	JobID   string   `json:"job_id"`
	Worker  string   `json:"worker"`
	Ref     ShardRef `json:"ref"`

	Tp     []float64             `json:"tp"`
	Status []int                 `json:"status"`
	Preds  map[string][]NaNFloat `json:"preds"`

	Overall map[string]stats.Running `json:"overall,omitempty"`
	Tau     map[string]*stats.TauAcc `json:"tau,omitempty"`
}

// ResultAck is the coordinator's response to a posted shard.
type ResultAck struct {
	// Accepted is false when the shard was already complete (a re-issued
	// lease raced the original worker) — the result was dropped, which is
	// fine: first write wins and both are byte-identical by construction.
	Accepted bool `json:"accepted"`
	// JobDone reports whether the job's fill is now complete, letting
	// workers log progress.
	JobDone bool `json:"job_done"`
}

// NaNFloat round-trips NaN through JSON as null: failed models
// legitimately predict NaN, and encoding/json rejects it otherwise (the
// same trick the checkpoint journal uses).
type NaNFloat float64

// MarshalJSON encodes NaN as null.
func (f NaNFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

// UnmarshalJSON decodes null as NaN.
func (f *NaNFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = NaNFloat(math.NaN())
		return nil
	}
	return json.Unmarshal(b, (*float64)(f))
}

// ToNaNFloats converts a prediction map to the wire form.
func ToNaNFloats(preds map[string][]float64) map[string][]NaNFloat {
	out := make(map[string][]NaNFloat, len(preds))
	for name, vs := range preds {
		ns := make([]NaNFloat, len(vs))
		for i, v := range vs {
			ns[i] = NaNFloat(v)
		}
		out[name] = ns
	}
	return out
}

// FromNaNFloats converts wire predictions back to plain float64 slices.
func FromNaNFloats(preds map[string][]NaNFloat) map[string][]float64 {
	out := make(map[string][]float64, len(preds))
	for name, vs := range preds {
		fs := make([]float64, len(vs))
		for i, v := range vs {
			fs[i] = float64(v)
		}
		out[name] = fs
	}
	return out
}
