package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bhive/internal/harness"
)

func testWorkerConfig(t *testing.T, url string, build func([]byte, int) (*harness.Suite, error)) WorkerConfig {
	t.Helper()
	return WorkerConfig{
		Coordinator:    url,
		Name:           "tw",
		BuildSuite:     build,
		PollInterval:   5 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
		BackoffBase:    time.Millisecond,
	}
}

func nopBuild([]byte, int) (*harness.Suite, error) {
	return harness.New(harness.DefaultConfig()), nil
}

// TestWorkerLoopAgainstStubCoordinator drives the whole worker pull loop
// against a scripted coordinator: one lease for one real shard, then no
// work. The posted result must carry the complete shard payload with the
// bearer token on every request.
func TestWorkerLoopAgainstStubCoordinator(t *testing.T) {
	cfg := harness.DefaultConfig()
	cfg.Scale = 0.002
	cfg.ShardSize = 64
	suite := harness.New(cfg)
	fp := suite.Fingerprint()
	lo, hi := suite.ShardRange(0)
	names, err := suite.ModelNames("haswell")
	if err != nil {
		t.Fatal(err)
	}

	var leased atomic.Bool
	resultCh := make(chan *ShardResult, 1)
	mux := http.NewServeMux()
	auth := func(r *http.Request) bool { return r.Header.Get("Authorization") == "Bearer sekrit" }
	mux.HandleFunc("POST /v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		if !auth(r) {
			t.Error("lease without bearer token")
		}
		if leased.Swap(true) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		json.NewEncoder(w).Encode(Lease{
			ID: "l-1", JobID: "job1", Fingerprint: fp,
			Shards:   []ShardRef{{Arch: "haswell", Shard: 0}},
			Deadline: time.Now().Add(time.Minute),
		})
	})
	mux.HandleFunc("GET /v1/dist/jobs/job1", func(w http.ResponseWriter, r *http.Request) {
		if !auth(r) {
			t.Error("spec fetch without bearer token")
		}
		json.NewEncoder(w).Encode(JobSpec{ID: "job1", Fingerprint: fp, ShardSize: cfg.ShardSize, Request: json.RawMessage(`{}`)})
	})
	mux.HandleFunc("POST /v1/dist/result", func(w http.ResponseWriter, r *http.Request) {
		var res ShardResult
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			t.Errorf("decoding result: %v", err)
		}
		select {
		case resultCh <- &res:
		default:
		}
		json.NewEncoder(w).Encode(ResultAck{Accepted: true, JobDone: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	wcfg := testWorkerConfig(t, srv.URL, func(req []byte, shardSize int) (*harness.Suite, error) {
		c := cfg
		c.ShardSize = shardSize
		return harness.New(c), nil
	})
	wcfg.Token = "sekrit"
	w, err := NewWorker(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ret := make(chan error, 1)
	go func() { ret <- w.Run(ctx) }()

	var res *ShardResult
	select {
	case res = <-resultCh:
	case <-time.After(60 * time.Second):
		t.Fatal("no result posted")
	}
	// Wait for the worker to finish its round trip before cancelling —
	// cancelling now would abort its in-flight response read.
	for deadline := time.Now().Add(10 * time.Second); w.ShardsDone() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("shard never acknowledged")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-ret; err != context.Canceled {
		t.Fatalf("Run returned %v", err)
	}

	if res.JobID != "job1" || res.LeaseID != "l-1" || res.Worker != "tw" {
		t.Fatalf("result identity: %+v", res)
	}
	if len(res.Tp) != hi-lo || len(res.Status) != hi-lo {
		t.Fatalf("result covers %d records, want %d", len(res.Tp), hi-lo)
	}
	for _, name := range names {
		if len(res.Preds[name]) != hi-lo {
			t.Fatalf("missing predictions for %s", name)
		}
		if agg := res.Overall[name]; agg.N() == 0 {
			t.Fatalf("empty aggregate for %s", name)
		}
	}
	if w.ShardsDone() != 1 {
		t.Fatalf("ShardsDone=%d", w.ShardsDone())
	}
}

// TestWorkerRefusesFingerprintMismatch: a worker whose rebuilt suite
// fingerprints differently from the lease must not compute or post
// anything.
func TestWorkerRefusesFingerprintMismatch(t *testing.T) {
	var posted atomic.Bool
	leases := make(chan struct{}, 16)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		select {
		case leases <- struct{}{}:
		default:
		}
		json.NewEncoder(w).Encode(Lease{
			ID: "l-1", JobID: "job1", Fingerprint: "not-the-real-fingerprint",
			Shards:   []ShardRef{{Arch: "haswell", Shard: 0}},
			Deadline: time.Now().Add(time.Minute),
		})
	})
	mux.HandleFunc("GET /v1/dist/jobs/job1", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(JobSpec{ID: "job1", ShardSize: 64, Request: json.RawMessage(`{}`)})
	})
	mux.HandleFunc("POST /v1/dist/result", func(w http.ResponseWriter, r *http.Request) {
		posted.Store(true)
		json.NewEncoder(w).Encode(ResultAck{Accepted: true})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cfg := harness.DefaultConfig()
	cfg.Scale = 0.002
	w, err := NewWorker(testWorkerConfig(t, srv.URL, func([]byte, int) (*harness.Suite, error) {
		return harness.New(cfg), nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	// Let the worker chew through a few lease cycles, then verify it
	// never posted a result for the mismatched job.
	for i := 0; i < 3; i++ {
		select {
		case <-leases:
		case <-time.After(10 * time.Second):
			t.Fatal("worker stopped polling")
		}
	}
	cancel()
	if posted.Load() {
		t.Fatal("worker posted a result despite fingerprint mismatch")
	}
}

// TestWorkerRetriesTransientFailures: 5xx responses retry with backoff
// until success; protocol statuses (204, 503+Retry-After) do not retry.
func TestWorkerRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1, 2:
			http.Error(w, "transient", http.StatusBadGateway)
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w, err := NewWorker(testWorkerConfig(t, srv.URL, nopBuild))
	if err != nil {
		t.Fatal(err)
	}
	l, wait, err := w.lease(context.Background())
	if err != nil || l != nil || wait != 0 {
		t.Fatalf("lease after retries: %+v wait=%v err=%v", l, wait, err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 502s then 204)", n)
	}
}

func TestWorkerHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w, err := NewWorker(testWorkerConfig(t, srv.URL, nopBuild))
	if err != nil {
		t.Fatal(err)
	}
	l, wait, err := w.lease(context.Background())
	if err != nil || l != nil {
		t.Fatalf("saturated lease: %+v, %v", l, err)
	}
	if wait != 7*time.Second {
		t.Fatalf("Retry-After hint %v, want 7s", wait)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("503 must not retry inside do(): %d calls", n)
	}
}

// TestWorkerRetryAfterZero: "Retry-After: 0" is a protocol-legal hint
// meaning retry immediately (but politely). It used to be dropped as "no
// hint", sending the worker down the full poll-interval path; now it
// surfaces as the short positive floor delay.
func TestWorkerRetryAfterZero(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w, err := NewWorker(testWorkerConfig(t, srv.URL, nopBuild))
	if err != nil {
		t.Fatal(err)
	}
	l, wait, err := w.lease(context.Background())
	if err != nil || l != nil {
		t.Fatalf("saturated lease: %+v, %v", l, err)
	}
	if wait != retryAfterFloor {
		t.Fatalf("Retry-After: 0 hint = %v, want the polite floor %v", wait, retryAfterFloor)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"7", 7 * time.Second, true},
		{"0", retryAfterFloor, true},       // immediate-but-polite
		{"86400", retryAfterCeiling, true}, // ceiling clamp
		{"-3", 0, false},                   // negative seconds are malformed
		{"soon", 0, false},                 // garbage
		{"", 0, false},                     // empty
		{"1.5", 0, false},                  // fractional seconds are not in the grammar
		{now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second, true}, // HTTP-date
		{now.Add(-time.Hour).Format(http.TimeFormat), retryAfterFloor, true},        // past date → immediate
		{now.Add(24 * time.Hour).Format(http.TimeFormat), retryAfterCeiling, true},  // far future → ceiling
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in, now)
		if ok != c.ok || got != c.want {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestWorkerBackoffBounds(t *testing.T) {
	w, err := NewWorker(WorkerConfig{Coordinator: "http://x", BuildSuite: nopBuild, BackoffBase: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 20; attempt++ {
		for i := 0; i < 50; i++ {
			d := w.backoff(attempt)
			base := 100 * time.Millisecond << uint(attempt)
			if base <= 0 || base > 5*time.Second {
				base = 5 * time.Second
			}
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
}

func TestWorkerConfigValidation(t *testing.T) {
	if _, err := NewWorker(WorkerConfig{BuildSuite: nopBuild}); err == nil {
		t.Fatal("missing coordinator accepted")
	}
	if _, err := NewWorker(WorkerConfig{Coordinator: "http://x"}); err == nil {
		t.Fatal("missing BuildSuite accepted")
	}
}
