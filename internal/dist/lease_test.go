package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic expiry.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func refs(arch string, n int) []ShardRef {
	out := make([]ShardRef, n)
	for i := range out {
		out[i] = ShardRef{Arch: arch, Shard: i}
	}
	return out
}

func result(jobID string, ref ShardRef) *ShardResult {
	return &ShardResult{JobID: jobID, Ref: ref, Tp: []float64{1}, Status: []int{0}}
}

func TestManagerLeaseAndComplete(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Now: clk.Now, ShardsPerLease: 2, LeaseTTL: time.Minute})
	var mu sync.Mutex
	var sunk []ShardRef
	done, err := m.AddJob(JobSpec{ID: "job1", Fingerprint: "fp"}, refs("hsw", 3), func(res *ShardResult) error {
		mu.Lock()
		defer mu.Unlock()
		sunk = append(sunk, res.Ref)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	l1, err := m.Lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(l1.Shards) != 2 || l1.Fingerprint != "fp" || l1.JobID != "job1" {
		t.Fatalf("lease 1: %+v", l1)
	}
	if got, want := l1.Deadline, clk.Now().Add(time.Minute); !got.Equal(want) {
		t.Fatalf("deadline %v, want %v", got, want)
	}
	l2, err := m.Lease("w2")
	if err != nil || len(l2.Shards) != 1 {
		t.Fatalf("lease 2: %+v, %v", l2, err)
	}
	if _, err := m.Lease("w3"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("want ErrNoWork, got %v", err)
	}

	for _, ref := range l1.Shards {
		ack, err := m.Complete(result("job1", ref))
		if err != nil || !ack.Accepted {
			t.Fatalf("complete %v: %+v, %v", ref, ack, err)
		}
		if ack.JobDone {
			t.Fatal("job done too early")
		}
	}
	ack, err := m.Complete(result("job1", l2.Shards[0]))
	if err != nil || !ack.Accepted || !ack.JobDone {
		t.Fatalf("final complete: %+v, %v", ack, err)
	}
	select {
	case <-done:
	default:
		t.Fatal("done channel not closed")
	}
	if err := m.Err("job1"); err != nil {
		t.Fatalf("job err: %v", err)
	}
	if len(sunk) != 3 {
		t.Fatalf("sink saw %d shards", len(sunk))
	}
	// The job is gone: further results are rejected as unknown.
	if _, err := m.Complete(result("job1", ShardRef{Arch: "hsw"})); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("want ErrUnknownJob, got %v", err)
	}
}

func TestManagerExpiryReissuesAndLateResultDropped(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Now: clk.Now, LeaseTTL: time.Minute})
	_, err := m.AddJob(JobSpec{ID: "j", Fingerprint: "fp"}, refs("hsw", 1), func(*ShardResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}

	l1, err := m.Lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	// Not expired yet: nothing to grant.
	if _, err := m.Lease("w2"); !errors.Is(err, ErrNoWork) {
		t.Fatalf("want ErrNoWork, got %v", err)
	}
	clk.Advance(time.Minute)
	// Expired: the same shard re-issues to the next asker.
	l2, err := m.Lease("w2")
	if err != nil {
		t.Fatal(err)
	}
	if l2.Shards[0] != l1.Shards[0] || l2.ID == l1.ID {
		t.Fatalf("re-issue: %+v after %+v", l2, l1)
	}
	if st := m.Snapshot(); st.Reissued != 1 {
		t.Fatalf("reissued count %d", st.Reissued)
	}

	// The dead worker turns out alive and delivers late — first write
	// wins: accepted (shard wasn't done), and w2's duplicate is dropped.
	ack, err := m.Complete(result("j", l1.Shards[0]))
	if err != nil || !ack.Accepted || !ack.JobDone {
		t.Fatalf("late original result: %+v, %v", ack, err)
	}
}

func TestManagerDuplicateResultDropped(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Now: clk.Now, ShardsPerLease: 2})
	var calls int
	var mu sync.Mutex
	_, err := m.AddJob(JobSpec{ID: "j"}, refs("hsw", 2), func(*ShardResult) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	if ack, err := m.Complete(result("j", l.Shards[0])); err != nil || !ack.Accepted {
		t.Fatalf("first: %+v, %v", ack, err)
	}
	// Same shard again: acknowledged, not accepted, sink not re-invoked.
	ack, err := m.Complete(result("j", l.Shards[0]))
	if err != nil || ack.Accepted {
		t.Fatalf("duplicate: %+v, %v", ack, err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times", calls)
	}
	// A result for a shard that was never part of the job is an error.
	if _, err := m.Complete(result("j", ShardRef{Arch: "hsw", Shard: 99})); err == nil {
		t.Fatal("unknown shard accepted")
	}
}

func TestManagerSaturation(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Now: clk.Now, MaxInflight: 2, LeaseTTL: time.Minute})
	_, err := m.AddJob(JobSpec{ID: "j"}, refs("hsw", 5), func(*ShardResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := m.Lease("w1")
	if _, err := m.Lease("w2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lease("w3"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	// Completing a lease frees a slot.
	if _, err := m.Complete(result("j", l1.Shards[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lease("w3"); err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
	// Expiry also frees slots.
	clk.Advance(2 * time.Minute)
	if _, err := m.Lease("w4"); err != nil {
		t.Fatalf("expiry did not free slots: %v", err)
	}
}

func TestManagerSinkFailureFailsJob(t *testing.T) {
	m := NewManager(ManagerConfig{})
	boom := errors.New("disk full")
	done, err := m.AddJob(JobSpec{ID: "j"}, refs("hsw", 2), func(*ShardResult) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Complete(result("j", l.Shards[0])); !errors.Is(err, boom) {
		t.Fatalf("want sink error, got %v", err)
	}
	select {
	case <-done:
	default:
		t.Fatal("failed job must close its channel")
	}
	if err := m.Err("j"); !errors.Is(err, boom) {
		t.Fatalf("Err: %v", err)
	}
	if err := m.Err("j"); err != nil {
		t.Fatalf("Err must be consumed: %v", err)
	}
}

func TestManagerRemoveJob(t *testing.T) {
	m := NewManager(ManagerConfig{})
	done, err := m.AddJob(JobSpec{ID: "j"}, refs("hsw", 1), func(*ShardResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	m.RemoveJob("j")
	select {
	case <-done:
	default:
		t.Fatal("withdrawn job must close its channel")
	}
	if err := m.Err("j"); err == nil {
		t.Fatal("withdrawn job must report an error")
	}
	if _, err := m.Complete(result("j", l.Shards[0])); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("want ErrUnknownJob after withdrawal, got %v", err)
	}
	if _, err := m.Spec("j"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("want ErrUnknownJob from Spec, got %v", err)
	}
	m.RemoveJob("j") // idempotent
}

func TestManagerFIFOAcrossJobs(t *testing.T) {
	m := NewManager(ManagerConfig{})
	sink := func(*ShardResult) error { return nil }
	if _, err := m.AddJob(JobSpec{ID: "old"}, refs("hsw", 1), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddJob(JobSpec{ID: "new"}, refs("hsw", 1), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddJob(JobSpec{ID: "old"}, refs("hsw", 1), sink); err == nil {
		t.Fatal("duplicate job id accepted")
	}
	l, err := m.Lease("w")
	if err != nil {
		t.Fatal(err)
	}
	if l.JobID != "old" {
		t.Fatalf("oldest job must drain first, got %s", l.JobID)
	}
}

// TestManagerConcurrentWorkers hammers one manager from many goroutines
// under -race: concurrent leasing, completing, and expiring must keep the
// bookkeeping consistent and sink every shard exactly once.
func TestManagerConcurrentWorkers(t *testing.T) {
	m := NewManager(ManagerConfig{LeaseTTL: 50 * time.Millisecond, MaxInflight: 8, ShardsPerLease: 3})
	const shards = 60
	var mu sync.Mutex
	seen := map[ShardRef]int{}
	done, err := m.AddJob(JobSpec{ID: "j", Fingerprint: "fp"}, refs("hsw", shards), func(res *ShardResult) error {
		mu.Lock()
		defer mu.Unlock()
		seen[res.Ref]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			slow := id == 0 // one worker leases and sits on it, forcing expiry+re-issue
			for {
				select {
				case <-done:
					return
				default:
				}
				l, err := m.Lease(fmt.Sprintf("w%d", id))
				if err != nil {
					time.Sleep(time.Millisecond)
					continue
				}
				if slow {
					time.Sleep(60 * time.Millisecond)
					slow = false // then behave, so the test terminates
				}
				for _, ref := range l.Shards {
					if _, err := m.Complete(result("j", ref)); err != nil && !errors.Is(err, ErrUnknownJob) {
						t.Errorf("complete: %v", err)
						return
					}
				}
			}
		}(i)
	}

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fill did not converge")
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != shards {
		t.Fatalf("sank %d distinct shards, want %d", len(seen), shards)
	}
}

func TestNaNFloatRoundTrip(t *testing.T) {
	in := map[string][]float64{
		"m1": {1.5, math.NaN(), 3},
		"m2": {math.NaN()},
	}
	raw, err := json.Marshal(ToNaNFloats(in))
	if err != nil {
		t.Fatal(err)
	}
	var dec map[string][]NaNFloat
	if err := json.Unmarshal(raw, &dec); err != nil {
		t.Fatal(err)
	}
	out := FromNaNFloats(dec)
	for name, vs := range in {
		for i, v := range vs {
			got := out[name][i]
			if math.IsNaN(v) != math.IsNaN(got) || (!math.IsNaN(v) && got != v) {
				t.Fatalf("%s[%d]: %v -> %v", name, i, v, got)
			}
		}
	}
}
