package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bhive/internal/harness"
)

// WorkerConfig configures the worker pull loop. Coordinator and
// BuildSuite are required; everything else defaults sensibly.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. http://host:8707.
	Coordinator string
	// Token is the bearer token sent on every request ("" for
	// localhost-only coordinators that run without auth).
	Token string
	// Name identifies this worker in leases and logs.
	Name string
	// BuildSuite constructs the evaluation suite from a job's normalized
	// request JSON and shard size. It must produce the same corpus and
	// configuration the coordinator built — verified via the fingerprint
	// before any shard is computed.
	BuildSuite func(request []byte, shardSize int) (*harness.Suite, error)

	// PollInterval is the idle sleep between no-work polls (default 1s;
	// jittered so a worker fleet doesn't poll in lockstep).
	PollInterval time.Duration
	// RequestTimeout bounds each HTTP call (default 30s).
	RequestTimeout time.Duration
	// MaxRetries is how many times a transient HTTP failure is retried
	// with exponential backoff before the lease is abandoned (default 4;
	// an abandoned lease re-issues at its deadline, so giving up is safe).
	MaxRetries int
	// BackoffBase is the first retry delay (default 200ms, doubling per
	// attempt with jitter, capped at 5s).
	BackoffBase time.Duration
	// Log receives progress lines; nil discards them.
	Log *log.Logger
}

func (c *WorkerConfig) applyDefaults() error {
	if c.Coordinator == "" {
		return errors.New("dist: worker: Coordinator URL required")
	}
	if c.BuildSuite == nil {
		return errors.New("dist: worker: BuildSuite required")
	}
	if c.Name == "" {
		c.Name = "worker"
	}
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 200 * time.Millisecond
	}
	return nil
}

// Worker is the pull loop a worker process runs: lease, build (or reuse)
// the suite, compute each leased shard, post results — until the context
// ends. Transient coordinator failures back off and retry; a lease that
// cannot be delivered is abandoned to expiry.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	suites map[string]*harness.Suite // job id -> verified suite

	shardsDone atomic.Uint64
}

// NewWorker validates the config and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Worker{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.RequestTimeout},
		suites: map[string]*harness.Suite{},
	}, nil
}

// ShardsDone reports how many shards this worker has successfully
// delivered (tests and status lines).
func (w *Worker) ShardsDone() uint64 { return w.shardsDone.Load() }

// Run polls for leases until ctx is done. It only returns ctx.Err():
// every other failure is logged and retried — a worker fleet should
// survive coordinator restarts.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, wait, err := w.lease(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("lease: %v", err)
			w.sleep(ctx, w.cfg.PollInterval)
			continue
		case lease == nil:
			// No work (or saturated with a Retry-After hint).
			if wait <= 0 {
				wait = w.cfg.PollInterval
			}
			w.sleep(ctx, wait)
			continue
		}
		w.serve(ctx, lease)
	}
}

// serve computes and delivers one lease's shards.
func (w *Worker) serve(ctx context.Context, lease *Lease) {
	suite, err := w.suiteFor(ctx, lease)
	if err != nil {
		w.logf("lease %s: suite: %v", lease.ID, err)
		w.sleep(ctx, w.cfg.PollInterval)
		return
	}
	for _, ref := range lease.Shards {
		if ctx.Err() != nil {
			return
		}
		if !time.Now().Before(lease.Deadline) {
			// Expired under us: the coordinator has (or will) re-issue
			// the rest; computing them would be wasted work.
			w.logf("lease %s expired locally; abandoning %s/%d onward", lease.ID, ref.Arch, ref.Shard)
			return
		}
		p, err := suite.ComputeShard(ref.Arch, ref.Shard)
		if err != nil {
			w.logf("lease %s: compute %s/%d: %v", lease.ID, ref.Arch, ref.Shard, err)
			return
		}
		res := &ShardResult{
			LeaseID: lease.ID,
			JobID:   lease.JobID,
			Worker:  w.cfg.Name,
			Ref:     ref,
			Tp:      p.Tp,
			Status:  p.Status,
			Preds:   ToNaNFloats(p.Preds),
			Overall: p.Overall,
			Tau:     p.Tau,
		}
		ack, err := w.postResult(ctx, res)
		if err != nil {
			if errors.Is(err, ErrUnknownJob) {
				w.logf("lease %s: job %s gone; dropping lease", lease.ID, lease.JobID)
				delete(w.suites, lease.JobID)
			} else {
				w.logf("lease %s: deliver %s/%d: %v (abandoning to expiry)", lease.ID, ref.Arch, ref.Shard, err)
			}
			return
		}
		w.shardsDone.Add(1)
		if !ack.Accepted {
			w.logf("shard %s/%d was already filled (re-issued lease raced); continuing", ref.Arch, ref.Shard)
		}
		if ack.JobDone {
			w.logf("job %s complete", lease.JobID)
			delete(w.suites, lease.JobID)
		}
	}
}

// suiteFor returns the verified suite for a lease's job, fetching the
// spec and building it on first use.
func (w *Worker) suiteFor(ctx context.Context, lease *Lease) (*harness.Suite, error) {
	if s, ok := w.suites[lease.JobID]; ok {
		return s, nil
	}
	var spec JobSpec
	status, _, err := w.do(ctx, http.MethodGet, "/v1/dist/jobs/"+lease.JobID, nil, &spec)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, ErrUnknownJob
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("spec fetch: HTTP %d", status)
	}
	s, err := w.cfg.BuildSuite(spec.Request, spec.ShardSize)
	if err != nil {
		return nil, fmt.Errorf("building suite: %w", err)
	}
	if got := s.Fingerprint(); got != lease.Fingerprint {
		return nil, fmt.Errorf("fingerprint mismatch: built %s, lease wants %s (corpus or version skew — refusing to compute)", got, lease.Fingerprint)
	}
	w.suites[lease.JobID] = s
	w.logf("job %s: suite built and verified (%d shards/arch)", lease.JobID, s.NumCorpusShards())
	return s, nil
}

// lease asks for work. Returns (nil, wait, nil) when there is none —
// wait carries the coordinator's Retry-After hint if it sent one.
func (w *Worker) lease(ctx context.Context) (*Lease, time.Duration, error) {
	var l Lease
	status, retryAfter, err := w.do(ctx, http.MethodPost, "/v1/dist/lease", LeaseRequest{Worker: w.cfg.Name}, &l)
	if err != nil {
		return nil, 0, err
	}
	switch status {
	case http.StatusOK:
		return &l, 0, nil
	case http.StatusNoContent:
		return nil, 0, nil
	case http.StatusServiceUnavailable:
		return nil, retryAfter, nil
	default:
		return nil, 0, fmt.Errorf("lease: HTTP %d", status)
	}
}

// postResult delivers one shard, retrying transient failures.
func (w *Worker) postResult(ctx context.Context, res *ShardResult) (ResultAck, error) {
	var ack ResultAck
	status, _, err := w.do(ctx, http.MethodPost, "/v1/dist/result", res, &ack)
	if err != nil {
		return ResultAck{}, err
	}
	switch status {
	case http.StatusOK:
		return ack, nil
	case http.StatusConflict, http.StatusNotFound:
		return ResultAck{}, ErrUnknownJob
	default:
		return ResultAck{}, fmt.Errorf("result: HTTP %d", status)
	}
}

// do issues one JSON request with auth, per-call timeout, and jittered
// exponential backoff on transient failures (network errors and 5xx
// other than 503-backpressure). Non-2xx statuses that carry protocol
// meaning (204, 404, 409, 503) are returned to the caller, not retried.
func (w *Worker) do(ctx context.Context, method, path string, in, out any) (status int, retryAfter time.Duration, err error) {
	var body []byte
	if in != nil {
		if body, err = json.Marshal(in); err != nil {
			return 0, 0, err
		}
	}
	for attempt := 0; ; attempt++ {
		status, retryAfter, err = w.once(ctx, method, path, body, out)
		transient := err != nil || status >= 500 && status != http.StatusServiceUnavailable
		if !transient || attempt >= w.cfg.MaxRetries {
			return status, retryAfter, err
		}
		d := w.backoff(attempt)
		w.logf("%s %s failed (attempt %d: status=%d err=%v); retrying in %v", method, path, attempt+1, status, err, d.Round(time.Millisecond))
		if !w.sleep(ctx, d) {
			return 0, 0, ctx.Err()
		}
	}
}

// once is a single HTTP round trip.
func (w *Worker) once(ctx context.Context, method, path string, body []byte, out any) (int, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.cfg.Coordinator+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if d, ok := parseRetryAfter(s, time.Now()); ok {
			retryAfter = d
		}
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, retryAfter, fmt.Errorf("decoding %s response: %w", path, err)
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	}
	return resp.StatusCode, retryAfter, nil
}

const (
	// retryAfterFloor is the delay a zero (or already-elapsed HTTP-date)
	// Retry-After maps to: the coordinator asked for an immediate retry,
	// and "immediate but polite" is a short positive sleep — not the full
	// poll interval the no-hint path falls back to, and not a hot loop.
	retryAfterFloor = 25 * time.Millisecond
	// retryAfterCeiling caps any hint: a buggy or hostile coordinator
	// must not be able to park the worker fleet for hours.
	retryAfterCeiling = 5 * time.Minute
)

// parseRetryAfter interprets a Retry-After header value, which RFC 9110
// allows in two forms: a non-negative integer of seconds, or an
// HTTP-date. Reports ok=false for malformed values (the caller then
// treats the header as absent). Valid hints clamp into
// [retryAfterFloor, retryAfterCeiling], so "0" — immediate-but-polite —
// survives as a short positive delay instead of being dropped.
func parseRetryAfter(s string, now time.Time) (time.Duration, bool) {
	var d time.Duration
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0, false
		}
		d = time.Duration(secs) * time.Second
	} else if when, err := http.ParseTime(s); err == nil {
		d = when.Sub(now) // past dates clamp up to the floor below
	} else {
		return 0, false
	}
	if d < retryAfterFloor {
		d = retryAfterFloor
	}
	if d > retryAfterCeiling {
		d = retryAfterCeiling
	}
	return d, true
}

// backoff returns the delay before retry `attempt` (0-based):
// exponential from BackoffBase, capped at 5s, with equal jitter so
// synchronized workers fan out.
func (w *Worker) backoff(attempt int) time.Duration {
	d := w.cfg.BackoffBase << uint(attempt)
	if max := 5 * time.Second; d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleep waits d or until ctx is done; reports whether the full wait
// elapsed. The duration gets ±25% jitter so a fleet of workers with the
// same poll interval doesn't stampede the coordinator in lockstep.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	j := int64(d / 4)
	d += time.Duration(rand.Int63n(2*j+1) - j)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		w.cfg.Log.Printf("[%s] %s", w.cfg.Name, fmt.Sprintf(format, args...))
	}
}
