package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors the coordinator's HTTP layer maps onto status codes.
var (
	// ErrNoWork: no job has pending shards right now (HTTP 204).
	ErrNoWork = errors.New("dist: no work available")
	// ErrSaturated: the in-flight lease cap is reached — backpressure,
	// not failure (HTTP 503 + Retry-After).
	ErrSaturated = errors.New("dist: lease table saturated")
	// ErrUnknownJob: the result or spec lookup names a job the manager is
	// not (or no longer) filling (HTTP 409 / 404).
	ErrUnknownJob = errors.New("dist: unknown job")
)

// ManagerConfig tunes the lease table. The zero value is usable: every
// field has a default applied by NewManager.
type ManagerConfig struct {
	// LeaseTTL is how long a worker holds a lease before its unfinished
	// shards are re-issued. Default 2 minutes.
	LeaseTTL time.Duration
	// ShardsPerLease caps how many shards one lease grants. Default 1 —
	// smallest re-issue blast radius; raise it to amortize HTTP overhead
	// on fast shards.
	ShardsPerLease int
	// MaxInflight bounds concurrently outstanding leases across all jobs
	// (coordinator backpressure). Default 64.
	MaxInflight int
	// Now is the clock, injectable for tests. Default time.Now.
	Now func() time.Time
}

func (c *ManagerConfig) applyDefaults() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.ShardsPerLease <= 0 {
		c.ShardsPerLease = 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Sink receives one accepted shard result. The manager calls it with its
// lock released, one call at a time per job is NOT guaranteed — the
// callback must be safe for concurrent use (the server's journal fill
// serializes internally). A sink error fails the whole job: the fill
// cannot proceed with a hole in it.
type Sink func(res *ShardResult) error

// jobState is one job being filled.
type jobState struct {
	spec    JobSpec
	sink    Sink
	pending []ShardRef          // not leased, not done (FIFO re-issue order)
	leased  map[ShardRef]string // shard -> lease id
	done    map[ShardRef]bool
	total   int
	doneCh  chan struct{} // closed once filled or failed
}

// leaseState is one outstanding grant.
type leaseState struct {
	id       string
	jobID    string
	worker   string
	shards   []ShardRef
	deadline time.Time
}

// Manager is the coordinator-side lease table: it tracks which shards of
// which jobs are pending, leased, or done; grants leases with deadlines;
// lazily expires and re-issues leases whose workers went quiet; and
// routes accepted results to per-job sinks. All methods are safe for
// concurrent use.
type Manager struct {
	cfg ManagerConfig

	mu        sync.Mutex
	jobs      map[string]*jobState
	leases    map[string]*leaseState
	jobOrder  []string // FIFO across jobs so older jobs drain first
	failed    map[string]error
	nextLease uint64
	reissued  uint64 // shards returned to pending by expiry (observability)
}

// NewManager builds a lease table with defaults applied.
func NewManager(cfg ManagerConfig) *Manager {
	cfg.applyDefaults()
	return &Manager{
		cfg:    cfg,
		jobs:   map[string]*jobState{},
		leases: map[string]*leaseState{},
		failed: map[string]error{},
	}
}

// AddJob registers a job's missing shards for distribution. The returned
// channel closes when every shard has been accepted (or the job failed —
// check Err afterwards). Shards already journaled locally are simply not
// passed in. Registering an id twice is an error.
func (m *Manager) AddJob(spec JobSpec, shards []ShardRef, sink Sink) (<-chan struct{}, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("dist: AddJob %s: no shards to distribute", spec.ID)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[spec.ID]; ok {
		return nil, fmt.Errorf("dist: AddJob: job %s already registered", spec.ID)
	}
	j := &jobState{
		spec:    spec,
		sink:    sink,
		pending: append([]ShardRef(nil), shards...),
		leased:  map[ShardRef]string{},
		done:    map[ShardRef]bool{},
		total:   len(shards),
		doneCh:  make(chan struct{}),
	}
	m.jobs[spec.ID] = j
	m.jobOrder = append(m.jobOrder, spec.ID)
	return j.doneCh, nil
}

// RemoveJob withdraws a job (fill aborted — e.g. the server is
// interrupted). Its leases are dropped; in-flight workers get 409 on
// their next result post and move on. No-op for unknown ids.
func (m *Manager) RemoveJob(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	m.dropJobLocked(id)
	m.failed[id] = fmt.Errorf("dist: job %s withdrawn", id)
	close(j.doneCh)
}

// dropJobLocked removes the job and all its leases from the tables.
func (m *Manager) dropJobLocked(id string) {
	delete(m.jobs, id)
	for lid, l := range m.leases {
		if l.jobID == id {
			delete(m.leases, lid)
		}
	}
	for i, jid := range m.jobOrder {
		if jid == id {
			m.jobOrder = append(m.jobOrder[:i], m.jobOrder[i+1:]...)
			break
		}
	}
}

// Spec returns the worker-facing spec of a registered job.
func (m *Manager) Spec(id string) (JobSpec, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobSpec{}, ErrUnknownJob
	}
	return j.spec, nil
}

// Lease grants the next batch of pending shards to a worker, oldest job
// first. Returns ErrNoWork when nothing is pending (expired leases are
// swept first, so work abandoned by a dead worker becomes grantable
// here) and ErrSaturated when the in-flight cap is reached.
func (m *Manager) Lease(worker string) (*Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	if len(m.leases) >= m.cfg.MaxInflight {
		return nil, ErrSaturated
	}
	for _, id := range m.jobOrder {
		j := m.jobs[id]
		if len(j.pending) == 0 {
			continue
		}
		take := m.cfg.ShardsPerLease
		if take > len(j.pending) {
			take = len(j.pending)
		}
		shards := append([]ShardRef(nil), j.pending[:take]...)
		j.pending = j.pending[take:]

		m.nextLease++
		l := &leaseState{
			id:       fmt.Sprintf("l-%d", m.nextLease),
			jobID:    id,
			worker:   worker,
			shards:   shards,
			deadline: m.cfg.Now().Add(m.cfg.LeaseTTL),
		}
		m.leases[l.id] = l
		for _, ref := range shards {
			j.leased[ref] = l.id
		}
		return &Lease{
			ID:          l.id,
			JobID:       id,
			Fingerprint: j.spec.Fingerprint,
			Shards:      shards,
			Deadline:    l.deadline,
		}, nil
	}
	return nil, ErrNoWork
}

// expireLocked sweeps leases past their deadline, returning their
// unfinished shards to the front of the pending queue (they were oldest
// work; re-issue them first).
func (m *Manager) expireLocked() {
	now := m.cfg.Now()
	for lid, l := range m.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(m.leases, lid)
		j, ok := m.jobs[l.jobID]
		if !ok {
			continue
		}
		var back []ShardRef
		for _, ref := range l.shards {
			if j.done[ref] || j.leased[ref] != lid {
				continue
			}
			delete(j.leased, ref)
			back = append(back, ref)
		}
		if len(back) > 0 {
			j.pending = append(back, j.pending...)
			m.reissued += uint64(len(back))
		}
	}
}

// Complete accepts one shard result. Duplicate results (a re-issued
// shard's original worker finishing late) are acknowledged but dropped —
// first write wins, both are byte-identical by construction. On a sink
// error the job is failed and its channel closed; Err reports why.
func (m *Manager) Complete(res *ShardResult) (ResultAck, error) {
	m.mu.Lock()
	j, ok := m.jobs[res.JobID]
	if !ok {
		m.mu.Unlock()
		return ResultAck{}, ErrUnknownJob
	}
	ref := res.Ref
	if j.done[ref] {
		ack := ResultAck{Accepted: false, JobDone: len(j.done) == j.total}
		m.mu.Unlock()
		return ack, nil
	}
	known := j.leased[ref] != ""
	if !known {
		for _, p := range j.pending {
			if p == ref {
				known = true
				break
			}
		}
	}
	if !known {
		m.mu.Unlock()
		return ResultAck{}, fmt.Errorf("dist: job %s: result for unknown shard %s/%d", res.JobID, ref.Arch, ref.Shard)
	}
	sink := j.sink
	m.mu.Unlock()

	// Sink with the lock released: the journal write does I/O. The shard
	// stays leased/pending meanwhile, so a concurrent duplicate for the
	// same shard either sees done=false here too (both sink — the journal
	// layer tolerates identical rewrites) or arrives after and is dropped.
	if err := sink(res); err != nil {
		m.failJob(res.JobID, fmt.Errorf("dist: job %s: shard %s/%d sink: %w", res.JobID, ref.Arch, ref.Shard, err))
		return ResultAck{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok = m.jobs[res.JobID]
	if !ok {
		// Failed or withdrawn while sinking.
		return ResultAck{}, ErrUnknownJob
	}
	if !j.done[ref] {
		j.done[ref] = true
		if lid, ok := j.leased[ref]; ok {
			delete(j.leased, ref)
			if l := m.leases[lid]; l != nil {
				// Fresh slice, not in-place compaction: l.shards aliases
				// the Shards slice handed to the lease holder.
				var rest []ShardRef
				for _, s := range l.shards {
					if s != ref {
						rest = append(rest, s)
					}
				}
				l.shards = rest
				if len(l.shards) == 0 {
					delete(m.leases, lid)
				}
			}
		} else {
			// The shard had been returned to pending by expiry but the
			// original worker delivered anyway: remove it from the queue.
			for i, p := range j.pending {
				if p == ref {
					j.pending = append(j.pending[:i], j.pending[i+1:]...)
					break
				}
			}
		}
	}
	jobDone := len(j.done) == j.total
	if jobDone {
		m.dropJobLocked(res.JobID)
		close(j.doneCh)
	}
	return ResultAck{Accepted: true, JobDone: jobDone}, nil
}

// failJob marks a job failed and releases its channel.
func (m *Manager) failJob(id string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	m.dropJobLocked(id)
	close(j.doneCh)
	// Keep the failure reachable for Err after the jobs-table entry is
	// gone — the fill goroutine reads it once doneCh closes.
	m.failed[id] = err
}

// Err returns why a job's fill failed (nil for success or unknown ids).
// The error is consumed: a second call returns nil.
func (m *Manager) Err(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.failed[id]
	delete(m.failed, id)
	return err
}

// Status is a point-in-time snapshot for observability.
type Status struct {
	Jobs     int    `json:"jobs"`
	Pending  int    `json:"pending_shards"`
	Leased   int    `json:"leased_shards"`
	Done     int    `json:"done_shards"`
	Inflight int    `json:"inflight_leases"`
	Reissued uint64 `json:"reissued_shards"`
}

// Snapshot reports current lease-table totals.
func (m *Manager) Snapshot() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
	st := Status{Jobs: len(m.jobs), Inflight: len(m.leases), Reissued: m.reissued}
	for _, j := range m.jobs {
		st.Pending += len(j.pending)
		st.Leased += len(j.leased)
		st.Done += len(j.done)
	}
	return st
}
