package blocklint

import (
	"fmt"
	"math/bits"

	"bhive/internal/machine"
	"bhive/internal/profiler"
	"bhive/internal/vm"
	"bhive/internal/x86"
)

// The abstract interpreter mirrors internal/exec over a Known/Unknown
// value domain and replays the profiler's exact run sequence. The
// soundness contract: every Known value is exactly what the concrete
// machine computes; every conclusion drawn from Unknown values is
// conservative (mayCrash, not a verdict). A non-OK prediction is emitted
// only when the rejection is guaranteed on every concretization of the
// Unknowns — which is what lets prescreening skip the block outright.

// aval is an abstract 64-bit value: exactly v, or unknown.
type aval struct {
	known bool
	v     uint64
}

func kv(v uint64) aval { return aval{known: true, v: v} }

// abool is an abstract boolean (three-valued).
type abool struct {
	known bool
	v     bool
}

func kb(b bool) abool { return abool{known: true, v: b} }

// avec is an abstract 256-bit vector register.
type avec struct {
	known bool
	b     [32]byte
}

// astate mirrors exec.State over abstract values.
type astate struct {
	gpr                [16]aval
	vec                [16]avec
	zf, sf, cf, of, pf abool
	rip                uint64
}

// readGPR mirrors exec.State.ReadGPR (zero-extension, high-byte regs).
func (s *astate) readGPR(r x86.Reg) aval {
	full := s.gpr[r.Base64().Num()]
	if !full.known {
		return aval{}
	}
	switch r.Class() {
	case x86.ClassGP64:
		return full
	case x86.ClassGP32:
		return kv(full.v & 0xFFFFFFFF)
	case x86.ClassGP16:
		return kv(full.v & 0xFFFF)
	case x86.ClassGP8:
		if r.IsHighByte() {
			return kv((full.v >> 8) & 0xFF)
		}
		return kv(full.v & 0xFF)
	}
	return kv(0)
}

// writeGPR mirrors exec.State.WriteGPR: sub-register writes merge, which
// makes the whole register unknown when either side is.
func (s *astate) writeGPR(r x86.Reg, v aval) {
	n := r.Base64().Num()
	old := s.gpr[n]
	switch r.Class() {
	case x86.ClassGP64:
		s.gpr[n] = v
	case x86.ClassGP32:
		if v.known {
			s.gpr[n] = kv(v.v & 0xFFFFFFFF)
		} else {
			s.gpr[n] = aval{}
		}
	case x86.ClassGP16:
		if v.known && old.known {
			s.gpr[n] = kv(old.v&^uint64(0xFFFF) | v.v&0xFFFF)
		} else {
			s.gpr[n] = aval{}
		}
	case x86.ClassGP8:
		if v.known && old.known {
			if r.IsHighByte() {
				s.gpr[n] = kv(old.v&^uint64(0xFF00) | (v.v&0xFF)<<8)
			} else {
				s.gpr[n] = kv(old.v&^uint64(0xFF) | v.v&0xFF)
			}
		} else {
			s.gpr[n] = aval{}
		}
	}
}

func (s *astate) unknownFlags() {
	s.zf, s.sf, s.cf, s.of, s.pf = abool{}, abool{}, abool{}, abool{}, abool{}
}

// setZSP mirrors exec.State.setZSP.
func (s *astate) setZSP(res aval, size int) {
	if !res.known {
		s.zf, s.sf, s.pf = abool{}, abool{}, abool{}
		return
	}
	r := maskTo(res.v, size)
	s.zf = kb(r == 0)
	s.sf = kb(r>>(uint(size)*8-1)&1 == 1)
	b := r & 0xFF
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	s.pf = kb(b&1 == 0)
}

// setAddFlags mirrors exec.State.setAddFlags.
func (s *astate) setAddFlags(a, b, res aval, size int) {
	if !a.known || !b.known || !res.known {
		s.unknownFlags()
		return
	}
	nbits := uint(size) * 8
	av, bv, rv := maskTo(a.v, size), maskTo(b.v, size), maskTo(res.v, size)
	s.cf = kb(rv < av || (rv == av && bv != 0))
	sa, sb, sr := av>>(nbits-1)&1, bv>>(nbits-1)&1, rv>>(nbits-1)&1
	s.of = kb(sa == sb && sa != sr)
	s.setZSP(res, size)
}

// setSubFlags mirrors exec.State.setSubFlags.
func (s *astate) setSubFlags(a, b, res aval, size int) {
	if !a.known || !b.known || !res.known {
		s.unknownFlags()
		return
	}
	nbits := uint(size) * 8
	av, bv, rv := maskTo(a.v, size), maskTo(b.v, size), maskTo(res.v, size)
	s.cf = kb(av < bv || (av == bv && rv != 0))
	sa, sb, sr := av>>(nbits-1)&1, bv>>(nbits-1)&1, rv>>(nbits-1)&1
	s.of = kb(sa != sb && sa != sr)
	s.setZSP(res, size)
}

func (s *astate) setLogicFlags(res aval, size int) {
	s.cf, s.of = kb(false), kb(false)
	s.setZSP(res, size)
}

// Three-valued logic helpers for condition evaluation.
func aOr(a, b abool) abool {
	if a.known && a.v || b.known && b.v {
		return kb(true)
	}
	if a.known && b.known {
		return kb(false)
	}
	return abool{}
}

func aNot(a abool) abool {
	if a.known {
		return kb(!a.v)
	}
	return abool{}
}

func aNe(a, b abool) abool {
	if a.known && b.known {
		return kb(a.v != b.v)
	}
	return abool{}
}

func aAnd(a, b abool) abool { return aNot(aOr(aNot(a), aNot(b))) }

// cond mirrors exec.State.Cond over abstract flags.
func (s *astate) cond(c x86.Cond) abool {
	switch c {
	case x86.CondE:
		return s.zf
	case x86.CondNE:
		return aNot(s.zf)
	case x86.CondL:
		return aNe(s.sf, s.of)
	case x86.CondLE:
		return aOr(s.zf, aNe(s.sf, s.of))
	case x86.CondG:
		return aAnd(aNot(s.zf), aNot(aNe(s.sf, s.of)))
	case x86.CondGE:
		return aNot(aNe(s.sf, s.of))
	case x86.CondB:
		return s.cf
	case x86.CondBE:
		return aOr(s.cf, s.zf)
	case x86.CondA:
		return aAnd(aNot(s.cf), aNot(s.zf))
	case x86.CondAE:
		return aNot(s.cf)
	case x86.CondS:
		return s.sf
	case x86.CondNS:
		return aNot(s.sf)
	}
	return kb(false)
}

func maskTo(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & (1<<(uint(size)*8) - 1)
}

func signExtend(v uint64, size int) int64 {
	switch size {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	}
	return int64(v)
}

func amask(a aval, size int) aval {
	if !a.known {
		return a
	}
	return kv(maskTo(a.v, size))
}

// aframe is one abstract physical frame: byte values plus per-byte
// unknownness.
type aframe struct {
	data [vm.PageSize]byte
	unk  [vm.PageSize]bool
}

// memAgg accumulates observed-address facts for one static instruction
// during the recorded (hi, timed) run.
type memAgg struct {
	accesses  int
	allKnown  bool
	first     uint64
	last      uint64
	stride    int64
	strideSet bool
	strideOK  bool
	orAddrs   uint64
	splits    bool
	pages     map[uint64]struct{}
}

// interp replays the measurement protocol abstractly for one block.
type interp struct {
	a       *Analyzer
	insts   []x86.Inst
	offsets []int
	n       int
	addrs   []uint64 // per unrolled instruction, plus the end address

	pages  map[uint64]*aframe
	shared *aframe // the single physical data page
	st     astate

	// Uncertainty tracking.
	mayCrash      bool // some concretization may crash
	mappingsExact bool // the mapped-page set and fault budget are exact
	clobbered     bool // a store went to an unknown address
	pagesMapped   int  // monitor budget used in the current measureOn

	// Per-timed-run and reporting state.
	splitInst   int // static index of a guaranteed line split (-1 none)
	recordFacts bool
	facts       map[int]*memAgg
	diags       []Diag
	sawInexact  bool
	sawVec      bool
}

func newInterp(a *Analyzer, insts []x86.Inst, raws [][]byte, hi int) *interp {
	n := len(insts)
	total := n * hi
	it := &interp{
		a:             a,
		insts:         insts,
		n:             n,
		pages:         make(map[uint64]*aframe),
		mappingsExact: true,
		splitInst:     -1,
		facts:         make(map[int]*memAgg),
	}

	// Mirror machine.PrepareUnrolled address assignment and mapCode.
	it.addrs = make([]uint64, 0, total+1)
	addr := uint64(machine.CodeBase)
	var code []byte
	for i := 0; i < total; i++ {
		it.addrs = append(it.addrs, addr)
		addr += uint64(len(raws[i%n]))
		code = append(code, raws[i%n]...)
	}
	it.addrs = append(it.addrs, addr)
	for off := 0; off < len(code) || off == 0; off += vm.PageSize {
		f := &aframe{}
		copy(f.data[:], code[off:])
		it.pages[machine.CodeBase+uint64(off)] = f
	}
	return it
}

// offsetOf returns the byte offset of static instruction i.
func (it *interp) offsetOf(i int) int {
	if it.offsets != nil && i < len(it.offsets) {
		return it.offsets[i]
	}
	return -1
}

// inexact marks the analysis conservative from here on, reporting why
// once.
func (it *interp) inexact(statIdx int, why string) {
	it.mayCrash = true
	if !it.sawInexact {
		it.sawInexact = true
		it.diags = append(it.diags, Diag{Code: CodeInexact, Inst: statIdx, Offset: it.offsetOf(statIdx),
			Msg: why + "; prediction is conservative from here"})
	}
}

// crashDiag builds a guaranteed-crash diagnostic.
func (it *interp) crashDiag(code Code, statIdx int, msg string) *Diag {
	return &Diag{Code: code, Inst: statIdx, Offset: it.offsetOf(statIdx), Msg: msg}
}

// resetState mirrors profiler.resetState: fresh architectural state,
// optionally pattern-initialized. Every register is Known.
func (it *interp) resetState() {
	var pat uint64
	var vb [32]byte
	if it.a.Opts.InitRegisters {
		pat = profiler.InitPattern
		for o := 0; o < 32; o += 8 {
			vb[o], vb[o+1], vb[o+2] = byte(pat), byte(pat>>8), byte(pat>>16)
			vb[o+3] = byte(pat >> 24)
		}
	}
	for i := range it.st.gpr {
		it.st.gpr[i] = kv(pat)
	}
	for i := range it.st.vec {
		it.st.vec[i] = avec{known: true, b: vb}
	}
	f := kb(false)
	it.st.zf, it.st.sf, it.st.cf, it.st.of, it.st.pf = f, f, f, f, f
}

// newDataFrame mirrors profiler.pageFor's frame initialization.
func (it *interp) newDataFrame() *aframe {
	f := &aframe{}
	if it.a.Opts.InitRegisters {
		pat := uint32(profiler.InitPattern)
		for i := 0; i < vm.PageSize; i += 4 {
			f.data[i] = byte(pat)
			f.data[i+1] = byte(pat >> 8)
			f.data[i+2] = byte(pat >> 16)
			f.data[i+3] = byte(pat >> 24)
		}
	}
	return f
}

// mapPage installs a data mapping, honoring SinglePhysPage.
func (it *interp) mapPage(base uint64) {
	if it.a.Opts.SinglePhysPage {
		if it.shared == nil {
			it.shared = it.newDataFrame()
		}
		it.pages[base] = it.shared
		return
	}
	it.pages[base] = it.newDataFrame()
}

// replay runs the protocol (mirroring profiler.profile after Prepare) and
// returns the predicted status plus whether an OK prediction is exact.
func (it *interp) replay(lo, hi int) (profiler.Status, bool) {
	if st := it.measureOn(it.n*hi, true); st != profiler.StatusOK {
		return st, true
	}
	if !it.a.Opts.DerivedThroughput {
		return profiler.StatusOK, !it.mayCrash
	}
	it.pagesMapped = 0 // the budget counter resets per measureOn
	if st := it.measureOn(it.n*lo, false); st != profiler.StatusOK {
		return st, true
	}
	// cycles(hi) <= cycles(lo) would be Unstable — a timing outcome the
	// static analysis cannot rule out; Agrees whitelists it.
	return profiler.StatusOK, !it.mayCrash
}

// measureOn mirrors profiler.measureOn for one unrolled length: the
// monitored mapping run, then the timed run (whose faults are fatal),
// then the misaligned filter. Sample acceptance and the cache-miss check
// are timing outcomes and are not predicted.
func (it *interp) measureOn(count int, record bool) profiler.Status {
	if d := it.run(count, true, false); d != nil {
		it.diags = append(it.diags, *d)
		return profiler.StatusCrashed
	}
	it.splitInst = -1
	it.recordFacts = record
	if d := it.run(count, false, true); d != nil {
		it.diags = append(it.diags, *d)
		return profiler.StatusCrashed
	}
	it.recordFacts = false
	if it.a.Opts.FilterMisaligned && it.splitInst >= 0 && !it.mayCrash {
		it.diags = append(it.diags, *it.crashDiag(CodeLineSplit, it.splitInst,
			"access is guaranteed to cross a cache-line boundary in the timed run"))
		return profiler.StatusMisaligned
	}
	return profiler.StatusOK
}

// run executes count unrolled instructions, mirroring exec.Runner.Run.
// monitored attaches the page-fault monitor; timed marks the run whose
// accesses feed the misaligned filter. A non-nil return is a guaranteed
// crash.
func (it *interp) run(count int, monitored, timed bool) *Diag {
	it.resetState()
	for i := 0; i < count; i++ {
		idx := i % it.n
		it.st.rip = it.addrs[i+1]
		if d := it.step(&it.insts[idx], idx, monitored, timed); d != nil {
			return d
		}
	}
	return nil
}

// intOpSize mirrors exec.intOpSize.
func intOpSize(in *x86.Inst, k int) int {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		return a.Reg.Size()
	case x86.KindMem:
		return int(a.Mem.Size)
	}
	return 8
}

// ea mirrors exec.Runner.ea over abstract registers.
func (it *interp) ea(m x86.Mem) aval {
	var a aval
	switch m.Base {
	case x86.RegNone:
		a = kv(0)
	case x86.RIP:
		a = kv(it.st.rip)
	default:
		a = it.st.readGPR(m.Base)
	}
	if m.Index != x86.RegNone {
		iv := it.st.readGPR(m.Index)
		if !a.known || !iv.known {
			a = aval{}
		} else {
			a = kv(a.v + iv.v*uint64(m.Scale))
		}
	}
	if !a.known {
		return a
	}
	return kv(a.v + uint64(int64(m.Disp)))
}

// recordAccess feeds the observed-address facts for one access.
func (it *interp) recordAccess(statIdx int, av aval, size int, split bool) {
	if !it.recordFacts {
		return
	}
	agg := it.facts[statIdx]
	if agg == nil {
		agg = &memAgg{allKnown: true, pages: make(map[uint64]struct{})}
		it.facts[statIdx] = agg
	}
	agg.accesses++
	if !av.known {
		agg.allKnown = false
		return
	}
	if split {
		agg.splits = true
	}
	agg.orAddrs |= av.v
	for base := av.v &^ uint64(vm.PageSize-1); ; base += vm.PageSize {
		agg.pages[base] = struct{}{}
		if base >= (av.v+uint64(size)-1)&^uint64(vm.PageSize-1) {
			break
		}
	}
	if agg.accesses == 1 {
		agg.first, agg.last = av.v, av.v
		agg.strideOK = true
		return
	}
	d := int64(av.v - agg.last)
	if !agg.strideSet {
		agg.stride, agg.strideSet = d, true
	} else if d != agg.stride {
		agg.strideOK = false
	}
	agg.last = av.v
}

// access performs one memory access of size bytes at av. For loads the
// returned value is the abstract loaded value; for stores val is written.
// A non-nil Diag is a guaranteed crash.
func (it *interp) access(statIdx int, av aval, size int, write bool, val aval, monitored bool) (aval, *Diag) {
	o := &it.a.Opts
	if size <= 0 {
		size = 1
	}
	lineSize := uint64(it.a.CPU.LineSize)
	if lineSize == 0 {
		lineSize = 64
	}

	if !av.known {
		// The access may fault on an unmappable address; if monitored and
		// repairable it maps pages the model cannot name.
		if monitored {
			it.mappingsExact = false
		}
		if write {
			it.clobbered = true
		}
		what := "load"
		if write {
			what = "store"
		}
		it.inexact(statIdx, fmt.Sprintf("%s address depends on unknown values", what))
		it.recordAccess(statIdx, av, size, false)
		return aval{}, nil
	}

	addr := av.v
	last := addr + uint64(size) - 1
	if last < addr {
		// The access wraps the address space: the top pages are never
		// valid user addresses, so the fault is unrepairable.
		return aval{}, it.crashDiag(CodeBadAddress, statIdx,
			fmt.Sprintf("access at %#x wraps the address space", addr))
	}

	// Fault handling per page, mirroring vm.AddressSpace.Read/Write: the
	// fault address is the first unmapped byte of the span.
	lastBase := last &^ uint64(vm.PageSize-1)
	for base := addr &^ uint64(vm.PageSize-1); ; base += vm.PageSize {
		if _, ok := it.pages[base]; !ok {
			faultAddr := base
			if addr > base {
				faultAddr = addr
			}
			switch {
			case !monitored:
				if it.mappingsExact {
					return aval{}, it.crashDiag(CodeBadAddress, statIdx,
						fmt.Sprintf("page fault at %#x in an unmonitored timed run", faultAddr))
				}
				// The monitor may have mapped this page while repairing an
				// unknown-address access; assume the surviving path did.
				it.inexact(statIdx, fmt.Sprintf("page at %#x may or may not be mapped", faultAddr))
				it.mapPage(base)
			case !o.MapPages:
				return aval{}, it.crashDiag(CodeNoMapping, statIdx,
					fmt.Sprintf("access at %#x with page mapping disabled", faultAddr))
			case !vm.ValidUserAddress(faultAddr):
				return aval{}, it.crashDiag(CodeBadAddress, statIdx,
					fmt.Sprintf("%#x is not a mappable user address", faultAddr))
			case it.mappingsExact && it.pagesMapped >= o.MaxFaults:
				return aval{}, it.crashDiag(CodePageBudget, statIdx,
					fmt.Sprintf("%d pages already mapped (MaxFaults=%d)", it.pagesMapped, o.MaxFaults))
			default:
				if !it.mappingsExact {
					it.inexact(statIdx, "page-mapping budget cannot be tracked exactly")
				}
				it.mapPage(base)
				it.pagesMapped++
			}
		}
		if base == lastBase {
			break
		}
	}

	split := addr%lineSize+uint64(size) > lineSize
	if timedSplit := split && it.recordFacts; timedSplit && it.splitInst < 0 {
		it.splitInst = statIdx
	}
	it.recordAccess(statIdx, av, size, split)

	if write {
		for i := 0; i < size; i++ {
			a := addr + uint64(i)
			f := it.pages[a&^uint64(vm.PageSize-1)]
			off := a % vm.PageSize
			if val.known && size <= 8 {
				f.data[off] = byte(val.v >> (8 * uint(i)))
				f.unk[off] = false
			} else {
				f.unk[off] = true
			}
		}
		return aval{}, nil
	}

	if it.clobbered || size > 8 {
		return aval{}, nil
	}
	var v uint64
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		f := it.pages[a&^uint64(vm.PageSize-1)]
		off := a % vm.PageSize
		if f.unk[off] {
			return aval{}, nil
		}
		v |= uint64(f.data[off]) << (8 * uint(i))
	}
	return kv(v), nil
}

// readIntArg mirrors exec.Runner.readIntArg.
func (it *interp) readIntArg(in *x86.Inst, k, statIdx int, monitored bool) (aval, *Diag) {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		return it.st.readGPR(a.Reg), nil
	case x86.KindImm:
		return kv(uint64(a.Imm)), nil
	case x86.KindMem:
		return it.access(statIdx, it.ea(a.Mem), int(a.Mem.Size), false, aval{}, monitored)
	}
	return aval{}, nil
}

// writeIntArg mirrors exec.Runner.writeIntArg.
func (it *interp) writeIntArg(in *x86.Inst, k int, v aval, statIdx int, monitored bool) *Diag {
	a := in.Args[k]
	switch a.Kind {
	case x86.KindReg:
		it.st.writeGPR(a.Reg, v)
		return nil
	case x86.KindMem:
		_, d := it.access(statIdx, it.ea(a.Mem), int(a.Mem.Size), true, v, monitored)
		return d
	}
	return nil
}

// step mirrors exec.Runner.exec for one instruction.
func (it *interp) step(in *x86.Inst, statIdx int, monitored, timed bool) *Diag {
	_ = timed
	s := &it.st
	op := in.Op
	if op.IsVex() || (op >= x86.MOVSS && op <= x86.PMOVMSKB) {
		return it.stepVec(in, statIdx, monitored)
	}

	switch op {
	case x86.MOV:
		v, d := it.readIntArg(in, 1, statIdx, monitored)
		if d != nil {
			return d
		}
		return it.writeIntArg(in, 0, v, statIdx, monitored)

	case x86.MOVZX:
		v, d := it.readIntArg(in, 1, statIdx, monitored)
		if d != nil {
			return d
		}
		return it.writeIntArg(in, 0, amask(v, intOpSize(in, 1)), statIdx, monitored)

	case x86.MOVSX, x86.MOVSXD:
		v, d := it.readIntArg(in, 1, statIdx, monitored)
		if d != nil {
			return d
		}
		if v.known {
			v = kv(uint64(signExtend(v.v, intOpSize(in, 1))))
		}
		return it.writeIntArg(in, 0, v, statIdx, monitored)

	case x86.LEA:
		v := it.ea(in.Args[1].Mem)
		if v.known {
			v = kv(maskTo(v.v, in.Args[0].Reg.Size()))
		}
		s.writeGPR(in.Args[0].Reg, v)
		return nil

	case x86.PUSH:
		v, d := it.readIntArg(in, 0, statIdx, monitored)
		if d != nil {
			return d
		}
		rsp := s.gpr[x86.RSP.Num()]
		if rsp.known {
			rsp = kv(rsp.v - 8)
		}
		s.gpr[x86.RSP.Num()] = rsp
		_, d = it.access(statIdx, rsp, 8, true, v, monitored)
		return d

	case x86.POP:
		v, d := it.access(statIdx, s.gpr[x86.RSP.Num()], 8, false, aval{}, monitored)
		if d != nil {
			return d
		}
		if rsp := s.gpr[x86.RSP.Num()]; rsp.known {
			s.gpr[x86.RSP.Num()] = kv(rsp.v + 8)
		}
		return it.writeIntArg(in, 0, v, statIdx, monitored)

	case x86.XCHG:
		a, d := it.readIntArg(in, 0, statIdx, monitored)
		if d != nil {
			return d
		}
		b, d := it.readIntArg(in, 1, statIdx, monitored)
		if d != nil {
			return d
		}
		if d := it.writeIntArg(in, 0, b, statIdx, monitored); d != nil {
			return d
		}
		return it.writeIntArg(in, 1, a, statIdx, monitored)

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR,
		x86.CMP, x86.TEST:
		return it.stepALU(in, statIdx, monitored)

	case x86.INC, x86.DEC, x86.NEG, x86.NOT:
		return it.stepUnary(in, statIdx, monitored)

	case x86.BSWAP:
		v := s.readGPR(in.Args[0].Reg)
		if v.known {
			if in.Args[0].Reg.Size() == 4 {
				v = kv(uint64(bits.ReverseBytes32(uint32(v.v))))
			} else {
				v = kv(bits.ReverseBytes64(v.v))
			}
		}
		s.writeGPR(in.Args[0].Reg, v)
		return nil

	case x86.IMUL:
		return it.stepIMul(in, statIdx, monitored)
	case x86.MUL:
		return it.stepWideMul(in, statIdx, monitored)
	case x86.DIV, x86.IDIV:
		return it.stepDiv(in, statIdx, monitored)

	case x86.CDQ:
		if eax := s.readGPR(x86.EAX); eax.known {
			s.writeGPR(x86.EDX, kv(uint64(uint32(int32(eax.v)>>31))))
		} else {
			s.writeGPR(x86.EDX, aval{})
		}
		return nil
	case x86.CQO:
		if rax := s.gpr[x86.RAX.Num()]; rax.known {
			s.gpr[x86.RDX.Num()] = kv(uint64(int64(rax.v) >> 63))
		} else {
			s.gpr[x86.RDX.Num()] = aval{}
		}
		return nil

	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		return it.stepShift(in, statIdx, monitored)

	case x86.POPCNT, x86.LZCNT, x86.TZCNT, x86.BSF, x86.BSR:
		return it.stepBitScan(in, statIdx, monitored)

	case x86.BT:
		v, d := it.readIntArg(in, 0, statIdx, monitored)
		if d != nil {
			return d
		}
		idx, d := it.readIntArg(in, 1, statIdx, monitored)
		if d != nil {
			return d
		}
		if v.known && idx.known {
			bitsN := uint64(intOpSize(in, 0)) * 8
			s.cf = kb(v.v>>(idx.v%bitsN)&1 == 1)
		} else {
			s.cf = abool{}
		}
		return nil

	case x86.NOP:
		return nil
	}

	// Conditional moves and sets, mirroring exec's Cond dispatch.
	if c := op.Cond(); c != x86.CondNone {
		switch {
		case op >= x86.CMOVE && op <= x86.CMOVNS:
			cv := s.cond(c)
			if cv.known && cv.v {
				v, d := it.readIntArg(in, 1, statIdx, monitored)
				if d != nil {
					return d
				}
				return it.writeIntArg(in, 0, v, statIdx, monitored)
			}
			if cv.known && !cv.v {
				// The memory source is read even when the condition fails.
				if in.Args[1].Kind == x86.KindMem {
					_, d := it.readIntArg(in, 1, statIdx, monitored)
					return d
				}
				return nil
			}
			// Unknown condition: the source access happens either way; the
			// destination may or may not be overwritten.
			if in.Args[1].Kind == x86.KindMem {
				if _, d := it.readIntArg(in, 1, statIdx, monitored); d != nil {
					return d
				}
			}
			s.writeGPR(in.Args[0].Reg, aval{})
			return nil
		case op >= x86.SETE && op <= x86.SETNS:
			cv := s.cond(c)
			v := aval{}
			if cv.known {
				v = kv(0)
				if cv.v {
					v = kv(1)
				}
			}
			return it.writeIntArg(in, 0, v, statIdx, monitored)
		}
	}

	if op.IsBranch() {
		return nil // basic blocks never contain branches; exec no-ops them
	}

	// Anything else is exec's "unimplemented op" error: a guaranteed crash.
	return it.crashDiag(CodeNoExec, statIdx,
		fmt.Sprintf("%s is not implemented by the functional executor", in.String()))
}

// stepVec handles every instruction exec routes to execVec: the memory
// access is simulated exactly (addresses come from GPRs), the data results
// are treated as unknown.
func (it *interp) stepVec(in *x86.Inst, statIdx int, monitored bool) *Diag {
	if in.Op == x86.VZEROUPPER {
		for i := range it.st.vec {
			for b := 16; b < 32; b++ {
				it.st.vec[i].b[b] = 0
			}
		}
		return nil
	}
	if !it.sawVec {
		it.sawVec = true
		it.diags = append(it.diags, Diag{Code: CodeUnmodeled, Inst: statIdx, Offset: it.offsetOf(statIdx),
			Msg: fmt.Sprintf("%s: vector data flow is not modeled; its outputs are unknown", in.String()),
		})
	}
	if m := in.MemArg(); m >= 0 {
		rd, wr := in.ArgIO(m)
		av := it.ea(in.Args[m].Mem)
		size := int(in.Args[m].Mem.Size)
		if rd {
			if _, d := it.access(statIdx, av, size, false, aval{}, monitored); d != nil {
				return d
			}
		}
		if wr {
			if _, d := it.access(statIdx, av, size, true, aval{}, monitored); d != nil {
				return d
			}
		}
	}
	for _, r := range in.RegWrites() {
		if r.IsVec() {
			it.st.vec[r.Num()].known = false
		} else if r.IsGP() {
			it.st.writeGPR(r, aval{})
		}
	}
	if in.Op.WritesFlags() {
		it.st.unknownFlags()
	}
	return nil
}

// stepALU mirrors exec.Runner.execALU.
func (it *interp) stepALU(in *x86.Inst, statIdx int, monitored bool) *Diag {
	s := &it.st
	size := intOpSize(in, 0)
	a, d := it.readIntArg(in, 0, statIdx, monitored)
	if d != nil {
		return d
	}
	b, d := it.readIntArg(in, 1, statIdx, monitored)
	if d != nil {
		return d
	}
	a, b = amask(a, size), amask(b, size)
	bothKnown := a.known && b.known
	var res aval
	write := true
	switch in.Op {
	case x86.ADD:
		if bothKnown {
			res = kv(a.v + b.v)
		}
		s.setAddFlags(a, b, res, size)
	case x86.ADC:
		if bothKnown && s.cf.known {
			c := uint64(0)
			if s.cf.v {
				c = 1
			}
			res = kv(a.v + b.v + c)
			s.setAddFlags(a, kv(b.v+c), res, size)
		} else {
			s.unknownFlags()
		}
	case x86.SUB:
		if bothKnown {
			res = kv(a.v - b.v)
		}
		s.setSubFlags(a, b, res, size)
	case x86.SBB:
		if bothKnown && s.cf.known {
			c := uint64(0)
			if s.cf.v {
				c = 1
			}
			res = kv(a.v - b.v - c)
			s.setSubFlags(a, kv(b.v+c), res, size)
		} else {
			s.unknownFlags()
		}
	case x86.CMP:
		if bothKnown {
			res = kv(a.v - b.v)
		}
		s.setSubFlags(a, b, res, size)
		write = false
	case x86.AND:
		if bothKnown {
			res = kv(a.v & b.v)
		}
		s.setLogicFlags(res, size)
	case x86.TEST:
		if bothKnown {
			res = kv(a.v & b.v)
		}
		s.setLogicFlags(res, size)
		write = false
	case x86.OR:
		if bothKnown {
			res = kv(a.v | b.v)
		}
		s.setLogicFlags(res, size)
	case x86.XOR:
		if bothKnown {
			res = kv(a.v ^ b.v)
		}
		s.setLogicFlags(res, size)
	}
	if !write {
		return nil
	}
	return it.writeIntArg(in, 0, amask(res, size), statIdx, monitored)
}

// stepUnary mirrors exec.Runner.execUnary.
func (it *interp) stepUnary(in *x86.Inst, statIdx int, monitored bool) *Diag {
	s := &it.st
	size := intOpSize(in, 0)
	a, d := it.readIntArg(in, 0, statIdx, monitored)
	if d != nil {
		return d
	}
	a = amask(a, size)
	var res aval
	switch in.Op {
	case x86.INC:
		if a.known {
			res = kv(a.v + 1)
		}
		cf := s.cf // inc preserves CF
		s.setAddFlags(a, kv(1), res, size)
		s.cf = cf
	case x86.DEC:
		if a.known {
			res = kv(a.v - 1)
		}
		cf := s.cf
		s.setSubFlags(a, kv(1), res, size)
		s.cf = cf
	case x86.NEG:
		if a.known {
			res = kv(-a.v)
		}
		s.setSubFlags(kv(0), a, res, size)
		if a.known {
			s.cf = kb(a.v != 0)
		} else {
			s.cf = abool{}
		}
	case x86.NOT:
		if a.known {
			res = kv(^a.v) // not touches no flags
		}
	}
	return it.writeIntArg(in, 0, amask(res, size), statIdx, monitored)
}

// stepIMul mirrors exec.Runner.execIMul.
func (it *interp) stepIMul(in *x86.Inst, statIdx int, monitored bool) *Diag {
	s := &it.st
	size := intOpSize(in, 0)
	var a, b aval
	var d *Diag
	if len(in.Args) == 3 {
		if a, d = it.readIntArg(in, 1, statIdx, monitored); d != nil {
			return d
		}
		b = kv(uint64(in.Args[2].Imm))
	} else {
		if a, d = it.readIntArg(in, 0, statIdx, monitored); d != nil {
			return d
		}
		if b, d = it.readIntArg(in, 1, statIdx, monitored); d != nil {
			return d
		}
	}
	if !a.known || !b.known {
		s.unknownFlags()
		return it.writeIntArg(in, 0, aval{}, statIdx, monitored)
	}
	sa, sb := signExtend(a.v, size), signExtend(b.v, size)
	res := uint64(sa * sb)
	hi, _ := bits.Mul64(uint64(sa), uint64(sb))
	cf := signExtend(res, size) != sa*sb || (size == 8 && hi != 0 && hi != ^uint64(0))
	s.cf, s.of = kb(cf), kb(cf)
	s.setZSP(kv(res), size)
	return it.writeIntArg(in, 0, kv(maskTo(res, size)), statIdx, monitored)
}

// stepWideMul mirrors exec.Runner.execWideMul.
func (it *interp) stepWideMul(in *x86.Inst, statIdx int, monitored bool) *Diag {
	s := &it.st
	size := intOpSize(in, 0)
	v, d := it.readIntArg(in, 0, statIdx, monitored)
	if d != nil {
		return d
	}
	switch size {
	case 4:
		eax := s.readGPR(x86.EAX)
		if !v.known || !eax.known {
			s.writeGPR(x86.EAX, aval{})
			s.writeGPR(x86.EDX, aval{})
			s.cf, s.of = abool{}, abool{}
			return nil
		}
		prod := eax.v * maskTo(v.v, 4)
		s.writeGPR(x86.EAX, kv(prod&0xFFFFFFFF))
		s.writeGPR(x86.EDX, kv(prod>>32))
		s.cf = kb(prod>>32 != 0)
	default:
		rax := s.gpr[x86.RAX.Num()]
		if !v.known || !rax.known {
			s.gpr[x86.RAX.Num()] = aval{}
			s.gpr[x86.RDX.Num()] = aval{}
			s.cf, s.of = abool{}, abool{}
			return nil
		}
		hi, lo := bits.Mul64(rax.v, v.v)
		s.gpr[x86.RAX.Num()] = kv(lo)
		s.gpr[x86.RDX.Num()] = kv(hi)
		s.cf = kb(hi != 0)
	}
	s.of = s.cf
	return nil
}

// divUnknown models a division whose outcome the analysis cannot decide:
// it may raise #DE, and the implicit outputs become unknown.
func (it *interp) divUnknown(in *x86.Inst, statIdx int, size int, why string) {
	s := &it.st
	it.inexact(statIdx, why)
	switch size {
	case 1:
		s.writeGPR(x86.AL, aval{})
		s.writeGPR(x86.AH, aval{})
	case 4:
		s.writeGPR(x86.EAX, aval{})
		s.writeGPR(x86.EDX, aval{})
	default:
		s.gpr[x86.RAX.Num()] = aval{}
		s.gpr[x86.RDX.Num()] = aval{}
	}
	_ = in
}

// stepDiv mirrors exec.Runner.execDiv, including every #DE condition.
func (it *interp) stepDiv(in *x86.Inst, statIdx int, monitored bool) *Diag {
	s := &it.st
	size := intOpSize(in, 0)
	v, d := it.readIntArg(in, 0, statIdx, monitored)
	if d != nil {
		return d
	}
	v = amask(v, size)
	if !v.known {
		it.divUnknown(in, statIdx, size, "divisor is unknown (may be zero)")
		return nil
	}
	if v.v == 0 {
		return it.crashDiag(CodeDivideError, statIdx, "division by a guaranteed-zero divisor raises #DE")
	}
	de := it.crashDiag(CodeDivideError, statIdx, "quotient overflow is guaranteed to raise #DE")
	signed := in.Op == x86.IDIV
	switch size {
	case 1:
		ax := s.readGPR(x86.AX)
		if !ax.known {
			it.divUnknown(in, statIdx, size, "dividend is unknown (quotient may overflow)")
			return nil
		}
		dividend := ax.v
		if signed {
			q := int64(int16(dividend)) / int64(int8(v.v))
			rem := int64(int16(dividend)) % int64(int8(v.v))
			if q > 127 || q < -128 {
				return de
			}
			s.writeGPR(x86.AL, kv(uint64(q)))
			s.writeGPR(x86.AH, kv(uint64(rem)))
		} else {
			q := dividend / v.v
			if q > 0xFF {
				return de
			}
			s.writeGPR(x86.AL, kv(q))
			s.writeGPR(x86.AH, kv(dividend%v.v))
		}
	case 4:
		edx, eax := s.readGPR(x86.EDX), s.readGPR(x86.EAX)
		if !edx.known || !eax.known {
			it.divUnknown(in, statIdx, size, "dividend is unknown (quotient may overflow)")
			return nil
		}
		dividend := edx.v<<32 | eax.v
		if signed {
			q := int64(dividend) / int64(int32(v.v))
			rem := int64(dividend) % int64(int32(v.v))
			if q > 0x7FFFFFFF || q < -0x80000000 {
				return de
			}
			s.writeGPR(x86.EAX, kv(uint64(uint32(q))))
			s.writeGPR(x86.EDX, kv(uint64(uint32(rem))))
		} else {
			q := dividend / v.v
			if q > 0xFFFFFFFF {
				return de
			}
			s.writeGPR(x86.EAX, kv(q))
			s.writeGPR(x86.EDX, kv(dividend%v.v))
		}
	default:
		rdx, rax := s.gpr[x86.RDX.Num()], s.gpr[x86.RAX.Num()]
		if !rdx.known || !rax.known {
			it.divUnknown(in, statIdx, size, "dividend is unknown (quotient may overflow)")
			return nil
		}
		hi, lo := rdx.v, rax.v
		if signed {
			negDividend := int64(hi) < 0
			if negDividend {
				lo = -lo
				hi = ^hi
				if lo == 0 {
					hi++
				}
			}
			dv := int64(v.v)
			negDiv := dv < 0
			uv := uint64(dv)
			if negDiv {
				uv = uint64(-dv)
			}
			if hi >= uv {
				return de
			}
			q, rem := bits.Div64(hi, lo, uv)
			if negDividend != negDiv {
				if q > 1<<63 {
					return de
				}
				q = -q
			} else if q >= 1<<63 {
				return de
			}
			if negDividend {
				rem = -rem
			}
			s.gpr[x86.RAX.Num()] = kv(q)
			s.gpr[x86.RDX.Num()] = kv(rem)
		} else {
			if hi >= v.v {
				return de
			}
			q, rem := bits.Div64(hi, lo, v.v)
			s.gpr[x86.RAX.Num()] = kv(q)
			s.gpr[x86.RDX.Num()] = kv(rem)
		}
	}
	return nil
}

// stepShift mirrors exec.Runner.execShift.
func (it *interp) stepShift(in *x86.Inst, statIdx int, monitored bool) *Diag {
	s := &it.st
	size := intOpSize(in, 0)
	a, d := it.readIntArg(in, 0, statIdx, monitored)
	if d != nil {
		return d
	}
	a = amask(a, size)
	cnt, d := it.readIntArg(in, 1, statIdx, monitored)
	if d != nil {
		return d
	}
	if !cnt.known {
		// Count 0 leaves flags unchanged, anything else updates them; the
		// destination is rewritten either way.
		if in.Op == x86.ROL || in.Op == x86.ROR {
			s.cf = abool{}
		} else {
			s.unknownFlags()
		}
		return it.writeIntArg(in, 0, aval{}, statIdx, monitored)
	}
	c := cnt.v
	if size == 8 {
		c &= 63
	} else {
		c &= 31
	}
	if c == 0 {
		// Flags unchanged; destination rewritten with the same value (a
		// memory destination still performs its store).
		return it.writeIntArg(in, 0, a, statIdx, monitored)
	}
	if !a.known {
		if in.Op == x86.ROL || in.Op == x86.ROR {
			s.cf = abool{}
		} else {
			s.unknownFlags()
		}
		return it.writeIntArg(in, 0, aval{}, statIdx, monitored)
	}
	bitsN := uint(size) * 8
	var res uint64
	switch in.Op {
	case x86.SHL:
		res = a.v << c
		s.cf = kb(c <= uint64(bitsN) && a.v>>(uint64(bitsN)-c)&1 == 1)
		s.setZSP(kv(res), size)
		s.of = kb((res>>(bitsN-1)&1 == 1) != s.cf.v)
	case x86.SHR:
		res = a.v >> c
		s.cf = kb(a.v>>(c-1)&1 == 1)
		s.setZSP(kv(res), size)
		s.of = kb(a.v>>(bitsN-1)&1 == 1)
	case x86.SAR:
		res = uint64(signExtend(a.v, size) >> c)
		s.cf = kb(a.v>>(c-1)&1 == 1)
		s.setZSP(kv(res), size)
		s.of = kb(false)
	case x86.ROL:
		k := c % uint64(bitsN)
		res = a.v<<k | a.v>>(uint64(bitsN)-k)
		s.cf = kb(res&1 == 1)
	case x86.ROR:
		k := c % uint64(bitsN)
		res = a.v>>k | a.v<<(uint64(bitsN)-k)
		s.cf = kb(res>>(bitsN-1)&1 == 1)
	}
	return it.writeIntArg(in, 0, kv(maskTo(res, size)), statIdx, monitored)
}

// stepBitScan mirrors exec.Runner.execBitScan.
func (it *interp) stepBitScan(in *x86.Inst, statIdx int, monitored bool) *Diag {
	s := &it.st
	size := intOpSize(in, 1)
	v, d := it.readIntArg(in, 1, statIdx, monitored)
	if d != nil {
		return d
	}
	v = amask(v, size)
	bitsN := size * 8
	if !v.known {
		switch in.Op {
		case x86.POPCNT:
			s.zf = abool{}
		case x86.LZCNT, x86.TZCNT:
			s.cf, s.zf = abool{}, abool{}
		case x86.BSF, x86.BSR:
			// The destination is only written for nonzero input: merge.
			s.zf = abool{}
			s.writeGPR(in.Args[0].Reg, aval{})
			return nil
		}
		return it.writeIntArg(in, 0, aval{}, statIdx, monitored)
	}
	var res uint64
	switch in.Op {
	case x86.POPCNT:
		res = uint64(bits.OnesCount64(v.v))
		s.zf = kb(v.v == 0)
	case x86.LZCNT:
		res = uint64(bits.LeadingZeros64(v.v) - (64 - bitsN))
		s.cf = kb(v.v == 0)
		s.zf = kb(res == 0)
	case x86.TZCNT:
		if v.v == 0 {
			res = uint64(bitsN)
		} else {
			res = uint64(bits.TrailingZeros64(v.v))
		}
		s.cf = kb(v.v == 0)
		s.zf = kb(res == 0)
	case x86.BSF:
		if v.v == 0 {
			s.zf = kb(true)
			return nil // destination undefined; left unchanged
		}
		s.zf = kb(false)
		res = uint64(bits.TrailingZeros64(v.v))
	case x86.BSR:
		if v.v == 0 {
			s.zf = kb(true)
			return nil
		}
		s.zf = kb(false)
		res = uint64(63 - bits.LeadingZeros64(v.v))
	}
	return it.writeIntArg(in, 0, kv(res), statIdx, monitored)
}
